#!/usr/bin/env bash
# CLI-level socket backend coverage, driven by ctest (label "socket"):
#
#   1. `hydra run --backend=<unknown>` fails fast with an actionable error
#      naming every registered backend.
#   2. Single-process `hydra run --backend=tcp` on the 4-party hybrid spec
#      passes under strict monitors (the ISSUE acceptance run).
#   3. A real 4-process `hydra serve`/`join` deployment over UDS: one party
#      per process, fixed socket paths, every process must exit 0.
#
# Usage: cli_socket_test.sh /path/to/hydra
set -u

HYDRA="${1:?usage: cli_socket_test.sh /path/to/hydra}"
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

TMPDIR_ROOT="$(mktemp -d /tmp/hydra-cli-socket-XXXXXX)"
trap 'rm -rf "$TMPDIR_ROOT"' EXIT

# --- 1. unknown backend: exit 2 + actionable message -----------------------
ERR="$TMPDIR_ROOT/unknown.err"
"$HYDRA" run --backend=bogus --n 4 --ts 1 --ta 1 --dim 1 2>"$ERR"
STATUS=$?
[ "$STATUS" -eq 2 ] || fail "unknown backend: expected exit 2, got $STATUS"
grep -q 'unknown backend "bogus"' "$ERR" || fail "unknown backend: error does not name the rejected value: $(cat "$ERR")"
grep -q 'registered backends:' "$ERR" || fail "unknown backend: error does not list alternatives"
for name in sim threads tcp uds; do
  grep -q "$name" "$ERR" || fail "unknown backend: error does not offer '$name'"
done

# --- 1b. over-long UDS endpoint: rejected at parse time, not at bind -------
# sockaddr_un::sun_path caps AF_UNIX paths at ~107 bytes; a longer --peers
# entry must produce an actionable usage error (exit 2) naming the limit
# instead of a confusing bind() failure deep inside the transport.
LONG_PATH="/tmp/$(printf 'x%.0s' $(seq 1 120)).sock"
ERR="$TMPDIR_ROOT/longuds.err"
"$HYDRA" serve --party 0 --backend uds --peers "$LONG_PATH,$LONG_PATH,$LONG_PATH,$LONG_PATH" \
    --n 4 --ts 1 --ta 1 --dim 1 2>"$ERR"
STATUS=$?
[ "$STATUS" -eq 2 ] || fail "long uds path: expected exit 2, got $STATUS"
grep -q 'sun_path' "$ERR" || fail "long uds path: error does not name the sun_path limit: $(cat "$ERR")"
grep -q "$LONG_PATH" "$ERR" || fail "long uds path: error does not name the offending endpoint"

# --- 2. single-process tcp acceptance run ----------------------------------
if ! "$HYDRA" run --backend=tcp --n 4 --ts 1 --ta 1 --dim 1 \
    --adversary none --corrupt 0 --network sync-worst \
    --monitors strict --seed 1 >"$TMPDIR_ROOT/tcp.out" 2>&1; then
  fail "single-process --backend=tcp run failed: $(cat "$TMPDIR_ROOT/tcp.out")"
fi

# --- 3. four-process serve/join over UDS -----------------------------------
PEERS="$TMPDIR_ROOT/p0.sock,$TMPDIR_ROOT/p1.sock,$TMPDIR_ROOT/p2.sock,$TMPDIR_ROOT/p3.sock"
SPEC="--peers $PEERS --backend uds --ts 1 --ta 1 --dim 1 \
      --adversary none --corrupt 0 --network sync-worst --seed 1"
PIDS=()
for party in 0 1 2 3; do
  CMD=join
  [ "$party" -eq 0 ] && CMD=serve  # same code path; exercise both spellings
  # shellcheck disable=SC2086
  "$HYDRA" "$CMD" --party "$party" $SPEC \
      >"$TMPDIR_ROOT/party$party.out" 2>&1 &
  PIDS+=($!)
done
for party in 0 1 2 3; do
  if ! wait "${PIDS[$party]}"; then
    fail "serve/join: party $party exited nonzero: $(cat "$TMPDIR_ROOT/party$party.out")"
  fi
done

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES failure(s)" >&2
  exit 1
fi
echo "cli_socket_test: all checks passed"
