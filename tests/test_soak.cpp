// Randomized soak coverage: many full protocol runs across randomly drawn
// feasible configurations, hostile network/adversary pairings and seeds.
// Every run must satisfy all three D-AA properties — this is the widest net
// in the suite and has historically been the first place subtle guard or
// geometry bugs surface.
#include <gtest/gtest.h>

#include <memory>

#include "harness/runner.hpp"

namespace hydra::harness {
namespace {

Network networks[] = {
    Network::kSyncWorstCase, Network::kSyncJitter,      Network::kSyncTargeted,
    Network::kSyncRushing,   Network::kAsyncReorder,    Network::kAsyncPartition,
    Network::kAsyncExponential,
};

Adversary adversaries[] = {
    Adversary::kSilent,   Adversary::kCrash,      Adversary::kEquivocator,
    Adversary::kOutlier,  Adversary::kHaltRusher, Adversary::kSpammer,
    Adversary::kStraggler, Adversary::kTurncoat,  Adversary::kMixed,
};

Workload workloads[] = {
    Workload::kUniformBall, Workload::kSimplexCorners, Workload::kClustered,
    Workload::kCollinear,   Workload::kGaussian,
};

/// Draws a random feasible configuration.
RunSpec draw_spec(Rng& rng) {
  RunSpec spec;
  while (true) {
    spec.params.dim = 1 + rng.next_below(3);
    spec.params.ts = 1 + rng.next_below(2);
    spec.params.ta = rng.next_below(spec.params.ts + 1);
    // Smallest feasible n plus slack 0-2.
    const std::size_t base = std::max((spec.params.dim + 1) * spec.params.ts +
                                          spec.params.ta + 1,
                                      3 * spec.params.ts + 1);
    spec.params.n = base + rng.next_below(3);
    if (spec.params.feasible() && spec.params.n <= 10) break;
  }
  spec.params.eps = 5e-2;
  spec.params.delta = 1000;
  spec.network = networks[rng.next_below(std::size(networks))];
  spec.adversary = adversaries[rng.next_below(std::size(adversaries))];
  spec.corruptions =
      is_synchronous(spec.network) ? spec.params.ts : spec.params.ta;
  spec.workload = workloads[rng.next_below(std::size(workloads))];
  spec.workload_scale = 1.0 + rng.next_double() * 30.0;
  spec.seed = rng.next_u64();
  return spec;
}

class Soak : public ::testing::TestWithParam<int> {};

TEST_P(Soak, RandomFeasibleConfigurationsSatisfyDAa) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 1);
  for (int run = 0; run < 5; ++run) {
    const auto spec = draw_spec(rng);
    const auto result = execute(spec);
    EXPECT_TRUE(result.verdict.d_aa())
        << "D=" << spec.params.dim << " n=" << spec.params.n
        << " ts=" << spec.params.ts << " ta=" << spec.params.ta << " net="
        << to_string(spec.network) << " adv=" << to_string(spec.adversary)
        << " wl=" << to_string(spec.workload) << " seed=" << spec.seed
        << " live=" << result.verdict.live << " valid=" << result.verdict.valid
        << " diam=" << result.verdict.output_diameter;
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, Soak, ::testing::Range(0, 8));

}  // namespace
}  // namespace hydra::harness
