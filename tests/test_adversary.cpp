// Tests for the adversary framework itself: scheduler delay laws, the
// Turncoat adaptive corruption, and that each behaviour's attack surface is
// defeated by the full protocol at the tolerated thresholds.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "geometry/convex.hpp"
#include "protocol_test_util.hpp"

namespace hydra::test {
namespace {

sim::Message dummy_msg() { return sim::Message{InstanceKey{1, 0, 0}, 0, {}}; }

// ------------------------------------------------------------ schedulers

TEST(Schedulers, PartitionHoldsCrossTrafficDuringWindow) {
  Rng rng(1);
  adversary::PartitionScheduler sched(std::make_unique<sim::FixedDelay>(100),
                                      std::set<PartyId>{0, 1}, 1000, 5000);
  const auto msg = dummy_msg();
  // Before the window: base delay.
  EXPECT_EQ(sched.delay(0, 2, 500, msg, rng), 100);
  // Inside the window, crossing the boundary: held until at least the end.
  EXPECT_GE(sched.delay(0, 2, 2000, msg, rng), 3000);
  // Inside the window, within the group: base delay.
  EXPECT_EQ(sched.delay(0, 1, 2000, msg, rng), 100);
  // After the window: base delay.
  EXPECT_EQ(sched.delay(0, 2, 6000, msg, rng), 100);
}

TEST(Schedulers, TargetedAlwaysMaxForVictims) {
  Rng rng(2);
  adversary::TargetedScheduler sched(std::make_unique<sim::UniformDelay>(1, 50),
                                     std::set<PartyId>{3}, 1000);
  const auto msg = dummy_msg();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sched.delay(0, 3, 0, msg, rng), 1000);
    EXPECT_EQ(sched.delay(3, 1, 0, msg, rng), 1000);
    EXPECT_LE(sched.delay(0, 1, 0, msg, rng), 50);
  }
}

TEST(Schedulers, RushingFavorsCorruptedSenders) {
  Rng rng(3);
  adversary::RushingScheduler sched(std::set<PartyId>{0}, 1, 500);
  const auto msg = dummy_msg();
  EXPECT_EQ(sched.delay(0, 1, 0, msg, rng), 1);
  EXPECT_EQ(sched.delay(1, 0, 0, msg, rng), 500);
  EXPECT_EQ(sched.delay(2, 1, 0, msg, rng), 500);
}

TEST(Schedulers, ReorderProducesHeavyTail) {
  Rng rng(4);
  adversary::ReorderScheduler sched(100, 0.3, 1000);
  const auto msg = dummy_msg();
  int beyond = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto d = sched.delay(0, 1, 0, msg, rng);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 1000);
    if (d > 100) ++beyond;
  }
  // ~30% should violate the Delta = 100 bound.
  EXPECT_GT(beyond, 400);
  EXPECT_LT(beyond, 800);
}

// -------------------------------------------------------------- turncoat

TEST(Turncoat, ProtocolSurvivesAdaptiveCorruption) {
  const Params params = [] {
    Params p;
    p.n = 5;
    p.ts = 1;
    p.ta = 1;
    p.dim = 2;
    p.eps = 1e-2;
    p.delta = 1000;
    return p;
  }();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    AaRunConfig cfg{.params = params,
                    .inputs = {geo::Vec{0.0, 0.0}, geo::Vec{4.0, 1.0},
                               geo::Vec{1.0, 5.0}, geo::Vec{-3.0, 2.0},
                               geo::Vec{2.0, -2.0}},
                    .seed = seed};
    // Turns hostile right around the first iterations.
    cfg.byzantine[2] = [](const Params& p, const geo::Vec& input) {
      return std::make_unique<adversary::TurncoatParty>(p, input, 9 * p.delta);
    };
    cfg.delay = [](const Params& p) {
      return std::make_unique<sim::UniformDelay>(1, p.delta);
    };
    auto run = run_aa(std::move(cfg));
    ASSERT_TRUE(run.all_output()) << "seed " << seed;
    const auto outputs = run.outputs();
    EXPECT_LE(geo::diameter(outputs), params.eps + 1e-9) << "seed " << seed;
    for (const auto& v : outputs) {
      EXPECT_TRUE(geo::in_convex_hull(run.honest_inputs(), v, 1e-5))
          << "seed " << seed;
    }
  }
}

TEST(Turncoat, AsynchronousVariant) {
  Params params;
  params.n = 8;
  params.ts = 2;
  params.ta = 1;
  params.dim = 2;
  params.eps = 5e-2;
  params.delta = 1000;
  std::vector<geo::Vec> inputs;
  Rng rng(9);
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(geo::Vec{rng.next_double(-5, 5), rng.next_double(-5, 5)});
  }
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 21};
  cfg.byzantine[0] = [](const Params& p, const geo::Vec& input) {
    return std::make_unique<adversary::TurncoatParty>(p, input, 15 * p.delta);
  };
  cfg.delay = [](const Params& p) {
    return std::make_unique<adversary::ReorderScheduler>(p.delta, 0.25, 8 * p.delta);
  };
  auto run = run_aa(std::move(cfg));
  ASSERT_TRUE(run.all_output());
  EXPECT_LE(geo::diameter(run.outputs()), params.eps + 1e-9);
  for (const auto& v : run.outputs()) {
    EXPECT_TRUE(geo::in_convex_hull(run.honest_inputs(), v, 1e-5));
  }
}

// ------------------------------------------ two coordinated byzantine mix

TEST(Adversary, TwoCoordinatedAttackersAtThreshold) {
  // ts = 2: one equivocator + one halt-rusher simultaneously, plus a
  // rushing network favoring them.
  Params params;
  params.n = 8;
  params.ts = 2;
  params.ta = 1;
  params.dim = 2;
  params.eps = 5e-2;
  params.delta = 1000;
  std::vector<geo::Vec> inputs;
  Rng rng(11);
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(geo::Vec{rng.next_double(-8, 8), rng.next_double(-8, 8)});
  }
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 31};
  cfg.byzantine[0] = [](const Params& p, const geo::Vec&) {
    return std::make_unique<adversary::EquivocatorParty>(p, geo::Vec{100.0, -100.0},
                                                         13.0);
  };
  cfg.byzantine[1] = [](const Params& p, const geo::Vec&) {
    return std::make_unique<adversary::HaltRusherParty>(p, geo::Vec{50.0, 50.0});
  };
  cfg.delay = [](const Params& p) {
    return std::make_unique<adversary::RushingScheduler>(std::set<PartyId>{0, 1}, 1,
                                                         p.delta);
  };
  auto run = run_aa(std::move(cfg));
  ASSERT_TRUE(run.all_output());
  EXPECT_LE(geo::diameter(run.outputs()), params.eps + 1e-9);
  for (const auto& v : run.outputs()) {
    EXPECT_TRUE(geo::in_convex_hull(run.honest_inputs(), v, 1e-5));
  }
}

}  // namespace
}  // namespace hydra::test
