// net core (src/net/): the shared egress pipeline's accounting and id
// contracts, the backend registry, and sim/threads backend parity — the same
// spec must produce the same verdict on both backends, identical wire totals
// where the schedule cannot change them, and thread-backend invariant
// violations must carry a nonzero causal send id (the monitor-dispatch
// bracketing regression).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "harness/runner.hpp"
#include "net/backend.hpp"
#include "net/egress.hpp"
#include "net/wire_stats.hpp"
#include "obs/monitor.hpp"
#include "sim/message.hpp"

using namespace hydra;

namespace {

sim::Message test_message(std::size_t payload_bytes = 8) {
  sim::Message msg;
  msg.kind = 1;
  msg.payload.assign(payload_bytes, 0x5a);
  return msg;
}

faults::FaultInjector make_injector(const std::string& spec,
                                    bool synchronous = true) {
  const auto plan = faults::parse_fault_plan(spec);
  EXPECT_TRUE(plan.has_value()) << spec;
  return faults::FaultInjector(*plan, {.seed = 1,
                                       .synchronous = synchronous,
                                       .delta = 1000});
}

// --------------------------------------------------------------- pipeline

TEST(EgressPipeline, SelfDeliveryExemptFromWireAccounting) {
  net::EgressPipeline pipeline(net::EgressConfig{.n = 3});
  const auto msg = test_message();

  const auto self = pipeline.on_send(1, 1, msg, 0, 0, nullptr);
  EXPECT_EQ(self.copies, 1u);
  EXPECT_EQ(pipeline.messages(), 0u);
  EXPECT_EQ(pipeline.bytes(), 0u);

  const auto wire = pipeline.on_send(0, 1, msg, 0, 5, nullptr);
  EXPECT_EQ(wire.copies, 1u);
  EXPECT_EQ(wire.delay[0], 5);
  EXPECT_EQ(pipeline.messages(), 1u);
  EXPECT_EQ(pipeline.bytes(), msg.wire_size());

  net::WireStats stats;
  pipeline.export_stats(stats);
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.sent_per_party, (std::vector<std::uint64_t>{1, 0, 0}));
}

TEST(EgressPipeline, LazyIdsAllocateNothingWithObservabilityOff) {
  // The test binary installs no obs session, so the lazy (simulator) mode
  // must leave send_id at 0 — "no cause" — on every send.
  net::EgressPipeline pipeline(net::EgressConfig{.n = 2});
  ASSERT_FALSE(obs::enabled());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(pipeline.on_send(0, 1, test_message(), 0, 1, nullptr).send_id, 0u);
  }
}

TEST(EgressPipeline, EagerIdsAllocateForEverySendIncludingDrops) {
  // Eager (thread-transport) mode: every post consumes a mailbox tie-break
  // sequence number, observability on or off, dropped or not — the id stream
  // is a pure function of the post order under any fault plan.
  net::ConcurrentEgressPipeline pipeline(
      net::EgressConfig{.n = 3, .eager_ids = true});
  auto injector = make_injector("crash(party=0,at=0)");

  const auto first = pipeline.on_send(1, 2, test_message(), 0, 7, &injector);
  EXPECT_EQ(first.copies, 1u);
  EXPECT_EQ(first.seq[0], 0u);
  // Send ids carry the origin party in the high word (globally unique across
  // serve/join processes) and the 1-based counter in the low word.
  EXPECT_EQ(first.send_id, net::compose_send_id(1, 1));
  EXPECT_EQ(net::send_id_party(first.send_id), 1u);

  const auto dropped = pipeline.on_send(0, 2, test_message(), 0, 7, &injector);
  EXPECT_EQ(dropped.copies, 0u);
  EXPECT_EQ(dropped.seq[0], 1u);
  EXPECT_EQ(dropped.send_id, net::compose_send_id(0, 2));
  // The dropped message is still a party send: accounting is pre-injector.
  EXPECT_EQ(pipeline.messages(), 2u);

  const auto third = pipeline.on_send(1, 0, test_message(), 0, 7, &injector);
  EXPECT_EQ(third.seq[0], 2u);
  EXPECT_EQ(third.send_id, net::compose_send_id(1, 3));
}

TEST(EgressPipeline, DuplicateGetsSecondSeqAndSharesSendId) {
  net::ConcurrentEgressPipeline pipeline(
      net::EgressConfig{.n = 3, .eager_ids = true});
  auto injector = make_injector("dup(p=1,skew=100)");

  const auto out = pipeline.on_send(0, 1, test_message(), 0, 7, &injector);
  ASSERT_EQ(out.copies, 2u);
  EXPECT_EQ(out.seq[0], 0u);
  EXPECT_EQ(out.seq[1], 1u);
  // One send event, two deliveries with the same cause.
  EXPECT_EQ(out.send_id, net::compose_send_id(0, 1));
  EXPECT_GT(out.delay[1], out.delay[0] - 1);  // copy never beats the primary
  // The duplicate is network noise, not a party send.
  EXPECT_EQ(pipeline.messages(), 1u);
}

// --------------------------------------------------------------- registry

TEST(BackendRegistry, BuiltinsRegisteredAndUnknownNamesRejected) {
  harness::ensure_backends_registered();
  const auto names = harness::backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "sim"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "threads"), names.end());
  EXPECT_EQ(net::make_backend("no-such-backend", net::BackendConfig{}, nullptr),
            nullptr);
}

// ----------------------------------------------------------------- parity

harness::RunSpec parity_spec(std::uint64_t seed) {
  harness::RunSpec spec;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.protocol = harness::Protocol::kHybrid;
  spec.network = harness::Network::kSyncJitter;
  spec.adversary = harness::Adversary::kSilent;
  spec.corruptions = 1;
  spec.seed = seed;
  return spec;
}

// Acceptance criterion: the same spec reaches the same verdict on both
// backends. The thread schedule is nondeterministic, but D-AA holds under
// ANY admissible schedule, so the oracle verdict is schedule-independent.
TEST(BackendParity, VerdictsMatchAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto spec = parity_spec(seed);
    const auto sim = harness::execute(spec);
    spec.backend = "threads";
    const auto threads = harness::execute(spec);
    EXPECT_TRUE(sim.verdict.d_aa()) << "sim seed " << seed;
    EXPECT_TRUE(threads.verdict.d_aa()) << "threads seed " << seed;
    EXPECT_FALSE(threads.timed_out) << seed;
    // Every thread-backend party must have finished (clean shutdown, not
    // timeout) and reported watchdog progress.
    ASSERT_EQ(threads.progress.size(), spec.params.n) << seed;
    for (const auto& p : threads.progress) {
      EXPECT_TRUE(p.finished) << seed;
      EXPECT_GT(p.events, 0u) << seed;
    }
  }
}

// With no Byzantine parties and a fixed-round baseline, the message count is
// a pure function of the protocol — the schedule cannot change it — so the
// wire totals must agree exactly across backends. Fault-plan accounting is
// pre-injector by contract, so a dup plan must not change them either.
TEST(BackendParity, DeterministicWireTotalsMatch) {
  for (const std::string& faults : {std::string{}, std::string{"dup(p=0.4)"}}) {
    auto spec = parity_spec(2);
    spec.protocol = harness::Protocol::kSyncLockstep;
    spec.network = harness::Network::kSyncWorstCase;
    spec.adversary = harness::Adversary::kNone;
    spec.corruptions = 0;
    spec.faults = faults;
    const auto sim = harness::execute(spec);
    spec.backend = "threads";
    const auto threads = harness::execute(spec);
    EXPECT_EQ(sim.messages, threads.messages) << "faults='" << faults << "'";
    EXPECT_EQ(sim.bytes, threads.bytes) << "faults='" << faults << "'";
    EXPECT_EQ(sim.sent_per_party, threads.sent_per_party)
        << "faults='" << faults << "'";
  }
}

// ------------------------------------------------- causal attribution

// Regression for the monitor-dispatch bracketing satellite: thread workers
// wrap party.on_message in begin_dispatch/end_dispatch via net::DeliveryGate,
// so a violation raised while handling a message names the delivering send
// event as its cause. Before the net:: extraction the thread path skipped
// the bracketing and every thread-backend violation carried cause 0.
TEST(ThreadBackendMonitors, ViolationCarriesCausalSendId) {
  auto spec = parity_spec(17);
  spec.params.n = 8;
  spec.backend = "threads";
  // Under a synchronous network the iteration time gate (c_AA-it * Delta)
  // expires after the oBC output is already in, so adoption — and the
  // validity check — runs at a timer, which is correctly causeless. An
  // asynchronous network inverts that: the oBC output is the late event, so
  // the adopting dispatch is a message and the violation must name it.
  spec.network = harness::Network::kAsyncReorder;
  spec.monitors = obs::MonitorMode::kRecord;
  spec.params.test_faulty_escape = 50.0;  // deliberately breaks validity
  const auto result = harness::execute(spec);

  ASSERT_GT(result.monitor_violations, 0u);
  ASSERT_FALSE(result.violations.empty());
  // The faulty aggregation fires from on_obc_output, i.e. inside a message
  // dispatch, so at least one recorded violation must be causally attributed.
  const auto any_cause = [](const std::vector<obs::Violation>& vs) {
    return std::any_of(vs.begin(), vs.end(),
                       [](const obs::Violation& v) { return v.cause != 0; });
  };
  EXPECT_TRUE(any_cause(result.violations));

  // Same attribution contract on the simulator — both backends dispatch
  // through the same net::DeliveryGate.
  spec.backend = "sim";
  const auto sim_result = harness::execute(spec);
  ASSERT_GT(sim_result.monitor_violations, 0u);
  EXPECT_TRUE(any_cause(sim_result.violations));
}

}  // namespace
