// Shared scaffolding for protocol-level tests: thin recording parties around
// single sub-protocol instances, and a full-run helper for ΠAA.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "adversary/behaviors.hpp"
#include "adversary/schedulers.hpp"
#include "geometry/vec.hpp"
#include "protocols/aa.hpp"
#include "protocols/codec.hpp"
#include "protocols/init.hpp"
#include "protocols/keys.hpp"
#include "protocols/obc.hpp"
#include "protocols/params.hpp"
#include "protocols/rbc.hpp"
#include "sim/delay.hpp"
#include "sim/simulation.hpp"

namespace hydra::test {

using protocols::PairList;
using protocols::Params;

/// A party that runs only the RBC layer and records deliveries with their
/// local times. If `broadcast_at_start` is set, it initiates that broadcast.
class RbcTestParty : public sim::IParty {
 public:
  struct Delivery {
    Time at;
    InstanceKey key;
    Bytes payload;
  };

  explicit RbcTestParty(const Params& params)
      : mux_(params, [this](sim::Env& env, const InstanceKey& key, const Bytes& b) {
          deliveries.push_back({env.now(), key, b});
        }) {}

  void start(sim::Env& env) override {
    if (broadcast_payload) {
      mux_.broadcast(env, InstanceKey{protocols::kRbcInitValue, env.self(), 0},
                     *broadcast_payload);
    }
  }

  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override {
    if (msg.kind <= protocols::kRbcReady) mux_.handle(env, from, msg);
  }

  void on_timer(sim::Env&, std::uint64_t) override {}

  std::optional<Bytes> broadcast_payload;
  std::vector<Delivery> deliveries;

 private:
  protocols::RbcMux mux_;
};

/// A party that runs exactly one ΠoBC instance (iteration 1).
class ObcTestParty : public sim::IParty {
 public:
  ObcTestParty(const Params& params, geo::Vec input)
      : input_(std::move(input)),
        mux_(params, [this](sim::Env& env, const InstanceKey& key, const Bytes& b) {
          if (key.tag == protocols::kRbcObcValue && key.b == 1) {
            obc_.on_rbc_value(env, key.a, b);
          }
        }),
        obc_(params, 1, &mux_) {
    obc_.on_output = [this](sim::Env& env, const PairList&) { output_time = env.now(); };
  }

  void start(sim::Env& env) override { obc_.start(env, input_); }

  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override {
    if (msg.kind <= protocols::kRbcReady) {
      mux_.handle(env, from, msg);
    } else if (msg.kind == protocols::kDirect &&
               msg.key.tag == protocols::kObcReport && msg.key.b == 1) {
      obc_.on_report(env, from, msg.payload);
    }
  }

  void on_timer(sim::Env& env, std::uint64_t) override { obc_.step(env, true); }

  [[nodiscard]] const protocols::ObcInstance& obc() const { return obc_; }

  Time output_time = -1;

 private:
  geo::Vec input_;
  protocols::RbcMux mux_;
  protocols::ObcInstance obc_;
};

/// A party that runs exactly one Πinit instance.
class InitTestParty : public sim::IParty {
 public:
  InitTestParty(const Params& params, geo::Vec input)
      : input_(std::move(input)),
        mux_(params, [this](sim::Env& env, const InstanceKey& key, const Bytes& b) {
          if (key.tag == protocols::kRbcInitValue) init_.on_rbc_value(env, key.a, b);
          if (key.tag == protocols::kRbcInitReport) init_.on_rbc_report(env, key.a, b);
        }),
        init_(params, &mux_) {
    init_.on_output = [this](sim::Env& env, const protocols::InitInstance::Output&) {
      output_time = env.now();
    };
  }

  void start(sim::Env& env) override { init_.start(env, input_); }

  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override {
    if (msg.kind <= protocols::kRbcReady) {
      mux_.handle(env, from, msg);
    } else if (msg.kind == protocols::kDirect &&
               msg.key.tag == protocols::kInitWitnessSet) {
      init_.on_witness_set(env, from, msg.payload);
    }
  }

  void on_timer(sim::Env& env, std::uint64_t) override { init_.step(env, true); }

  [[nodiscard]] const protocols::InitInstance& init() const { return init_; }

  Time output_time = -1;

 private:
  geo::Vec input_;
  protocols::RbcMux mux_;
  protocols::InitInstance init_;
};

// ------------------------------------------------------- full ΠAA runs

using PartyFactory =
    std::function<std::unique_ptr<sim::IParty>(const Params&, const geo::Vec&)>;

struct AaRunConfig {
  Params params;
  std::vector<geo::Vec> inputs;               ///< one per party (byz may ignore)
  std::map<PartyId, PartyFactory> byzantine;  ///< slots taken by attackers
  std::function<std::unique_ptr<sim::DelayModel>(const Params&)> delay =
      [](const Params& p) { return std::make_unique<sim::FixedDelay>(p.delta); };
  std::uint64_t seed = 1;
  Time max_time = 500'000'000;
};

struct AaRun {
  std::unique_ptr<sim::Simulation> sim;
  std::vector<protocols::AaParty*> honest;  ///< owned by sim
  sim::SimStats stats;

  [[nodiscard]] bool all_output() const {
    for (const auto* p : honest) {
      if (!p->has_output()) return false;
    }
    return true;
  }

  [[nodiscard]] std::vector<geo::Vec> outputs() const {
    std::vector<geo::Vec> out;
    for (const auto* p : honest) {
      if (p->has_output()) out.push_back(p->output());
    }
    return out;
  }

  [[nodiscard]] std::vector<geo::Vec> honest_inputs() const {
    std::vector<geo::Vec> out;
    for (const auto* p : honest) out.push_back(p->input());
    return out;
  }
};

inline AaRun run_aa(AaRunConfig cfg) {
  AaRun run;
  run.sim = std::make_unique<sim::Simulation>(
      sim::SimConfig{.n = cfg.params.n,
                     .delta = cfg.params.delta,
                     .seed = cfg.seed,
                     .max_time = cfg.max_time},
      cfg.delay(cfg.params));
  for (PartyId id = 0; id < cfg.params.n; ++id) {
    const auto byz = cfg.byzantine.find(id);
    if (byz != cfg.byzantine.end()) {
      run.sim->add_party(byz->second(cfg.params, cfg.inputs[id]));
    } else {
      auto party = std::make_unique<protocols::AaParty>(cfg.params, cfg.inputs[id]);
      run.honest.push_back(party.get());
      run.sim->add_party(std::move(party));
    }
  }
  run.stats = run.sim->run();
  return run;
}

}  // namespace hydra::test
