// Semantics of the scoped-phase profiler (obs/prof.hpp): nesting and the
// self/total split, aggregation by name, per-context isolation under
// concurrent threads (the suite carries the `prof` label so the TSan/ASan
// presets run it), the disabled no-op, and the determinism contract — phase
// COUNTS are a pure function of (spec, seed) on the simulator backend even
// though the nanosecond fields are wall clock.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "harness/perf.hpp"
#include "harness/runner.hpp"
#include "obs/context.hpp"
#include "obs/prof.hpp"

using namespace hydra;

namespace {

/// Snapshot keyed by name, for convenient lookups.
std::map<std::string, obs::Profiler::Snapshot> by_name(const obs::Profiler& prof) {
  std::map<std::string, obs::Profiler::Snapshot> out;
  for (auto& s : prof.snapshot()) out.emplace(s.name, std::move(s));
  return out;
}

void spin_at_least(std::chrono::nanoseconds dur) {
  const auto until = std::chrono::steady_clock::now() + dur;
  while (std::chrono::steady_clock::now() < until) {
  }
}

}  // namespace

TEST(Prof, DisabledScopesRecordNothing) {
  ASSERT_FALSE(obs::prof_enabled());
  {
    HYDRA_PROF_SCOPE("phantom");
    HYDRA_PROF_SCOPE("phantom.child");
  }
  obs::Profiler prof;  // never installed; scopes above had nowhere to go
  EXPECT_TRUE(prof.snapshot().empty());
}

TEST(Prof, ScopedContextInstallsAndRestores) {
  obs::Profiler prof;
  obs::Context ctx;
  ctx.profiler = &prof;
  EXPECT_FALSE(obs::prof_enabled());
  {
    const obs::ScopedContext scope(&ctx);
    EXPECT_TRUE(obs::prof_enabled());
    EXPECT_EQ(obs::profiler(), &prof);
    HYDRA_PROF_SCOPE("inside");
  }
  EXPECT_FALSE(obs::prof_enabled());
  const auto phases = by_name(prof);
  ASSERT_TRUE(phases.contains("inside"));
  EXPECT_EQ(phases.at("inside").count, 1u);
}

TEST(Prof, ProcessWideFallbackProfiler) {
  obs::Profiler prof;
  obs::set_profiler(&prof);
  { HYDRA_PROF_SCOPE("global.phase"); }
  obs::set_profiler(nullptr);
  EXPECT_FALSE(obs::prof_enabled());
  const auto phases = by_name(prof);
  ASSERT_TRUE(phases.contains("global.phase"));
  EXPECT_EQ(phases.at("global.phase").count, 1u);
}

TEST(Prof, AggregatesByNameAcrossInvocations) {
  obs::Profiler prof;
  obs::set_profiler(&prof);
  constexpr int kReps = 100;
  for (int i = 0; i < kReps; ++i) {
    HYDRA_PROF_SCOPE("loop.body");
  }
  obs::set_profiler(nullptr);
  const auto phases = by_name(prof);
  ASSERT_TRUE(phases.contains("loop.body"));
  const auto& s = phases.at("loop.body");
  EXPECT_EQ(s.count, kReps);
  EXPECT_LE(s.min_ns, s.max_ns);
  EXPECT_GE(s.total_ns, s.max_ns);
  EXPECT_EQ(s.self_ns, s.total_ns);  // leaf scope: no children to subtract
  std::uint64_t bucket_total = 0;
  for (const auto b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);  // every sample lands in exactly one bucket
}

TEST(Prof, NestingChargesChildTimeToParentSelf) {
  obs::Profiler prof;
  obs::set_profiler(&prof);
  {
    HYDRA_PROF_SCOPE("parent");
    {
      HYDRA_PROF_SCOPE("child");
      spin_at_least(std::chrono::milliseconds(2));
    }
  }
  obs::set_profiler(nullptr);
  const auto phases = by_name(prof);
  ASSERT_TRUE(phases.contains("parent"));
  ASSERT_TRUE(phases.contains("child"));
  const auto& parent = phases.at("parent");
  const auto& child = phases.at("child");
  // Total includes the child; self excludes it. The parent body is a few
  // scope constructions, so nearly all of its total is child time.
  EXPECT_GE(parent.total_ns, child.total_ns);
  EXPECT_LE(parent.self_ns, parent.total_ns - child.total_ns / 2);
  EXPECT_EQ(child.self_ns, child.total_ns);
  EXPECT_GE(child.total_ns, 2'000'000u);  // the 2 ms spin
}

TEST(Prof, RecursiveSameNameAggregatesUnderOneKey) {
  obs::Profiler prof;
  obs::set_profiler(&prof);
  const std::function<void(int)> recurse = [&recurse](int depth) {
    HYDRA_PROF_SCOPE("recurse");
    if (depth > 0) recurse(depth - 1);
  };
  recurse(4);
  obs::set_profiler(nullptr);
  const auto phases = by_name(prof);
  ASSERT_TRUE(phases.contains("recurse"));
  const auto& s = phases.at("recurse");
  EXPECT_EQ(s.count, 5u);
  // Inner invocations are charged as children of the outer ones, so the
  // summed self time cannot exceed the outermost invocation's share.
  EXPECT_LE(s.self_ns, s.total_ns);
}

TEST(Prof, ResetDropsEverything) {
  obs::Profiler prof;
  obs::set_profiler(&prof);
  { HYDRA_PROF_SCOPE("ephemeral"); }
  obs::set_profiler(nullptr);
  EXPECT_FALSE(prof.snapshot().empty());
  prof.reset();
  EXPECT_TRUE(prof.snapshot().empty());
}

TEST(Prof, BucketOfLandsSamplesInLog2Buckets) {
  using P = obs::Profiler::PhaseStats;
  EXPECT_EQ(P::bucket_of(0), 0u);
  EXPECT_EQ(P::bucket_of(1), 1u);
  EXPECT_EQ(P::bucket_of(2), 2u);
  EXPECT_EQ(P::bucket_of(3), 2u);
  EXPECT_EQ(P::bucket_of(4), 3u);
  EXPECT_EQ(P::bucket_of(1023), 10u);
  EXPECT_EQ(P::bucket_of(1024), 11u);
  EXPECT_EQ(P::bucket_of(UINT64_MAX), obs::Profiler::kBuckets - 1);
}

TEST(Prof, SnapshotIsSortedByName) {
  obs::Profiler prof;
  obs::set_profiler(&prof);
  { HYDRA_PROF_SCOPE("zeta"); }
  { HYDRA_PROF_SCOPE("alpha"); }
  { HYDRA_PROF_SCOPE("mid"); }
  obs::set_profiler(nullptr);
  const auto snap = prof.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zeta");
}

// Two threads, each with its own Context + Profiler: recordings never leak
// across contexts, and a context-free thread records nowhere. Run under the
// TSan preset via the `prof` label.
TEST(Prof, PerContextIsolationAcrossThreads) {
  obs::Profiler prof_a;
  obs::Profiler prof_b;
  constexpr int kRepsA = 300;
  constexpr int kRepsB = 500;

  std::thread ta([&prof_a] {
    obs::Context ctx;
    ctx.profiler = &prof_a;
    const obs::ScopedContext scope(&ctx);
    for (int i = 0; i < kRepsA; ++i) {
      HYDRA_PROF_SCOPE("thread.a");
    }
  });
  std::thread tb([&prof_b] {
    obs::Context ctx;
    ctx.profiler = &prof_b;
    const obs::ScopedContext scope(&ctx);
    for (int i = 0; i < kRepsB; ++i) {
      HYDRA_PROF_SCOPE("thread.b");
    }
  });
  std::thread tc([] {  // no context: must record nowhere, race-free
    for (int i = 0; i < 100; ++i) {
      HYDRA_PROF_SCOPE("thread.c");
    }
  });
  ta.join();
  tb.join();
  tc.join();

  const auto a = by_name(prof_a);
  const auto b = by_name(prof_b);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a.at("thread.a").count, kRepsA);
  EXPECT_EQ(b.at("thread.b").count, kRepsB);
}

// Many threads hammering ONE profiler (the threads-backend shape: workers
// share the run's profiler through re-installed contexts). Counts must add
// up exactly; TSan must stay quiet.
TEST(Prof, SharedProfilerAcrossThreadsCountsExactly) {
  obs::Profiler prof;
  obs::Context ctx;
  ctx.profiler = &prof;
  constexpr int kThreads = 4;
  constexpr int kReps = 250;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ctx] {
      const obs::ScopedContext scope(&ctx);
      for (int i = 0; i < kReps; ++i) {
        HYDRA_PROF_SCOPE("shared.work");
        HYDRA_PROF_SCOPE("shared.inner");
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto phases = by_name(prof);
  ASSERT_TRUE(phases.contains("shared.work"));
  ASSERT_TRUE(phases.contains("shared.inner"));
  EXPECT_EQ(phases.at("shared.work").count, kThreads * kReps);
  EXPECT_EQ(phases.at("shared.inner").count, kThreads * kReps);
}

// ---------------------------------------------------- determinism contract

namespace {

harness::RunSpec perf_spec(const std::string& perf_out) {
  harness::RunSpec spec;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.network = harness::Network::kSyncJitter;
  spec.adversary = harness::Adversary::kSilent;
  spec.corruptions = 1;
  spec.seed = 11;
  spec.perf_out = perf_out;
  return spec;
}

}  // namespace

TEST(Prof, PhaseCountsAreDeterministicPerSeed) {
  const std::string path_a = testing::TempDir() + "hydra_prof_a.json";
  const std::string path_b = testing::TempDir() + "hydra_prof_b.json";
  EXPECT_TRUE(harness::execute(perf_spec(path_a)).verdict.d_aa());
  EXPECT_TRUE(harness::execute(perf_spec(path_b)).verdict.d_aa());

  const auto rows_a = harness::load_perf_json(path_a);
  const auto rows_b = harness::load_perf_json(path_b);
  ASSERT_TRUE(rows_a.has_value());
  ASSERT_TRUE(rows_b.has_value());
  ASSERT_FALSE(rows_a->empty());

  // Same phases, same counts — the ns fields are wall clock and may differ.
  ASSERT_EQ(rows_a->size(), rows_b->size());
  for (std::size_t i = 0; i < rows_a->size(); ++i) {
    EXPECT_EQ((*rows_a)[i].name, (*rows_b)[i].name) << i;
    EXPECT_EQ((*rows_a)[i].count, (*rows_b)[i].count) << (*rows_a)[i].name;
  }

  // The instrumented layers all show up: protocol, geometry, net, sim.
  std::map<std::string, std::uint64_t> counts;
  for (const auto& r : *rows_a) counts[r.name] = r.count;
  EXPECT_TRUE(counts.contains("aa.rbc"));
  EXPECT_TRUE(counts.contains("geo.safe_area"));
  EXPECT_TRUE(counts.contains("net.deliver"));
  EXPECT_TRUE(counts.contains("sim.run"));
  EXPECT_EQ(counts["sim.run"], 1u);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(Prof, PerfJsonStaysOutOfTraceAndMetrics) {
  const std::string trace = testing::TempDir() + "hydra_prof_trace.jsonl";
  const std::string metrics = testing::TempDir() + "hydra_prof_metrics.json";
  const std::string perf = testing::TempDir() + "hydra_prof_perf.json";
  auto spec = perf_spec(perf);
  spec.trace_out = trace;
  spec.metrics_out = metrics;
  EXPECT_TRUE(harness::execute(spec).verdict.d_aa());

  // No profiler output may contaminate the deterministic documents.
  const auto slurp = [](const std::string& path) {
    std::string out;
    if (FILE* f = std::fopen(path.c_str(), "rb")) {
      char buf[4096];
      std::size_t got = 0;
      while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
      std::fclose(f);
    }
    return out;
  };
  const std::string trace_doc = slurp(trace);
  const std::string metrics_doc = slurp(metrics);
  ASSERT_FALSE(trace_doc.empty());
  ASSERT_FALSE(metrics_doc.empty());
  EXPECT_EQ(trace_doc.find("phases"), std::string::npos);
  EXPECT_EQ(metrics_doc.find("phases"), std::string::npos);
  EXPECT_EQ(metrics_doc.find("_ns\""), std::string::npos);

  const std::string perf_doc = slurp(perf);
  EXPECT_NE(perf_doc.find("\"schema\":\"hydra-perf-v1\""), std::string::npos);

  std::remove(trace.c_str());
  std::remove(metrics.c_str());
  std::remove(perf.c_str());
}
