// Property-based tests for the exact 2-D kernel: hull idempotence,
// intersection algebra (commutativity, containment, identity, absorption),
// clip monotonicity, and cross-validation of polygon membership against the
// LP membership test.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "geometry/polygon.hpp"
#include "geometry/vec.hpp"

namespace hydra::geo {
namespace {

std::vector<Vec> random_points(Rng& rng, std::size_t count, double radius) {
  std::vector<Vec> pts;
  for (std::size_t i = 0; i < count; ++i) {
    pts.push_back(Vec{rng.next_double(-radius, radius), rng.next_double(-radius, radius)});
  }
  return pts;
}

/// Containment check: every vertex of `a` inside `b` (with tolerance).
bool contained_in(const ConvexPolygon2D& a, const ConvexPolygon2D& b, double tol) {
  for (const auto& v : a.vertices()) {
    if (!b.contains(v, tol)) return false;
  }
  return true;
}

TEST(PolygonProperties, HullIsIdempotent) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto pts = random_points(rng, 3 + rng.next_below(10), 10.0);
    const auto h1 = ConvexPolygon2D::hull_of(pts);
    const auto h2 = ConvexPolygon2D::hull_of(h1.vertices());
    EXPECT_EQ(h1.vertices().size(), h2.vertices().size()) << "trial " << trial;
    EXPECT_TRUE(contained_in(h1, h2, 1e-9));
    EXPECT_TRUE(contained_in(h2, h1, 1e-9));
  }
}

TEST(PolygonProperties, HullContainsAllInputPoints) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const auto pts = random_points(rng, 3 + rng.next_below(12), 10.0);
    const auto hull = ConvexPolygon2D::hull_of(pts);
    for (const auto& p : pts) {
      EXPECT_TRUE(hull.contains(p, 1e-7)) << "trial " << trial;
    }
  }
}

TEST(PolygonProperties, IntersectionIsCommutative) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = ConvexPolygon2D::hull_of(random_points(rng, 6, 10.0));
    const auto b = ConvexPolygon2D::hull_of(random_points(rng, 6, 10.0));
    const auto ab = a.intersect(b);
    const auto ba = b.intersect(a);
    EXPECT_EQ(ab.empty(), ba.empty()) << "trial " << trial;
    if (!ab.empty()) {
      EXPECT_TRUE(contained_in(ab, ba, 1e-6)) << "trial " << trial;
      EXPECT_TRUE(contained_in(ba, ab, 1e-6)) << "trial " << trial;
    }
  }
}

TEST(PolygonProperties, IntersectionContainedInBoth) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = ConvexPolygon2D::hull_of(random_points(rng, 7, 10.0));
    const auto b = ConvexPolygon2D::hull_of(random_points(rng, 7, 10.0));
    const auto c = a.intersect(b);
    if (c.empty()) continue;
    EXPECT_TRUE(contained_in(c, a, 1e-6)) << "trial " << trial;
    EXPECT_TRUE(contained_in(c, b, 1e-6)) << "trial " << trial;
  }
}

TEST(PolygonProperties, IntersectionWithSelfIsIdentity) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = ConvexPolygon2D::hull_of(random_points(rng, 8, 10.0));
    const auto aa = a.intersect(a);
    EXPECT_TRUE(contained_in(a, aa, 1e-6));
    EXPECT_TRUE(contained_in(aa, a, 1e-6));
    EXPECT_NEAR(a.diameter(), aa.diameter(), 1e-6);
  }
}

TEST(PolygonProperties, IntersectionWithSupersetIsAbsorbing) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    auto pts = random_points(rng, 6, 5.0);
    const auto small = ConvexPolygon2D::hull_of(pts);
    // A strict superset hull: add far-out points.
    auto big_pts = pts;
    big_pts.push_back(Vec{20.0, 20.0});
    big_pts.push_back(Vec{-20.0, 20.0});
    big_pts.push_back(Vec{0.0, -25.0});
    const auto big = ConvexPolygon2D::hull_of(big_pts);
    const auto c = small.intersect(big);
    ASSERT_FALSE(c.empty());
    EXPECT_TRUE(contained_in(c, small, 1e-6));
    EXPECT_TRUE(contained_in(small, c, 1e-6));
  }
}

TEST(PolygonProperties, ClipShrinksOrPreserves) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = ConvexPolygon2D::hull_of(random_points(rng, 8, 10.0));
    const double nx = rng.next_gaussian();
    const double ny = rng.next_gaussian();
    const double len = std::hypot(nx, ny);
    if (len < 1e-6) continue;
    const HalfPlane hp{nx / len, ny / len, rng.next_double(-5.0, 5.0)};
    const auto clipped = a.clip(hp);
    EXPECT_TRUE(contained_in(clipped, a, 1e-6)) << "trial " << trial;
    EXPECT_LE(clipped.diameter(), a.diameter() + 1e-9);
    // Every surviving vertex satisfies the half-plane.
    for (const auto& v : clipped.vertices()) {
      EXPECT_LE(hp.nx * v[0] + hp.ny * v[1], hp.c + 1e-6);
    }
  }
}

TEST(PolygonProperties, MembershipAgreesWithLpKernel) {
  Rng rng(8);
  int checked = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const auto pts = random_points(rng, 7, 10.0);
    const auto hull = ConvexPolygon2D::hull_of(pts);
    for (int probe = 0; probe < 8; ++probe) {
      const Vec q{rng.next_double(-12.0, 12.0), rng.next_double(-12.0, 12.0)};
      // Skip queries inside a band around the boundary, where the two
      // kernels' tolerance conventions may legitimately differ.
      if (hull.contains(q, 1e-3) != hull.contains(q, 0.0)) continue;
      const bool poly_in = hull.contains(q, 1e-7);
      const bool lp_in = in_convex_hull(pts, q, 1e-7);
      EXPECT_EQ(poly_in, lp_in) << "trial " << trial << " q=" << to_string(q);
      ++checked;
    }
  }
  EXPECT_GT(checked, 100);
}

TEST(PolygonProperties, DegenerateIntersections) {
  // Segment x segment crossing -> point.
  const auto s1 = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{-1.0, 0.0}, {1.0, 0.0}});
  const auto s2 = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.0, -1.0}, {0.0, 1.0}});
  const auto x = s1.intersect(s2);
  ASSERT_FALSE(x.empty());
  EXPECT_NEAR(x.diameter(), 0.0, 1e-9);
  EXPECT_TRUE(x.contains(Vec{0.0, 0.0}, 1e-7));

  // Parallel disjoint segments -> empty.
  const auto s3 = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{-1.0, 1.0}, {1.0, 1.0}});
  EXPECT_TRUE(s1.intersect(s3).empty());

  // Collinear overlapping segments -> the overlap.
  const auto s4 = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.5, 0.0}, {3.0, 0.0}});
  const auto o = s1.intersect(s4);
  ASSERT_FALSE(o.empty());
  EXPECT_NEAR(o.diameter(), 0.5, 1e-9);

  // Point inside polygon -> the point.
  const auto pt = ConvexPolygon2D::hull_of(std::vector<Vec>{{0.2, 0.1}});
  const auto box = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{-1.0, -1.0}, {1.0, -1.0}, {1.0, 1.0}, {-1.0, 1.0}});
  const auto pb = pt.intersect(box);
  ASSERT_FALSE(pb.empty());
  EXPECT_TRUE(pb.contains(Vec{0.2, 0.1}, 1e-9));

  // Point outside polygon -> empty.
  const auto far = ConvexPolygon2D::hull_of(std::vector<Vec>{{5.0, 5.0}});
  EXPECT_TRUE(far.intersect(box).empty());
}

TEST(PolygonProperties, SliverTriangleKeepsItsSmallVertex) {
  // Regression: a sliver with two huge vertices must not drop the third
  // (orientation tolerance must be operand-relative, not global).
  const std::vector<Vec> sliver{{1e6, -1e6}, {1.0, 0.0}, {0.0, 1.0}};
  const auto hull = ConvexPolygon2D::hull_of(sliver);
  EXPECT_EQ(hull.vertices().size(), 3u);
}

}  // namespace
}  // namespace hydra::geo
