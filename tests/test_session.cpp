// Tests for session multiplexing: several concurrent ΠAA instances over one
// network, with independent parameters and inputs per session, including a
// mix of honest and Byzantine participants.
#include <gtest/gtest.h>

#include <memory>

#include "geometry/convex.hpp"
#include "protocol_test_util.hpp"
#include "protocols/session.hpp"

namespace hydra::test {
namespace {

using protocols::SessionRouter;

Params make_params(std::size_t dim, double eps = 1e-2, std::size_t n = 5) {
  Params p;
  p.n = n;
  p.ts = 1;
  p.ta = 1;
  p.dim = dim;
  p.eps = eps;
  p.delta = 1000;
  return p;
}

TEST(Session, ThreeConcurrentAgreementsAllSucceed) {
  // Session 0: D = 1, session 1: D = 2, session 2: D = 3 — all running over
  // the same simulated network at once. n = 6 so the D = 3 session stays
  // feasible: (3+1)*1 + 1 = 5 < 6.
  const std::size_t n = 6;
  sim::Simulation sim({.n = n, .delta = 1000, .seed = 11},
                      std::make_unique<sim::UniformDelay>(1, 1000));

  std::vector<SessionRouter*> routers;
  Rng rng(5);
  std::vector<std::vector<geo::Vec>> inputs(3);
  for (std::size_t dim = 1; dim <= 3; ++dim) {
    for (std::size_t i = 0; i < n; ++i) {
      geo::Vec v(dim, 0.0);
      for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_double(-9, 9);
      inputs[dim - 1].push_back(std::move(v));
    }
  }

  for (PartyId id = 0; id < n; ++id) {
    auto router = std::make_unique<SessionRouter>();
    for (std::uint32_t s = 0; s < 3; ++s) {
      router->add_session(s, make_params(s + 1, 1e-2, n), inputs[s][id]);
    }
    routers.push_back(router.get());
    sim.add_party(std::move(router));
  }
  const auto stats = sim.run();
  EXPECT_FALSE(stats.hit_limit);

  for (std::uint32_t s = 0; s < 3; ++s) {
    std::vector<geo::Vec> outputs;
    for (auto* r : routers) {
      ASSERT_TRUE(r->session(s).has_output()) << "session " << s;
      outputs.push_back(r->session(s).output());
      EXPECT_TRUE(geo::in_convex_hull(inputs[s], r->session(s).output(), 1e-5));
    }
    EXPECT_LE(geo::diameter(outputs), make_params(s + 1, 1e-2, n).eps + 1e-9)
        << "session " << s;
  }
}

TEST(Session, SessionsAreIsolated) {
  // Two sessions with wildly different inputs: outputs must not bleed
  // between them (the D = 2 session converges near its own inputs, far from
  // the other session's).
  const std::size_t n = 5;
  sim::Simulation sim({.n = n, .delta = 1000, .seed = 13},
                      std::make_unique<sim::UniformDelay>(1, 1000));
  std::vector<SessionRouter*> routers;
  for (PartyId id = 0; id < n; ++id) {
    auto router = std::make_unique<SessionRouter>();
    router->add_session(0, make_params(2),
                        geo::Vec{1000.0 + id, 1000.0});  // cluster at ~1000
    router->add_session(7, make_params(2),
                        geo::Vec{-1000.0 - id, -1000.0});  // cluster at ~-1000
    routers.push_back(router.get());
    sim.add_party(std::move(router));
  }
  sim.run();
  for (auto* r : routers) {
    ASSERT_TRUE(r->all_output());
    EXPECT_GT(r->session(0).output()[0], 900.0);
    EXPECT_LT(r->session(7).output()[0], -900.0);
  }
}

TEST(Session, ByzantinePartyAffectsNoSession) {
  // One silent party; both sessions still satisfy D-AA among the honest.
  const std::size_t n = 5;
  sim::Simulation sim({.n = n, .delta = 1000, .seed = 17},
                      std::make_unique<sim::UniformDelay>(1, 1000));
  std::vector<SessionRouter*> honest;
  std::vector<std::vector<geo::Vec>> inputs(2);
  Rng rng(7);
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      inputs[s].push_back(geo::Vec{rng.next_double(-5, 5), rng.next_double(-5, 5)});
    }
  }
  for (PartyId id = 0; id < n; ++id) {
    if (id == 2) {
      sim.add_party(std::make_unique<adversary::SilentParty>());
      continue;
    }
    auto router = std::make_unique<SessionRouter>();
    router->add_session(0, make_params(2), inputs[0][id]);
    router->add_session(1, make_params(2), inputs[1][id]);
    honest.push_back(router.get());
    sim.add_party(std::move(router));
  }
  sim.run();

  for (std::uint32_t s = 0; s < 2; ++s) {
    std::vector<geo::Vec> outputs;
    std::vector<geo::Vec> honest_inputs;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != 2) honest_inputs.push_back(inputs[s][i]);
    }
    for (auto* r : honest) {
      ASSERT_TRUE(r->session(s).has_output());
      outputs.push_back(r->session(s).output());
      EXPECT_TRUE(geo::in_convex_hull(honest_inputs, r->session(s).output(), 1e-5));
    }
    EXPECT_LE(geo::diameter(outputs), make_params(2).eps + 1e-9);
  }
}

TEST(Session, UnknownSessionTrafficDropped) {
  // A spammer blasting keys with arbitrary session bits must not disturb a
  // router hosting a single session.
  const std::size_t n = 5;
  sim::Simulation sim({.n = n, .delta = 1000, .seed = 19},
                      std::make_unique<sim::UniformDelay>(1, 1000));
  std::vector<SessionRouter*> honest;
  const auto params = make_params(2);
  for (PartyId id = 0; id < n; ++id) {
    if (id == 4) {
      sim.add_party(std::make_unique<adversary::SpammerParty>(
          params, 23, params.delta / 2, 40 * params.delta));
      continue;
    }
    auto router = std::make_unique<SessionRouter>();
    router->add_session(3, params, geo::Vec{1.0 * id, -1.0 * id});
    honest.push_back(router.get());
    sim.add_party(std::move(router));
  }
  sim.run();
  for (auto* r : honest) {
    ASSERT_TRUE(r->session(3).has_output());
  }
}

}  // namespace
}  // namespace hydra::test
