// Socket transport: wire-codec hardening (malformed and adversarial-length
// frames must fail cleanly, never crash — run under ASan in CI), the
// per-connection authenticated-sender contract end-to-end against a live
// SocketNetwork, and tcp/uds backend parity with sim/threads — the same
// verdicts, identical deterministic wire totals, and the same
// timeout/crash-excusal reporting.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "harness/runner.hpp"
#include "sim/delay.hpp"
#include "sim/env.hpp"
#include "transport/socket_net.hpp"
#include "transport/socket_wire.hpp"

namespace hydra {
namespace {

using transport::SocketNetConfig;
using transport::SocketNetwork;
namespace wire = transport::wire;

// ------------------------------------------------------------- wire codec

TEST(SocketWire, HelloRoundTrip) {
  const wire::Hello h{.run_id = 0xDEADBEEFCAFEull, .from = 3, .n = 7};
  const auto frame = wire::decode_frame(wire::encode_hello(h));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, wire::FrameType::kHello);
  EXPECT_EQ(frame->hello.run_id, h.run_id);
  EXPECT_EQ(frame->hello.from, h.from);
  EXPECT_EQ(frame->hello.n, h.n);
}

TEST(SocketWire, MsgRoundTrip) {
  sim::Message m;
  m.key = InstanceKey{.tag = 5, .a = 2, .b = 9};
  m.kind = 42;
  m.payload = Bytes{1, 2, 3, 250, 251};
  const auto frame = wire::decode_frame(wire::encode_msg(1, 4, 77, m));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, wire::FrameType::kMsg);
  EXPECT_EQ(frame->msg.key, m.key);
  EXPECT_EQ(frame->msg.from, 1u);
  EXPECT_EQ(frame->msg.to, 4u);
  EXPECT_EQ(frame->msg.seq, 77u);
  EXPECT_EQ(frame->msg.kind, 42u);
  EXPECT_EQ(frame->msg.payload, m.payload);
}

TEST(SocketWire, FinRoundTrip) {
  const auto frame = wire::decode_frame(wire::encode_fin(6));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, wire::FrameType::kFin);
  EXPECT_EQ(frame->fin.from, 6u);
}

TEST(SocketWire, RejectsMalformedFrames) {
  // Empty body.
  EXPECT_FALSE(wire::decode_frame({}).has_value());
  // Unknown frame type.
  const Bytes unknown{0x7F, 0, 0, 0};
  EXPECT_FALSE(wire::decode_frame(unknown).has_value());
  // Wrong magic on HELLO.
  Bytes bad_magic = wire::encode_hello({.run_id = 1, .from = 0, .n = 4});
  bad_magic[1] ^= 0xFF;
  EXPECT_FALSE(wire::decode_frame(bad_magic).has_value());
  // A mismatched version still DECODES — the handshake layer compares it to
  // kVersion and rejects with an actionable message naming both versions
  // (silently dropping the frame here would leave the peer with nothing to
  // report). The captured value must be the peer's, not ours.
  Bytes bad_version = wire::encode_hello({.run_id = 1, .from = 0, .n = 4});
  bad_version[5] ^= 0x01;
  const auto other = wire::decode_frame(bad_version);
  ASSERT_TRUE(other.has_value());
  EXPECT_NE(other->hello.version, wire::kVersion);
  // Trailing garbage after a valid frame.
  Bytes trailing = wire::encode_fin(2);
  trailing.push_back(0);
  EXPECT_FALSE(wire::decode_frame(trailing).has_value());
}

TEST(SocketWire, RejectsAdversarialPayloadLength) {
  // A MSG whose payload length prefix claims ~4 GiB with a tiny body: the
  // hardened Reader must report failure, never over-read.
  sim::Message m;
  m.kind = 1;
  m.payload = Bytes{9, 9, 9};
  Bytes body = wire::encode_msg(0, 1, 1, m);
  // The payload length prefix is the 4 bytes before the last 3 payload bytes.
  const std::size_t len_at = body.size() - m.payload.size() - 4;
  for (const std::uint32_t lie : {0xFFFFFFFFu, 0xFFFFFFF0u, 0x80000000u, 4u}) {
    Bytes lying = body;
    for (int i = 0; i < 4; ++i) {
      lying[len_at + i] = static_cast<std::uint8_t>(lie >> (8 * i));
    }
    EXPECT_FALSE(wire::decode_frame(lying).has_value()) << "lie=" << lie;
  }
}

TEST(SocketWire, TruncationsNeverDecodeAsValid) {
  sim::Message m;
  m.key = InstanceKey{.tag = 1, .a = 2, .b = 3};
  m.kind = 7;
  m.payload = Bytes(16, 0xAA);
  const Bytes body = wire::encode_msg(2, 3, 99, m);
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    const auto frame =
        wire::decode_frame(std::span<const std::uint8_t>(body.data(), cut));
    EXPECT_FALSE(frame.has_value()) << "cut=" << cut;
  }
}

TEST(SocketWire, MutationFuzzNeverCrashes) {
  // Random byte-flips over valid frames plus pure-noise bodies. The only
  // contract: decode_frame returns (engaged or not) — no crash, no UB. Run
  // under ASan by the socket CI job.
  Rng rng(2024);
  sim::Message m;
  m.key = InstanceKey{.tag = 3, .a = 1, .b = 4};
  m.kind = 5;
  m.payload = Bytes(32, 0x5C);
  const Bytes valid = wire::encode_msg(0, 1, 12, m);
  for (int i = 0; i < 2000; ++i) {
    Bytes mutated = valid;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    (void)wire::decode_frame(mutated);
  }
  for (int i = 0; i < 2000; ++i) {
    Bytes noise(rng.next_below(64), 0);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_below(256));
    (void)wire::decode_frame(noise);
  }
}

TEST(SocketWire, ValidateMsgEnforcesAuthThenDest) {
  wire::Msg m;
  m.from = 2;
  m.to = 0;
  EXPECT_EQ(wire::validate_msg(m, /*bound_from=*/2, /*local_to=*/0, 4), nullptr);
  // Claimed sender != the id bound at handshake: "auth", regardless of dest.
  EXPECT_STREQ(wire::validate_msg(m, /*bound_from=*/1, /*local_to=*/0, 4), "auth");
  // Right sender, wrong destination coordinates: "dest".
  m.to = 3;
  EXPECT_STREQ(wire::validate_msg(m, 2, 0, 4), "dest");
  m.to = 0;
  m.from = 9;  // out of range — but bound_from mismatch wins first
  EXPECT_STREQ(wire::validate_msg(m, 2, 0, 4), "auth");
  EXPECT_STREQ(wire::validate_msg(m, 9, 0, 4), "dest");
}

TEST(SocketWire, InstanceTagRoundTrips) {
  // The instance id rides the high bits of InstanceKey::tag (common/types.hpp)
  // and must survive the codec untouched — the mux demultiplexes on it.
  sim::Message m;
  const std::uint32_t instance = 0x00ABCDEFu;  // near kMaxInstances
  m.key = InstanceKey{.tag = (instance << kInstanceTagShift) | 7u, .a = 3, .b = 1};
  m.kind = 9;
  m.payload = Bytes{42};
  const auto frame = wire::decode_frame(wire::encode_msg(0, 1, 5, m));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->msg.key.tag, m.key.tag);
  EXPECT_EQ(frame->msg.key.tag >> kInstanceTagShift, instance);
  EXPECT_EQ(frame->msg.key.tag & kInstanceTagMask, 7u);
}

TEST(SocketWire, ValidateMsgBoundsInstanceTag) {
  wire::Msg m;
  m.from = 2;
  m.to = 0;
  m.key.tag = (31u << kInstanceTagShift) | 3u;  // instance 31
  // Limit 0 = single-instance deployments: the field is not policed.
  EXPECT_EQ(wire::validate_msg(m, 2, 0, 4, /*instance_tag_limit=*/0), nullptr);
  // In range: instance 31 < 32.
  EXPECT_EQ(wire::validate_msg(m, 2, 0, 4, 32), nullptr);
  // At and past the bound: dropped as "instance".
  EXPECT_STREQ(wire::validate_msg(m, 2, 0, 4, 31), "instance");
  EXPECT_STREQ(wire::validate_msg(m, 2, 0, 4, 1), "instance");
  // Auth still wins first — a forged sender is the stronger signal.
  EXPECT_STREQ(wire::validate_msg(m, 1, 0, 4, 1), "auth");
}

TEST(SocketEndpoints, UdsPathLengthValidated) {
  EXPECT_EQ(transport::validate_uds_endpoint("/tmp/ok.sock"), "");
  EXPECT_NE(transport::validate_uds_endpoint(""), "");
  const std::size_t limit = sizeof(sockaddr_un{}.sun_path);
  const std::string longest_ok(limit - 1, 'a');
  EXPECT_EQ(transport::validate_uds_endpoint(longest_ok), "");
  const std::string too_long(limit, 'a');
  const std::string error = transport::validate_uds_endpoint(too_long);
  ASSERT_FALSE(error.empty());
  // Actionable: names the offending path, its size, and the OS limit.
  EXPECT_NE(error.find(too_long), std::string::npos);
  EXPECT_NE(error.find(std::to_string(limit - 1)), std::string::npos);
  EXPECT_NE(error.find("sun_path"), std::string::npos);
}

// ------------------------------------- authenticated sender, end to end

/// Minimal party: quiescent until a kind-42 message arrives.
class WaitParty final : public sim::IParty {
 public:
  void start(sim::Env&) override {}
  void on_message(sim::Env&, PartyId, const sim::Message& m) override {
    if (m.kind == 42) got_.store(true, std::memory_order_release);
  }
  void on_timer(sim::Env&, std::uint64_t) override {}
  [[nodiscard]] bool got() const { return got_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> got_{false};
};

bool send_all(int fd, const Bytes& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

Bytes with_length_prefix(const Bytes& body) {
  Bytes out;
  const auto len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

int connect_uds_path(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
      return fd;
    }
    if (fd >= 0) ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

// Drives a live SocketNetwork from a raw socket: a forged-sender frame must
// be dropped and counted WITHOUT closing the connection (one forged frame
// must not censor honest traffic behind it), a garbage frame must poison its
// own connection, and correctly authenticated frames must deliver.
TEST(SocketAuth, ForgedSenderDroppedCountedAndDeliveryContinues) {
  char dir[] = "/tmp/hydra-sockauth-XXXXXX";
  ASSERT_NE(::mkdtemp(dir), nullptr);
  const std::string p0 = std::string(dir) + "/p0.sock";
  const std::string p1 = std::string(dir) + "/p1.sock";

  SocketNetConfig config;
  config.n = 2;
  config.delta = 100;
  config.us_per_tick = 1.0;
  config.seed = 7;
  config.timeout_ms = 20'000;
  config.uds = true;
  config.endpoints = {p0, p1};
  SocketNetwork net(config, std::make_unique<sim::FixedDelay>(100));

  std::vector<std::unique_ptr<sim::IParty>> parties;
  auto* w0 = new WaitParty();
  auto* w1 = new WaitParty();
  parties.emplace_back(w0);
  parties.emplace_back(w1);

  std::thread attacker([&] {
    sim::Message msg;
    msg.kind = 42;
    msg.payload = Bytes{1};

    // Connection A -> party 0, handshake claiming party 1.
    const int a = connect_uds_path(p0);
    ASSERT_GE(a, 0);
    ASSERT_TRUE(send_all(a, with_length_prefix(wire::encode_hello(
                                {.run_id = config.seed, .from = 1, .n = 2}))));
    // Forged frame: header says from=0 on a connection bound to 1 -> auth
    // drop, connection stays up.
    ASSERT_TRUE(send_all(a, with_length_prefix(wire::encode_msg(0, 0, 1, msg))));
    // Honest frame behind the forgery still delivers.
    ASSERT_TRUE(send_all(a, with_length_prefix(wire::encode_msg(1, 0, 2, msg))));

    // Connection B -> party 1: garbage body poisons the connection.
    const int b = connect_uds_path(p1);
    ASSERT_GE(b, 0);
    ASSERT_TRUE(send_all(b, with_length_prefix(wire::encode_hello(
                                {.run_id = config.seed, .from = 0, .n = 2}))));
    ASSERT_TRUE(send_all(b, with_length_prefix(Bytes{0x7F, 1, 2, 3})));
    ::close(b);

    // Connection C -> party 1: clean, delivers the finisher.
    const int c = connect_uds_path(p1);
    ASSERT_GE(c, 0);
    ASSERT_TRUE(send_all(c, with_length_prefix(wire::encode_hello(
                                {.run_id = config.seed, .from = 0, .n = 2}))));
    ASSERT_TRUE(send_all(c, with_length_prefix(wire::encode_msg(0, 1, 3, msg))));
    ::close(a);
    ::close(c);
  });

  const auto stats = net.run(parties, [](const sim::IParty& party, PartyId) {
    return static_cast<const WaitParty&>(party).got();
  });
  attacker.join();

  EXPECT_FALSE(stats.timed_out) << stats.timeout_detail;
  EXPECT_TRUE(w0->got());
  EXPECT_TRUE(w1->got());
  EXPECT_GE(stats.frames_auth_dropped, 1u);
  EXPECT_GE(stats.frames_decode_dropped, 1u);

  ::unlink(p0.c_str());
  ::unlink(p1.c_str());
  ::rmdir(dir);
}

// ------------------------------------------------------------------ parity

harness::RunSpec parity_spec(std::uint64_t seed) {
  harness::RunSpec spec;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.protocol = harness::Protocol::kHybrid;
  spec.network = harness::Network::kSyncJitter;
  spec.adversary = harness::Adversary::kSilent;
  spec.corruptions = 1;
  spec.seed = seed;
  return spec;
}

TEST(SocketBackendRegistry, TcpAndUdsRegistered) {
  const auto names = harness::backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "tcp"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "uds"), names.end());
}

// Acceptance criterion: the same spec reaches the same verdict over real
// sockets as in-process — D-AA holds under ANY admissible schedule, so the
// oracle verdict is schedule-independent. Clean runs must also report zero
// hardened-ingress drops: every frame honest parties exchange decodes and
// authenticates.
TEST(SocketBackendParity, VerdictsMatchAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    for (const std::string& backend : {std::string{"tcp"}, std::string{"uds"}}) {
      auto spec = parity_spec(seed);
      spec.backend = backend;
      const auto result = harness::execute(spec);
      EXPECT_TRUE(result.verdict.d_aa()) << backend << " seed " << seed;
      EXPECT_FALSE(result.timed_out) << backend << " seed " << seed;
      EXPECT_EQ(result.frames_auth_dropped, 0u) << backend << " seed " << seed;
      EXPECT_EQ(result.frames_decode_dropped, 0u) << backend << " seed " << seed;
      ASSERT_EQ(result.progress.size(), spec.params.n) << backend;
      for (const auto& p : result.progress) {
        EXPECT_TRUE(p.finished) << backend << " seed " << seed;
        EXPECT_GT(p.events, 0u) << backend << " seed " << seed;
      }
    }
  }
}

// With no Byzantine parties and a fixed-round baseline under the lockstep
// delay model, the message count is a pure function of the protocol, so the
// wire totals must agree exactly across all four backends. Fault-plan
// accounting is pre-injector by contract, so a dup plan must not change
// them either.
TEST(SocketBackendParity, DeterministicWireTotalsMatchSimAndThreads) {
  for (const std::string& faults : {std::string{}, std::string{"dup(p=0.4)"}}) {
    auto spec = parity_spec(2);
    spec.protocol = harness::Protocol::kSyncLockstep;
    spec.network = harness::Network::kSyncWorstCase;
    spec.adversary = harness::Adversary::kNone;
    spec.corruptions = 0;
    spec.faults = faults;
    const auto baseline = harness::execute(spec);  // backend "sim"
    spec.backend = "threads";
    const auto threads = harness::execute(spec);
    spec.backend = "tcp";
    const auto tcp = harness::execute(spec);
    spec.backend = "uds";
    const auto uds = harness::execute(spec);
    for (const auto* result : {&threads, &tcp, &uds}) {
      EXPECT_EQ(baseline.messages, result->messages) << "faults='" << faults << "'";
      EXPECT_EQ(baseline.bytes, result->bytes) << "faults='" << faults << "'";
      EXPECT_EQ(baseline.sent_per_party, result->sent_per_party)
          << "faults='" << faults << "'";
    }
    EXPECT_EQ(tcp.frames_auth_dropped, 0u);
    EXPECT_EQ(tcp.frames_decode_dropped, 0u);
  }
}

// --------------------------------------------- timeout & crash excusal

/// Party ids named "party N:" in a timeout_detail string.
std::set<PartyId> parties_named(const std::string& detail) {
  std::set<PartyId> out;
  std::size_t at = 0;
  while ((at = detail.find("party ", at)) != std::string::npos) {
    at += 6;
    out.insert(static_cast<PartyId>(std::strtoul(detail.c_str() + at, nullptr, 10)));
  }
  return out;
}

// The watchdog-parity satellite: a fault plan that crash-stops two parties
// at t=0 starves the rest (2 crashed > ts = 1), so the run times out — and
// BackendStats::timeout_detail must name exactly the stalled parties, with
// the crash-windowed ones excused, identically on threads and tcp.
TEST(SocketBackendParity, TimeoutDetailNamesStalledPartiesLikeThreads) {
  const auto run = [](const std::string& backend) {
    auto spec = parity_spec(3);
    spec.adversary = harness::Adversary::kNone;
    spec.corruptions = 0;
    spec.faults = "crash(party=0,at=0);crash(party=1,at=0)";
    spec.timeout_ms = 1200;  // the run cannot finish; keep the test fast
    spec.backend = backend;
    return harness::execute(spec);
  };
  const auto threads = run("threads");
  const auto tcp = run("tcp");
  for (const auto* result : {&threads, &tcp}) {
    EXPECT_TRUE(result->timed_out);
    const auto named = parties_named(result->timeout_detail);
    // Crash-windowed parties are excused, every other (stalled) party named.
    EXPECT_EQ(named, (std::set<PartyId>{2, 3, 4})) << result->timeout_detail;
    ASSERT_EQ(result->progress.size(), 5u);
    EXPECT_TRUE(result->progress[0].crash_stopped);
    EXPECT_TRUE(result->progress[1].crash_stopped);
  }
  // The reporting format is part of the backend-parity contract.
  EXPECT_NE(tcp.timeout_detail.find("unfinished after"), std::string::npos);
  EXPECT_NE(tcp.timeout_detail.find("last progress at tick"), std::string::npos);
}

}  // namespace
}  // namespace hydra
