// Conformance suite for the value-domain layer (src/domain/): every
// registered domain must satisfy the same contract — codec round-trips,
// metric axioms, aggregation landing inside the validity set, and the
// contraction bound actually delivering Πinit's iteration estimate — plus
// TreeDomain-specific checks (geodesic hulls, path midpoints, integrality)
// and harness integration (a tree run is deterministic per (spec, seed)).
//
// Euclidean BYTE-identity with the pre-domain-layer commit is covered at
// the CLI level by cli_domain_test.sh against tests/golden/.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "domain/domain.hpp"
#include "domain/tree.hpp"
#include "harness/runner.hpp"
#include "protocols/codec.hpp"

namespace hydra {
namespace {

using domain::AggregateSpec;
using domain::TreeDomain;
using domain::ValueDomain;

/// Deterministic sample values for a domain: its own generator when it has
/// one (tree/path), a fixed Euclidean set otherwise.
std::vector<geo::Vec> sample_values(const ValueDomain& dom) {
  const std::size_t dim = dom.required_dim().value_or(2);
  if (auto made = dom.make_inputs(7, dim, 10.0, 42)) return std::move(*made);
  return {geo::Vec{0.0, 0.0}, geo::Vec{10.0, 0.0},  geo::Vec{0.0, 10.0},
          geo::Vec{3.0, 4.0}, geo::Vec{-2.0, 1.5},  geo::Vec{5.0, 5.0},
          geo::Vec{1.0, -3.0}};
}

class DomainConformance : public ::testing::TestWithParam<std::string> {
 protected:
  const ValueDomain& dom() const { return *domain::find(GetParam()); }
};

TEST(DomainRegistry, FindNamesAndResolve) {
  const auto names = domain::names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "euclid");
  EXPECT_EQ(names[1], "tree");
  EXPECT_EQ(names[2], "path");
  for (const auto& name : names) {
    const auto* dom = domain::find(name);
    ASSERT_NE(dom, nullptr) << name;
    EXPECT_EQ(dom->name(), name);
    EXPECT_NE(domain::known_names().find(name), std::string::npos);
  }
  EXPECT_EQ(domain::find("bogus"), nullptr);
  // The null pointer means Euclidean everywhere (the byte-identity contract).
  EXPECT_EQ(&domain::resolve(nullptr), &domain::euclid());
  EXPECT_EQ(domain::find("euclid"), &domain::euclid());
}

TEST_P(DomainConformance, ValidatesItsOwnSamples) {
  for (const auto& v : sample_values(dom())) {
    EXPECT_TRUE(dom().validate(v)) << dom().format_value(v);
  }
}

TEST_P(DomainConformance, CodecRoundTrip) {
  // The wire format is the domain-agnostic f64 vector; the domain only adds
  // content validation. A valid value must survive encode→decode with the
  // domain's validator installed.
  for (const auto& v : sample_values(dom())) {
    const auto bytes = protocols::encode_value(v);
    const auto back = protocols::decode_value(bytes, v.dim(), &dom());
    ASSERT_TRUE(back.has_value()) << dom().format_value(v);
    EXPECT_TRUE(*back == v);
  }
}

TEST_P(DomainConformance, MetricAxioms) {
  const auto values = sample_values(dom());
  for (const auto& a : values) {
    EXPECT_DOUBLE_EQ(dom().distance(a, a), 0.0);
    for (const auto& b : values) {
      const double dab = dom().distance(a, b);
      EXPECT_GE(dab, 0.0);
      EXPECT_DOUBLE_EQ(dab, dom().distance(b, a));
      for (const auto& c : values) {
        EXPECT_LE(dab, dom().distance(a, c) + dom().distance(c, b) + 1e-12);
      }
    }
  }
  // diameter is the max pairwise distance.
  double expected = 0.0;
  for (const auto& a : values) {
    for (const auto& b : values) expected = std::max(expected, dom().distance(a, b));
  }
  EXPECT_DOUBLE_EQ(dom().diameter(values), expected);
  EXPECT_DOUBLE_EQ(dom().diameter({}), 0.0);
}

TEST_P(DomainConformance, AggregateLandsInValiditySet) {
  // The safe-area rule must emit a value inside the domain's convex closure
  // of the inputs — this is exactly what the validity monitor checks live.
  const auto values = sample_values(dom());
  const AggregateSpec spec{values.size(), 1, 1, false, {}};
  const auto result = dom().aggregate(spec, values);
  EXPECT_TRUE(dom().in_validity_set(values, result.value, 1e-6))
      << dom().format_value(result.value);
  EXPECT_TRUE(dom().validate(result.value));
}

TEST_P(DomainConformance, AggregateIsDeterministic) {
  const auto values = sample_values(dom());
  const AggregateSpec spec{values.size(), 1, 1, false, {}};
  const auto a = dom().aggregate(spec, values);
  const auto b = dom().aggregate(spec, values);
  EXPECT_TRUE(a.value == b.value);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
}

TEST_P(DomainConformance, ContractionBoundDeliversSufficientIterations) {
  const double factor = dom().contraction_factor();
  EXPECT_GT(factor, 0.0);
  EXPECT_LT(factor, 1.0);
  // Πinit promises that T iterations contract any initial diameter below
  // eps; iterating the monitor's own per-layer bound must agree (with a
  // hair of slack for the Euclidean bound's relative epsilon).
  const double eps = std::max(0.25, dom().min_eps());
  for (const double diam : {1.0, 9.0, 100.0, 1234.0}) {
    const auto t = dom().sufficient_iterations(eps, diam);
    EXPECT_GE(t, 1u);
    double d = diam;
    for (std::uint64_t i = 0; i < t; ++i) d = dom().contraction_bound(factor, d);
    EXPECT_LE(d, eps * (1.0 + 1e-6)) << "diam " << diam << " T " << t;
  }
}

TEST_P(DomainConformance, FeasibilityMatrix) {
  const std::size_t dim = dom().required_dim().value_or(2);
  EXPECT_TRUE(dom().feasible(7, 1, 1, dim));
  EXPECT_FALSE(dom().feasible(3, 1, 1, dim));  // n <= 3 ts everywhere
  EXPECT_FALSE(dom().feasible(7, 1, 2, dim));  // ta > ts everywhere
}

TEST_P(DomainConformance, FormatValueNonEmpty) {
  for (const auto& v : sample_values(dom())) {
    EXPECT_FALSE(dom().format_value(v).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainConformance,
                         ::testing::ValuesIn(domain::names()),
                         [](const auto& info) { return info.param; });

// --- TreeDomain specifics ---------------------------------------------------

// Heap-layout 7-vertex binary tree: 0 -> {1, 2}, 1 -> {3, 4}, 2 -> {5, 6}.
TEST(TreeDomain, VertexDistances) {
  const TreeDomain t("t7", domain::binary_tree_parents(7));
  ASSERT_EQ(t.vertex_count(), 7u);
  EXPECT_DOUBLE_EQ(t.distance(geo::Vec{3.0}, geo::Vec{3.0}), 0.0);
  EXPECT_DOUBLE_EQ(t.distance(geo::Vec{3.0}, geo::Vec{1.0}), 1.0);
  EXPECT_DOUBLE_EQ(t.distance(geo::Vec{3.0}, geo::Vec{4.0}), 2.0);
  EXPECT_DOUBLE_EQ(t.distance(geo::Vec{3.0}, geo::Vec{5.0}), 4.0);
  EXPECT_DOUBLE_EQ(t.distance(geo::Vec{0.0}, geo::Vec{6.0}), 2.0);
}

TEST(TreeDomain, ValidateRejectsNonVertices) {
  const TreeDomain t("t7", domain::binary_tree_parents(7));
  EXPECT_TRUE(t.validate(geo::Vec{0.0}));
  EXPECT_TRUE(t.validate(geo::Vec{6.0}));
  EXPECT_FALSE(t.validate(geo::Vec{7.0}));    // out of range
  EXPECT_FALSE(t.validate(geo::Vec{-1.0}));   // negative
  EXPECT_FALSE(t.validate(geo::Vec{1.5}));    // not a label
  EXPECT_FALSE(t.validate(geo::Vec{1.0, 2.0}));  // wrong dimension
  // And the codec enforces it: a Byzantine payload carrying a non-vertex
  // decodes to nullopt, exactly like a structurally broken frame.
  EXPECT_FALSE(
      protocols::decode_value(protocols::encode_value(geo::Vec{1.5}), 1, &t));
  EXPECT_TRUE(
      protocols::decode_value(protocols::encode_value(geo::Vec{2.0}), 1, &t));
}

TEST(TreeDomain, GeodesicValiditySet) {
  const TreeDomain t("t7", domain::binary_tree_parents(7));
  const std::vector<geo::Vec> basis{geo::Vec{3.0}, geo::Vec{4.0}};
  // hull({3, 4}) is the path 3-1-4.
  EXPECT_TRUE(t.in_validity_set(basis, geo::Vec{1.0}, 1e-6));
  EXPECT_TRUE(t.in_validity_set(basis, geo::Vec{3.0}, 1e-6));
  EXPECT_FALSE(t.in_validity_set(basis, geo::Vec{0.0}, 1e-6));
  EXPECT_FALSE(t.in_validity_set(basis, geo::Vec{5.0}, 1e-6));
  // A near-miss label (the faulty-escape perturbation shape) is outside.
  EXPECT_FALSE(t.in_validity_set(basis, geo::Vec{1.04}, 1e-6));
}

TEST(TreeDomain, MidpointOnPath) {
  const TreeDomain t("t7", domain::binary_tree_parents(7));
  // No suspects: the rule reduces to the midpoint of the diameter pair.
  const std::vector<geo::Vec> leaves{geo::Vec{3.0}, geo::Vec{5.0}};
  const auto mid = t.aggregate(AggregateSpec{2, 0, 0, false, {}}, leaves);
  // d(3,5) = 4 via 3-1-0-2-5; two steps from 3 is the root.
  EXPECT_TRUE(mid.value == geo::Vec{0.0});
  EXPECT_EQ(mid.fallbacks, 0u);
}

TEST(TreeDomain, AggregateIntersectsSubsetHulls) {
  const TreeDomain t("t7", domain::binary_tree_parents(7));
  // Four leaves, t = 1: the intersection of the four leave-one-out hulls is
  // {0, 1, 2}; its diameter pair is (1, 2) and the midpoint the root.
  const std::vector<geo::Vec> leaves{geo::Vec{3.0}, geo::Vec{4.0},
                                     geo::Vec{5.0}, geo::Vec{6.0}};
  const auto result = t.aggregate(AggregateSpec{4, 1, 1, false, {}}, leaves);
  EXPECT_TRUE(result.value == geo::Vec{0.0});
  EXPECT_EQ(result.fallbacks, 0u);
}

TEST(TreeDomain, ContractionBoundIsExactCeil) {
  const TreeDomain t("t7", domain::binary_tree_parents(7));
  EXPECT_DOUBLE_EQ(t.contraction_bound(0.5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.contraction_bound(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(t.contraction_bound(0.5, 5.0), 3.0);
  EXPECT_DOUBLE_EQ(t.contraction_bound(0.5, 10.0), 5.0);
}

TEST(TreeDomain, MakeInputsDeterministicAndInRange) {
  const auto& tree = *domain::find("tree");
  const auto a = tree.make_inputs(9, 1, 10.0, 7);
  const auto b = tree.make_inputs(9, 1, 10.0, 7);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->size(), 9u);
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE((*a)[i] == (*b)[i]);
    EXPECT_TRUE(tree.validate((*a)[i]));
  }
  // A different seed moves at least one input.
  const auto c = tree.make_inputs(9, 1, 10.0, 8);
  ASSERT_TRUE(c.has_value());
  bool any_differs = false;
  for (std::size_t i = 0; i < a->size(); ++i) {
    if (!((*a)[i] == (*c)[i])) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(TreeDomain, FormatValueIsBareLabel) {
  const auto& tree = *domain::find("tree");
  EXPECT_EQ(tree.format_value(geo::Vec{12.0}), "12");
  // Euclid renders a coordinate tuple instead.
  EXPECT_EQ(domain::euclid().format_value(geo::Vec{0.25, 1.0}), "(0.25, 1)");
}

// --- harness integration ----------------------------------------------------

TEST(TreeDomain, HarnessRunIsDeterministicAndIntegral) {
  harness::RunSpec spec;
  spec.domain = "tree";
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 1;
  spec.params.eps = 1.0;
  spec.adversary = harness::Adversary::kSilent;
  spec.corruptions = 1;
  spec.seed = 3;
  spec.monitors = obs::MonitorMode::kStrict;
  const auto a = harness::execute(spec);
  const auto b = harness::execute(spec);
  EXPECT_TRUE(a.verdict.d_aa());
  EXPECT_EQ(a.monitor_violations, 0u);
  EXPECT_FALSE(a.monitor_aborted);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_DOUBLE_EQ(a.input_diameter, b.input_diameter);
  ASSERT_EQ(a.iteration_diameters.size(), b.iteration_diameters.size());
  for (std::size_t i = 0; i < a.iteration_diameters.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.iteration_diameters[i], b.iteration_diameters[i]);
    // Tree diameters are whole edge counts.
    EXPECT_DOUBLE_EQ(a.iteration_diameters[i],
                     std::rint(a.iteration_diameters[i]));
  }
}

}  // namespace
}  // namespace hydra
