// Tests for the exact D = 3 kernel: quickhull facet enumeration, half-space
// vertex enumeration, and their integration into SafeArea (cross-validated
// against the LP kernel).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "geometry/hull3d.hpp"
#include "geometry/safe_area.hpp"
#include "geometry/vec.hpp"

namespace hydra::geo {
namespace {

std::vector<Vec> unit_cube() {
  std::vector<Vec> pts;
  for (int i = 0; i < 8; ++i) {
    pts.push_back(Vec{(i & 1) ? 1.0 : 0.0, (i & 2) ? 1.0 : 0.0, (i & 4) ? 1.0 : 0.0});
  }
  return pts;
}

std::vector<Vec> random_points(Rng& rng, std::size_t count, double radius) {
  std::vector<Vec> pts;
  for (std::size_t i = 0; i < count; ++i) {
    pts.push_back(Vec{rng.next_double(-radius, radius), rng.next_double(-radius, radius),
                      rng.next_double(-radius, radius)});
  }
  return pts;
}

bool satisfies_all(const std::vector<Plane3>& planes, const Vec& p, double tol) {
  for (const auto& plane : planes) {
    if (dot(plane.n, p) > plane.c + tol) return false;
  }
  return true;
}

TEST(Hull3D, CubeFacets) {
  const auto cube = unit_cube();
  const auto facets = hull3d_facets(cube);
  ASSERT_TRUE(facets.has_value());
  // 6 square faces triangulated -> 12 triangles (or some coplanar merge
  // thereof); all vertices on-boundary, center strictly inside.
  EXPECT_GE(facets->size(), 6u);
  for (const auto& v : cube) {
    EXPECT_TRUE(satisfies_all(*facets, v, 1e-9));
  }
  EXPECT_TRUE(satisfies_all(*facets, Vec{0.5, 0.5, 0.5}, 0.0));
  EXPECT_FALSE(satisfies_all(*facets, Vec{1.2, 0.5, 0.5}, 1e-6));
  EXPECT_FALSE(satisfies_all(*facets, Vec{0.5, 0.5, -0.2}, 1e-6));
}

TEST(Hull3D, TetrahedronHasFourFacets) {
  const std::vector<Vec> tet{
      {0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  const auto facets = hull3d_facets(tet);
  ASSERT_TRUE(facets.has_value());
  EXPECT_EQ(facets->size(), 4u);
}

TEST(Hull3D, DegenerateInputsRejected) {
  // Fewer than 4 points.
  EXPECT_FALSE(hull3d_facets(std::vector<Vec>{{0, 0, 0}, {1, 1, 1}}).has_value());
  // Coincident.
  EXPECT_FALSE(hull3d_facets(std::vector<Vec>(5, Vec{1, 2, 3})).has_value());
  // Collinear.
  std::vector<Vec> line;
  for (int i = 0; i < 6; ++i) line.push_back(Vec{1.0 * i, 2.0 * i, 3.0 * i});
  EXPECT_FALSE(hull3d_facets(line).has_value());
  // Coplanar.
  std::vector<Vec> plane;
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    plane.push_back(Vec{rng.next_double(-1, 1), rng.next_double(-1, 1), 0.0});
  }
  EXPECT_FALSE(hull3d_facets(plane).has_value());
}

TEST(Hull3D, FacetsAgreeWithLpMembership) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = random_points(rng, 6 + rng.next_below(8), 5.0);
    const auto facets = hull3d_facets(pts);
    ASSERT_TRUE(facets.has_value()) << "trial " << trial;
    // Input points are inside their own hull.
    for (const auto& p : pts) {
      EXPECT_TRUE(satisfies_all(*facets, p, 1e-7)) << "trial " << trial;
    }
    // Random probes: facet membership == LP membership (modulo a boundary
    // band where the tolerance conventions differ).
    for (int probe = 0; probe < 12; ++probe) {
      const Vec q{rng.next_double(-6, 6), rng.next_double(-6, 6),
                  rng.next_double(-6, 6)};
      const bool facet_in = satisfies_all(*facets, q, 1e-8);
      const bool facet_in_wide = satisfies_all(*facets, q, 1e-4);
      if (facet_in != facet_in_wide) continue;  // boundary band
      EXPECT_EQ(facet_in, in_convex_hull(pts, q, 1e-8))
          << "trial " << trial << " q=" << to_string(q);
    }
  }
}

TEST(Hull3D, HullWithFarOutlier) {
  // The sliver regression in 3-D: a distant outlier must not erase small
  // geometry.
  auto pts = unit_cube();
  pts.push_back(Vec{1e6, -1e6, 1e6});
  const auto facets = hull3d_facets(pts);
  ASSERT_TRUE(facets.has_value());
  for (const auto& p : pts) {
    EXPECT_TRUE(satisfies_all(*facets, p, 1e-3));
  }
  EXPECT_FALSE(satisfies_all(*facets, Vec{-0.5, 0.5, 0.5}, 1e-3));
}

TEST(Hull3D, VertexEnumerationOfCube) {
  // The unit cube as 6 half-spaces -> exactly its 8 corners.
  std::vector<Plane3> planes;
  for (int d = 0; d < 3; ++d) {
    Vec plus(3, 0.0);
    plus[d] = 1.0;
    Vec minus(3, 0.0);
    minus[d] = -1.0;
    planes.push_back({plus, 1.0});
    planes.push_back({minus, 0.0});
  }
  const auto vertices = halfspace_intersection_vertices(planes, 1.0);
  ASSERT_TRUE(vertices.has_value());
  EXPECT_EQ(vertices->size(), 8u);
  EXPECT_NEAR(diameter(*vertices), std::sqrt(3.0), 1e-9);
}

TEST(Hull3D, VertexEnumerationOfEmptyIntersection) {
  // x <= 0 and x >= 1 simultaneously.
  std::vector<Plane3> planes{{Vec{1.0, 0.0, 0.0}, 0.0}, {Vec{-1.0, 0.0, 0.0}, -1.0},
                             {Vec{0.0, 1.0, 0.0}, 1.0}, {Vec{0.0, -1.0, 0.0}, 1.0},
                             {Vec{0.0, 0.0, 1.0}, 1.0}, {Vec{0.0, 0.0, -1.0}, 1.0}};
  const auto vertices = halfspace_intersection_vertices(planes, 1.0);
  ASSERT_TRUE(vertices.has_value());
  EXPECT_TRUE(vertices->empty());
}

TEST(Hull3D, PlaneBudgetRefusal) {
  std::vector<Plane3> planes;
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    Vec n{rng.next_gaussian(), rng.next_gaussian(), rng.next_gaussian()};
    const double len = norm(n);
    if (len < 1e-9) continue;
    n *= 1.0 / len;
    planes.push_back({n, 1.0});
  }
  EXPECT_FALSE(halfspace_intersection_vertices(planes, 1.0, 240).has_value());
}

// ------------------------------------------- SafeArea D = 3 integration

TEST(SafeArea3D, ExactKernelEngagesAndAgreesWithLp) {
  Rng rng(13);
  int exact_count = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = random_points(rng, 6, 8.0);
    const auto sa = SafeArea::compute(pts, 1);
    ASSERT_FALSE(sa.empty()) << "trial " << trial;  // Lemma 5.5 shape
    if (sa.exact()) ++exact_count;
    // Every extreme point is in every restriction hull (validity).
    for (const auto& e : sa.extreme_points()) {
      EXPECT_TRUE(sa.contains(e, 1e-5)) << "trial " << trial;
    }
    const auto mid = sa.midpoint_rule();
    ASSERT_TRUE(mid.has_value());
    EXPECT_TRUE(sa.contains(*mid, 1e-5));
  }
  // Random full-dimensional configurations: the exact kernel should engage
  // nearly always.
  EXPECT_GE(exact_count, 18);
}

TEST(SafeArea3D, ExactDiameterAtLeastSampled) {
  // The sampled kernel under-estimates the diameter; the exact kernel must
  // dominate it.
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = random_points(rng, 6, 8.0);
    const auto exact = SafeArea::compute(pts, 1);
    if (!exact.exact()) continue;

    // Force the sampled path by exceeding the plane budget via options? The
    // kernel has no toggle, so compare against a support-sampled diameter
    // computed directly.
    std::vector<std::vector<Vec>> hulls;
    for (std::size_t drop = 0; drop < pts.size(); ++drop) {
      std::vector<Vec> h;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (i != drop) h.push_back(pts[i]);
      }
      hulls.push_back(std::move(h));
    }
    double sampled = 0.0;
    std::vector<Vec> support;
    Rng dir_rng(99);
    for (int k = 0; k < 32; ++k) {
      Vec u{dir_rng.next_gaussian(), dir_rng.next_gaussian(), dir_rng.next_gaussian()};
      const double len = norm(u);
      if (len < 1e-9) continue;
      u *= 1.0 / len;
      if (const auto s = support_point(hulls, u)) support.push_back(*s);
    }
    sampled = diameter(support);
    EXPECT_GE(exact.diameter() + 1e-6, sampled) << "trial " << trial;
  }
}

TEST(SafeArea3D, DegenerateValuesFallBackGracefully) {
  // Duplicated values make restriction hulls rank-deficient; the kernel
  // must fall back to the LP path and still produce a valid midpoint.
  std::vector<Vec> pts(4, Vec{1.0, 2.0, 3.0});
  pts.push_back(Vec{1.0, 2.0, 3.0});
  pts.push_back(Vec{2.0, 2.0, 3.0});
  const auto sa = SafeArea::compute(pts, 1);
  ASSERT_FALSE(sa.empty());
  EXPECT_FALSE(sa.exact());
  const auto mid = sa.midpoint_rule();
  ASSERT_TRUE(mid.has_value());
  EXPECT_TRUE(sa.contains(*mid, 1e-5));
}

TEST(SafeArea3D, ByzantineOutlierStillValid) {
  // The canonical attack shape with the exact kernel engaged.
  const std::vector<Vec> values{{-100000, -100000, 100000},
                                {-6.0, -0.5, -0.9},
                                {8.9, 3.6, 1.5},
                                {-8.2, 5.8, -0.8},
                                {6.9, 7.4, -4.3},
                                {1.0, 1.0, 1.0}};
  const std::vector<Vec> honest(values.begin() + 1, values.end());
  const auto sa = SafeArea::compute(values, 1);
  ASSERT_FALSE(sa.empty());
  for (const auto& e : sa.extreme_points()) {
    EXPECT_TRUE(in_convex_hull(honest, e, 1e-3)) << to_string(e);
  }
}

}  // namespace
}  // namespace hydra::geo
