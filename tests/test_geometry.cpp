// Unit tests for the geometry kernels below the safe area: vectors, the
// simplex LP solver, convex-hull membership, hull intersections, the 2-D
// polygon kernel, and the 1-D interval kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "geometry/convex.hpp"
#include "geometry/interval.hpp"
#include "geometry/lp.hpp"
#include "geometry/polygon.hpp"
#include "geometry/vec.hpp"

namespace hydra::geo {
namespace {

// ---------------------------------------------------------------- Vec

TEST(Vec, Arithmetic) {
  const Vec a{1.0, 2.0};
  const Vec b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec{2.0, 4.0}));
}

TEST(Vec, DistanceMatchesDefinition21) {
  EXPECT_DOUBLE_EQ(distance(Vec{0.0, 0.0}, Vec{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec{1.0, 1.0, 1.0}, Vec{1.0, 1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(distance(Vec{0.0}, Vec{-2.0}), 2.0);
}

TEST(Vec, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot(Vec{1.0, 2.0, 3.0}, Vec{4.0, -5.0, 6.0}), 12.0);
  EXPECT_DOUBLE_EQ(norm(Vec{3.0, 4.0}), 5.0);
}

TEST(Vec, MidpointRule) {
  EXPECT_EQ(midpoint(Vec{0.0, 0.0}, Vec{2.0, 4.0}), (Vec{1.0, 2.0}));
}

TEST(Vec, DiameterOfSet) {
  const std::vector<Vec> pts{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(diameter(pts), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(diameter(std::vector<Vec>{}), 0.0);
  EXPECT_DOUBLE_EQ(diameter(std::vector<Vec>{{5.0, 5.0}}), 0.0);
}

TEST(Vec, LexicographicOrderTotalOnRD) {
  EXPECT_LT(Vec({1.0, 9.0}), Vec({2.0, 0.0}));
  EXPECT_LT(Vec({1.0, 2.0}), Vec({1.0, 3.0}));
  EXPECT_EQ(Vec({1.0, 2.0}) <=> Vec({1.0, 2.0}), std::strong_ordering::equal);
}

// ----------------------------------------------------------------- LP

TEST(Lp, SimpleOptimum) {
  // min -x1 - 2 x2  s.t.  x1 + x2 + s = 4, x2 + s2 = 3  (i.e. x1+x2<=4, x2<=3)
  Matrix a(2, 4);
  a.at(0, 0) = 1;
  a.at(0, 1) = 1;
  a.at(0, 2) = 1;
  a.at(1, 1) = 1;
  a.at(1, 3) = 1;
  const std::vector<double> b{4, 3};
  const std::vector<double> c{-1, -2, 0, 0};
  const auto r = solve_lp(a, b, c);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Optimum at x1=1, x2=3 -> objective -7.
  EXPECT_NEAR(r.objective, -7.0, 1e-9);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 3.0, 1e-9);
}

TEST(Lp, InfeasibleDetected) {
  // x1 = 1 and x1 = 2 simultaneously.
  Matrix a(2, 1);
  a.at(0, 0) = 1;
  a.at(1, 0) = 1;
  const std::vector<double> b{1, 2};
  const std::vector<double> c{0};
  EXPECT_EQ(solve_lp(a, b, c).status, LpStatus::kInfeasible);
}

TEST(Lp, UnboundedDetected) {
  // min -x1 s.t. x1 - x2 = 0 : x1 can grow without bound.
  Matrix a(1, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = -1;
  const std::vector<double> b{0};
  const std::vector<double> c{-1, 0};
  EXPECT_EQ(solve_lp(a, b, c).status, LpStatus::kUnbounded);
}

TEST(Lp, NegativeRhsHandled) {
  // -x1 = -5  ->  x1 = 5.
  Matrix a(1, 1);
  a.at(0, 0) = -1;
  const std::vector<double> b{-5};
  const std::vector<double> c{1};
  const auto r = solve_lp(a, b, c);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 5.0, 1e-9);
}

TEST(Lp, DegenerateProblemTerminates) {
  // Multiple redundant constraints (Bland's rule must not cycle).
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) {
    a.at(i, 0) = 1;
    a.at(i, 1) = 1;
    a.at(i, 2) = 1;
  }
  const std::vector<double> b{1, 1, 1};
  const std::vector<double> c{1, 2, 3};
  const auto r = solve_lp(a, b, c);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

// ---------------------------------------------------- in_convex_hull

TEST(ConvexHullMembership, Triangle2D) {
  const std::vector<Vec> tri{{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}};
  EXPECT_TRUE(in_convex_hull(tri, Vec{0.5, 0.5}));
  EXPECT_TRUE(in_convex_hull(tri, Vec{0.0, 0.0}));   // vertex
  EXPECT_TRUE(in_convex_hull(tri, Vec{1.0, 1.0}));   // edge
  EXPECT_FALSE(in_convex_hull(tri, Vec{1.5, 1.5}));  // outside
  EXPECT_FALSE(in_convex_hull(tri, Vec{-0.1, 0.0}));
}

TEST(ConvexHullMembership, Simplex4D) {
  std::vector<Vec> pts;
  pts.push_back(Vec(4, 0.0));
  for (std::size_t d = 0; d < 4; ++d) {
    Vec e(4, 0.0);
    e[d] = 1.0;
    pts.push_back(e);
  }
  Vec centroid(4, 0.2);
  EXPECT_TRUE(in_convex_hull(pts, centroid));
  Vec outside(4, 0.3);  // coordinates sum to 1.2 > 1
  EXPECT_FALSE(in_convex_hull(pts, outside));
}

TEST(ConvexHullMembership, SinglePoint) {
  const std::vector<Vec> one{{1.0, 2.0, 3.0}};
  EXPECT_TRUE(in_convex_hull(one, Vec{1.0, 2.0, 3.0}));
  EXPECT_FALSE(in_convex_hull(one, Vec{1.0, 2.0, 3.1}));
}

// ------------------------------------------- intersection / support

TEST(HullIntersection, OverlappingTriangles) {
  const std::vector<std::vector<Vec>> hulls{
      {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}},
      {{1.0, 1.0}, {-1.0, 1.0}, {1.0, -1.0}},
  };
  const auto p = intersection_point(hulls);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(in_convex_hull(hulls[0], *p));
  EXPECT_TRUE(in_convex_hull(hulls[1], *p));
}

TEST(HullIntersection, DisjointTriangles) {
  const std::vector<std::vector<Vec>> hulls{
      {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}},
      {{5.0, 5.0}, {6.0, 5.0}, {5.0, 6.0}},
  };
  EXPECT_FALSE(intersection_point(hulls).has_value());
}

TEST(HullIntersection, TouchingAtOnePoint) {
  const std::vector<std::vector<Vec>> hulls{
      {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}},
      {{1.0, 0.0}, {2.0, 0.0}, {1.0, 1.0}},
  };
  const auto p = intersection_point(hulls);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(approx_equal(*p, Vec{1.0, 0.0}, 1e-6));
}

TEST(SupportPoint, SquareExtremes) {
  const std::vector<std::vector<Vec>> hulls{
      {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}},
  };
  const auto px = support_point(hulls, Vec{1.0, 0.0});
  ASSERT_TRUE(px.has_value());
  EXPECT_NEAR((*px)[0], 1.0, 1e-9);
  const auto pd = support_point(hulls, Vec{1.0, 1.0});
  ASSERT_TRUE(pd.has_value());
  EXPECT_TRUE(approx_equal(*pd, Vec{1.0, 1.0}, 1e-7));
}

TEST(SupportPoint, IntersectionOfSquares3D) {
  // Two unit cubes offset by 0.5 along x: intersection is [0.5,1]x[0,1]^2.
  std::vector<Vec> cube1;
  std::vector<Vec> cube2;
  for (int i = 0; i < 8; ++i) {
    const double x = (i & 1) ? 1.0 : 0.0;
    const double y = (i & 2) ? 1.0 : 0.0;
    const double z = (i & 4) ? 1.0 : 0.0;
    cube1.push_back(Vec{x, y, z});
    cube2.push_back(Vec{x + 0.5, y, z});
  }
  const std::vector<std::vector<Vec>> hulls{cube1, cube2};
  const auto lo = support_point(hulls, Vec{-1.0, 0.0, 0.0});
  ASSERT_TRUE(lo.has_value());
  EXPECT_NEAR((*lo)[0], 0.5, 1e-7);
  const auto hi = support_point(hulls, Vec{1.0, 0.0, 0.0});
  ASSERT_TRUE(hi.has_value());
  EXPECT_NEAR((*hi)[0], 1.0, 1e-7);
}

// ------------------------------------------------------------ Interval

TEST(Interval, HullAndIntersect) {
  const std::vector<double> xs{3.0, -1.0, 2.0};
  const auto i = Interval::hull_of(xs);
  EXPECT_DOUBLE_EQ(i.lo, -1.0);
  EXPECT_DOUBLE_EQ(i.hi, 3.0);
  const auto j = i.intersect({0.0, 5.0});
  EXPECT_DOUBLE_EQ(j.lo, 0.0);
  EXPECT_DOUBLE_EQ(j.hi, 3.0);
  EXPECT_TRUE(i.intersect({4.0, 5.0}).empty());
}

TEST(Interval, EmptyProperties) {
  const Interval e;
  EXPECT_TRUE(e.empty());
  EXPECT_FALSE(e.contains(0.0));
  EXPECT_DOUBLE_EQ(e.diameter(), 0.0);
}

TEST(Interval, DegeneratePoint) {
  const Interval p{2.0, 2.0};
  EXPECT_FALSE(p.empty());
  EXPECT_TRUE(p.contains(2.0));
  EXPECT_DOUBLE_EQ(p.diameter(), 0.0);
  EXPECT_DOUBLE_EQ(p.midpoint(), 2.0);
}

// ----------------------------------------------------- ConvexPolygon2D

TEST(Polygon, HullOfSquareWithInteriorPoints) {
  const std::vector<Vec> pts{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0},
                             {0.5, 0.5}, {0.25, 0.75}};
  const auto hull = ConvexPolygon2D::hull_of(pts);
  EXPECT_EQ(hull.vertices().size(), 4u);
  EXPECT_TRUE(hull.contains(Vec{0.5, 0.5}));
  EXPECT_FALSE(hull.contains(Vec{1.5, 0.5}));
}

TEST(Polygon, HullDropsCollinear) {
  const std::vector<Vec> pts{{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}};
  const auto hull = ConvexPolygon2D::hull_of(pts);
  EXPECT_EQ(hull.vertices().size(), 3u);
}

TEST(Polygon, DegenerateHulls) {
  const auto empty = ConvexPolygon2D::hull_of(std::vector<Vec>{});
  EXPECT_TRUE(empty.empty());

  const auto point = ConvexPolygon2D::hull_of(std::vector<Vec>{{1.0, 1.0}, {1.0, 1.0}});
  EXPECT_EQ(point.vertices().size(), 1u);
  EXPECT_TRUE(point.contains(Vec{1.0, 1.0}));
  EXPECT_FALSE(point.contains(Vec{1.0, 1.1}));

  const auto seg = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}});
  EXPECT_EQ(seg.vertices().size(), 2u);
  EXPECT_TRUE(seg.contains(Vec{0.5, 0.5}));
  EXPECT_FALSE(seg.contains(Vec{0.5, 0.6}));
  EXPECT_FALSE(seg.contains(Vec{3.0, 3.0}));  // beyond the endpoint
}

TEST(Polygon, ClipSquareByHalfplane) {
  const auto square = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}});
  const auto clipped = square.clip({1.0, 0.0, 1.0});  // x <= 1
  EXPECT_EQ(clipped.vertices().size(), 4u);
  EXPECT_TRUE(clipped.contains(Vec{0.5, 1.0}));
  EXPECT_FALSE(clipped.contains(Vec{1.5, 1.0}));
}

TEST(Polygon, ClipToEmpty) {
  const auto square = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}});
  const auto clipped = square.clip({1.0, 0.0, -1.0});  // x <= -1
  EXPECT_TRUE(clipped.empty());
}

TEST(Polygon, ClipToEdge) {
  const auto square = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}});
  const auto edge = square.clip({1.0, 0.0, 0.0});  // x <= 0: left edge
  ASSERT_FALSE(edge.empty());
  EXPECT_LE(edge.vertices().size(), 2u);
  EXPECT_TRUE(edge.contains(Vec{0.0, 0.5}, 1e-6));
}

TEST(Polygon, IntersectOverlappingSquares) {
  const auto a = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}});
  const auto b = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{1.0, 1.0}, {3.0, 1.0}, {3.0, 3.0}, {1.0, 3.0}});
  const auto c = a.intersect(b);
  ASSERT_FALSE(c.empty());
  EXPECT_TRUE(c.contains(Vec{1.5, 1.5}));
  EXPECT_FALSE(c.contains(Vec{0.5, 0.5}));
  EXPECT_NEAR(c.diameter(), std::sqrt(2.0), 1e-9);
}

TEST(Polygon, IntersectDisjoint) {
  const auto a = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}});
  const auto b = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{5.0, 5.0}, {6.0, 5.0}, {5.0, 6.0}});
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(Polygon, IntersectProducesPoint) {
  // Two triangles sharing exactly one vertex.
  const auto a = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}});
  const auto b = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{1.0, 0.0}, {2.0, 0.0}, {2.0, 1.0}});
  const auto c = a.intersect(b);
  ASSERT_FALSE(c.empty());
  EXPECT_TRUE(c.contains(Vec{1.0, 0.0}, 1e-6));
  EXPECT_NEAR(c.diameter(), 0.0, 1e-6);
}

TEST(Polygon, IntersectWithSegment) {
  const auto square = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}});
  const auto seg = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{-1.0, 1.0}, {3.0, 1.0}});
  const auto c = square.intersect(seg);
  ASSERT_FALSE(c.empty());
  EXPECT_TRUE(c.contains(Vec{1.0, 1.0}, 1e-6));
  EXPECT_NEAR(c.diameter(), 2.0, 1e-6);  // clipped to x in [0,2]
}

TEST(Polygon, DiameterPairDeterministicTieBreak) {
  // A unit square has two diagonals of equal length; the rule must pick the
  // lexicographically smallest pair.
  const auto square = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}});
  const auto pair = square.diameter_pair();
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->first, (Vec{0.0, 0.0}));
  EXPECT_EQ(pair->second, (Vec{1.0, 1.0}));
}

TEST(Polygon, DiameterOfDegenerate) {
  const auto point = ConvexPolygon2D::hull_of(std::vector<Vec>{{1.0, 1.0}});
  EXPECT_DOUBLE_EQ(point.diameter(), 0.0);
  const auto seg =
      ConvexPolygon2D::hull_of(std::vector<Vec>{{0.0, 0.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(seg.diameter(), 5.0);
  EXPECT_FALSE(ConvexPolygon2D{}.diameter_pair().has_value());
}

TEST(Polygon, RepeatedIntersectionStable) {
  // Intersecting a polygon with itself many times must not erode it.
  auto poly = ConvexPolygon2D::hull_of(
      std::vector<Vec>{{0.0, 0.0}, {4.0, 0.0}, {4.0, 3.0}, {0.0, 3.0}});
  const double d0 = poly.diameter();
  for (int i = 0; i < 20; ++i) poly = poly.intersect(poly);
  EXPECT_NEAR(poly.diameter(), d0, 1e-6);
}

}  // namespace
}  // namespace hydra::geo
