// Fault-injection layer (src/faults/): spec parsing, the injector's
// hybrid-model contract (honest links delay, never lose), deterministic
// schedules, the mailbox wait/wake regression, the thread-net watchdog's
// crash awareness, and end-to-end chaos equivalences — dup+reorder must not
// change a sync-worst-case run at all, a pre-start crash-stop must match the
// equivalent silent-Byzantine run, and a faulted sweep must be byte-stable
// across --jobs.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "faults/faults.hpp"
#include "geometry/convex.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "obs/report.hpp"
#include "protocols/aa.hpp"
#include "sim/delay.hpp"
#include "transport/mailbox.hpp"
#include "transport/thread_net.hpp"

using namespace hydra;

namespace {

// ------------------------------------------------------------------ parsing

TEST(FaultPlanParse, EmptySpecIsEmptyPlan) {
  const auto plan = faults::parse_fault_plan("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(faults::to_string(*plan), "");
}

TEST(FaultPlanParse, FullGrammarRoundTrips) {
  const std::string spec =
      "dup(p=0.25,skew=100);reorder(p=0.5);crash(party=2,at=500);"
      "crash(party=3,at=100,until=900);partition(group=0.1,from=200,until=800)";
  const auto plan = faults::parse_fault_plan(spec);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(plan->dup.has_value());
  EXPECT_DOUBLE_EQ(plan->dup->p, 0.25);
  EXPECT_EQ(plan->dup->skew, 100);
  ASSERT_TRUE(plan->reorder.has_value());
  EXPECT_DOUBLE_EQ(plan->reorder->p, 0.5);
  EXPECT_EQ(plan->reorder->skew, 0);  // 0 = default to Delta at run time
  ASSERT_EQ(plan->crashes.size(), 2u);
  EXPECT_EQ(plan->crashes[0].party, 2u);
  EXPECT_EQ(plan->crashes[0].at, 500);
  EXPECT_EQ(plan->crashes[0].until, kTimeInfinity);
  EXPECT_EQ(plan->crashes[1].until, 900);
  ASSERT_EQ(plan->partitions.size(), 1u);
  EXPECT_EQ(plan->partitions[0].group, (std::vector<PartyId>{0, 1}));

  // to_string is canonical: reparsing reproduces the same rendering.
  const auto rendered = faults::to_string(*plan);
  const auto reparsed = faults::parse_fault_plan(rendered);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(faults::to_string(*reparsed), rendered);
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "garbage",
      "dup",                                  // no (...)
      "dup(p=2)",                             // p out of [0,1]
      "dup(p=-0.1)",
      "dup(frequency=1)",                     // unknown key
      "dup(p=0.1);dup(p=0.2)",                // duplicate clause
      "reorder(p=0.5);reorder(p=0.5)",
      "crash(at=5)",                          // missing party
      "crash(party=1,at=10,until=10)",        // empty window
      "crash(party=-1,at=0)",                 // negative id
      "partition(from=0,until=9)",            // missing group
      "partition(group=,from=0,until=9)",     // empty group
      "partition(group=0.1,from=5,until=5)",  // empty window
      "explode(p=1)",                         // unknown clause
      "dup(p)",                               // not key=value
      "dup(p=0.2,from=-1)",                   // negative link endpoint
      "dup(p=0.2,to=-3)",
      "reorder(p=0.5,from=2,to=2)",           // self-link target
      "dup(p=0.2,from=1,to=1)",
  };
  for (const auto& spec : bad) {
    std::string error;
    EXPECT_FALSE(faults::parse_fault_plan(spec, &error).has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

TEST(FaultPlanParse, PlanQueries) {
  const auto plan = faults::parse_fault_plan(
      "crash(party=2,at=500);crash(party=3,at=100,until=900);"
      "partition(group=0.7,from=1,until=2)");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->crashes_party(2));
  EXPECT_TRUE(plan->crashes_party(3));
  EXPECT_FALSE(plan->crashes_party(0));
  // Only a no-recovery clause is a crash-stop.
  ASSERT_TRUE(plan->crash_stop_at(2).has_value());
  EXPECT_EQ(*plan->crash_stop_at(2), 500);
  EXPECT_FALSE(plan->crash_stop_at(3).has_value());
  EXPECT_EQ(plan->max_party(), 7u);
}

TEST(FaultPlanParse, LinkTargetsRoundTripAndExtendMaxParty) {
  const std::string spec = "dup(p=0.25,skew=100,from=6);reorder(p=0.5,from=1,to=4)";
  const auto plan = faults::parse_fault_plan(spec);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(plan->dup.has_value());
  ASSERT_TRUE(plan->dup->from.has_value());
  EXPECT_EQ(*plan->dup->from, 6u);
  EXPECT_FALSE(plan->dup->to.has_value());
  ASSERT_TRUE(plan->reorder.has_value());
  EXPECT_EQ(*plan->reorder->from, 1u);
  EXPECT_EQ(*plan->reorder->to, 4u);
  // Link targets participate in the < n validation.
  EXPECT_EQ(plan->max_party(), 6u);
  // Canonical rendering re-parses to the same plan.
  EXPECT_EQ(faults::to_string(*plan), spec);
  const auto again = faults::parse_fault_plan(faults::to_string(*plan));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(faults::to_string(*again), spec);
}

// ----------------------------------------------------------------- injector

faults::FaultInjector make_injector(const std::string& spec,
                                    faults::FaultInjector::Config config) {
  const auto plan = faults::parse_fault_plan(spec);
  EXPECT_TRUE(plan.has_value()) << spec;
  return faults::FaultInjector(*plan, config);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const std::string spec = "dup(p=0.5);reorder(p=0.5,skew=200)";
  auto a = make_injector(spec, {.seed = 42, .synchronous = false, .delta = 100});
  auto b = make_injector(spec, {.seed = 42, .synchronous = false, .delta = 100});
  auto c = make_injector(spec, {.seed = 43, .synchronous = false, .delta = 100});
  bool any_difference_from_c = false;
  for (int i = 0; i < 200; ++i) {
    const auto from = static_cast<PartyId>(i % 4);
    const auto to = static_cast<PartyId>((i + 1) % 4);
    const auto oa = a.on_message(from, to, i, 50);
    const auto ob = b.on_message(from, to, i, 50);
    const auto oc = c.on_message(from, to, i, 50);
    EXPECT_EQ(oa.dropped, ob.dropped);
    EXPECT_EQ(oa.duplicated, ob.duplicated);
    EXPECT_EQ(oa.delays[0], ob.delays[0]);
    EXPECT_EQ(oa.delays[1], ob.delays[1]);
    any_difference_from_c = any_difference_from_c || oa.delays[0] != oc.delays[0] ||
                            oa.duplicated != oc.duplicated;
  }
  EXPECT_TRUE(any_difference_from_c);  // different seed, different schedule
}

TEST(FaultInjector, TargetedClausesTouchOnlyMatchingLinks) {
  // dup(p=1,from=0) must duplicate every 0->* message and nothing else. The
  // draw discipline gates the Rng draw itself on link eligibility, so the
  // 0->* schedule is independent of how much other traffic interleaves.
  auto sparse = make_injector("dup(p=1,skew=50,from=0)",
                              {.seed = 9, .synchronous = false, .delta = 100});
  auto dense = make_injector("dup(p=1,skew=50,from=0)",
                             {.seed = 9, .synchronous = false, .delta = 100});
  for (int i = 0; i < 50; ++i) {
    const auto noise = dense.on_message(1, 2, i, 10);
    EXPECT_FALSE(noise.duplicated) << i;  // 1->2 never matches from=0
    const auto a = sparse.on_message(0, 3, i, 10);
    const auto b = dense.on_message(0, 3, i, 10);
    EXPECT_TRUE(a.duplicated) << i;
    EXPECT_TRUE(b.duplicated) << i;
    EXPECT_EQ(a.delays[1], b.delays[1]) << i;  // same eligible-order draws
  }
}

TEST(FaultInjector, ToTargetRestrictsTheReceiverSide) {
  auto injector = make_injector("reorder(p=1,skew=500,to=2)",
                                {.seed = 5, .synchronous = false, .delta = 100});
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(injector.on_message(0, 1, i, 10).delays[0], 10) << i;
    EXPECT_GT(injector.on_message(0, 2, i, 10).delays[0], 10) << i;
  }
}

TEST(FaultInjector, HonestLinksAreNeverDropped) {
  // The hybrid-model contract: without crash clauses NO message is lost,
  // whatever else the plan does, and under synchrony the total delay stays
  // within max(base, Delta).
  auto inj = make_injector(
      "dup(p=0.8);reorder(p=0.9);partition(group=0.1,from=100,until=300)",
      {.seed = 7, .synchronous = true, .delta = 100});
  for (int i = 0; i < 500; ++i) {
    const Time now = i;
    const auto out = inj.on_message(static_cast<PartyId>(i % 4),
                                    static_cast<PartyId>((i + 2) % 4), now, 60);
    EXPECT_FALSE(out.dropped);
    EXPECT_GE(out.delays[0], 60);
    const bool cut = now >= 100 && now < 300 && ((i % 4 < 2) != ((i + 2) % 4 < 2));
    if (!cut) {
      EXPECT_LE(out.delays[0], 100) << "sync clamp violated at message " << i;
    }
    if (out.duplicated) {
      EXPECT_GE(out.delays[1], out.delays[0]) << "copy beat the primary";
    }
  }
  EXPECT_EQ(inj.totals().dropped, 0u);
  EXPECT_GT(inj.totals().duplicated, 0u);
  EXPECT_GT(inj.totals().delayed, 0u);
}

TEST(FaultInjector, CrashWindowsDropAtTheEndpoints) {
  auto inj = make_injector("crash(party=0,at=100,until=200)",
                           {.seed = 1, .synchronous = true, .delta = 50});
  // Sender down at send time.
  auto out = inj.on_message(0, 1, 150, 10);
  EXPECT_TRUE(out.dropped);
  EXPECT_STREQ(out.reason, "crash-sender");
  // Sender up again after recovery.
  EXPECT_FALSE(inj.on_message(0, 1, 200, 10).dropped);
  EXPECT_FALSE(inj.on_message(0, 1, 99, 0).dropped);  // before the window
  // Receiver down at DELIVERY time (sent before the window, arriving inside).
  out = inj.on_message(1, 0, 95, 10);
  EXPECT_TRUE(out.dropped);
  EXPECT_STREQ(out.reason, "crash-receiver");
  // Arrives after recovery: delivered.
  EXPECT_FALSE(inj.on_message(1, 0, 195, 10).dropped);
  EXPECT_EQ(inj.totals().dropped, 2u);
}

TEST(FaultInjector, PartitionHoldsUntilHealNeverDrops) {
  auto inj = make_injector("partition(group=0.1,from=0,until=1000)",
                           {.seed = 1, .synchronous = false, .delta = 50});
  // Crossing the cut: held until heal + base.
  const auto held = inj.on_message(0, 2, 10, 50);
  EXPECT_FALSE(held.dropped);
  EXPECT_EQ(held.delays[0], (1000 - 10) + 50);
  // Same side of the cut: untouched.
  EXPECT_EQ(inj.on_message(0, 1, 10, 50).delays[0], 50);
  EXPECT_EQ(inj.on_message(2, 3, 10, 50).delays[0], 50);
  // After the heal tick: untouched.
  EXPECT_EQ(inj.on_message(0, 2, 1000, 50).delays[0], 50);
}

TEST(FaultInjector, SelfDeliveryIsUntouchable) {
  auto inj = make_injector("dup(p=1);reorder(p=1)",
                           {.seed = 1, .synchronous = false, .delta = 50});
  const auto out = inj.on_message(2, 2, 123, 0);
  EXPECT_FALSE(out.dropped);
  EXPECT_FALSE(out.duplicated);
  EXPECT_EQ(out.delays[0], 0);
}

// ------------------------------------------------------------------ mailbox

using transport::Mailbox;
using Clock = std::chrono::steady_clock;

/// Wall-clock tick mapping like ThreadNetwork's, anchored at construction.
struct TestClock {
  Clock::time_point epoch = Clock::now();
  double us_per_tick = 100.0;

  [[nodiscard]] Time now_ticks() const {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch)
            .count();
    return static_cast<Time>(static_cast<double>(us) / us_per_tick);
  }
  [[nodiscard]] Clock::time_point deadline(Time at) const {
    return epoch + std::chrono::microseconds(
                       static_cast<std::int64_t>(static_cast<double>(at) *
                                                 us_per_tick) +
                       1);
  }
};

Mailbox::Item make_item(Time due, std::uint64_t seq) {
  return Mailbox::Item{due, seq, seq + 1, 0, sim::Message{InstanceKey{1, 0, 0}, 0, {}}};
}

// Regression for the pop_due early-return bug: a timeout whose wake target
// was the QUEUE HEAD (not the caller's timer deadline) used to return
// nullopt, sending the caller through a futile timer-drain pass per tick
// boundary. pop_due must only report nullopt for the caller's own deadline.
TEST(MailboxPopDue, NoSpuriousWakeupsNearTickBoundaries) {
  TestClock clock;
  Mailbox box;
  // Two items a few ticks out; the caller's own timer far beyond them.
  box.push(make_item(10, 0));
  box.push(make_item(20, 1));
  const Time local_deadline = 60;

  std::size_t items = 0;
  std::size_t spurious = 0;
  for (;;) {
    const auto item = box.pop_due([&] { return clock.now_ticks(); },
                                  [&](Time at) { return clock.deadline(at); },
                                  local_deadline);
    if (item.has_value()) {
      items += 1;
      EXPECT_LE(item->due, clock.now_ticks());
      continue;
    }
    // nullopt is only legal once OUR deadline truly passed.
    if (clock.now_ticks() < local_deadline) {
      spurious += 1;
    } else {
      break;
    }
  }
  EXPECT_EQ(items, 2u);
  EXPECT_EQ(spurious, 0u);
}

TEST(MailboxPopDue, InfiniteDeadlineWaitsForTheItem) {
  TestClock clock;
  Mailbox box;
  box.push(make_item(15, 0));
  // With no timer deadline at all, the only valid outcomes are "the item"
  // or "closed" — never a spurious nullopt.
  const auto item = box.pop_due([&] { return clock.now_ticks(); },
                                [&](Time at) { return clock.deadline(at); },
                                kTimeInfinity);
  ASSERT_TRUE(item.has_value());
  EXPECT_GE(clock.now_ticks(), 15);
}

TEST(MailboxPopDue, CloseUnblocksWaiters) {
  TestClock clock;
  Mailbox box;
  std::optional<Mailbox::Item> got = make_item(0, 0);
  std::thread waiter([&] {
    got = box.pop_due([&] { return clock.now_ticks(); },
                      [&](Time at) { return clock.deadline(at); }, kTimeInfinity);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  box.close();
  waiter.join();
  EXPECT_FALSE(got.has_value());
}

// ---------------------------------------------------------------- thread net

TEST(ThreadNetFaults, CrashStoppedPartyDoesNotTriggerTheWatchdog) {
  // n = 5, ts = 1: one crash-stopped party is within tolerance, the other
  // four finish, and the completion loop must treat the dead party as
  // satisfied instead of timing out.
  protocols::Params p;
  p.n = 5;
  p.ts = 1;
  p.ta = 1;
  p.dim = 2;
  p.eps = 1e-2;
  p.delta = 500;

  const auto plan = faults::parse_fault_plan("crash(party=0,at=0)");
  ASSERT_TRUE(plan.has_value());
  faults::FaultInjector injector(
      *plan, {.seed = 9, .synchronous = true, .delta = p.delta});

  transport::ThreadNetwork net(
      {.n = 5, .delta = p.delta, .us_per_tick = 20.0, .seed = 9,
       .timeout_ms = 60'000},
      std::make_unique<sim::UniformDelay>(1, p.delta / 4));
  net.set_fault_injector(&injector);

  Rng rng(77);
  std::vector<std::unique_ptr<sim::IParty>> parties;
  std::vector<protocols::AaParty*> raw;
  for (std::size_t i = 0; i < 5; ++i) {
    geo::Vec v(2, 0.0);
    for (std::size_t d = 0; d < 2; ++d) v[d] = rng.next_double(-4.0, 4.0);
    auto party = std::make_unique<protocols::AaParty>(p, v);
    raw.push_back(party.get());
    parties.push_back(std::move(party));
  }
  const auto stats = net.run(parties, [](const sim::IParty& party, PartyId) {
    return static_cast<const protocols::AaParty&>(party).has_output();
  });

  EXPECT_FALSE(stats.timed_out) << stats.timeout_detail;
  ASSERT_EQ(stats.progress.size(), 5u);
  EXPECT_TRUE(stats.progress[0].crash_stopped);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_TRUE(stats.progress[i].finished) << i;
    EXPECT_FALSE(stats.progress[i].crash_stopped) << i;
  }
  // The survivors (ids 1..4, all honest) must still reach agreement.
  std::vector<geo::Vec> outputs;
  for (std::size_t i = 1; i < 5; ++i) {
    ASSERT_TRUE(raw[i]->has_output()) << i;
    outputs.push_back(raw[i]->output());
  }
  EXPECT_LE(geo::diameter(outputs), p.eps + 1e-9);
}

// -------------------------------------------------------------- end to end

harness::RunSpec chaos_spec(std::uint64_t seed) {
  harness::RunSpec spec;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.network = harness::Network::kSyncWorstCase;
  spec.adversary = harness::Adversary::kNone;
  spec.corruptions = 0;
  spec.seed = seed;
  return spec;
}

// Chaos acceptance #1: duplication and (sync-clamped) reorder are invisible
// under the worst-case synchronous schedule — every message already takes
// exactly Delta, the clamp forbids going beyond it, and every layer dedups —
// so the faulted run must be byte-identical to the clean one.
TEST(FaultsEndToEnd, DupReorderMatchesCleanRunExactly) {
  auto clean = chaos_spec(31);
  auto faulted = clean;
  faulted.faults = "dup(p=0.4);reorder(p=0.6)";

  const auto a = harness::execute(clean);
  const auto b = harness::execute(faulted);
  EXPECT_TRUE(a.verdict.d_aa());
  EXPECT_TRUE(b.verdict.d_aa());
  EXPECT_EQ(a.verdict.live, b.verdict.live);
  EXPECT_EQ(a.verdict.valid, b.verdict.valid);
  EXPECT_EQ(a.verdict.agreed, b.verdict.agreed);
  EXPECT_EQ(a.verdict.output_diameter, b.verdict.output_diameter);
  // Duplicate copies are network noise, not sends: counters must agree too.
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.sent_per_party, b.sent_per_party);
  EXPECT_EQ(b.fault_drops, 0u);
  EXPECT_GT(b.fault_dups, 0u);
}

// Chaos acceptance #2: a party crash-stopped before round 1 is
// indistinguishable from a silent-Byzantine slot to everyone else (its
// messages never arrive either way), so the two runs must produce the same
// verdict on the same honest set.
TEST(FaultsEndToEnd, PreStartCrashStopMatchesSilentByzantine) {
  auto crashed = chaos_spec(47);
  crashed.faults = "crash(party=0,at=0)";

  auto silent = chaos_spec(47);
  silent.adversary = harness::Adversary::kSilent;
  silent.corruptions = 1;

  const auto a = harness::execute(crashed);
  const auto b = harness::execute(silent);
  EXPECT_TRUE(a.verdict.d_aa());
  EXPECT_TRUE(b.verdict.d_aa());
  EXPECT_EQ(a.verdict.live, b.verdict.live);
  EXPECT_EQ(a.verdict.valid, b.verdict.valid);
  EXPECT_EQ(a.verdict.agreed, b.verdict.agreed);
  EXPECT_EQ(a.verdict.output_diameter, b.verdict.output_diameter);
  EXPECT_GT(a.fault_drops, 0u);
}

// Chaos acceptance #3: the fault schedule is part of the run's deterministic
// identity — a faulted sweep is byte-identical whether it runs on one worker
// or eight.
TEST(FaultsEndToEnd, FaultedSweepIsDeterministicAcrossJobs) {
  std::vector<harness::RunSpec> grid;
  const std::vector<std::string> fault_specs = {
      "dup(p=0.3);reorder(p=0.5)",
      "crash(party=0,at=0)",
      "dup(p=0.5);crash(party=0,at=2000,until=9000)",
  };
  for (const auto& faults : fault_specs) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto spec = chaos_spec(seed);
      spec.network = harness::Network::kSyncJitter;
      spec.faults = faults;
      grid.push_back(spec);
    }
  }
  const auto seq = harness::run_sweep(grid, 1, nullptr);
  const auto par = harness::run_sweep(grid, 8, nullptr);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].verdict.d_aa(), par[i].verdict.d_aa()) << i;
    EXPECT_EQ(seq[i].verdict.output_diameter, par[i].verdict.output_diameter) << i;
    EXPECT_EQ(seq[i].messages, par[i].messages) << i;
    EXPECT_EQ(seq[i].bytes, par[i].bytes) << i;
    EXPECT_EQ(seq[i].rounds, par[i].rounds) << i;
    EXPECT_EQ(seq[i].fault_drops, par[i].fault_drops) << i;
    EXPECT_EQ(seq[i].fault_dups, par[i].fault_dups) << i;
    EXPECT_EQ(seq[i].fault_delays, par[i].fault_delays) << i;
    EXPECT_EQ(seq[i].sent_per_party, par[i].sent_per_party) << i;
  }
}

// The trace must carry the fault story: the scheduled timeline up front and
// the per-message drops as they happen, and `hydra report` must render a
// Fault timeline section from it.
TEST(FaultsEndToEnd, TraceCarriesFaultEventsAndReportRendersThem) {
  const std::string trace_path = testing::TempDir() + "faults_trace.jsonl";
  const std::string metrics_path = testing::TempDir() + "faults_metrics.json";
  auto spec = chaos_spec(53);
  spec.faults = "crash(party=0,at=0);partition(group=1.2,from=2000,until=6000)";
  spec.network = harness::Network::kAsyncReorder;
  spec.trace_out = trace_path;
  spec.metrics_out = metrics_path;
  const auto result = harness::execute(spec);
  EXPECT_GT(result.fault_drops, 0u);

  std::ostringstream raw;
  {
    std::ifstream in(trace_path);
    ASSERT_TRUE(in.is_open());
    raw << in.rdbuf();
  }
  const std::string trace = raw.str();
  EXPECT_NE(trace.find("\"ev\":\"fault.crash\""), std::string::npos);
  EXPECT_NE(trace.find("\"ev\":\"fault.drop\""), std::string::npos);
  EXPECT_NE(trace.find("\"ev\":\"fault.partition\""), std::string::npos);
  EXPECT_NE(trace.find("\"ev\":\"fault.heal\""), std::string::npos);
  EXPECT_NE(trace.find("group=1.2"), std::string::npos);

  std::ifstream metrics_in(metrics_path);
  std::ostringstream metrics;
  metrics << metrics_in.rdbuf();

  std::istringstream trace_in(trace);
  std::ostringstream report;
  const auto events = obs::render_report(trace_in, metrics.str(), {}, report);
  EXPECT_GT(events, 0u);
  const std::string md = report.str();
  EXPECT_NE(md.find("Fault timeline"), std::string::npos);
  EXPECT_NE(md.find("crash"), std::string::npos);
  EXPECT_NE(md.find("partition"), std::string::npos);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

}  // namespace
