#!/usr/bin/env bash
# Distributed-run observability, end to end (ctest label "socket"):
#
#   1. A real 4-process `hydra serve`/`join` run over UDS, each process
#      writing its own trace, stats heartbeats, and perf profile.
#   2. `trace_merge` stitches the per-process traces into one timeline,
#      re-evaluates the global monitors, and is deterministic under input
#      shuffling (the output is a pure function of the file contents).
#   3. The merged timeline reproduces the single-process run of the same
#      spec/seed: per-party send tallies match exactly, and both verdicts
#      are violation-free (`hydra report --merge` exits 0).
#   4. `hydra top` renders the stats heartbeats; every stats file carries a
#      guaranteed final:1 line.
#   5. `hydra perf --input` merges the per-process hydra-perf-v1 profiles.
#   6. Kill regression: SIGTERM one join mid-run — it must exit via the
#      flush-on-signal path (130), leave valid JSONL behind, and the
#      survivors' traces must still merge (reported incomplete, not an
#      error).
#
# Usage: cli_distributed_test.sh /path/to/hydra /path/to/trace_merge
set -u

HYDRA="${1:?usage: cli_distributed_test.sh /path/to/hydra /path/to/trace_merge}"
TRACE_MERGE="${2:?usage: cli_distributed_test.sh /path/to/hydra /path/to/trace_merge}"
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

TMPDIR_ROOT="$(mktemp -d /tmp/hydra-cli-dist-XXXXXX)"
trap 'rm -rf "$TMPDIR_ROOT"' EXIT
cd "$TMPDIR_ROOT" || exit 1

PEERS="$TMPDIR_ROOT/p0.sock,$TMPDIR_ROOT/p1.sock,$TMPDIR_ROOT/p2.sock,$TMPDIR_ROOT/p3.sock"
SPEC="--peers $PEERS --backend uds --ts 1 --ta 1 --dim 1 \
      --adversary none --corrupt 0 --network sync-worst \
      --monitors record --seed 1"

# --- 1. four processes, each with trace + stats + perf sinks ---------------
PIDS=()
for party in 0 1 2 3; do
  # shellcheck disable=SC2086
  timeout 60 "$HYDRA" serve --party "$party" $SPEC \
      --trace-out "trace.p$party.jsonl" \
      --stats-json "stats.p$party.jsonl" --stats-interval 10 \
      --perf-json "perf.p$party.json" \
      >"party$party.out" 2>&1 &
  PIDS+=($!)
done
for party in 0 1 2 3; do
  if ! wait "${PIDS[$party]}"; then
    fail "serve: party $party exited nonzero: $(cat "party$party.out")"
  fi
done
[ "$FAILURES" -eq 0 ] || { echo "$FAILURES failure(s)" >&2; exit 1; }

# --- 2. merge: re-evaluated, deterministic under shuffle -------------------
if ! "$TRACE_MERGE" --check --out merged.jsonl \
    trace.p0.jsonl trace.p1.jsonl trace.p2.jsonl trace.p3.jsonl \
    2>merge.err; then
  fail "trace_merge --check failed: $(cat merge.err)"
fi
grep -q 'global monitors re-evaluated' merge.err \
  || fail "merge did not re-evaluate global monitors: $(cat merge.err)"
"$TRACE_MERGE" --out merged.shuffled.jsonl \
    trace.p3.jsonl trace.p1.jsonl trace.p0.jsonl trace.p2.jsonl 2>/dev/null
cmp -s merged.jsonl merged.shuffled.jsonl \
  || fail "merged output depends on trace argument order"
tail -1 merged.jsonl | grep -q '"complete":1' \
  || fail "merged end marker not complete: $(tail -1 merged.jsonl)"
tail -1 merged.jsonl | grep -q '"violations":0' \
  || fail "merged timeline carries violations: $(tail -1 merged.jsonl)"
tail -1 merged.jsonl | grep -q '"orphans":0' \
  || fail "healthy run produced orphan delivers: $(tail -1 merged.jsonl)"

# --- 3. merged == single-process run of the same spec/seed ------------------
# The reference is the SIMULATOR backend: virtual time makes its trajectory
# a pure function of (spec, seed), so the comparison cannot be perturbed by
# machine load. A single-process socket run reproduces the same trajectory
# when undisturbed, but its wall-clock tick schedule is not load-proof.
if ! "$HYDRA" run --n 4 --ts 1 --ta 1 --dim 1 \
    --adversary none --corrupt 0 --network sync-worst \
    --monitors record --seed 1 --trace-out single.jsonl \
    >single.out 2>&1; then
  fail "single-process reference run failed: $(cat single.out)"
fi
for party in 0 1 2 3; do
  MERGED_SENDS=$(grep -c "\"ev\":\"send\",[^}]*\"from\":$party," merged.jsonl)
  SINGLE_SENDS=$(grep -c "\"ev\":\"send\",[^}]*\"from\":$party," single.jsonl)
  [ "$MERGED_SENDS" -gt 0 ] || fail "party $party sent nothing in merged trace"
  [ "$MERGED_SENDS" -eq "$SINGLE_SENDS" ] \
    || fail "party $party send tally differs: merged=$MERGED_SENDS single=$SINGLE_SENDS"
done
if ! "$HYDRA" report --merge 'trace.p*.jsonl' --merged-out merged2.jsonl \
    >report.txt 2>report.err; then
  fail "hydra report --merge failed: $(cat report.err)"
fi
cmp -s merged.jsonl merged2.jsonl \
  || fail "report --merge produced different merged bytes than trace_merge"
grep -q 'merged 4 trace(s)' report.err \
  || fail "report --merge summary missing: $(cat report.err)"

# --- 4. stats heartbeats + hydra top ---------------------------------------
for party in 0 1 2 3; do
  [ -s "stats.p$party.jsonl" ] || fail "stats.p$party.jsonl empty or missing"
  head -1 "stats.p$party.jsonl" | grep -q '"schema":"hydra-stats-v1"' \
    || fail "stats.p$party.jsonl first line lacks the schema tag"
  tail -1 "stats.p$party.jsonl" | grep -q '"final":1' \
    || fail "stats.p$party.jsonl lacks the guaranteed final heartbeat"
done
if ! "$HYDRA" top --input 'stats.p*.jsonl' >top.txt 2>&1; then
  fail "hydra top failed: $(cat top.txt)"
fi
grep -q 'final' top.txt || fail "hydra top shows no final process state"

# --- 5. merged perf profiles ------------------------------------------------
if ! "$HYDRA" perf --input 'perf.p*.json' >perf.txt 2>&1; then
  fail "hydra perf --input merge failed: $(cat perf.txt)"
fi
grep -q 'merged 4 phase profiles' perf.txt \
  || fail "perf merge did not report 4 inputs: $(head -3 perf.txt)"

# --- 6. kill one join mid-run: survivors still merge ------------------------
rm -f trace.p*.jsonl stats.p*.jsonl
KSPEC="--peers $PEERS --backend uds --ts 1 --ta 1 --dim 1 \
       --adversary none --corrupt 0 --network sync-jitter \
       --monitors record --seed 3 --delta 20000"
PIDS=()
for party in 0 1 2 3; do
  # shellcheck disable=SC2086
  timeout 60 "$HYDRA" serve --party "$party" $KSPEC \
      --trace-out "trace.p$party.jsonl" \
      --stats-json "stats.p$party.jsonl" --stats-interval 10 \
      >"kparty$party.out" 2>&1 &
  PIDS+=($!)
done
# Kill only once party 3 is demonstrably inside the run: its stats file is
# created at run start, AFTER cmd_serve installed the signal handlers — a
# bare sleep races process spawn under load (SIGTERM before the handler is
# up exits 143 via the default action, not the flush path's 130).
for _ in $(seq 1 300); do
  [ -s stats.p3.jsonl ] && break
  sleep 0.1
done
[ -s stats.p3.jsonl ] || fail "party 3 never started emitting stats"
sleep 0.3  # let some protocol traffic accumulate before the kill
kill -TERM "${PIDS[3]}" 2>/dev/null
wait "${PIDS[3]}"
STATUS=$?
[ "$STATUS" -eq 130 ] \
  || fail "SIGTERM'd join: expected flush-and-exit status 130, got $STATUS"
for party in 0 1 2; do
  wait "${PIDS[$party]}" || true  # survivors may stall without party 3; the
done                              # timeout wrapper bounds them either way
[ -s trace.p3.jsonl ] || fail "killed join left no trace behind"
[ -s stats.p3.jsonl ] || fail "killed join left no stats behind"
if ! "$TRACE_MERGE" --out killed.jsonl trace.p*.jsonl 2>kmerge.err; then
  fail "merging traces from a killed run errored: $(cat kmerge.err)"
fi
grep -q 'incomplete' kmerge.err \
  || fail "killed-run merge not reported incomplete: $(cat kmerge.err)"
tail -1 killed.jsonl | grep -q '"complete":0' \
  || fail "killed-run merged end marker claims completeness"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES failure(s)" >&2
  exit 1
fi
echo "cli_distributed_test: all checks passed"
