// Fuzz-style tests for the protocol codecs and end-to-end determinism.
//
// Byzantine parties control payload bytes completely, so every decoder must
// reject garbage gracefully — never crash, never return out-of-contract
// values. These tests fire large volumes of random and adversarially
// truncated/mutated bytes at each decoder and check the invariants of what
// IS accepted.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "protocol_test_util.hpp"

namespace hydra::test {
namespace {

using protocols::decode_pairs;
using protocols::decode_party_set;
using protocols::decode_value;
using protocols::encode_pairs;
using protocols::encode_party_set;
using protocols::encode_value;

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(CodecFuzz, RandomBytesNeverCrashDecoders) {
  Rng rng(0xFACEFEED);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto junk = random_bytes(rng, 64);
    const std::size_t dim = 1 + rng.next_below(4);
    const std::size_t n = 3 + rng.next_below(10);

    if (const auto v = decode_value(junk, dim)) {
      EXPECT_EQ(v->dim(), dim);
      for (std::size_t d = 0; d < dim; ++d) EXPECT_TRUE(std::isfinite((*v)[d]));
    }
    if (const auto pairs = decode_pairs(junk, dim, n)) {
      EXPECT_LE(pairs->size(), n);
      std::set<PartyId> seen;
      for (const auto& [party, value] : *pairs) {
        EXPECT_LT(party, n);
        EXPECT_TRUE(seen.insert(party).second);  // sorted & unique
        EXPECT_EQ(value.dim(), dim);
      }
    }
    if (const auto set = decode_party_set(junk, n)) {
      EXPECT_LE(set->size(), n);
      for (const auto p : *set) EXPECT_LT(p, n);
    }
  }
}

TEST(CodecFuzz, TruncationsOfValidPayloadsRejectOrStayValid) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t dim = 1 + rng.next_below(3);
    const std::size_t n = 4 + rng.next_below(6);
    protocols::PairList pairs;
    for (PartyId id = 0; id < n; ++id) {
      geo::Vec v(dim, 0.0);
      for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_double(-10, 10);
      pairs.emplace_back(id, std::move(v));
    }
    auto bytes = encode_pairs(pairs);
    // Any strict prefix must be rejected (the format is length-prefixed and
    // self-delimiting).
    for (int cut = 0; cut < 8; ++cut) {
      Bytes prefix(bytes.begin(),
                   bytes.begin() + static_cast<std::ptrdiff_t>(
                                       rng.next_below(bytes.size())));
      const auto decoded = decode_pairs(prefix, dim, n);
      EXPECT_FALSE(decoded.has_value());
    }
  }
}

TEST(CodecFuzz, SingleByteMutationsNeverViolateContracts) {
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t dim = 2;
    const std::size_t n = 6;
    protocols::PairList pairs;
    for (PartyId id = 0; id < n; ++id) {
      pairs.emplace_back(id, geo::Vec{rng.next_double(-1, 1), rng.next_double(-1, 1)});
    }
    auto bytes = encode_pairs(pairs);
    const std::size_t pos = rng.next_below(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    if (const auto decoded = decode_pairs(bytes, dim, n)) {
      std::set<PartyId> seen;
      for (const auto& [party, value] : *decoded) {
        EXPECT_LT(party, n);
        EXPECT_TRUE(seen.insert(party).second);
        EXPECT_EQ(value.dim(), dim);
        for (std::size_t d = 0; d < dim; ++d) EXPECT_TRUE(std::isfinite(value[d]));
      }
    }
  }
}

TEST(CodecFuzz, RoundTripsAreExact) {
  Rng rng(0xD00D);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t dim = 1 + rng.next_below(5);
    const std::size_t n = 3 + rng.next_below(12);

    geo::Vec v(dim, 0.0);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_gaussian() * 1e3;
    const auto decoded_v = decode_value(encode_value(v), dim);
    ASSERT_TRUE(decoded_v.has_value());
    EXPECT_EQ(*decoded_v, v);

    std::set<PartyId> parties;
    for (std::size_t i = 0; i < rng.next_below(n + 1); ++i) {
      parties.insert(static_cast<PartyId>(rng.next_below(n)));
    }
    const auto decoded_s = decode_party_set(encode_party_set(parties), n);
    ASSERT_TRUE(decoded_s.has_value());
    EXPECT_EQ(*decoded_s, parties);
  }
}

// ------------------------------------------------- end-to-end determinism

TEST(Determinism, IdenticalSeedsGiveBitIdenticalRuns) {
  const auto run_once = [] {
    Params params;
    params.n = 5;
    params.ts = 1;
    params.ta = 1;
    params.dim = 2;
    params.eps = 1e-2;
    params.delta = 1000;
    AaRunConfig cfg{.params = params,
                    .inputs = {geo::Vec{0.0, 0.0}, geo::Vec{3.0, 1.0},
                               geo::Vec{1.0, 4.0}, geo::Vec{-2.0, 2.0},
                               geo::Vec{2.0, -1.0}},
                    .seed = 99};
    cfg.byzantine[1] = [](const Params& p, const geo::Vec&) {
      return std::make_unique<adversary::SpammerParty>(p, 5, p.delta / 3,
                                                       40 * p.delta);
    };
    cfg.delay = [](const Params& p) {
      return std::make_unique<adversary::ReorderScheduler>(p.delta, 0.3,
                                                           10 * p.delta);
    };
    return run_aa(std::move(cfg));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.end_time, b.stats.end_time);
  ASSERT_EQ(a.honest.size(), b.honest.size());
  for (std::size_t i = 0; i < a.honest.size(); ++i) {
    ASSERT_TRUE(a.honest[i]->has_output());
    ASSERT_TRUE(b.honest[i]->has_output());
    EXPECT_EQ(a.honest[i]->output(), b.honest[i]->output());  // bit-identical
    EXPECT_EQ(a.honest[i]->value_history().size(),
              b.honest[i]->value_history().size());
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  Params params;
  params.n = 4;
  params.ts = 1;
  params.ta = 0;
  params.dim = 2;
  params.eps = 1e-3;
  params.delta = 1000;
  const std::vector<geo::Vec> inputs{
      {0.0, 0.0}, {3.0, 1.0}, {1.0, 4.0}, {-2.0, 2.0}};

  // A synchronous run is end-time-quantized by the timers regardless of
  // jitter, so divergence is only observable through asynchronous
  // scheduling, where different seeds deliver different value subsets first.
  std::set<std::string> fingerprints;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    AaRunConfig cfg{.params = params, .inputs = inputs, .seed = seed};
    cfg.delay = [](const Params& p) {
      return std::make_unique<adversary::ReorderScheduler>(p.delta, 0.4,
                                                           15 * p.delta);
    };
    auto run = run_aa(std::move(cfg));
    ASSERT_TRUE(run.all_output());
    std::string fp = std::to_string(run.stats.end_time);
    for (auto* p : run.honest) fp += "|" + geo::to_string(p->output());
    fingerprints.insert(fp);
  }
  EXPECT_GT(fingerprints.size(), 1u);  // schedules actually differ
}

}  // namespace
}  // namespace hydra::test
