// Unit tests for the common substrate: RNG determinism and distribution
// sanity, combinatorial enumeration, binary serialization (including
// Byzantine-malformed payloads), and instance-key hashing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/combinatorics.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace hydra {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanRoughlyHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kDraws, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  Rng parent2(23);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
  // Child differs from a fresh parent stream.
  Rng parent3(23);
  (void)parent3.next_u64();
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.next_u64() == parent3.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(std::span<int>(w));
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

// ------------------------------------------------------- combinatorics

TEST(Combinatorics, BinomialSmallValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
  EXPECT_EQ(binomial(3, 4), 0u);
}

TEST(Combinatorics, BinomialSymmetry) {
  for (std::uint64_t n = 0; n <= 20; ++n) {
    for (std::uint64_t k = 0; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n, n - k)) << n << " " << k;
    }
  }
}

TEST(Combinatorics, EnumerationCountMatchesBinomial) {
  for (std::size_t n = 0; n <= 9; ++n) {
    for (std::size_t k = 0; k <= n; ++k) {
      std::size_t count = 0;
      for_each_combination(n, k, [&](const std::vector<std::size_t>&) { ++count; });
      EXPECT_EQ(count, binomial(n, k)) << n << " choose " << k;
    }
  }
}

TEST(Combinatorics, EnumerationIsLexicographicAndUnique) {
  std::vector<std::vector<std::size_t>> subsets;
  for_each_combination(5, 3, [&](const std::vector<std::size_t>& s) {
    subsets.push_back(s);
  });
  ASSERT_EQ(subsets.size(), 10u);
  EXPECT_EQ(subsets.front(), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(subsets.back(), (std::vector<std::size_t>{2, 3, 4}));
  for (std::size_t i = 1; i < subsets.size(); ++i) {
    EXPECT_LT(subsets[i - 1], subsets[i]);
  }
}

TEST(Combinatorics, ComplementIndices) {
  const auto c = complement_indices(6, {1, 4});
  EXPECT_EQ(c, (std::vector<std::size_t>{0, 2, 3, 5}));
  EXPECT_EQ(complement_indices(3, {}), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(complement_indices(2, {0, 1}).empty());
}

// ----------------------------------------------------------- serialize

TEST(Serialize, RoundTripScalars) {
  Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, RoundTripContainers) {
  Writer w;
  w.str("hello world");
  const std::vector<double> vec{1.5, -2.5, 1e-300, 1e300};
  w.f64_vec(vec);
  Bytes blob{1, 2, 3, 255};
  w.bytes(blob);
  Reader r(w.data());
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.f64_vec(), vec);
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.ok());
}

TEST(Serialize, SpecialDoubles) {
  Writer w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  Reader r(w.data());
  EXPECT_TRUE(std::isinf(r.f64()));
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_TRUE(r.ok());
}

TEST(Serialize, TruncatedInputReportsNotOk) {
  Writer w;
  w.u64(7);
  Bytes data = w.data();
  data.resize(4);
  Reader r(data);
  (void)r.u64();
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, MalformedLengthPrefixDoesNotOverread) {
  // A Byzantine payload claiming a huge vector must fail cleanly.
  Writer w;
  w.u32(0xFFFFFFFF);
  Reader r(w.data());
  const auto v = r.f64_vec();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

// Regression: length prefixes near UINT32_MAX must fail via ok(), never by
// forming `pos_ + len` (which wraps on 32-bit size_t and would pass a naive
// bounds check, handing back a span into unowned memory). One case per
// prefixed reader, each with the cursor mid-buffer so pos_ > 0.
TEST(Serialize, AdversarialLengthPrefixBytes) {
  for (const std::uint32_t len :
       {0xFFFFFFFFu, 0xFFFFFFFEu, 0xFFFFFFF0u, 0x80000000u}) {
    Writer w;
    w.u8(7);      // advance the cursor: overflow needs pos_ + len, not len
    w.u32(len);   // claimed size, vastly beyond the buffer
    w.u8(0xAB);   // one actual byte behind the lying prefix
    Reader r(w.data());
    EXPECT_EQ(r.u8(), 7u);
    const Bytes b = r.bytes();
    EXPECT_TRUE(b.empty()) << "len=" << len;
    EXPECT_FALSE(r.ok()) << "len=" << len;
  }
}

TEST(Serialize, AdversarialLengthPrefixStr) {
  Writer w;
  w.u64(42);
  w.u32(0xFFFFFFFF);
  Reader r(w.data());
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, AdversarialLengthPrefixF64Vec) {
  // Element counts where len * 8 overflows 32-bit size_t: the cap check must
  // reject them before any multiplication is formed.
  for (const std::uint32_t len : {0xFFFFFFFFu, 0x20000001u, 0x40000000u}) {
    Writer w;
    w.u32(len);
    w.f64(1.0);
    Reader r(w.data());
    EXPECT_TRUE(r.f64_vec().empty()) << "len=" << len;
    EXPECT_FALSE(r.ok()) << "len=" << len;
  }
}

TEST(Serialize, LengthPrefixExactlyRemainingIsAccepted) {
  // Boundary sanity for the overflow-safe rewrite: a prefix equal to the
  // exact remaining byte count still decodes (off-by-one guard).
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, FailedReaderStaysFailed) {
  // ok_ is sticky: after a lying prefix every later read returns zero values
  // and the reader never "recovers" into trusting the stream again.
  Writer w;
  w.u32(0xFFFFFFFF);
  w.u32(5);
  Reader r(w.data());
  (void)r.bytes();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, EmptyContainers) {
  Writer w;
  w.str("");
  w.f64_vec({});
  w.bytes({});
  Reader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.f64_vec().empty());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

// ----------------------------------------------------------- InstanceKey

TEST(InstanceKey, OrderingAndEquality) {
  const InstanceKey a{1, 2, 3};
  const InstanceKey b{1, 2, 4};
  const InstanceKey c{1, 2, 3};
  EXPECT_EQ(a, c);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(InstanceKey, HashSpreads) {
  InstanceKeyHash h;
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t tag = 0; tag < 10; ++tag) {
    for (std::uint32_t a = 0; a < 10; ++a) {
      for (std::uint32_t b = 0; b < 10; ++b) {
        hashes.insert(h(InstanceKey{tag, a, b}));
      }
    }
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions on this dense grid
}

}  // namespace
}  // namespace hydra
