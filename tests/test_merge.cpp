// Cross-process trace stitching (obs/merge.hpp) and the hydra-stats-v1 live
// telemetry schema (obs/stats.hpp):
//
//   * a real sim-backend trace merges cleanly and the post-hoc global monitor
//     re-evaluation reproduces the live run's verdict and per-party tallies;
//   * the merged output is a pure function of the input CONTENTS — shuffling
//     the path list yields byte-identical bytes;
//   * causality holds: a deliver is never emitted before its cause send,
//     even when per-process clocks disagree; delivers whose cause send is in
//     no input file are counted as orphans;
//   * hostile inputs fail actionably (meta mismatch, duplicate proc tags,
//     missing meta) and torn lines from a killed process are skipped, not
//     fatal;
//   * StatsPublisher heartbeats round-trip through the flatjson parsers the
//     `hydra top` command uses, and the final line is flagged.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/runner.hpp"
#include "obs/flatjson.hpp"
#include "obs/merge.hpp"
#include "obs/monitor.hpp"
#include "obs/stats.hpp"

using namespace hydra;

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Minimal but spec-complete meta line (every field merge_traces() reads).
/// `mode:"off"` keeps the re-evaluation out of synthetic-trace tests so they
/// exercise pure merge mechanics.
std::string meta_line(std::uint32_t proc, std::uint64_t seed = 9,
                      const std::string& mode = "off") {
  std::ostringstream os;
  os << R"({"ev":"meta","schema":"hydra-trace-v1","proc":)" << proc
     << R"(,"run_id":42,"seed":)" << seed
     << R"(,"n":2,"ts":0,"ta":0,"dim":1,"eps":0.01,"mode":")" << mode
     << R"(","honest":[1,1],"local":[)" << (proc - 1) << R"(]})"
     << "\n";
  return os.str();
}

constexpr const char* kEndComplete = R"({"ev":"end","complete":1,"quiescent":0})"
                                     "\n";

// ------------------------------------------------------- real sim-run merge

harness::RunSpec small_spec(std::uint64_t seed) {
  harness::RunSpec spec;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.network = harness::Network::kSyncJitter;
  spec.adversary = harness::Adversary::kSilent;
  spec.corruptions = 1;
  spec.seed = seed;
  spec.monitors = obs::MonitorMode::kRecord;
  return spec;
}

TEST(Merge, SimTraceReevaluatesToLiveVerdict) {
  const std::string path = temp_path("merge_sim.jsonl");
  auto spec = small_spec(7);
  spec.trace_out = path;
  const auto live = harness::execute(spec);
  EXPECT_TRUE(live.verdict.d_aa());
  EXPECT_EQ(live.monitor_violations, 0u);

  const auto merged = obs::merge_traces({path});
  ASSERT_TRUE(merged.ok()) << merged.error;
  EXPECT_EQ(merged.files, 1u);
  EXPECT_TRUE(merged.complete);
  EXPECT_TRUE(merged.reevaluated);
  EXPECT_EQ(merged.orphans, 0u);
  EXPECT_EQ(merged.skipped_lines, 0u);
  // The global re-run over the merged timeline reaches the live verdict.
  EXPECT_EQ(merged.violations, live.monitor_violations);
  // Thm 5.19 tallies: the re-run counts exactly the wire traffic the live
  // stats counted (self-deliveries are excluded on both sides).
  std::uint64_t sent = 0;
  for (const auto m : merged.sent_msgs) sent += m;
  EXPECT_EQ(sent, live.messages);
  std::uint64_t bytes = 0;
  for (const auto b : merged.sent_bytes) bytes += b;
  EXPECT_EQ(bytes, live.bytes);

  // Merging a merge-output is not meaningful (one file, same proc), but the
  // merged text itself must end with the synthesized summary line.
  const auto tail = merged.merged.rfind(R"({"ev":"end","complete":1)");
  EXPECT_NE(tail, std::string::npos);

  std::remove(path.c_str());
}

TEST(Merge, MergeOfSameTraceIsIdempotentlyDeterministic) {
  const std::string path = temp_path("merge_det.jsonl");
  auto spec = small_spec(13);
  spec.trace_out = path;
  (void)harness::execute(spec);

  const auto once = obs::merge_traces({path});
  const auto twice = obs::merge_traces({path});
  ASSERT_TRUE(once.ok()) << once.error;
  EXPECT_EQ(once.merged, twice.merged);
  std::remove(path.c_str());
}

// -------------------------------------------------- synthetic merge mechanics

TEST(Merge, ByteIdenticalUnderPathShuffle) {
  const std::string a = temp_path("merge_sh_a.jsonl");
  const std::string b = temp_path("merge_sh_b.jsonl");
  write_file(a, meta_line(1) +
                    R"({"ev":"send","t":10,"from":0,"to":1,"tag":1,"a":0,"b":0,"kind":0,"bytes":8,"id":101,"proc":1})"
                    "\n" +
                    kEndComplete);
  write_file(b, meta_line(2) +
                    R"({"ev":"deliver","t":12,"from":0,"to":1,"tag":1,"a":0,"b":0,"kind":0,"bytes":8,"cause":101,"proc":2})"
                    "\n" +
                    kEndComplete);

  const auto ab = obs::merge_traces({a, b});
  const auto ba = obs::merge_traces({b, a});
  ASSERT_TRUE(ab.ok()) << ab.error;
  ASSERT_TRUE(ba.ok()) << ba.error;
  EXPECT_EQ(ab.merged, ba.merged);
  EXPECT_EQ(ab.events, 2u);
  EXPECT_EQ(ab.orphans, 0u);
  EXPECT_TRUE(ab.complete);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Merge, DeliverHeldBackUntilCauseSendEmitted) {
  // Proc 2's clock runs early: its deliver is stamped t=3, BEFORE the t=10
  // send that caused it. The merge must still order cause before effect.
  const std::string a = temp_path("merge_causal_a.jsonl");
  const std::string b = temp_path("merge_causal_b.jsonl");
  write_file(a, meta_line(1) +
                    R"({"ev":"send","t":10,"from":0,"to":1,"tag":1,"a":0,"b":0,"kind":0,"bytes":8,"id":777,"proc":1})"
                    "\n" +
                    kEndComplete);
  write_file(b, meta_line(2) +
                    R"({"ev":"deliver","t":3,"from":0,"to":1,"tag":1,"a":0,"b":0,"kind":0,"bytes":8,"cause":777,"proc":2})"
                    "\n" +
                    kEndComplete);

  const auto res = obs::merge_traces({a, b});
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.orphans, 0u);
  const auto send_pos = res.merged.find(R"("id":777)");
  const auto deliver_pos = res.merged.find(R"("cause":777)");
  ASSERT_NE(send_pos, std::string::npos);
  ASSERT_NE(deliver_pos, std::string::npos);
  EXPECT_LT(send_pos, deliver_pos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Merge, DeliverWithAbsentCauseIsAnOrphan) {
  // The cause send lives in a process whose trace is missing (killed before
  // flush, file lost): the deliver is emitted in timestamp order and counted.
  const std::string a = temp_path("merge_orphan.jsonl");
  write_file(a, meta_line(1) +
                    R"({"ev":"deliver","t":5,"from":1,"to":0,"tag":1,"a":0,"b":0,"kind":0,"bytes":8,"cause":999,"proc":1})"
                    "\n" +
                    kEndComplete);
  const auto res = obs::merge_traces({a});
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.orphans, 1u);
  EXPECT_EQ(res.events, 1u);
  std::remove(a.c_str());
}

TEST(Merge, MetaSpecMismatchFailsActionably) {
  const std::string a = temp_path("merge_mm_a.jsonl");
  const std::string b = temp_path("merge_mm_b.jsonl");
  write_file(a, meta_line(1, /*seed=*/9) + kEndComplete);
  write_file(b, meta_line(2, /*seed=*/10) + kEndComplete);
  const auto res = obs::merge_traces({a, b});
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.error.find("meta mismatch"), std::string::npos) << res.error;
  EXPECT_NE(res.error.find("seed"), std::string::npos) << res.error;
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Merge, DuplicateProcTagFails) {
  const std::string a = temp_path("merge_dup_a.jsonl");
  const std::string b = temp_path("merge_dup_b.jsonl");
  write_file(a, meta_line(1) + kEndComplete);
  write_file(b, meta_line(1) + kEndComplete);
  const auto res = obs::merge_traces({a, b});
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.error.find("same proc tag"), std::string::npos) << res.error;
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Merge, FileWithoutMetaFails) {
  const std::string a = temp_path("merge_nometa.jsonl");
  write_file(a, std::string(R"({"ev":"state","t":1,"party":0})") + "\n");
  const auto res = obs::merge_traces({a});
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.error.find("no meta event"), std::string::npos) << res.error;
  std::remove(a.c_str());
}

TEST(Merge, TornTailIsSkippedNotFatal) {
  // A SIGKILL mid-write leaves a torn final line; the merge keeps the valid
  // prefix, counts the junk, and reports the stream incomplete (no `end`).
  const std::string a = temp_path("merge_torn.jsonl");
  write_file(a, meta_line(1) +
                    R"({"ev":"state","t":4,"party":0,"layer":"init","what":"start","a":0,"b":0,"proc":1})"
                    "\n"
                    R"({"ev":"send","t":6,"fro)");
  const auto res = obs::merge_traces({a});
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.events, 1u);
  EXPECT_EQ(res.skipped_lines, 1u);
  EXPECT_FALSE(res.complete);
  EXPECT_FALSE(res.reevaluated);
  std::remove(a.c_str());
}

TEST(Merge, IncompleteRunKeepsLocalViolations) {
  // Without every process's end{complete:1}, the global re-run would judge a
  // partial world — the merge must instead surface the surviving local
  // violation lines verbatim.
  const std::string a = temp_path("merge_incpl_a.jsonl");
  const std::string b = temp_path("merge_incpl_b.jsonl");
  write_file(a, meta_line(1, 9, "record") +
                    R"({"ev":"invariant.violation","t":7,"party":0,"monitor":"validity","it":1,"cause":0,"detail":"x","proc":1})"
                    "\n" +
                    kEndComplete);
  write_file(b, meta_line(2, 9, "record"));  // killed: no end marker
  const auto res = obs::merge_traces({a, b});
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_FALSE(res.complete);
  EXPECT_FALSE(res.reevaluated);
  EXPECT_EQ(res.violations, 1u);
  ASSERT_TRUE(res.violations_by_monitor.contains("validity"));
  EXPECT_EQ(res.violations_by_monitor.at("validity"), 1u);
  EXPECT_NE(res.merged.find(R"("monitor":"validity")"), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Merge, CompleteRunDropsLocalViolationsBeforeReeval) {
  // A local violation line judged a per-process island; on a complete merge
  // the global re-run supersedes it. mode:"off" still drops the local lines
  // only when complete — here mode "record" with no protocol events re-runs
  // to zero violations, so the stale local line must be gone.
  const std::string a = temp_path("merge_super.jsonl");
  write_file(a, meta_line(1, 9, "record") +
                    R"({"ev":"invariant.violation","t":7,"party":0,"monitor":"budget.msgs","it":1,"cause":0,"detail":"stale","proc":1})"
                    "\n" +
                    kEndComplete);
  const auto res = obs::merge_traces({a});
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.reevaluated);
  EXPECT_EQ(res.violations, 0u);
  EXPECT_EQ(res.merged.find("stale"), std::string::npos);
  std::remove(a.c_str());
}

// ------------------------------------------------------- stats schema round-trip

TEST(Stats, HeartbeatsRoundTripThroughFlatjson) {
  const std::string path = temp_path("stats_rt.jsonl");
  {
    obs::StatsPublisher pub(path, /*interval_ms=*/5, /*proc=*/3);
    ASSERT_TRUE(pub.ok());
    std::atomic<std::uint64_t> ticks{0};
    pub.set_provider([&](obs::StatsSnapshot& s) {
      const auto n = ticks.fetch_add(1) + 1;
      s.messages = 10 * n;
      s.bytes = 100 * n;
      s.decided = 1;
      s.round = 4;
      obs::StatsSnapshot::Party p;
      p.id = 2;
      p.finished = true;
      p.events = 17;
      p.round = 4;
      s.parties.push_back(p);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    pub.set_provider(nullptr);
    pub.stop();
    pub.stop();  // idempotent
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  bool saw_final = false;
  double last_ms = -1.0;
  while (std::getline(in, line)) {
    auto kv = obs::flatjson::parse_object_arrays(line);
    ASSERT_FALSE(kv.empty()) << line;
    ++lines;
    EXPECT_EQ(obs::flatjson::str(kv, "schema"), "hydra-stats-v1") << line;
    EXPECT_EQ(obs::flatjson::num(kv, "proc"), 3) << line;
    const double ms = obs::flatjson::real(kv, "ms");
    EXPECT_GE(ms, last_ms) << "wall clock went backwards: " << line;
    last_ms = ms;
    EXPECT_FALSE(saw_final) << "line after the final heartbeat: " << line;
    saw_final = obs::flatjson::num(kv, "final") != 0;
    if (obs::flatjson::num(kv, "messages") == 0) continue;  // pre-provider
    // parties:[[id,finished,events,round],...] — the exact access pattern
    // `hydra top` uses.
    const auto party =
        obs::flatjson::parse_reals(obs::flatjson::str(kv, "parties"));
    ASSERT_EQ(party.size(), 4u) << line;
    EXPECT_EQ(party[0], 2.0);
    EXPECT_EQ(party[1], 1.0);
    EXPECT_EQ(party[2], 17.0);
    EXPECT_EQ(party[3], 4.0);
    EXPECT_EQ(obs::flatjson::num(kv, "decided"), 1) << line;
    EXPECT_EQ(obs::flatjson::num(kv, "round"), 4) << line;
  }
  EXPECT_GE(lines, 2u);  // at least one periodic beat plus the final one
  EXPECT_TRUE(saw_final);

  // A zero proc tag suppresses the key entirely (single-process runs).
  const std::string path0 = temp_path("stats_rt0.jsonl");
  {
    obs::StatsPublisher pub(path0, 5, /*proc=*/0);
    ASSERT_TRUE(pub.ok());
    pub.stop();
  }
  const std::string doc = slurp(path0);
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc.find("\"proc\""), std::string::npos);
  std::remove(path.c_str());
  std::remove(path0.c_str());
}

}  // namespace
