// Tests for the discrete-event simulator: event ordering, timer semantics,
// delay models, broadcast accounting, and end-to-end determinism.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/delay.hpp"
#include "sim/env.hpp"
#include "sim/message.hpp"
#include "sim/simulation.hpp"

namespace hydra::sim {
namespace {

/// A party that records everything that happens to it.
class Recorder : public IParty {
 public:
  struct Entry {
    Time at;
    PartyId from;   // kInvalidParty for timers / start
    std::uint64_t tag;
  };

  void start(Env& env) override {
    log.push_back({env.now(), kInvalidParty, 0xFFFF});
    if (on_start) on_start(env);
  }

  void on_message(Env& env, PartyId from, const Message& msg) override {
    log.push_back({env.now(), from, msg.key.tag});
    if (on_msg) on_msg(env, from, msg);
  }

  void on_timer(Env& env, std::uint64_t timer_id) override {
    log.push_back({env.now(), kInvalidParty, timer_id});
    if (on_tmr) on_tmr(env, timer_id);
  }

  std::vector<Entry> log;
  std::function<void(Env&)> on_start;
  std::function<void(Env&, PartyId, const Message&)> on_msg;
  std::function<void(Env&, std::uint64_t)> on_tmr;
};

Message make_msg(std::uint32_t tag, Bytes payload = {}) {
  return Message{InstanceKey{tag, 0, 0}, 0, std::move(payload)};
}

TEST(Simulation, StartsAllPartiesAtTimeZero) {
  Simulation sim({.n = 3, .delta = 100, .seed = 1}, std::make_unique<FixedDelay>(100));
  std::vector<Recorder*> recs;
  for (int i = 0; i < 3; ++i) {
    auto r = std::make_unique<Recorder>();
    recs.push_back(r.get());
    sim.add_party(std::move(r));
  }
  sim.run();
  for (auto* r : recs) {
    ASSERT_EQ(r->log.size(), 1u);
    EXPECT_EQ(r->log[0].at, 0);
  }
}

TEST(Simulation, FixedDelayDeliversAtExactlyDelta) {
  Simulation sim({.n = 2, .delta = 100, .seed = 1}, std::make_unique<FixedDelay>(100));
  auto a = std::make_unique<Recorder>();
  a->on_start = [](Env& env) { env.send(1, make_msg(7)); };
  auto b = std::make_unique<Recorder>();
  Recorder* b_raw = b.get();
  sim.add_party(std::move(a));
  sim.add_party(std::move(b));
  sim.run();
  ASSERT_EQ(b_raw->log.size(), 2u);  // start + message
  EXPECT_EQ(b_raw->log[1].at, 100);
  EXPECT_EQ(b_raw->log[1].from, 0u);
  EXPECT_EQ(b_raw->log[1].tag, 7u);
}

TEST(Simulation, SelfMessagesDeliverImmediatelyButNotReentrantly) {
  Simulation sim({.n = 1, .delta = 100, .seed = 1}, std::make_unique<FixedDelay>(100));
  auto a = std::make_unique<Recorder>();
  Recorder* a_raw = a.get();
  bool inside_start = true;
  a->on_start = [&](Env& env) {
    env.send(0, make_msg(1));
    inside_start = false;  // set after send returns: delivery must come later
  };
  bool was_reentrant = true;
  a->on_msg = [&](Env&, PartyId, const Message&) { was_reentrant = inside_start; };
  sim.add_party(std::move(a));
  sim.run();
  ASSERT_EQ(a_raw->log.size(), 2u);
  EXPECT_EQ(a_raw->log[1].at, 0);    // same virtual time
  EXPECT_FALSE(was_reentrant);       // but after the handler returned
}

TEST(Simulation, BroadcastReachesEveryoneIncludingSelf) {
  Simulation sim({.n = 4, .delta = 50, .seed = 1}, std::make_unique<FixedDelay>(50));
  std::vector<Recorder*> recs;
  for (int i = 0; i < 4; ++i) {
    auto r = std::make_unique<Recorder>();
    if (i == 2) {
      r->on_start = [](Env& env) { env.broadcast(make_msg(9)); };
    }
    recs.push_back(r.get());
    sim.add_party(std::move(r));
  }
  const auto stats = sim.run();
  for (auto* r : recs) {
    ASSERT_EQ(r->log.size(), 2u);
    EXPECT_EQ(r->log[1].from, 2u);
  }
  // Wire traffic only: the self-delivery never touches the network, so a
  // broadcast to n = 4 parties counts n - 1 = 3 messages.
  EXPECT_EQ(stats.messages, 3u);
}

TEST(Simulation, TimersFireAtRequestedTime) {
  Simulation sim({.n = 1, .delta = 10, .seed = 1}, std::make_unique<FixedDelay>(10));
  auto a = std::make_unique<Recorder>();
  Recorder* a_raw = a.get();
  a->on_start = [](Env& env) {
    env.set_timer(500, 1);
    env.set_timer(200, 2);
    env.set_timer(200, 3);
  };
  sim.add_party(std::move(a));
  sim.run();
  ASSERT_EQ(a_raw->log.size(), 4u);
  // Timers at equal times preserve submission order.
  EXPECT_EQ(a_raw->log[1].at, 200);
  EXPECT_EQ(a_raw->log[1].tag, 2u);
  EXPECT_EQ(a_raw->log[2].at, 200);
  EXPECT_EQ(a_raw->log[2].tag, 3u);
  EXPECT_EQ(a_raw->log[3].at, 500);
  EXPECT_EQ(a_raw->log[3].tag, 1u);
}

TEST(Simulation, PastDeadlineTimerFiresImmediately) {
  Simulation sim({.n = 1, .delta = 10, .seed = 1}, std::make_unique<FixedDelay>(10));
  auto a = std::make_unique<Recorder>();
  Recorder* a_raw = a.get();
  a->on_start = [](Env& env) { env.set_timer(100, 1); };
  a->on_tmr = [](Env& env, std::uint64_t id) {
    if (id == 1) env.set_timer(5, 2);  // deadline already past (now = 100)
  };
  sim.add_party(std::move(a));
  sim.run();
  ASSERT_EQ(a_raw->log.size(), 3u);
  EXPECT_EQ(a_raw->log[2].at, 100);  // clamped to now
}

TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim({.n = 5, .delta = 100, .seed = 42},
                   std::make_unique<UniformDelay>(10, 100));
    std::vector<Recorder*> recs;
    for (int i = 0; i < 5; ++i) {
      auto r = std::make_unique<Recorder>();
      r->on_start = [](Env& env) { env.broadcast(make_msg(1)); };
      r->on_msg = [](Env& env, PartyId from, const Message& msg) {
        // One ping-back per received broadcast, bounded by tag value.
        if (msg.key.tag < 3) {
          auto m = msg;
          m.key.tag += 1;
          env.send(from, m);
        }
      };
      recs.push_back(r.get());
      sim.add_party(std::move(r));
    }
    const auto stats = sim.run();
    std::vector<std::tuple<Time, PartyId, std::uint64_t>> flat;
    for (auto* r : recs) {
      for (const auto& e : r->log) flat.emplace_back(e.at, e.from, e.tag);
    }
    return std::pair{stats, flat};
  };
  const auto [s1, l1] = run_once();
  const auto [s2, l2] = run_once();
  EXPECT_EQ(s1.messages, s2.messages);
  EXPECT_EQ(s1.bytes, s2.bytes);
  EXPECT_EQ(s1.end_time, s2.end_time);
  EXPECT_EQ(l1, l2);
}

TEST(Simulation, UniformDelayStaysInBounds) {
  Rng rng(7);
  UniformDelay model(10, 100);
  Message msg = make_msg(0);
  for (int i = 0; i < 1000; ++i) {
    const auto d = model.delay(0, 1, 0, msg, rng);
    EXPECT_GE(d, 10);
    EXPECT_LE(d, 100);
  }
}

TEST(Simulation, ExponentialDelayRespectsCapAndMin) {
  Rng rng(7);
  ExponentialDelay model(500.0, 2000);
  Message msg = make_msg(0);
  bool saw_above_delta = false;
  for (int i = 0; i < 2000; ++i) {
    const auto d = model.delay(0, 1, 0, msg, rng);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 2000);
    if (d > 1000) saw_above_delta = true;
  }
  EXPECT_TRUE(saw_above_delta);  // async model violates any Delta = 1000 bound
}

TEST(Simulation, StatsCountBytes) {
  Simulation sim({.n = 2, .delta = 10, .seed = 1}, std::make_unique<FixedDelay>(10));
  auto a = std::make_unique<Recorder>();
  a->on_start = [](Env& env) { env.send(1, make_msg(1, Bytes(100, 0xAA))); };
  sim.add_party(std::move(a));
  sim.add_party(std::make_unique<Recorder>());
  const auto stats = sim.run();
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bytes, 100u + 17u);
}

TEST(Simulation, MaxTimeStopsRunawayRun) {
  Simulation sim({.n = 1, .delta = 10, .seed = 1, .max_time = 1000},
                 std::make_unique<FixedDelay>(10));
  auto a = std::make_unique<Recorder>();
  a->on_start = [](Env& env) { env.set_timer(env.now() + 100, 1); };
  a->on_tmr = [](Env& env, std::uint64_t) { env.set_timer(env.now() + 100, 1); };
  sim.add_party(std::move(a));
  const auto stats = sim.run();
  EXPECT_TRUE(stats.hit_limit);
  EXPECT_LE(stats.end_time, 1000);
}

TEST(Simulation, ScheduleHookRunsAtRequestedTime) {
  Simulation sim({.n = 1, .delta = 10, .seed = 1}, std::make_unique<FixedDelay>(10));
  sim.add_party(std::make_unique<Recorder>());
  Time fired_at = -1;
  sim.schedule(333, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, 333);
}

}  // namespace
}  // namespace hydra::sim
