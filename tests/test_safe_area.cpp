// Tests for the safe area (Definition 5.1) and the combinatorial lemmas of
// Section 5.1. The parameterized suites are property tests: they sweep
// random instances across dimensions and check the lemma statements hold on
// every draw.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/combinatorics.hpp"
#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "geometry/safe_area.hpp"
#include "geometry/vec.hpp"

namespace hydra::geo {
namespace {

std::vector<Vec> random_points(Rng& rng, std::size_t count, std::size_t dim,
                               double radius = 10.0) {
  std::vector<Vec> pts;
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Vec v(dim, 0.0);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_double(-radius, radius);
    pts.push_back(std::move(v));
  }
  return pts;
}

/// Restriction hull point sets for safe_t(values) — used to cross-check the
/// SafeArea kernels against the raw LP formulation.
std::vector<std::vector<Vec>> restriction_hulls(std::span<const Vec> values,
                                                std::size_t t) {
  std::vector<std::vector<Vec>> hulls;
  for_each_combination(values.size(), t, [&](const std::vector<std::size_t>& removed) {
    const auto kept = complement_indices(values.size(), removed);
    std::vector<Vec> h;
    h.reserve(kept.size());
    for (auto i : kept) h.push_back(values[i]);
    hulls.push_back(std::move(h));
  });
  return hulls;
}

// ----------------------------------------------------- basic behaviour

TEST(SafeArea, TZeroIsConvexHull) {
  const std::vector<Vec> pts{{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}};
  const auto sa = SafeArea::compute(pts, 0);
  ASSERT_FALSE(sa.empty());
  EXPECT_TRUE(sa.contains(Vec{0.5, 0.5}));
  EXPECT_FALSE(sa.contains(Vec{1.5, 1.5}));
  EXPECT_NEAR(sa.diameter(), 2.0 * std::sqrt(2.0), 1e-9);
}

TEST(SafeArea, EmptyInputs) {
  EXPECT_TRUE(SafeArea::compute(std::vector<Vec>{}, 0).empty());
  // t >= |M|: no restriction of positive size exists.
  EXPECT_TRUE(SafeArea::compute(std::vector<Vec>{{1.0, 1.0}}, 1).empty());
}

TEST(SafeArea, PaperEmptyExample) {
  // Section 5: safe_1({(0,0),(0,1),(1,0)}) = empty — the motivating case for
  // the max(k, ta) trim rule.
  const std::vector<Vec> pts{{0.0, 0.0}, {0.0, 1.0}, {1.0, 0.0}};
  EXPECT_TRUE(SafeArea::compute(pts, 1).empty());
}

TEST(SafeArea, Figure2SquareCollapsesToPoint) {
  // Figure 2's structure: four points in convex position with t = 1; the
  // safe area is the single intersection point of the diagonals.
  const std::vector<Vec> pts{{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
  const auto sa = SafeArea::compute(pts, 1);
  ASSERT_FALSE(sa.empty());
  EXPECT_NEAR(sa.diameter(), 0.0, 1e-7);
  const auto mid = sa.midpoint_rule();
  ASSERT_TRUE(mid.has_value());
  EXPECT_TRUE(approx_equal(*mid, Vec{0.5, 0.5}, 1e-7));
}

TEST(SafeArea, OneDimensionalTrimmedInterval) {
  // safe_t in 1-D is the classic trimmed interval [x_(t+1), x_(m-t)].
  const std::vector<Vec> pts{{5.0}, {1.0}, {3.0}, {9.0}, {7.0}};
  const auto sa = SafeArea::compute(pts, 1);
  ASSERT_FALSE(sa.empty());
  EXPECT_DOUBLE_EQ(sa.interval1d().lo, 3.0);
  EXPECT_DOUBLE_EQ(sa.interval1d().hi, 7.0);
  const auto mid = sa.midpoint_rule();
  ASSERT_TRUE(mid.has_value());
  EXPECT_DOUBLE_EQ((*mid)[0], 5.0);
}

TEST(SafeArea, OneDimensionalOvertrimmedIsEmpty) {
  const std::vector<Vec> pts{{0.0}, {10.0}};
  EXPECT_TRUE(SafeArea::compute(pts, 1).empty());  // [x_2, x_1] inverted
}

TEST(SafeArea, MidpointDeterministicAcrossCalls) {
  Rng rng(99);
  const auto pts = random_points(rng, 8, 2);
  const auto a = safe_area_midpoint(pts, 2);
  const auto b = safe_area_midpoint(pts, 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
}

TEST(SafeArea, ThreeDimensionalBasic) {
  // Unit simplex corners + centroid copies: safe_1 must contain the centroid.
  std::vector<Vec> pts;
  pts.push_back(Vec{0.0, 0.0, 0.0});
  pts.push_back(Vec{1.0, 0.0, 0.0});
  pts.push_back(Vec{0.0, 1.0, 0.0});
  pts.push_back(Vec{0.0, 0.0, 1.0});
  pts.push_back(Vec{0.25, 0.25, 0.25});
  pts.push_back(Vec{0.25, 0.25, 0.25});
  const auto sa = SafeArea::compute(pts, 1);
  ASSERT_FALSE(sa.empty());
  EXPECT_TRUE(sa.contains(Vec{0.25, 0.25, 0.25}, 1e-6));
  const auto mid = sa.midpoint_rule();
  ASSERT_TRUE(mid.has_value());
  EXPECT_TRUE(sa.contains(*mid, 1e-5));
}

TEST(SafeArea, Exact2DAgreesWithLpKernelOnMembership) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = random_points(rng, 7, 2);
    const std::size_t t = 1 + trial % 2;
    const auto sa = SafeArea::compute(pts, t);
    const auto hulls = restriction_hulls(pts, t);
    const auto witness = intersection_point(hulls);
    EXPECT_EQ(sa.empty(), !witness.has_value()) << "trial " << trial;
    if (!sa.empty()) {
      // Probe points: LP membership must match polygon membership.
      for (int probe = 0; probe < 10; ++probe) {
        Vec q{rng.next_double(-12, 12), rng.next_double(-12, 12)};
        bool lp_in = true;
        for (const auto& h : hulls) {
          if (!in_convex_hull(h, q, 1e-7)) {
            lp_in = false;
            break;
          }
        }
        // Skip near-boundary probes where tolerance conventions differ.
        const auto mid = sa.midpoint_rule();
        if (mid && distance(q, *mid) < 1e-3) continue;
        EXPECT_EQ(sa.contains(q, 1e-6), lp_in)
            << "trial " << trial << " probe " << to_string(q);
      }
    }
  }
}

// --------------------------------------------- Lemma 5.3 (restriction count)

TEST(Lemma53, RestrictionCountAtLeastDPlus1) {
  // |restrict_max(k,ta)(M)| >= D+1 whenever |M| = n-ts+k, k <= ts,
  // n > (D+1) ts + ta and max(k, ta) >= 1. (When max(k, ta) = 0 the
  // restriction family is the single set M, and Helly's theorem is not
  // needed: one hull trivially has non-empty self-intersection.)
  for (std::size_t dim = 1; dim <= 4; ++dim) {
    for (std::size_t ts = 1; ts <= 3; ++ts) {
      for (std::size_t ta = 0; ta <= ts; ++ta) {
        const std::size_t n = (dim + 1) * ts + ta + 1;
        for (std::size_t k = 0; k <= ts; ++k) {
          const std::size_t m = n - ts + k;
          const std::size_t t = std::max(k, ta);
          if (t == 0) continue;
          EXPECT_GE(binomial(m, t), dim + 1)
              << "D=" << dim << " ts=" << ts << " ta=" << ta << " k=" << k;
        }
      }
    }
  }
}

// ------------------------------------------------ Lemma 5.5 (non-emptiness)

struct LemmaParams {
  std::size_t dim;
  std::size_t ts;
  std::size_t ta;
  std::uint64_t seed;
};

class Lemma55NonEmpty : public ::testing::TestWithParam<LemmaParams> {};

TEST_P(Lemma55NonEmpty, SafeAreaNonEmpty) {
  const auto p = GetParam();
  const std::size_t n = (p.dim + 1) * p.ts + p.ta + 1;
  Rng rng(p.seed);
  for (std::size_t k = 0; k <= p.ts; ++k) {
    const std::size_t m = n - p.ts + k;
    const auto pts = random_points(rng, m, p.dim);
    const std::size_t t = std::max(k, p.ta);
    const auto sa = SafeArea::compute(pts, t);
    EXPECT_FALSE(sa.empty()) << "D=" << p.dim << " ts=" << p.ts << " ta=" << p.ta
                             << " k=" << k << " m=" << m;
    if (!sa.empty()) {
      const auto mid = sa.midpoint_rule();
      ASSERT_TRUE(mid.has_value());
      // Lemma 5.6: the midpoint lies in the safe area (convexity).
      EXPECT_TRUE(sa.contains(*mid, 1e-5));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma55NonEmpty,
    ::testing::Values(LemmaParams{1, 1, 0, 1}, LemmaParams{1, 1, 1, 2},
                      LemmaParams{1, 2, 1, 3}, LemmaParams{1, 3, 2, 4},
                      LemmaParams{2, 1, 0, 5}, LemmaParams{2, 1, 1, 6},
                      LemmaParams{2, 2, 1, 7}, LemmaParams{2, 2, 2, 8},
                      LemmaParams{3, 1, 0, 9}, LemmaParams{3, 1, 1, 10}),
    [](const auto& info) {
      const auto& p = info.param;
      return "D" + std::to_string(p.dim) + "_ts" + std::to_string(p.ts) + "_ta" +
             std::to_string(p.ta);
    });

// ------------------------------------------- Lemma 5.7 (validity inclusion)

class Lemma57Inclusion : public ::testing::TestWithParam<LemmaParams> {};

TEST_P(Lemma57Inclusion, SafeAreaInsideEveryRestrictionHull) {
  const auto p = GetParam();
  const std::size_t n = (p.dim + 1) * p.ts + p.ta + 1;
  Rng rng(p.seed + 1000);
  for (std::size_t k = 0; k <= p.ts; ++k) {
    const std::size_t m = n - p.ts + k;
    const auto pts = random_points(rng, m, p.dim);
    const std::size_t t = std::max(k, p.ta);
    const auto sa = SafeArea::compute(pts, t);
    ASSERT_FALSE(sa.empty());
    // Every extreme point (and thus the whole safe area) lies inside the
    // hull of every (m - t)-subset — in particular inside the hull of the
    // honest values, whichever they are.
    const auto hulls = restriction_hulls(pts, t);
    for (const auto& x : sa.extreme_points()) {
      for (const auto& h : hulls) {
        EXPECT_TRUE(in_convex_hull(h, x, 1e-5));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma57Inclusion,
    ::testing::Values(LemmaParams{1, 2, 1, 21}, LemmaParams{2, 1, 1, 22},
                      LemmaParams{2, 2, 1, 23}, LemmaParams{3, 1, 1, 24}),
    [](const auto& info) {
      const auto& p = info.param;
      return "D" + std::to_string(p.dim) + "_ts" + std::to_string(p.ts) + "_ta" +
             std::to_string(p.ta);
    });

// ------------------------------------- Lemma 5.8 (safe areas intersect)

class Lemma58Intersect : public ::testing::TestWithParam<LemmaParams> {};

TEST_P(Lemma58Intersect, HonestSafeAreasPairwiseIntersect) {
  const auto p = GetParam();
  const std::size_t n = (p.dim + 1) * p.ts + p.ta + 1;
  Rng rng(p.seed + 2000);
  for (int trial = 0; trial < 8; ++trial) {
    // Two parties' output sets from ΠoBC: share >= n - ts values, union <= n.
    const auto all = random_points(rng, n, p.dim);
    const std::size_t shared = n - p.ts;
    const std::size_t extra1 = rng.next_below(p.ts + 1);
    const std::size_t extra2 = rng.next_below(p.ts + 1);
    std::vector<Vec> m1(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(shared));
    std::vector<Vec> m2 = m1;
    // Disjoint extras drawn from the remaining ts values.
    std::size_t next = shared;
    for (std::size_t i = 0; i < extra1 && next < n; ++i) m1.push_back(all[next++]);
    next = shared;
    for (std::size_t i = 0; i < extra2 && next < n; ++i) m2.push_back(all[next++]);

    const std::size_t k1 = m1.size() - (n - p.ts);
    const std::size_t k2 = m2.size() - (n - p.ts);
    const auto h1 = restriction_hulls(m1, std::max(k1, p.ta));
    const auto h2 = restriction_hulls(m2, std::max(k2, p.ta));

    std::vector<std::vector<Vec>> combined = h1;
    combined.insert(combined.end(), h2.begin(), h2.end());
    EXPECT_TRUE(intersection_point(combined).has_value())
        << "D=" << p.dim << " trial=" << trial << " k1=" << k1 << " k2=" << k2;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma58Intersect,
    ::testing::Values(LemmaParams{1, 1, 1, 31}, LemmaParams{1, 2, 1, 32},
                      LemmaParams{2, 1, 1, 33}, LemmaParams{2, 2, 1, 34},
                      LemmaParams{3, 1, 1, 35}),
    [](const auto& info) {
      const auto& p = info.param;
      return "D" + std::to_string(p.dim) + "_ts" + std::to_string(p.ts) + "_ta" +
             std::to_string(p.ta);
    });

// ------------------------------- Lemma 5.14 (midpoint contraction, [18])

TEST(Lemma514, MidpointContractionFactor) {
  // For random pairs satisfying the lemma's premise, the midpoints are
  // within sqrt(7/8) * gamma.
  Rng rng(77);
  const double factor = std::sqrt(7.0 / 8.0);
  int checked = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t dim = 1 + rng.next_below(4);
    const auto pts = random_points(rng, 4, dim, 5.0);
    const Vec& a = pts[0];
    const Vec& b = pts[1];
    const Vec& a2 = pts[2];
    const Vec& b2 = pts[3];
    const double gamma = diameter(pts);
    if (gamma > distance(a, b) + distance(a2, b2)) continue;  // premise fails
    ++checked;
    const double d = distance(midpoint(a, b), midpoint(a2, b2));
    EXPECT_LE(d, factor * gamma + 1e-9);
  }
  EXPECT_GT(checked, 100);  // the premise is satisfiable often enough
}

// ----------------------------- safe-area monotonicity (Lemmas 5.10, 6.12)

TEST(Lemma510, AddingAPointOnlyGrowsSafeArea) {
  Rng rng(88);
  for (int trial = 0; trial < 10; ++trial) {
    auto pts = random_points(rng, 6, 2);
    const std::size_t t = 1;
    const auto sa_before = SafeArea::compute(pts, t);
    if (sa_before.empty()) continue;
    pts.push_back(random_points(rng, 1, 2)[0]);
    const auto sa_after = SafeArea::compute(pts, t);
    ASSERT_FALSE(sa_after.empty());
    for (const auto& x : sa_before.extreme_points()) {
      EXPECT_TRUE(sa_after.contains(x, 1e-6))
          << "trial " << trial << " point " << to_string(x);
    }
  }
}

TEST(Lemma612, LargerTrimShrinksSafeArea) {
  Rng rng(89);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = random_points(rng, 8, 2);
    const auto sa2 = SafeArea::compute(pts, 2);
    const auto sa1 = SafeArea::compute(pts, 1);
    if (sa2.empty()) continue;
    ASSERT_FALSE(sa1.empty());
    for (const auto& x : sa2.extreme_points()) {
      EXPECT_TRUE(sa1.contains(x, 1e-6));
    }
  }
}

// --------------------------------------------------- max_distance_pair

TEST(MaxDistancePair, EmptyAndSingleton) {
  EXPECT_FALSE(max_distance_pair(std::vector<Vec>{}).has_value());
  const std::vector<Vec> one{{1.0, 2.0}};
  const auto p = max_distance_pair(one);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->first, p->second);
}

TEST(MaxDistancePair, TieBreaksLexicographically) {
  // Both diagonals of the unit square have exactly equal length; the rule
  // must pick the lexicographically smallest pair.
  const std::vector<Vec> pts{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {0.0, 0.0}};
  const auto p = max_distance_pair(pts);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->first, (Vec{0.0, 0.0}));
  EXPECT_EQ(p->second, (Vec{1.0, 1.0}));
}

}  // namespace
}  // namespace hydra::geo
