// Multi-instance serving engine (src/serve/): cross-instance isolation
// (instance 0 of a multiplexed run is byte-identical to the solo run; faults
// scoped to one instance leave every sibling untouched), epoch GC (slot
// reuse after retirement, late-message drop accounting), per-(spec, seed)
// determinism, strict monitors across instances, and the real-thread
// backend.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "serve/engine.hpp"
#include "serve/instance_mux.hpp"

using namespace hydra;

namespace {

serve::ServeSpec base_spec(std::uint32_t instances) {
  serve::ServeSpec spec;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 200;
  spec.network = harness::Network::kSyncWorstCase;
  spec.instances = instances;
  spec.seed = 11;
  return spec;
}

void expect_outcomes_equal(const serve::InstanceOutcome& a,
                           const serve::InstanceOutcome& b,
                           std::uint32_t instance) {
  EXPECT_EQ(a.decided, b.decided) << "instance " << instance;
  EXPECT_EQ(a.pass, b.pass) << "instance " << instance;
  EXPECT_EQ(a.decision_latency, b.decision_latency) << "instance " << instance;
  EXPECT_EQ(a.max_output_iteration, b.max_output_iteration)
      << "instance " << instance;
  EXPECT_EQ(a.output_diameter, b.output_diameter) << "instance " << instance;
  EXPECT_EQ(a.messages, b.messages) << "instance " << instance;
  EXPECT_EQ(a.bytes, b.bytes) << "instance " << instance;
}

}  // namespace

TEST(InstanceSeed, DerivedSeedsAreDistinctAndStable) {
  std::set<std::uint64_t> seen;
  for (std::uint32_t k = 0; k < 4096; ++k) {
    seen.insert(serve::instance_seed(11, k));
  }
  EXPECT_EQ(seen.size(), 4096u);  // no collisions in any realistic fleet
  // Pure function: recomputation and base-seed sensitivity.
  EXPECT_EQ(serve::instance_seed(11, 7), serve::instance_seed(11, 7));
  EXPECT_NE(serve::instance_seed(11, 7), serve::instance_seed(12, 7));
}

// The mux's egress contract: instance 0 stamps tag bits that decode to 0, so
// its entire projected run — decisions, iterations, outputs, wire totals —
// must match the single-instance run of the same spec exactly, no matter how
// many siblings share the backend.
TEST(Serve, Instance0MatchesSoloRun) {
  const auto solo = serve::run_serve(base_spec(1));
  ASSERT_EQ(solo.outcomes.size(), 1u);
  ASSERT_TRUE(solo.outcomes[0].pass);

  const auto multi = serve::run_serve(base_spec(8));
  ASSERT_EQ(multi.outcomes.size(), 8u);
  EXPECT_EQ(multi.decided, 8u);
  EXPECT_TRUE(multi.all_pass);
  expect_outcomes_equal(multi.outcomes[0], solo.outcomes[0], 0);
}

// Faults scoped to one instance must leave every sibling byte-identical to
// the clean run: same decisions, same iteration counts, same wire totals.
TEST(Serve, FaultsScopedToOneInstanceLeaveSiblingsUntouched) {
  const auto clean = serve::run_serve(base_spec(4));
  ASSERT_EQ(clean.decided, 4u);
  ASSERT_TRUE(clean.all_pass);

  auto faulty_spec = base_spec(4);
  faulty_spec.adversary = harness::Adversary::kSilent;
  faulty_spec.corruptions = 1;
  faulty_spec.corrupt_instances = {2};
  const auto faulty = serve::run_serve(faulty_spec);
  ASSERT_EQ(faulty.outcomes.size(), 4u);
  EXPECT_EQ(faulty.decided, 4u);
  EXPECT_TRUE(faulty.all_pass);  // ts = 1 tolerates the silent party

  for (const std::uint32_t k : {0u, 1u, 3u}) {
    expect_outcomes_equal(faulty.outcomes[k], clean.outcomes[k], k);
  }
  // The corrupted instance visibly diverges (one party never speaks).
  EXPECT_LT(faulty.outcomes[2].messages, clean.outcomes[2].messages);
}

TEST(Serve, CrashAdversaryScopedToOneInstance) {
  auto spec = base_spec(4);
  spec.adversary = harness::Adversary::kCrash;
  spec.corruptions = 1;
  spec.corrupt_instances = {1};
  const auto result = serve::run_serve(spec);
  EXPECT_EQ(result.decided, 4u);
  EXPECT_TRUE(result.all_pass);

  const auto clean = serve::run_serve(base_spec(4));
  for (const std::uint32_t k : {0u, 2u, 3u}) {
    expect_outcomes_equal(result.outcomes[k], clean.outcomes[k], k);
  }
}

// Epoch GC: with admissions spaced wider than one instance's full lifetime
// (decision + linger), every later instance must reuse the retired slot —
// resident state is bounded by CONCURRENCY, not by instances served.
TEST(Serve, RetiredSlotsAreReused) {
  auto spec = base_spec(4);
  spec.linger = 2 * spec.params.delta;
  // Solo decision time on sync-worst with these params is ~16 * delta; give
  // each instance 64 * delta of exclusive runway.
  spec.interarrival = 64 * spec.params.delta;
  const auto result = serve::run_serve(spec);
  EXPECT_EQ(result.decided, 4u);
  EXPECT_TRUE(result.all_pass);
  EXPECT_EQ(result.live_peak, 1u);
  EXPECT_LT(result.slots_allocated, 4u);
  EXPECT_EQ(result.late_dropped + result.unknown_dropped, 0u);
}

// linger=0 retires a slot the moment the directory shows every party
// decided — the echo tail still in flight (FixedDelay keeps one delta of
// traffic airborne) must be COUNTED and dropped, never crash or misroute.
TEST(Serve, ZeroLingerCountsLateDropsWithoutHarm) {
  auto spec = base_spec(4);
  spec.linger = 0;
  const auto result = serve::run_serve(spec);
  EXPECT_EQ(result.decided, 4u);
  EXPECT_TRUE(result.all_pass);
  EXPECT_GT(result.late_dropped, 0u);
  EXPECT_EQ(result.unknown_dropped, 0u);

  // The drops are attributed to real instances in the per-instance ledger.
  std::uint64_t attributed = 0;
  for (const auto& outcome : result.outcomes) attributed += outcome.late_dropped;
  EXPECT_EQ(attributed, result.late_dropped);
}

TEST(Serve, DeterministicAcrossIdenticalRuns) {
  auto spec = base_spec(64);
  spec.interarrival = 7;  // staggered admissions must be reproducible too
  const auto a = serve::run_serve(spec);
  const auto b = serve::run_serve(spec);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.end_time, b.end_time);
  for (std::uint32_t k = 0; k < a.outcomes.size(); ++k) {
    expect_outcomes_equal(a.outcomes[k], b.outcomes[k], k);
  }
}

// ISSUE acceptance: a strict-monitor multi-instance run reports zero
// violations — every instance gets its own MonitorHost wired through the
// per-instance obs::Context, and a clean protocol must satisfy all of them.
TEST(Serve, StrictMonitorsCleanAcrossInstances) {
  auto spec = base_spec(8);
  spec.monitors = obs::MonitorMode::kStrict;
  const auto result = serve::run_serve(spec);
  EXPECT_EQ(result.decided, 8u);
  EXPECT_TRUE(result.all_pass);
  EXPECT_EQ(result.monitor_violations, 0u) << (result.violations.empty()
                                                   ? ""
                                                   : result.violations[0].detail);
  for (const auto& outcome : result.outcomes) {
    EXPECT_EQ(outcome.monitor_violations, 0u);
  }
}

// The slab + routing layer is not a simulator artifact: real threads, real
// timers, concurrent delivery into the muxes.
TEST(Serve, ThreadsBackendDecidesEveryInstance) {
  auto spec = base_spec(16);
  spec.backend = "threads";
  spec.us_per_tick = 5.0;
  spec.timeout_ms = 60'000;
  const auto result = serve::run_serve(spec);
  EXPECT_EQ(result.decided, 16u);
  EXPECT_TRUE(result.all_pass);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.unknown_dropped, 0u);
}

TEST(Serve, LatencyPercentileNearestRank) {
  serve::ServeResult result;
  EXPECT_EQ(serve::latency_percentile(result, 50.0), 0);
  for (const Time t : {40, 10, 30, 20}) {
    serve::InstanceOutcome outcome;
    outcome.decided = true;
    outcome.decision_latency = t;
    result.outcomes.push_back(outcome);
  }
  EXPECT_EQ(serve::latency_percentile(result, 0.0), 10);
  EXPECT_EQ(serve::latency_percentile(result, 50.0), 20);
  EXPECT_EQ(serve::latency_percentile(result, 99.0), 40);
  EXPECT_EQ(serve::latency_percentile(result, 100.0), 40);
}
