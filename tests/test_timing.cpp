// Timing-property tests: the paper's round constants realized exactly under
// worst-case synchrony.
//
//   Theorem 4.2 : rBC honest liveness within 3 Delta; conditional liveness
//                 within 2 Delta of the first honest delivery;
//   Theorem 4.4 : oBC outputs at c_oBC * Delta = 5 Delta;
//   Theorem 5.18: Πinit outputs at c_init * Delta = 8 Delta;
//   Lemma 5.20  : until someone outputs, all honest parties complete
//                 iteration `it` at exactly (c_init + it * c_AA-it) * Delta,
//                 i.e. the protocol runs lock-step under synchrony.
#include <gtest/gtest.h>

#include <memory>

#include "protocol_test_util.hpp"

namespace hydra::test {
namespace {

Params make_params(std::size_t n, std::size_t ts, std::size_t ta) {
  Params p;
  p.n = n;
  p.ts = ts;
  p.ta = ta;
  p.dim = 2;
  p.eps = 1e-6;  // tiny eps so T > 1 whenever estimates diverge
  p.delta = 1000;
  return p;
}

TEST(Timing, RbcConditionalLivenessWithinTwoDelta) {
  // All honest, worst-case delays: the spread between the first and last
  // honest delivery of the same broadcast is at most c'_rBC * Delta = 2000.
  const auto params = make_params(4, 1, 0);
  sim::Simulation sim({.n = 4, .delta = params.delta, .seed = 1},
                      std::make_unique<sim::UniformDelay>(1, params.delta));
  std::vector<RbcTestParty*> parties;
  for (int i = 0; i < 4; ++i) {
    auto p = std::make_unique<RbcTestParty>(params);
    parties.push_back(p.get());
    sim.add_party(std::move(p));
  }
  parties[0]->broadcast_payload = Bytes{1, 2, 3};
  sim.run();

  Time first = kTimeInfinity;
  Time last = 0;
  for (auto* p : parties) {
    ASSERT_EQ(p->deliveries.size(), 1u);
    first = std::min(first, p->deliveries[0].at);
    last = std::max(last, p->deliveries[0].at);
  }
  EXPECT_LE(last - first, Params::kCRbcCond * params.delta);
}

TEST(Timing, LockstepIterationsUnderWorstCaseSynchrony) {
  // Lemma 5.20: with FixedDelay(Delta), every honest party adopts v_0 at
  // exactly c_init * Delta and v_it at (c_init + it * c_AA-it) * Delta.
  const auto params = make_params(5, 1, 1);
  std::vector<geo::Vec> inputs{{0.0, 0.0}, {7.0, 1.0}, {2.0, 9.0},
                               {-4.0, 3.0}, {5.0, -6.0}};
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 1};
  cfg.delay = [](const Params& p) { return std::make_unique<sim::FixedDelay>(p.delta); };
  auto run = run_aa(std::move(cfg));
  ASSERT_TRUE(run.all_output());

  for (auto* p : run.honest) {
    const auto& times = p->value_times();
    ASSERT_GE(times.size(), 2u);
    EXPECT_EQ(times[0], Params::kCInit * params.delta);
    for (std::size_t it = 1; it < times.size(); ++it) {
      // The last entry may be adopted late if the party had already
      // satisfied the halt condition a tick earlier; all entries adopted
      // BEFORE output are exactly on the grid.
      if (times[it] > p->output_time()) break;
      EXPECT_EQ(times[it],
                (Params::kCInit + static_cast<Time>(it) * Params::kCAaIt) *
                    params.delta)
          << "iteration " << it;
    }
  }
}

TEST(Timing, AllHonestOutputTimesWithinOneIterationSpread) {
  // Lemma 5.21: all honest outputs land within (roughly) one iteration of
  // the first, under synchrony.
  const auto params = make_params(5, 1, 1);
  std::vector<geo::Vec> inputs{{0.0, 0.0}, {7.0, 1.0}, {2.0, 9.0},
                               {-4.0, 3.0}, {5.0, -6.0}};
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 2};
  cfg.delay = [](const Params& p) { return std::make_unique<sim::FixedDelay>(p.delta); };
  auto run = run_aa(std::move(cfg));
  ASSERT_TRUE(run.all_output());
  Time first = kTimeInfinity;
  Time last = 0;
  for (auto* p : run.honest) {
    first = std::min(first, p->output_time());
    last = std::max(last, p->output_time());
  }
  EXPECT_LE(last - first, Params::kCAaIt * params.delta);
}

TEST(Timing, SynchronousEndToEndBound) {
  // Theorem-level bound: output by (c_init + (T_min + 1) c_AA-it + c'_rBC)Δ.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto params = make_params(8, 2, 1);  // (D+1)*2 + 1 = 7 < 8
    std::vector<geo::Vec> inputs;
    Rng rng(seed);
    for (int i = 0; i < 8; ++i) {
      inputs.push_back(geo::Vec{rng.next_double(-9, 9), rng.next_double(-9, 9)});
    }
    AaRunConfig cfg{.params = params, .inputs = inputs, .seed = seed};
    cfg.delay = [](const Params& p) {
      return std::make_unique<sim::UniformDelay>(1, p.delta);
    };
    auto run = run_aa(std::move(cfg));
    ASSERT_TRUE(run.all_output());
    std::uint64_t t_min = UINT64_MAX;
    for (auto* p : run.honest) t_min = std::min(t_min, p->estimate());
    const Time bound = (Params::kCInit +
                        static_cast<Time>(t_min + 1) * Params::kCAaIt +
                        Params::kCRbcCond) *
                       params.delta;
    for (auto* p : run.honest) {
      EXPECT_LE(p->output_time(), bound) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace hydra::test
