// Tests for the experiment harness: oracle edge cases, workload generators,
// table rendering, and determinism/consistency of the run driver.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "harness/oracles.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "harness/workloads.hpp"

namespace hydra::harness {
namespace {

// --------------------------------------------------------------- oracles

TEST(Oracles, AllGoodVerdict) {
  const std::vector<geo::Vec> inputs{{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}};
  const std::vector<geo::Vec> outputs{{0.5, 0.5}, {0.5001, 0.5}};
  const auto v = check_d_aa(outputs, 2, inputs, 1e-2);
  EXPECT_TRUE(v.live);
  EXPECT_TRUE(v.valid);
  EXPECT_TRUE(v.agreed);
  EXPECT_TRUE(v.d_aa());
  EXPECT_NEAR(v.output_diameter, 1e-4, 1e-9);
}

TEST(Oracles, LivenessFailure) {
  const std::vector<geo::Vec> inputs{{0.0, 0.0}, {2.0, 0.0}};
  const std::vector<geo::Vec> outputs{{0.5, 0.0}};
  const auto v = check_d_aa(outputs, 2, inputs, 1e-2);
  EXPECT_FALSE(v.live);
  EXPECT_FALSE(v.d_aa());
}

TEST(Oracles, ValidityFailure) {
  const std::vector<geo::Vec> inputs{{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}};
  const std::vector<geo::Vec> outputs{{5.0, 5.0}, {5.0, 5.0}};
  const auto v = check_d_aa(outputs, 2, inputs, 1e-2);
  EXPECT_TRUE(v.live);
  EXPECT_FALSE(v.valid);
  EXPECT_TRUE(v.agreed);
}

TEST(Oracles, AgreementFailure) {
  const std::vector<geo::Vec> inputs{{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}};
  const std::vector<geo::Vec> outputs{{0.1, 0.1}, {1.0, 0.5}};
  const auto v = check_d_aa(outputs, 2, inputs, 1e-2);
  EXPECT_TRUE(v.live);
  EXPECT_TRUE(v.valid);
  EXPECT_FALSE(v.agreed);
}

TEST(Oracles, EmptyOutputsNotLive) {
  const std::vector<geo::Vec> inputs{{0.0, 0.0}};
  const auto v = check_d_aa({}, 0, inputs, 1e-2);
  EXPECT_FALSE(v.live);
}

// -------------------------------------------------------------- workloads

TEST(Workloads, DeterministicInSeed) {
  for (const auto w : {Workload::kUniformBall, Workload::kSimplexCorners,
                       Workload::kClustered, Workload::kCollinear,
                       Workload::kGaussian}) {
    const auto a = make_inputs(w, 7, 3, 5.0, 42);
    const auto b = make_inputs(w, 7, 3, 5.0, 42);
    EXPECT_EQ(a, b) << to_string(w);
    if (w != Workload::kSimplexCorners) {
      const auto c = make_inputs(w, 7, 3, 5.0, 43);
      EXPECT_NE(a, c) << to_string(w);
    }
  }
}

TEST(Workloads, ShapesAreRight) {
  // Ball: all within radius.
  for (const auto& v : make_inputs(Workload::kUniformBall, 20, 2, 3.0, 1)) {
    EXPECT_LE(geo::norm(v), 3.0 + 1e-9);
  }
  // Simplex corners: exactly the scaled unit vectors, cycling.
  const auto simplex = make_inputs(Workload::kSimplexCorners, 4, 2, 2.0, 1);
  EXPECT_EQ(simplex[0], geo::Vec(2, 0.0));
  EXPECT_EQ(simplex[1], (geo::Vec{2.0, 0.0}));
  EXPECT_EQ(simplex[2], (geo::Vec{0.0, 2.0}));
  EXPECT_EQ(simplex[3], geo::Vec(2, 0.0));  // wraps to corner 0
  // Collinear: rank-1 span.
  const auto line = make_inputs(Workload::kCollinear, 10, 3, 4.0, 1);
  for (const auto& v : line) {
    EXPECT_NEAR(v[0], v[1], 1e-12);
    EXPECT_NEAR(v[1], v[2], 1e-12);
  }
  // Clustered: diameter about the cluster separation.
  const auto clusters = make_inputs(Workload::kClustered, 10, 2, 8.0, 1);
  EXPECT_GT(geo::diameter(clusters), 7.0);
  EXPECT_LT(geo::diameter(clusters), 10.0);
}

TEST(Workloads, DimensionAndCount) {
  for (std::size_t dim = 1; dim <= 5; ++dim) {
    const auto inputs = make_inputs(Workload::kGaussian, 9, dim, 1.0, 5);
    EXPECT_EQ(inputs.size(), 9u);
    for (const auto& v : inputs) EXPECT_EQ(v.dim(), dim);
  }
}

// ------------------------------------------------------------------ stats

TEST(Stats, Moments) {
  Stats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(Stats, Percentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(*s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(*s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(*s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(*s.percentile(100), 100.0);
}

TEST(Stats, SingleSample) {
  Stats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(*s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, EmptyPercentileIsNullopt) {
  const Stats s;
  EXPECT_FALSE(s.percentile(50).has_value());
  EXPECT_EQ(s.summary().count, 0u);
}

TEST(Stats, Summary) {
  Stats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  const auto sum = s.summary();
  EXPECT_EQ(sum.count, 5u);
  EXPECT_DOUBLE_EQ(sum.mean, 3.0);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.max, 5.0);
  EXPECT_DOUBLE_EQ(sum.p50, 3.0);
}

// ------------------------------------------------------------------ parsers

TEST(Parsers, RoundTripAllEnums) {
  for (const auto network :
       {Network::kSyncWorstCase, Network::kSyncJitter, Network::kSyncTargeted,
        Network::kSyncRushing, Network::kAsyncReorder, Network::kAsyncPartition,
        Network::kAsyncExponential}) {
    EXPECT_EQ(parse_network(to_string(network)), network);
  }
  for (const auto adversary :
       {Adversary::kNone, Adversary::kSilent, Adversary::kCrash,
        Adversary::kEquivocator, Adversary::kOutlier, Adversary::kHaltRusher,
        Adversary::kSpammer, Adversary::kStraggler, Adversary::kTurncoat,
        Adversary::kMixed}) {
    EXPECT_EQ(parse_adversary(to_string(adversary)), adversary);
  }
  for (const auto workload :
       {Workload::kUniformBall, Workload::kSimplexCorners, Workload::kClustered,
        Workload::kCollinear, Workload::kGaussian}) {
    EXPECT_EQ(parse_workload(to_string(workload)), workload);
  }
  EXPECT_FALSE(parse_network("bogus").has_value());
  EXPECT_FALSE(parse_adversary("bogus").has_value());
  EXPECT_FALSE(parse_workload("bogus").has_value());
}

// ------------------------------------------------------------------ table

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer-name", "22"});
  const auto s = t.render();
  EXPECT_NE(s.find("name         value"), std::string::npos);
  EXPECT_NE(s.find("-----------  -----"), std::string::npos);
  EXPECT_NE(s.find("x            1"), std::string::npos);
  EXPECT_NE(s.find("longer-name  22"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(3.14159), "3.142");
  EXPECT_EQ(fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(fmt_ok(true), "yes");
  EXPECT_EQ(fmt_ok(false), "NO");
}

// ------------------------------------------------------------------ runner

TEST(Runner, DeterministicAcrossCalls) {
  RunSpec spec;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.network = Network::kAsyncReorder;
  spec.adversary = Adversary::kSilent;
  spec.corruptions = 1;
  spec.seed = 77;

  const auto a = execute(spec);
  const auto b = execute(spec);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.verdict.output_diameter, b.verdict.output_diameter);
  EXPECT_EQ(a.iteration_diameters, b.iteration_diameters);
}

TEST(Runner, EveryNetworkAndAdversaryExecutes) {
  // Smoke test: every (network, adversary) combination at the threshold
  // completes with a D-AA verdict.
  for (const auto network :
       {Network::kSyncWorstCase, Network::kSyncJitter, Network::kSyncTargeted,
        Network::kSyncRushing, Network::kAsyncReorder, Network::kAsyncPartition,
        Network::kAsyncExponential}) {
    for (const auto adversary :
         {Adversary::kSilent, Adversary::kCrash, Adversary::kEquivocator,
          Adversary::kHaltRusher, Adversary::kSpammer, Adversary::kStraggler,
          Adversary::kTurncoat}) {
      RunSpec spec;
      spec.params.n = 5;
      spec.params.ts = 1;
      spec.params.ta = 1;
      spec.params.dim = 2;
      spec.params.eps = 5e-2;
      spec.params.delta = 1000;
      spec.network = network;
      spec.adversary = adversary;
      spec.corruptions = 1;
      spec.seed = 3;
      const auto result = execute(spec);
      EXPECT_TRUE(result.verdict.d_aa())
          << to_string(network) << " + " << to_string(adversary);
    }
  }
}

TEST(Runner, LockstepBaselineRunsThroughRunner) {
  RunSpec spec;
  spec.protocol = Protocol::kSyncLockstep;
  spec.params.n = 4;
  spec.params.ts = 1;
  spec.params.ta = 0;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.network = Network::kSyncJitter;
  spec.adversary = Adversary::kSilent;
  spec.corruptions = 1;
  spec.seed = 5;
  const auto result = execute(spec);
  EXPECT_TRUE(result.verdict.d_aa());
}

}  // namespace
}  // namespace hydra::harness
