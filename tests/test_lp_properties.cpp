// Property-based tests for the LP layer: membership soundness and
// completeness on randomized instances, support-point optimality,
// scale-invariance (the equilibration + normalization pipeline), and
// regressions for the ill-conditioned Byzantine-outlier systems that
// historically broke the solver.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/combinatorics.hpp"
#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "geometry/lp.hpp"
#include "geometry/safe_area.hpp"
#include "geometry/vec.hpp"

namespace hydra::geo {
namespace {

std::vector<Vec> random_points(Rng& rng, std::size_t count, std::size_t dim,
                               double radius) {
  std::vector<Vec> pts;
  for (std::size_t i = 0; i < count; ++i) {
    Vec v(dim, 0.0);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_double(-radius, radius);
    pts.push_back(std::move(v));
  }
  return pts;
}

/// A random convex combination of `pts`.
Vec random_inside(Rng& rng, const std::vector<Vec>& pts) {
  std::vector<double> w(pts.size());
  double sum = 0.0;
  for (auto& x : w) {
    x = rng.next_double() + 1e-3;
    sum += x;
  }
  Vec q(pts[0].dim(), 0.0);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t d = 0; d < q.dim(); ++d) q[d] += (w[i] / sum) * pts[i][d];
  }
  return q;
}

struct DimCase {
  std::size_t dim;
  std::size_t count;
};

class LpMembership : public ::testing::TestWithParam<DimCase> {};

TEST_P(LpMembership, ConvexCombinationsAreInside) {
  const auto [dim, count] = GetParam();
  Rng rng(100 + dim);
  for (int trial = 0; trial < 40; ++trial) {
    const auto pts = random_points(rng, count, dim, 10.0);
    const Vec q = random_inside(rng, pts);
    EXPECT_TRUE(in_convex_hull(pts, q, 1e-6)) << "trial " << trial;
  }
}

TEST_P(LpMembership, PointsBeyondSupportAreOutside) {
  const auto [dim, count] = GetParam();
  Rng rng(200 + dim);
  for (int trial = 0; trial < 40; ++trial) {
    const auto pts = random_points(rng, count, dim, 10.0);
    // Walk from the centroid through the farthest point and beyond: the
    // result is strictly outside the hull.
    Vec centroid(dim, 0.0);
    for (const auto& p : pts) centroid += p;
    centroid *= 1.0 / static_cast<double>(pts.size());
    double best = -1.0;
    Vec far = pts[0];
    for (const auto& p : pts) {
      if (distance(p, centroid) > best) {
        best = distance(p, centroid);
        far = p;
      }
    }
    Vec q = far;
    q += (far - centroid) * 0.5;  // 50% past the farthest vertex
    EXPECT_FALSE(in_convex_hull(pts, q, 1e-6)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LpMembership,
                         ::testing::Values(DimCase{1, 4}, DimCase{2, 6},
                                           DimCase{3, 7}, DimCase{4, 9},
                                           DimCase{5, 12}),
                         [](const auto& info) {
                           return "D" + std::to_string(info.param.dim);
                         });

TEST(LpProperties, IntersectionWitnessIsInEveryHull) {
  Rng rng(33);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t dim = 2 + rng.next_below(2);
    // Hulls sharing a common core guarantee a non-empty intersection.
    const auto core = random_points(rng, dim + 1, dim, 2.0);
    std::vector<std::vector<Vec>> hulls;
    for (int h = 0; h < 4; ++h) {
      auto hull = core;
      const auto extra = random_points(rng, 3, dim, 10.0);
      hull.insert(hull.end(), extra.begin(), extra.end());
      hulls.push_back(std::move(hull));
    }
    const auto w = intersection_point(hulls);
    ASSERT_TRUE(w.has_value()) << "trial " << trial;
    for (const auto& hull : hulls) {
      EXPECT_TRUE(in_convex_hull(hull, *w, 1e-6)) << "trial " << trial;
    }
  }
}

TEST(LpProperties, SupportPointIsFeasibleAndExtreme) {
  Rng rng(44);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t dim = 2 + rng.next_below(2);
    const auto core = random_points(rng, dim + 2, dim, 3.0);
    std::vector<std::vector<Vec>> hulls;
    for (int h = 0; h < 3; ++h) {
      auto hull = core;
      const auto extra = random_points(rng, 2, dim, 8.0);
      hull.insert(hull.end(), extra.begin(), extra.end());
      hulls.push_back(std::move(hull));
    }
    Vec u(dim, 0.0);
    for (std::size_t d = 0; d < dim; ++d) u[d] = rng.next_gaussian();

    const auto s = support_point(hulls, u);
    ASSERT_TRUE(s.has_value());
    for (const auto& hull : hulls) {
      EXPECT_TRUE(in_convex_hull(hull, *s, 1e-6)) << "trial " << trial;
    }
    // Extremeness: beats any core point (which is feasible) in direction u.
    for (const auto& p : core) {
      EXPECT_GE(dot(u, *s), dot(u, p) - 1e-6) << "trial " << trial;
    }
  }
}

TEST(LpProperties, MembershipIsScaleAndTranslationInvariant) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t dim = 1 + rng.next_below(3);
    const auto pts = random_points(rng, dim + 3, dim, 5.0);
    const Vec inside = random_inside(rng, pts);
    Vec outside = pts[0];
    outside += pts[0] * 3.0;  // 4x beyond a vertex from the origin side

    for (const double scale : {1e-6, 1.0, 1e6}) {
      Vec shift(dim, scale * 7.0);
      auto transform = [&](const Vec& v) {
        Vec out = v * scale;
        out += shift;
        return out;
      };
      std::vector<Vec> tp;
      for (const auto& p : pts) tp.push_back(transform(p));
      EXPECT_TRUE(in_convex_hull(tp, transform(inside), 1e-6 * scale))
          << "trial " << trial << " scale " << scale;
    }
  }
}

TEST(LpProperties, ByzantineOutlierRegression) {
  // The exact configuration that once produced a bogus intersection witness
  // (the outlier itself) and infeasible support points: 4 honest points of
  // spread ~15 plus an outlier at 1e5, five 1-removed restriction hulls.
  const std::vector<Vec> values{{-100000, -100000, 100000},
                                {-6.03446, -0.539038, -0.941906},
                                {8.95109, 3.62304, 1.48502},
                                {-8.16461, 5.76427, -0.818015},
                                {6.89615, 7.35895, -4.26516}};
  std::vector<std::vector<Vec>> hulls;
  for_each_combination(5, 1, [&](const std::vector<std::size_t>& removed) {
    const auto kept = complement_indices(5, removed);
    std::vector<Vec> h;
    for (auto i : kept) h.push_back(values[i]);
    hulls.push_back(std::move(h));
  });

  const auto w = intersection_point(hulls);
  ASSERT_TRUE(w.has_value());
  for (std::size_t j = 0; j < hulls.size(); ++j) {
    EXPECT_TRUE(in_convex_hull(hulls[j], *w, 1e-3)) << "hull " << j;
  }

  // All sampled support points of the safe area stay inside the honest hull.
  const std::vector<Vec> honest(values.begin() + 1, values.end());
  const auto sa = SafeArea::compute(values, 1);
  ASSERT_FALSE(sa.empty());
  for (const auto& e : sa.extreme_points()) {
    EXPECT_TRUE(in_convex_hull(honest, e, 1e-3)) << to_string(e);
  }
  const auto mid = sa.midpoint_rule();
  ASSERT_TRUE(mid.has_value());
  EXPECT_TRUE(in_convex_hull(honest, *mid, 1e-3));
}

TEST(LpProperties, MixedMagnitudeMembership) {
  // Membership queries against hulls mixing 1e-4 and 1e6 coordinates.
  std::vector<Vec> pts{{1e6, 0.0}, {0.0, 1e6}, {1e-4, 1e-4}, {2e-4, 0.0}};
  EXPECT_TRUE(in_convex_hull(pts, Vec{1.0, 1.0}, 1e-3));
  EXPECT_TRUE(in_convex_hull(pts, Vec{5e5, 5e5}, 1.0));
  EXPECT_FALSE(in_convex_hull(pts, Vec{-1.0, -1.0}, 1e-3));
  EXPECT_FALSE(in_convex_hull(pts, Vec{1e6, 1e6}, 1.0));
}

TEST(LpProperties, DegenerateHullsHandled) {
  // All points identical.
  const std::vector<Vec> same(5, Vec{1.0, 2.0, 3.0});
  EXPECT_TRUE(in_convex_hull(same, Vec{1.0, 2.0, 3.0}, 1e-9));
  EXPECT_FALSE(in_convex_hull(same, Vec{1.0, 2.0, 3.01}, 1e-6));

  // Collinear points in 3-D: hull is a segment.
  std::vector<Vec> line;
  for (int i = 0; i <= 4; ++i) {
    line.push_back(Vec{1.0 * i, 2.0 * i, -1.0 * i});
  }
  EXPECT_TRUE(in_convex_hull(line, Vec{2.5, 5.0, -2.5}, 1e-6));
  EXPECT_FALSE(in_convex_hull(line, Vec{2.5, 5.0, -2.0}, 1e-6));
  EXPECT_FALSE(in_convex_hull(line, Vec{5.0, 10.0, -5.0}, 1e-6));  // past the end
}

}  // namespace
}  // namespace hydra::geo
