// Tests for Overlap All-to-All Broadcast (ΠoBC, Section 4.2 / Theorem 4.4):
// validity, consistency, synchronized overlap, the (ts, ta)-overlap bound,
// timing under synchrony, and eventual liveness under asynchrony.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "protocol_test_util.hpp"

namespace hydra::test {
namespace {

Params make_params(std::size_t n, std::size_t ts, std::size_t ta, std::size_t dim = 2) {
  Params p;
  p.n = n;
  p.ts = ts;
  p.ta = ta;
  p.dim = dim;
  p.delta = 1000;
  return p;
}

struct ObcFixture {
  ObcFixture(const Params& params, std::uint64_t seed,
             std::unique_ptr<sim::DelayModel> model)
      : sim(sim::SimConfig{.n = params.n, .delta = params.delta, .seed = seed},
            std::move(model)) {}

  ObcTestParty* add_honest(const Params& params, geo::Vec input) {
    auto party = std::make_unique<ObcTestParty>(params, std::move(input));
    auto* raw = party.get();
    parties.push_back(raw);
    sim.add_party(std::move(party));
    return raw;
  }

  sim::Simulation sim;
  std::vector<ObcTestParty*> parties;
};

std::vector<geo::Vec> grid_inputs(std::size_t n) {
  std::vector<geo::Vec> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(geo::Vec{static_cast<double>(i), static_cast<double>(i % 3)});
  }
  return inputs;
}

TEST(Obc, SynchronousAllHonestFullOverlap) {
  const auto params = make_params(4, 1, 0);
  ObcFixture f(params, 1, std::make_unique<sim::FixedDelay>(params.delta));
  const auto inputs = grid_inputs(4);
  for (std::size_t i = 0; i < 4; ++i) f.add_honest(params, inputs[i]);
  const auto stats = f.sim.run();
  EXPECT_FALSE(stats.hit_limit);

  for (auto* p : f.parties) {
    ASSERT_TRUE(p->obc().has_output());
    // Synchronized Liveness: output by c_oBC * Delta = 5 Delta.
    EXPECT_LE(p->output_time, Params::kCObc * params.delta);
    // Synchronized Overlap: every honest pair present with the right value.
    const auto& m = p->obc().output();
    ASSERT_EQ(m.size(), 4u);
    for (const auto& [party, value] : m) {
      EXPECT_EQ(value, inputs[party]);  // Validity
    }
  }
}

TEST(Obc, SilentByzantineStillOutputs) {
  // ts = 1 silent party: the remaining n - 1 honest values meet the quorum.
  const auto params = make_params(4, 1, 0);
  ObcFixture f(params, 1, std::make_unique<sim::FixedDelay>(params.delta));
  const auto inputs = grid_inputs(4);
  f.sim.add_party(std::make_unique<adversary::SilentParty>());
  for (std::size_t i = 1; i < 4; ++i) f.add_honest(params, inputs[i]);
  f.sim.run();
  for (auto* p : f.parties) {
    ASSERT_TRUE(p->obc().has_output());
    const auto& m = p->obc().output();
    EXPECT_EQ(m.size(), 3u);  // pairs only for responsive parties
    for (const auto& [party, value] : m) {
      EXPECT_NE(party, 0u);
      EXPECT_EQ(value, inputs[party]);
    }
  }
}

TEST(Obc, ConsistencyUnderEquivocation) {
  // Party 0 equivocates its OBC value; if two honest outputs contain a pair
  // for party 0, the values must match (inherited from ΠrBC consistency).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto params = make_params(4, 1, 0);
    ObcFixture f(params, seed, std::make_unique<sim::UniformDelay>(1, params.delta));
    f.sim.add_party(std::make_unique<adversary::EquivocatorParty>(
        params, geo::Vec{100.0, 100.0}, 7.0, 1));
    const auto inputs = grid_inputs(4);
    for (std::size_t i = 1; i < 4; ++i) f.add_honest(params, inputs[i]);
    f.sim.run();

    std::map<PartyId, geo::Vec> seen;
    for (auto* p : f.parties) {
      ASSERT_TRUE(p->obc().has_output());
      for (const auto& [party, value] : p->obc().output()) {
        const auto [it, inserted] = seen.emplace(party, value);
        EXPECT_EQ(it->second, value) << "seed " << seed << " party " << party;
      }
    }
  }
}

TEST(Obc, OverlapBoundUnderAsynchrony) {
  // (ts, ta)-Overlap: any two honest outputs share >= n - ts pairs, even
  // under heavy asynchronous reordering with ta corruptions.
  const auto params = make_params(9, 2, 1, 2);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ObcFixture f(params, seed,
                 std::make_unique<adversary::ReorderScheduler>(params.delta, 0.3,
                                                               20 * params.delta));
    const auto inputs = grid_inputs(9);
    f.sim.add_party(std::make_unique<adversary::SilentParty>());  // ta = 1 corrupt
    for (std::size_t i = 1; i < 9; ++i) f.add_honest(params, inputs[i]);
    const auto stats = f.sim.run();
    EXPECT_FALSE(stats.hit_limit);

    for (auto* p : f.parties) ASSERT_TRUE(p->obc().has_output()) << "seed " << seed;
    for (std::size_t i = 0; i < f.parties.size(); ++i) {
      for (std::size_t j = i + 1; j < f.parties.size(); ++j) {
        const auto& mi = f.parties[i]->obc().output();
        const auto& mj = f.parties[j]->obc().output();
        std::size_t common = 0;
        for (const auto& [party, value] : mi) {
          for (const auto& [party2, value2] : mj) {
            if (party == party2 && value == value2) ++common;
          }
        }
        EXPECT_GE(common, params.n - params.ts) << "seed " << seed;
      }
    }
  }
}

TEST(Obc, AsynchronousPartitionEventualLiveness) {
  const auto params = make_params(4, 1, 1);
  auto model = std::make_unique<adversary::PartitionScheduler>(
      std::make_unique<sim::FixedDelay>(params.delta), std::set<PartyId>{0, 1}, 0,
      40 * params.delta);
  ObcFixture f(params, 3, std::move(model));
  const auto inputs = grid_inputs(4);
  for (std::size_t i = 0; i < 4; ++i) f.add_honest(params, inputs[i]);
  const auto stats = f.sim.run();
  EXPECT_FALSE(stats.hit_limit);
  for (auto* p : f.parties) {
    ASSERT_TRUE(p->obc().has_output());
    EXPECT_GE(p->obc().output().size(), params.n - params.ts);
  }
}

TEST(Obc, MalformedReportsAndValuesIgnored) {
  // A spammer blasting malformed payloads must not block or corrupt outputs.
  const auto params = make_params(4, 1, 0);
  ObcFixture f(params, 4, std::make_unique<sim::FixedDelay>(params.delta));
  const auto inputs = grid_inputs(4);
  f.sim.add_party(std::make_unique<adversary::SpammerParty>(
      params, /*seed=*/9, /*period=*/params.delta / 4, /*stop_at=*/30 * params.delta));
  for (std::size_t i = 1; i < 4; ++i) f.add_honest(params, inputs[i]);
  const auto stats = f.sim.run();
  EXPECT_FALSE(stats.hit_limit);
  for (auto* p : f.parties) {
    ASSERT_TRUE(p->obc().has_output());
    for (const auto& [party, value] : p->obc().output()) {
      if (party != 0) {
        EXPECT_EQ(value, inputs[party]);
      }
    }
  }
}

TEST(Obc, OversizedFalseReportNeverMakesWitness) {
  // A Byzantine report claiming values nobody broadcast can never satisfy
  // the subset rule, so the reporter never becomes a witness.
  const auto params = make_params(4, 1, 0);

  class FalseReporter : public sim::IParty {
   public:
    explicit FalseReporter(const Params& params) : params_(params) {}
    void start(sim::Env& env) override {
      PairList fake;
      for (PartyId i = 0; i < params_.n; ++i) {
        fake.emplace_back(i, geo::Vec{123.0 + i, 456.0});
      }
      env.broadcast(sim::Message{InstanceKey{protocols::kObcReport, 0, 1},
                                 protocols::kDirect, protocols::encode_pairs(fake)});
    }
    void on_message(sim::Env&, PartyId, const sim::Message&) override {}
    void on_timer(sim::Env&, std::uint64_t) override {}

   private:
    Params params_;
  };

  ObcFixture f(params, 5, std::make_unique<sim::FixedDelay>(params.delta));
  f.sim.add_party(std::make_unique<FalseReporter>(params));
  const auto inputs = grid_inputs(4);
  for (std::size_t i = 1; i < 4; ++i) f.add_honest(params, inputs[i]);
  f.sim.run();
  for (auto* p : f.parties) {
    ASSERT_TRUE(p->obc().has_output());
    // Witnesses are the three honest reporters only.
    EXPECT_EQ(p->obc().witnesses(), 3u);
  }
}

}  // namespace
}  // namespace hydra::test
