// Tests for the two baselines:
//  * SyncLockstepParty (Vaidya-Garg style): correct under synchrony at
//    (D+1) t < n, demonstrably broken under asynchrony;
//  * AsyncMhParty (Mendes-Herlihy style, hybrid at ts = ta = t): correct in
//    both network modes at the lower resilience (D+2) t < n.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/async_mh.hpp"
#include "baselines/coordinatewise.hpp"
#include "baselines/sync_lockstep.hpp"
#include "geometry/convex.hpp"
#include "protocol_test_util.hpp"

namespace hydra::test {
namespace {

using baselines::AsyncMhConfig;
using baselines::AsyncMhParty;
using baselines::SyncLockstepConfig;
using baselines::SyncLockstepParty;

std::vector<geo::Vec> ring_inputs(std::size_t n, double radius = 10.0) {
  std::vector<geo::Vec> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 2.0 * 3.14159265358979 * static_cast<double>(i) /
                     static_cast<double>(n);
    inputs.push_back(geo::Vec{radius * std::cos(a), radius * std::sin(a)});
  }
  return inputs;
}

std::uint64_t rounds_for(double eps, double diam) {
  return protocols::sufficient_iterations(eps, diam);
}

struct LockstepRun {
  std::unique_ptr<sim::Simulation> sim;
  std::vector<SyncLockstepParty*> honest;
};

LockstepRun run_lockstep(const SyncLockstepConfig& config,
                         const std::vector<geo::Vec>& inputs,
                         std::unique_ptr<sim::DelayModel> model,
                         const std::set<PartyId>& silent, std::uint64_t seed) {
  LockstepRun run;
  run.sim = std::make_unique<sim::Simulation>(
      sim::SimConfig{.n = config.n, .delta = config.delta, .seed = seed},
      std::move(model));
  for (PartyId id = 0; id < config.n; ++id) {
    if (silent.contains(id)) {
      run.sim->add_party(std::make_unique<adversary::SilentParty>());
    } else {
      auto party = std::make_unique<SyncLockstepParty>(config, inputs[id]);
      run.honest.push_back(party.get());
      run.sim->add_party(std::move(party));
    }
  }
  run.sim->run();
  return run;
}

TEST(SyncLockstep, ConvergesUnderSynchrony) {
  const std::size_t n = 4;
  const auto inputs = ring_inputs(n);
  SyncLockstepConfig config{.n = n, .t = 1, .dim = 2, .delta = 1000,
                            .rounds = rounds_for(1e-3, geo::diameter(inputs))};
  auto run = run_lockstep(config, inputs,
                          std::make_unique<sim::UniformDelay>(1, config.delta), {}, 1);
  std::vector<geo::Vec> outputs;
  for (auto* p : run.honest) {
    ASSERT_TRUE(p->has_output());
    EXPECT_EQ(p->starved_rounds(), 0u);
    outputs.push_back(p->output());
    EXPECT_TRUE(geo::in_convex_hull(inputs, p->output(), 1e-6));
  }
  EXPECT_LE(geo::diameter(outputs), 1e-3);
}

TEST(SyncLockstep, ToleratesSilentCorruptionUnderSynchrony) {
  const std::size_t n = 4;
  const auto inputs = ring_inputs(n);
  SyncLockstepConfig config{.n = n, .t = 1, .dim = 2, .delta = 1000,
                            .rounds = rounds_for(1e-3, geo::diameter(inputs))};
  auto run = run_lockstep(config, inputs,
                          std::make_unique<sim::UniformDelay>(1, config.delta), {0}, 2);
  std::vector<geo::Vec> outputs;
  std::vector<geo::Vec> honest_inputs(inputs.begin() + 1, inputs.end());
  for (auto* p : run.honest) {
    ASSERT_TRUE(p->has_output());
    outputs.push_back(p->output());
    EXPECT_TRUE(geo::in_convex_hull(honest_inputs, p->output(), 1e-6));
  }
  EXPECT_LE(geo::diameter(outputs), 1e-3);
}

TEST(SyncLockstep, HigherResilienceThanAsyncBound) {
  // (D+1) t < n but (D+2) t >= n: the sync baseline handles what the async
  // protocol provably cannot (Theorem 3.2). n = 7, t = 2, D = 2.
  const std::size_t n = 7;
  const auto inputs = ring_inputs(n);
  SyncLockstepConfig config{.n = n, .t = 2, .dim = 2, .delta = 1000,
                            .rounds = rounds_for(1e-3, geo::diameter(inputs))};
  ASSERT_TRUE(config.feasible());
  EXPECT_GE((2 + 2) * 2, n);  // async bound violated at this (n, t)
  auto run = run_lockstep(config, inputs,
                          std::make_unique<sim::UniformDelay>(1, config.delta), {1, 4},
                          3);
  std::vector<geo::Vec> outputs;
  for (auto* p : run.honest) {
    ASSERT_TRUE(p->has_output());
    outputs.push_back(p->output());
  }
  EXPECT_LE(geo::diameter(outputs), 1e-3);
}

TEST(SyncLockstep, BreaksUnderAsynchrony) {
  // Under asynchrony the lock-step baseline loses its guarantees: when a
  // round closes with exactly n - t values because an HONEST value was late
  // while a Byzantine outlier arrived on time, the trim count k = |M|-(n-t)
  // is 0 and the outlier passes untrimmed — validity breaks (and agreement
  // along with it). The Byzantine party here runs the honest code with an
  // extreme input, the weakest possible attacker; the delay adversary does
  // the rest.
  const std::size_t n = 4;
  auto inputs = ring_inputs(n, 10.0);
  inputs[0] = geo::Vec{1e7, 1e7};  // "corrupted" outlier participant
  SyncLockstepConfig config{.n = n, .t = 1, .dim = 2, .delta = 1000,
                            .rounds = rounds_for(1e-3, 30.0)};
  const std::vector<geo::Vec> honest_inputs(inputs.begin() + 1, inputs.end());

  bool validity_broken = false;
  for (std::uint64_t seed = 1; seed <= 10 && !validity_broken; ++seed) {
    LockstepRun run;
    run.sim = std::make_unique<sim::Simulation>(
        sim::SimConfig{.n = config.n, .delta = config.delta, .seed = seed},
        std::make_unique<sim::ExponentialDelay>(1.2 * config.delta,
                                                20 * config.delta));
    for (PartyId id = 0; id < config.n; ++id) {
      auto party = std::make_unique<SyncLockstepParty>(config, inputs[id]);
      if (id > 0) run.honest.push_back(party.get());
      run.sim->add_party(std::move(party));
    }
    run.sim->run();
    for (auto* p : run.honest) {
      ASSERT_TRUE(p->has_output());  // it terminates (round counting) ...
      // ... but the output can leave the honest inputs' convex hull.
      if (!geo::in_convex_hull(honest_inputs, p->output(), 1e-3)) {
        validity_broken = true;
      }
    }
  }
  EXPECT_TRUE(validity_broken);

  // Control: the identical configuration under synchrony is safe.
  auto sync_run = run_lockstep(config, inputs,
                               std::make_unique<sim::UniformDelay>(1, config.delta),
                               {}, 99);
  for (auto* p : sync_run.honest) {
    ASSERT_TRUE(p->has_output());
    EXPECT_TRUE(geo::in_convex_hull(inputs, p->output(), 1e-6));
  }
}

TEST(Coordinatewise, FeasibilityErrorIsActionable) {
  // The decomposition's 1-D sessions need n > 2 ts + ta and n > 3 ts. An
  // infeasible configuration must be reportable BEFORE constructing a party
  // (the constructor aborts, which is useless as a user error).
  protocols::Params p;
  p.n = 3;
  p.ts = 1;
  p.ta = 1;
  p.dim = 2;
  const auto err = baselines::CoordinatewiseParty::feasibility_error(p);
  ASSERT_TRUE(err.has_value());
  // Actionable: names the requirement, the offending values, and a fix.
  EXPECT_NE(err->find("n > 2 ts + ta"), std::string::npos) << *err;
  EXPECT_NE(err->find("n=3"), std::string::npos) << *err;
  EXPECT_NE(err->find("ts=1"), std::string::npos) << *err;
  EXPECT_NE(err->find("ta=1"), std::string::npos) << *err;
  EXPECT_NE(err->find("raise n or lower ts/ta"), std::string::npos) << *err;

  p.n = 5;  // 5 > 2 + 1 + 1 and 5 > 3: feasible in any dimension
  EXPECT_FALSE(baselines::CoordinatewiseParty::feasibility_error(p).has_value());
}

TEST(Coordinatewise, ViolatesValidityWhereHybridDoesNot) {
  // The strawman baseline: D independent 1-D agreements confine outputs to
  // the bounding box, not the hull. With honest inputs near the triangle
  // {(0,0),(1,0),(0,1)} and a Byzantine box-corner input (1,1), asynchrony
  // produces validity violations; the hybrid protocol never does.
  protocols::Params p;
  p.n = 5;
  p.ts = 1;
  p.ta = 1;
  p.dim = 2;
  p.eps = 1e-3;
  p.delta = 1000;
  const std::vector<geo::Vec> inputs{
      {1.0, 1.0}, {0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {0.2, 0.2}};
  const std::vector<geo::Vec> honest_inputs(inputs.begin() + 1, inputs.end());

  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Simulation sim({.n = p.n, .delta = p.delta, .seed = seed},
                        std::make_unique<adversary::ReorderScheduler>(
                            p.delta, 0.35, 10 * p.delta));
    std::vector<baselines::CoordinatewiseParty*> honest;
    for (PartyId id = 0; id < p.n; ++id) {
      auto party = std::make_unique<baselines::CoordinatewiseParty>(p, inputs[id]);
      if (id != 0) honest.push_back(party.get());
      sim.add_party(std::move(party));
    }
    sim.run();
    for (auto* h : honest) {
      ASSERT_TRUE(h->has_output()) << "seed " << seed;  // liveness inherited
      if (!geo::in_convex_hull(honest_inputs, h->output(), 1e-6)) ++violations;
    }
  }
  EXPECT_GT(violations, 0);  // the strawman demonstrably breaks validity

  // Control: the hybrid protocol on the same shape never violates validity.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    AaRunConfig cfg{.params = p, .inputs = inputs, .seed = seed};
    cfg.byzantine[0] = [](const Params& params, const geo::Vec& input) {
      return std::make_unique<protocols::AaParty>(params, input);
    };
    cfg.delay = [](const Params& params) {
      return std::make_unique<adversary::ReorderScheduler>(params.delta, 0.35,
                                                           10 * params.delta);
    };
    auto run = run_aa(std::move(cfg));
    ASSERT_TRUE(run.all_output()) << "seed " << seed;
    for (const auto& v : run.outputs()) {
      EXPECT_TRUE(geo::in_convex_hull(honest_inputs, v, 1e-5)) << "seed " << seed;
    }
  }
}

TEST(AsyncMh, FeasibilityMatchesDPlus2Bound) {
  EXPECT_TRUE(baselines::async_mh_feasible({.n = 9, .t = 2, .dim = 2}));
  EXPECT_FALSE(baselines::async_mh_feasible({.n = 8, .t = 2, .dim = 2}));
  EXPECT_TRUE(baselines::async_mh_feasible({.n = 6, .t = 1, .dim = 3}));
  EXPECT_FALSE(baselines::async_mh_feasible({.n = 5, .t = 1, .dim = 3}));  // (D+2)t = n
  EXPECT_FALSE(baselines::async_mh_feasible({.n = 4, .t = 1, .dim = 2}));
}

TEST(AsyncMh, ConvergesUnderAsynchronyAtItsBound) {
  const AsyncMhConfig config{.n = 9, .t = 2, .dim = 2, .eps = 1e-2, .delta = 1000};
  ASSERT_TRUE(baselines::async_mh_feasible(config));
  const auto inputs = ring_inputs(9);

  sim::Simulation sim(
      sim::SimConfig{.n = config.n, .delta = config.delta, .seed = 7},
      std::make_unique<adversary::ReorderScheduler>(config.delta, 0.3,
                                                    15 * config.delta));
  std::vector<AsyncMhParty*> honest;
  for (PartyId id = 0; id < config.n; ++id) {
    if (id < 2) {
      sim.add_party(std::make_unique<adversary::SilentParty>());  // t = 2 corrupt
    } else {
      auto party = std::make_unique<AsyncMhParty>(config, inputs[id]);
      honest.push_back(party.get());
      sim.add_party(std::move(party));
    }
  }
  const auto stats = sim.run();
  EXPECT_FALSE(stats.hit_limit);

  std::vector<geo::Vec> outputs;
  std::vector<geo::Vec> honest_inputs(inputs.begin() + 2, inputs.end());
  for (auto* p : honest) {
    ASSERT_TRUE(p->has_output());
    outputs.push_back(p->output());
    EXPECT_TRUE(geo::in_convex_hull(honest_inputs, p->output(), 1e-5));
  }
  EXPECT_LE(geo::diameter(outputs), config.eps + 1e-9);
}

TEST(AsyncMh, HybridDominatesAsyncBaselineUnderSynchrony) {
  // At (n, ts, ta) = (7, 2, 0), D = 2: the hybrid protocol tolerates 2
  // corruptions under synchrony, while the async baseline would need
  // (D+2) t < n => t <= 1. This is the paper's headline trade-off.
  protocols::Params hybrid;
  hybrid.n = 7;
  hybrid.ts = 2;
  hybrid.ta = 0;
  hybrid.dim = 2;
  hybrid.eps = 1e-2;
  hybrid.delta = 1000;
  ASSERT_TRUE(hybrid.feasible());
  ASSERT_FALSE(baselines::async_mh_feasible({.n = 7, .t = 2, .dim = 2}));

  auto inputs = ring_inputs(7);
  AaRunConfig cfg{.params = hybrid, .inputs = inputs, .seed = 9};
  cfg.byzantine[0] = [](const Params&, const geo::Vec&) {
    return std::make_unique<adversary::SilentParty>();
  };
  cfg.byzantine[3] = [](const Params&, const geo::Vec&) {
    return std::make_unique<adversary::SilentParty>();
  };
  cfg.delay = [](const Params& p) {
    return std::make_unique<sim::UniformDelay>(1, p.delta);
  };
  auto run = run_aa(std::move(cfg));
  ASSERT_TRUE(run.all_output());
  EXPECT_LE(geo::diameter(run.outputs()), hybrid.eps + 1e-9);
}

}  // namespace
}  // namespace hydra::test
