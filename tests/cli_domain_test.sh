#!/usr/bin/env bash
# CLI-level value-domain coverage, driven by ctest (label "domain"):
#
#   1. Unknown --domain and unknown --protocol fail fast with actionable
#      errors naming every registered value (mirroring the backend error).
#   2. Graph-domain argument validation: wrong --dim, a baseline --protocol,
#      sub-vertex --eps, and infeasible (n, ts, ta) each produce a usage
#      error that says what to change.
#   3. Tree/path end-to-end: `hydra run --domain=tree` passes under strict
#      monitors on the sim AND threads backends (the ISSUE acceptance runs).
#   4. Euclidean byte-identity: the six golden runs captured at the
#      pre-domain-layer commit (tests/golden/) are re-executed and their
#      traces, metrics JSON, and stdout compared byte-for-byte. This is the
#      seam guarantee: extracting src/domain/ changed no Euclidean byte.
#   5. Sweep determinism with a domain: --jobs 1 and --jobs 8 tree sweeps
#      produce identical summaries (modulo the echoed jobs count).
#
# Usage: cli_domain_test.sh /path/to/hydra /path/to/tests/golden
set -u

HYDRA="${1:?usage: cli_domain_test.sh /path/to/hydra /path/to/golden-dir}"
GOLDEN="${2:?usage: cli_domain_test.sh /path/to/hydra /path/to/golden-dir}"
FAILURES=0

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

TMPDIR_ROOT="$(mktemp -d /tmp/hydra-cli-domain-XXXXXX)"
trap 'rm -rf "$TMPDIR_ROOT"' EXIT

# --- 1. unknown --domain / --protocol: exit 2 + every registered value -----
ERR="$TMPDIR_ROOT/unknown-domain.err"
"$HYDRA" run --domain=bogus 2>"$ERR"
STATUS=$?
[ "$STATUS" -eq 2 ] || fail "unknown domain: expected exit 2, got $STATUS"
grep -q 'unknown domain "bogus"' "$ERR" || fail "unknown domain: error does not name the rejected value: $(head -1 "$ERR")"
grep -q 'registered domains:' "$ERR" || fail "unknown domain: error does not list alternatives"
for name in euclid tree path; do
  grep -q "$name" "$ERR" || fail "unknown domain: error does not offer '$name'"
done

ERR="$TMPDIR_ROOT/unknown-protocol.err"
"$HYDRA" run --protocol=bogus 2>"$ERR"
STATUS=$?
[ "$STATUS" -eq 2 ] || fail "unknown protocol: expected exit 2, got $STATUS"
grep -q 'unknown protocol "bogus"' "$ERR" || fail "unknown protocol: error does not name the rejected value: $(head -1 "$ERR")"
grep -q 'registered protocols:' "$ERR" || fail "unknown protocol: error does not list alternatives"
for name in hybrid sync-lockstep async-mh; do
  grep -q -- "$name" "$ERR" || fail "unknown protocol: error does not offer '$name'"
done

"$HYDRA" list >"$TMPDIR_ROOT/list.out" 2>&1
grep -q '^domain     : euclid tree path' "$TMPDIR_ROOT/list.out" \
  || fail "hydra list: missing/incomplete domain row: $(grep '^domain' "$TMPDIR_ROOT/list.out")"

# --- 2. graph-domain argument validation -----------------------------------
check_usage_error() {  # <label> <pattern> <args...>
  local label="$1" pattern="$2"
  shift 2
  local err="$TMPDIR_ROOT/$label.err"
  "$HYDRA" run "$@" 2>"$err"
  local status=$?
  [ "$status" -eq 2 ] || fail "$label: expected exit 2, got $status"
  grep -q "$pattern" "$err" || fail "$label: error not actionable: $(head -1 "$err")"
}
check_usage_error tree-dim 'drop --dim or pass --dim 1' --domain tree --dim 2
check_usage_error tree-baseline 'hybrid protocol only' --domain tree --protocol sync-lockstep
check_usage_error tree-eps 'needs --eps >= 1' --domain tree --eps 0.5
check_usage_error tree-infeasible 'n > 3 ts and n > 2 ts + ta' --domain tree --n 3 --ts 1 --ta 1

# --- 3. tree/path end-to-end under strict monitors -------------------------
for domain in tree path; do
  for backend in sim threads; do
    OUT="$TMPDIR_ROOT/$domain-$backend.out"
    if ! "$HYDRA" run --domain "$domain" --backend "$backend" \
        --n 5 --ts 1 --ta 1 --monitors strict --seed 3 >"$OUT" 2>&1; then
      fail "--domain=$domain --backend=$backend strict run failed: $(cat "$OUT")"
    fi
    grep -q "monitor violations     0" "$OUT" \
      || fail "--domain=$domain --backend=$backend: nonzero monitor violations"
    grep -q "domain                 $domain" "$OUT" \
      || fail "--domain=$domain: verdict table lacks the domain row"
  done
done

# --- 3b. hydra report renders vertex labels for graph domains ---------------
TREE_TRACE="$TMPDIR_ROOT/tree.trace.jsonl"
TREE_METRICS="$TMPDIR_ROOT/tree.metrics.json"
"$HYDRA" run --domain tree --n 5 --ts 1 --ta 1 --monitors record --seed 3 \
    --trace-out "$TREE_TRACE" --metrics-json "$TREE_METRICS" >/dev/null 2>&1 \
  || fail "tree trace capture for report failed"
"$HYDRA" report --trace "$TREE_TRACE" --metrics "$TREE_METRICS" \
    >"$TMPDIR_ROOT/tree.report.md" 2>&1 \
  || fail "hydra report on a tree trace failed"
grep -q 'vertex labels' "$TMPDIR_ROOT/tree.report.md" \
  || fail "tree report: missing the vertex-label value rendering"
grep -q 'arXiv:2502.05591' "$TMPDIR_ROOT/tree.report.md" \
  || fail "tree report: convergence section does not cite the graph-AA bound"
grep -q '"domain":"tree"' "$TREE_METRICS" \
  || fail "tree metrics: spec block lacks the domain key"

# --- 4. Euclidean golden byte-identity --------------------------------------
# The exact specs captured at the pre-domain-layer commit. Re-run each and
# byte-compare trace, metrics, and stdout against tests/golden/.
declare -A SPEC
SPEC[g1]="--protocol hybrid --n 5 --ts 1 --ta 1 --dim 2 --eps 0.01 --network sync-jitter --adversary silent --corrupt 1 --workload ball --scale 10 --seed 1 --monitors record"
SPEC[g2]="--protocol hybrid --n 6 --ts 1 --ta 1 --dim 3 --eps 2.0 --network sync-worst --adversary equivocate --corrupt 1 --workload simplex --scale 10 --seed 2 --monitors strict"
SPEC[g3]="--protocol hybrid --n 5 --ts 1 --ta 0 --dim 1 --eps 0.001 --network async-reorder --adversary crash --corrupt 1 --workload collinear --scale 5 --seed 3 --monitors record"
SPEC[g4]="--protocol sync-lockstep --n 5 --ts 1 --ta 0 --dim 2 --eps 0.5 --network sync-worst --adversary none --corrupt 0 --workload gaussian --scale 10 --seed 4 --monitors record"
SPEC[g5]="--protocol async-mh --n 7 --ts 1 --ta 1 --dim 2 --eps 1.0 --network async-exp --adversary outlier --corrupt 1 --workload clustered --scale 10 --seed 5 --monitors record"
SPEC[g6]="--protocol hybrid --n 6 --ts 1 --ta 1 --dim 2 --eps 0.2 --network sync-jitter --adversary none --corrupt 0 --workload ball --scale 10 --seed 6 --monitors record --faults dup(p=0.2);crash(party=0,at=5000) --aggregation centroid"

for g in g1 g2 g3 g4 g5 g6; do
  TRACE="$TMPDIR_ROOT/$g.trace.jsonl"
  METRICS="$TMPDIR_ROOT/$g.metrics.json"
  STDOUT="$TMPDIR_ROOT/$g.stdout.txt"
  # shellcheck disable=SC2086
  "$HYDRA" run ${SPEC[$g]} --trace-out "$TRACE" --metrics-json "$METRICS" \
      >"$STDOUT" 2>"$TMPDIR_ROOT/$g.stderr.txt"
  gunzip -c "$GOLDEN/$g.trace.jsonl.gz" >"$TMPDIR_ROOT/$g.golden.trace.jsonl" \
    || fail "$g: cannot decompress golden trace"
  cmp -s "$TMPDIR_ROOT/$g.golden.trace.jsonl" "$TRACE" \
    || fail "$g: trace differs from the pre-domain-layer golden"
  cmp -s "$GOLDEN/$g.metrics.json" "$METRICS" \
    || fail "$g: metrics JSON differs from the pre-domain-layer golden"
  cmp -s "$GOLDEN/$g.stdout.txt" "$STDOUT" \
    || fail "$g: stdout differs from the pre-domain-layer golden"
done

# --- 5. sweep determinism with a non-Euclidean domain ----------------------
for jobs in 1 8; do
  "$HYDRA" sweep --domain tree --n 5 --ts 1 --ta 1 --seeds 8 --jobs "$jobs" \
      --monitors record --sweep-json "$TMPDIR_ROOT/sweep-j$jobs.json" \
      >"$TMPDIR_ROOT/sweep-j$jobs.out" 2>&1 \
    || fail "tree sweep --jobs $jobs failed: $(cat "$TMPDIR_ROOT/sweep-j$jobs.out")"
  # The summary echoes the worker count; normalize it before comparing.
  sed 's/"jobs":[0-9]*/"jobs":N/' "$TMPDIR_ROOT/sweep-j$jobs.json" \
      >"$TMPDIR_ROOT/sweep-j$jobs.norm.json"
done
cmp -s "$TMPDIR_ROOT/sweep-j1.norm.json" "$TMPDIR_ROOT/sweep-j8.norm.json" \
  || fail "tree sweep: --jobs 1 and --jobs 8 summaries differ"
grep -q '"domain":"tree"' "$TMPDIR_ROOT/sweep-j1.json" \
  || fail "tree sweep: summary spec lacks the domain key"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES failure(s)" >&2
  exit 1
fi
echo "cli_domain_test: all checks passed"
