// Tests for Πinit (Section 5 / Theorem 5.18): output presence and timing,
// v0 validity (inside the honest inputs' convex hull), estimation
// consistency, the double-witness mechanism, and the sufficient-iterations
// formula.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "geometry/convex.hpp"
#include "protocol_test_util.hpp"

namespace hydra::test {
namespace {

Params make_params(std::size_t n, std::size_t ts, std::size_t ta, double eps = 1e-3) {
  Params p;
  p.n = n;
  p.ts = ts;
  p.ta = ta;
  p.dim = 2;
  p.eps = eps;
  p.delta = 1000;
  return p;
}

struct InitFixture {
  InitFixture(const Params& params, std::uint64_t seed,
              std::unique_ptr<sim::DelayModel> model)
      : sim(sim::SimConfig{.n = params.n, .delta = params.delta, .seed = seed},
            std::move(model)) {}

  InitTestParty* add_honest(const Params& params, geo::Vec input) {
    auto party = std::make_unique<InitTestParty>(params, std::move(input));
    auto* raw = party.get();
    parties.push_back(raw);
    sim.add_party(std::move(party));
    return raw;
  }

  sim::Simulation sim;
  std::vector<InitTestParty*> parties;
};

TEST(SufficientIterations, Formula) {
  const double base = std::sqrt(7.0 / 8.0);
  // diam/eps = 1000: T = ceil(log_base(1e-3)) = ceil(103.45..) = 104.
  const double expected = std::ceil(std::log(1e-3) / std::log(base));
  EXPECT_EQ(protocols::sufficient_iterations(1e-3, 1.0),
            static_cast<std::uint64_t>(expected));
  // Already agreed: one iteration (clamped).
  EXPECT_EQ(protocols::sufficient_iterations(1.0, 0.5), 1u);
  EXPECT_EQ(protocols::sufficient_iterations(1.0, 0.0), 1u);
  // Monotone in diameter.
  EXPECT_LT(protocols::sufficient_iterations(1e-2, 10.0),
            protocols::sufficient_iterations(1e-2, 1000.0));
}

TEST(SufficientIterations, GuaranteesEpsAfterTContractions) {
  const double base = std::sqrt(7.0 / 8.0);
  for (const double diam : {0.5, 3.0, 100.0, 1e6}) {
    for (const double eps : {1e-1, 1e-4}) {
      const auto t = protocols::sufficient_iterations(eps, diam);
      EXPECT_LE(diam * std::pow(base, static_cast<double>(t)), eps + 1e-12)
          << diam << " " << eps;
    }
  }
}

TEST(Init, SynchronousHonestRun) {
  const auto params = make_params(4, 1, 0);
  InitFixture f(params, 1, std::make_unique<sim::FixedDelay>(params.delta));
  const std::vector<geo::Vec> inputs{{0.0, 0.0}, {4.0, 0.0}, {0.0, 4.0}, {4.0, 4.0}};
  for (std::size_t i = 0; i < 4; ++i) f.add_honest(params, inputs[i]);
  const auto stats = f.sim.run();
  EXPECT_FALSE(stats.hit_limit);

  for (auto* p : f.parties) {
    ASSERT_TRUE(p->init().has_output());
    // Theorem 5.18: output at c_init * Delta = 8 Delta under synchrony.
    EXPECT_LE(p->output_time, Params::kCInit * params.delta);
    // v0 within the honest inputs' convex hull.
    EXPECT_TRUE(geo::in_convex_hull(inputs, p->init().output().v0, 1e-6));
    EXPECT_GE(p->init().output().iterations, 1u);
    // All honest witnessed under synchrony.
    EXPECT_EQ(p->init().witnesses(), 4u);
    EXPECT_EQ(p->init().double_witnesses(), 4u);
  }
}

TEST(Init, EstimationsConsistentAcrossParties) {
  // If two honest parties both estimate a value for witness P', the
  // estimates are identical (reports travel via ΠrBC; the midpoint rule is
  // deterministic).
  const auto params = make_params(5, 1, 1);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    InitFixture f(params, seed, std::make_unique<sim::UniformDelay>(1, params.delta));
    const std::vector<geo::Vec> inputs{
        {0.0, 0.0}, {1.0, 3.0}, {-2.0, 1.0}, {5.0, 5.0}, {2.0, -4.0}};
    for (std::size_t i = 0; i < 5; ++i) f.add_honest(params, inputs[i]);
    f.sim.run();

    std::map<PartyId, geo::Vec> estimates;
    for (auto* p : f.parties) {
      for (const auto& [witness, estimate] : p->init().estimations()) {
        const auto [it, inserted] = estimates.emplace(witness, estimate);
        EXPECT_EQ(it->second, estimate) << "seed " << seed << " witness " << witness;
      }
    }
  }
}

TEST(Init, SilentCorruptionStillCompletes) {
  const auto params = make_params(4, 1, 0);
  InitFixture f(params, 2, std::make_unique<sim::FixedDelay>(params.delta));
  const std::vector<geo::Vec> inputs{{9.0, 9.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  f.sim.add_party(std::make_unique<adversary::SilentParty>());
  for (std::size_t i = 1; i < 4; ++i) f.add_honest(params, inputs[i]);
  const auto stats = f.sim.run();
  EXPECT_FALSE(stats.hit_limit);

  std::vector<geo::Vec> honest_inputs(inputs.begin() + 1, inputs.end());
  for (auto* p : f.parties) {
    ASSERT_TRUE(p->init().has_output());
    EXPECT_TRUE(geo::in_convex_hull(honest_inputs, p->init().output().v0, 1e-6));
  }
}

TEST(Init, OutlierCorruptionCannotDragV0Outside) {
  // A Byzantine party participates correctly but with an extreme value; v0
  // must stay within the honest hull regardless (the safe-area trim).
  const auto params = make_params(4, 1, 0);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    InitFixture f(params, seed, std::make_unique<sim::UniformDelay>(1, params.delta));
    const std::vector<geo::Vec> inputs{
        {1e9, -1e9}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
    for (std::size_t i = 0; i < 4; ++i) f.add_honest(params, inputs[i]);
    f.sim.run();

    const std::vector<geo::Vec> honest_inputs(inputs.begin() + 1, inputs.end());
    // Parties 1..3 are the honest ones in this scenario (party 0 is the
    // "corrupted" one following the protocol with an outlier input).
    for (std::size_t i = 1; i < 4; ++i) {
      ASSERT_TRUE(f.parties[i]->init().has_output());
      EXPECT_TRUE(geo::in_convex_hull(honest_inputs,
                                      f.parties[i]->init().output().v0, 1e-3))
          << "seed " << seed;
    }
  }
}

TEST(Init, AsynchronousReorderingStillCompletes) {
  const auto params = make_params(9, 2, 1);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    InitFixture f(params, seed,
                  std::make_unique<adversary::ReorderScheduler>(params.delta, 0.3,
                                                                15 * params.delta));
    std::vector<geo::Vec> inputs;
    for (std::size_t i = 0; i < 9; ++i) {
      inputs.push_back(geo::Vec{std::cos(static_cast<double>(i)),
                                std::sin(static_cast<double>(i))});
    }
    f.sim.add_party(std::make_unique<adversary::SilentParty>());
    for (std::size_t i = 1; i < 9; ++i) f.add_honest(params, inputs[i]);
    const auto stats = f.sim.run();
    EXPECT_FALSE(stats.hit_limit) << "seed " << seed;

    const std::vector<geo::Vec> honest_inputs(inputs.begin() + 1, inputs.end());
    for (auto* p : f.parties) {
      ASSERT_TRUE(p->init().has_output()) << "seed " << seed;
      EXPECT_TRUE(geo::in_convex_hull(honest_inputs, p->init().output().v0, 1e-5));
      EXPECT_GE(p->init().double_witnesses(), params.n - params.ts);
    }
  }
}

}  // namespace
}  // namespace hydra::test
