// Targeted robustness tests for attack details the broader suites don't pin
// explicitly: forged multi-halt votes, SENDs from non-designated senders,
// and instance-key floods aimed at state exhaustion.
#include <gtest/gtest.h>

#include <memory>

#include "geometry/convex.hpp"
#include "protocol_test_util.hpp"

namespace hydra::test {
namespace {

using protocols::kDirect;
using protocols::kRbcHalt;
using protocols::kRbcObcValue;
using protocols::kRbcSend;

/// Reliably broadcasts (halt, it) for MANY iterations: if halts were counted
/// per message instead of per sender, ts of these could fabricate the ts+1
/// quorum alone and force premature (disagreeing) outputs.
class MultiHaltForger : public sim::IParty {
 public:
  explicit MultiHaltForger(const Params& params)
      : mux_(params, [](sim::Env&, const InstanceKey&, const Bytes&) {}) {}

  void start(sim::Env& env) override {
    for (std::uint32_t it = 1; it <= 6; ++it) {
      mux_.broadcast(env, InstanceKey{kRbcHalt, env.self(), it}, Bytes{});
    }
  }

  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override {
    if (msg.kind <= protocols::kRbcReady) mux_.handle(env, from, msg);
  }

  void on_timer(sim::Env&, std::uint64_t) override {}

 private:
  protocols::RbcMux mux_;
};

TEST(Robustness, MultiHaltForgerCannotForgeTheQuorumAlone) {
  Params params;
  params.n = 4;
  params.ts = 1;
  params.ta = 0;
  params.dim = 2;
  params.eps = 1e-2;
  params.delta = 1000;
  auto inputs = std::vector<geo::Vec>{
      {0.0, 0.0}, {40.0, 0.0}, {0.0, 40.0}, {40.0, 40.0}};
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 3};
  cfg.byzantine[1] = [](const Params& p, const geo::Vec&) {
    return std::make_unique<MultiHaltForger>(p);
  };
  cfg.delay = [](const Params& p) {
    return std::make_unique<sim::UniformDelay>(1, p.delta);
  };
  auto run = run_aa(std::move(cfg));
  ASSERT_TRUE(run.all_output());
  // The forged halts count as ONE vote (smallest iteration); outputs must
  // still satisfy eps-agreement and validity.
  EXPECT_LE(geo::diameter(run.outputs()), params.eps + 1e-9);
  for (const auto& v : run.outputs()) {
    EXPECT_TRUE(geo::in_convex_hull(run.honest_inputs(), v, 1e-5));
  }
}

/// Injects RBC SEND messages claiming instance keys of OTHER parties. The
/// authenticated channel exposes the true sender, so these must be ignored
/// (only key.a == from is a legitimate initial send).
class SendForger : public sim::IParty {
 public:
  explicit SendForger(const Params& params) : params_(params) {}

  void start(sim::Env& env) override {
    for (PartyId victim = 0; victim < params_.n; ++victim) {
      if (victim == env.self()) continue;
      geo::Vec fake(params_.dim, 1e6);
      env.broadcast(sim::Message{InstanceKey{protocols::kRbcInitValue, victim, 0},
                                 kRbcSend, protocols::encode_value(fake)});
      env.broadcast(sim::Message{InstanceKey{kRbcObcValue, victim, 1}, kRbcSend,
                                 protocols::encode_value(fake)});
    }
  }

  void on_message(sim::Env&, PartyId, const sim::Message&) override {}
  void on_timer(sim::Env&, std::uint64_t) override {}

 private:
  Params params_;
};

TEST(Robustness, ForgedSendsForOtherPartiesAreIgnored) {
  Params params;
  params.n = 4;
  params.ts = 1;
  params.ta = 0;
  params.dim = 2;
  params.eps = 1e-2;
  params.delta = 1000;
  const std::vector<geo::Vec> inputs{
      {0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 5};
  cfg.byzantine[3] = [](const Params& p, const geo::Vec&) {
    return std::make_unique<SendForger>(p);
  };
  auto run = run_aa(std::move(cfg));
  ASSERT_TRUE(run.all_output());
  for (const auto& v : run.outputs()) {
    // The forged value 1e6 must have no influence: outputs stay in the
    // honest unit square.
    EXPECT_TRUE(geo::in_convex_hull(run.honest_inputs(), v, 1e-6));
    EXPECT_LE(std::abs(v[0]), 1.0 + 1e-9);
    EXPECT_LE(std::abs(v[1]), 1.0 + 1e-9);
  }
  EXPECT_LE(geo::diameter(run.outputs()), params.eps + 1e-9);
}

/// Floods messages with absurd iteration coordinates (beyond kMaxIteration)
/// and unknown tags; the key validation must drop them before any state is
/// allocated, and the protocol must proceed unharmed.
class KeyFlooder : public sim::IParty {
 public:
  explicit KeyFlooder(const Params& params) : params_(params) {}

  void start(sim::Env& env) override {
    for (std::uint32_t burst = 0; burst < 64; ++burst) {
      env.broadcast(sim::Message{
          InstanceKey{kRbcObcValue, 0, (1u << 20) + burst + 1}, kRbcSend,
          protocols::encode_value(geo::Vec(params_.dim, 0.0))});
      env.broadcast(sim::Message{InstanceKey{protocols::kObcReport, 0, 1u << 24},
                                 kDirect, Bytes(32, 0xAB)});
      env.broadcast(sim::Message{InstanceKey{999, 5, 5}, kDirect, Bytes{}});
    }
  }

  void on_message(sim::Env&, PartyId, const sim::Message&) override {}
  void on_timer(sim::Env&, std::uint64_t) override {}

 private:
  Params params_;
};

TEST(Robustness, FarFutureKeyFloodIsDroppedCheaply) {
  Params params;
  params.n = 4;
  params.ts = 1;
  params.ta = 0;
  params.dim = 2;
  params.eps = 1e-2;
  params.delta = 1000;
  const std::vector<geo::Vec> inputs{
      {0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0}};
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 7};
  cfg.byzantine[2] = [](const Params& p, const geo::Vec&) {
    return std::make_unique<KeyFlooder>(p);
  };
  auto run = run_aa(std::move(cfg));
  ASSERT_TRUE(run.all_output());
  EXPECT_LE(geo::diameter(run.outputs()), params.eps + 1e-9);
  for (const auto& v : run.outputs()) {
    EXPECT_TRUE(geo::in_convex_hull(run.honest_inputs(), v, 1e-6));
  }
}

TEST(Robustness, DuplicateEchoVotesDoNotDoubleCount) {
  // A Byzantine relay echoes the same value twice (and a different value
  // once): only its FIRST echo may count toward the n-t quorum.
  Params params;
  params.n = 4;
  params.ts = 1;
  params.ta = 0;
  params.dim = 2;
  params.delta = 1000;

  class DoubleEcho : public sim::IParty {
   public:
    void start(sim::Env& env) override {
      const InstanceKey key{protocols::kRbcInitValue, 0, 0};
      const Bytes fake = protocols::encode_value(geo::Vec{9.0, 9.0});
      // Three echo votes from one identity: must count as one.
      env.broadcast(sim::Message{key, protocols::kRbcEcho, fake});
      env.broadcast(sim::Message{key, protocols::kRbcEcho, fake});
      env.broadcast(sim::Message{key, protocols::kRbcReady, fake});
      env.broadcast(sim::Message{key, protocols::kRbcReady, fake});
    }
    void on_message(sim::Env&, PartyId, const sim::Message&) override {}
    void on_timer(sim::Env&, std::uint64_t) override {}
  };

  sim::Simulation sim({.n = 4, .delta = params.delta, .seed = 9},
                      std::make_unique<sim::FixedDelay>(params.delta));
  std::vector<RbcTestParty*> honest;
  for (int i = 0; i < 3; ++i) {
    auto p = std::make_unique<RbcTestParty>(params);
    honest.push_back(p.get());
    sim.add_party(std::move(p));
  }
  sim.add_party(std::make_unique<DoubleEcho>());
  sim.run();
  // Nobody broadcast a SEND; the forged quorum (1 echo + 1 ready from one
  // identity) is far below n - t = 3, so nothing may deliver.
  for (auto* p : honest) {
    EXPECT_TRUE(p->deliveries.empty());
  }
}

}  // namespace
}  // namespace hydra::test
