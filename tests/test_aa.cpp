// End-to-end tests for ΠAA (Theorem 5.19): validity, epsilon-agreement and
// liveness across network modes, Byzantine behaviours, dimensions and
// thresholds.
#include <gtest/gtest.h>

#include <memory>

#include "geometry/convex.hpp"
#include "protocol_test_util.hpp"

namespace hydra::test {
namespace {

Params make_params(std::size_t n, std::size_t ts, std::size_t ta, std::size_t dim,
                   double eps = 1e-2) {
  Params p;
  p.n = n;
  p.ts = ts;
  p.ta = ta;
  p.dim = dim;
  p.eps = eps;
  p.delta = 1000;
  return p;
}

std::vector<geo::Vec> spread_inputs(std::size_t n, std::size_t dim, double scale = 5.0) {
  Rng rng(n * 1000 + dim);
  std::vector<geo::Vec> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    geo::Vec v(dim, 0.0);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_double(-scale, scale);
    inputs.push_back(std::move(v));
  }
  return inputs;
}

void expect_d_aa(const AaRun& run, const std::vector<geo::Vec>& honest_inputs,
                 double eps, const char* label) {
  // Liveness.
  ASSERT_TRUE(run.all_output()) << label;
  const auto outputs = run.outputs();
  // Validity: every output inside the honest inputs' convex hull.
  for (const auto& v : outputs) {
    EXPECT_TRUE(geo::in_convex_hull(honest_inputs, v, 1e-5)) << label;
  }
  // eps-Agreement.
  EXPECT_LE(geo::diameter(outputs), eps + 1e-9) << label;
}

TEST(Aa, AllHonestSynchronous) {
  const auto params = make_params(4, 1, 0, 2);
  AaRunConfig cfg{.params = params, .inputs = spread_inputs(4, 2)};
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "all-honest sync");
  EXPECT_FALSE(run.stats.hit_limit);
}

TEST(Aa, AllHonestIdenticalInputs) {
  // Degenerate spread: parties already agree; T clamps to 1 and the output
  // must equal the common input.
  const auto params = make_params(4, 1, 0, 2);
  std::vector<geo::Vec> inputs(4, geo::Vec{3.0, -1.0});
  AaRunConfig cfg{.params = params, .inputs = inputs};
  auto run = run_aa(std::move(cfg));
  ASSERT_TRUE(run.all_output());
  for (const auto& v : run.outputs()) {
    EXPECT_TRUE(geo::approx_equal(v, geo::Vec{3.0, -1.0}, 1e-9));
  }
}

TEST(Aa, SilentCorruptionSynchronous) {
  const auto params = make_params(4, 1, 0, 2);
  auto inputs = spread_inputs(4, 2);
  AaRunConfig cfg{.params = params, .inputs = inputs};
  cfg.byzantine[0] = [](const Params&, const geo::Vec&) {
    return std::make_unique<adversary::SilentParty>();
  };
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "silent sync");
}

TEST(Aa, OutlierInputCannotViolateValidity) {
  // The Byzantine party follows the protocol with an extreme input; honest
  // outputs must stay within the hull of HONEST inputs only.
  const auto params = make_params(4, 1, 0, 2);
  auto inputs = spread_inputs(4, 2);
  inputs[0] = geo::Vec{1e6, -1e6};
  AaRunConfig cfg{.params = params, .inputs = inputs};
  cfg.byzantine[0] = [](const Params& p, const geo::Vec& input) {
    return std::make_unique<protocols::AaParty>(p, input);  // honest code, evil input
  };
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "outlier");
}

TEST(Aa, EquivocatorSynchronous) {
  const auto params = make_params(4, 1, 0, 2);
  auto inputs = spread_inputs(4, 2);
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 7};
  cfg.byzantine[2] = [](const Params& p, const geo::Vec&) {
    return std::make_unique<adversary::EquivocatorParty>(p, geo::Vec{50.0, -50.0}, 3.0);
  };
  cfg.delay = [](const Params& p) {
    return std::make_unique<sim::UniformDelay>(1, p.delta);
  };
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "equivocator");
}

TEST(Aa, HaltRusherCannotForcePrematureDisagreement) {
  const auto params = make_params(4, 1, 0, 2);
  auto inputs = spread_inputs(4, 2, 50.0);
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 3};
  cfg.byzantine[1] = [](const Params& p, const geo::Vec&) {
    return std::make_unique<adversary::HaltRusherParty>(p, geo::Vec{0.0, 0.0});
  };
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "halt rusher");
}

TEST(Aa, SpammerRobustness) {
  const auto params = make_params(4, 1, 0, 2);
  auto inputs = spread_inputs(4, 2);
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 5};
  cfg.byzantine[3] = [](const Params& p, const geo::Vec&) {
    return std::make_unique<adversary::SpammerParty>(p, 77, p.delta / 2,
                                                     60 * p.delta);
  };
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "spammer");
}

TEST(Aa, CrashMidProtocol) {
  // An adaptively corrupted party runs honestly and dies mid-run.
  const auto params = make_params(4, 1, 0, 2);
  auto inputs = spread_inputs(4, 2);
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 11};
  cfg.byzantine[2] = [](const Params& p, const geo::Vec& input) {
    return std::make_unique<adversary::CrashParty>(
        std::make_unique<protocols::AaParty>(p, input), 12 * p.delta);
  };
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "crash");
}

TEST(Aa, StragglerEchoOnly) {
  const auto params = make_params(4, 1, 0, 2);
  auto inputs = spread_inputs(4, 2);
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 13};
  cfg.byzantine[1] = [](const Params& p, const geo::Vec&) {
    return std::make_unique<adversary::StragglerEchoParty>(p);
  };
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "straggler");
}

TEST(Aa, AsynchronousWithTaCorruptions) {
  // Heavy asynchronous reordering with ta = 1 silent corruption.
  const auto params = make_params(9, 2, 1, 2);
  auto inputs = spread_inputs(9, 2);
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 17};
  cfg.byzantine[4] = [](const Params&, const geo::Vec&) {
    return std::make_unique<adversary::SilentParty>();
  };
  cfg.delay = [](const Params& p) {
    return std::make_unique<adversary::ReorderScheduler>(p.delta, 0.25,
                                                         12 * p.delta);
  };
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "async ta");
}

TEST(Aa, AsynchronousPartition) {
  const auto params = make_params(9, 2, 1, 2);
  auto inputs = spread_inputs(9, 2);
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 19};
  cfg.delay = [](const Params& p) {
    return std::make_unique<adversary::PartitionScheduler>(
        std::make_unique<sim::UniformDelay>(1, p.delta), std::set<PartyId>{0, 1, 2},
        2 * p.delta, 60 * p.delta);
  };
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "async partition");
}

TEST(Aa, TargetedDelayVictim) {
  // A legal synchronous adversary keeps one victim at max delay; guarantees
  // must be unaffected.
  const auto params = make_params(4, 1, 0, 2);
  auto inputs = spread_inputs(4, 2);
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 23};
  cfg.delay = [](const Params& p) {
    return std::make_unique<adversary::TargetedScheduler>(
        std::make_unique<sim::UniformDelay>(1, p.delta / 2), std::set<PartyId>{3},
        p.delta);
  };
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "targeted victim");
}

TEST(Aa, RushingAdversary) {
  const auto params = make_params(4, 1, 0, 2);
  auto inputs = spread_inputs(4, 2, 20.0);
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 29};
  cfg.byzantine[0] = [](const Params& p, const geo::Vec&) {
    return std::make_unique<adversary::EquivocatorParty>(p, geo::Vec{-30.0, 30.0}, 1.0);
  };
  cfg.delay = [](const Params& p) {
    return std::make_unique<adversary::RushingScheduler>(std::set<PartyId>{0}, 1,
                                                         p.delta);
  };
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "rushing");
}

TEST(Aa, ConvergencePerIterationRespectsContractionFactor) {
  // In a perfectly synchronous all-honest run every party computes from the
  // identical M, so estimates coincide and T = 1; genuine multi-iteration
  // convergence requires divergent views: under asynchronous reordering,
  // different (n - ts)-subsets of values arrive first at different parties.
  const auto params = make_params(5, 1, 1, 2, /*eps=*/1e-1);
  auto inputs = spread_inputs(5, 2, 100.0);
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = 41};
  cfg.delay = [](const Params& p) {
    return std::make_unique<adversary::ReorderScheduler>(p.delta, 0.35, 8 * p.delta);
  };
  auto run = run_aa(std::move(cfg));
  ASSERT_TRUE(run.all_output());

  // Reconstruct per-iteration honest diameters from the value histories.
  std::size_t min_len = SIZE_MAX;
  for (auto* p : run.honest) min_len = std::min(min_len, p->value_history().size());
  ASSERT_GE(min_len, 3u);
  const double factor = std::sqrt(7.0 / 8.0);
  for (std::size_t it = 1; it < min_len; ++it) {
    std::vector<geo::Vec> prev;
    std::vector<geo::Vec> cur;
    for (auto* p : run.honest) {
      prev.push_back(p->value_history()[it - 1]);
      cur.push_back(p->value_history()[it]);
    }
    const double d_prev = geo::diameter(prev);
    const double d_cur = geo::diameter(cur);
    if (d_prev > 1e-12) {
      EXPECT_LE(d_cur, factor * d_prev + 1e-9) << "iteration " << it;
    }
  }
}

TEST(Aa, OutputIterationAtLeastSmallestEstimate) {
  const auto params = make_params(4, 1, 0, 2);
  auto inputs = spread_inputs(4, 2, 50.0);
  AaRunConfig cfg{.params = params, .inputs = inputs};
  auto run = run_aa(std::move(cfg));
  ASSERT_TRUE(run.all_output());
  std::uint64_t min_estimate = UINT64_MAX;
  for (auto* p : run.honest) min_estimate = std::min(min_estimate, p->estimate());
  for (auto* p : run.honest) {
    EXPECT_GE(p->output_iteration(), min_estimate);
  }
}

// ------------------------------------------------- parameterized sweep

struct SweepParams {
  std::size_t n;
  std::size_t ts;
  std::size_t ta;
  std::size_t dim;
  bool synchronous;
  std::uint64_t seed;
};

class AaSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(AaSweep, DAaHoldsAtFeasibleThresholds) {
  const auto sp = GetParam();
  const auto params = make_params(sp.n, sp.ts, sp.ta, sp.dim, 5e-2);
  ASSERT_TRUE(params.feasible());

  auto inputs = spread_inputs(sp.n, sp.dim);
  AaRunConfig cfg{.params = params, .inputs = inputs, .seed = sp.seed};
  // Corrupt the maximum tolerated: ts silent under synchrony, ta silent
  // under asynchrony.
  const std::size_t corruptions = sp.synchronous ? sp.ts : sp.ta;
  for (std::size_t i = 0; i < corruptions; ++i) {
    cfg.byzantine[static_cast<PartyId>(2 * i)] = [](const Params&, const geo::Vec&) {
      return std::make_unique<adversary::SilentParty>();
    };
  }
  if (sp.synchronous) {
    cfg.delay = [](const Params& p) {
      return std::make_unique<sim::UniformDelay>(1, p.delta);
    };
  } else {
    cfg.delay = [](const Params& p) {
      return std::make_unique<adversary::ReorderScheduler>(p.delta, 0.25,
                                                           10 * p.delta);
    };
  }
  auto run = run_aa(std::move(cfg));
  expect_d_aa(run, run.honest_inputs(), params.eps, "sweep");
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AaSweep,
    ::testing::Values(
        SweepParams{4, 1, 0, 1, true, 1}, SweepParams{5, 1, 1, 1, true, 2},
        SweepParams{5, 1, 1, 1, false, 3}, SweepParams{4, 1, 0, 2, true, 4},
        SweepParams{5, 1, 1, 2, true, 5}, SweepParams{5, 1, 1, 2, false, 6},
        SweepParams{8, 2, 1, 2, true, 7}, SweepParams{8, 2, 1, 2, false, 8},
        SweepParams{5, 1, 0, 3, true, 9}, SweepParams{6, 1, 1, 3, false, 10},
        SweepParams{6, 1, 0, 4, true, 11}, SweepParams{7, 1, 1, 4, false, 12}),
    [](const auto& info) {
      const auto& p = info.param;
      return "n" + std::to_string(p.n) + "_ts" + std::to_string(p.ts) + "_ta" +
             std::to_string(p.ta) + "_D" + std::to_string(p.dim) +
             (p.synchronous ? "_sync" : "_async");
    });

}  // namespace
}  // namespace hydra::test
