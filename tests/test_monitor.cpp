// Invariant monitors: mode parsing, paper complexity budgets, each monitor
// tripping on a hand-fed counterexample and staying silent on clean input,
// strict-mode aborts, end-to-end clean runs across every protocol the CLI
// exposes, the deliberately faulty aggregation hook tripping the validity
// AND contraction monitors, and report rendering from a real trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "geometry/vec.hpp"
#include "harness/runner.hpp"
#include "obs/monitor.hpp"
#include "obs/report.hpp"

using namespace hydra;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

geo::Vec vec2(double x, double y) {
  geo::Vec v(2, 0.0);
  v[0] = x;
  v[1] = y;
  return v;
}

// ---------------------------------------------------------------------- modes

TEST(MonitorMode, ParseRoundTrips) {
  for (const auto mode : {obs::MonitorMode::kOff, obs::MonitorMode::kRecord,
                          obs::MonitorMode::kStrict}) {
    const auto parsed = obs::parse_monitor_mode(obs::to_string(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(obs::parse_monitor_mode("paranoid").has_value());
  EXPECT_FALSE(obs::parse_monitor_mode("").has_value());
}

// -------------------------------------------------------------------- budgets

TEST(ComplexityBudget, HybridMatchesDerivation) {
  const auto b = obs::hybrid_complexity_budget(8, 2);
  // (n-1)(6n + 4) fixed, (n-1)(2n + 2) per iteration: one broadcast costs
  // n - 1 counted messages because self-delivery never touches the wire
  // (header derivation).
  EXPECT_EQ(b.msgs_fixed, 7u * (6 * 8 + 4));
  EXPECT_EQ(b.msgs_per_iteration, 7u * (2 * 8 + 2));
  const std::uint64_t max_wire = 49 + 8 * (16 + 8 * 2);
  EXPECT_EQ(b.bytes_fixed, b.msgs_fixed * max_wire);
  EXPECT_EQ(b.bytes_per_iteration, b.msgs_per_iteration * max_wire);
}

TEST(ComplexityBudget, LockstepIsLinearInN) {
  const auto b = obs::lockstep_complexity_budget(10, 3);
  // Two broadcasts fixed, one per iteration, at n - 1 wire messages each.
  EXPECT_EQ(b.msgs_fixed, 18u);
  EXPECT_EQ(b.msgs_per_iteration, 9u);
  EXPECT_EQ(b.bytes_per_iteration, 9u * (49 + 8 * 3));
}

// ------------------------------------------------------------- monitor units

obs::MonitorHost::Config unit_config(std::size_t n = 4) {
  obs::MonitorHost::Config cfg;
  cfg.mode = obs::MonitorMode::kRecord;
  cfg.n = n;
  cfg.ts = 1;
  cfg.ta = 0;
  cfg.dim = 2;
  cfg.eps = 1e-2;
  cfg.honest.assign(n, true);
  for (std::size_t i = 0; i < n; ++i) {
    cfg.honest_inputs.push_back(vec2(i % 2 == 0 ? 0.0 : 4.0, i < 2 ? 0.0 : 4.0));
  }
  return cfg;
}

TEST(Monitor, ValidityAcceptsPointsInsideTheInputHull) {
  obs::MonitorHost mon(unit_config());
  mon.on_value(1, 0, 0, vec2(2.0, 2.0));  // centroid of the square
  mon.on_value(1, 1, 0, vec2(0.0, 4.0));  // a vertex
  EXPECT_EQ(mon.total_violations(), 0u);
}

TEST(Monitor, ValidityFlagsEscapeFromTheInputHull) {
  obs::MonitorHost mon(unit_config());
  mon.on_value(1, 0, 0, vec2(9.0, 9.0));
  EXPECT_EQ(mon.count("validity"), 1u);
  ASSERT_EQ(mon.violations().size(), 1u);
  EXPECT_EQ(mon.violations()[0].monitor, "validity");
  EXPECT_EQ(mon.violations()[0].party, 0u);
}

TEST(Monitor, ValidityChecksIterationKAgainstHonestLayerKMinus1) {
  obs::MonitorHost mon(unit_config());
  // Honest layer 1 spans [0, 1]^2 ...
  mon.on_value(1, 0, 1, vec2(0.0, 0.0));
  mon.on_value(1, 1, 1, vec2(1.0, 1.0));
  // ... so an iteration-2 value at (3, 3) escapes it.
  mon.on_value(2, 2, 2, vec2(3.0, 3.0));
  EXPECT_EQ(mon.count("validity"), 1u);
}

TEST(Monitor, ValidityToleratesDegenerateConvergedLayers) {
  // Post-convergence layers have ~1e-16 diameters; the hull check must not
  // blow up (the LP normalization degenerates) and must accept the point.
  obs::MonitorHost mon(unit_config());
  const auto p = vec2(1.0, 1.0);
  for (PartyId id = 0; id < 4; ++id) mon.on_value(1, id, 1, p);
  auto q = p;
  q[0] += 1e-16;
  for (PartyId id = 0; id < 4; ++id) mon.on_value(2, id, 2, q);
  EXPECT_EQ(mon.total_violations(), 0u);
}

TEST(Monitor, ContractionFlagsInsufficientDiameterShrink) {
  auto cfg = unit_config();
  cfg.contraction_factor = 0.5;
  obs::MonitorHost mon(cfg);
  // Layer 1: diameter 4 (inside the input hull, so validity stays quiet).
  mon.on_value(1, 0, 1, vec2(0.0, 0.0));
  mon.on_value(1, 1, 1, vec2(4.0, 0.0));
  mon.on_value(1, 2, 1, vec2(0.0, 0.0));
  mon.on_value(1, 3, 1, vec2(4.0, 0.0));
  // Layer 2: diameter 3 > 0.5 * 4: contraction violated, validity fine.
  mon.on_value(2, 0, 2, vec2(0.0, 0.0));
  mon.on_value(2, 1, 2, vec2(3.0, 0.0));
  mon.on_value(2, 2, 2, vec2(0.0, 0.0));
  mon.on_value(2, 3, 2, vec2(3.0, 0.0));
  EXPECT_EQ(mon.count("contraction"), 1u);
  EXPECT_EQ(mon.count("validity"), 0u);
}

TEST(Monitor, ContractionAcceptsSufficientShrink) {
  auto cfg = unit_config();
  cfg.contraction_factor = 0.5;
  obs::MonitorHost mon(cfg);
  for (PartyId id = 0; id < 4; ++id) {
    mon.on_value(1, id, 1, vec2(id % 2 == 0 ? 0.0 : 4.0, 0.0));
  }
  for (PartyId id = 0; id < 4; ++id) {
    mon.on_value(2, id, 2, vec2(id % 2 == 0 ? 1.0 : 2.0, 0.0));
  }
  EXPECT_EQ(mon.total_violations(), 0u);
}

TEST(Monitor, RbcConsistencyFlagsDivergentPayloads) {
  obs::MonitorHost mon(unit_config());
  mon.on_rbc_deliver(1, 0, 7, 3, 1, Bytes{1, 2, 3});
  mon.on_rbc_deliver(1, 1, 7, 3, 1, Bytes{1, 2, 3});  // same payload: fine
  mon.on_rbc_deliver(2, 2, 7, 3, 1, Bytes{9, 9});     // diverges
  EXPECT_EQ(mon.count("rbc-consistency"), 1u);
  // A different instance is independent.
  mon.on_rbc_deliver(3, 3, 7, 3, 2, Bytes{9, 9});
  EXPECT_EQ(mon.count("rbc-consistency"), 1u);
}

TEST(Monitor, RbcTotalityFlagsStragglersOnlyOnCompleteRuns) {
  {
    obs::MonitorHost mon(unit_config());
    mon.on_rbc_deliver(1, 0, 7, 3, 1, Bytes{1});
    mon.finalize(10, /*complete=*/false);  // truncated run: no claim
    EXPECT_EQ(mon.count("rbc-totality"), 0u);
  }
  {
    obs::MonitorHost mon(unit_config());
    mon.on_rbc_deliver(1, 0, 7, 3, 1, Bytes{1});
    mon.finalize(10, /*complete=*/true);  // 1 of 4 honest delivered
    EXPECT_EQ(mon.count("rbc-totality"), 1u);
  }
  {
    obs::MonitorHost mon(unit_config());
    for (PartyId id = 0; id < 4; ++id) mon.on_rbc_deliver(1, id, 7, 3, 1, Bytes{1});
    mon.finalize(10, /*complete=*/true);
    EXPECT_EQ(mon.count("rbc-totality"), 0u);
  }
}

TEST(Monitor, ObcConsistencyFlagsConflictingAttributedValues) {
  obs::MonitorHost mon(unit_config());
  mon.on_obc_output(1, 0, 1, {{0, vec2(1, 1)}, {1, vec2(2, 2)}, {2, vec2(3, 3)}});
  // Party 1 attributes a different value to source 1.
  mon.on_obc_output(2, 1, 1, {{0, vec2(1, 1)}, {1, vec2(9, 9)}, {2, vec2(3, 3)}});
  EXPECT_EQ(mon.count("obc-consistency"), 1u);
}

TEST(Monitor, ObcOverlapRequiresNMinusTsCommonPairs) {
  obs::MonitorHost mon(unit_config());  // n=4, ts=1: need >= 3 common sources
  mon.on_obc_output(1, 0, 1, {{0, vec2(1, 1)}, {1, vec2(2, 2)}, {2, vec2(3, 3)}});
  // Shares only {0, 1} with party 0's output: |overlap| = 2 < 3.
  mon.on_obc_output(2, 1, 1, {{0, vec2(1, 1)}, {1, vec2(2, 2)}, {3, vec2(4, 4)}});
  EXPECT_EQ(mon.count("obc-overlap"), 1u);
  EXPECT_EQ(mon.count("obc-consistency"), 0u);
}

TEST(Monitor, ComplexityFlagsEachOffendingPartyOnce) {
  auto cfg = unit_config();
  cfg.budget.msgs_fixed = 2;
  cfg.budget.msgs_per_iteration = 1;  // bound = 2 + 1 * (0 + 2) = 4 msgs
  cfg.budget.bytes_fixed = 1000;
  cfg.budget.bytes_per_iteration = 0;
  obs::MonitorHost mon(cfg);
  for (int i = 0; i < 10; ++i) mon.on_send(1, 0, 8);
  EXPECT_EQ(mon.count("complexity"), 1u);  // flagged once, not 6 times
  for (int i = 0; i < 10; ++i) mon.on_send(2, 1, 8);
  EXPECT_EQ(mon.count("complexity"), 2u);
}

TEST(Monitor, ZeroBudgetDisablesComplexity) {
  obs::MonitorHost mon(unit_config());  // unit_config leaves the budget zero
  for (int i = 0; i < 100; ++i) mon.on_send(1, 0, 1 << 20);
  EXPECT_EQ(mon.total_violations(), 0u);
}

TEST(Monitor, CorruptedPartiesAreIgnored) {
  auto cfg = unit_config();
  cfg.honest[3] = false;
  obs::MonitorHost mon(cfg);
  mon.on_value(1, 3, 0, vec2(99.0, 99.0));          // escape by a corrupt party
  mon.on_rbc_deliver(1, 3, 7, 3, 1, Bytes{1});      // corrupt deliveries
  mon.on_rbc_deliver(1, 0, 7, 3, 1, Bytes{2});      // honest baseline
  mon.on_rbc_deliver(2, 3, 7, 3, 1, Bytes{3});      // corrupt divergence
  EXPECT_EQ(mon.total_violations(), 0u);
}

TEST(Monitor, RecordModeNeverAborts) {
  obs::MonitorHost mon(unit_config());
  mon.on_value(1, 0, 0, vec2(9.0, 9.0));
  EXPECT_GT(mon.total_violations(), 0u);
  EXPECT_FALSE(mon.abort_requested());
}

TEST(Monitor, StrictModeRequestsAbortOnFirstViolation) {
  auto cfg = unit_config();
  cfg.mode = obs::MonitorMode::kStrict;
  obs::MonitorHost mon(cfg);
  EXPECT_FALSE(mon.abort_requested());
  mon.on_value(1, 0, 0, vec2(9.0, 9.0));
  EXPECT_TRUE(mon.abort_requested());
}

TEST(Monitor, CausalAttributionFollowsDispatchBracket) {
  obs::MonitorHost mon(unit_config());
  mon.begin_dispatch(42);
  mon.on_value(1, 0, 0, vec2(9.0, 9.0));
  mon.end_dispatch();
  ASSERT_EQ(mon.violations().size(), 1u);
  EXPECT_EQ(mon.violations()[0].cause, 42u);
}

// ------------------------------------------------------------- harness runs

harness::RunSpec monitored_spec(harness::Protocol protocol, std::uint64_t seed) {
  harness::RunSpec spec;
  spec.params.n = 8;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.protocol = protocol;
  spec.network = harness::Network::kSyncJitter;
  spec.adversary = harness::Adversary::kSilent;
  spec.corruptions = 1;
  spec.seed = seed;
  spec.monitors = obs::MonitorMode::kStrict;
  return spec;
}

// Acceptance criterion: a clean strict run reports zero violations for every
// protocol the CLI exposes, across sync and async networks and several
// adversaries (including ones the complexity monitor is gated off for).
TEST(MonitorIntegration, CleanStrictRunsReportZeroViolations) {
  for (const auto protocol :
       {harness::Protocol::kHybrid, harness::Protocol::kSyncLockstep,
        harness::Protocol::kAsyncMh}) {
    for (const auto network :
         {harness::Network::kSyncJitter, harness::Network::kAsyncReorder}) {
      for (const auto adversary :
           {harness::Adversary::kNone, harness::Adversary::kCrash,
            harness::Adversary::kEquivocator}) {
        auto spec = monitored_spec(protocol, 13);
        spec.network = network;
        spec.adversary = adversary;
        spec.corruptions = adversary == harness::Adversary::kNone ? 0 : 1;
        const auto result = harness::execute(spec);
        EXPECT_EQ(result.monitor_violations, 0u)
            << to_string(protocol) << "/" << to_string(network) << "/"
            << to_string(adversary);
        EXPECT_FALSE(result.monitor_aborted);
      }
    }
  }
}

// The deliberately faulty aggregation rule shifts each party's new value by
// escape * (1 + id) along the first axis: values leave the previous layer's
// hull AND the honest diameter stops contracting, so BOTH monitors trip.
TEST(MonitorIntegration, FaultyAggregationTripsValidityAndContraction) {
  auto spec = monitored_spec(harness::Protocol::kHybrid, 17);
  spec.monitors = obs::MonitorMode::kRecord;
  spec.params.test_faulty_escape = 50.0;
  const auto result = harness::execute(spec);

  EXPECT_GT(result.monitor_violations, 0u);
  EXPECT_FALSE(result.monitor_aborted);  // record mode observes, never stops
  std::uint64_t validity = 0;
  std::uint64_t contraction = 0;
  for (const auto& v : result.violations) {
    validity += v.monitor == "validity" ? 1 : 0;
    contraction += v.monitor == "contraction" ? 1 : 0;
  }
  EXPECT_GT(validity, 0u);
  EXPECT_GT(contraction, 0u);
}

TEST(MonitorIntegration, FaultyAggregationUnderStrictModeAbortsTheRun) {
  auto spec = monitored_spec(harness::Protocol::kHybrid, 17);
  spec.params.test_faulty_escape = 50.0;
  const auto result = harness::execute(spec);
  EXPECT_GT(result.monitor_violations, 0u);
  EXPECT_TRUE(result.monitor_aborted);
}

TEST(MonitorIntegration, MetricsJsonCarriesTheMonitorBlock) {
  const std::string path = testing::TempDir() + "monitor_metrics.json";
  auto spec = monitored_spec(harness::Protocol::kHybrid, 19);
  spec.metrics_out = path;
  const auto result = harness::execute(spec);
  EXPECT_EQ(result.monitor_violations, 0u);
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"monitor\":{"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"strict\""), std::string::npos);
  EXPECT_NE(json.find("\"violations\":0"), std::string::npos);
  std::remove(path.c_str());
}

// ------------------------------------------------------------------- report

TEST(Report, RendersMarkdownAndHtmlFromARealTrace) {
  const std::string trace_path = testing::TempDir() + "report_trace.jsonl";
  const std::string metrics_path = testing::TempDir() + "report_metrics.json";
  auto spec = monitored_spec(harness::Protocol::kHybrid, 23);
  spec.monitors = obs::MonitorMode::kRecord;
  spec.params.test_faulty_escape = 50.0;  // so the violation section renders
  spec.trace_out = trace_path;
  spec.metrics_out = metrics_path;
  const auto result = harness::execute(spec);
  EXPECT_GT(result.monitor_violations, 0u);

  const std::string metrics = slurp(metrics_path);
  {
    std::ifstream trace(trace_path);
    std::ostringstream out;
    const auto events = obs::render_report(trace, metrics, {}, out);
    EXPECT_GT(events, 0u);
    const std::string md = out.str();
    EXPECT_NE(md.find("# hydra run report"), std::string::npos);
    EXPECT_NE(md.find("## Invariant violations"), std::string::npos);
    EXPECT_NE(md.find("validity"), std::string::npos);
    EXPECT_NE(md.find("## Per-party send/deliver matrix"), std::string::npos);
    EXPECT_NE(md.find("## Complexity: paper bound vs measured"), std::string::npos);
  }
  {
    std::ifstream trace(trace_path);
    std::ostringstream out;
    obs::ReportOptions options;
    options.format = obs::ReportOptions::Format::kHtml;
    options.title = "html smoke";
    const auto events = obs::render_report(trace, metrics, options, out);
    EXPECT_GT(events, 0u);
    const std::string html = out.str();
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("html smoke"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);  // convergence chart
    EXPECT_NE(html.find("<table>"), std::string::npos);
  }

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(Report, EmptyTraceReturnsZeroEvents) {
  std::istringstream trace("");
  std::ostringstream out;
  EXPECT_EQ(obs::render_report(trace, "", {}, out), 0u);
}

}  // namespace
