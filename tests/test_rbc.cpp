// Tests for Bracha reliable broadcast (ΠrBC): validity, consistency, the
// timing constants of Theorem 4.2, and resistance to equivocating senders
// and forged quorums.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "protocol_test_util.hpp"

namespace hydra::test {
namespace {

using protocols::kRbcEcho;
using protocols::kRbcInitValue;
using protocols::kRbcReady;
using protocols::kRbcSend;

Params make_params(std::size_t n, std::size_t ts) {
  Params p;
  p.n = n;
  p.ts = ts;
  p.ta = 0;
  p.dim = 2;
  p.delta = 1000;
  return p;
}

Bytes payload_of(std::uint8_t fill, std::size_t len = 8) { return Bytes(len, fill); }

struct RbcFixture {
  explicit RbcFixture(Params params, std::uint64_t seed = 1,
                      std::unique_ptr<sim::DelayModel> model = nullptr)
      : sim(sim::SimConfig{.n = params.n, .delta = params.delta, .seed = seed},
            model ? std::move(model)
                  : std::make_unique<sim::FixedDelay>(params.delta)) {}

  /// Adds an honest RBC party; returns its pointer.
  RbcTestParty* add_honest(const Params& params) {
    auto party = std::make_unique<RbcTestParty>(params);
    auto* raw = party.get();
    parties.push_back(raw);
    sim.add_party(std::move(party));
    return raw;
  }

  sim::Simulation sim;
  std::vector<RbcTestParty*> parties;
};

TEST(Rbc, HonestSenderAllDeliverWithin3Delta) {
  const auto params = make_params(4, 1);
  RbcFixture f(params);
  for (std::size_t i = 0; i < 4; ++i) f.add_honest(params);
  f.parties[0]->broadcast_payload = payload_of(0x11);
  f.sim.run();
  for (auto* p : f.parties) {
    ASSERT_EQ(p->deliveries.size(), 1u);
    EXPECT_EQ(p->deliveries[0].payload, payload_of(0x11));
    EXPECT_EQ(p->deliveries[0].key.a, 0u);
    // Theorem 4.2: c_rBC = 3 rounds under synchrony.
    EXPECT_LE(p->deliveries[0].at, 3 * params.delta);
  }
}

TEST(Rbc, SenderDeliversItsOwnBroadcast) {
  const auto params = make_params(4, 1);
  RbcFixture f(params);
  for (std::size_t i = 0; i < 4; ++i) f.add_honest(params);
  f.parties[2]->broadcast_payload = payload_of(0x22);
  f.sim.run();
  ASSERT_EQ(f.parties[2]->deliveries.size(), 1u);
  EXPECT_EQ(f.parties[2]->deliveries[0].key.a, 2u);
}

TEST(Rbc, ConcurrentBroadcastsAllDeliver) {
  const auto params = make_params(7, 2);
  RbcFixture f(params);
  for (std::size_t i = 0; i < 7; ++i) {
    f.add_honest(params)->broadcast_payload = payload_of(static_cast<std::uint8_t>(i));
  }
  f.sim.run();
  for (auto* p : f.parties) {
    ASSERT_EQ(p->deliveries.size(), 7u);
    std::set<std::uint32_t> senders;
    for (const auto& d : p->deliveries) senders.insert(d.key.a);
    EXPECT_EQ(senders.size(), 7u);
  }
}

TEST(Rbc, SilentSenderNobodyDelivers) {
  const auto params = make_params(4, 1);
  RbcFixture f(params);
  for (std::size_t i = 0; i < 4; ++i) f.add_honest(params);
  // Nobody broadcasts.
  f.sim.run();
  for (auto* p : f.parties) EXPECT_TRUE(p->deliveries.empty());
}

TEST(Rbc, EquivocatingSenderNeverSplitsHonestOutputs) {
  // A Byzantine sender emits a different SEND to every receiver across many
  // seeds; consistency demands that all honest deliveries (if any) agree.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto params = make_params(4, 1);
    RbcFixture f(params, seed, std::make_unique<sim::UniformDelay>(1, params.delta));
    auto equivocator = std::make_unique<adversary::EquivocatorParty>(
        params, geo::Vec{0.0, 0.0}, 1.0, 1);
    f.sim.add_party(std::move(equivocator));  // party 0 = attacker
    for (std::size_t i = 1; i < 4; ++i) f.add_honest(params);
    f.sim.run();

    std::optional<Bytes> agreed;
    for (auto* p : f.parties) {
      for (const auto& d : p->deliveries) {
        if (d.key.a != 0) continue;
        if (!agreed) {
          agreed = d.payload;
        } else {
          EXPECT_EQ(*agreed, d.payload) << "seed " << seed;
        }
      }
    }
  }
}

TEST(Rbc, ForgedQuorumCannotDeliver) {
  // One Byzantine party sends ECHO and READY for a value nobody broadcast;
  // with n = 4, t = 1 the quorums (3 echoes / 3 readies) are unreachable.
  const auto params = make_params(4, 1);

  class QuorumForger : public sim::IParty {
   public:
    void start(sim::Env& env) override {
      const InstanceKey key{kRbcInitValue, 0, 0};  // pretends party 0 broadcast
      env.broadcast(sim::Message{key, kRbcEcho, payload_of(0x66)});
      env.broadcast(sim::Message{key, kRbcReady, payload_of(0x66)});
    }
    void on_message(sim::Env&, PartyId, const sim::Message&) override {}
    void on_timer(sim::Env&, std::uint64_t) override {}

   private:
    static Bytes payload_of(std::uint8_t fill) { return Bytes(8, fill); }
  };

  RbcFixture f(params);
  for (std::size_t i = 0; i < 3; ++i) f.add_honest(params);
  f.sim.add_party(std::make_unique<QuorumForger>());
  f.sim.run();
  for (auto* p : f.parties) EXPECT_TRUE(p->deliveries.empty());
}

TEST(Rbc, ReadyAmplificationDeliversToLateParties) {
  // Conditional liveness: t+1 readies make an honest party send ready even
  // if it missed the echoes. Model: sender + echoes delayed away from party
  // 3 by an async partition, delivery still happens eventually.
  const auto params = make_params(4, 1);
  auto base = std::make_unique<sim::FixedDelay>(params.delta);
  auto model = std::make_unique<adversary::PartitionScheduler>(
      std::move(base), std::set<PartyId>{3}, 0, 50 * params.delta);
  RbcFixture f(params, 1, std::move(model));
  for (std::size_t i = 0; i < 4; ++i) f.add_honest(params);
  f.parties[0]->broadcast_payload = payload_of(0x33);
  f.sim.run();
  for (auto* p : f.parties) {
    ASSERT_EQ(p->deliveries.size(), 1u);
    EXPECT_EQ(p->deliveries[0].payload, payload_of(0x33));
  }
}

TEST(Rbc, AsynchronousDeliveryEventuallyCompletes) {
  const auto params = make_params(7, 2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RbcFixture f(params, seed,
                 std::make_unique<sim::ExponentialDelay>(5.0 * params.delta,
                                                         100 * params.delta));
    for (std::size_t i = 0; i < 7; ++i) f.add_honest(params);
    f.parties[0]->broadcast_payload = payload_of(0x44);
    const auto stats = f.sim.run();
    EXPECT_FALSE(stats.hit_limit);
    for (auto* p : f.parties) {
      ASSERT_EQ(p->deliveries.size(), 1u) << "seed " << seed;
      EXPECT_EQ(p->deliveries[0].payload, payload_of(0x44));
    }
  }
}

TEST(Rbc, DistinctInstancesDoNotInterfere) {
  // Same sender, two instance keys: payloads must not cross.
  const auto params = make_params(4, 1);

  class DualSender : public sim::IParty {
   public:
    explicit DualSender(const Params& params)
        : mux_(params, [this](sim::Env& env, const InstanceKey& key, const Bytes& b) {
            deliveries.push_back({env.now(), key, b});
          }) {}

    void start(sim::Env& env) override {
      mux_.broadcast(env, InstanceKey{protocols::kRbcObcValue, env.self(), 1},
                     Bytes(4, 0xA1));
      mux_.broadcast(env, InstanceKey{protocols::kRbcObcValue, env.self(), 2},
                     Bytes(4, 0xB2));
    }

    void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override {
      if (msg.kind <= protocols::kRbcReady) mux_.handle(env, from, msg);
    }

    void on_timer(sim::Env&, std::uint64_t) override {}

    std::vector<RbcTestParty::Delivery> deliveries;

   private:
    protocols::RbcMux mux_;
  };

  sim::Simulation sim(sim::SimConfig{.n = 4, .delta = params.delta, .seed = 1},
                      std::make_unique<sim::FixedDelay>(params.delta));
  std::vector<DualSender*> parties;
  for (int i = 0; i < 4; ++i) {
    auto p = std::make_unique<DualSender>(params);
    parties.push_back(p.get());
    sim.add_party(std::move(p));
  }
  sim.run();
  for (auto* p : parties) {
    // 4 senders x 2 instances.
    ASSERT_EQ(p->deliveries.size(), 8u);
    for (const auto& d : p->deliveries) {
      EXPECT_EQ(d.payload, Bytes(4, d.key.b == 1 ? 0xA1 : 0xB2));
    }
  }
}

}  // namespace
}  // namespace hydra::test
