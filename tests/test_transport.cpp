// Tests for the real-thread transport: the same protocol objects that run
// on the discrete-event simulator must reach D-AA under genuine concurrency,
// in both synchronous-ish and heavily delayed regimes.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/sync_lockstep.hpp"
#include "geometry/convex.hpp"
#include "protocols/aa.hpp"
#include "sim/delay.hpp"
#include "transport/thread_net.hpp"

namespace hydra::transport {
namespace {

using protocols::AaParty;
using protocols::Params;

Params make_params(std::size_t n, std::size_t ts, std::size_t ta, std::size_t dim) {
  Params p;
  p.n = n;
  p.ts = ts;
  p.ta = ta;
  p.dim = dim;
  p.eps = 1e-2;
  // Generous Delta relative to real scheduling jitter: 1 tick = 20 us,
  // Delta = 500 ticks = 10 ms; artificial delays stay well below Delta.
  p.delta = 500;
  return p;
}

std::vector<geo::Vec> inputs_for(std::size_t n, std::size_t dim) {
  Rng rng(1234);
  std::vector<geo::Vec> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    geo::Vec v(dim, 0.0);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_double(-5.0, 5.0);
    inputs.push_back(std::move(v));
  }
  return inputs;
}

const auto aa_finished = [](const sim::IParty& party, PartyId) {
  return static_cast<const AaParty&>(party).has_output();
};

TEST(ThreadTransport, AllHonestReachAgreement) {
  const auto params = make_params(4, 1, 0, 2);
  const auto inputs = inputs_for(4, 2);

  ThreadNetwork net({.n = 4, .delta = params.delta, .us_per_tick = 20.0, .seed = 1},
                    std::make_unique<sim::UniformDelay>(1, params.delta / 4));
  std::vector<std::unique_ptr<sim::IParty>> parties;
  std::vector<AaParty*> raw;
  for (std::size_t i = 0; i < 4; ++i) {
    auto p = std::make_unique<AaParty>(params, inputs[i]);
    raw.push_back(p.get());
    parties.push_back(std::move(p));
  }
  const auto stats = net.run(parties, aa_finished);
  ASSERT_FALSE(stats.timed_out);

  std::vector<geo::Vec> outputs;
  for (auto* p : raw) {
    ASSERT_TRUE(p->has_output());
    outputs.push_back(p->output());
    EXPECT_TRUE(geo::in_convex_hull(inputs, p->output(), 1e-4));
  }
  EXPECT_LE(geo::diameter(outputs), params.eps + 1e-9);
  EXPECT_GT(stats.messages, 0u);
}

TEST(ThreadTransport, HeavyJitterStillLive) {
  // Delays beyond Delta: the asynchronous fallback path on real threads.
  const auto params = make_params(5, 1, 1, 2);
  const auto inputs = inputs_for(5, 2);

  ThreadNetwork net({.n = 5,
                     .delta = params.delta,
                     .us_per_tick = 10.0,
                     .seed = 3,
                     .timeout_ms = 60'000},
                    std::make_unique<sim::ExponentialDelay>(
                        1.5 * static_cast<double>(params.delta), 6 * params.delta));
  std::vector<std::unique_ptr<sim::IParty>> parties;
  std::vector<AaParty*> raw;
  for (std::size_t i = 0; i < 5; ++i) {
    auto p = std::make_unique<AaParty>(params, inputs[i]);
    raw.push_back(p.get());
    parties.push_back(std::move(p));
  }
  const auto stats = net.run(parties, aa_finished);
  ASSERT_FALSE(stats.timed_out);

  std::vector<geo::Vec> outputs;
  for (auto* p : raw) {
    ASSERT_TRUE(p->has_output());
    outputs.push_back(p->output());
  }
  EXPECT_LE(geo::diameter(outputs), params.eps + 1e-9);
}

TEST(ThreadTransport, ThreeDimensionalRun) {
  const auto params = make_params(5, 1, 0, 3);
  const auto inputs = inputs_for(5, 3);

  ThreadNetwork net({.n = 5, .delta = params.delta, .us_per_tick = 20.0, .seed = 5},
                    std::make_unique<sim::UniformDelay>(1, params.delta / 4));
  std::vector<std::unique_ptr<sim::IParty>> parties;
  std::vector<AaParty*> raw;
  for (std::size_t i = 0; i < 5; ++i) {
    auto p = std::make_unique<AaParty>(params, inputs[i]);
    raw.push_back(p.get());
    parties.push_back(std::move(p));
  }
  const auto stats = net.run(parties, aa_finished);
  ASSERT_FALSE(stats.timed_out);
  std::vector<geo::Vec> outputs;
  for (auto* p : raw) {
    ASSERT_TRUE(p->has_output());
    outputs.push_back(p->output());
  }
  EXPECT_LE(geo::diameter(outputs), params.eps + 1e-9);
}

TEST(ThreadTransport, TimeoutReportedWhenPartiesCannotFinish) {
  // n = 4 with ts = 1 but two parties absent-minded (never started): the
  // remaining quorum cannot be met, so the run must time out cleanly
  // instead of hanging.
  const auto params = make_params(4, 1, 0, 2);
  const auto inputs = inputs_for(4, 2);

  class DeadParty : public sim::IParty {
    void start(sim::Env&) override {}
    void on_message(sim::Env&, PartyId, const sim::Message&) override {}
    void on_timer(sim::Env&, std::uint64_t) override {}
  };

  ThreadNetwork net({.n = 4,
                     .delta = params.delta,
                     .us_per_tick = 5.0,
                     .seed = 7,
                     .timeout_ms = 1'500},
                    std::make_unique<sim::UniformDelay>(1, params.delta / 4));
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.push_back(std::make_unique<DeadParty>());
  parties.push_back(std::make_unique<DeadParty>());
  parties.push_back(std::make_unique<AaParty>(params, inputs[2]));
  parties.push_back(std::make_unique<AaParty>(params, inputs[3]));
  const auto stats = net.run(parties, [](const sim::IParty& p, PartyId id) {
    if (id < 2) return true;  // dead parties count as "finished"
    return static_cast<const AaParty&>(p).has_output();
  });
  EXPECT_TRUE(stats.timed_out);

  // The watchdog must say WHICH parties stalled: the two live AaParties
  // (ids 2 and 3) are the unfinished ones; the dead-but-"finished" parties
  // must not be blamed.
  EXPECT_NE(stats.timeout_detail.find("party 2"), std::string::npos)
      << stats.timeout_detail;
  EXPECT_NE(stats.timeout_detail.find("party 3"), std::string::npos)
      << stats.timeout_detail;
  EXPECT_EQ(stats.timeout_detail.find("party 0"), std::string::npos)
      << stats.timeout_detail;
  ASSERT_EQ(stats.progress.size(), 4u);
  EXPECT_TRUE(stats.progress[0].finished);
  EXPECT_TRUE(stats.progress[1].finished);
  EXPECT_FALSE(stats.progress[2].finished);
  // The stalled parties did real work before wedging on the missing quorum.
  EXPECT_GT(stats.progress[2].events, 0u);
}

}  // namespace
}  // namespace hydra::transport
