// Observability layer: registry semantics, histogram bucket edges, the
// disabled path staying a no-op, trace determinism (same seed -> byte
// identical), and the Chrome trace converter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>

#include "common/log.hpp"
#include "harness/runner.hpp"
#include "obs/convert.hpp"
#include "obs/flatjson.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace hydra;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------------------------------ registry

TEST(Registry, CounterFindOrCreate) {
  obs::Registry reg;
  auto& a = reg.counter("x");
  a.inc();
  a.inc(4);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").value(), 5u);
  EXPECT_EQ(reg.counter("y").value(), 0u);
}

TEST(Registry, Gauge) {
  obs::Registry reg;
  auto& g = reg.gauge("depth");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(g.value(), 5);
  g.set(-10);
  EXPECT_EQ(g.value(), -10);
}

TEST(Registry, ResetDropsEverything) {
  obs::Registry reg;
  reg.counter("c").inc();
  reg.gauge("g").set(1);
  reg.reset();
  EXPECT_EQ(reg.to_json(), R"({"counters":{},"gauges":{},"histograms":{}})");
}

TEST(Registry, ToJsonIsSortedByName) {
  obs::Registry reg;
  reg.counter("zeta").inc(2);
  reg.counter("alpha").inc(1);
  EXPECT_EQ(reg.to_json(),
            R"({"counters":{"alpha":1,"zeta":2},"gauges":{},"histograms":{}})");
}

// ----------------------------------------------------------------- histogram

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Registry reg;
  const double bounds[] = {1.0, 2.0, 4.0};
  auto& h = reg.histogram("h", bounds);
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0: x <= bounds[0]
  h.observe(1.5);  // bucket 1
  h.observe(2.0);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(5.0);  // overflow
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 14.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 5.0);
}

TEST(Histogram, BoundsFixedOnFirstRegistration) {
  obs::Registry reg;
  const double first[] = {1.0};
  const double second[] = {10.0, 20.0};
  auto& h = reg.histogram("h", first);
  // Later registrations with different bounds return the existing instrument.
  EXPECT_EQ(&reg.histogram("h", second), &h);
  EXPECT_EQ(h.snapshot().bounds.size(), 1u);
}

// ---------------------------------------------------------------- json writer

TEST(JsonWriter, EscapesAndNesting) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("s", std::string_view("a\"b\\c\n"));
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(true);
  w.value(2.5);
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.take(), R"({"s":"a\"b\\c\n","list":[1,true,2.5]})");
}

TEST(JsonWriter, NanBecomesNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.take(), "[null]");
}

// ---------------------------------------------------------------- log parsing

TEST(Log, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_FALSE(parse_log_level("verbose").has_value());
}

// ------------------------------------------------------------- disabled path

harness::RunSpec small_spec(std::uint64_t seed) {
  harness::RunSpec spec;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.network = harness::Network::kSyncJitter;
  spec.adversary = harness::Adversary::kSilent;
  spec.corruptions = 1;
  spec.seed = seed;
  return spec;
}

TEST(Obs, DisabledRunTouchesNothing) {
  ASSERT_FALSE(obs::enabled());
  obs::Registry::global().reset();
  const auto result = harness::execute(small_spec(3));
  EXPECT_TRUE(result.verdict.d_aa());
  // No instrument was registered, no per-round series recorded.
  EXPECT_EQ(obs::Registry::global().to_json(),
            R"({"counters":{},"gauges":{},"histograms":{}})");
  EXPECT_TRUE(result.messages_per_round.empty());
  EXPECT_FALSE(obs::enabled());
}

// ---------------------------------------------------------------- trace sink

TEST(Obs, TraceIsDeterministicAcrossReruns) {
  const std::string path_a = testing::TempDir() + "hydra_obs_a.jsonl";
  const std::string path_b = testing::TempDir() + "hydra_obs_b.jsonl";

  auto spec = small_spec(7);
  spec.trace_out = path_a;
  const auto first = harness::execute(spec);
  spec.trace_out = path_b;
  const auto second = harness::execute(spec);

  // execute() restores the pre-run obs state.
  EXPECT_FALSE(obs::enabled());
  EXPECT_EQ(obs::trace(), nullptr);

  const std::string a = slurp(path_a);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(path_b));

  // The per-round series accounts for every message exactly once.
  std::uint64_t messages = 0;
  for (const auto m : first.messages_per_round) messages += m;
  EXPECT_EQ(messages, first.messages);
  std::uint64_t bytes = 0;
  for (const auto b : first.bytes_per_round) bytes += b;
  EXPECT_EQ(bytes, first.bytes);
  EXPECT_EQ(first.messages, second.messages);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// Satellite: every traced send carries a unique event id, and every traced
// deliver names the id of the send that caused it. The schema change must
// not disturb same-seed byte-determinism (covered above: the determinism
// test reruns with ids present).
TEST(Obs, SendIdsAreUniqueAndDeliverCausesResolve) {
  const std::string path = testing::TempDir() + "hydra_obs_causal.jsonl";
  auto spec = small_spec(11);
  spec.trace_out = path;
  const auto result = harness::execute(spec);
  EXPECT_TRUE(result.verdict.d_aa());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::set<std::uint64_t> send_ids;
  std::size_t sends = 0;
  std::size_t wire_sends = 0;
  std::size_t delivers = 0;
  std::string line;
  while (std::getline(in, line)) {
    const auto kv = obs::flatjson::parse_flat_object(line);
    const auto ev = kv.find("ev");
    if (ev == kv.end()) continue;
    if (ev->second == "send") {
      ++sends;
      if (obs::flatjson::num(kv, "from") != obs::flatjson::num(kv, "to")) {
        ++wire_sends;
      }
      ASSERT_TRUE(kv.contains("id")) << line;
      const auto id = obs::flatjson::num(kv, "id");
      EXPECT_GT(id, 0) << line;
      EXPECT_TRUE(send_ids.insert(static_cast<std::uint64_t>(id)).second)
          << "duplicate send id: " << line;
    } else if (ev->second == "deliver") {
      ++delivers;
      ASSERT_TRUE(kv.contains("cause")) << line;
      const auto cause = obs::flatjson::num(kv, "cause");
      EXPECT_TRUE(send_ids.contains(static_cast<std::uint64_t>(cause)))
          << "deliver cause does not match any prior send: " << line;
    }
  }
  EXPECT_GT(sends, 0u);
  EXPECT_EQ(sends, delivers);  // FixedDelay-free sync net still delivers all
  // The trace records every send (self-deliveries included); the stats
  // counter is wire traffic only.
  EXPECT_EQ(wire_sends, result.messages);

  std::remove(path.c_str());
}

TEST(Obs, MetricsJsonIsWritten) {
  const std::string path = testing::TempDir() + "hydra_obs_metrics.json";
  auto spec = small_spec(5);
  spec.metrics_out = path;
  const auto result = harness::execute(spec);
  EXPECT_TRUE(result.verdict.d_aa());

  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"per_round\""), std::string::npos);
  EXPECT_NE(json.find("\"diameter_per_round\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.messages\""), std::string::npos);
  EXPECT_NE(json.find("\"aa.safe_area_calls\""), std::string::npos);
  // Wall-clock timings moved to the hydra-perf-v1 side channel (--perf-json)
  // so the metrics document is byte-deterministic per (spec, seed).
  EXPECT_EQ(json.find("\"aa.safe_area_us\""), std::string::npos);
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- converter

TEST(Convert, MapsEveryEventKind) {
  std::istringstream in(
      R"({"ev":"send","t":5,"from":1,"to":2,"tag":3,"a":0,"b":0,"kind":1,"bytes":9})"
      "\n"
      R"({"ev":"deliver","t":8,"from":1,"to":2,"tag":3,"a":0,"b":0,"kind":1,"bytes":9})"
      "\n"
      R"({"ev":"state","t":8,"party":2,"layer":"rbc","what":"echo","a":0,"b":0})"
      "\n"
      R"({"ev":"round_start","t":10,"party":0,"it":1})"
      "\n"
      R"({"ev":"round_end","t":20,"party":0,"it":1})"
      "\n"
      R"({"ev":"scalar","t":20,"party":0,"name":"diam","value":1.5})"
      "\n"
      R"({"ev":"log","level":2,"msg":"hello"})"
      "\n"
      "this line is not JSON\n");
  std::ostringstream out;
  EXPECT_EQ(obs::chrome_trace_from_jsonl(in, out), 7u);
  const std::string chrome = out.str();
  EXPECT_NE(chrome.find(R"("ph":"B")"), std::string::npos);
  EXPECT_NE(chrome.find(R"("ph":"E")"), std::string::npos);
  EXPECT_NE(chrome.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(chrome.find(R"("name":"rbc:echo")"), std::string::npos);
  EXPECT_NE(chrome.find("thread_name"), std::string::npos);
  // Balanced document: the array and object close.
  EXPECT_EQ(chrome.back(), '}');
}

TEST(Convert, EmptyInputYieldsValidDocument) {
  std::istringstream in("");
  std::ostringstream out;
  EXPECT_EQ(obs::chrome_trace_from_jsonl(in, out), 0u);
  EXPECT_NE(out.str().find("traceEvents"), std::string::npos);
}

}  // namespace
