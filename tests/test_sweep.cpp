// Parallel experiment engine: determinism (a parallel sweep's per-run
// outputs are byte-identical to a sequential one), progress callbacks,
// per-cell aggregation, the summary JSON, obs::Context isolation, and
// concurrent ThreadNetwork instances staying independent.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "geometry/convex.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "protocols/aa.hpp"
#include "sim/delay.hpp"
#include "transport/thread_net.hpp"

using namespace hydra;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

harness::RunSpec small_spec(std::uint64_t seed, harness::Network network) {
  harness::RunSpec spec;
  spec.params.n = 5;
  spec.params.ts = 1;
  spec.params.ta = 1;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.network = network;
  spec.adversary = harness::Adversary::kSilent;
  spec.corruptions = 1;
  spec.seed = seed;
  return spec;
}

// ------------------------------------------------------------------- engine

TEST(Sweep, ResolveJobs) {
  EXPECT_EQ(harness::resolve_jobs(3), 3u);
  EXPECT_GE(harness::resolve_jobs(0), 1u);
}

TEST(Sweep, EmptyGridReturnsEmpty) {
  EXPECT_TRUE(harness::run_sweep({}, 4).empty());
}

// The tentpole contract: per (spec, seed) the parallel engine produces the
// same results and the same output files as sequential execution, byte for
// byte. (Wall-clock timings live in the hydra-perf-v1 side channel, never in
// the metrics document, so no carve-out is needed.)
TEST(Sweep, ParallelMatchesSequentialByteForByte) {
  const std::string dir = testing::TempDir();
  std::vector<harness::RunSpec> grid_seq;
  std::vector<harness::RunSpec> grid_par;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const auto network :
         {harness::Network::kSyncJitter, harness::Network::kAsyncReorder}) {
      auto spec = small_spec(seed, network);
      const std::string tag =
          "s" + std::to_string(seed) + "_" + harness::to_string(network);
      spec.trace_out = dir + "sweep_seq_" + tag + ".jsonl";
      spec.metrics_out = dir + "sweep_seq_" + tag + ".json";
      grid_seq.push_back(spec);
      spec.trace_out = dir + "sweep_par_" + tag + ".jsonl";
      spec.metrics_out = dir + "sweep_par_" + tag + ".json";
      grid_par.push_back(spec);
    }
  }

  const auto seq = harness::run_sweep(grid_seq, 1);
  const auto par = harness::run_sweep(grid_par, 4);
  ASSERT_EQ(seq.size(), par.size());

  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].verdict.d_aa(), par[i].verdict.d_aa()) << i;
    EXPECT_EQ(seq[i].verdict.output_diameter, par[i].verdict.output_diameter) << i;
    EXPECT_EQ(seq[i].rounds, par[i].rounds) << i;
    EXPECT_EQ(seq[i].messages, par[i].messages) << i;
    EXPECT_EQ(seq[i].bytes, par[i].bytes) << i;
    EXPECT_EQ(seq[i].safe_area_fallbacks, par[i].safe_area_fallbacks) << i;

    // Simulator traces carry virtual time only: byte-identical.
    const std::string trace_seq = slurp(grid_seq[i].trace_out);
    ASSERT_FALSE(trace_seq.empty()) << grid_seq[i].trace_out;
    EXPECT_EQ(trace_seq, slurp(grid_par[i].trace_out)) << i;

    // Metrics snapshots are fully deterministic: byte-identical too.
    const std::string metrics_seq = slurp(grid_seq[i].metrics_out);
    ASSERT_FALSE(metrics_seq.empty()) << grid_seq[i].metrics_out;
    EXPECT_EQ(metrics_seq, slurp(grid_par[i].metrics_out)) << i;

    std::remove(grid_seq[i].trace_out.c_str());
    std::remove(grid_seq[i].metrics_out.c_str());
    std::remove(grid_par[i].trace_out.c_str());
    std::remove(grid_par[i].metrics_out.c_str());
  }
}

TEST(Sweep, ProgressCallbackCoversEveryIndexOnce) {
  std::vector<harness::RunSpec> grid;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    grid.push_back(small_spec(seed, harness::Network::kSyncJitter));
  }
  std::vector<int> seen(grid.size(), 0);
  const auto results =
      harness::run_sweep(grid, 3, [&](std::size_t index, const harness::RunResult& r) {
        // Serialized by the engine; `seen` needs no extra lock.
        ASSERT_LT(index, seen.size());
        seen[index] += 1;
        EXPECT_TRUE(r.verdict.d_aa());
      });
  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1) << i;
}

// --------------------------------------------------------------- aggregation

TEST(Sweep, GroupCellsSplitsBySpecAndCollectsFailedSeeds) {
  std::vector<harness::RunSpec> grid;
  std::vector<harness::RunResult> results;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const auto network :
         {harness::Network::kSyncJitter, harness::Network::kAsyncExponential}) {
      grid.push_back(small_spec(seed, network));
      harness::RunResult r;
      // Fabricated verdicts: seed 2 of the async cell fails.
      r.verdict.live = r.verdict.valid = r.verdict.agreed =
          !(network == harness::Network::kAsyncExponential && seed == 2);
      results.push_back(r);
    }
  }
  const auto cells = harness::group_cells(grid, results);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].indices.size(), 3u);
  EXPECT_EQ(cells[0].passed, 3u);
  EXPECT_TRUE(cells[0].failed_seeds.empty());
  EXPECT_EQ(cells[1].passed, 2u);
  ASSERT_EQ(cells[1].failed_seeds.size(), 1u);
  EXPECT_EQ(cells[1].failed_seeds[0], 2u);
}

TEST(Sweep, SummaryJsonHasCellsAndFailures) {
  std::vector<harness::RunSpec> grid;
  std::vector<harness::RunResult> results;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    grid.push_back(small_spec(seed, harness::Network::kSyncJitter));
    harness::RunResult r;
    r.verdict.live = r.verdict.valid = r.verdict.agreed = seed == 1;
    r.rounds = 4.0;
    r.messages = 100 + seed;
    results.push_back(r);
  }

  const std::string path = testing::TempDir() + "sweep_summary.json";
  ASSERT_TRUE(harness::write_sweep_summary_json(path, grid, results, 2));
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"jobs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"passed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"cells\":["), std::string::npos);
  EXPECT_NE(json.find("\"protocol\":\"hybrid\""), std::string::npos);
  EXPECT_NE(json.find("\"failed_seeds\":[2]"), std::string::npos);
  EXPECT_NE(json.find("\"failures\":[{\"cell\":0,\"seed\":2}]"), std::string::npos);
  std::remove(path.c_str());

  EXPECT_FALSE(harness::write_sweep_summary_json(
      testing::TempDir() + "no_such_dir/x.json", grid, results, 2));
}

// Regression: cell_key once omitted max_time, us_per_tick and timeout_ms, so
// a grid that varied ONLY a runtime bound collapsed into one cell and the
// summary silently averaged across genuinely different configurations.
TEST(Sweep, CellKeyDistinguishesRuntimeBounds) {
  const auto base = small_spec(1, harness::Network::kSyncJitter);
  for (const auto mutate : {+[](harness::RunSpec& s) { s.timeout_ms += 1000; },
                            +[](harness::RunSpec& s) { s.max_time += 1; },
                            +[](harness::RunSpec& s) { s.us_per_tick *= 2.0; }}) {
    auto other = base;
    mutate(other);
    const std::vector<harness::RunSpec> grid{base, other};
    const std::vector<harness::RunResult> results(2);
    EXPECT_EQ(harness::group_cells(grid, results).size(), 2u);
  }
  // Sanity: seed alone must NOT split a cell.
  const std::vector<harness::RunSpec> same_cell{
      small_spec(1, harness::Network::kSyncJitter),
      small_spec(2, harness::Network::kSyncJitter)};
  const std::vector<harness::RunResult> results(2);
  EXPECT_EQ(harness::group_cells(same_cell, results).size(), 1u);
}

// ----------------------------------------------------- satellite regressions

// n = 4, ts = 1, D = 2: the old baseline forced ta = ts = 1, violating
// (D+1) ts + ta < n (3 + 1 = 4) and aborting via HYDRA_ASSERT. The runner
// now derives the largest feasible ta (here 0) instead.
TEST(Sweep, AsyncMhBaselineDerivesFeasibleTa) {
  harness::RunSpec spec;
  spec.params.n = 4;
  spec.params.ts = 1;
  spec.params.ta = 0;
  spec.params.dim = 2;
  spec.params.eps = 1e-2;
  spec.params.delta = 1000;
  spec.protocol = harness::Protocol::kAsyncMh;
  spec.network = harness::Network::kSyncJitter;
  spec.adversary = harness::Adversary::kNone;
  spec.corruptions = 0;
  spec.seed = 11;
  const auto result = harness::execute(spec);
  EXPECT_TRUE(result.verdict.d_aa());
}

// Degenerate geometry (t = 0, collinear and duplicate-heavy inputs) through
// the parallel path: the safe-area code must not crash, and its fallback
// count stays per-run.
TEST(Sweep, DegenerateWorkloadsUnderParallelPath) {
  std::vector<harness::RunSpec> grid;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    for (const auto workload :
         {harness::Workload::kCollinear, harness::Workload::kClustered}) {
      harness::RunSpec spec;
      spec.params.n = 4;
      spec.params.ts = 0;
      spec.params.ta = 0;
      spec.params.dim = 2;
      spec.params.eps = 1e-2;
      spec.params.delta = 1000;
      spec.workload = workload;
      spec.workload_scale = 10.0;
      spec.network = harness::Network::kSyncJitter;
      spec.seed = seed;
      grid.push_back(spec);
    }
  }
  const auto results = harness::run_sweep(grid, 4);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].verdict.d_aa()) << i;
  }
}

// ------------------------------------------------------------- obs contexts

TEST(ObsContext, ScopedContextIsolatesRegistryAndFallbacks) {
  obs::Registry::global().reset();
  const auto global_fallbacks = obs::safe_area_fallback_slot().load();

  obs::Registry mine;
  obs::Context ctx;
  ctx.registry = &mine;
  ctx.enabled = true;
  {
    const obs::ScopedContext scope(&ctx);
    EXPECT_TRUE(obs::enabled());
    EXPECT_EQ(&obs::registry(), &mine);
    obs::registry().counter("ctx.test").inc(3);
    obs::safe_area_fallback_slot().fetch_add(2);
    {
      // Nested install restores the outer context on exit.
      const obs::ScopedContext inner(nullptr);
      EXPECT_FALSE(obs::enabled());
      EXPECT_EQ(&obs::registry(), &obs::Registry::global());
    }
    EXPECT_EQ(&obs::registry(), &mine);
  }

  EXPECT_FALSE(obs::enabled());
  EXPECT_EQ(mine.counter("ctx.test").value(), 3u);
  EXPECT_EQ(ctx.safe_area_fallbacks.load(), 2u);
  // Nothing leaked into the legacy process-wide state.
  EXPECT_EQ(obs::safe_area_fallback_slot().load(), global_fallbacks);
  EXPECT_EQ(obs::Registry::global().to_json(),
            R"({"counters":{},"gauges":{},"histograms":{}})");
}

// Monitors live inside each run's obs::Context, so a parallel sweep must
// attribute violations to exactly the runs whose spec injects the fault —
// identical counts to the sequential sweep, with the clean half untouched.
TEST(ObsContext, MonitorsAreIsolatedAcrossParallelSweepRuns) {
  std::vector<harness::RunSpec> grid;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto spec = small_spec(seed, harness::Network::kSyncJitter);
    spec.monitors = obs::MonitorMode::kRecord;
    // Fault half the grid: odd seeds use the deliberately faulty aggregation.
    if (seed % 2 == 1) spec.params.test_faulty_escape = 50.0;
    grid.push_back(spec);
  }

  const auto seq = harness::run_sweep(grid, 1);
  const auto par = harness::run_sweep(grid, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].monitor_violations, par[i].monitor_violations) << i;
    if (grid[i].params.test_faulty_escape != 0.0) {
      EXPECT_GT(par[i].monitor_violations, 0u) << i;
    } else {
      EXPECT_EQ(par[i].monitor_violations, 0u) << i;  // no cross-run bleed
    }
  }

  // The summary JSON totals the per-run counts.
  const std::string path = testing::TempDir() + "sweep_monitor_summary.json";
  ASSERT_TRUE(harness::write_sweep_summary_json(path, grid, par, 4));
  const std::string json = slurp(path);
  std::uint64_t expected = 0;
  for (const auto& r : par) expected += r.monitor_violations;
  EXPECT_NE(json.find("\"monitor_violations\":" + std::to_string(expected)),
            std::string::npos);
  std::remove(path.c_str());
}

// ------------------------------------------------- concurrent thread networks

// Two ThreadNetwork instances running at the same time must keep fully
// independent stats and sequence numbers (the old function-local static seq
// counter was shared across instances).
TEST(ConcurrentNetworks, IndependentInstancesReachAgreement) {
  using protocols::AaParty;
  protocols::Params params;
  params.n = 4;
  params.ts = 1;
  params.ta = 0;
  params.dim = 2;
  params.eps = 1e-2;
  params.delta = 500;

  std::vector<geo::Vec> inputs;
  Rng rng(99);
  for (std::size_t i = 0; i < params.n; ++i) {
    geo::Vec v(params.dim, 0.0);
    for (std::size_t d = 0; d < params.dim; ++d) v[d] = rng.next_double(-5.0, 5.0);
    inputs.push_back(std::move(v));
  }

  const auto finished = [](const sim::IParty& party, PartyId) {
    return static_cast<const AaParty&>(party).has_output();
  };

  struct Outcome {
    transport::ThreadNetStats stats;
    double diameter = 1e9;
  };
  std::vector<Outcome> outcomes(2);
  std::vector<std::thread> drivers;
  for (std::size_t k = 0; k < 2; ++k) {
    drivers.emplace_back([&, k] {
      transport::ThreadNetwork net(
          {.n = params.n, .delta = params.delta, .us_per_tick = 20.0, .seed = k + 1},
          std::make_unique<sim::UniformDelay>(1, params.delta / 4));
      std::vector<std::unique_ptr<sim::IParty>> parties;
      std::vector<AaParty*> raw;
      for (std::size_t i = 0; i < params.n; ++i) {
        auto p = std::make_unique<AaParty>(params, inputs[i]);
        raw.push_back(p.get());
        parties.push_back(std::move(p));
      }
      outcomes[k].stats = net.run(parties, finished);
      std::vector<geo::Vec> outputs;
      for (auto* p : raw) {
        if (p->has_output()) outputs.push_back(p->output());
      }
      if (outputs.size() == params.n) outcomes[k].diameter = geo::diameter(outputs);
    });
  }
  for (auto& t : drivers) t.join();

  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_FALSE(outcomes[k].stats.timed_out) << k;
    EXPECT_GT(outcomes[k].stats.messages, 0u) << k;
    EXPECT_LE(outcomes[k].diameter, params.eps + 1e-9) << k;
  }
}

}  // namespace
