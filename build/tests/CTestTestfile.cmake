# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_safe_area[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_rbc[1]_include.cmake")
include("/root/repo/build/tests/test_obc[1]_include.cmake")
include("/root/repo/build/tests/test_init[1]_include.cmake")
include("/root/repo/build/tests/test_aa[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_lp_properties[1]_include.cmake")
include("/root/repo/build/tests/test_polygon_properties[1]_include.cmake")
include("/root/repo/build/tests/test_adversary[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_codec_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_hull3d[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_soak[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
