file(REMOVE_RECURSE
  "CMakeFiles/test_polygon_properties.dir/test_polygon_properties.cpp.o"
  "CMakeFiles/test_polygon_properties.dir/test_polygon_properties.cpp.o.d"
  "test_polygon_properties"
  "test_polygon_properties.pdb"
  "test_polygon_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polygon_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
