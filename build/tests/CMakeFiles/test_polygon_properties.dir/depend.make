# Empty dependencies file for test_polygon_properties.
# This may be replaced when dependencies are built.
