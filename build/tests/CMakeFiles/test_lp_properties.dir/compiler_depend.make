# Empty compiler generated dependencies file for test_lp_properties.
# This may be replaced when dependencies are built.
