file(REMOVE_RECURSE
  "CMakeFiles/test_lp_properties.dir/test_lp_properties.cpp.o"
  "CMakeFiles/test_lp_properties.dir/test_lp_properties.cpp.o.d"
  "test_lp_properties"
  "test_lp_properties.pdb"
  "test_lp_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
