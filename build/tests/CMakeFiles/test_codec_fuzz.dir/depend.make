# Empty dependencies file for test_codec_fuzz.
# This may be replaced when dependencies are built.
