file(REMOVE_RECURSE
  "CMakeFiles/test_aa.dir/test_aa.cpp.o"
  "CMakeFiles/test_aa.dir/test_aa.cpp.o.d"
  "test_aa"
  "test_aa.pdb"
  "test_aa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
