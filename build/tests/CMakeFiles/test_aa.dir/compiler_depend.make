# Empty compiler generated dependencies file for test_aa.
# This may be replaced when dependencies are built.
