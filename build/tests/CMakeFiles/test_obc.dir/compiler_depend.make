# Empty compiler generated dependencies file for test_obc.
# This may be replaced when dependencies are built.
