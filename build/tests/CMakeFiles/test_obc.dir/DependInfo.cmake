
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_obc.cpp" "tests/CMakeFiles/test_obc.dir/test_obc.cpp.o" "gcc" "tests/CMakeFiles/test_obc.dir/test_obc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/hydra_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/hydra_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hydra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hydra_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
