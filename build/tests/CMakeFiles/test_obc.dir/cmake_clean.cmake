file(REMOVE_RECURSE
  "CMakeFiles/test_obc.dir/test_obc.cpp.o"
  "CMakeFiles/test_obc.dir/test_obc.cpp.o.d"
  "test_obc"
  "test_obc.pdb"
  "test_obc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
