# Empty compiler generated dependencies file for test_safe_area.
# This may be replaced when dependencies are built.
