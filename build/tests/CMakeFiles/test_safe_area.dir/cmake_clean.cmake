file(REMOVE_RECURSE
  "CMakeFiles/test_safe_area.dir/test_safe_area.cpp.o"
  "CMakeFiles/test_safe_area.dir/test_safe_area.cpp.o.d"
  "test_safe_area"
  "test_safe_area.pdb"
  "test_safe_area[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_safe_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
