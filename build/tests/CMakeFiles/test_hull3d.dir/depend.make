# Empty dependencies file for test_hull3d.
# This may be replaced when dependencies are built.
