file(REMOVE_RECURSE
  "CMakeFiles/test_hull3d.dir/test_hull3d.cpp.o"
  "CMakeFiles/test_hull3d.dir/test_hull3d.cpp.o.d"
  "test_hull3d"
  "test_hull3d.pdb"
  "test_hull3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hull3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
