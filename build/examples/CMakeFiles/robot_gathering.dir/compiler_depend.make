# Empty compiler generated dependencies file for robot_gathering.
# This may be replaced when dependencies are built.
