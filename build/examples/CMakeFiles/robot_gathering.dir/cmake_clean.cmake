file(REMOVE_RECURSE
  "CMakeFiles/robot_gathering.dir/robot_gathering.cpp.o"
  "CMakeFiles/robot_gathering.dir/robot_gathering.cpp.o.d"
  "robot_gathering"
  "robot_gathering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robot_gathering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
