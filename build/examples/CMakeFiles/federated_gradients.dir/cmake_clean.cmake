file(REMOVE_RECURSE
  "CMakeFiles/federated_gradients.dir/federated_gradients.cpp.o"
  "CMakeFiles/federated_gradients.dir/federated_gradients.cpp.o.d"
  "federated_gradients"
  "federated_gradients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
