# Empty dependencies file for federated_gradients.
# This may be replaced when dependencies are built.
