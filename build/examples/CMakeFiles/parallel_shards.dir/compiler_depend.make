# Empty compiler generated dependencies file for parallel_shards.
# This may be replaced when dependencies are built.
