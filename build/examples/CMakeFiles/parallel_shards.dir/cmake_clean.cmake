file(REMOVE_RECURSE
  "CMakeFiles/parallel_shards.dir/parallel_shards.cpp.o"
  "CMakeFiles/parallel_shards.dir/parallel_shards.cpp.o.d"
  "parallel_shards"
  "parallel_shards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_shards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
