file(REMOVE_RECURSE
  "CMakeFiles/hydra_baselines.dir/async_mh.cpp.o"
  "CMakeFiles/hydra_baselines.dir/async_mh.cpp.o.d"
  "CMakeFiles/hydra_baselines.dir/sync_lockstep.cpp.o"
  "CMakeFiles/hydra_baselines.dir/sync_lockstep.cpp.o.d"
  "libhydra_baselines.a"
  "libhydra_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
