# Empty compiler generated dependencies file for hydra_adversary.
# This may be replaced when dependencies are built.
