file(REMOVE_RECURSE
  "CMakeFiles/hydra_adversary.dir/behaviors.cpp.o"
  "CMakeFiles/hydra_adversary.dir/behaviors.cpp.o.d"
  "CMakeFiles/hydra_adversary.dir/schedulers.cpp.o"
  "CMakeFiles/hydra_adversary.dir/schedulers.cpp.o.d"
  "libhydra_adversary.a"
  "libhydra_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
