file(REMOVE_RECURSE
  "libhydra_adversary.a"
)
