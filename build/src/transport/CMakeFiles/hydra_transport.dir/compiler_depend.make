# Empty compiler generated dependencies file for hydra_transport.
# This may be replaced when dependencies are built.
