file(REMOVE_RECURSE
  "libhydra_transport.a"
)
