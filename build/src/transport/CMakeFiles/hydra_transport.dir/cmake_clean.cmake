file(REMOVE_RECURSE
  "CMakeFiles/hydra_transport.dir/thread_net.cpp.o"
  "CMakeFiles/hydra_transport.dir/thread_net.cpp.o.d"
  "libhydra_transport.a"
  "libhydra_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
