file(REMOVE_RECURSE
  "CMakeFiles/hydra_geometry.dir/convex.cpp.o"
  "CMakeFiles/hydra_geometry.dir/convex.cpp.o.d"
  "CMakeFiles/hydra_geometry.dir/hull3d.cpp.o"
  "CMakeFiles/hydra_geometry.dir/hull3d.cpp.o.d"
  "CMakeFiles/hydra_geometry.dir/lp.cpp.o"
  "CMakeFiles/hydra_geometry.dir/lp.cpp.o.d"
  "CMakeFiles/hydra_geometry.dir/polygon.cpp.o"
  "CMakeFiles/hydra_geometry.dir/polygon.cpp.o.d"
  "CMakeFiles/hydra_geometry.dir/safe_area.cpp.o"
  "CMakeFiles/hydra_geometry.dir/safe_area.cpp.o.d"
  "CMakeFiles/hydra_geometry.dir/vec.cpp.o"
  "CMakeFiles/hydra_geometry.dir/vec.cpp.o.d"
  "libhydra_geometry.a"
  "libhydra_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
