# Empty compiler generated dependencies file for hydra_geometry.
# This may be replaced when dependencies are built.
