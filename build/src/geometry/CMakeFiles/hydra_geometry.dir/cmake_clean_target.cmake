file(REMOVE_RECURSE
  "libhydra_geometry.a"
)
