
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/convex.cpp" "src/geometry/CMakeFiles/hydra_geometry.dir/convex.cpp.o" "gcc" "src/geometry/CMakeFiles/hydra_geometry.dir/convex.cpp.o.d"
  "/root/repo/src/geometry/hull3d.cpp" "src/geometry/CMakeFiles/hydra_geometry.dir/hull3d.cpp.o" "gcc" "src/geometry/CMakeFiles/hydra_geometry.dir/hull3d.cpp.o.d"
  "/root/repo/src/geometry/lp.cpp" "src/geometry/CMakeFiles/hydra_geometry.dir/lp.cpp.o" "gcc" "src/geometry/CMakeFiles/hydra_geometry.dir/lp.cpp.o.d"
  "/root/repo/src/geometry/polygon.cpp" "src/geometry/CMakeFiles/hydra_geometry.dir/polygon.cpp.o" "gcc" "src/geometry/CMakeFiles/hydra_geometry.dir/polygon.cpp.o.d"
  "/root/repo/src/geometry/safe_area.cpp" "src/geometry/CMakeFiles/hydra_geometry.dir/safe_area.cpp.o" "gcc" "src/geometry/CMakeFiles/hydra_geometry.dir/safe_area.cpp.o.d"
  "/root/repo/src/geometry/vec.cpp" "src/geometry/CMakeFiles/hydra_geometry.dir/vec.cpp.o" "gcc" "src/geometry/CMakeFiles/hydra_geometry.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
