file(REMOVE_RECURSE
  "libhydra_harness.a"
)
