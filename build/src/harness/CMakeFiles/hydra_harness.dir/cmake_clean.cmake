file(REMOVE_RECURSE
  "CMakeFiles/hydra_harness.dir/oracles.cpp.o"
  "CMakeFiles/hydra_harness.dir/oracles.cpp.o.d"
  "CMakeFiles/hydra_harness.dir/runner.cpp.o"
  "CMakeFiles/hydra_harness.dir/runner.cpp.o.d"
  "CMakeFiles/hydra_harness.dir/stats.cpp.o"
  "CMakeFiles/hydra_harness.dir/stats.cpp.o.d"
  "CMakeFiles/hydra_harness.dir/table.cpp.o"
  "CMakeFiles/hydra_harness.dir/table.cpp.o.d"
  "CMakeFiles/hydra_harness.dir/workloads.cpp.o"
  "CMakeFiles/hydra_harness.dir/workloads.cpp.o.d"
  "libhydra_harness.a"
  "libhydra_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
