# Empty dependencies file for hydra_harness.
# This may be replaced when dependencies are built.
