file(REMOVE_RECURSE
  "CMakeFiles/hydra_protocols.dir/aa.cpp.o"
  "CMakeFiles/hydra_protocols.dir/aa.cpp.o.d"
  "CMakeFiles/hydra_protocols.dir/aa_iteration.cpp.o"
  "CMakeFiles/hydra_protocols.dir/aa_iteration.cpp.o.d"
  "CMakeFiles/hydra_protocols.dir/codec.cpp.o"
  "CMakeFiles/hydra_protocols.dir/codec.cpp.o.d"
  "CMakeFiles/hydra_protocols.dir/init.cpp.o"
  "CMakeFiles/hydra_protocols.dir/init.cpp.o.d"
  "CMakeFiles/hydra_protocols.dir/obc.cpp.o"
  "CMakeFiles/hydra_protocols.dir/obc.cpp.o.d"
  "CMakeFiles/hydra_protocols.dir/rbc.cpp.o"
  "CMakeFiles/hydra_protocols.dir/rbc.cpp.o.d"
  "libhydra_protocols.a"
  "libhydra_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
