file(REMOVE_RECURSE
  "libhydra_protocols.a"
)
