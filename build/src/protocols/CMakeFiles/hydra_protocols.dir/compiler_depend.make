# Empty compiler generated dependencies file for hydra_protocols.
# This may be replaced when dependencies are built.
