
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/aa.cpp" "src/protocols/CMakeFiles/hydra_protocols.dir/aa.cpp.o" "gcc" "src/protocols/CMakeFiles/hydra_protocols.dir/aa.cpp.o.d"
  "/root/repo/src/protocols/aa_iteration.cpp" "src/protocols/CMakeFiles/hydra_protocols.dir/aa_iteration.cpp.o" "gcc" "src/protocols/CMakeFiles/hydra_protocols.dir/aa_iteration.cpp.o.d"
  "/root/repo/src/protocols/codec.cpp" "src/protocols/CMakeFiles/hydra_protocols.dir/codec.cpp.o" "gcc" "src/protocols/CMakeFiles/hydra_protocols.dir/codec.cpp.o.d"
  "/root/repo/src/protocols/init.cpp" "src/protocols/CMakeFiles/hydra_protocols.dir/init.cpp.o" "gcc" "src/protocols/CMakeFiles/hydra_protocols.dir/init.cpp.o.d"
  "/root/repo/src/protocols/obc.cpp" "src/protocols/CMakeFiles/hydra_protocols.dir/obc.cpp.o" "gcc" "src/protocols/CMakeFiles/hydra_protocols.dir/obc.cpp.o.d"
  "/root/repo/src/protocols/rbc.cpp" "src/protocols/CMakeFiles/hydra_protocols.dir/rbc.cpp.o" "gcc" "src/protocols/CMakeFiles/hydra_protocols.dir/rbc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hydra_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hydra_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
