file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_safe_area.dir/bench_fig2_safe_area.cpp.o"
  "CMakeFiles/bench_fig2_safe_area.dir/bench_fig2_safe_area.cpp.o.d"
  "bench_fig2_safe_area"
  "bench_fig2_safe_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_safe_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
