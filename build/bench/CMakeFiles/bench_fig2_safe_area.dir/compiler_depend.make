# Empty compiler generated dependencies file for bench_fig2_safe_area.
# This may be replaced when dependencies are built.
