file(REMOVE_RECURSE
  "CMakeFiles/bench_resilience_matrix.dir/bench_resilience_matrix.cpp.o"
  "CMakeFiles/bench_resilience_matrix.dir/bench_resilience_matrix.cpp.o.d"
  "bench_resilience_matrix"
  "bench_resilience_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resilience_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
