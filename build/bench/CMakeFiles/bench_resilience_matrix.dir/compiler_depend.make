# Empty compiler generated dependencies file for bench_resilience_matrix.
# This may be replaced when dependencies are built.
