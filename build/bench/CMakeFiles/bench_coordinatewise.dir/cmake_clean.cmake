file(REMOVE_RECURSE
  "CMakeFiles/bench_coordinatewise.dir/bench_coordinatewise.cpp.o"
  "CMakeFiles/bench_coordinatewise.dir/bench_coordinatewise.cpp.o.d"
  "bench_coordinatewise"
  "bench_coordinatewise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coordinatewise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
