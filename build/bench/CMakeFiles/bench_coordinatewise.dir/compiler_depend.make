# Empty compiler generated dependencies file for bench_coordinatewise.
# This may be replaced when dependencies are built.
