file(REMOVE_RECURSE
  "CMakeFiles/bench_init_estimate.dir/bench_init_estimate.cpp.o"
  "CMakeFiles/bench_init_estimate.dir/bench_init_estimate.cpp.o.d"
  "bench_init_estimate"
  "bench_init_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_init_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
