# Empty dependencies file for bench_init_estimate.
# This may be replaced when dependencies are built.
