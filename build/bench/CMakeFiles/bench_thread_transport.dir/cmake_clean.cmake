file(REMOVE_RECURSE
  "CMakeFiles/bench_thread_transport.dir/bench_thread_transport.cpp.o"
  "CMakeFiles/bench_thread_transport.dir/bench_thread_transport.cpp.o.d"
  "bench_thread_transport"
  "bench_thread_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thread_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
