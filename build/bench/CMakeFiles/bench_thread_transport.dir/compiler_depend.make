# Empty compiler generated dependencies file for bench_thread_transport.
# This may be replaced when dependencies are built.
