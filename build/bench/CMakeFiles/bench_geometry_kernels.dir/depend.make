# Empty dependencies file for bench_geometry_kernels.
# This may be replaced when dependencies are built.
