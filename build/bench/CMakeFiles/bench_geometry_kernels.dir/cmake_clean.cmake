file(REMOVE_RECURSE
  "CMakeFiles/bench_geometry_kernels.dir/bench_geometry_kernels.cpp.o"
  "CMakeFiles/bench_geometry_kernels.dir/bench_geometry_kernels.cpp.o.d"
  "bench_geometry_kernels"
  "bench_geometry_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geometry_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
