file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregation_rules.dir/bench_aggregation_rules.cpp.o"
  "CMakeFiles/bench_aggregation_rules.dir/bench_aggregation_rules.cpp.o.d"
  "bench_aggregation_rules"
  "bench_aggregation_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregation_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
