# Empty dependencies file for bench_aggregation_rules.
# This may be replaced when dependencies are built.
