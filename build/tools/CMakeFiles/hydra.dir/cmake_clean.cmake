file(REMOVE_RECURSE
  "CMakeFiles/hydra.dir/hydra_cli.cpp.o"
  "CMakeFiles/hydra.dir/hydra_cli.cpp.o.d"
  "hydra"
  "hydra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
