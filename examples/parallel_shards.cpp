// Parallel shard agreement — session multiplexing over one network.
//
// A deployment rarely needs to agree on a single vector: a federated model
// is split into shards, a robot swarm negotiates rendezvous and formation
// scale at once, a telemetry fabric reconciles several sensor channels.
// SessionRouter runs one independent ΠAA instance per session over the same
// authenticated channels, with per-session dimensions and epsilons, and a
// single Byzantine party attacking all of them simultaneously.
#include <cstdio>
#include <memory>

#include "adversary/behaviors.hpp"
#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "protocols/session.hpp"
#include "sim/delay.hpp"
#include "sim/simulation.hpp"

using namespace hydra;

namespace {

struct Shard {
  std::uint32_t session;
  const char* name;
  std::size_t dim;
  double eps;
};

constexpr std::size_t kParties = 6;

}  // namespace

int main() {
  const std::vector<Shard> shards{
      {0, "embedding shard", 3, 1e-3},
      {1, "classifier head", 2, 1e-3},
      {2, "temperature scalar", 1, 1e-4},
      {3, "bias shard", 2, 1e-3},
  };

  std::printf("Parallel shard agreement: %zu concurrent sessions, %zu parties, "
              "1 Byzantine turncoat\n\n",
              shards.size(), kParties);

  sim::Simulation sim({.n = kParties, .delta = 1000, .seed = 4242},
                      std::make_unique<sim::UniformDelay>(1, 1000));

  // Per-shard inputs for every party.
  Rng rng(99);
  std::map<std::uint32_t, std::vector<geo::Vec>> inputs;
  for (const auto& shard : shards) {
    for (std::size_t i = 0; i < kParties; ++i) {
      geo::Vec v(shard.dim, 0.0);
      for (std::size_t d = 0; d < shard.dim; ++d) v[d] = rng.next_double(-2.0, 2.0);
      inputs[shard.session].push_back(std::move(v));
    }
  }

  std::vector<protocols::SessionRouter*> honest;
  for (PartyId id = 0; id < kParties; ++id) {
    if (id == 3) {
      // The attacker turns hostile mid-run; its key-space sabotage hits
      // every session's iteration traffic.
      protocols::Params p;
      p.n = kParties;
      p.ts = 1;
      p.ta = 1;
      p.dim = 2;
      p.delta = 1000;
      sim.add_party(std::make_unique<adversary::TurncoatParty>(
          p, geo::Vec{0.0, 0.0}, 9 * p.delta));
      continue;
    }
    auto router = std::make_unique<protocols::SessionRouter>();
    for (const auto& shard : shards) {
      protocols::Params p;
      p.n = kParties;
      p.ts = 1;
      p.ta = 1;
      p.dim = shard.dim;
      p.eps = shard.eps;
      p.delta = 1000;
      router->add_session(shard.session, p, inputs[shard.session][id]);
    }
    honest.push_back(router.get());
    sim.add_party(std::move(router));
  }

  const auto stats = sim.run();
  std::printf("network: %llu messages, %lld ticks\n\n",
              static_cast<unsigned long long>(stats.messages),
              static_cast<long long>(stats.end_time));

  bool all_ok = true;
  for (const auto& shard : shards) {
    std::vector<geo::Vec> outputs;
    std::vector<geo::Vec> honest_inputs;
    for (std::size_t i = 0; i < kParties; ++i) {
      if (i != 3) honest_inputs.push_back(inputs[shard.session][i]);
    }
    bool valid = true;
    for (auto* r : honest) {
      const auto& party = r->session(shard.session);
      if (!party.has_output()) {
        valid = false;
        continue;
      }
      outputs.push_back(party.output());
      valid = valid && geo::in_convex_hull(honest_inputs, party.output(), 1e-6);
    }
    const double diam = geo::diameter(outputs);
    const bool ok = valid && outputs.size() == honest.size() && diam <= shard.eps;
    all_ok = all_ok && ok;
    std::printf("session %u (%-18s D=%zu): agreed on %s  spread %.2g  %s\n",
                shard.session, shard.name, shard.dim,
                geo::to_string(outputs.empty() ? geo::Vec(shard.dim, 0.0)
                                               : outputs[0])
                    .c_str(),
                diam, ok ? "ok" : "FAILED");
  }
  std::printf("\n%s\n", all_ok ? "all shards agreed under attack"
                               : "SOME SHARD FAILED");
  return all_ok ? 0 : 1;
}
