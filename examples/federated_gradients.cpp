// Byzantine-robust gradient agreement — the paper's federated-learning
// motivation, run over several training rounds.
//
// n institutions train a shared model without sharing data. Each round,
// every institution computes a local gradient (a vector in R^D) and they
// must agree on (approximately) one gradient that provably lies in the
// convex hull of the honest gradients before applying the update. A naive
// coordinate average is destroyed by a single poisoned gradient; the D-AA
// protocol is not, and because every honest institution adopts an eps-close
// update, their models never drift apart.
//
// Each round is one ΠAA execution (a fresh instance over the same network);
// the shared model follows  w <- w - lr * agreed_gradient. The attacker
// submits amplified gradient-ascent sabotage every round.
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "geometry/vec.hpp"
#include "protocols/aa.hpp"
#include "sim/delay.hpp"
#include "sim/simulation.hpp"

using namespace hydra;

namespace {

constexpr std::size_t kInstitutions = 6;
constexpr std::size_t kDim = 3;
constexpr int kRounds = 5;
constexpr double kLearningRate = 0.5;

/// Quadratic toy loss L(w) = |w - w*|^2 / 2; the true optimum w* is what
/// honest institutions' gradients point toward (plus per-institution data
/// noise).
geo::Vec true_optimum() { return geo::Vec{1.0, -2.0, 0.5}; }

geo::Vec honest_gradient(const geo::Vec& w, Rng& rng) {
  geo::Vec g = w - true_optimum();
  for (std::size_t d = 0; d < kDim; ++d) g[d] += 0.05 * rng.next_gaussian();
  return g;
}

geo::Vec poisoned_gradient(const geo::Vec& w) {
  // Amplified gradient ascent: push the model AWAY from the optimum, hard.
  geo::Vec g = w - true_optimum();
  g *= -1e4;
  return g;
}

/// One round of robust agreement; returns the gradient every honest
/// institution adopts (they all adopt eps-close values; we return party 1's).
geo::Vec agree_on_gradient(const std::vector<geo::Vec>& gradients,
                           std::uint64_t seed, bool* valid) {
  protocols::Params params;
  params.n = kInstitutions;
  params.ts = 1;
  params.ta = 1;  // (3+1)*1 + 1 = 5 < 6
  params.dim = kDim;
  params.eps = 1e-3;
  params.delta = 1000;

  sim::Simulation sim({.n = params.n, .delta = params.delta, .seed = seed},
                      std::make_unique<sim::UniformDelay>(1, params.delta));
  std::vector<protocols::AaParty*> honest;
  for (std::size_t i = 0; i < kInstitutions; ++i) {
    auto party = std::make_unique<protocols::AaParty>(params, gradients[i]);
    if (i != 0) honest.push_back(party.get());
    sim.add_party(std::move(party));
  }
  sim.run();

  const std::vector<geo::Vec> honest_gradients(gradients.begin() + 1,
                                               gradients.end());
  *valid = true;
  for (auto* party : honest) {
    *valid = *valid && party->has_output() &&
             geo::in_convex_hull(honest_gradients, party->output(), 1e-5);
  }
  return honest[0]->output();
}

}  // namespace

int main() {
  std::printf("Byzantine-robust federated training (D = %zu, %d rounds, 1 "
              "poisoner of %zu institutions)\n",
              kDim, kRounds, kInstitutions);
  std::printf("loss L(w) = |w - w*|^2/2 with w* = %s\n\n",
              geo::to_string(true_optimum()).c_str());

  Rng rng(2026);
  geo::Vec w_robust{8.0, 6.0, -4.0};  // shared model, robust aggregation
  geo::Vec w_naive = w_robust;        // shared model, naive averaging

  std::printf("%-6s  %-28s  %-12s  %-12s\n", "round", "agreed gradient",
              "robust loss", "naive loss");
  for (int round = 1; round <= kRounds; ++round) {
    // Local gradients at the current robust model.
    std::vector<geo::Vec> gradients;
    gradients.push_back(poisoned_gradient(w_robust));  // institution 0 lies
    for (std::size_t i = 1; i < kInstitutions; ++i) {
      gradients.push_back(honest_gradient(w_robust, rng));
    }

    bool valid = false;
    const geo::Vec agreed =
        agree_on_gradient(gradients, 1000 + static_cast<std::uint64_t>(round), &valid);
    w_robust -= agreed * kLearningRate;

    // Naive averaging on its own trajectory (poisoned each round too).
    geo::Vec naive_grad = poisoned_gradient(w_naive);
    for (std::size_t i = 1; i < kInstitutions; ++i) {
      naive_grad += honest_gradient(w_naive, rng);
    }
    naive_grad *= 1.0 / static_cast<double>(kInstitutions);
    w_naive -= naive_grad * kLearningRate;

    const double robust_loss =
        0.5 * geo::distance(w_robust, true_optimum()) *
        geo::distance(w_robust, true_optimum());
    const double naive_loss = 0.5 * geo::distance(w_naive, true_optimum()) *
                              geo::distance(w_naive, true_optimum());
    std::printf("%-6d  %-28s  %-12.4g  %-12.4g  (validity oracle: %s)\n", round,
                geo::to_string(agreed).c_str(), robust_loss, naive_loss,
                valid ? "ok" : "VIOLATED");
  }

  std::printf("\nrobust model after %d rounds: %s (distance to optimum %.4f)\n",
              kRounds, geo::to_string(w_robust).c_str(),
              geo::distance(w_robust, true_optimum()));
  std::printf("naive model after %d rounds : %s  <- destroyed by poisoning\n",
              kRounds, geo::to_string(w_naive).c_str());
  return 0;
}
