// Robot gathering — the paper's motivating 2-D/3-D application.
//
// A swarm of robots must converge to (nearly) the same rendezvous point,
// computed from their own noisy position beliefs, while up to ts robots are
// hijacked. Hijacked robots can lie arbitrarily about their position; the
// honest rendezvous points must end up within eps of each other AND inside
// the convex hull of honest beliefs (no honest robot is lured outside the
// area the swarm actually covers).
//
// The example runs the scenario twice: on a well-behaved (synchronous) radio
// link, and on a congested link with unbounded delays (asynchronous
// fallback, with the weaker threshold ta actually corrupted).
#include <cmath>
#include <cstdio>
#include <memory>

#include "adversary/behaviors.hpp"
#include "adversary/schedulers.hpp"
#include "geometry/convex.hpp"
#include "geometry/vec.hpp"
#include "protocols/aa.hpp"
#include "sim/delay.hpp"
#include "sim/simulation.hpp"

using namespace hydra;

namespace {

struct ScenarioResult {
  std::vector<geo::Vec> rendezvous;
  double diameter = 0.0;
  bool inside_swarm = true;
};

ScenarioResult fly(bool congested) {
  protocols::Params params;
  params.n = 8;
  params.ts = 2;  // up to 2 hijacked robots on a clean link
  params.ta = 1;  // still 1 on a congested link: 3*2 + 1 = 7 < 8
  params.dim = 2;
  params.eps = 0.05;  // rendezvous within 5 cm on a meter-scale field
  params.delta = 1000;

  // Honest robots are spread over a ring; hijacked ones claim to be far away
  // trying to drag the rendezvous off the field.
  std::vector<geo::Vec> beliefs;
  const std::size_t hijacked = congested ? params.ta : params.ts;
  for (std::size_t i = 0; i < params.n; ++i) {
    const double a = 2.0 * 3.14159265358979 * static_cast<double>(i) / 8.0;
    beliefs.push_back(geo::Vec{5.0 * std::cos(a), 5.0 * std::sin(a)});
  }

  std::unique_ptr<sim::DelayModel> link;
  if (congested) {
    link = std::make_unique<adversary::ReorderScheduler>(params.delta, 0.3,
                                                         10 * params.delta);
  } else {
    link = std::make_unique<sim::UniformDelay>(1, params.delta);
  }
  sim::Simulation sim({.n = params.n, .delta = params.delta, .seed = 7},
                      std::move(link));

  std::vector<protocols::AaParty*> honest;
  std::vector<geo::Vec> honest_beliefs;
  for (PartyId id = 0; id < params.n; ++id) {
    if (id < hijacked) {
      // A hijacked robot follows the protocol but lies about its position.
      sim.add_party(std::make_unique<protocols::AaParty>(
          params, geo::Vec{500.0 + 100.0 * id, -500.0}));
      continue;
    }
    auto robot = std::make_unique<protocols::AaParty>(params, beliefs[id]);
    honest.push_back(robot.get());
    honest_beliefs.push_back(beliefs[id]);
    sim.add_party(std::move(robot));
  }
  sim.run();

  ScenarioResult result;
  for (auto* robot : honest) {
    if (robot->has_output()) {
      result.rendezvous.push_back(robot->output());
      result.inside_swarm =
          result.inside_swarm &&
          geo::in_convex_hull(honest_beliefs, robot->output(), 1e-5);
    }
  }
  result.diameter = geo::diameter(result.rendezvous);
  return result;
}

}  // namespace

int main() {
  std::printf("Robot gathering with hijacked swarm members\n");
  std::printf("===========================================\n\n");

  for (const bool congested : {false, true}) {
    std::printf("%s link (%s, %d hijacked):\n",
                congested ? "congested" : "clean",
                congested ? "unbounded delays - asynchronous fallback"
                          : "delays <= Delta - synchronous path",
                congested ? 1 : 2);
    const auto result = fly(congested);
    for (std::size_t i = 0; i < result.rendezvous.size(); ++i) {
      std::printf("  robot %zu heads to %s\n", i,
                  geo::to_string(result.rendezvous[i]).c_str());
    }
    std::printf("  rendezvous spread: %.4f m (target < 0.05 m) — %s\n",
                result.diameter, result.diameter <= 0.05 ? "GATHERED" : "FAILED");
    std::printf("  all rendezvous points inside the honest swarm area: %s\n\n",
                result.inside_swarm ? "yes" : "NO");
  }
  return 0;
}
