// Clock synchronization — the classic 1-D application of Approximate
// Agreement [Dolev et al. 86, Welch-Lynch 88].
//
// Each node holds an estimate of "true time" (here: an offset in
// microseconds from a reference). Nodes must adopt eps-close offsets within
// the range of honest estimates, tolerating a node with a wildly wrong (or
// malicious) clock. D = 1 exercises the interval kernel; note that with
// Bracha reliable broadcast the library needs n > 3 ts in this dimension
// (the paper achieves optimal 1-D resilience only with a PKI — see README).
//
// The run uses the heavy-tailed asynchronous network model: clock sync is
// exactly the setting where one cannot assume bounded delays.
#include <cstdio>
#include <memory>

#include "adversary/schedulers.hpp"
#include "geometry/vec.hpp"
#include "protocols/aa.hpp"
#include "sim/simulation.hpp"

using namespace hydra;

int main() {
  protocols::Params params;
  params.n = 7;
  params.ts = 2;
  params.ta = 1;  // 2*2 + 1 = 5 < 7 and 7 > 3*2: feasible for D = 1
  params.dim = 1;
  params.eps = 50.0;  // agree within 50 us
  params.delta = 1000;

  // Clock offsets in microseconds; node 0 drifted absurdly (or lies).
  const std::vector<double> offsets{9.9e8, 120.0, -80.0, 40.0, -30.0, 95.0, 10.0};

  sim::Simulation sim(
      {.n = params.n, .delta = params.delta, .seed = 1},
      std::make_unique<adversary::ReorderScheduler>(params.delta, 0.25,
                                                    8 * params.delta));
  std::vector<protocols::AaParty*> honest;
  for (PartyId id = 0; id < params.n; ++id) {
    auto node = std::make_unique<protocols::AaParty>(params, geo::Vec{offsets[id]});
    if (id != 0) honest.push_back(node.get());
    sim.add_party(std::move(node));
  }
  sim.run();

  std::printf("Byzantine fault-tolerant clock agreement (D = 1, asynchronous)\n");
  std::printf("==============================================================\n\n");
  std::printf("node 0 reports a bogus offset of %.3g us; honest offsets span "
              "[-80, 120] us\n\n",
              offsets[0]);

  double lo = 1e18;
  double hi = -1e18;
  std::vector<geo::Vec> outputs;
  for (std::size_t i = 0; i < honest.size(); ++i) {
    const double adopted = honest[i]->output()[0];
    lo = std::min(lo, adopted);
    hi = std::max(hi, adopted);
    outputs.push_back(honest[i]->output());
    std::printf("node %zu adopts offset %+9.3f us\n", i + 1, adopted);
  }
  std::printf("\nadopted offsets span %.3f us (target <= %.0f us), all within "
              "the honest range [-80, 120]: %s\n",
              hi - lo, params.eps, (lo >= -80.0 && hi <= 120.0) ? "yes" : "NO");
  return 0;
}
