// Quickstart: 4 parties agree on a 2-D value despite 1 Byzantine party.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The essentials:
//   1. pick Params (n, ts, ta, D, eps) satisfying (D+1) ts + ta < n;
//   2. create a Simulation (or a transport::ThreadNetwork) with a delay
//      model — here: synchronous with jitter up to Delta;
//   3. add protocols::AaParty instances (and any attackers);
//   4. run, then read each party's output().
#include <cstdio>
#include <memory>

#include "adversary/behaviors.hpp"
#include "geometry/vec.hpp"
#include "protocols/aa.hpp"
#include "sim/delay.hpp"
#include "sim/simulation.hpp"

using namespace hydra;

int main() {
  protocols::Params params;
  params.n = 4;
  params.ts = 1;   // tolerate 1 corruption if the network is synchronous
  params.ta = 0;   // (and 0 if it is not: (D+1)*1 + 0 = 3 < 4)
  params.dim = 2;
  params.eps = 1e-3;
  params.delta = 1000;  // Delta in simulator ticks

  const std::vector<geo::Vec> inputs{
      {0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}, {10.0, 10.0}};

  sim::Simulation sim({.n = params.n, .delta = params.delta, .seed = 42},
                      std::make_unique<sim::UniformDelay>(1, params.delta));

  std::vector<protocols::AaParty*> parties;
  for (PartyId id = 0; id < 3; ++id) {
    auto party = std::make_unique<protocols::AaParty>(params, inputs[id]);
    parties.push_back(party.get());
    sim.add_party(std::move(party));
  }
  // Party 3 is Byzantine and stays silent.
  sim.add_party(std::make_unique<adversary::SilentParty>());

  const auto stats = sim.run();

  std::printf("simulated %llu messages over %lld ticks\n",
              static_cast<unsigned long long>(stats.messages),
              static_cast<long long>(stats.end_time));
  for (std::size_t i = 0; i < parties.size(); ++i) {
    const auto* p = parties[i];
    std::printf("party %zu: input %s -> output %s (T estimate %llu)\n", i,
                geo::to_string(inputs[i]).c_str(),
                p->has_output() ? geo::to_string(p->output()).c_str() : "(none)",
                static_cast<unsigned long long>(p->estimate()));
  }

  std::vector<geo::Vec> outputs;
  for (auto* p : parties) outputs.push_back(p->output());
  std::printf("output diameter: %.3g (eps = %.3g)\n", geo::diameter(outputs),
              params.eps);
  return 0;
}
