#include "obs/stats.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace hydra::obs {

StatsPublisher::StatsPublisher(const std::string& path, std::int64_t interval_ms,
                               std::uint32_t proc)
    : file_(std::fopen(path.c_str(), "wb")),
      interval_ms_(std::max<std::int64_t>(1, interval_ms)),
      proc_(proc),
      start_(std::chrono::steady_clock::now()) {
  if (file_ == nullptr) {
    HYDRA_LOG_ERROR("stats: cannot open %s for writing", path.c_str());
    return;
  }
  // Same crash-safety posture as the trace sink: full lines reach the kernel
  // as written, and the SIGTERM path can flush the remainder (trace.hpp).
  std::setvbuf(file_, nullptr, _IOLBF, std::size_t{1} << 16);
  register_flush_target(file_);
  thread_ = std::thread([this] { loop(); });
}

StatsPublisher::~StatsPublisher() {
  stop();
  if (file_ != nullptr) {
    unregister_flush_target(file_);
    if (std::fclose(file_) != 0 && !write_failed_) {
      std::fprintf(stderr, "hydra stats: close failed, stats file truncated\n");
    }
  }
}

void StatsPublisher::set_provider(Provider provider) {
  const std::lock_guard lock(mutex_);
  provider_ = std::move(provider);
}

void StatsPublisher::stop() {
  {
    const std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    const std::lock_guard lock(mutex_);
    stopped_ = true;
  }
  emit(/*final_line=*/true);
  if (file_ != nullptr) std::fflush(file_);
}

void StatsPublisher::loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                     [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    emit(/*final_line=*/false);
    lock.lock();
  }
}

void StatsPublisher::emit(bool final_line) {
  if (file_ == nullptr) return;
  StatsSnapshot snap;
  {
    const std::lock_guard lock(mutex_);
    if (provider_) provider_(snap);
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "hydra-stats-v1");
  w.kv("ms", ms);
  if (proc_ != 0) w.kv("proc", proc_);
  w.kv("messages", snap.messages);
  w.kv("bytes", snap.bytes);
  w.kv("auth_dropped", snap.auth_dropped);
  w.kv("decode_dropped", snap.decode_dropped);
  w.kv("egress_depth", snap.egress_depth);
  w.kv("mailbox_depth", snap.mailbox_depth);
  w.kv("decided", snap.decided);
  w.kv("round", snap.round);
  w.kv("final", final_line ? 1 : 0);
  w.key("parties");
  w.begin_array();
  for (const auto& p : snap.parties) {
    w.begin_array();
    w.value(p.id);
    w.value(std::uint64_t{p.finished ? 1u : 0u});
    w.value(p.events);
    w.value(p.round);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  const std::string line = w.take();
  // The emit itself is not under mutex_ (the provider call was): write_line
  // races only with itself across stop()/loop(), which serialize on the
  // thread join, so plain fwrite is safe here. Failures report to stderr
  // (one-shot), not the logger — the logger may route into a trace sink and
  // stats run on their own timer thread, so keep this path self-contained.
  const bool ok = std::fwrite(line.data(), 1, line.size(), file_) == line.size() &&
                  std::fputc('\n', file_) != EOF;
  if (!ok && !write_failed_) {
    write_failed_ = true;
    std::fprintf(stderr, "hydra stats: write failed, stats are truncated from here\n");
  }
}

}  // namespace hydra::obs
