// `hydra report`: turns one run's JSONL trace (+ optional metrics JSON) into
// a self-contained human-readable report — convergence/contraction series,
// invariant-violation timeline, per-party send/deliver matrix, and the
// paper-bound vs. measured complexity table. The rendering logic lives in
// the library so tests can cover it; tools/trace_report.cpp and the `hydra
// report` subcommand are thin wrappers.
#pragma once

#include <istream>
#include <ostream>
#include <string>

namespace hydra::obs {

struct ReportOptions {
  enum class Format { kMarkdown, kHtml };
  Format format = Format::kMarkdown;
  std::string title = "hydra run report";
};

/// Reads a JSONL trace from `trace` and renders a report to `out`.
/// `metrics_json` is the raw contents of the run's --metrics-json document
/// (may be empty: the spec/verdict sections are skipped then). Returns the
/// number of trace events consumed; 0 means the trace was empty/unreadable.
std::size_t render_report(std::istream& trace, const std::string& metrics_json,
                          const ReportOptions& options, std::ostream& out);

}  // namespace hydra::obs
