#include "obs/prof.hpp"

#include "obs/json.hpp"

namespace hydra::obs {

std::vector<Profiler::Snapshot> Profiler::snapshot() const {
  const std::lock_guard lock(mutex_);
  std::vector<Snapshot> out;
  out.reserve(phases_.size());
  for (const auto& [name, stats] : phases_) {
    Snapshot s;
    s.name = name;
    s.count = stats->count.load(std::memory_order_relaxed);
    s.total_ns = stats->total_ns.load(std::memory_order_relaxed);
    s.self_ns = stats->self_ns.load(std::memory_order_relaxed);
    const auto min = stats->min_ns.load(std::memory_order_relaxed);
    s.min_ns = min == UINT64_MAX ? 0 : min;
    s.max_ns = stats->max_ns.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.buckets[i] = stats->buckets[i].load(std::memory_order_relaxed);
    }
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration: already sorted by name
}

void Profiler::reset() {
  const std::lock_guard lock(mutex_);
  phases_.clear();
}

std::string Profiler::to_json() const {
  const auto phases = snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("phases");
  w.begin_object();
  for (const auto& p : phases) {
    w.key(p.name);
    w.begin_object();
    w.kv("count", p.count);
    w.kv("total_ns", p.total_ns);
    w.kv("self_ns", p.self_ns);
    w.kv("min_ns", p.min_ns);
    w.kv("max_ns", p.max_ns);
    // Trailing zero buckets carry no information; trimming keeps the
    // document compact (bucket i counts samples in [2^(i-1), 2^i) ns).
    std::size_t last = kBuckets;
    while (last > 0 && p.buckets[last - 1] == 0) --last;
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < last; ++i) w.value(p.buckets[i]);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace hydra::obs
