// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Design goals, in order:
//   1. Near-zero cost when observability is disabled. Every instrumentation
//      site is guarded by `if (obs::enabled())` — a single relaxed atomic
//      load and a predictable branch; nothing else executes
//      (bench/bench_obs_overhead.cpp keeps this honest, < 2%).
//   2. Thread safety when enabled. The thread transport runs one OS thread
//      per party; counters and gauges are lock-free atomics, histograms and
//      the name -> instrument map take a mutex (enabled-path only).
//   3. Snapshot-ability. Registry::to_json() serializes every registered
//      instrument; the harness embeds it in the per-run metrics file.
//
// Instruments are registered by name on first use (find-or-create) and live
// for the registry's lifetime; references returned by counter()/gauge()/
// histogram() remain valid until reset().
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.hpp"  // enabled()/set_enabled() and per-run contexts

namespace hydra::obs {

/// Monotonically increasing count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins signed value.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. `bounds` are ascending upper edges: a sample x
/// lands in the first bucket with x <= bounds[i]; samples above the last
/// bound land in the overflow bucket (index bounds.size()).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< meaningful only when count > 0
    double max = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name -> instrument map. Instrumentation sites reach their registry via
/// obs::registry(), which resolves to the current run's Context when one is
/// installed and to the process-wide instance (global()) otherwise; tests
/// may construct private registries.
class Registry {
 public:
  /// Find-or-create. The reference is stable until reset().
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` are used only on first registration of `name`.
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  /// Drops every instrument. References handed out earlier are invalidated;
  /// call only between runs, never concurrently with instrumentation.
  void reset();

  /// {"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
  /// "counts":[...],"count":N,"sum":S,"min":m,"max":M}}}
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] static Registry& global();

 private:
  mutable std::mutex mutex_;
  // std::map: deterministic iteration order makes to_json() stable, and node
  // stability keeps instrument references valid across later insertions.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The registry instrumentation should write to: the current context's when
/// one is installed on this thread, the process-wide one otherwise.
[[nodiscard]] inline Registry& registry() {
  Context* ctx = current_context();
  return ctx != nullptr && ctx->registry != nullptr ? *ctx->registry
                                                    : Registry::global();
}

}  // namespace hydra::obs
