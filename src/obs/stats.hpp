// Live telemetry: periodic `hydra-stats-v1` JSONL heartbeats.
//
// A StatsPublisher rides in the per-run obs::Context (context.hpp). Backends
// look it up ONCE at run start (obs::stats()) and, if present, register a
// snapshot provider — a callback that fills a StatsSnapshot from live
// transport state (wire totals, drop counters, queue depths, per-party
// progress). A background thread then samples the provider every
// `interval_ms` and appends one JSON object per line to the output file:
//
//   {"schema":"hydra-stats-v1","ms":<wall ms since start>,"proc":P,
//    "messages":N,"bytes":N,"auth_dropped":N,"decode_dropped":N,
//    "egress_depth":N,"mailbox_depth":N,"decided":N,"round":N,"final":0|1,
//    "parties":[[id,finished,events,round],...]}
//
// Unlike traces, stats lines carry *wall* time — they exist to watch a live
// run (`hydra top --input stats.jsonl`), not to replay it, and are exempt
// from the byte-determinism contract. The shutdown path is guaranteed: stop()
// (or the destructor) emits one final snapshot with "final":1 and flushes,
// and the underlying FILE* is line-buffered + registered with
// obs::register_flush_target() so a SIGTERM'd serve/join process still
// leaves valid JSONL behind (trace.hpp).
//
// Cost when unused: a Context with stats == nullptr adds nothing to any hot
// path — no thread, no atomic, no branch in the per-event code
// (bench_obs_overhead pins the <2% disabled-path budget).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hydra::obs {

/// One telemetry sample. The provider fills everything except `ms`, `proc`
/// and `final`, which the publisher stamps.
struct StatsSnapshot {
  struct Party {
    std::uint64_t id = 0;
    bool finished = false;
    std::uint64_t events = 0;  ///< messages + timers handled so far
    /// Round-clock estimate: the party's last-progress tick divided by
    /// Delta. An estimate rather than the protocol's own iteration counter
    /// because transports must not reach into party state from the sampling
    /// thread (unsynchronized reads).
    std::uint64_t round = 0;
  };

  std::uint64_t messages = 0;  ///< wire messages sent so far
  std::uint64_t bytes = 0;     ///< wire bytes sent so far
  std::uint64_t auth_dropped = 0;
  std::uint64_t decode_dropped = 0;
  std::uint64_t egress_depth = 0;   ///< outbound frames queued, all links
  std::uint64_t mailbox_depth = 0;  ///< inbound messages queued, all parties
  std::uint64_t decided = 0;        ///< local parties that finished
  std::uint64_t round = 0;          ///< max round across local parties
  std::vector<Party> parties;       ///< local parties only
};

class StatsPublisher {
 public:
  using Provider = std::function<void(StatsSnapshot&)>;

  /// Opens `path` (truncates) and starts the sampling thread. `proc` is the
  /// process's trace identity (TraceSink::set_proc), stamped into every
  /// line; 0 suppresses the key. Intervals < 1ms clamp to 1ms.
  StatsPublisher(const std::string& path, std::int64_t interval_ms,
                 std::uint32_t proc);
  ~StatsPublisher();

  StatsPublisher(const StatsPublisher&) = delete;
  StatsPublisher& operator=(const StatsPublisher&) = delete;

  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }

  /// Installs (or, with nullptr, removes) the live snapshot source. Called
  /// by the backend when its transport state exists; heartbeats before the
  /// first provider (or after removal) carry zeros. The provider must be
  /// removed before the state it captures dies — SocketNetwork::run()
  /// removes it before teardown.
  void set_provider(Provider provider);

  /// Emits the final snapshot ("final":1), flushes, and joins the thread.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  void loop();
  void emit(bool final_line);

  std::FILE* file_ = nullptr;
  std::int64_t interval_ms_;
  std::uint32_t proc_;
  std::chrono::steady_clock::time_point start_;

  bool write_failed_ = false;  ///< one-shot: first short write reports, rest drop

  std::mutex mutex_;  ///< guards provider_ and serializes emits
  Provider provider_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace hydra::obs
