// Cross-process trace stitching and post-hoc global monitor re-evaluation.
//
// Each `hydra serve`/`join` process writes its own JSONL trace covering only
// its local parties. merge_traces() stitches those per-process islands into
// ONE causally ordered timeline and re-runs the global invariant monitors
// over it, so a 4-process UDS run gets the same verdict/violation report a
// single-process run gets (docs/OBSERVABILITY.md, "Distributed runs").
//
// What makes the stitch well-defined:
//
//   * identity    every event carries its process's `proc` tag
//                 (TraceSink::set_proc = 1 + min(local parties); party sets
//                 are disjoint, so tags are unique);
//   * causality   send ids are globally unique by construction
//                 (net::compose_send_id puts the origin party in the high
//                 word) and travel on the wire in the MSG frame's `seq`, so
//                 a remote `deliver`'s `cause` resolves against the origin's
//                 trace with no translation;
//   * substrate   the `meta` header event pins the run spec + monitor
//                 config, `input` events carry exact (%.17g) local inputs,
//                 and the monitor hooks trace `value`/`rbc`/`obc` events —
//                 everything the global checks need, re-playable bit-exactly.
//
// Merge order: a k-way merge by (t, proc, file position) over the
// per-process streams, with one causal constraint — a `deliver` whose
// `cause` send exists in the input set is held back until that send has
// been emitted (per-process clocks are not synchronized, so raw timestamps
// alone may order an effect before its cause). The output is a pure
// function of the input file CONTENTS: shuffling the path list or re-merging
// yields byte-identical output (file streams are keyed by proc tag, not
// argument position).
//
// Re-evaluation: when every process wrote a complete `end` marker, the
// per-process `invariant.violation` lines are dropped (they judged a local
// island; the global re-run supersedes them) and a fresh MonitorHost replays
// the merged `send`/`value`/`rbc`/`obc` stream — validity over ALL honest
// inputs, RBC/oBC consistency + overlap across processes, Thm 5.19 per-party
// tallies over the full run — appending its violations to the merged
// timeline. A killed process leaves no `end` marker: the merge still
// succeeds (valid partial JSONL is kept, orphaned delivers are counted) but
// keeps the local violation lines and skips the re-run, whose hull state
// would be missing the dead process's values.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hydra::obs {

struct MergeResult {
  /// Merged JSONL: metas (by proc), events in merged order, re-evaluated
  /// violations (complete runs), one synthesized `end` summary line.
  std::string merged;
  std::size_t files = 0;
  std::size_t events = 0;   ///< events in the merged timeline (metas/end excl.)
  std::size_t orphans = 0;  ///< delivers whose cause send never appeared
  std::size_t skipped_lines = 0;  ///< unparseable lines (torn tails, junk)
  bool complete = false;     ///< every process wrote end{complete:1}
  bool reevaluated = false;  ///< global monitors re-ran over the merge
  std::uint64_t violations = 0;  ///< global verdict (re-run when complete,
                                 ///< surviving local lines otherwise)
  std::map<std::string, std::uint64_t> violations_by_monitor;
  /// Thm 5.19 per-party tallies from the re-run (index = PartyId; empty
  /// when not re-evaluated).
  std::vector<std::uint64_t> sent_msgs;
  std::vector<std::uint64_t> sent_bytes;
  /// Nonempty = merge failed; everything else is unspecified then.
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Stitches per-process traces (see above). `paths` order is irrelevant.
[[nodiscard]] MergeResult merge_traces(const std::vector<std::string>& paths);

}  // namespace hydra::obs
