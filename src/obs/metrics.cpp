#include "obs/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace hydra::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  HYDRA_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bucket bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  const std::lock_guard lock(mutex_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += 1;
  sum_ += x;
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard lock(mutex_);
  return Snapshot{bounds_, counts_, count_, sum_, min_, max_};
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::span<const double> bounds) {
  const std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(std::vector<double>(
                                             bounds.begin(), bounds.end())))
             .first;
  }
  return *it->second;
}

void Registry::reset() {
  const std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string Registry::to_json() const {
  const std::lock_guard lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g->value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    const auto snap = h->snapshot();
    w.key(name);
    w.begin_object();
    w.key("bounds");
    w.begin_array();
    for (const double b : snap.bounds) w.value(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (const auto c : snap.counts) w.value(c);
    w.end_array();
    w.kv("count", snap.count);
    w.kv("sum", snap.sum);
    w.kv("min", snap.min);
    w.kv("max", snap.max);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace hydra::obs
