// Per-run observability context.
//
// Every piece of formerly process-global run state — the metrics registry,
// the trace sink, the enabled flag, and the safe-area fallback counter —
// can be bundled into a Context and installed *per thread* with
// ScopedContext. Instrumentation sites read through the accessors below
// (obs::enabled(), obs::registry(), obs::trace()), which resolve to the
// installed context when one is present and to the legacy process-wide
// state otherwise. That keeps single-run CLI/test code working unchanged
// (Registry::global() remains the default shim) while letting the parallel
// sweep engine (harness/sweep.hpp) execute many runs concurrently, each
// with fully isolated state.
//
// Threading contract: a Context is installed on one thread at a time via
// ScopedContext; code that fans work out to helper threads (e.g.
// transport::ThreadNetwork) re-installs the creating thread's context on
// each helper. Context fields other than the atomic counters are written
// only before installation.
#pragma once

#include <atomic>
#include <cstdint>

namespace hydra::obs {

class Registry;
class TraceSink;
class MonitorHost;
class Profiler;
class StatsPublisher;

struct Context {
  Registry* registry = nullptr;     ///< per-run registry; nullptr = global
  TraceSink* trace_sink = nullptr;  ///< per-run trace sink; may be null
  MonitorHost* monitors = nullptr;  ///< per-run invariant monitors; may be null
  Profiler* profiler = nullptr;     ///< per-run phase profiler; may be null
  /// Live telemetry heartbeat publisher (obs/stats.hpp); may be null. Not on
  /// any hot path: backends look it up once at run start to register their
  /// snapshot provider, so the disabled cost is zero.
  StatsPublisher* stats = nullptr;
  bool enabled = false;             ///< per-run master switch
  /// Safe-area numerical fallbacks during this run. Counted even when
  /// `enabled` is false (it is a correctness diagnostic, not a metric).
  std::atomic<std::uint64_t> safe_area_fallbacks{0};
};

namespace detail {
inline thread_local Context* t_context = nullptr;

/// The *effective* enabled state for this thread — a cache of
/// `t_context ? t_context->enabled : <process-wide flag>`, maintained by
/// ScopedContext and set_enabled(). Folding both sources into one
/// thread-local byte keeps obs::enabled() a single load; the disabled hot
/// path is guarded by bench_obs_overhead (< 2% over uninstrumented).
inline thread_local bool t_enabled = false;

/// Legacy process-wide enabled flag, used when no context is installed.
inline std::atomic<bool>& enabled_ref() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

/// Legacy process-wide fallback counter (no context installed).
inline std::atomic<std::uint64_t>& global_fallbacks_ref() noexcept {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// The profiler active on this thread — a cache of
/// `t_context ? t_context->profiler : <process-wide slot>`, maintained by
/// ScopedContext and set_profiler() exactly like t_enabled, so
/// obs::prof_enabled() is one thread-local load (obs/prof.hpp).
inline thread_local Profiler* t_profiler = nullptr;

/// Process-wide fallback profiler (no context installed).
inline std::atomic<Profiler*>& global_profiler_ref() noexcept {
  static std::atomic<Profiler*> prof{nullptr};
  return prof;
}
}  // namespace detail

/// The context installed on the current thread, or nullptr.
[[nodiscard]] inline Context* current_context() noexcept {
  return detail::t_context;
}

/// Master switch. All instrumentation sites branch on this flag; when false
/// they execute nothing else. With a context installed this is the context's
/// enabled bool; otherwise the process-wide flag.
[[nodiscard]] inline bool enabled() noexcept { return detail::t_enabled; }

/// Sets the *process-wide* flag (contexts carry their own). Kept for
/// single-run and ad-hoc use; the harness installs contexts instead. The
/// change is visible immediately on the calling thread and on any thread
/// that subsequently installs a ScopedContext (transport::ThreadNetwork
/// workers do); it is not broadcast to other already-running threads.
inline void set_enabled(bool on) noexcept {
  detail::enabled_ref().store(on, std::memory_order_relaxed);
  const Context* ctx = detail::t_context;
  detail::t_enabled = ctx != nullptr ? ctx->enabled : on;
}

/// The invariant-monitor host for the current run, or nullptr. Monitors are
/// strictly context-scoped — there is no process-wide fallback — so ad-hoc
/// global-state code never pays for them.
[[nodiscard]] inline MonitorHost* monitors() noexcept {
  const Context* ctx = detail::t_context;
  return ctx != nullptr ? ctx->monitors : nullptr;
}

/// The live-telemetry publisher for the current run, or nullptr. Strictly
/// context-scoped, like monitors(); consulted once per run, never per event.
[[nodiscard]] inline StatsPublisher* stats() noexcept {
  const Context* ctx = detail::t_context;
  return ctx != nullptr ? ctx->stats : nullptr;
}

/// True when a phase profiler is installed on this thread — a single
/// thread-local load, same cost class as obs::enabled(). Instrumented
/// scopes (HYDRA_PROF_SCOPE, obs/prof.hpp) check this themselves.
[[nodiscard]] inline bool prof_enabled() noexcept {
  return detail::t_profiler != nullptr;
}

/// The profiler active on this thread, or nullptr.
[[nodiscard]] inline Profiler* profiler() noexcept { return detail::t_profiler; }

/// Installs the *process-wide* fallback profiler (contexts carry their own;
/// the harness wires per-run profilers through Context::profiler). Refreshes
/// this thread's cache immediately; other threads pick the change up when
/// they next install a ScopedContext. Pass nullptr to uninstall.
inline void set_profiler(Profiler* prof) noexcept {
  detail::global_profiler_ref().store(prof, std::memory_order_relaxed);
  const Context* ctx = detail::t_context;
  detail::t_profiler = ctx != nullptr ? ctx->profiler : prof;
}

/// The run-scoped safe-area fallback counter: the installed context's slot,
/// or the process-wide one.
[[nodiscard]] inline std::atomic<std::uint64_t>& safe_area_fallback_slot() noexcept {
  Context* ctx = detail::t_context;
  return ctx != nullptr ? ctx->safe_area_fallbacks : detail::global_fallbacks_ref();
}

/// Installs `ctx` on this thread for the enclosing scope (nullptr =
/// temporarily restore the legacy global state). Restores the previously
/// installed context on destruction.
class ScopedContext {
 public:
  explicit ScopedContext(Context* ctx) noexcept
      : prev_(detail::t_context),
        prev_enabled_(detail::t_enabled),
        prev_profiler_(detail::t_profiler) {
    detail::t_context = ctx;
    detail::t_enabled = ctx != nullptr
                            ? ctx->enabled
                            : detail::enabled_ref().load(std::memory_order_relaxed);
    detail::t_profiler =
        ctx != nullptr
            ? ctx->profiler
            : detail::global_profiler_ref().load(std::memory_order_relaxed);
  }
  ~ScopedContext() {
    detail::t_context = prev_;
    detail::t_enabled = prev_enabled_;
    detail::t_profiler = prev_profiler_;
  }

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Context* prev_;
  bool prev_enabled_;
  Profiler* prev_profiler_;
};

}  // namespace hydra::obs
