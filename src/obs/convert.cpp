#include "obs/convert.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "obs/flatjson.hpp"
#include "obs/json.hpp"

namespace hydra::obs {
namespace {

using flatjson::num;
using flatjson::parse_flat_object;
using flatjson::str;

/// Emits the shared prefix of one traceEvents entry.
void event_header(JsonWriter& w, std::string_view name, std::string_view ph,
                  std::int64_t ts, std::int64_t tid) {
  w.begin_object();
  w.kv("name", name);
  w.kv("ph", ph);
  w.kv("ts", ts);
  w.kv("pid", 0);
  w.kv("tid", tid);
}

}  // namespace

std::size_t chrome_trace_from_jsonl(std::istream& in, std::ostream& out) {
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  std::size_t converted = 0;
  std::set<std::int64_t> tids;
  std::string line;
  while (std::getline(in, line)) {
    const auto kv = parse_flat_object(line);
    const std::string ev = str(kv, "ev");
    if (ev.empty()) continue;
    const std::int64_t t = num(kv, "t");

    if (ev == "send" || ev == "deliver") {
      const std::int64_t tid = ev == "send" ? num(kv, "from") : num(kv, "to");
      tids.insert(tid);
      const std::string name = ev + " tag" + str(kv, "tag") + " k" + str(kv, "kind");
      event_header(w, name, "i", t, tid);
      w.kv("s", "t");
      w.key("args");
      w.begin_object();
      w.kv("from", num(kv, "from"));
      w.kv("to", num(kv, "to"));
      w.kv("tag", num(kv, "tag"));
      w.kv("a", num(kv, "a"));
      w.kv("b", num(kv, "b"));
      w.kv("kind", num(kv, "kind"));
      w.kv("bytes", num(kv, "bytes"));
      w.end_object();
      w.end_object();
    } else if (ev == "state") {
      const std::int64_t tid = num(kv, "party");
      tids.insert(tid);
      event_header(w, str(kv, "layer") + ":" + str(kv, "what"), "i", t, tid);
      w.kv("s", "t");
      w.key("args");
      w.begin_object();
      w.kv("a", num(kv, "a"));
      w.kv("b", num(kv, "b"));
      w.end_object();
      w.end_object();
    } else if (ev == "round_start" || ev == "round_end") {
      const std::int64_t tid = num(kv, "party");
      tids.insert(tid);
      event_header(w, "it " + str(kv, "it"), ev == "round_start" ? "B" : "E", t, tid);
      w.key("args");
      w.begin_object();
      w.kv("it", num(kv, "it"));
      w.end_object();
      w.end_object();
    } else if (ev == "scalar") {
      const std::int64_t tid = num(kv, "party");
      tids.insert(tid);
      const std::string name = str(kv, "name") + " p" + str(kv, "party");
      event_header(w, name, "C", t, tid);
      w.key("args");
      w.begin_object();
      const auto it = kv.find("value");
      w.kv("value", it == kv.end() ? 0.0 : std::strtod(it->second.c_str(), nullptr));
      w.end_object();
      w.end_object();
    } else if (ev == "invariant.violation") {
      const std::int64_t tid = num(kv, "party");
      tids.insert(tid);
      event_header(w, "VIOLATION " + str(kv, "monitor"), "i", t, tid);
      w.kv("s", "g");  // global scope: violations should jump out in the UI
      w.key("args");
      w.begin_object();
      w.kv("monitor", str(kv, "monitor"));
      w.kv("it", num(kv, "it"));
      w.kv("cause", num(kv, "cause"));
      w.kv("detail", str(kv, "detail"));
      w.end_object();
      w.end_object();
    } else if (ev == "log") {
      event_header(w, "log", "i", t, -1);
      w.kv("s", "g");
      w.key("args");
      w.begin_object();
      w.kv("level", num(kv, "level"));
      w.kv("msg", str(kv, "msg"));
      w.end_object();
      w.end_object();
    } else {
      continue;  // unknown event type (schema grew): skip, stay compatible
    }
    ++converted;
  }

  // Name the per-party thread tracks.
  for (const auto tid : tids) {
    event_header(w, "thread_name", "M", 0, tid);
    w.key("args");
    w.begin_object();
    w.kv("name", "party " + std::to_string(tid));
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  const std::string doc = w.take();
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  return converted;
}

}  // namespace hydra::obs
