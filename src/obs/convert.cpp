#include "obs/convert.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace hydra::obs {
namespace {

/// Parses one flat JSON object ({"k":v,...}, string or numeric values) into
/// a key -> raw-value map. This is a reader for *our own* trace output, not
/// a general JSON parser; on any structural surprise it returns an empty
/// map and the caller skips the line.
std::map<std::string, std::string> parse_flat_object(std::string_view line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto parse_string = [&](std::string& into) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        switch (line[i]) {
          case 'n': into.push_back('\n'); break;
          case 'r': into.push_back('\r'); break;
          case 't': into.push_back('\t'); break;
          case 'u':
            // \u00XX from the writer's control-character escapes; keep as-is.
            if (i + 4 < line.size()) {
              into.append("\\u").append(line.substr(i + 1, 4));
              i += 4;
            }
            break;
          default: into.push_back(line[i]);
        }
      } else {
        into.push_back(line[i]);
      }
      ++i;
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return {};
  ++i;
  while (true) {
    skip_ws();
    if (i < line.size() && line[i] == '}') break;
    std::string key;
    if (!parse_string(key)) return {};
    skip_ws();
    if (i >= line.size() || line[i] != ':') return {};
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(value)) return {};
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        value.push_back(line[i]);
        ++i;
      }
    }
    out.emplace(std::move(key), std::move(value));
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  return out;
}

std::int64_t num(const std::map<std::string, std::string>& kv, const char* key) {
  const auto it = kv.find(key);
  return it == kv.end() ? 0 : std::strtoll(it->second.c_str(), nullptr, 10);
}

std::string str(const std::map<std::string, std::string>& kv, const char* key) {
  const auto it = kv.find(key);
  return it == kv.end() ? std::string{} : it->second;
}

/// Emits the shared prefix of one traceEvents entry.
void event_header(JsonWriter& w, std::string_view name, std::string_view ph,
                  std::int64_t ts, std::int64_t tid) {
  w.begin_object();
  w.kv("name", name);
  w.kv("ph", ph);
  w.kv("ts", ts);
  w.kv("pid", 0);
  w.kv("tid", tid);
}

}  // namespace

std::size_t chrome_trace_from_jsonl(std::istream& in, std::ostream& out) {
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  std::size_t converted = 0;
  std::set<std::int64_t> tids;
  std::string line;
  while (std::getline(in, line)) {
    const auto kv = parse_flat_object(line);
    const std::string ev = str(kv, "ev");
    if (ev.empty()) continue;
    const std::int64_t t = num(kv, "t");

    if (ev == "send" || ev == "deliver") {
      const std::int64_t tid = ev == "send" ? num(kv, "from") : num(kv, "to");
      tids.insert(tid);
      const std::string name = ev + " tag" + str(kv, "tag") + " k" + str(kv, "kind");
      event_header(w, name, "i", t, tid);
      w.kv("s", "t");
      w.key("args");
      w.begin_object();
      w.kv("from", num(kv, "from"));
      w.kv("to", num(kv, "to"));
      w.kv("tag", num(kv, "tag"));
      w.kv("a", num(kv, "a"));
      w.kv("b", num(kv, "b"));
      w.kv("kind", num(kv, "kind"));
      w.kv("bytes", num(kv, "bytes"));
      w.end_object();
      w.end_object();
    } else if (ev == "state") {
      const std::int64_t tid = num(kv, "party");
      tids.insert(tid);
      event_header(w, str(kv, "layer") + ":" + str(kv, "what"), "i", t, tid);
      w.kv("s", "t");
      w.key("args");
      w.begin_object();
      w.kv("a", num(kv, "a"));
      w.kv("b", num(kv, "b"));
      w.end_object();
      w.end_object();
    } else if (ev == "round_start" || ev == "round_end") {
      const std::int64_t tid = num(kv, "party");
      tids.insert(tid);
      event_header(w, "it " + str(kv, "it"), ev == "round_start" ? "B" : "E", t, tid);
      w.key("args");
      w.begin_object();
      w.kv("it", num(kv, "it"));
      w.end_object();
      w.end_object();
    } else if (ev == "scalar") {
      const std::int64_t tid = num(kv, "party");
      tids.insert(tid);
      const std::string name = str(kv, "name") + " p" + str(kv, "party");
      event_header(w, name, "C", t, tid);
      w.key("args");
      w.begin_object();
      const auto it = kv.find("value");
      w.kv("value", it == kv.end() ? 0.0 : std::strtod(it->second.c_str(), nullptr));
      w.end_object();
      w.end_object();
    } else if (ev == "log") {
      event_header(w, "log", "i", t, -1);
      w.kv("s", "g");
      w.key("args");
      w.begin_object();
      w.kv("level", num(kv, "level"));
      w.kv("msg", str(kv, "msg"));
      w.end_object();
      w.end_object();
    } else {
      continue;  // unknown event type (schema grew): skip, stay compatible
    }
    ++converted;
  }

  // Name the per-party thread tracks.
  for (const auto tid : tids) {
    event_header(w, "thread_name", "M", 0, tid);
    w.key("args");
    w.begin_object();
    w.kv("name", "party " + std::to_string(tid));
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  const std::string doc = w.take();
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  return converted;
}

}  // namespace hydra::obs
