// Structured trace sink: typed protocol/network events as JSONL.
//
// One TraceSink owns one output file; each emitter writes a single
// self-contained JSON object per line (schema in docs/OBSERVABILITY.md).
// Events carry *virtual* time only — wall-clock never appears in a trace, so
// two runs with the same seed produce byte-identical files (asserted by
// tests/test_obs.cpp). tools/trace_convert turns a trace into the Chrome
// about://tracing (Perfetto) format.
//
// A process-wide sink can be installed with set_trace(); instrumentation
// sites fetch it with trace() and must additionally be guarded by
// obs::enabled() so the disabled path stays a single branch. Installing a
// sink also routes HYDRA_LOG output into the trace (see common/log.hpp).
//
// Thread safety: emitters serialize on an internal mutex (the thread
// transport writes from many party threads). Under the single-threaded
// simulator the lock is uncontended.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace hydra::obs {

class TraceSink {
 public:
  /// Opens `path` for writing (truncates). Check ok() before relying on it.
  explicit TraceSink(const std::string& path);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }

  /// Stable trace identity of this process, stamped as `"proc":N` into every
  /// event. 0 (the default) suppresses the key entirely, so single-process
  /// traces keep the historical byte-identical schema. Multi-process runs use
  /// 1 + min(local parties), which is unique because the party sets of the
  /// serve/join processes are disjoint. Set before the first event.
  void set_proc(std::uint32_t proc) noexcept { proc_ = proc; }
  [[nodiscard]] std::uint32_t proc() const noexcept { return proc_; }

  // -- network layer -------------------------------------------------------

  /// A message handed to the network at virtual time `t`. `id` is the
  /// transport-assigned send-event id (unique per run, 1-based; 0 = the
  /// transport does not assign ids).
  void message_send(Time t, PartyId from, PartyId to, std::uint32_t tag,
                    std::uint32_t a, std::uint32_t b, std::uint8_t kind,
                    std::size_t bytes, std::uint64_t id);
  /// A message delivered to `to` at virtual time `t`. `cause` is the id of
  /// the originating `send` event (its causal parent; 0 = unknown).
  void message_deliver(Time t, PartyId from, PartyId to, std::uint32_t tag,
                       std::uint32_t a, std::uint32_t b, std::uint8_t kind,
                       std::size_t bytes, std::uint64_t cause);

  // -- protocol layer ------------------------------------------------------

  /// A sub-protocol state transition, e.g. layer="rbc", what="echo".
  /// (a, b) are the InstanceKey coordinates of the affected instance.
  void state(Time t, PartyId party, std::string_view layer, std::string_view what,
             std::uint32_t a, std::uint32_t b);

  /// ΠAA iteration boundaries for party-local rounds.
  void round_start(Time t, PartyId party, std::uint32_t iteration);
  void round_end(Time t, PartyId party, std::uint32_t iteration);

  /// A named numeric observation (estimates, diameters, ...). Rendered as a
  /// Chrome counter track by trace_convert.
  void scalar(Time t, PartyId party, std::string_view name, double value);

  /// An invariant monitor detected a violation (obs/monitor.hpp). `cause` is
  /// the send-event id of the message that triggered the check (0 = none).
  void violation(Time t, PartyId party, std::string_view monitor,
                 std::uint32_t iteration, std::uint64_t cause,
                 std::string_view detail);

  /// A fault-injection event (src/faults/): emitted as "fault.<what>" —
  /// per-message drop/dup (party/peer = from/to, `cause` = the dropped or
  /// duplicated send's event id) and scheduled crash/recover/partition/heal
  /// timeline entries (peer = -1). Negative ids and cause 0 are omitted
  /// from the JSON line.
  void fault(Time t, std::string_view what, std::int64_t party, std::int64_t peer,
             std::uint64_t cause, std::string_view detail);

  // -- run metadata (cross-process merge substrate) ------------------------

  /// Splices one pre-built JSON object as its own trace line. Used by the
  /// harness for the `meta` header event (run spec + monitor config), whose
  /// field set is owned by the caller. `json_object` must be a complete
  /// `{...}` object on one line; the proc tag is NOT auto-stamped (the caller
  /// includes it where it belongs in the meta schema).
  void raw_line(const std::string& json_object);

  /// A party's protocol input vector (emitted once per LOCAL party at run
  /// start). Carries exact %.17g coordinates so a merged trace can rebuild
  /// the global honest-input set bit-for-bit for post-hoc validity checks.
  void input(Time t, PartyId party, bool honest, std::span<const double> v);

  /// Clean end-of-trace marker: the run completed and the sink was finalized
  /// (a killed process never writes one, which the merge tool uses to decide
  /// whether finalize-time monitors may run). `quiescent` additionally
  /// asserts the event queue drained — only then may the merged re-run judge
  /// ΠrBC totality (socket runs stop when every party decided and may
  /// legally leave echoes in flight).
  void end(bool complete, bool quiescent);

  // -- monitor-observed protocol values (post-hoc re-evaluation) -----------

  /// A value accepted into a monitor layer (v0 = input estimate, vk = the
  /// iteration-k estimate). Exact coordinates; `cause` as in violation().
  void value(Time t, PartyId party, std::uint32_t iteration,
             std::span<const double> v, std::uint64_t cause);

  /// An RBC delivery digest: fnv1a-64 over the delivered payload, keyed by
  /// the broadcast instance. Lets the merge re-check cross-process RBC
  /// consistency without re-shipping payload bytes.
  void rbc(Time t, PartyId party, std::uint32_t tag, std::uint32_t a,
           std::uint32_t b, std::uint64_t hash, std::uint64_t cause);

  /// An oBC output set: the (party, value) pairs a party adopted in
  /// iteration `it`. Exact coordinates for bitwise consistency/overlap
  /// re-checks across processes.
  void obc(Time t, PartyId party, std::uint32_t iteration,
           std::span<const std::pair<std::uint64_t, std::vector<double>>> pairs,
           std::uint64_t cause);

  // -- logging -------------------------------------------------------------

  /// A HYDRA_LOG line routed into the trace (level as in hydra::LogLevel).
  void log(int level, std::string_view msg);

  void flush();

 private:
  void write_line(const std::string& line);

  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::uint32_t proc_ = 0;
  bool write_failed_ = false;  ///< one-shot: first short write reports, rest drop
};

/// Installs (or, with nullptr, uninstalls) the process-wide sink and hooks
/// the logger into it. The sink must outlive its installation. Per-run code
/// should prefer an obs::Context (context.hpp) over this global.
void set_trace(TraceSink* sink) noexcept;

/// The sink the current thread should emit to: the installed obs::Context's
/// sink when a context is present (possibly nullptr — contexts never fall
/// through to the global sink), the process-wide sink otherwise.
[[nodiscard]] TraceSink* trace() noexcept;

/// Routes HYDRA_LOG lines into whatever sink trace() resolves to at emit
/// time. Idempotent; set_trace() installs it automatically, per-run
/// sessions with a context-held sink call it explicitly.
void install_log_hook() noexcept;

// -- crash-safe sink registry ----------------------------------------------
//
// Every observability sink (trace, stats) registers its FILE* here while
// open. flush_all_sinks() is the SIGTERM/SIGINT path of `hydra serve`/`join`:
// it fflushes every registered stream so a killed process leaves valid,
// merge-able JSONL behind. Sinks are additionally line-buffered, so complete
// lines reach the kernel as they are written and the flush is belt-and-
// braces; a line that was mid-compose at kill time is simply absent (never
// torn), which the merge tool tolerates.

/// Registers `f` for flush-on-shutdown. No-op when f is null or the fixed
/// slot table (capacity 16) is full.
void register_flush_target(std::FILE* f) noexcept;
void unregister_flush_target(std::FILE* f) noexcept;

/// Flushes every registered sink stream. Tolerant of being called from a
/// signal handler: the slot table is lock-free atomics. (fflush itself is
/// not async-signal-safe by the letter of POSIX; with line-buffered sinks it
/// is almost always a no-op by the time a signal lands.)
void flush_all_sinks() noexcept;

}  // namespace hydra::obs
