// Structured trace sink: typed protocol/network events as JSONL.
//
// One TraceSink owns one output file; each emitter writes a single
// self-contained JSON object per line (schema in docs/OBSERVABILITY.md).
// Events carry *virtual* time only — wall-clock never appears in a trace, so
// two runs with the same seed produce byte-identical files (asserted by
// tests/test_obs.cpp). tools/trace_convert turns a trace into the Chrome
// about://tracing (Perfetto) format.
//
// A process-wide sink can be installed with set_trace(); instrumentation
// sites fetch it with trace() and must additionally be guarded by
// obs::enabled() so the disabled path stays a single branch. Installing a
// sink also routes HYDRA_LOG output into the trace (see common/log.hpp).
//
// Thread safety: emitters serialize on an internal mutex (the thread
// transport writes from many party threads). Under the single-threaded
// simulator the lock is uncontended.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace hydra::obs {

class TraceSink {
 public:
  /// Opens `path` for writing (truncates). Check ok() before relying on it.
  explicit TraceSink(const std::string& path);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }

  // -- network layer -------------------------------------------------------

  /// A message handed to the network at virtual time `t`. `id` is the
  /// transport-assigned send-event id (unique per run, 1-based; 0 = the
  /// transport does not assign ids).
  void message_send(Time t, PartyId from, PartyId to, std::uint32_t tag,
                    std::uint32_t a, std::uint32_t b, std::uint8_t kind,
                    std::size_t bytes, std::uint64_t id);
  /// A message delivered to `to` at virtual time `t`. `cause` is the id of
  /// the originating `send` event (its causal parent; 0 = unknown).
  void message_deliver(Time t, PartyId from, PartyId to, std::uint32_t tag,
                       std::uint32_t a, std::uint32_t b, std::uint8_t kind,
                       std::size_t bytes, std::uint64_t cause);

  // -- protocol layer ------------------------------------------------------

  /// A sub-protocol state transition, e.g. layer="rbc", what="echo".
  /// (a, b) are the InstanceKey coordinates of the affected instance.
  void state(Time t, PartyId party, std::string_view layer, std::string_view what,
             std::uint32_t a, std::uint32_t b);

  /// ΠAA iteration boundaries for party-local rounds.
  void round_start(Time t, PartyId party, std::uint32_t iteration);
  void round_end(Time t, PartyId party, std::uint32_t iteration);

  /// A named numeric observation (estimates, diameters, ...). Rendered as a
  /// Chrome counter track by trace_convert.
  void scalar(Time t, PartyId party, std::string_view name, double value);

  /// An invariant monitor detected a violation (obs/monitor.hpp). `cause` is
  /// the send-event id of the message that triggered the check (0 = none).
  void violation(Time t, PartyId party, std::string_view monitor,
                 std::uint32_t iteration, std::uint64_t cause,
                 std::string_view detail);

  /// A fault-injection event (src/faults/): emitted as "fault.<what>" —
  /// per-message drop/dup (party/peer = from/to, `cause` = the dropped or
  /// duplicated send's event id) and scheduled crash/recover/partition/heal
  /// timeline entries (peer = -1). Negative ids and cause 0 are omitted
  /// from the JSON line.
  void fault(Time t, std::string_view what, std::int64_t party, std::int64_t peer,
             std::uint64_t cause, std::string_view detail);

  // -- logging -------------------------------------------------------------

  /// A HYDRA_LOG line routed into the trace (level as in hydra::LogLevel).
  void log(int level, std::string_view msg);

  void flush();

 private:
  void write_line(const std::string& line);

  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

/// Installs (or, with nullptr, uninstalls) the process-wide sink and hooks
/// the logger into it. The sink must outlive its installation. Per-run code
/// should prefer an obs::Context (context.hpp) over this global.
void set_trace(TraceSink* sink) noexcept;

/// The sink the current thread should emit to: the installed obs::Context's
/// sink when a context is present (possibly nullptr — contexts never fall
/// through to the global sink), the process-wide sink otherwise.
[[nodiscard]] TraceSink* trace() noexcept;

/// Routes HYDRA_LOG lines into whatever sink trace() resolves to at emit
/// time. Idempotent; set_trace() installs it automatically, per-run
/// sessions with a context-held sink call it explicitly.
void install_log_hook() noexcept;

}  // namespace hydra::obs
