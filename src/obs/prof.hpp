// Hierarchical scoped-phase profiler.
//
// A Profiler rides in the run's obs::Context exactly like the metrics
// registry: installed thread-locally (ScopedContext propagates it to
// transport::ThreadNetwork workers along with the rest of the context), with
// a process-wide fallback slot (set_profiler) for ad-hoc bench/test use.
// Instrumentation sites drop an RAII scope:
//
//   void ConvexPolygon2D::intersect(...) {
//     HYDRA_PROF_SCOPE("geo.clip");
//     ...
//   }
//
// and the profiler aggregates, per phase NAME (nesting affects only the
// self/total split, never the key):
//   - count        how many times the scope ran,
//   - total_ns     wall time inside the scope, children included,
//   - self_ns      total minus time spent in nested scopes (child-exclusive),
//   - min/max and a compact log2-bucket latency histogram, from which the
//     reporting layer (obs/perf_report.hpp, harness::Stats::summary())
//     derives approximate percentiles.
//
// Cost model, in line with the rest of the observability layer
// (bench_obs_overhead holds the combined disabled path under 2%):
//   - disabled (no profiler installed): the scope constructor is one
//     thread-local load and a branch — obs::prof_enabled() is that same
//     single load — and the destructor one member load and a branch.
//     Nothing else executes; no name lookup, no clock read. Hot paths that
//     are gated by the overhead bench additionally keep their scopes inside
//     existing obs::enabled() branches so the lean path is UNCHANGED.
//   - enabled: two steady_clock reads, one mutex-guarded name lookup, then
//     relaxed-atomic accumulation. Safe under the threads backend: phases
//     are keyed in a mutex-protected map (node-stable, like the registry)
//     and all counters are relaxed atomics — aggregation needs no ordering,
//     only eventual consistency at the post-join snapshot.
//
// Determinism contract: phase COUNTS are a pure function of the event
// schedule (byte-deterministic per (spec, seed) on the simulator); the
// nanosecond fields are wall clock and vary run to run. Profiler output
// therefore lives ONLY in the perf JSON side-channel (RunSpec::perf_out) —
// never in traces or the metrics registry — so golden traces and metrics
// files stay byte-identical per seed.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.hpp"

namespace hydra::obs {

class Profiler {
 public:
  /// Log2 latency buckets: bucket i counts samples with
  /// 2^(i-1) <= ns < 2^i (bucket 0 is [0,1) ns); the last bucket absorbs
  /// everything >= 2^(kBuckets-2) ns (~9 minutes).
  static constexpr std::size_t kBuckets = 40;

  /// Per-phase accumulator. Relaxed atomics throughout: concurrent worker
  /// threads (threads backend) aggregate without ordering; readers snapshot
  /// after the workers join.
  struct PhaseStats {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> self_ns{0};
    std::atomic<std::uint64_t> min_ns{UINT64_MAX};
    std::atomic<std::uint64_t> max_ns{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};

    void record(std::uint64_t ns, std::uint64_t self) noexcept {
      count.fetch_add(1, std::memory_order_relaxed);
      total_ns.fetch_add(ns, std::memory_order_relaxed);
      self_ns.fetch_add(self, std::memory_order_relaxed);
      // CAS loops for the extrema; contention is rare (same phase, same
      // instant, new extreme) and bounded.
      std::uint64_t seen = min_ns.load(std::memory_order_relaxed);
      while (ns < seen &&
             !min_ns.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
      }
      seen = max_ns.load(std::memory_order_relaxed);
      while (ns > seen &&
             !max_ns.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
      }
      buckets[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    }

    [[nodiscard]] static std::size_t bucket_of(std::uint64_t ns) noexcept {
      const auto b = static_cast<std::size_t>(std::bit_width(ns));
      return b < kBuckets ? b : kBuckets - 1;
    }
  };

  /// Plain-value copy of one phase, for reporting.
  struct Snapshot {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::uint64_t min_ns = 0;  ///< meaningful only when count > 0
    std::uint64_t max_ns = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };

  /// Find-or-create; the reference is stable until reset() (node-stable map,
  /// same contract as Registry). Inline — together with ProfScope below this
  /// keeps the whole recording path header-only, so layers BELOW hydra_obs
  /// (the geometry kernels) can instrument themselves by include alone,
  /// without a link dependency back up to hydra_obs.
  PhaseStats& phase(std::string_view name) {
    const std::lock_guard lock(mutex_);
    auto it = phases_.find(name);
    if (it == phases_.end()) {
      it = phases_.emplace(std::string(name), std::make_unique<PhaseStats>()).first;
    }
    return *it->second;
  }

  /// All phases, sorted by name (deterministic order).
  [[nodiscard]] std::vector<Snapshot> snapshot() const;

  /// Drops every phase. Never call concurrently with instrumentation.
  void reset();

  /// {"phases":{name:{"count":...,"total_ns":...,"self_ns":...,
  /// "min_ns":...,"max_ns":...,"buckets":[...]}}} — buckets are
  /// trailing-zero-trimmed log2 counts.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<PhaseStats>, std::less<>> phases_;
};

namespace detail {
/// Innermost live scope on this thread; scopes form an intrusive stack so a
/// closing scope can charge its elapsed time to its parent's child total.
class ProfScope;
inline thread_local ProfScope* t_prof_top = nullptr;

class ProfScope {
 public:
  // The enabled paths live in noinline+cold helpers: what a site inlines is
  // one TLS load + branch (ctor) and one member load + branch (dtor),
  // nothing more, and the out-of-line bodies land in .text.unlikely, away
  // from the hot code. Inlining the full record path (clock reads, the
  // mutex-guarded phase lookup) at all ~27 instrumentation sites pushes hot
  // functions — the per-event simulator dispatch above all — past the
  // inliner threshold, and even out-of-line enabled-path code placed next
  // to a hot loop costs i-cache; bench_obs_overhead gates both effects.
  explicit ProfScope(const char* name) noexcept : prof_(t_profiler) {
    if (prof_ == nullptr) return;  // disabled path: one TLS load + branch
    enter(name);
  }

  ~ProfScope() {
    if (prof_ == nullptr) return;  // disabled path: one member load + branch
    leave();
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline, cold))
#endif
  void enter(const char* name) noexcept {
    name_ = name;
    parent_ = t_prof_top;
    t_prof_top = this;
    start_ = std::chrono::steady_clock::now();
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline, cold))
#endif
  void leave() noexcept {
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    t_prof_top = parent_;
    if (parent_ != nullptr) parent_->child_ns_ += ns;
    // Self time never goes negative even if a child's clock pair straddled
    // a bigger interval than ours (non-monotone TSC migration paranoia).
    prof_->phase(name_).record(ns, ns >= child_ns_ ? ns - child_ns_ : 0);
  }

  Profiler* prof_;
  const char* name_ = nullptr;
  ProfScope* parent_ = nullptr;
  std::uint64_t child_ns_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace detail

}  // namespace hydra::obs

// Token pasting through two levels so __LINE__ expands first.
#define HYDRA_PROF_CONCAT_IMPL(a, b) a##b
#define HYDRA_PROF_CONCAT(a, b) HYDRA_PROF_CONCAT_IMPL(a, b)

/// Profiles the enclosing scope under `name` (a string literal; phases
/// aggregate by name). Near-free when no profiler is installed.
#define HYDRA_PROF_SCOPE(name)                                      \
  const ::hydra::obs::detail::ProfScope HYDRA_PROF_CONCAT(          \
      hydra_prof_scope_, __LINE__)(name)
