#include "obs/report.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "domain/domain.hpp"
#include "obs/flatjson.hpp"
#include "obs/monitor.hpp"

namespace hydra::obs {
namespace {

using flatjson::num;
using flatjson::parse_flat_object;
using flatjson::parse_object_arrays;
using flatjson::real;
using flatjson::str;
using flatjson::unum;

constexpr std::size_t kMaxViolationRows = 50;

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Extracts the *flat* sub-object stored under `key` in a metrics document
/// ("key":{...}) — including the braces — or "" when absent. Relies on our
/// own writer's output: sub-objects of interest contain no nested braces.
std::string extract_object(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":{";
  const auto at = doc.find(needle);
  if (at == std::string::npos) return {};
  const auto open = at + needle.size() - 1;
  const auto close = doc.find('}', open);
  if (close == std::string::npos) return {};
  return doc.substr(open, close - open + 1);
}

/// Parses the comma-separated non-negative integers of `"key":[...]` inside
/// `doc` (our own writer's output, so no whitespace surprises); empty when
/// the key is absent or the array is empty.
std::vector<std::uint64_t> parse_u64_array(const std::string& doc,
                                           const std::string& key) {
  const std::string needle = "\"" + key + "\":[";
  const auto at = doc.find(needle);
  if (at == std::string::npos) return {};
  std::vector<std::uint64_t> out;
  std::size_t i = at + needle.size();
  while (i < doc.size() && doc[i] != ']') {
    char* end = nullptr;
    const auto v = std::strtoull(doc.c_str() + i, &end, 10);
    if (end == doc.c_str() + i) break;
    out.push_back(v);
    i = static_cast<std::size_t>(end - doc.c_str());
    if (i < doc.size() && doc[i] == ',') ++i;
  }
  return out;
}

struct ViolationRow {
  std::int64_t t = 0;
  std::int64_t party = 0;
  std::string monitor;
  std::int64_t iteration = 0;
  std::int64_t cause = 0;
  std::string detail;
};

/// One "fault.<kind>" trace event (src/faults/): scheduled timeline entries
/// (crash/recover/partition/heal) and per-message drop/dup records.
struct FaultRow {
  std::int64_t t = 0;
  std::string kind;
  std::int64_t party = -1;  ///< from-party for drop/dup; -1 = whole network
  std::int64_t peer = -1;   ///< to-party for drop/dup
  std::int64_t cause = 0;   ///< send-event id for drop/dup
  std::string detail;
};

/// Everything the renderers need, accumulated in one pass over the trace.
struct TraceSummary {
  std::size_t events = 0;
  std::int64_t max_party = -1;
  std::int64_t end_time = 0;
  std::uint64_t sends = 0;
  std::uint64_t send_bytes = 0;
  std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t> send_matrix;
  std::map<std::int64_t, std::uint64_t> sent_msgs_by_party;
  std::map<std::int64_t, std::uint64_t> sent_bytes_by_party;
  std::map<std::int64_t, std::uint64_t> delivered_by_party;
  std::vector<std::pair<std::int64_t, double>> diameter_series;
  std::vector<ViolationRow> violations;
  std::uint64_t total_violations = 0;
  std::int64_t max_iteration = 0;
  /// Meta "domain" key; empty on Euclidean (and pre-domain-layer) traces.
  std::string domain;
  /// Latest per-party `value` event: party -> (iteration, coordinates).
  /// Collected only for non-Euclidean traces — value lines carry arrays, so
  /// Euclidean scans skip them exactly as they always did.
  std::map<std::int64_t, std::pair<std::int64_t, std::vector<double>>> last_values;
  std::vector<FaultRow> faults;
  std::uint64_t total_faults = 0;
  std::map<std::string, std::uint64_t> faults_by_kind;
};

TraceSummary scan_trace(std::istream& in) {
  TraceSummary s;
  std::string line;
  while (std::getline(in, line)) {
    const auto kv = parse_flat_object(line);
    const std::string ev = str(kv, "ev");
    if (ev.empty()) {
      // Array-carrying lines (the meta header, per-party `value` events)
      // fail the flat parse and were never part of the event count; scoop
      // the domain name and the running values out of them for the
      // domain-aware sections without disturbing that count.
      const auto akv = parse_object_arrays(line);
      const std::string aev = str(akv, "ev");
      if (aev == "meta" && s.domain.empty()) {
        s.domain = str(akv, "domain");
      } else if (aev == "value" && !s.domain.empty()) {
        s.last_values[num(akv, "party")] = {num(akv, "it"),
                                            flatjson::parse_reals(str(akv, "v"))};
      }
      continue;
    }
    ++s.events;
    s.end_time = std::max(s.end_time, num(kv, "t"));
    if (ev == "send") {
      const auto from = num(kv, "from");
      const auto to = num(kv, "to");
      s.max_party = std::max({s.max_party, from, to});
      s.sends += 1;
      const auto bytes = static_cast<std::uint64_t>(num(kv, "bytes"));
      s.send_bytes += bytes;
      s.send_matrix[{from, to}] += 1;
      // Per-party tallies count wire traffic only: self-sends stay visible
      // on the matrix diagonal but are excluded here so the complexity
      // section compares like with like against the (n-1)-fanout bound.
      if (from != to) {
        s.sent_msgs_by_party[from] += 1;
        s.sent_bytes_by_party[from] += bytes;
      }
    } else if (ev == "deliver") {
      const auto to = num(kv, "to");
      s.max_party = std::max({s.max_party, num(kv, "from"), to});
      s.delivered_by_party[to] += 1;
    } else if (ev == "scalar") {
      if (str(kv, "name") == "honest_diameter") {
        s.diameter_series.emplace_back(num(kv, "t"), real(kv, "value"));
      }
    } else if (ev == "round_end") {
      s.max_iteration = std::max(s.max_iteration, num(kv, "it"));
    } else if (ev == "value") {
      // A 1-D coordinate list ("v":[3]) has no comma, so it survives the
      // flat parse; multi-D value lines land in the ev.empty() branch above.
      if (!s.domain.empty()) {
        s.last_values[num(kv, "party")] = {num(kv, "it"),
                                           flatjson::parse_reals(str(kv, "v"))};
      }
    } else if (ev == "invariant.violation") {
      s.total_violations += 1;
      if (s.violations.size() < kMaxViolationRows) {
        s.violations.push_back(ViolationRow{num(kv, "t"), num(kv, "party"),
                                            str(kv, "monitor"), num(kv, "it"),
                                            num(kv, "cause"), str(kv, "detail")});
      }
    } else if (ev.rfind("fault.", 0) == 0) {
      s.total_faults += 1;
      s.faults_by_kind[ev.substr(6)] += 1;
      if (s.faults.size() < kMaxViolationRows) {
        FaultRow row;
        row.t = num(kv, "t");
        row.kind = ev.substr(6);
        row.party = kv.count("party") != 0U ? num(kv, "party") : -1;
        row.peer = kv.count("peer") != 0U ? num(kv, "peer") : -1;
        row.cause = num(kv, "cause");
        row.detail = str(kv, "detail");
        s.faults.push_back(std::move(row));
      }
    }
  }
  // Scheduled timeline entries are emitted up front with future timestamps;
  // per-message drops interleave in send order. Present one timeline.
  std::stable_sort(s.faults.begin(), s.faults.end(),
                   [](const FaultRow& a, const FaultRow& b) { return a.t < b.t; });
  return s;
}

// ---------------------------------------------------------------------------
// Renderers: one markdown, one single-file HTML, both driven by the same
// section/table/para calls so the report content cannot drift between them.

class Renderer {
 public:
  explicit Renderer(std::ostream& out) : out_(out) {}
  virtual ~Renderer() = default;
  virtual void begin(const std::string& title) = 0;
  virtual void section(const std::string& title) = 0;
  virtual void para(const std::string& text) = 0;
  virtual void table(const std::vector<std::string>& headers,
                     const std::vector<std::vector<std::string>>& rows) = 0;
  /// A (t, value) line chart; the markdown renderer falls back to a table.
  virtual void chart(const std::string& caption,
                     const std::vector<std::pair<std::int64_t, double>>& series) = 0;
  virtual void end() = 0;

 protected:
  std::ostream& out_;
};

class MarkdownRenderer final : public Renderer {
 public:
  using Renderer::Renderer;
  void begin(const std::string& title) override { out_ << "# " << title << "\n"; }
  void section(const std::string& title) override {
    out_ << "\n## " << title << "\n\n";
  }
  void para(const std::string& text) override { out_ << text << "\n"; }
  void table(const std::vector<std::string>& headers,
             const std::vector<std::vector<std::string>>& rows) override {
    out_ << "|";
    for (const auto& h : headers) out_ << " " << h << " |";
    out_ << "\n|";
    for (std::size_t i = 0; i < headers.size(); ++i) out_ << "---|";
    out_ << "\n";
    for (const auto& row : rows) {
      out_ << "|";
      for (const auto& cell : row) out_ << " " << cell << " |";
      out_ << "\n";
    }
  }
  void chart(const std::string& caption,
             const std::vector<std::pair<std::int64_t, double>>& series) override {
    para(caption);
    std::vector<std::vector<std::string>> rows;
    rows.reserve(series.size());
    for (const auto& [t, v] : series) {
      rows.push_back({std::to_string(t), fmt_double(v)});
    }
    table({"t", "value"}, rows);
  }
  void end() override {}
};

class HtmlRenderer final : public Renderer {
 public:
  using Renderer::Renderer;

  void begin(const std::string& title) override {
    out_ << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>"
         << esc(title) << "</title>\n<style>\n"
         << "body{font-family:system-ui,sans-serif;margin:2em;max-width:70em}\n"
         << "table{border-collapse:collapse;margin:0.5em 0}\n"
         << "td,th{border:1px solid #999;padding:2px 8px;font-size:90%}\n"
         << "th{background:#eee}\n"
         << "</style></head><body>\n<h1>" << esc(title) << "</h1>\n";
  }
  void section(const std::string& title) override {
    out_ << "<h2>" << esc(title) << "</h2>\n";
  }
  void para(const std::string& text) override {
    out_ << "<p>" << esc(text) << "</p>\n";
  }
  void table(const std::vector<std::string>& headers,
             const std::vector<std::vector<std::string>>& rows) override {
    out_ << "<table><tr>";
    for (const auto& h : headers) out_ << "<th>" << esc(h) << "</th>";
    out_ << "</tr>\n";
    for (const auto& row : rows) {
      out_ << "<tr>";
      for (const auto& cell : row) out_ << "<td>" << esc(cell) << "</td>";
      out_ << "</tr>\n";
    }
    out_ << "</table>\n";
  }
  void chart(const std::string& caption,
             const std::vector<std::pair<std::int64_t, double>>& series) override {
    para(caption);
    if (series.size() < 2) return;
    // Inline SVG polyline, y flipped (SVG grows downward), 10px padding.
    constexpr double kW = 640.0, kH = 240.0, kPad = 10.0;
    double tmin = 1e300, tmax = -1e300, vmin = 1e300, vmax = -1e300;
    for (const auto& [t, v] : series) {
      tmin = std::min(tmin, static_cast<double>(t));
      tmax = std::max(tmax, static_cast<double>(t));
      vmin = std::min(vmin, v);
      vmax = std::max(vmax, v);
    }
    const double tspan = tmax > tmin ? tmax - tmin : 1.0;
    const double vspan = vmax > vmin ? vmax - vmin : 1.0;
    out_ << "<svg width=\"" << kW << "\" height=\"" << kH
         << "\" style=\"border:1px solid #ccc\"><polyline fill=\"none\" "
            "stroke=\"#06c\" stroke-width=\"2\" points=\"";
    for (const auto& [t, v] : series) {
      const double x =
          kPad + (static_cast<double>(t) - tmin) / tspan * (kW - 2 * kPad);
      const double y = kH - kPad - (v - vmin) / vspan * (kH - 2 * kPad);
      out_ << fmt_double(x) << "," << fmt_double(y) << " ";
    }
    out_ << "\"/></svg>\n<p><small>y: " << fmt_double(vmin) << " … "
         << fmt_double(vmax) << ", x: " << tmin << " … " << tmax
         << " ticks</small></p>\n";
  }
  void end() override { out_ << "</body></html>\n"; }

 private:
  static std::string esc(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
      switch (c) {
        case '&': out += "&amp;"; break;
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        default: out.push_back(c);
      }
    }
    return out;
  }
};

void kv_table(Renderer& r, const std::map<std::string, std::string>& kv) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(kv.size());
  for (const auto& [k, v] : kv) rows.push_back({k, v});
  r.table({"key", "value"}, rows);
}

/// Nearest-rank percentile over a log2 histogram (bucket k covers
/// [2^k, 2^(k+1))), reported at the bucket's geometric midpoint — the same
/// approximation the phase-profile report uses, so the two read alike.
double bucket_percentile(const std::vector<std::uint64_t>& buckets, double q) {
  std::uint64_t total = 0;
  for (const auto b : buckets) total += b;
  if (total == 0) return 0.0;
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < buckets.size(); ++k) {
    seen += buckets[k];
    if (seen >= rank) {
      return static_cast<double>(std::uint64_t{1} << k) * 1.5;
    }
  }
  return 0.0;
}

}  // namespace

std::size_t render_report(std::istream& trace, const std::string& metrics_json,
                          const ReportOptions& options, std::ostream& out) {
  const TraceSummary s = scan_trace(trace);

  const auto spec = parse_flat_object(extract_object(metrics_json, "spec"));
  const auto verdict = parse_flat_object(extract_object(metrics_json, "verdict"));
  const auto monitor = parse_flat_object(extract_object(metrics_json, "monitor"));
  const auto totals = parse_flat_object(extract_object(metrics_json, "totals"));
  // The transport_health block carries histogram arrays, so it needs the
  // array-aware parser (the flat one bails on the first '[').
  const std::string health_doc = extract_object(metrics_json, "transport_health");
  const auto health = parse_object_arrays(health_doc);

  // The "progress" block (harness/runner.cpp) writes its scalars before its
  // numeric arrays, so truncating at the first array yields a flat object the
  // shared parser understands; the arrays get their own parser.
  const std::string progress_doc = extract_object(metrics_json, "progress");
  std::map<std::string, std::string> progress;
  if (!progress_doc.empty()) {
    const auto cut = progress_doc.find(":[");
    if (cut == std::string::npos) {
      progress = parse_flat_object(progress_doc);
    } else {
      const auto comma = progress_doc.rfind(',', cut);
      progress = parse_flat_object(progress_doc.substr(0, comma) + "}");
    }
  }
  const auto prog_finished = parse_u64_array(progress_doc, "finished");
  const auto prog_crashed = parse_u64_array(progress_doc, "crash_stopped");
  const auto prog_events = parse_u64_array(progress_doc, "events");
  const auto prog_last = parse_u64_array(progress_doc, "last_progress");

  MarkdownRenderer md(out);
  HtmlRenderer html(out);
  Renderer& r = options.format == ReportOptions::Format::kHtml
                    ? static_cast<Renderer&>(html)
                    : static_cast<Renderer&>(md);

  r.begin(options.title);
  r.para(std::to_string(s.events) + " trace events over " +
         std::to_string(s.end_time) + " virtual ticks, " +
         std::to_string(s.sends) + " sends (" + std::to_string(s.send_bytes) +
         " bytes), max iteration " + std::to_string(s.max_iteration) + ".");

  if (!spec.empty()) {
    r.section("Run spec");
    kv_table(r, spec);
  }
  if (!verdict.empty()) {
    r.section("Oracle verdict");
    kv_table(r, verdict);
  }

  if (s.total_faults > 0) {
    r.section("Fault timeline");
    std::string kinds;
    for (const auto& [kind, count] : s.faults_by_kind) {
      if (!kinds.empty()) kinds += ", ";
      kinds += kind + " ×" + std::to_string(count);
    }
    r.para(std::to_string(s.total_faults) +
           " injected fault event(s) (docs/ROBUSTNESS.md): " + kinds + ".");
    std::vector<std::vector<std::string>> rows;
    for (const auto& f : s.faults) {
      rows.push_back({std::to_string(f.t), f.kind,
                      f.party >= 0 ? std::to_string(f.party) : "-",
                      f.peer >= 0 ? std::to_string(f.peer) : "-",
                      f.cause != 0 ? std::to_string(f.cause) : "-", f.detail});
    }
    r.table({"t", "fault", "party", "peer", "cause", "detail"}, rows);
    if (s.total_faults > s.faults.size()) {
      r.para("(showing the first " + std::to_string(s.faults.size()) + " of " +
             std::to_string(s.total_faults) + ")");
    }
  }

  // Watchdog snapshot: present only for thread-backend runs (the simulator
  // reports no per-party progress — quiescence detection makes it moot).
  if (!prog_finished.empty()) {
    r.section("Party progress (thread backend)");
    std::string summary = "Backend '" + str(progress, "backend") + "', " +
                          str(progress, "wall_ms") + " ms wall clock";
    if (str(progress, "timed_out") == "true") {
      const std::string detail = str(progress, "timeout_detail");
      summary += " — TIMED OUT" + (detail.empty() ? "" : ": " + detail);
    }
    r.para(summary + ".");
    const auto at = [](const std::vector<std::uint64_t>& v, std::size_t id) {
      return id < v.size() ? v[id] : std::uint64_t{0};
    };
    std::vector<std::vector<std::string>> rows;
    for (std::size_t id = 0; id < prog_finished.size(); ++id) {
      rows.push_back({std::to_string(id), at(prog_finished, id) != 0 ? "yes" : "no",
                      at(prog_crashed, id) != 0 ? "yes" : "no",
                      std::to_string(at(prog_events, id)),
                      std::to_string(at(prog_last, id))});
    }
    r.table({"party", "finished", "crash-stopped", "events", "last progress (t)"},
            rows);
  }

  // Socket-link health: the hardened-ingress drop counters (totals block;
  // nonzero means a peer sent frames that failed authentication or decode)
  // plus the connection/frame/queue counters and latency histograms the
  // socket transport exports (metrics "transport_health", socket runs only).
  const std::uint64_t auth_dropped = unum(totals, "frames_auth_dropped");
  const std::uint64_t decode_dropped = unum(totals, "frames_decode_dropped");
  if (!health.empty() || auth_dropped != 0 || decode_dropped != 0) {
    r.section("Transport health (socket links)");
    r.para("Frames dropped by hardened ingress: " + std::to_string(auth_dropped) +
           " auth (sender identity mismatch), " + std::to_string(decode_dropped) +
           " decode (malformed/handshake reject)." +
           (auth_dropped + decode_dropped > 0
                ? " Nonzero drops on a healthy deployment indicate a"
                  " misbehaving or mismatched peer."
                : ""));
    if (!health.empty()) {
      r.table({"counter", "value"},
              {{"connect attempts", std::to_string(unum(health, "connect_attempts"))},
               {"connects", std::to_string(unum(health, "connects"))},
               {"accepts (bound at HELLO)", std::to_string(unum(health, "accepts"))},
               {"frames sent", std::to_string(unum(health, "frames_sent"))},
               {"writer flushes (coalesced)", std::to_string(unum(health, "flushes"))},
               {"frames received", std::to_string(unum(health, "frames_received"))},
               {"egress queue high-water", std::to_string(unum(health, "egress_hwm"))},
               {"mailbox high-water", std::to_string(unum(health, "mailbox_hwm"))}});
      const auto flush = parse_u64_array(health_doc, "flush_ns_buckets");
      const auto sizes = parse_u64_array(health_doc, "frame_bytes_buckets");
      std::vector<std::vector<std::string>> hist_rows;
      const auto hist_row = [&](const char* name,
                                const std::vector<std::uint64_t>& buckets,
                                const char* unit) {
        std::uint64_t count = 0;
        for (const auto b : buckets) count += b;
        if (count == 0) return;
        hist_rows.push_back({name, std::to_string(count),
                             fmt_double(bucket_percentile(buckets, 0.50)) + " " + unit,
                             fmt_double(bucket_percentile(buckets, 0.95)) + " " + unit,
                             fmt_double(bucket_percentile(buckets, 1.0)) + " " + unit});
      };
      hist_row("frame write latency", flush, "ns");
      hist_row("frame body size", sizes, "B");
      if (!hist_rows.empty()) {
        r.para("Log2-bucket approximations (geometric bucket midpoints):");
        r.table({"histogram", "samples", "~p50", "~p95", "~max"}, hist_rows);
      }
    }
  }

  r.section("Invariant violations");
  const std::uint64_t reported =
      monitor.count("violations") != 0U
          ? static_cast<std::uint64_t>(num(monitor, "violations"))
          : s.total_violations;
  if (reported == 0 && s.total_violations == 0) {
    r.para(monitor.empty() ? "No violation events in the trace (monitors may "
                             "not have been enabled for this run)."
                           : "No violations — all monitored invariants held "
                             "(mode: " + str(monitor, "mode") + ").");
  } else {
    r.para(std::to_string(std::max<std::uint64_t>(reported, s.total_violations)) +
           " violation(s)" +
           (str(monitor, "aborted") == "true" ? "; strict mode aborted the run."
                                              : "."));
    std::vector<std::vector<std::string>> rows;
    for (const auto& v : s.violations) {
      rows.push_back({std::to_string(v.t), std::to_string(v.party), v.monitor,
                      std::to_string(v.iteration), std::to_string(v.cause),
                      v.detail});
    }
    r.table({"t", "party", "monitor", "it", "cause", "detail"}, rows);
    if (s.total_violations > s.violations.size()) {
      r.para("(showing the first " + std::to_string(s.violations.size()) + " of " +
             std::to_string(s.total_violations) + ")");
    }
  }

  // Domain dispatch: a non-Euclidean trace names its value domain in the
  // meta header (and the metrics spec). Euclidean traces carry neither key,
  // so every rendering below falls through to the historical output.
  const std::string domain_name =
      !s.domain.empty() ? s.domain : str(spec, "domain");
  const hydra::domain::ValueDomain* dom =
      !domain_name.empty() && domain_name != "euclid"
          ? hydra::domain::find(domain_name)
          : nullptr;

  r.section("Convergence (honest diameter per iteration)");
  if (s.diameter_series.empty()) {
    r.para("No honest_diameter series in the trace.");
  } else if (dom != nullptr) {
    r.chart("Honest value diameter (graph distance, edge count) over virtual "
            "time — the path-midpoint rule contracts the geodesic hull by " +
                fmt_double(dom->contraction_factor()) +
                " per iteration (Fuchs et al., arXiv:2502.05591):",
            s.diameter_series);
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < s.diameter_series.size(); ++i) {
      const double d = s.diameter_series[i].second;
      const double prev = i > 0 ? s.diameter_series[i - 1].second : 0.0;
      rows.push_back({std::to_string(i), fmt_double(d),
                      i > 0 && prev > 0.0 ? fmt_double(d / prev) : "-"});
    }
    r.table({"iteration", "diameter", "ratio"}, rows);
    if (!s.last_values.empty()) {
      // Values are vertex labels, not coordinate tuples — render them with
      // the domain's formatter so a tree report reads "vertex 12", not
      // "(12)".
      r.para("Final honest values (domain \"" + domain_name +
             "\", vertex labels):");
      std::vector<std::vector<std::string>> value_rows;
      for (const auto& [party, entry] : s.last_values) {
        value_rows.push_back(
            {std::to_string(party), std::to_string(entry.first),
             dom->format_value(geo::Vec(std::vector<double>(entry.second)))});
      }
      r.table({"party", "last iteration", "value"}, value_rows);
    }
  } else {
    r.chart("Honest value diameter over virtual time — the paper predicts "
            "contraction by sqrt(7/8) per iteration (Lemma 5.10):",
            s.diameter_series);
    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < s.diameter_series.size(); ++i) {
      const double d = s.diameter_series[i].second;
      const double prev = i > 0 ? s.diameter_series[i - 1].second : 0.0;
      rows.push_back({std::to_string(i), fmt_double(d),
                      i > 0 && prev > 0.0 ? fmt_double(d / prev) : "-"});
    }
    r.table({"iteration", "diameter", "ratio"}, rows);
  }

  if (s.max_party >= 0) {
    r.section("Per-party send/deliver matrix");
    std::vector<std::string> headers{"from \\ to"};
    for (std::int64_t to = 0; to <= s.max_party; ++to) {
      headers.push_back(std::to_string(to));
    }
    headers.insert(headers.end(), {"sent", "delivered"});
    std::vector<std::vector<std::string>> rows;
    for (std::int64_t from = 0; from <= s.max_party; ++from) {
      std::vector<std::string> row{std::to_string(from)};
      for (std::int64_t to = 0; to <= s.max_party; ++to) {
        const auto it = s.send_matrix.find({from, to});
        row.push_back(std::to_string(it == s.send_matrix.end() ? 0 : it->second));
      }
      const auto sent = s.sent_msgs_by_party.find(from);
      const auto delivered = s.delivered_by_party.find(from);
      row.push_back(
          std::to_string(sent == s.sent_msgs_by_party.end() ? 0 : sent->second));
      row.push_back(std::to_string(
          delivered == s.delivered_by_party.end() ? 0 : delivered->second));
      rows.push_back(std::move(row));
    }
    r.table(headers, rows);
  }

  // Paper-bound vs measured complexity: needs (n, dim, protocol) from the
  // metrics spec; skipped when no metrics document was provided.
  const auto n = static_cast<std::size_t>(num(spec, "n"));
  const auto dim = static_cast<std::size_t>(num(spec, "dim"));
  if (n > 0 && dim > 0) {
    r.section("Complexity: paper bound vs measured");
    const std::string protocol = str(spec, "protocol");
    const ComplexityBudget budget = protocol == "sync-lockstep"
                                        ? lockstep_complexity_budget(n, dim)
                                        : hybrid_complexity_budget(n, dim);
    const auto k = static_cast<std::uint64_t>(s.max_iteration);
    const std::uint64_t msg_bound =
        budget.msgs_fixed + budget.msgs_per_iteration * (k + 2);
    const std::uint64_t byte_bound =
        budget.bytes_fixed + budget.bytes_per_iteration * (k + 2);
    r.para("Structural per-party bound for " + protocol + " at n=" +
           std::to_string(n) + ", D=" + std::to_string(dim) + ", K=" +
           std::to_string(k) + ": " + std::to_string(msg_bound) + " messages / " +
           std::to_string(byte_bound) + " bytes (Theorem 5.19; " +
           "Byzantine parties may exceed it).");
    std::vector<std::vector<std::string>> rows;
    for (std::int64_t id = 0; id <= s.max_party; ++id) {
      const auto msgs_it = s.sent_msgs_by_party.find(id);
      const auto bytes_it = s.sent_bytes_by_party.find(id);
      const std::uint64_t msgs =
          msgs_it == s.sent_msgs_by_party.end() ? 0 : msgs_it->second;
      const std::uint64_t bytes =
          bytes_it == s.sent_bytes_by_party.end() ? 0 : bytes_it->second;
      rows.push_back({std::to_string(id), std::to_string(msgs),
                      std::to_string(msg_bound), std::to_string(bytes),
                      std::to_string(byte_bound),
                      msgs <= msg_bound && bytes <= byte_bound ? "yes" : "NO"});
    }
    r.table({"party", "messages", "msg bound", "bytes", "byte bound", "within"},
            rows);
  }

  r.end();
  return s.events;
}

}  // namespace hydra::obs
