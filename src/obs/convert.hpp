// JSONL trace -> Chrome about://tracing (Perfetto-compatible) converter.
//
// The conversion logic lives in the library so tests can exercise it
// directly; tools/trace_convert.cpp is a thin CLI wrapper. Mapping:
//
//   send / deliver  ->  instant events ("ph":"i") on the sender's / the
//                       receiver's thread track;
//   state           ->  instant events named "layer:what";
//   round_start/end ->  duration begin/end pairs ("ph":"B"/"E"), so each
//                       party's ΠAA iterations render as nested slices;
//   scalar          ->  counter tracks ("ph":"C"), e.g. Πinit estimates;
//   log             ->  instant events carrying the log line.
//
// One virtual tick is displayed as one microsecond. Party i becomes tid i
// (with a thread_name metadata record); pid is always 0.
#pragma once

#include <istream>
#include <ostream>

namespace hydra::obs {

/// Reads a JSONL trace from `in` and writes a Chrome trace-format JSON
/// document to `out`. Unknown or malformed lines are skipped. Returns the
/// number of events converted.
std::size_t chrome_trace_from_jsonl(std::istream& in, std::ostream& out);

}  // namespace hydra::obs
