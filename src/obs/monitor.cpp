#include "obs/monitor.hpp"

#include <cstdarg>
#include <cstdio>

#include "domain/domain.hpp"
#include "geometry/convex.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hydra::obs {
namespace {

/// Stored-violation cap: totals keep counting past it, so a pathological run
/// cannot grow memory without bound while still reporting how bad it was.
constexpr std::size_t kMaxStoredViolations = 256;

std::uint64_t fnv1a(const Bytes& data) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto byte : data) {
    h ^= byte;
    h *= 1099511628211ull;
  }
  return h;
}

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

thread_local std::uint64_t MonitorHost::current_cause_ = 0;

std::string to_string(MonitorMode mode) {
  switch (mode) {
    case MonitorMode::kOff: return "off";
    case MonitorMode::kRecord: return "record";
    case MonitorMode::kStrict: return "strict";
  }
  return "?";
}

std::optional<MonitorMode> parse_monitor_mode(std::string_view name) {
  for (const auto mode :
       {MonitorMode::kOff, MonitorMode::kRecord, MonitorMode::kStrict}) {
    if (to_string(mode) == name) return mode;
  }
  return std::nullopt;
}

// Derivation of the hybrid per-party bound, counting broadcasts. Both
// transports exclude self-delivery from message accounting (it is local
// computation, not wire traffic), so one broadcast costs n - 1 counted
// messages. A party participating in Bracha ΠrBC sends at most one echo and
// one ready broadcast per instance, plus one send broadcast per instance it
// initiates:
//   Πinit values:   own send + echo/ready over <= n instances      2n + 1
//   Πinit reports:  same shape                                     2n + 1
//   witness set:    one direct broadcast                           1
//   per iteration:  ΠoBC value RBC (2n + 1) + own report (1)       2n + 2
//   halt:           one RBC instance                               2n + 1
// A party can be at most one iteration ahead of the highest *adopted*
// iteration K, so with the (K + 2) slack from ComplexityBudget the total is
//   (n - 1) * [(6n + 4) + (2n + 2)(K + 2)]  messages on the wire.
// Payloads are at most a report: n pairs of (id, D doubles) plus small
// headers; 49 + n (16 + 8 D) per message over-approximates the wire size.
ComplexityBudget hybrid_complexity_budget(std::size_t n, std::size_t dim) {
  ComplexityBudget b;
  const auto nn = static_cast<std::uint64_t>(n);
  const std::uint64_t fanout = nn > 0 ? nn - 1 : 0;
  b.msgs_fixed = fanout * (6 * nn + 4);
  b.msgs_per_iteration = fanout * (2 * nn + 2);
  const std::uint64_t max_wire = 49 + nn * (16 + 8 * static_cast<std::uint64_t>(dim));
  b.bytes_fixed = b.msgs_fixed * max_wire;
  b.bytes_per_iteration = b.msgs_per_iteration * max_wire;
  return b;
}

// The lock-step baseline broadcasts one value per round: n - 1 wire messages
// per round (self-delivery excluded), each carrying one D-dimensional value.
ComplexityBudget lockstep_complexity_budget(std::size_t n, std::size_t dim) {
  ComplexityBudget b;
  const auto nn = static_cast<std::uint64_t>(n);
  const std::uint64_t fanout = nn > 0 ? nn - 1 : 0;
  b.msgs_fixed = 2 * fanout;
  b.msgs_per_iteration = fanout;
  const std::uint64_t max_wire = 49 + 8 * static_cast<std::uint64_t>(dim);
  b.bytes_fixed = b.msgs_fixed * max_wire;
  b.bytes_per_iteration = b.msgs_per_iteration * max_wire;
  return b;
}

MonitorHost::MonitorHost(Config config) : config_(std::move(config)) {
  for (const bool h : config_.honest) honest_count_ += h ? 1 : 0;
  sent_msgs_.assign(config_.n, 0);
  sent_bytes_.assign(config_.n, 0);
  msgs_flagged_.assign(config_.n, false);
  bytes_flagged_.assign(config_.n, false);
}

void MonitorHost::report(Violation v) {
  total_ += 1;
  by_monitor_[v.monitor] += 1;
  if (obs::enabled()) {
    auto& registry = obs::registry();
    registry.counter("monitor.violations").inc();
    registry.counter("monitor." + v.monitor).inc();
  }
  if (auto* tr = obs::trace()) {
    tr->violation(v.at, v.party, v.monitor, v.iteration, v.cause, v.detail);
  }
  if (config_.mode == MonitorMode::kStrict) {
    abort_.store(true, std::memory_order_relaxed);
  }
  if (violations_.size() < kMaxStoredViolations) violations_.push_back(std::move(v));
}

void MonitorHost::on_send(Time t, PartyId from, std::size_t bytes) {
  if (!is_honest(from)) return;
  if (config_.budget.msgs_per_iteration == 0 && config_.budget.msgs_fixed == 0) {
    return;
  }
  const std::lock_guard lock(mutex_);
  sent_msgs_[from] += 1;
  sent_bytes_[from] += bytes;
  const std::uint64_t k = max_iteration_;
  const std::uint64_t msg_bound =
      config_.budget.msgs_fixed + config_.budget.msgs_per_iteration * (k + 2);
  if (!msgs_flagged_[from] && sent_msgs_[from] > msg_bound) {
    msgs_flagged_[from] = true;
    report(Violation{"complexity", from, static_cast<std::uint32_t>(k), t,
                     current_cause_,
                     format("party %u sent %llu messages, bound %llu at K=%llu",
                            from, static_cast<unsigned long long>(sent_msgs_[from]),
                            static_cast<unsigned long long>(msg_bound),
                            static_cast<unsigned long long>(k))});
  }
  const std::uint64_t byte_bound =
      config_.budget.bytes_fixed + config_.budget.bytes_per_iteration * (k + 2);
  if (!bytes_flagged_[from] && sent_bytes_[from] > byte_bound) {
    bytes_flagged_[from] = true;
    report(Violation{"complexity", from, static_cast<std::uint32_t>(k), t,
                     current_cause_,
                     format("party %u sent %llu bytes, bound %llu at K=%llu", from,
                            static_cast<unsigned long long>(sent_bytes_[from]),
                            static_cast<unsigned long long>(byte_bound),
                            static_cast<unsigned long long>(k))});
  }
}

void MonitorHost::on_value(Time t, PartyId party, std::uint32_t iteration,
                           const geo::Vec& value) {
  if (!is_honest(party)) return;
  const std::lock_guard lock(mutex_);

  std::uint64_t cause = current_cause_;
  if (cause == 0) {
    // Adoption at a timer: fall back to the message that completed the
    // iteration's ΠoBC output, recorded by on_obc_output.
    const auto it = obc_cause_.find({party, iteration});
    if (it != obc_cause_.end()) cause = it->second;
  }

  // Trace the adopted value with exact coordinates: the merged-trace
  // re-evaluation (obs/merge.hpp) replays these through this same hook to
  // re-check validity/contraction over ALL processes' honest values.
  if (auto* tr = obs::trace()) {
    tr->value(t, party, iteration, value.coords(), cause);
  }

  // Validity: v_k must lie in the hull of the honest iteration-(k-1) values
  // seen so far (see the header for why "seen so far" is sound); v_0 against
  // the honest inputs.
  const std::vector<geo::Vec>* hull = nullptr;
  if (iteration == 0) {
    hull = &config_.honest_inputs;
  } else if (const auto prev = layers_.find(iteration - 1); prev != layers_.end()) {
    hull = &prev->second;
  }
  // A value within hull_tol of a hull vertex is inside by definition of the
  // tolerant test; short-circuiting it keeps the LP away from near-degenerate
  // layers (post-convergence diameters ~1e-16 make the normalized tolerance
  // blow up) and skips the solve entirely in the common converged case.
  // (Sound for every domain: in_validity_set accepts members of the basis,
  // and hull_tol is far below any discrete domain's vertex spacing.)
  const auto& dom = hydra::domain::resolve(config_.domain);
  const auto near_vertex = [&](const std::vector<geo::Vec>& pts) {
    for (const auto& p : pts) {
      if (dom.distance(p, value) <= config_.hull_tol) return true;
    }
    return false;
  };
  if (hull != nullptr && !hull->empty() && !near_vertex(*hull) &&
      !dom.in_validity_set(*hull, value, config_.hull_tol)) {
    report(Violation{
        "validity", party, iteration, t, cause,
        format("party %u iteration-%u value escapes the hull of %zu honest "
               "iteration-%u values",
               party, iteration, hull->size(),
               iteration == 0 ? 0u : iteration - 1)});
  }

  auto& layer = layers_[iteration];
  layer.push_back(value);
  if (iteration > max_iteration_) max_iteration_ = iteration;

  // Contraction: once every honest party adopted iteration k, compare the
  // honest diameter against factor * diameter(k - 1) (Lemma 5.10's sqrt(7/8)
  // for the midpoint rule).
  if (layer.size() == honest_count_ && honest_count_ > 0) {
    const double diam = dom.diameter(layer);
    layer_diameters_[iteration] = diam;
    if (config_.contraction_factor > 0.0 && iteration > 0) {
      const auto prev = layer_diameters_.find(iteration - 1);
      if (prev != layer_diameters_.end()) {
        const double bound =
            dom.contraction_bound(config_.contraction_factor, prev->second);
        if (diam > bound) {
          report(Violation{
              "contraction", party, iteration, t, cause,
              format("honest diameter %.6g after iteration %u exceeds %.6g "
                     "(factor %.6g of %.6g)",
                     diam, iteration, bound, config_.contraction_factor,
                     prev->second)});
        }
      }
    }
  }
}

void MonitorHost::on_rbc_deliver(Time t, PartyId party, std::uint32_t tag,
                                 std::uint32_t a, std::uint32_t b,
                                 const Bytes& payload) {
  on_rbc_digest(t, party, tag, a, b, fnv1a(payload));
}

void MonitorHost::on_rbc_digest(Time t, PartyId party, std::uint32_t tag,
                                std::uint32_t a, std::uint32_t b,
                                std::uint64_t payload_hash) {
  if (!is_honest(party)) return;
  const std::lock_guard lock(mutex_);
  if (auto* tr = obs::trace()) {
    tr->rbc(t, party, tag, a, b, payload_hash, current_cause_);
  }
  auto& rec = rbc_[{tag, a, b}];
  if (rec.delivered.empty()) {
    rec.payload_hash = payload_hash;
  } else if (rec.payload_hash != payload_hash) {
    report(Violation{"rbc-consistency", party, b, t, current_cause_,
                     format("party %u delivered a different payload for rbc "
                            "instance (tag=%u, a=%u, b=%u)",
                            party, tag, a, b)});
  }
  rec.delivered.insert(party);
}

void MonitorHost::on_obc_output(
    Time t, PartyId party, std::uint32_t iteration,
    const std::vector<std::pair<PartyId, geo::Vec>>& pairs) {
  if (!is_honest(party)) return;
  const std::lock_guard lock(mutex_);
  obc_cause_[{party, iteration}] = current_cause_;

  if (auto* tr = obs::trace()) {
    std::vector<std::pair<std::uint64_t, std::vector<double>>> flat;
    flat.reserve(pairs.size());
    for (const auto& [q, v] : pairs) {
      flat.emplace_back(q, std::vector<double>(v.coords().begin(),
                                               v.coords().end()));
    }
    tr->obc(t, party, iteration, flat, current_cause_);
  }

  auto& iter = obc_[iteration];
  // Consistency: values in honest outputs agree per attributed party (they
  // travel through ΠrBC, so they must be bitwise identical).
  for (const auto& [q, v] : pairs) {
    const auto [slot, inserted] = iter.agreed.emplace(q, v);
    if (!inserted && !(slot->second == v)) {
      report(Violation{"obc-consistency", party, iteration, t, current_cause_,
                       format("party %u obc output attributes a conflicting "
                              "value to party %u in iteration %u",
                              party, q, iteration)});
    }
  }
  // Overlap: |M_P intersect M_P'| >= n - ts for honest P, P' (Theorem 4.4).
  std::set<PartyId> ids;
  for (const auto& [q, v] : pairs) ids.insert(q);
  for (const auto& [other, other_ids] : iter.outputs) {
    std::size_t common = 0;
    for (const auto id : ids) common += other_ids.contains(id) ? 1 : 0;
    if (common + config_.ts < config_.n) {
      report(Violation{"obc-overlap", party, iteration, t, current_cause_,
                       format("obc outputs of parties %u and %u share only %zu "
                              "pairs in iteration %u (need %zu)",
                              party, other, common, iteration,
                              config_.n - config_.ts)});
    }
  }
  iter.outputs.emplace_back(party, std::move(ids));
}

void MonitorHost::finalize(Time t, bool complete) {
  if (!complete) return;  // a truncated run legitimately leaves stragglers
  const std::lock_guard lock(mutex_);
  for (const auto& [key, rec] : rbc_) {
    if (!rec.delivered.empty() && rec.delivered.size() < honest_count_) {
      report(Violation{"rbc-totality", *rec.delivered.begin(),
                       std::get<2>(key), t, 0,
                       format("rbc instance (tag=%u, a=%u, b=%u) delivered by "
                              "%zu of %zu honest parties",
                              std::get<0>(key), std::get<1>(key),
                              std::get<2>(key), rec.delivered.size(),
                              honest_count_)});
    }
  }
}

std::uint64_t MonitorHost::total_violations() const {
  const std::lock_guard lock(mutex_);
  return total_;
}

std::vector<Violation> MonitorHost::violations() const {
  const std::lock_guard lock(mutex_);
  return violations_;
}

std::uint64_t MonitorHost::count(std::string_view monitor) const {
  const std::lock_guard lock(mutex_);
  const auto it = by_monitor_.find(monitor);
  return it == by_monitor_.end() ? 0 : it->second;
}

std::vector<std::uint64_t> MonitorHost::sent_msgs_per_party() const {
  const std::lock_guard lock(mutex_);
  return sent_msgs_;
}

std::vector<std::uint64_t> MonitorHost::sent_bytes_per_party() const {
  const std::lock_guard lock(mutex_);
  return sent_bytes_;
}

}  // namespace hydra::obs
