// Minimal reader for the flat JSON objects *this library writes* — trace
// JSONL lines and metrics sub-objects: {"k": v, ...} with string or numeric
// values and no nesting. Shared by obs/convert.cpp (Chrome trace converter)
// and obs/report.cpp (hydra report). Not a general JSON parser: on any
// structural surprise parse_flat_object returns an empty map and the caller
// skips the line.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hydra::obs::flatjson {

inline std::map<std::string, std::string> parse_flat_object(std::string_view line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto parse_string = [&](std::string& into) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        switch (line[i]) {
          case 'n': into.push_back('\n'); break;
          case 'r': into.push_back('\r'); break;
          case 't': into.push_back('\t'); break;
          case 'u':
            // \u00XX from the writer's control-character escapes; keep as-is.
            if (i + 4 < line.size()) {
              into.append("\\u").append(line.substr(i + 1, 4));
              i += 4;
            }
            break;
          default: into.push_back(line[i]);
        }
      } else {
        into.push_back(line[i]);
      }
      ++i;
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return {};
  ++i;
  while (true) {
    skip_ws();
    if (i < line.size() && line[i] == '}') break;
    std::string key;
    if (!parse_string(key)) return {};
    skip_ws();
    if (i >= line.size() || line[i] != ':') return {};
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(value)) return {};
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        value.push_back(line[i]);
        ++i;
      }
    }
    out.emplace(std::move(key), std::move(value));
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  return out;
}

/// Like parse_flat_object, but values that are arrays (possibly nested, e.g.
/// the `v` coordinate lists and `pairs` of the merge-substrate trace events)
/// are captured verbatim as their balanced "[...]" text. Strings inside
/// arrays must not contain brackets — true for everything this library
/// writes. Used by obs/merge.cpp and `hydra top`, which own both ends of the
/// format; the flat-only parser above keeps its historical skip-on-surprise
/// contract for callers that only understand flat lines.
inline std::map<std::string, std::string> parse_object_arrays(
    std::string_view line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto parse_string = [&](std::string& into) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        switch (line[i]) {
          case 'n': into.push_back('\n'); break;
          case 'r': into.push_back('\r'); break;
          case 't': into.push_back('\t'); break;
          case 'u':
            if (i + 4 < line.size()) {
              into.append("\\u").append(line.substr(i + 1, 4));
              i += 4;
            }
            break;
          default: into.push_back(line[i]);
        }
      } else {
        into.push_back(line[i]);
      }
      ++i;
    }
    if (i >= line.size()) return false;
    ++i;
    return true;
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return {};
  ++i;
  while (true) {
    skip_ws();
    if (i < line.size() && line[i] == '}') break;
    std::string key;
    if (!parse_string(key)) return {};
    skip_ws();
    if (i >= line.size() || line[i] != ':') return {};
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(value)) return {};
    } else if (i < line.size() && line[i] == '[') {
      int depth = 0;
      do {
        if (line[i] == '[') ++depth;
        if (line[i] == ']') --depth;
        value.push_back(line[i]);
        ++i;
      } while (i < line.size() && depth > 0);
      if (depth != 0) return {};
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        value.push_back(line[i]);
        ++i;
      }
    }
    out.emplace(std::move(key), std::move(value));
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  return out;
}

/// Parses the numbers out of a (possibly nested) "[...]" capture from
/// parse_object_arrays, in order, ignoring structure. For flat arrays this
/// is the element list; callers needing nesting (obc `pairs`) re-split on
/// the bracket structure themselves.
inline std::vector<double> parse_reals(std::string_view array_text) {
  std::vector<double> out;
  std::size_t i = 0;
  while (i < array_text.size()) {
    const char c = array_text[i];
    if ((c >= '0' && c <= '9') || c == '-' || c == '+') {
      char* end = nullptr;
      const std::string tail(array_text.substr(i));
      out.push_back(std::strtod(tail.c_str(), &end));
      i += static_cast<std::size_t>(end - tail.c_str());
    } else {
      ++i;
    }
  }
  return out;
}

inline std::int64_t num(const std::map<std::string, std::string>& kv,
                        const char* key) {
  const auto it = kv.find(key);
  return it == kv.end() ? 0 : std::strtoll(it->second.c_str(), nullptr, 10);
}

/// Unsigned variant of num(): required for full-range u64 values (fnv1a
/// payload hashes, composed send ids), which strtoll would clamp.
inline std::uint64_t unum(const std::map<std::string, std::string>& kv,
                          const char* key) {
  const auto it = kv.find(key);
  return it == kv.end() ? 0 : std::strtoull(it->second.c_str(), nullptr, 10);
}

inline double real(const std::map<std::string, std::string>& kv, const char* key) {
  const auto it = kv.find(key);
  return it == kv.end() ? 0.0 : std::strtod(it->second.c_str(), nullptr);
}

inline std::string str(const std::map<std::string, std::string>& kv,
                       const char* key) {
  const auto it = kv.find(key);
  return it == kv.end() ? std::string{} : it->second;
}

}  // namespace hydra::obs::flatjson
