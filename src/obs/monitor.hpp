// Online invariant monitors: the paper's per-round guarantees checked live.
//
// A MonitorHost attaches to the per-run obs::Context (context.hpp) and
// receives hooks from the simulator and the protocol layers while a run
// executes:
//
//   validity         every honest party's iteration-k value lies in the
//                    convex hull of the honest iteration-(k-1) values
//                    (Lemma 5.7 via the safe-area rule; v_0 against the
//                    honest inputs, Theorem 5.18 validity);
//   contraction      once every honest party adopted iteration k, the honest
//                    diameter contracted by the configured factor — the
//                    paper's sqrt(7/8) for the midpoint rule (Lemma 5.10);
//   rbc-consistency  no two honest parties deliver different payloads for
//                    the same ΠrBC instance (Theorem 4.2, consistency);
//   rbc-totality     an instance delivered by one honest party is delivered
//                    by all once the run quiesces (Theorem 4.2, totality);
//   obc-consistency  honest ΠoBC outputs never attribute two different
//                    values to the same party (Theorem 4.4, consistency);
//   obc-overlap      any two honest ΠoBC outputs of one iteration share at
//                    least n - ts pairs (Theorem 4.4, overlap);
//   complexity       per honest party, messages/bytes sent stay within the
//                    structural bound for (n, D) and the running max honest
//                    iteration (Theorem 5.19's complexity analysis).
//
// Every violation is pushed through report(): an `invariant.violation` trace
// event carrying the offending party/iteration and the causal message id,
// `monitor.violations` + `monitor.<name>` registry counters, and — in
// strict mode — an abort flag the simulator polls between events.
//
// The validity check is a sound relaxation under asynchrony: any honest
// v_{k-1} appearing in a party's ΠoBC_k output was adopted (and therefore
// seen by the monitor) before that party's iteration-k value existed, so
// hull(honest values of layer k-1 seen so far) contains the paper's
// constraint hull and a flagged value is a genuine violation.
//
// Thread safety: hooks serialize on an internal mutex (the thread transport
// calls on_send from many party threads); abort_requested() is a relaxed
// atomic read so the simulator's per-event poll stays cheap. Causal
// attribution (begin_dispatch/end_dispatch) is wired up by both backends
// through net::DeliveryGate; the in-dispatch cause is thread-local, so each
// thread-transport worker attributes its own dispatches independently.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "domain/domain.hpp"
#include "geometry/vec.hpp"

namespace hydra::obs {

/// CLI surface: --monitors=off|record|strict.
enum class MonitorMode {
  kOff,     ///< no monitors; zero cost
  kRecord,  ///< check and record violations, never interfere with the run
  kStrict,  ///< record and additionally abort the run on the first violation
};

[[nodiscard]] std::string to_string(MonitorMode mode);
[[nodiscard]] std::optional<MonitorMode> parse_monitor_mode(std::string_view name);

/// One detected invariant violation.
struct Violation {
  std::string monitor;          ///< "validity", "contraction", "rbc-consistency", ...
  PartyId party = 0xffffffff;   ///< offending party (0xffffffff = none)
  std::uint32_t iteration = 0;  ///< ΠAA iteration / RBC instance coordinate
  Time at = 0;                  ///< virtual time of detection
  std::uint64_t cause = 0;      ///< trace event id of the causal `send` (0 = none)
  std::string detail;           ///< human-readable specifics
};

/// Per-party message/byte budget, expressed as bound(K) = fixed +
/// per_iteration * (K + 2) where K is the highest iteration any honest party
/// has adopted so far (+2 absorbs the in-flight iteration a party may have
/// started before anyone adopted it, plus one slack). Zero coefficients
/// disable the complexity monitor.
struct ComplexityBudget {
  std::uint64_t msgs_fixed = 0;
  std::uint64_t msgs_per_iteration = 0;
  std::uint64_t bytes_fixed = 0;
  std::uint64_t bytes_per_iteration = 0;
};

/// Structural bound for the hybrid ΠAA stack (Πinit + per-iteration ΠoBC +
/// halts over Bracha ΠrBC); derivation in monitor.cpp.
[[nodiscard]] ComplexityBudget hybrid_complexity_budget(std::size_t n, std::size_t dim);

/// Bound for the lock-step baseline: one broadcast per round.
[[nodiscard]] ComplexityBudget lockstep_complexity_budget(std::size_t n,
                                                          std::size_t dim);

class MonitorHost {
 public:
  struct Config {
    MonitorMode mode = MonitorMode::kRecord;
    std::size_t n = 0;
    std::size_t ts = 0;
    std::size_t ta = 0;
    std::size_t dim = 0;
    double eps = 0.0;
    /// honest[id] == false marks a corrupted slot; its hooks are ignored.
    std::vector<bool> honest;
    /// Convex-hull constraint for iteration-0 values (the honest inputs).
    std::vector<geo::Vec> honest_inputs;
    /// Per-iteration diameter contraction factor; 0 disables the monitor
    /// (centroid ablation and the lock-step baseline have no proven factor).
    double contraction_factor = 0.0;
    /// Absolute tolerance for the hull-membership LP (matches the oracle's).
    double hull_tol = 1e-5;
    /// Value domain the validity/contraction monitors dispatch through;
    /// nullptr means Euclidean (geo::in_convex_hull / geo::diameter — the
    /// pre-domain-layer behavior, bit for bit).
    const hydra::domain::ValueDomain* domain = nullptr;
    /// Zero coefficients disable the complexity monitor (the registering
    /// code leaves it off for adversaries that can open protocol instances
    /// beyond the honest schedule, e.g. spam/equivocation).
    ComplexityBudget budget;
  };

  explicit MonitorHost(Config config);

  // -- causal attribution (both backends, via net::DeliveryGate) ------------

  /// The transport brackets each message dispatch with the trace event id of
  /// the originating send, so violations detected inside the handler can
  /// name the message that carried the bad value. Per-thread: brackets on
  /// different worker threads never observe each other's cause.
  void begin_dispatch(std::uint64_t cause) noexcept { current_cause_ = cause; }
  void end_dispatch() noexcept { current_cause_ = 0; }

  // -- hooks ----------------------------------------------------------------

  /// Every message handed to the network. Drives the complexity monitor.
  void on_send(Time t, PartyId from, std::size_t bytes);

  /// Party adopted `value` as its iteration-`iteration` estimate (v_0 from
  /// Πinit / the input, v_k from ΠAA-it). Drives validity and contraction.
  void on_value(Time t, PartyId party, std::uint32_t iteration,
                const geo::Vec& value);

  /// Party's ΠrBC instance (tag, a, b) delivered `payload`.
  void on_rbc_deliver(Time t, PartyId party, std::uint32_t tag, std::uint32_t a,
                      std::uint32_t b, const Bytes& payload);

  /// Digest-level form of on_rbc_deliver: the consistency/totality state is
  /// keyed on the payload's fnv1a-64 hash, which is all the cross-process
  /// trace carries. Used directly by merged-trace re-evaluation
  /// (obs/merge.hpp); on_rbc_deliver hashes and forwards here.
  void on_rbc_digest(Time t, PartyId party, std::uint32_t tag, std::uint32_t a,
                     std::uint32_t b, std::uint64_t payload_hash);

  /// Party's iteration-`iteration` ΠoBC produced output set `pairs`.
  void on_obc_output(Time t, PartyId party, std::uint32_t iteration,
                     const std::vector<std::pair<PartyId, geo::Vec>>& pairs);

  /// End-of-run checks (ΠrBC totality needs a drained event queue).
  /// `complete` is false when the run hit a limit or strict-aborted; the
  /// totality check is skipped then — undelivered instances are expected.
  void finalize(Time t, bool complete);

  // -- results --------------------------------------------------------------

  /// Polled by the simulator between events; set by strict-mode violations.
  [[nodiscard]] bool abort_requested() const noexcept {
    return abort_.load(std::memory_order_relaxed);
  }

  /// Total violations detected (may exceed violations().size(), which is
  /// capped to bound memory on pathological runs).
  [[nodiscard]] std::uint64_t total_violations() const;

  [[nodiscard]] std::vector<Violation> violations() const;

  /// Violations attributed to one monitor name.
  [[nodiscard]] std::uint64_t count(std::string_view monitor) const;

  /// Per-party Thm 5.19 complexity tallies as counted by on_send (index =
  /// PartyId; zeros for corrupted slots). Snapshot under the hook mutex, so
  /// safe to call while a run is live; merged-trace re-evaluation compares
  /// these against the per-process monitors of the same run.
  [[nodiscard]] std::vector<std::uint64_t> sent_msgs_per_party() const;
  [[nodiscard]] std::vector<std::uint64_t> sent_bytes_per_party() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  [[nodiscard]] bool is_honest(PartyId party) const noexcept {
    return party < config_.honest.size() && config_.honest[party];
  }

  /// Records one violation: trace event, counters, strict-mode abort.
  /// Caller holds mutex_.
  void report(Violation v);

  Config config_;
  std::size_t honest_count_ = 0;

  mutable std::mutex mutex_;
  std::vector<Violation> violations_;
  std::uint64_t total_ = 0;
  std::map<std::string, std::uint64_t, std::less<>> by_monitor_;
  std::atomic<bool> abort_{false};
  /// Send-event id of the message currently being dispatched on THIS thread.
  /// thread_local (shared by all MonitorHost instances, which is harmless —
  /// a thread dispatches for at most one host at a time): the simulator
  /// brackets on its single driver thread, while thread-transport workers
  /// bracket concurrently and must not cross-attribute causes. Hooks read it
  /// under mutex_ from the hook-calling (= bracketing) thread.
  static thread_local std::uint64_t current_cause_;

  // validity / contraction state
  std::map<std::uint32_t, std::vector<geo::Vec>> layers_;  ///< honest values per iteration
  std::map<std::uint32_t, double> layer_diameters_;        ///< complete layers only
  std::uint32_t max_iteration_ = 0;
  /// Cause of the ΠoBC output that produced a party's pending iteration
  /// value, for attribution when adoption happens later at a timer.
  std::map<std::pair<PartyId, std::uint32_t>, std::uint64_t> obc_cause_;

  // rbc state
  struct RbcRecord {
    std::uint64_t payload_hash = 0;
    std::set<PartyId> delivered;  ///< honest parties only
  };
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>, RbcRecord> rbc_;

  // obc state
  struct ObcIteration {
    std::map<PartyId, geo::Vec> agreed;  ///< union of honest output pairs
    std::vector<std::pair<PartyId, std::set<PartyId>>> outputs;  ///< per honest output
  };
  std::map<std::uint32_t, ObcIteration> obc_;

  // complexity state
  std::vector<std::uint64_t> sent_msgs_;
  std::vector<std::uint64_t> sent_bytes_;
  std::vector<bool> msgs_flagged_;   ///< one violation per party, not per send
  std::vector<bool> bytes_flagged_;
};

}  // namespace hydra::obs
