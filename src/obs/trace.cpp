#include "obs/trace.hpp"

#include <atomic>

#include "common/log.hpp"
#include "obs/context.hpp"
#include "obs/json.hpp"

namespace hydra::obs {
namespace {

std::atomic<TraceSink*> g_trace{nullptr};

// Crash-safe flush registry: fixed lock-free slot table so the signal
// handler in `hydra serve`/`join` can flush without taking a lock.
constexpr std::size_t kMaxFlushTargets = 16;
std::atomic<std::FILE*> g_flush_targets[kMaxFlushTargets]{};

// Resolves through trace() so log lines land in the emitting thread's
// per-run sink when a context is installed, and in the global sink
// otherwise.
void log_to_trace(LogLevel level, const char* msg) {
  if (TraceSink* sink = trace()) {
    sink->log(static_cast<int>(level), msg);
  }
}

}  // namespace

TraceSink::TraceSink(const std::string& path) : file_(std::fopen(path.c_str(), "wb")) {
  if (file_ == nullptr) {
    HYDRA_LOG_ERROR("trace: cannot open %s for writing", path.c_str());
    return;
  }
  // Line-buffered with a buffer larger than any event line: complete lines
  // reach the kernel as they are written, so a SIGKILLed process still
  // leaves valid JSONL behind (a mid-compose line stays in the buffer and
  // is dropped whole, never torn).
  std::setvbuf(file_, nullptr, _IOLBF, std::size_t{1} << 20);
  register_flush_target(file_);
}

TraceSink::~TraceSink() {
  if (file_ != nullptr) {
    unregister_flush_target(file_);
    if (std::fclose(file_) != 0 && !write_failed_) {
      std::fprintf(stderr, "hydra trace: close failed, trace file truncated\n");
    }
  }
}

void TraceSink::write_line(const std::string& line) {
  if (file_ == nullptr) return;
  const std::lock_guard lock(mutex_);
  const bool ok = std::fwrite(line.data(), 1, line.size(), file_) == line.size() &&
                  std::fputc('\n', file_) != EOF;
  // Report straight to stderr, NOT through HYDRA_LOG_ERROR: the logger is
  // hooked into this very sink (log_to_trace), so logging here would re-enter
  // write_line and deadlock on the non-recursive mutex_. One-shot so a full
  // disk produces one diagnostic, not one per dropped event.
  if (!ok && !write_failed_) {
    write_failed_ = true;
    std::fprintf(stderr, "hydra trace: write failed, trace is truncated from here\n");
  }
}

namespace {

// `link_key` carries causality: "id" on a send, "cause" on a deliver
// (0 suppresses the key so transports without ids keep the old schema;
// proc 0 likewise keeps single-process traces byte-identical).
std::string message_line(const char* ev, Time t, PartyId from, PartyId to,
                         std::uint32_t tag, std::uint32_t a, std::uint32_t b,
                         std::uint8_t kind, std::size_t bytes,
                         const char* link_key, std::uint64_t link,
                         std::uint32_t proc) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", ev);
  w.kv("t", std::int64_t{t});
  w.kv("from", std::uint64_t{from});
  w.kv("to", std::uint64_t{to});
  w.kv("tag", tag);
  w.kv("a", a);
  w.kv("b", b);
  w.kv("kind", std::uint64_t{kind});
  w.kv("bytes", bytes);
  if (link != 0) w.kv(link_key, link);
  if (proc != 0) w.kv("proc", proc);
  w.end_object();
  return w.take();
}

}  // namespace

void TraceSink::message_send(Time t, PartyId from, PartyId to, std::uint32_t tag,
                             std::uint32_t a, std::uint32_t b, std::uint8_t kind,
                             std::size_t bytes, std::uint64_t id) {
  write_line(
      message_line("send", t, from, to, tag, a, b, kind, bytes, "id", id, proc_));
}

void TraceSink::message_deliver(Time t, PartyId from, PartyId to, std::uint32_t tag,
                                std::uint32_t a, std::uint32_t b, std::uint8_t kind,
                                std::size_t bytes, std::uint64_t cause) {
  write_line(message_line("deliver", t, from, to, tag, a, b, kind, bytes, "cause",
                          cause, proc_));
}

void TraceSink::state(Time t, PartyId party, std::string_view layer,
                      std::string_view what, std::uint32_t a, std::uint32_t b) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "state");
  w.kv("t", std::int64_t{t});
  w.kv("party", std::uint64_t{party});
  w.kv("layer", layer);
  w.kv("what", what);
  w.kv("a", a);
  w.kv("b", b);
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::round_start(Time t, PartyId party, std::uint32_t iteration) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "round_start");
  w.kv("t", std::int64_t{t});
  w.kv("party", std::uint64_t{party});
  w.kv("it", iteration);
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::round_end(Time t, PartyId party, std::uint32_t iteration) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "round_end");
  w.kv("t", std::int64_t{t});
  w.kv("party", std::uint64_t{party});
  w.kv("it", iteration);
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::scalar(Time t, PartyId party, std::string_view name, double value) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "scalar");
  w.kv("t", std::int64_t{t});
  w.kv("party", std::uint64_t{party});
  w.kv("name", name);
  w.kv("value", value);
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::violation(Time t, PartyId party, std::string_view monitor,
                          std::uint32_t iteration, std::uint64_t cause,
                          std::string_view detail) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "invariant.violation");
  w.kv("t", std::int64_t{t});
  w.kv("party", std::uint64_t{party});
  w.kv("monitor", monitor);
  w.kv("it", iteration);
  w.kv("cause", cause);
  w.kv("detail", detail);
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::fault(Time t, std::string_view what, std::int64_t party,
                      std::int64_t peer, std::uint64_t cause,
                      std::string_view detail) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "fault." + std::string(what));
  w.kv("t", std::int64_t{t});
  if (party >= 0) w.kv("party", party);
  if (peer >= 0) w.kv("peer", peer);
  if (cause != 0) w.kv("cause", cause);
  if (!detail.empty()) w.kv("detail", detail);
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::raw_line(const std::string& json_object) {
  write_line(json_object);
}

void TraceSink::input(Time t, PartyId party, bool honest,
                      std::span<const double> v) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "input");
  w.kv("t", std::int64_t{t});
  w.kv("party", std::uint64_t{party});
  w.kv("honest", honest);
  w.key("v");
  w.begin_array();
  for (const double x : v) w.value(x);
  w.end_array();
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::end(bool complete, bool quiescent) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "end");
  w.kv("complete", std::uint64_t{complete ? 1u : 0u});
  w.kv("quiescent", std::uint64_t{quiescent ? 1u : 0u});
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::value(Time t, PartyId party, std::uint32_t iteration,
                      std::span<const double> v, std::uint64_t cause) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "value");
  w.kv("t", std::int64_t{t});
  w.kv("party", std::uint64_t{party});
  w.kv("it", iteration);
  w.key("v");
  w.begin_array();
  for (const double x : v) w.value(x);
  w.end_array();
  if (cause != 0) w.kv("cause", cause);
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::rbc(Time t, PartyId party, std::uint32_t tag, std::uint32_t a,
                    std::uint32_t b, std::uint64_t hash, std::uint64_t cause) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "rbc");
  w.kv("t", std::int64_t{t});
  w.kv("party", std::uint64_t{party});
  w.kv("tag", tag);
  w.kv("a", a);
  w.kv("b", b);
  w.kv("h", hash);
  if (cause != 0) w.kv("cause", cause);
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::obc(
    Time t, PartyId party, std::uint32_t iteration,
    std::span<const std::pair<std::uint64_t, std::vector<double>>> pairs,
    std::uint64_t cause) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "obc");
  w.kv("t", std::int64_t{t});
  w.kv("party", std::uint64_t{party});
  w.kv("it", iteration);
  // Each pair as [q, x0, x1, ...]: flat arrays keep the line parseable by
  // the same brace-free scanner the merge tool uses for "v".
  w.key("pairs");
  w.begin_array();
  for (const auto& [q, vec] : pairs) {
    w.begin_array();
    w.value(q);
    for (const double x : vec) w.value(x);
    w.end_array();
  }
  w.end_array();
  if (cause != 0) w.kv("cause", cause);
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::log(int level, std::string_view msg) {
  JsonWriter w;
  w.begin_object();
  w.kv("ev", "log");
  w.kv("level", std::int64_t{level});
  w.kv("msg", msg);
  if (proc_ != 0) w.kv("proc", proc_);
  w.end_object();
  write_line(w.take());
}

void TraceSink::flush() {
  const std::lock_guard lock(mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

void set_trace(TraceSink* sink) noexcept {
  g_trace.store(sink, std::memory_order_release);
  set_log_sink(sink != nullptr ? &log_to_trace : nullptr);
}

TraceSink* trace() noexcept {
  if (Context* ctx = current_context()) return ctx->trace_sink;
  return g_trace.load(std::memory_order_acquire);
}

void install_log_hook() noexcept { set_log_sink(&log_to_trace); }

void register_flush_target(std::FILE* f) noexcept {
  if (f == nullptr) return;
  for (auto& slot : g_flush_targets) {
    std::FILE* expected = nullptr;
    if (slot.compare_exchange_strong(expected, f, std::memory_order_acq_rel)) {
      return;
    }
  }
}

void unregister_flush_target(std::FILE* f) noexcept {
  if (f == nullptr) return;
  for (auto& slot : g_flush_targets) {
    std::FILE* expected = f;
    if (slot.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
}

void flush_all_sinks() noexcept {
  for (auto& slot : g_flush_targets) {
    if (std::FILE* f = slot.load(std::memory_order_acquire)) std::fflush(f);
  }
}

}  // namespace hydra::obs
