#include "obs/merge.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/types.hpp"
#include "domain/domain.hpp"
#include "geometry/vec.hpp"
#include "obs/context.hpp"
#include "obs/flatjson.hpp"
#include "obs/json.hpp"
#include "obs/monitor.hpp"

namespace hydra::obs {
namespace {

struct Event {
  std::string raw;  ///< the original line, emitted verbatim
  std::map<std::string, std::string> kv;
  Time t = 0;
};

struct Stream {
  std::uint32_t proc = 0;
  std::string meta_raw;
  std::map<std::string, std::string> meta;
  std::vector<Event> events;
  bool has_end = false;
  bool complete = false;
  bool quiescent = false;
  std::size_t head = 0;

  [[nodiscard]] bool exhausted() const noexcept { return head >= events.size(); }
};

std::string format_err(const char* fmt, const std::string& a,
                       const std::string& b = {}) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, a.c_str(), b.c_str());
  return buf;
}

/// Splits the balanced "[[...],[...]]" capture of an obc `pairs` value into
/// its top-level elements (each itself a "[...]" capture).
std::vector<std::string> split_top_level(std::string_view array_text) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < array_text.size(); ++i) {
    const char c = array_text[i];
    if (c == '[') {
      if (++depth == 2) start = i;
    } else if (c == ']') {
      if (--depth == 1) out.emplace_back(array_text.substr(start, i - start + 1));
    }
  }
  return out;
}

/// The merge's tolerant line loader: parse failures (a line torn by a kill,
/// or junk) are skipped and counted, never fatal — a partial trace from a
/// SIGTERM'd process must still merge.
bool load_stream(const std::string& path, Stream& s, std::size_t& skipped,
                 std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = format_err("cannot open trace file %s", path);
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto kv = flatjson::parse_object_arrays(line);
    if (kv.empty()) {
      ++skipped;
      continue;
    }
    const std::string ev = flatjson::str(kv, "ev");
    if (ev == "meta") {
      if (!s.meta.empty()) {
        error = format_err("trace %s has more than one meta event", path);
        return false;
      }
      s.meta_raw = line;
      s.meta = std::move(kv);
      s.proc = static_cast<std::uint32_t>(flatjson::num(s.meta, "proc"));
      continue;
    }
    if (ev == "end") {
      s.has_end = true;
      s.complete = flatjson::num(kv, "complete") != 0;
      s.quiescent = flatjson::num(kv, "quiescent") != 0;
      continue;
    }
    Event e;
    e.t = flatjson::num(kv, "t");
    e.raw = line;
    e.kv = std::move(kv);
    s.events.push_back(std::move(e));
  }
  if (s.meta.empty()) {
    error = format_err(
        "trace %s has no meta event — not a merge-able hydra trace "
        "(re-run with --trace-out on a current build)",
        path);
    return false;
  }
  return true;
}

/// Fields every process must agree on; a mismatch means the traces are from
/// different runs and stitching them would silently lie.
constexpr const char* kSpecKeys[] = {"run_id", "seed", "n",   "ts",
                                     "ta",     "dim",  "eps", "domain"};

}  // namespace

MergeResult merge_traces(const std::vector<std::string>& paths) {
  MergeResult res;
  if (paths.empty()) {
    res.error = "no trace files to merge";
    return res;
  }
  std::vector<Stream> streams(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!load_stream(paths[i], streams[i], res.skipped_lines, res.error)) {
      return res;
    }
  }
  res.files = streams.size();

  // Deterministic stream order: by proc tag, never by argument position.
  std::sort(streams.begin(), streams.end(),
            [](const Stream& a, const Stream& b) { return a.proc < b.proc; });
  for (std::size_t i = 1; i < streams.size(); ++i) {
    if (streams[i].proc == streams[i - 1].proc) {
      res.error = format_err(
          "two trace files carry the same proc tag (%s) — same-process "
          "duplicates or traces from a single-process run",
          std::to_string(streams[i].proc));
      return res;
    }
  }
  for (std::size_t i = 1; i < streams.size(); ++i) {
    for (const char* key : kSpecKeys) {
      if (flatjson::str(streams[i].meta, key) !=
          flatjson::str(streams[0].meta, key)) {
        res.error = format_err(
            "meta mismatch on \"%s\": the traces are from different runs "
            "(value %s differs from the first file's)",
            key, flatjson::str(streams[i].meta, key));
        return res;
      }
    }
  }

  res.complete = true;
  // ΠrBC totality is only judgeable when every process's event queue drained
  // (the simulator's quiescence); socket runs stop once every party decided
  // and may legally leave echoes in flight, so the re-run's finalize skips
  // totality for them — matching what their live monitors did.
  bool quiescent = true;
  for (const Stream& s : streams) {
    res.complete = res.complete && s.has_end && s.complete;
    quiescent = quiescent && s.quiescent;
  }

  // All send ids present anywhere in the inputs: a deliver whose cause is
  // outside this set can never be satisfied (its origin process's trace was
  // killed or absent) — emit it immediately and count the orphan. Within the
  // set, hold delivers until the send is out; per-file order plus real
  // send-before-deliver ordering guarantees progress (each file is written
  // in emission order, so the combined constraint graph is acyclic).
  std::set<std::uint64_t> all_send_ids;
  for (const Stream& s : streams) {
    for (const Event& e : s.events) {
      if (flatjson::str(e.kv, "ev") == "send") {
        if (const auto id = flatjson::unum(e.kv, "id"); id != 0) {
          all_send_ids.insert(id);
        }
      }
    }
  }

  const bool drop_local_violations = res.complete;
  std::string out;
  for (const Stream& s : streams) {
    out += s.meta_raw;
    out += '\n';
  }

  std::set<std::uint64_t> emitted_sends;
  std::set<std::uint64_t> orphaned;
  Time max_t = 0;
  std::vector<const Event*> merged_order;
  merged_order.reserve([&] {
    std::size_t n = 0;
    for (const Stream& s : streams) n += s.events.size();
    return n;
  }());

  const auto head_blocked = [&](const Stream& s) {
    const Event& e = s.events[s.head];
    if (flatjson::str(e.kv, "ev") != "deliver") return false;
    const auto cause = flatjson::unum(e.kv, "cause");
    if (cause == 0 || emitted_sends.contains(cause)) return false;
    return all_send_ids.contains(cause);
  };

  while (true) {
    const Stream* best = nullptr;
    const Stream* best_any = nullptr;
    for (const Stream& s : streams) {
      if (s.exhausted()) continue;
      const auto key = [&](const Stream& x) {
        return std::tuple(x.events[x.head].t, x.proc, x.head);
      };
      if (best_any == nullptr || key(s) < key(*best_any)) best_any = &s;
      if (head_blocked(s)) continue;
      if (best == nullptr || key(s) < key(*best)) best = &s;
    }
    if (best == nullptr) {
      if (best_any == nullptr) break;  // all exhausted
      // Safety valve: every head is a blocked deliver. Unreachable for
      // traces this library wrote (see the acyclicity note above), but a
      // hand-edited input must not hang the tool — emit the smallest head
      // as an orphan and move on.
      best = best_any;
    }
    auto& s = const_cast<Stream&>(*best);
    const Event& e = s.events[s.head];
    ++s.head;

    const std::string ev = flatjson::str(e.kv, "ev");
    if (ev == "send") {
      if (const auto id = flatjson::unum(e.kv, "id"); id != 0) {
        emitted_sends.insert(id);
      }
    } else if (ev == "deliver") {
      const auto cause = flatjson::unum(e.kv, "cause");
      if (cause != 0 && !emitted_sends.contains(cause)) {
        orphaned.insert(cause);
      }
    } else if (ev == "invariant.violation" && drop_local_violations) {
      continue;  // superseded by the global re-evaluation below
    }
    max_t = std::max(max_t, e.t);
    out += e.raw;
    out += '\n';
    merged_order.push_back(&e);
    ++res.events;
  }
  res.orphans = orphaned.size();

  // ---- global monitor re-evaluation over the merged timeline -------------
  const std::string mode_str = flatjson::str(streams[0].meta, "mode");
  const auto mode = parse_monitor_mode(mode_str);
  if (res.complete && mode && *mode != MonitorMode::kOff) {
    const auto& meta = streams[0].meta;
    MonitorHost::Config cfg;
    cfg.mode = MonitorMode::kRecord;  // re-runs judge, never abort
    cfg.n = static_cast<std::size_t>(flatjson::num(meta, "n"));
    cfg.ts = static_cast<std::size_t>(flatjson::num(meta, "ts"));
    cfg.ta = static_cast<std::size_t>(flatjson::num(meta, "ta"));
    cfg.dim = static_cast<std::size_t>(flatjson::num(meta, "dim"));
    cfg.eps = flatjson::real(meta, "eps");
    cfg.contraction_factor = flatjson::real(meta, "contraction");
    cfg.hull_tol = flatjson::real(meta, "hull_tol");
    // Absent "domain" key = pre-domain-layer trace = Euclidean (nullptr).
    if (const auto dom_name = flatjson::str(meta, "domain"); !dom_name.empty()) {
      cfg.domain = hydra::domain::find(dom_name);
    }
    cfg.budget.msgs_fixed = flatjson::unum(meta, "msgs_fixed");
    cfg.budget.msgs_per_iteration = flatjson::unum(meta, "msgs_per_it");
    cfg.budget.bytes_fixed = flatjson::unum(meta, "bytes_fixed");
    cfg.budget.bytes_per_iteration = flatjson::unum(meta, "bytes_per_it");
    const auto honest_raw = flatjson::parse_reals(flatjson::str(meta, "honest"));
    cfg.honest.assign(cfg.n, true);
    for (std::size_t i = 0; i < honest_raw.size() && i < cfg.n; ++i) {
      cfg.honest[i] = honest_raw[i] != 0.0;
    }
    // Honest inputs from the union of the processes' `input` events, in
    // party order — exact %.17g round-trips, so the hull is bit-identical
    // to the live single-process monitor's.
    std::map<PartyId, geo::Vec> inputs;
    for (const Event* e : merged_order) {
      if (flatjson::str(e->kv, "ev") != "input") continue;
      const auto party = static_cast<PartyId>(flatjson::num(e->kv, "party"));
      inputs.emplace(party,
                     geo::Vec(flatjson::parse_reals(flatjson::str(e->kv, "v"))));
    }
    for (const auto& [party, v] : inputs) {
      if (party < cfg.honest.size() && cfg.honest[party]) {
        cfg.honest_inputs.push_back(v);
      }
    }

    MonitorHost host(std::move(cfg));
    // Shield the replay from any ambient observability: a null-field context
    // makes obs::trace()/registry() inside the hooks no-ops.
    Context quiet;
    const ScopedContext scope(&quiet);
    for (const Event* e : merged_order) {
      const std::string ev = flatjson::str(e->kv, "ev");
      const auto t = e->t;
      const auto party = static_cast<PartyId>(flatjson::num(e->kv, "party"));
      const auto cause = flatjson::unum(e->kv, "cause");
      if (ev == "send") {
        const auto from = static_cast<PartyId>(flatjson::num(e->kv, "from"));
        const auto to = static_cast<PartyId>(flatjson::num(e->kv, "to"));
        if (from != to) {
          host.on_send(t, from,
                       static_cast<std::size_t>(flatjson::num(e->kv, "bytes")));
        }
      } else if (ev == "value") {
        host.begin_dispatch(cause);
        host.on_value(t, party,
                      static_cast<std::uint32_t>(flatjson::num(e->kv, "it")),
                      geo::Vec(flatjson::parse_reals(flatjson::str(e->kv, "v"))));
        host.end_dispatch();
      } else if (ev == "rbc") {
        host.begin_dispatch(cause);
        host.on_rbc_digest(t, party,
                           static_cast<std::uint32_t>(flatjson::num(e->kv, "tag")),
                           static_cast<std::uint32_t>(flatjson::num(e->kv, "a")),
                           static_cast<std::uint32_t>(flatjson::num(e->kv, "b")),
                           flatjson::unum(e->kv, "h"));
        host.end_dispatch();
      } else if (ev == "obc") {
        std::vector<std::pair<PartyId, geo::Vec>> pairs;
        for (const auto& elem :
             split_top_level(flatjson::str(e->kv, "pairs"))) {
          const auto nums = flatjson::parse_reals(elem);
          if (nums.empty()) continue;
          pairs.emplace_back(
              static_cast<PartyId>(nums[0]),
              geo::Vec(std::vector<double>(nums.begin() + 1, nums.end())));
        }
        host.begin_dispatch(cause);
        host.on_obc_output(
            t, party, static_cast<std::uint32_t>(flatjson::num(e->kv, "it")),
            pairs);
        host.end_dispatch();
      }
    }
    host.finalize(max_t, quiescent);

    res.reevaluated = true;
    res.violations = host.total_violations();
    res.sent_msgs = host.sent_msgs_per_party();
    res.sent_bytes = host.sent_bytes_per_party();
    for (const auto& v : host.violations()) {
      res.violations_by_monitor[v.monitor] += 1;
      JsonWriter w;
      w.begin_object();
      w.kv("ev", "invariant.violation");
      w.kv("t", std::int64_t{v.at});
      w.kv("party", std::uint64_t{v.party});
      w.kv("monitor", v.monitor);
      w.kv("it", v.iteration);
      w.kv("cause", v.cause);
      w.kv("detail", v.detail);
      w.end_object();
      out += w.take();
      out += '\n';
    }
  } else {
    // No re-run: the verdict is whatever local violation lines survived.
    for (const Event* e : merged_order) {
      if (flatjson::str(e->kv, "ev") == "invariant.violation") {
        res.violations += 1;
        res.violations_by_monitor[flatjson::str(e->kv, "monitor")] += 1;
      }
    }
  }

  {
    JsonWriter w;
    w.begin_object();
    w.kv("ev", "end");
    w.kv("complete", res.complete ? 1 : 0);
    w.kv("files", std::uint64_t{res.files});
    w.kv("events", std::uint64_t{res.events});
    w.kv("orphans", std::uint64_t{res.orphans});
    w.kv("violations", res.violations);
    w.end_object();
    out += w.take();
    out += '\n';
  }
  res.merged = std::move(out);
  return res;
}

}  // namespace hydra::obs
