// Minimal append-only JSON writer used by the observability layer.
//
// The trace sink and the metrics snapshot both need to emit JSON without
// pulling in a third-party library. JsonWriter builds one value into a
// std::string; nesting is the caller's responsibility (begin/end pairs).
// Doubles are printed with %.17g so that a value round-trips exactly and,
// more importantly, so that two identical runs produce byte-identical
// output — the determinism tests compare trace files bytewise.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace hydra::obs {

class JsonWriter {
 public:
  void begin_object() {
    comma();
    out_.push_back('{');
    fresh_ = true;
  }
  void end_object() {
    out_.push_back('}');
    fresh_ = false;
  }
  void begin_array() {
    comma();
    out_.push_back('[');
    fresh_ = true;
  }
  void end_array() {
    out_.push_back(']');
    fresh_ = false;
  }

  /// Emits `"name":` — must be followed by exactly one value.
  void key(std::string_view name) {
    comma();
    string_raw(name);
    out_.push_back(':');
    fresh_ = true;  // the upcoming value must not be preceded by a comma
  }

  void value(std::string_view s) {
    comma();
    string_raw(s);
    fresh_ = false;
  }
  void value(const char* s) { value(std::string_view{s}); }
  void value(bool b) {
    comma();
    out_ += b ? "true" : "false";
    fresh_ = false;
  }
  void value(double d) {
    comma();
    if (std::isnan(d)) {
      out_ += "null";  // JSON has no NaN
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out_ += buf;
    }
    fresh_ = false;
  }
  void value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    fresh_ = false;
  }
  void value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    fresh_ = false;
  }
  void value(std::uint32_t v) { value(std::uint64_t{v}); }
  void value(int v) { value(std::int64_t{v}); }

  template <typename T>
  void kv(std::string_view name, T v) {
    key(name);
    value(v);
  }

  /// Splices an already-serialized JSON value (e.g. a Registry snapshot).
  void raw(std::string_view json) {
    comma();
    out_ += json;
    fresh_ = false;
  }

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  void comma() {
    if (!fresh_ && !out_.empty()) out_.push_back(',');
  }

  void string_raw(std::string_view s) {
    out_.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
  }

  std::string out_;
  bool fresh_ = true;
};

}  // namespace hydra::obs
