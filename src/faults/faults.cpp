#include "faults/faults.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace hydra::faults {
namespace {

/// Splits `text` on `sep`, dropping empty pieces (so trailing separators and
/// "a;;b" are accepted).
std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  while (!text.empty()) {
    const auto pos = text.find(sep);
    const auto piece = text.substr(0, pos);
    if (!piece.empty()) out.push_back(piece);
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return out;
}

bool parse_double(std::string_view text, double* out) {
  const std::string owned(text);
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_i64(std::string_view text, std::int64_t* out) {
  const std::string owned(text);
  char* end = nullptr;
  const long long v = std::strtoll(owned.c_str(), &end, 10);
  if (end == owned.c_str() || *end != '\0') return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

struct Clause {
  std::string_view name;
  std::vector<std::pair<std::string_view, std::string_view>> kv;
};

/// Parses "name(k=v,k=v)" into its pieces.
bool parse_clause(std::string_view text, Clause* out, std::string* error) {
  const auto open = text.find('(');
  if (open == std::string_view::npos || text.back() != ')') {
    return fail(error, "clause '" + std::string(text) + "' is not name(k=v,...)");
  }
  out->name = text.substr(0, open);
  const auto body = text.substr(open + 1, text.size() - open - 2);
  for (const auto piece : split(body, ',')) {
    const auto eq = piece.find('=');
    if (eq == std::string_view::npos) {
      return fail(error, "expected key=value in '" + std::string(piece) + "'");
    }
    out->kv.emplace_back(piece.substr(0, eq), piece.substr(eq + 1));
  }
  return true;
}

bool parse_probability(const Clause& clause, std::string_view key,
                       std::string_view value, double* out, std::string* error) {
  if (!parse_double(value, out) || *out < 0.0 || *out > 1.0) {
    return fail(error, std::string(clause.name) + ": " + std::string(key) +
                           " must be a probability in [0,1]");
  }
  return true;
}

bool parse_tick(const Clause& clause, std::string_view key, std::string_view value,
                std::int64_t* out, std::string* error) {
  if (!parse_i64(value, out) || *out < 0) {
    return fail(error, std::string(clause.name) + ": " + std::string(key) +
                           " must be a non-negative tick count");
  }
  return true;
}

bool parse_party(const Clause& clause, std::string_view key, std::string_view value,
                 std::int64_t* out, std::string* error) {
  if (!parse_i64(value, out) || *out < 0) {
    return fail(error, std::string(clause.name) + ": " + std::string(key) +
                           " must be a non-negative party id");
  }
  return true;
}

bool unknown_key(const Clause& clause, std::string_view key, std::string* error) {
  fail(error, std::string(clause.name) + ": unknown key '" + std::string(key) + "'");
  return false;
}

/// Shared link-targeting check for dup/reorder clauses: a clause with
/// from/to set applies only to matching senders/receivers; absent = any.
bool link_matches(const std::optional<PartyId>& want_from,
                  const std::optional<PartyId>& want_to, PartyId from,
                  PartyId to) {
  return (!want_from.has_value() || *want_from == from) &&
         (!want_to.has_value() || *want_to == to);
}

}  // namespace

bool FaultPlan::crashes_party(PartyId id) const noexcept {
  return std::any_of(crashes.begin(), crashes.end(),
                     [id](const CrashClause& c) { return c.party == id; });
}

std::optional<Time> FaultPlan::crash_stop_at(PartyId id) const noexcept {
  std::optional<Time> at;
  for (const auto& c : crashes) {
    if (c.party == id && c.until == kTimeInfinity) {
      at = at.has_value() ? std::min(*at, c.at) : c.at;
    }
  }
  return at;
}

PartyId FaultPlan::max_party() const noexcept {
  PartyId max = 0;
  for (const auto& c : crashes) max = std::max(max, c.party);
  for (const auto& p : partitions) {
    for (const auto id : p.group) max = std::max(max, id);
  }
  if (dup) {
    if (dup->from) max = std::max(max, *dup->from);
    if (dup->to) max = std::max(max, *dup->to);
  }
  if (reorder) {
    if (reorder->from) max = std::max(max, *reorder->from);
    if (reorder->to) max = std::max(max, *reorder->to);
  }
  return max;
}

std::optional<FaultPlan> parse_fault_plan(std::string_view spec, std::string* error) {
  FaultPlan plan;
  for (const auto text : split(spec, ';')) {
    Clause clause;
    if (!parse_clause(text, &clause, error)) return std::nullopt;

    if (clause.name == "dup") {
      if (plan.dup.has_value()) {
        fail(error, "duplicate dup(...) clause");
        return std::nullopt;
      }
      DupClause dup;
      for (const auto& [key, value] : clause.kv) {
        if (key == "p") {
          if (!parse_probability(clause, key, value, &dup.p, error)) return std::nullopt;
        } else if (key == "skew") {
          std::int64_t skew = 0;
          if (!parse_tick(clause, key, value, &skew, error)) return std::nullopt;
          dup.skew = skew;
        } else if (key == "from") {
          std::int64_t v = 0;
          if (!parse_party(clause, key, value, &v, error)) return std::nullopt;
          dup.from = static_cast<PartyId>(v);
        } else if (key == "to") {
          std::int64_t v = 0;
          if (!parse_party(clause, key, value, &v, error)) return std::nullopt;
          dup.to = static_cast<PartyId>(v);
        } else {
          unknown_key(clause, key, error);
          return std::nullopt;
        }
      }
      if (dup.from && dup.to && *dup.from == *dup.to) {
        fail(error, "dup: from and to must name distinct parties "
                    "(self-links carry no wire traffic)");
        return std::nullopt;
      }
      plan.dup = dup;
    } else if (clause.name == "reorder") {
      if (plan.reorder.has_value()) {
        fail(error, "duplicate reorder(...) clause");
        return std::nullopt;
      }
      ReorderClause reorder;
      for (const auto& [key, value] : clause.kv) {
        if (key == "p") {
          if (!parse_probability(clause, key, value, &reorder.p, error)) {
            return std::nullopt;
          }
        } else if (key == "skew") {
          std::int64_t skew = 0;
          if (!parse_tick(clause, key, value, &skew, error)) return std::nullopt;
          reorder.skew = skew;
        } else if (key == "from") {
          std::int64_t v = 0;
          if (!parse_party(clause, key, value, &v, error)) return std::nullopt;
          reorder.from = static_cast<PartyId>(v);
        } else if (key == "to") {
          std::int64_t v = 0;
          if (!parse_party(clause, key, value, &v, error)) return std::nullopt;
          reorder.to = static_cast<PartyId>(v);
        } else {
          unknown_key(clause, key, error);
          return std::nullopt;
        }
      }
      if (reorder.from && reorder.to && *reorder.from == *reorder.to) {
        fail(error, "reorder: from and to must name distinct parties "
                    "(self-links carry no wire traffic)");
        return std::nullopt;
      }
      plan.reorder = reorder;
    } else if (clause.name == "crash") {
      CrashClause crash;
      bool have_party = false;
      for (const auto& [key, value] : clause.kv) {
        std::int64_t v = 0;
        if (key == "party") {
          if (!parse_tick(clause, key, value, &v, error)) return std::nullopt;
          crash.party = static_cast<PartyId>(v);
          have_party = true;
        } else if (key == "at") {
          if (!parse_tick(clause, key, value, &v, error)) return std::nullopt;
          crash.at = v;
        } else if (key == "until") {
          if (!parse_tick(clause, key, value, &v, error)) return std::nullopt;
          crash.until = v;
        } else {
          unknown_key(clause, key, error);
          return std::nullopt;
        }
      }
      if (!have_party) {
        fail(error, "crash: missing party=");
        return std::nullopt;
      }
      if (crash.until <= crash.at) {
        fail(error, "crash: until must be > at");
        return std::nullopt;
      }
      plan.crashes.push_back(crash);
    } else if (clause.name == "partition") {
      PartitionClause part;
      for (const auto& [key, value] : clause.kv) {
        if (key == "group") {
          for (const auto id_text : split(value, '.')) {
            std::int64_t id = 0;
            if (!parse_tick(clause, key, id_text, &id, error)) return std::nullopt;
            part.group.push_back(static_cast<PartyId>(id));
          }
        } else if (key == "from") {
          std::int64_t v = 0;
          if (!parse_tick(clause, key, value, &v, error)) return std::nullopt;
          part.from = v;
        } else if (key == "until") {
          std::int64_t v = 0;
          if (!parse_tick(clause, key, value, &v, error)) return std::nullopt;
          part.until = v;
        } else {
          unknown_key(clause, key, error);
          return std::nullopt;
        }
      }
      if (part.group.empty()) {
        fail(error, "partition: missing or empty group=");
        return std::nullopt;
      }
      if (part.until <= part.from) {
        fail(error, "partition: until must be > from");
        return std::nullopt;
      }
      std::sort(part.group.begin(), part.group.end());
      part.group.erase(std::unique(part.group.begin(), part.group.end()),
                       part.group.end());
      plan.partitions.push_back(std::move(part));
    } else {
      fail(error, "unknown fault clause '" + std::string(clause.name) + "'");
      return std::nullopt;
    }
  }
  return plan;
}

std::string to_string(const FaultPlan& plan) {
  std::ostringstream out;
  const char* sep = "";
  if (plan.dup) {
    out << sep << "dup(p=" << plan.dup->p;
    if (plan.dup->skew > 0) out << ",skew=" << plan.dup->skew;
    if (plan.dup->from) out << ",from=" << *plan.dup->from;
    if (plan.dup->to) out << ",to=" << *plan.dup->to;
    out << ')';
    sep = ";";
  }
  if (plan.reorder) {
    out << sep << "reorder(p=" << plan.reorder->p;
    if (plan.reorder->skew > 0) out << ",skew=" << plan.reorder->skew;
    if (plan.reorder->from) out << ",from=" << *plan.reorder->from;
    if (plan.reorder->to) out << ",to=" << *plan.reorder->to;
    out << ')';
    sep = ";";
  }
  for (const auto& c : plan.crashes) {
    out << sep << "crash(party=" << c.party << ",at=" << c.at;
    if (c.until != kTimeInfinity) out << ",until=" << c.until;
    out << ')';
    sep = ";";
  }
  for (const auto& p : plan.partitions) {
    out << sep << "partition(group=";
    for (std::size_t i = 0; i < p.group.size(); ++i) {
      if (i > 0) out << '.';
      out << p.group[i];
    }
    out << ",from=" << p.from << ",until=" << p.until << ')';
    sep = ";";
  }
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan, Config config)
    : plan_(std::move(plan)),
      config_(config),
      // Private stream: mixing a fixed tag into the run seed keeps the
      // injector's draws uncorrelated with the DelayModel's (same xoshiro
      // family, same seed would otherwise replay the delay stream).
      rng_(config.seed ^ 0xfa017ab1e5eed5ULL) {
  HYDRA_ASSERT(config_.delta >= 1);
}

bool FaultInjector::crashed(PartyId party, Time t) const noexcept {
  for (const auto& c : plan_.crashes) {
    if (c.party == party && t >= c.at && t < c.until) return true;
  }
  return false;
}

FaultInjector::Outcome FaultInjector::on_message(PartyId from, PartyId to, Time now,
                                                 Duration base) {
  Outcome out;
  out.delays[0] = base;

  // Crashed endpoints: the only legal message loss in the hybrid model.
  if (crashed(from, now)) {
    out.dropped = true;
    out.reason = "crash-sender";
    const std::lock_guard lock(mutex_);
    totals_.dropped += 1;
    return out;
  }
  // Self-delivery is local computation; links cannot touch it.
  if (from == to) return out;

  const std::lock_guard lock(mutex_);
  Duration d = base;
  bool delayed = false;

  // Partition: messages crossing the cut while it is open are HELD until the
  // heal tick plus their base delay — delayed, never lost. An open partition
  // is by definition an asynchrony violation, so no Delta clamp applies.
  for (const auto& part : plan_.partitions) {
    if (now < part.from || now >= part.until) continue;
    const bool from_inside =
        std::binary_search(part.group.begin(), part.group.end(), from);
    const bool to_inside = std::binary_search(part.group.begin(), part.group.end(), to);
    if (from_inside != to_inside) {
      d = std::max(d, (part.until - now) + base);
      delayed = true;
    }
  }

  // Reorder: bounded skew under synchrony (total delay stays <= max(base,
  // Delta), so the sync contract holds), unbounded-but-finite otherwise.
  // Link targeting gates the Rng draw itself (not just the effect): draws
  // are consumed only for eligible links, so an untargeted plan's schedule
  // is byte-identical to its pre-targeting form.
  if (plan_.reorder &&
      link_matches(plan_.reorder->from, plan_.reorder->to, from, to) &&
      rng_.next_double() < plan_.reorder->p) {
    const Duration bound =
        plan_.reorder->skew > 0 ? plan_.reorder->skew : config_.delta;
    const Duration extra = rng_.next_int(1, std::max<Duration>(1, bound));
    Duration skewed = d + extra;
    if (config_.synchronous) skewed = std::min(skewed, std::max(base, config_.delta));
    if (skewed != d) {
      d = skewed;
      delayed = true;
    }
  }

  out.delays[0] = d;
  if (delayed) totals_.delayed += 1;

  // Duplication: the copy is pure network noise — it is never counted as a
  // party send and arrives no earlier than the primary.
  if (plan_.dup && link_matches(plan_.dup->from, plan_.dup->to, from, to) &&
      rng_.next_double() < plan_.dup->p) {
    const Duration bound = plan_.dup->skew > 0 ? plan_.dup->skew : config_.delta;
    Duration copy = d + rng_.next_int(1, std::max<Duration>(1, bound));
    if (config_.synchronous) copy = std::max(d, std::min(copy, std::max(base, config_.delta)));
    if (!crashed(to, now + copy)) {
      out.duplicated = true;
      out.delays[1] = copy;
      totals_.duplicated += 1;
    }
  }

  // A receiver inside a crash window at delivery time loses the message —
  // the endpoint is down, not the link.
  if (crashed(to, now + d)) {
    out.dropped = true;
    out.duplicated = false;
    out.reason = "crash-receiver";
    totals_.dropped += 1;
  }
  return out;
}

void FaultInjector::emit_timeline() const {
  auto* tr = obs::trace();
  if (tr == nullptr) return;
  for (const auto& c : plan_.crashes) {
    tr->fault(c.at, "crash", static_cast<std::int64_t>(c.party), -1, 0,
              c.until == kTimeInfinity ? "crash-stop" : "crash-recover");
    if (c.until != kTimeInfinity) {
      tr->fault(c.until, "recover", static_cast<std::int64_t>(c.party), -1, 0, "");
    }
  }
  for (const auto& p : plan_.partitions) {
    std::ostringstream group;
    group << "group=";
    for (std::size_t i = 0; i < p.group.size(); ++i) {
      if (i > 0) group << '.';
      group << p.group[i];
    }
    tr->fault(p.from, "partition", -1, -1, 0, group.str());
    tr->fault(p.until, "heal", -1, -1, 0, group.str());
  }
}

FaultInjector::Totals FaultInjector::totals() const {
  const std::lock_guard lock(mutex_);
  return totals_;
}

}  // namespace hydra::faults
