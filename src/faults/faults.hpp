// Deterministic, seed-driven fault injection for both transports.
//
// A FaultPlan is the declarative description parsed from a `--faults=` spec
// string; a FaultInjector compiles it against one run (seed, synchrony flag,
// Delta) and sits between the DelayModel and the delivery queue. It can
//
//   - duplicate messages            dup(p=0.2[,skew=T][,from=I][,to=I])
//   - reorder them                  reorder(p=0.5[,skew=T][,from=I][,to=I])
//   - crash-stop / crash-recover    crash(party=I,at=T[,until=T])
//   - partition with scheduled heal partition(group=I.J.K,from=T,until=T)
//
// dup/reorder optionally target one link side: from= restricts the clause to
// messages sent by that party, to= to messages received by it (either alone
// matches a whole row/column of the link matrix; both together one directed
// link). Untargeted clauses apply to every non-self link.
//
// Hybrid-model contract (docs/ROBUSTNESS.md): the injector may DELAY or
// DUPLICATE honest→honest traffic but never lose it — the only drops it
// performs model a crashed endpoint (sender dead at send time, or receiver
// dead at delivery time), which the paper treats as a faulty party, not a
// faulty link. Under a synchronous network condition reorder skew is clamped
// so no delivery exceeds max(base, Delta); partitions are by construction an
// asynchrony violation and are only meaningful when judging against ta.
//
// Determinism: the injector draws from its OWN Rng (derived from the run
// seed), never from the transport's, so enabling a fault plan perturbs the
// delay stream of neither transport beyond the faults themselves, and the
// same (plan, seed) pair replays the same fault schedule on every run.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace hydra::faults {

struct DupClause {
  double p = 0.2;      ///< per-message duplication probability
  Duration skew = 0;   ///< extra delay bound for the copy; 0 = use Delta
  /// Optional link targeting: when set, only messages sent by `from` /
  /// received by `to` are eligible. Draw discipline: the injector consumes
  /// Rng draws ONLY for eligible messages, so an untargeted plan keeps its
  /// exact pre-targeting schedule and a targeted one is a pure function of
  /// (plan, seed, per-link message order).
  std::optional<PartyId> from;
  std::optional<PartyId> to;
};

struct ReorderClause {
  double p = 0.5;      ///< per-message probability of extra skew
  Duration skew = 0;   ///< extra delay drawn from [1, skew]; 0 = use Delta
  /// Optional link targeting; same semantics and draw discipline as
  /// DupClause::from/to.
  std::optional<PartyId> from;
  std::optional<PartyId> to;
};

struct CrashClause {
  PartyId party = 0;
  Time at = 0;                    ///< first tick at which the party is down
  Time until = kTimeInfinity;     ///< recovery tick; infinity = crash-stop
};

struct PartitionClause {
  std::vector<PartyId> group;     ///< one side of the cut (sorted, unique)
  Time from = 0;                  ///< first tick of the partition window
  Time until = 0;                 ///< heal tick (exclusive)
};

/// Parsed form of a `--faults=` spec: semicolon-separated clauses.
struct FaultPlan {
  std::optional<DupClause> dup;
  std::optional<ReorderClause> reorder;
  std::vector<CrashClause> crashes;
  std::vector<PartitionClause> partitions;

  [[nodiscard]] bool empty() const noexcept {
    return !dup && !reorder && crashes.empty() && partitions.empty();
  }
  /// True when any crash clause names `id` (regardless of window).
  [[nodiscard]] bool crashes_party(PartyId id) const noexcept;
  /// Tick of a crash-stop (no recovery) clause for `id`, if any.
  [[nodiscard]] std::optional<Time> crash_stop_at(PartyId id) const noexcept;
  /// Largest party id referenced anywhere (0 when none) — validate < n.
  [[nodiscard]] PartyId max_party() const noexcept;
};

/// Parses a fault spec string (grammar in docs/ROBUSTNESS.md). Returns
/// nullopt on malformed input and, when `error` is non-null, a
/// human-readable reason. The empty string parses to an empty plan.
[[nodiscard]] std::optional<FaultPlan> parse_fault_plan(std::string_view spec,
                                                        std::string* error = nullptr);

/// Canonical round-trippable rendering of a plan ("" for the empty plan).
[[nodiscard]] std::string to_string(const FaultPlan& plan);

/// One plan compiled against one run. Thread-safe: on_message() may be
/// called concurrently from many sender threads (ThreadNetwork).
class FaultInjector {
 public:
  struct Config {
    std::uint64_t seed = 1;     ///< derives the injector's private Rng
    bool synchronous = false;   ///< clamp added skew so delays stay <= Delta
    Duration delta = 1000;
  };

  /// What the injector decided for one message.
  struct Outcome {
    bool dropped = false;       ///< crashed endpoint; message never queued
    bool duplicated = false;    ///< queue a second copy at delays[1]
    std::array<Duration, 2> delays{};  ///< [0]=primary, [1]=duplicate copy
    const char* reason = "";    ///< drop cause ("crash-sender"/"crash-receiver")
  };

  FaultInjector(FaultPlan plan, Config config);

  /// Decides the fate of a message posted at `now` whose DelayModel delay is
  /// `base` (0 for self-delivery). Draws are consumed only for messages a
  /// clause is eligible to touch (link_matches for targeted dup/reorder), so
  /// the schedule is a pure function of (plan, seed, eligible-message order)
  /// and untargeted plans replay their exact pre-targeting schedules.
  [[nodiscard]] Outcome on_message(PartyId from, PartyId to, Time now, Duration base);

  /// True when `party` is inside a crash window at time `t`.
  [[nodiscard]] bool crashed(PartyId party, Time t) const noexcept;

  /// Writes the scheduled fault timeline (fault.crash / fault.recover /
  /// fault.partition / fault.heal) into the current obs trace sink, if any.
  /// Call once per run, after the obs session is installed.
  void emit_timeline() const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  struct Totals {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;  ///< messages given extra reorder/partition delay
  };
  [[nodiscard]] Totals totals() const;

 private:
  FaultPlan plan_;
  Config config_;
  mutable std::mutex mutex_;  ///< guards rng_ and totals_
  Rng rng_;
  Totals totals_;
};

}  // namespace hydra::faults
