#include "transport/thread_net.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "faults/faults.hpp"
#include "net/delivery.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/prof.hpp"

namespace hydra::transport {

using Clock = std::chrono::steady_clock;

/// The per-party Env implementation; used only from the party's own thread.
class ThreadNetwork::ThreadEnv final : public sim::Env {
 public:
  ThreadEnv(ThreadNetwork* net, PartyId id) : net_(net), id_(id) {}

  void send(PartyId to, sim::Message msg) override { net_->post(id_, to, std::move(msg)); }

  void broadcast(const sim::Message& msg) override {
    for (PartyId to = 0; to < net_->config_.n; ++to) net_->post(id_, to, msg);
  }

  void set_timer(Time at, std::uint64_t timer_id) override {
    timers_.emplace(at, timer_id);
  }

  [[nodiscard]] Time now() const override { return net_->now_ticks(); }
  [[nodiscard]] PartyId self() const override { return id_; }
  [[nodiscard]] std::size_t n() const override { return net_->config_.n; }

  /// Earliest pending timer deadline (kTimeInfinity if none).
  [[nodiscard]] Time next_timer() const {
    return timers_.empty() ? kTimeInfinity : timers_.top().first;
  }

  /// Pops one due timer id, if any.
  std::optional<std::uint64_t> pop_due_timer(Time now) {
    if (timers_.empty() || timers_.top().first > now) return std::nullopt;
    const auto id = timers_.top().second;
    timers_.pop();
    return id;
  }

 private:
  using TimerEntry = std::pair<Time, std::uint64_t>;
  ThreadNetwork* net_;
  PartyId id_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<>> timers_;
};

ThreadNetwork::ThreadNetwork(ThreadNetConfig config,
                             std::unique_ptr<sim::DelayModel> delay_model)
    : config_(config),
      delay_model_(std::move(delay_model)),
      delay_rng_(config.seed),
      pipeline_(net::EgressConfig{.n = config.n,
                                  .delta = config.delta,
                                  .per_round = false,
                                  .eager_ids = true,
                                  .messages_counter = "net.messages",
                                  .bytes_counter = "net.bytes",
                                  .delay_histogram = "net.delay_delta"}) {
  HYDRA_ASSERT(delay_model_ != nullptr);
  HYDRA_ASSERT(config_.n >= 1);
  HYDRA_ASSERT(config_.us_per_tick > 0.0);
  mailboxes_.reserve(config_.n);
  for (std::size_t i = 0; i < config_.n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

ThreadNetwork::~ThreadNetwork() = default;

Time ThreadNetwork::now_ticks() const {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - epoch_)
                      .count();
  return static_cast<Time>(static_cast<double>(us) / config_.us_per_tick);
}

Clock::time_point ThreadNetwork::tick_deadline(Time at) const {
  return epoch_ + std::chrono::microseconds(
                      static_cast<std::int64_t>(static_cast<double>(at) *
                                                config_.us_per_tick) +
                      1);
}

void ThreadNetwork::post(PartyId from, PartyId to, sim::Message msg) {
  HYDRA_ASSERT(to < config_.n);
  const bool self = from == to;
  // One timestamp for the whole post: computing the delay against one sample
  // and stamping `due` with a later one would stretch delivery times by the
  // (lock-contended) gap between the two reads.
  const Time now = now_ticks();
  Duration base = 0;
  if (!self) {
    const std::lock_guard lock(delay_mutex_);
    base = delay_model_->delay(from, to, now, msg, delay_rng_);
  }
  // All egress policy — self-post accounting exemption, fault outcomes,
  // sequence/send-id allocation, trace + monitor emission — lives in the
  // shared net::EgressPipeline. (Wall-clock-driven tick stamps: thread
  // transport traces are NOT deterministic across runs, unlike the
  // simulator's.) This loop only schedules the surviving copies.
  const auto egress = pipeline_.on_send(from, to, msg, now, base, injector_);
  if (egress.copies == 0) return;  // crashed endpoint dropped it
  if (egress.copies == 2) {
    // The duplicate gets its own queue position but keeps the original's
    // send id as its trace cause — one send, two delivers.
    sim::Message copy = msg;
    mailboxes_[to]->push(Mailbox::Item{now + egress.delay[0], egress.seq[0],
                                       egress.send_id, from, std::move(msg)});
    mailboxes_[to]->push(Mailbox::Item{now + egress.delay[1], egress.seq[1],
                                       egress.send_id, from, std::move(copy)});
    return;
  }
  mailboxes_[to]->push(Mailbox::Item{now + egress.delay[0], egress.seq[0],
                                     egress.send_id, from, std::move(msg)});
}

ThreadNetStats ThreadNetwork::run(
    std::vector<std::unique_ptr<sim::IParty>>& parties,
    const std::function<bool(const sim::IParty&, PartyId)>& finished) {
  HYDRA_ASSERT(parties.size() == config_.n);
  epoch_ = Clock::now();

  // Per-party watchdog state: the completion loop reads these to decide who
  // is satisfied, and a timeout turns them into a who-stalled-and-why
  // report instead of a bare flag.
  std::vector<std::atomic<bool>> done(config_.n);
  std::vector<std::atomic<std::uint64_t>> handled(config_.n);
  std::vector<std::atomic<Time>> last_progress(config_.n);
  for (std::size_t i = 0; i < config_.n; ++i) {
    done[i].store(false, std::memory_order_relaxed);
    handled[i].store(0, std::memory_order_relaxed);
    last_progress[i].store(0, std::memory_order_relaxed);
  }
  std::atomic<bool> stop{false};

  // Party threads inherit the launching thread's observability context, so a
  // network run from inside a per-run session keeps writing to that run's
  // registry/trace instead of the globals.
  obs::Context* obs_ctx = obs::current_context();

  auto worker = [&, obs_ctx](PartyId id) {
    const obs::ScopedContext obs_scope(obs_ctx);
    // Workers inherit the profiler through the context; the scope stack is
    // thread-local, so concurrent parties attribute self/child time
    // independently while aggregating into the shared per-phase atomics.
    HYDRA_PROF_SCOPE("transport.worker");
    ThreadEnv env(this, id);
    sim::IParty& party = *parties[id];
    party.start(env);
    if (finished(party, id)) done[id].store(true, std::memory_order_release);

    while (!stop.load(std::memory_order_acquire)) {
      const Time timer_at = env.next_timer();
      auto item = mailboxes_[id]->pop_due([this] { return now_ticks(); },
                                          [this](Time at) { return tick_deadline(at); },
                                          timer_at);
      if (stop.load(std::memory_order_acquire)) break;
      bool progressed = false;
      if (item) {
        if (obs::enabled()) {
          // net::DeliveryGate emits the deliver trace event and brackets the
          // handler with begin_dispatch/end_dispatch, so invariant
          // violations raised inside it carry this message's send id as
          // their cause — same semantics as the simulator (the cause is
          // per-thread in MonitorHost, so concurrent workers don't clash).
          net::DeliveryGate::dispatch(now_ticks(), item->from, id, item->msg,
                                      item->cause, [&] {
            party.on_message(env, item->from, item->msg);
          });
        } else {
          party.on_message(env, item->from, item->msg);
        }
        progressed = true;
      }
      // Fire all due timers.
      const Time now = now_ticks();
      while (auto timer_id = env.pop_due_timer(now)) {
        HYDRA_PROF_SCOPE("transport.timer");
        party.on_timer(env, *timer_id);
        progressed = true;
      }
      if (progressed) {
        handled[id].fetch_add(1, std::memory_order_relaxed);
        last_progress[id].store(now_ticks(), std::memory_order_relaxed);
        if (!done[id].load(std::memory_order_relaxed) && finished(party, id)) {
          done[id].store(true, std::memory_order_release);
        }
      }
      // A finished party keeps processing traffic (it must keep relaying
      // ΠrBC echoes for the others) until the network shuts down.
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(config_.n);
  for (PartyId id = 0; id < config_.n; ++id) threads.emplace_back(worker, id);

  // A party whose crash window has opened is excused from shutdown: a
  // crash-stop can never satisfy `finished`, and a crash-recover party may
  // have lost traffic nobody retransmits — either way the oracle counts it
  // as faulty and judges the run on the others, so waiting for it buys
  // nothing but the full wall-clock timeout.
  auto crash_excused = [&](PartyId id) {
    if (injector_ == nullptr) return false;
    for (const auto& c : injector_->plan().crashes) {
      if (c.party == id && now_ticks() >= c.at) return true;
    }
    return false;
  };
  auto satisfied = [&](PartyId id) {
    return done[id].load(std::memory_order_acquire) || crash_excused(id);
  };

  // Hoisted like the simulator's drain loop: the launching thread's context
  // (and with it the monitor host) cannot change while run() executes.
  obs::MonitorHost* mon = obs::enabled() ? obs::monitors() : nullptr;

  const auto deadline = Clock::now() + std::chrono::milliseconds(config_.timeout_ms);
  bool timed_out = false;
  bool monitor_aborted = false;
  for (;;) {
    std::size_t ok = 0;
    for (PartyId id = 0; id < config_.n; ++id) ok += satisfied(id) ? 1 : 0;
    if (ok == config_.n) break;
    if (mon != nullptr && mon->abort_requested()) {
      // Strict mode: a monitor asked to stop the run. The watchdog is the
      // only loop every run passes through, so it owns the abort (workers
      // keep draining until `stop` flips — an abort is a shutdown, not a
      // crash).
      monitor_aborted = true;
      break;
    }
    if (Clock::now() >= deadline) {
      timed_out = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  stop.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) box->close();
  for (auto& thread : threads) thread.join();

  ThreadNetStats stats;
  pipeline_.export_stats(stats);  // after join: relaxed counters are settled
  stats.timed_out = timed_out;
  stats.monitor_aborted = monitor_aborted;
  stats.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                        epoch_)
                      .count();
  stats.progress.resize(config_.n);
  for (PartyId id = 0; id < config_.n; ++id) {
    auto& p = stats.progress[id];
    p.finished = done[id].load();
    p.events = handled[id].load();
    p.last_progress = last_progress[id].load();
    p.crash_stopped =
        injector_ != nullptr && injector_->plan().crash_stop_at(id).has_value();
  }
  if (timed_out) {
    std::ostringstream detail;
    const char* sep = "";
    for (PartyId id = 0; id < config_.n; ++id) {
      const auto& p = stats.progress[id];
      if (p.finished || crash_excused(id)) continue;
      detail << sep << "party " << id << ": unfinished after " << p.events
             << " events, last progress at tick " << p.last_progress;
      sep = "; ";
    }
    stats.timeout_detail = detail.str();
    HYDRA_LOG_ERROR("thread_net: timeout — %s", stats.timeout_detail.c_str());
  }
  return stats;
}

}  // namespace hydra::transport
