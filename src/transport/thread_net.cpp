#include "transport/thread_net.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"

namespace hydra::transport {

using Clock = std::chrono::steady_clock;

/// Thread-safe priority mailbox ordered by delivery tick.
class ThreadNetwork::Mailbox {
 public:
  struct Item {
    Time due;
    std::uint64_t seq;
    PartyId from;
    sim::Message msg;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void push(Item item) {
    {
      const std::lock_guard lock(mutex_);
      queue_.push(std::move(item));
    }
    cv_.notify_one();
  }

  void close() {
    {
      const std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until an item is due (relative to `now_ticks()`), the given
  /// wall-clock deadline passes, or the mailbox closes. Returns the due item
  /// if any.
  template <typename NowFn, typename DeadlineFn>
  std::optional<Item> pop_due(NowFn&& now_ticks, DeadlineFn&& tick_deadline,
                              Time local_deadline) {
    std::unique_lock lock(mutex_);
    while (true) {
      if (closed_) return std::nullopt;
      const Time now = now_ticks();
      if (!queue_.empty() && queue_.top().due <= now) {
        Item item = queue_.top();
        queue_.pop();
        return item;
      }
      // Sleep until the earliest of: next queued item, the caller's timer
      // deadline. New pushes wake us early.
      Time wake = local_deadline;
      if (!queue_.empty()) wake = std::min(wake, queue_.top().due);
      if (wake == kTimeInfinity) {
        cv_.wait(lock);
      } else {
        if (cv_.wait_until(lock, tick_deadline(wake)) == std::cv_status::timeout) {
          // Timer (or queued item) is now due; let the caller dispatch.
          if (queue_.empty() || queue_.top().due > now_ticks()) return std::nullopt;
        }
      }
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  bool closed_ = false;
};

/// The per-party Env implementation; used only from the party's own thread.
class ThreadNetwork::ThreadEnv final : public sim::Env {
 public:
  ThreadEnv(ThreadNetwork* net, PartyId id) : net_(net), id_(id) {}

  void send(PartyId to, sim::Message msg) override { net_->post(id_, to, std::move(msg)); }

  void broadcast(const sim::Message& msg) override {
    for (PartyId to = 0; to < net_->config_.n; ++to) net_->post(id_, to, msg);
  }

  void set_timer(Time at, std::uint64_t timer_id) override {
    timers_.emplace(at, timer_id);
  }

  [[nodiscard]] Time now() const override { return net_->now_ticks(); }
  [[nodiscard]] PartyId self() const override { return id_; }
  [[nodiscard]] std::size_t n() const override { return net_->config_.n; }

  /// Earliest pending timer deadline (kTimeInfinity if none).
  [[nodiscard]] Time next_timer() const {
    return timers_.empty() ? kTimeInfinity : timers_.top().first;
  }

  /// Pops one due timer id, if any.
  std::optional<std::uint64_t> pop_due_timer(Time now) {
    if (timers_.empty() || timers_.top().first > now) return std::nullopt;
    const auto id = timers_.top().second;
    timers_.pop();
    return id;
  }

 private:
  using TimerEntry = std::pair<Time, std::uint64_t>;
  ThreadNetwork* net_;
  PartyId id_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<>> timers_;
};

ThreadNetwork::ThreadNetwork(ThreadNetConfig config,
                             std::unique_ptr<sim::DelayModel> delay_model)
    : config_(config), delay_model_(std::move(delay_model)), delay_rng_(config.seed) {
  HYDRA_ASSERT(delay_model_ != nullptr);
  HYDRA_ASSERT(config_.n >= 1);
  HYDRA_ASSERT(config_.us_per_tick > 0.0);
  mailboxes_.reserve(config_.n);
  for (std::size_t i = 0; i < config_.n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

ThreadNetwork::~ThreadNetwork() = default;

Time ThreadNetwork::now_ticks() const {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - epoch_)
                      .count();
  return static_cast<Time>(static_cast<double>(us) / config_.us_per_tick);
}

Clock::time_point ThreadNetwork::tick_deadline(Time at) const {
  return epoch_ + std::chrono::microseconds(
                      static_cast<std::int64_t>(static_cast<double>(at) *
                                                config_.us_per_tick) +
                      1);
}

void ThreadNetwork::post(PartyId from, PartyId to, sim::Message msg) {
  HYDRA_ASSERT(to < config_.n);
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(msg.wire_size(), std::memory_order_relaxed);
  // One timestamp for the whole post: computing the delay against one sample
  // and stamping `due` with a later one would stretch delivery times by the
  // (lock-contended) gap between the two reads.
  const Time now = now_ticks();
  Duration d = 0;
  if (from != to) {
    const std::lock_guard lock(delay_mutex_);
    d = delay_model_->delay(from, to, now, msg, delay_rng_);
  }
  // The mailbox sequence number doubles as the trace send-event id (+1 so 0
  // keeps meaning "no cause").
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    auto& registry = obs::registry();
    registry.counter("net.messages").inc();
    registry.counter("net.bytes").inc(msg.wire_size());
    // Wall-clock-driven tick stamps: thread-transport traces are NOT
    // deterministic across runs (unlike simulator traces).
    if (auto* tr = obs::trace()) {
      tr->message_send(now, from, to, msg.key.tag, msg.key.a, msg.key.b,
                       msg.kind, msg.wire_size(), seq + 1);
    }
    if (auto* mon = obs::monitors()) {
      mon->on_send(now, from, msg.wire_size());
    }
  }
  mailboxes_[to]->push(Mailbox::Item{now + d, seq, from, std::move(msg)});
}

ThreadNetStats ThreadNetwork::run(
    std::vector<std::unique_ptr<sim::IParty>>& parties,
    const std::function<bool(const sim::IParty&, PartyId)>& finished) {
  HYDRA_ASSERT(parties.size() == config_.n);
  epoch_ = Clock::now();

  std::atomic<std::size_t> done_count{0};
  std::atomic<bool> stop{false};

  // Party threads inherit the launching thread's observability context, so a
  // network run from inside a per-run session keeps writing to that run's
  // registry/trace instead of the globals.
  obs::Context* obs_ctx = obs::current_context();

  auto worker = [&, obs_ctx](PartyId id) {
    const obs::ScopedContext obs_scope(obs_ctx);
    ThreadEnv env(this, id);
    sim::IParty& party = *parties[id];
    party.start(env);
    bool done = finished(party, id);
    if (done) done_count.fetch_add(1);

    while (!stop.load(std::memory_order_acquire)) {
      const Time timer_at = env.next_timer();
      auto item = mailboxes_[id]->pop_due([this] { return now_ticks(); },
                                          [this](Time at) { return tick_deadline(at); },
                                          timer_at);
      if (stop.load(std::memory_order_acquire)) break;
      if (item) {
        if (obs::enabled()) {
          if (auto* tr = obs::trace()) {
            const auto& m = item->msg;
            tr->message_deliver(now_ticks(), item->from, id, m.key.tag, m.key.a,
                                m.key.b, m.kind, m.wire_size(), item->seq + 1);
          }
        }
        party.on_message(env, item->from, item->msg);
      }
      // Fire all due timers.
      const Time now = now_ticks();
      while (auto timer_id = env.pop_due_timer(now)) {
        party.on_timer(env, *timer_id);
      }
      if (!done && finished(party, id)) {
        done = true;
        done_count.fetch_add(1);
      }
      // A finished party keeps processing traffic (it must keep relaying
      // ΠrBC echoes for the others) until the network shuts down.
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(config_.n);
  for (PartyId id = 0; id < config_.n; ++id) threads.emplace_back(worker, id);

  const auto deadline = Clock::now() + std::chrono::milliseconds(config_.timeout_ms);
  bool timed_out = false;
  while (done_count.load() < config_.n) {
    if (Clock::now() >= deadline) {
      timed_out = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  stop.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) box->close();
  for (auto& thread : threads) thread.join();

  ThreadNetStats stats;
  stats.messages = messages_.load();
  stats.bytes = bytes_.load();
  stats.timed_out = timed_out;
  stats.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                        epoch_)
                      .count();
  return stats;
}

}  // namespace hydra::transport
