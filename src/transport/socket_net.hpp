// Socket transport: parties speaking length-prefixed frames over TCP or
// Unix-domain sockets (wire format in socket_wire.hpp).
//
// The same sim::IParty protocol objects run unchanged; what changes versus
// the in-process thread transport is that every non-self message crosses the
// OS — serialized into a {instance, from, to, seq, payload} frame, written
// to a per-link socket, and decoded on the receiving side through the
// hardened common/serialize.hpp readers. A process may host all n parties
// (the single-process `--backend=tcp` mode, full mesh over loopback) or any
// subset (`hydra serve`/`hydra join`: one party per process, peers named by
// endpoint).
//
// Seam contract (docs/ARCHITECTURE.md): all egress policy — accounting,
// fault outcomes, ids, trace/monitor emission — lives in the shared
// net::EgressPipeline, applied at SOCKET EGRESS before the frame is queued
// for its link, so drop/dup/reorder/partition fault plans behave identically
// to sim/threads. Delivery dispatch goes through net::DeliveryGate on the
// party's worker thread. Per-party watchdog semantics (PartyProgress,
// timeout_detail, crash-windowed excusal) match the thread transport.
//
// Threading: per local party, one worker (protocol handlers + timers, the
// same loop discipline as ThreadNetwork) and one writer (pops the party's
// deadline-ordered egress queue and writes due frames to the destination
// link); per local listener, one acceptor; per inbound connection, one
// reader bound at handshake to the peer's claimed PartyId. Frames whose
// header `from` disagrees with the bound id are dropped and counted
// (authenticated-sender enforcement).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/egress.hpp"
#include "net/wire_stats.hpp"
#include "sim/delay.hpp"
#include "sim/env.hpp"
#include "sim/message.hpp"
#include "transport/mailbox.hpp"

namespace hydra::faults {
class FaultInjector;
}

namespace hydra::transport {

struct SocketNetConfig {
  std::size_t n = 4;
  Duration delta = 1000;       ///< Delta in ticks (same unit as protocol Params)
  double us_per_tick = 1.0;    ///< wall-clock microseconds per tick
  std::uint64_t seed = 1;      ///< seeds delay RNG; derives the handshake run id
  std::int64_t timeout_ms = 30'000;  ///< wall-clock run cap
  bool uds = false;            ///< AF_UNIX instead of TCP over loopback
  /// One address per party: "host:port" (tcp, numeric IPv4) or a socket
  /// path (uds). Empty => self-assigned (ephemeral loopback ports / a fresh
  /// tmpdir), which requires all parties local.
  std::vector<std::string> endpoints;
  /// Parties hosted by THIS process. Empty => all of them.
  std::vector<PartyId> local;
  /// Multi-instance serving bound: inbound MSG frames whose tag carries an
  /// instance id >= this value (common/types.hpp tag layout) are rejected on
  /// the hardened decode path and counted in frames_decode_dropped. 0 =
  /// single-instance mode, no instance validation.
  std::uint32_t instance_tag_limit = 0;
};

/// Validates a uds endpoint path at PARSE time, before any socket call:
/// returns "" when usable, else an actionable error naming the limit
/// (sockaddr_un::sun_path, ~108 bytes) — a too-long path would otherwise
/// surface as an inscrutable bind/connect failure deep inside the run.
[[nodiscard]] std::string validate_uds_endpoint(const std::string& endpoint);

/// Wire accounting in the shared net::WireStats base (filled through the
/// same net::EgressPipeline as sim/threads; in multi-process mode it covers
/// the LOCAL parties' sends — each process accounts for its own).
struct SocketNetStats : net::WireStats {
  bool timed_out = false;
  std::int64_t wall_ms = 0;
  bool monitor_aborted = false;
  /// One entry per party (index = PartyId); remote parties report only the
  /// fin/crash flags this process can observe.
  std::vector<net::PartyProgress> progress;
  /// Empty unless timed_out: same who-stalled-and-why format as the thread
  /// transport (local parties only — remote stalls are their host's report).
  std::string timeout_detail;
  /// Hardened ingress counters (socket_wire.hpp): authenticated-sender
  /// rejections and malformed-frame drops. Zero on every healthy run.
  std::uint64_t frames_auth_dropped = 0;
  std::uint64_t frames_decode_dropped = 0;
  /// Connection/frame/queue health counters and latency histograms
  /// (net/wire_stats.hpp), covering this process's links only.
  net::TransportHealth health;
};

class SocketNetwork {
 public:
  SocketNetwork(SocketNetConfig config, std::unique_ptr<sim::DelayModel> delay_model);
  ~SocketNetwork();

  SocketNetwork(const SocketNetwork&) = delete;
  SocketNetwork& operator=(const SocketNetwork&) = delete;

  /// Runs the LOCAL parties until each satisfies `finished` (and, in
  /// multi-process mode, every remote party announced FIN) or the timeout
  /// elapses. `parties` must have size n; non-local slots are never started.
  /// Parties are borrowed, inspectable after run() returns (threads joined).
  SocketNetStats run(std::vector<std::unique_ptr<sim::IParty>>& parties,
                     const std::function<bool(const sim::IParty&, PartyId)>& finished);

  /// Installs a fault injector consulted at socket egress for every message.
  /// Borrowed: must outlive run(). Crash-windowed parties are excused by the
  /// watchdog exactly as on the thread transport.
  void set_fault_injector(faults::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

 private:
  class SocketEnv;
  friend class SocketEnv;

  void post(PartyId from, PartyId to, sim::Message msg);
  void reader_loop(int fd, PartyId bound_from, PartyId local_to);
  void writer_loop(PartyId from);
  /// write_frame with health accounting: frame-size + flush-latency
  /// histograms and the frames_sent counter. Every frame this process emits
  /// (HELLO/MSG/FIN) goes through here.
  bool send_frame(int fd, std::mutex& mutex, const Bytes& body);
  /// Coalesced-flush variant: writes an already length-prefixed buffer of
  /// `frames` frames as ONE kernel send, with the same flush-latency
  /// accounting plus the flushes counter. The writer loop batches every
  /// due frame per destination link into such buffers.
  bool flush_link(int fd, std::mutex& mutex, const Bytes& buffer,
                  std::uint32_t frames);
  [[nodiscard]] net::TransportHealth snapshot_health() const;
  [[nodiscard]] Time now_ticks() const;
  [[nodiscard]] std::chrono::steady_clock::time_point tick_deadline(Time at) const;
  [[nodiscard]] bool is_local(PartyId id) const { return local_mask_[id]; }

  SocketNetConfig config_;
  std::unique_ptr<sim::DelayModel> delay_model_;
  faults::FaultInjector* injector_ = nullptr;
  std::mutex delay_mutex_;
  Rng delay_rng_;

  std::vector<bool> local_mask_;
  std::vector<std::string> endpoints_;
  std::string auto_tmpdir_;  ///< self-assigned uds dir, cleaned up at exit

  /// Inbound delivery queues (local parties only; same Mailbox as the thread
  /// transport). Tie-breaks come from one arrival counter shared by socket
  /// ingress and self-posts.
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<std::uint64_t> arrival_seq_{0};

  /// Per local party, the deadline-ordered egress queue its writer drains.
  /// Item convention (writer queues only): `from` holds the DESTINATION,
  /// `cause` the send id. FIN frames bypass these queues — the watchdog
  /// writes them directly, serialized with the writer by the link mutex.
  std::vector<std::unique_ptr<Mailbox>> out_queues_;

  /// out_fds_[from * n + to]: connected socket for the from->to link
  /// (local `from` only; -1 elsewhere). Writes are serialized by
  /// link_mutexes_[from * n + to] (writer thread + watchdog FINs).
  std::vector<int> out_fds_;
  std::vector<std::unique_ptr<std::mutex>> link_mutexes_;
  std::vector<int> listen_fds_;
  std::mutex conn_mutex_;  ///< guards conn_fds_ and conn_threads_
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  std::vector<std::atomic<bool>> fin_received_;
  std::atomic<std::uint64_t> auth_dropped_{0};
  std::atomic<std::uint64_t> decode_dropped_{0};
  std::atomic<bool> stop_{false};

  /// Concurrent accumulation side of net::TransportHealth — every counter a
  /// relaxed atomic (writer threads, acceptors, readers and the watchdog all
  /// touch them); snapshot_health() flattens into the plain struct.
  struct HealthAtomics {
    std::atomic<std::uint64_t> connect_attempts{0};
    std::atomic<std::uint64_t> connects{0};
    std::atomic<std::uint64_t> accepts{0};
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> egress_hwm{0};
    std::atomic<std::uint64_t> mailbox_hwm{0};
    std::array<std::atomic<std::uint64_t>, net::TransportHealth::kBuckets>
        flush_ns_buckets{};
    std::array<std::atomic<std::uint64_t>, net::TransportHealth::kBuckets>
        frame_bytes_buckets{};

    static void raise(std::atomic<std::uint64_t>& hwm, std::uint64_t v) noexcept {
      std::uint64_t cur = hwm.load(std::memory_order_relaxed);
      while (v > cur &&
             !hwm.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
      }
    }
  };
  HealthAtomics health_;

  std::chrono::steady_clock::time_point epoch_;
  net::ConcurrentEgressPipeline pipeline_;
};

}  // namespace hydra::transport
