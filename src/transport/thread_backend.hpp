// net::Backend adapter for the real-thread in-process transport.
#pragma once

namespace hydra::transport {

/// Registers the thread transport as net backend "threads". Idempotent
/// (re-registering replaces the factory); called from
/// harness::ensure_backends_registered() — explicit rather than a static
/// initializer, which the linker would drop from a static library.
void register_thread_backend();

}  // namespace hydra::transport
