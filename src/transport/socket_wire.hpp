// Wire format of the socket transport (backends "tcp"/"uds").
//
// Every frame on a connection is a u32 little-endian length prefix followed
// by a body encoded with common/serialize.hpp — the same binary format the
// protocol layers already use for payloads, so a socket run's byte
// accounting matches the in-process transports'. Three frame types:
//
//   HELLO  first frame on every connection: magic, version, run id, n, and
//          the sender's claimed PartyId. The receiver binds the connection
//          to that id — the authenticated-sender property is enforced
//          per-connection from here on.
//   MSG    one protocol message: {instance (tag,a,b), from, to, seq, kind,
//          payload}. `seq` is the sender-assigned send id, used as the
//          causal trace id at delivery (duplicate copies share it: one send
//          event, two delivers). Frames whose `from` disagrees with the
//          connection's bound id are dropped and counted.
//   FIN    the sending party reached its finishing condition; used by the
//          distributed shutdown handshake (multi-process serve/join mode).
//
// Decode paths are hardened: the length prefix is capped (kMaxFrameBytes),
// the body is parsed with the overflow-safe Reader, trailing bytes are
// rejected, and every failure is reported — never UB — because these bytes
// arrive from the OS, not a trusted in-process queue (docs/DEPLOYMENT.md).
#pragma once

#include <cstdint>
#include <optional>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "sim/message.hpp"

namespace hydra::transport::wire {

inline constexpr std::uint32_t kMagic = 0x41415948;  // "HYAA" little-endian
/// Wire version 2: MSG `seq` is specified as the origin's trace send id (the
/// cross-process causal id consumed by trace stitching), and HELLO version
/// mismatches are rejected with an actionable log instead of silently.
inline constexpr std::uint32_t kVersion = 2;
/// Hard cap on a frame body. Anything larger is a framing attack (or a
/// corrupted stream): the connection is closed, never allocated for.
inline constexpr std::uint32_t kMaxFrameBytes = 16u * 1024u * 1024u;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kMsg = 2,
  kFin = 3,
};

struct Hello {
  std::uint64_t run_id = 0;  ///< seed-derived; both ends must agree
  PartyId from = 0;          ///< claimed sender identity, bound at handshake
  std::uint32_t n = 0;       ///< party count; must match the receiver's
  /// Version as decoded off the wire. decode_frame() keeps a well-formed
  /// HELLO of any version so the handshake can reject a mismatch with an
  /// actionable message (peer's version vs ours) instead of a silent drop.
  std::uint32_t version = kVersion;
};

struct Msg {
  InstanceKey key;
  PartyId from = 0;
  PartyId to = 0;
  std::uint64_t seq = 0;  ///< sender-assigned send id (trace cause)
  std::uint8_t kind = 0;
  Bytes payload;
};

struct Fin {
  PartyId from = 0;
};

/// Decoded frame; `type` selects which member is meaningful.
struct Frame {
  FrameType type = FrameType::kHello;
  Hello hello;
  Msg msg;
  Fin fin;
};

[[nodiscard]] inline Bytes encode_hello(const Hello& h) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kHello));
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(h.run_id);
  w.u32(h.from);
  w.u32(h.n);
  return w.take();
}

[[nodiscard]] inline Bytes encode_msg(PartyId from, PartyId to, std::uint64_t seq,
                                      const sim::Message& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kMsg));
  w.u32(m.key.tag);
  w.u32(m.key.a);
  w.u32(m.key.b);
  w.u32(from);
  w.u32(to);
  w.u64(seq);
  w.u8(m.kind);
  w.bytes(m.payload);
  return w.take();
}

[[nodiscard]] inline Bytes encode_fin(PartyId from) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kFin));
  w.u32(from);
  return w.take();
}

/// Parses one frame body (the bytes after the length prefix). nullopt means
/// the body is malformed — unknown type, truncated, or trailing garbage —
/// and the connection should be treated as desynchronized.
[[nodiscard]] inline std::optional<Frame> decode_frame(
    std::span<const std::uint8_t> body) {
  Reader r(body);
  Frame f;
  switch (r.u8()) {
    case static_cast<std::uint8_t>(FrameType::kHello): {
      f.type = FrameType::kHello;
      if (r.u32() != kMagic) return std::nullopt;
      f.hello.version = r.u32();
      f.hello.run_id = r.u64();
      f.hello.from = r.u32();
      f.hello.n = r.u32();
      break;
    }
    case static_cast<std::uint8_t>(FrameType::kMsg): {
      f.type = FrameType::kMsg;
      f.msg.key.tag = r.u32();
      f.msg.key.a = r.u32();
      f.msg.key.b = r.u32();
      f.msg.from = r.u32();
      f.msg.to = r.u32();
      f.msg.seq = r.u64();
      f.msg.kind = r.u8();
      f.msg.payload = r.bytes();
      break;
    }
    case static_cast<std::uint8_t>(FrameType::kFin): {
      f.type = FrameType::kFin;
      f.fin.from = r.u32();
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return f;
}

/// Validates a decoded MSG frame against the connection's bound identity.
/// Returns nullptr when acceptable, else the reject reason. The
/// authenticated-sender contract: `from` must equal the id the connection
/// was bound to at handshake ("auth"), the coordinates must address a real
/// local destination ("dest"), and — when the process serves multiple
/// instances (instance_tag_limit > 0) — the tag's instance id
/// (common/types.hpp layout) must stay below the served bound ("instance"),
/// so a peer cannot address slab state that was never provisioned.
[[nodiscard]] inline const char* validate_msg(const Msg& m, PartyId bound_from,
                                              PartyId local_to, std::size_t n,
                                              std::uint32_t instance_tag_limit = 0) {
  if (m.from != bound_from) return "auth";
  if (m.to != local_to || m.to >= n || m.from >= n) return "dest";
  if (instance_tag_limit != 0 &&
      (m.key.tag >> kInstanceTagShift) >= instance_tag_limit) {
    return "instance";
  }
  return nullptr;
}

}  // namespace hydra::transport::wire
