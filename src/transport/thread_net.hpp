// Real-thread in-process transport.
//
// Runs the same IParty protocol objects as the discrete-event simulator,
// but on one OS thread per party with real wall-clock time: mailboxes are
// mutex+condvar priority queues ordered by delivery deadline, timers are
// per-thread deadline heaps, and a tick maps to a configurable number of
// microseconds. A DelayModel (the same interface the simulator uses) shapes
// artificial network latency, so synchronous and asynchronous conditions
// can be reproduced under genuine concurrency.
//
// Threading contract: a party's handlers run exclusively on its own thread;
// cross-thread interaction is only mailbox push/pop. Party state may be
// inspected from the outside ONLY after run() returned (threads joined).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/egress.hpp"
#include "net/wire_stats.hpp"
#include "sim/delay.hpp"
#include "sim/env.hpp"
#include "sim/message.hpp"
#include "transport/mailbox.hpp"

namespace hydra::faults {
class FaultInjector;
}

namespace hydra::transport {

struct ThreadNetConfig {
  std::size_t n = 4;
  Duration delta = 1000;       ///< Delta in ticks (same unit as protocol Params)
  double us_per_tick = 1.0;    ///< wall-clock microseconds per tick
  std::uint64_t seed = 1;      ///< seeds the per-sender delay RNGs
  std::int64_t timeout_ms = 30'000;  ///< wall-clock run cap
};

/// Per-party progress snapshot, filled in by the watchdog after the run.
/// The definition lives in net/wire_stats.hpp so backend-neutral code
/// (harness, sweep summaries, hydra report) can consume it.
using PartyProgress = net::PartyProgress;

/// Wire accounting (messages/bytes/per-party) lives in the shared
/// net::WireStats base, filled through the same net::EgressPipeline the
/// simulator uses (self-posts excluded, identical semantics). Per-round
/// vectors stay empty: wall-clock round boundaries are not comparable
/// across nondeterministic schedules.
struct ThreadNetStats : net::WireStats {
  bool timed_out = false;
  std::int64_t wall_ms = 0;
  /// Stopped early because a strict-mode invariant monitor requested it
  /// (obs/monitor.hpp); polled by the completion watchdog.
  bool monitor_aborted = false;
  /// One entry per party (index = PartyId).
  std::vector<PartyProgress> progress;
  /// Empty unless timed_out: names each stalled party with its event count
  /// and last-progress tick, so a timeout says WHO stalled and why.
  std::string timeout_detail;
};

class ThreadNetwork {
 public:
  /// `delay_model` is shared by all senders and called under a lock.
  ThreadNetwork(ThreadNetConfig config, std::unique_ptr<sim::DelayModel> delay_model);
  ~ThreadNetwork();

  ThreadNetwork(const ThreadNetwork&) = delete;
  ThreadNetwork& operator=(const ThreadNetwork&) = delete;

  /// Runs the parties until `finished(party, id)` is true for every party or
  /// the timeout elapses. `finished` is evaluated on each party's own thread
  /// after every handled event (so it may touch party state safely).
  /// The parties are borrowed: the caller keeps ownership and may inspect
  /// them after run() returns (all threads are joined by then).
  ThreadNetStats run(std::vector<std::unique_ptr<sim::IParty>>& parties,
                     const std::function<bool(const sim::IParty&, PartyId)>& finished);

  /// Installs a fault injector (src/faults/) consulted on every post().
  /// Borrowed: must outlive run(). Parties crash-stopped forever by the plan
  /// are treated as satisfied by the completion watchdog — they can never
  /// finish, and that is not a timeout.
  void set_fault_injector(faults::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

 private:
  class ThreadEnv;
  friend class ThreadEnv;

  void post(PartyId from, PartyId to, sim::Message msg);

  ThreadNetConfig config_;
  std::unique_ptr<sim::DelayModel> delay_model_;
  faults::FaultInjector* injector_ = nullptr;
  std::mutex delay_mutex_;
  Rng delay_rng_;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::chrono::steady_clock::time_point epoch_;

  /// The shared send-side path (relaxed atomic counters — post() runs
  /// concurrently on every sender thread). Eager id mode: every post
  /// allocates a mailbox tie-break sequence number, which doubles as the
  /// trace send id (+1 so 0 keeps meaning "no cause"). Per-network, NOT
  /// function-static: a shared counter would leak tie-break ordering
  /// between concurrently running networks and break run isolation.
  net::ConcurrentEgressPipeline pipeline_;

  [[nodiscard]] Time now_ticks() const;
  [[nodiscard]] std::chrono::steady_clock::time_point tick_deadline(Time at) const;
};

}  // namespace hydra::transport
