#include "transport/thread_backend.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "net/backend.hpp"
#include "transport/thread_net.hpp"

namespace hydra::transport {
namespace {

/// The parties stay owned by the caller (ThreadNetwork borrows them and
/// joins every worker before run() returns), satisfying the net::Backend
/// ownership contract trivially.
class ThreadBackend final : public net::Backend {
 public:
  ThreadBackend(const net::BackendConfig& config,
                std::unique_ptr<sim::DelayModel> delay_model)
      : us_per_tick_(config.us_per_tick),
        net_(ThreadNetConfig{.n = config.n,
                             .delta = config.delta,
                             .us_per_tick = config.us_per_tick,
                             .seed = config.seed,
                             .timeout_ms = config.timeout_ms},
             std::move(delay_model)) {}

  void set_fault_injector(faults::FaultInjector* injector) override {
    net_.set_fault_injector(injector);
  }

  net::BackendStats run(std::vector<std::unique_ptr<sim::IParty>>& parties,
                        const FinishedFn& finished) override {
    const ThreadNetStats stats = net_.run(parties, finished);
    net::BackendStats out;
    out.wire = stats;  // slice down to the shared WireStats base
    // Virtual end time derived from the wall clock via the tick mapping —
    // coarse (the watchdog polls every ~1 ms) but in the same unit as the
    // simulator's, so rounds = end_time / Delta stays comparable.
    out.end_time = static_cast<Time>(static_cast<double>(stats.wall_ms) *
                                     1000.0 / us_per_tick_);
    out.monitor_aborted = stats.monitor_aborted;
    out.timed_out = stats.timed_out;
    out.wall_ms = stats.wall_ms;
    out.progress = stats.progress;
    out.timeout_detail = stats.timeout_detail;
    return out;
  }

 private:
  double us_per_tick_;
  ThreadNetwork net_;
};

}  // namespace

void register_thread_backend() {
  net::register_backend(
      "threads",
      [](const net::BackendConfig& config,
         std::unique_ptr<sim::DelayModel> delay_model) -> std::unique_ptr<net::Backend> {
        return std::make_unique<ThreadBackend>(config, std::move(delay_model));
      });
}

}  // namespace hydra::transport
