// net::Backend adapter for the socket transport.
#pragma once

namespace hydra::transport {

/// Registers the socket transport as net backends "tcp" and "uds" (one code
/// path; the name selects the address family). Idempotent (re-registering
/// replaces the factory); called from harness::ensure_backends_registered()
/// — explicit rather than a static initializer, which the linker would drop
/// from a static library.
void register_socket_backends();

}  // namespace hydra::transport
