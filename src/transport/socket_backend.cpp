#include "transport/socket_backend.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "net/backend.hpp"
#include "transport/socket_net.hpp"

namespace hydra::transport {
namespace {

/// The parties stay owned by the caller (SocketNetwork borrows them and
/// joins every worker before run() returns), satisfying the net::Backend
/// ownership contract trivially. "tcp" and "uds" share this adapter — the
/// registered name only flips SocketNetConfig::uds.
class SocketBackend final : public net::Backend {
 public:
  SocketBackend(const net::BackendConfig& config, bool uds,
                std::unique_ptr<sim::DelayModel> delay_model)
      : us_per_tick_(config.us_per_tick),
        net_(SocketNetConfig{.n = config.n,
                             .delta = config.delta,
                             .us_per_tick = config.us_per_tick,
                             .seed = config.seed,
                             .timeout_ms = config.timeout_ms,
                             .uds = uds,
                             .endpoints = config.endpoints,
                             .local = config.local_parties,
                             .instance_tag_limit = config.instance_tag_limit},
             std::move(delay_model)) {}

  void set_fault_injector(faults::FaultInjector* injector) override {
    net_.set_fault_injector(injector);
  }

  net::BackendStats run(std::vector<std::unique_ptr<sim::IParty>>& parties,
                        const FinishedFn& finished) override {
    const SocketNetStats stats = net_.run(parties, finished);
    net::BackendStats out;
    out.wire = stats;  // slice down to the shared WireStats base
    // Same coarse wall-clock-to-ticks mapping as the thread backend, so
    // rounds = end_time / Delta stays comparable across backends.
    out.end_time = static_cast<Time>(static_cast<double>(stats.wall_ms) *
                                     1000.0 / us_per_tick_);
    out.monitor_aborted = stats.monitor_aborted;
    out.timed_out = stats.timed_out;
    out.wall_ms = stats.wall_ms;
    out.progress = stats.progress;
    out.timeout_detail = stats.timeout_detail;
    out.frames_auth_dropped = stats.frames_auth_dropped;
    out.frames_decode_dropped = stats.frames_decode_dropped;
    out.health = stats.health;
    return out;
  }

 private:
  double us_per_tick_;
  SocketNetwork net_;
};

}  // namespace

void register_socket_backends() {
  for (const bool uds : {false, true}) {
    net::register_backend(
        uds ? "uds" : "tcp",
        [uds](const net::BackendConfig& config,
              std::unique_ptr<sim::DelayModel> delay_model)
            -> std::unique_ptr<net::Backend> {
          return std::make_unique<SocketBackend>(config, uds,
                                                 std::move(delay_model));
        });
  }
}

}  // namespace hydra::transport
