#include "transport/socket_net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "faults/faults.hpp"
#include "net/delivery.hpp"
#include "obs/context.hpp"
#include "obs/monitor.hpp"
#include "obs/prof.hpp"
#include "obs/stats.hpp"
#include "transport/socket_wire.hpp"

namespace hydra::transport {
namespace {

using Clock = std::chrono::steady_clock;

/// Full write with EINTR handling. MSG_NOSIGNAL: a peer that died mid-run
/// must surface as a failed write, not a process-killing SIGPIPE.
bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Full read. Returns 1 on success, 0 on clean EOF before the first byte
/// (orderly connection end at a frame boundary), -1 on error or truncation.
int read_exact(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

enum class ReadFrame { kOk, kEof, kBad };

/// Reads one length-prefixed frame body. The length prefix is validated
/// BEFORE any allocation: zero or above wire::kMaxFrameBytes is a framing
/// attack (or stream corruption) and poisons the connection.
ReadFrame read_frame(int fd, Bytes& body) {
  std::uint8_t prefix[4];
  switch (read_exact(fd, prefix, sizeof prefix)) {
    case 0: return ReadFrame::kEof;
    case -1: return ReadFrame::kBad;
    default: break;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{prefix[i]} << (8 * i);
  if (len == 0 || len > wire::kMaxFrameBytes) return ReadFrame::kBad;
  body.resize(len);
  return read_exact(fd, body.data(), len) == 1 ? ReadFrame::kOk : ReadFrame::kBad;
}

/// One frame = one buffer = one send(): prefix + body, serialized per link
/// by `mutex` (the party's writer thread and the watchdog's FIN share fds).
bool write_frame(int fd, std::mutex& mutex, const Bytes& body) {
  Bytes frame;
  frame.reserve(4 + body.size());
  const auto len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  frame.insert(frame.end(), body.begin(), body.end());
  const std::lock_guard lock(mutex);
  return write_all(fd, frame.data(), frame.size());
}

void set_nodelay(int fd, bool uds) {
  if (uds) return;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void set_recv_timeout(int fd, long seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

/// "host:port" with a numeric IPv4 host (the socket backend does not
/// resolve names — deployment docs say to pass addresses).
std::optional<sockaddr_in> parse_tcp(const std::string& endpoint) {
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  const std::string host = endpoint.substr(0, colon);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return std::nullopt;
  const long port = std::strtol(endpoint.c_str() + colon + 1, nullptr, 10);
  if (port < 0 || port > 65535) return std::nullopt;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return addr;
}

std::optional<sockaddr_un> parse_uds(const std::string& endpoint) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (endpoint.empty() || endpoint.size() >= sizeof addr.sun_path) return std::nullopt;
  std::memcpy(addr.sun_path, endpoint.c_str(), endpoint.size() + 1);
  return addr;
}

/// Binds + listens on `endpoint`; for tcp port 0 the endpoint string is
/// rewritten with the kernel-assigned port. Returns -1 on failure.
int listen_on(std::string& endpoint, bool uds) {
  if (uds) {
    const auto addr = parse_uds(endpoint);
    if (!addr) return -1;
    ::unlink(endpoint.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof *addr) != 0 ||
        ::listen(fd, 64) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  auto addr = parse_tcp(endpoint);
  if (!addr) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof *addr) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return -1;
  }
  if (addr->sin_port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      ::close(fd);
      return -1;
    }
    char host[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &bound.sin_addr, host, sizeof host);
    endpoint = std::string(host) + ":" + std::to_string(ntohs(bound.sin_port));
  }
  return fd;
}

/// Connects to `endpoint`, retrying until `deadline` — in multi-process mode
/// peers come up at their own pace. Returns -1 once the deadline passes.
/// Every dial (including retries) bumps `attempts`, so the health report
/// shows how long peers kept each other waiting.
int connect_retry(const std::string& endpoint, bool uds, Clock::time_point deadline,
                  std::atomic<std::uint64_t>& attempts) {
  for (;;) {
    attempts.fetch_add(1, std::memory_order_relaxed);
    int fd = -1;
    if (uds) {
      if (const auto addr = parse_uds(endpoint)) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd >= 0 &&
            ::connect(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof *addr) == 0) {
          return fd;
        }
      }
    } else {
      if (const auto addr = parse_tcp(endpoint)) {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd >= 0 &&
            ::connect(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof *addr) == 0) {
          set_nodelay(fd, uds);
          return fd;
        }
      }
    }
    if (fd >= 0) ::close(fd);
    if (Clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace

std::string validate_uds_endpoint(const std::string& endpoint) {
  if (endpoint.empty()) return "uds endpoint is empty";
  const std::size_t limit = sizeof(sockaddr_un{}.sun_path);
  if (endpoint.size() >= limit) {
    return "uds endpoint \"" + endpoint + "\" is " +
           std::to_string(endpoint.size()) +
           " bytes, but AF_UNIX socket paths are limited to " +
           std::to_string(limit - 1) +
           " bytes (sockaddr_un::sun_path); use a shorter path, e.g. under "
           "/tmp";
  }
  return "";
}

/// The per-party Env implementation; used only from the party's own worker
/// thread (same contract as ThreadNetwork::ThreadEnv).
class SocketNetwork::SocketEnv final : public sim::Env {
 public:
  SocketEnv(SocketNetwork* net, PartyId id) : net_(net), id_(id) {}

  void send(PartyId to, sim::Message msg) override { net_->post(id_, to, std::move(msg)); }

  void broadcast(const sim::Message& msg) override {
    for (PartyId to = 0; to < net_->config_.n; ++to) net_->post(id_, to, msg);
  }

  void set_timer(Time at, std::uint64_t timer_id) override {
    timers_.emplace(at, timer_id);
  }

  [[nodiscard]] Time now() const override { return net_->now_ticks(); }
  [[nodiscard]] PartyId self() const override { return id_; }
  [[nodiscard]] std::size_t n() const override { return net_->config_.n; }

  [[nodiscard]] Time next_timer() const {
    return timers_.empty() ? kTimeInfinity : timers_.top().first;
  }

  std::optional<std::uint64_t> pop_due_timer(Time now) {
    if (timers_.empty() || timers_.top().first > now) return std::nullopt;
    const auto id = timers_.top().second;
    timers_.pop();
    return id;
  }

 private:
  using TimerEntry = std::pair<Time, std::uint64_t>;
  SocketNetwork* net_;
  PartyId id_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<>> timers_;
};

SocketNetwork::SocketNetwork(SocketNetConfig config,
                             std::unique_ptr<sim::DelayModel> delay_model)
    : config_(std::move(config)),
      delay_model_(std::move(delay_model)),
      delay_rng_(config_.seed),
      local_mask_(config_.n, false),
      fin_received_(config_.n),
      pipeline_(net::EgressConfig{.n = config_.n,
                                  .delta = config_.delta,
                                  .per_round = false,
                                  .eager_ids = true,
                                  .messages_counter = "net.messages",
                                  .bytes_counter = "net.bytes",
                                  .delay_histogram = "net.delay_delta"}) {
  HYDRA_ASSERT(delay_model_ != nullptr);
  HYDRA_ASSERT(config_.n >= 1);
  HYDRA_ASSERT(config_.us_per_tick > 0.0);
  if (config_.local.empty()) {
    local_mask_.assign(config_.n, true);
  } else {
    for (const PartyId id : config_.local) {
      HYDRA_ASSERT_MSG(id < config_.n, "socket transport: local party id >= n");
      local_mask_[id] = true;
    }
  }
  mailboxes_.reserve(config_.n);
  out_queues_.reserve(config_.n);
  for (std::size_t i = 0; i < config_.n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    out_queues_.push_back(std::make_unique<Mailbox>());
    fin_received_[i].store(false, std::memory_order_relaxed);
  }
  out_fds_.assign(config_.n * config_.n, -1);
}

SocketNetwork::~SocketNetwork() = default;

Time SocketNetwork::now_ticks() const {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch_)
          .count();
  return static_cast<Time>(static_cast<double>(us) / config_.us_per_tick);
}

Clock::time_point SocketNetwork::tick_deadline(Time at) const {
  return epoch_ + std::chrono::microseconds(
                      static_cast<std::int64_t>(static_cast<double>(at) *
                                                config_.us_per_tick) +
                      1);
}

void SocketNetwork::post(PartyId from, PartyId to, sim::Message msg) {
  HYDRA_ASSERT(to < config_.n);
  const bool self = from == to;
  const Time now = now_ticks();
  Duration base = 0;
  if (!self) {
    const std::lock_guard lock(delay_mutex_);
    base = delay_model_->delay(from, to, now, msg, delay_rng_);
  }
  // All egress policy lives in the shared net::EgressPipeline — the fault
  // injector acts here, at socket egress, so drop/dup/reorder/partition
  // plans shape the frame stream exactly as they shape the other backends'
  // queues. This function only schedules the surviving copies.
  const auto egress = pipeline_.on_send(from, to, msg, now, base, injector_);
  if (egress.copies == 0) return;  // crashed endpoint dropped it
  // Self-deliveries bypass the socket (local computation, same as both
  // in-process transports); everything else is queued for the party's
  // writer, which serializes the frame when its delay elapses. Item
  // convention on writer queues: `from` holds the DESTINATION.
  auto push_copy = [&](std::uint32_t idx, sim::Message&& m) {
    Mailbox::Item item{now + egress.delay[idx],
                       arrival_seq_.fetch_add(1, std::memory_order_relaxed),
                       egress.send_id, self ? from : to, std::move(m)};
    Mailbox& box = self ? *mailboxes_[to] : *out_queues_[from];
    box.push(std::move(item));
    HealthAtomics::raise(self ? health_.mailbox_hwm : health_.egress_hwm,
                         box.size());
  };
  if (egress.copies == 2) {
    sim::Message copy = msg;
    push_copy(0, std::move(msg));
    push_copy(1, std::move(copy));
    return;
  }
  push_copy(0, std::move(msg));
}

bool SocketNetwork::send_frame(int fd, std::mutex& mutex, const Bytes& body) {
  health_.frame_bytes_buckets[net::TransportHealth::bucket_of(body.size())]
      .fetch_add(1, std::memory_order_relaxed);
  // Flush latency is lock wait + kernel send() — under backpressure (full
  // socket buffers) this is where the stall shows up, which is exactly what
  // the histogram is for.
  const auto t0 = Clock::now();
  const bool ok = write_frame(fd, mutex, body);
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  health_.flush_ns_buckets[net::TransportHealth::bucket_of(ns)].fetch_add(
      1, std::memory_order_relaxed);
  if (ok) health_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

bool SocketNetwork::flush_link(int fd, std::mutex& mutex, const Bytes& buffer,
                               std::uint32_t frames) {
  const auto t0 = Clock::now();
  bool ok;
  {
    const std::lock_guard lock(mutex);
    ok = write_all(fd, buffer.data(), buffer.size());
  }
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  health_.flush_ns_buckets[net::TransportHealth::bucket_of(ns)].fetch_add(
      1, std::memory_order_relaxed);
  health_.flushes.fetch_add(1, std::memory_order_relaxed);
  if (ok) health_.frames_sent.fetch_add(frames, std::memory_order_relaxed);
  return ok;
}

net::TransportHealth SocketNetwork::snapshot_health() const {
  net::TransportHealth out;
  out.connect_attempts = health_.connect_attempts.load(std::memory_order_relaxed);
  out.connects = health_.connects.load(std::memory_order_relaxed);
  out.accepts = health_.accepts.load(std::memory_order_relaxed);
  out.frames_sent = health_.frames_sent.load(std::memory_order_relaxed);
  out.flushes = health_.flushes.load(std::memory_order_relaxed);
  out.frames_received = health_.frames_received.load(std::memory_order_relaxed);
  out.egress_hwm = health_.egress_hwm.load(std::memory_order_relaxed);
  out.mailbox_hwm = health_.mailbox_hwm.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < net::TransportHealth::kBuckets; ++i) {
    out.flush_ns_buckets[i] =
        health_.flush_ns_buckets[i].load(std::memory_order_relaxed);
    out.frame_bytes_buckets[i] =
        health_.frame_bytes_buckets[i].load(std::memory_order_relaxed);
  }
  return out;
}

void SocketNetwork::writer_loop(PartyId from) {
  const std::size_t n = config_.n;
  // Per-destination coalescing buffers, reused across flush windows: every
  // frame due in a window is appended length-prefixed to its link's buffer,
  // then each touched link gets ONE kernel send — under multi-instance load
  // thousands of tiny frames share a syscall instead of paying one each.
  std::vector<Bytes> buffers(n);
  std::vector<std::uint32_t> frames(n, 0);
  std::vector<PartyId> touched;
  for (;;) {
    auto item = out_queues_[from]->pop_due([this] { return now_ticks(); },
                                           [this](Time at) { return tick_deadline(at); },
                                           kTimeInfinity);
    if (!item) return;  // queue closed: shutdown
    const Time now = now_ticks();
    for (;;) {
      const PartyId to = item->from;  // destination, by writer-queue convention
      if (out_fds_[from * n + to] >= 0) {
        const Bytes body = wire::encode_msg(from, to, item->cause, item->msg);
        // Per-frame size accounting happens at append; the flush-latency
        // histogram covers the whole coalesced write (flush_link).
        health_.frame_bytes_buckets[net::TransportHealth::bucket_of(body.size())]
            .fetch_add(1, std::memory_order_relaxed);
        Bytes& buffer = buffers[to];
        const auto len = static_cast<std::uint32_t>(body.size());
        for (int i = 0; i < 4; ++i) {
          buffer.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
        }
        buffer.insert(buffer.end(), body.begin(), body.end());
        if (frames[to]++ == 0) touched.push_back(to);
      }
      // Drain every sibling already due so it rides the same flush. The
      // non-blocking probe keeps delay semantics exact: a frame whose
      // deadline is still in the future waits for its own window.
      auto next = out_queues_[from]->try_pop_due(now);
      if (!next) break;
      item = std::move(next);
    }
    for (const PartyId to : touched) {
      if (!flush_link(out_fds_[from * n + to], *link_mutexes_[from * n + to],
                      buffers[to], frames[to]) &&
          !stop_.load(std::memory_order_acquire)) {
        HYDRA_LOG_ERROR("socket_net: write to party %u failed (%s)", to,
                        std::strerror(errno));
      }
      buffers[to].clear();
      frames[to] = 0;
    }
    touched.clear();
  }
}

void SocketNetwork::reader_loop(int fd, PartyId bound_from, PartyId local_to) {
  const std::size_t n = config_.n;
  Bytes body;
  while (!stop_.load(std::memory_order_acquire)) {
    switch (read_frame(fd, body)) {
      case ReadFrame::kEof:
        return;  // orderly close at a frame boundary
      case ReadFrame::kBad:
        // Framing error — the stream is desynchronized; nothing after this
        // point can be trusted, so the connection is poisoned and closed.
        decode_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      case ReadFrame::kOk:
        break;
    }
    auto frame = wire::decode_frame(body);
    if (!frame) {
      decode_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;  // parse failure: also a poisoned stream
    }
    health_.frames_received.fetch_add(1, std::memory_order_relaxed);
    switch (frame->type) {
      case wire::FrameType::kMsg: {
        // Authenticated-sender enforcement: the connection speaks for
        // exactly the PartyId it bound at handshake. A frame claiming any
        // other identity is dropped and counted — the connection survives
        // (one forged frame must not censor the honest traffic behind it).
        if (const char* why =
                wire::validate_msg(frame->msg, bound_from, local_to, n,
                                   config_.instance_tag_limit)) {
          (std::strcmp(why, "auth") == 0 ? auth_dropped_ : decode_dropped_)
              .fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        sim::Message msg{frame->msg.key, frame->msg.kind,
                         std::move(frame->msg.payload)};
        mailboxes_[local_to]->push(
            Mailbox::Item{now_ticks(),
                          arrival_seq_.fetch_add(1, std::memory_order_relaxed),
                          frame->msg.seq, bound_from, std::move(msg)});
        HealthAtomics::raise(health_.mailbox_hwm, mailboxes_[local_to]->size());
        break;
      }
      case wire::FrameType::kFin:
        if (frame->fin.from == bound_from) {
          fin_received_[bound_from].store(true, std::memory_order_release);
        } else {
          auth_dropped_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case wire::FrameType::kHello:
        // A second handshake mid-stream is protocol misuse, not fatal.
        decode_dropped_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
}

SocketNetStats SocketNetwork::run(
    std::vector<std::unique_ptr<sim::IParty>>& parties,
    const std::function<bool(const sim::IParty&, PartyId)>& finished) {
  HYDRA_ASSERT(parties.size() == config_.n);
  const std::size_t n = config_.n;
  const std::uint64_t run_id = config_.seed;
  const bool all_local =
      std::all_of(local_mask_.begin(), local_mask_.end(), [](bool b) { return b; });

  // ---------------------------------------------------------- endpoints
  endpoints_ = config_.endpoints;
  if (endpoints_.empty()) {
    HYDRA_ASSERT_MSG(all_local,
                     "socket transport: self-assigned endpoints require every "
                     "party local (pass endpoints for serve/join mode)");
    if (config_.uds) {
      char tmpl[] = "/tmp/hydra-uds-XXXXXX";
      HYDRA_ASSERT_MSG(::mkdtemp(tmpl) != nullptr,
                       "socket transport: mkdtemp failed for uds endpoints");
      auto_tmpdir_ = tmpl;
      for (std::size_t i = 0; i < n; ++i) {
        endpoints_.push_back(auto_tmpdir_ + "/p" + std::to_string(i) + ".sock");
      }
    } else {
      endpoints_.assign(n, "127.0.0.1:0");
    }
  }
  HYDRA_ASSERT_MSG(endpoints_.size() == n,
                   "socket transport: endpoints must name every party");
  if (config_.uds) {
    // Last-resort check — the CLI validates user-supplied paths at parse
    // time; this catches programmatic callers before an inscrutable
    // bind/connect failure.
    for (const auto& endpoint : endpoints_) {
      const std::string error = validate_uds_endpoint(endpoint);
      HYDRA_ASSERT_MSG(error.empty(), error.c_str());
    }
  }
  link_mutexes_.clear();
  for (std::size_t i = 0; i < n * n; ++i) {
    link_mutexes_.push_back(std::make_unique<std::mutex>());
  }

  // ---------------------------------------------------------- listeners
  listen_fds_.assign(n, -1);
  for (PartyId id = 0; id < n; ++id) {
    if (!is_local(id)) continue;
    listen_fds_[id] = listen_on(endpoints_[id], config_.uds);
    HYDRA_ASSERT_MSG(listen_fds_[id] >= 0,
                     "socket transport: cannot listen on party endpoint");
  }

  // ----------------------------------------------------------- connects
  // Outbound links first: every connection sits in the peer's accept
  // backlog until its acceptor runs, so ordering is deadlock-free even when
  // every process does this sequentially. Multi-process peers may still be
  // starting up — hence the retry window.
  const auto setup_deadline =
      Clock::now() + std::chrono::milliseconds(std::max<std::int64_t>(
                         1000, config_.timeout_ms));
  for (PartyId from = 0; from < n; ++from) {
    if (!is_local(from)) continue;
    for (PartyId to = 0; to < n; ++to) {
      if (to == from) continue;
      const int fd = connect_retry(endpoints_[to], config_.uds, setup_deadline,
                                   health_.connect_attempts);
      HYDRA_ASSERT_MSG(fd >= 0, "socket transport: cannot connect to peer");
      health_.connects.fetch_add(1, std::memory_order_relaxed);
      const Bytes hello = wire::encode_hello(
          {.run_id = run_id, .from = from, .n = static_cast<std::uint32_t>(n)});
      HYDRA_ASSERT_MSG(send_frame(fd, *link_mutexes_[from * n + to], hello),
                       "socket transport: handshake write failed");
      out_fds_[from * n + to] = fd;
    }
  }

  // The protocol clock starts here: ticks elapsed during connection setup
  // would otherwise offset every timer and delay deadline.
  epoch_ = Clock::now();

  // ----------------------------------------------------------- acceptors
  // One acceptor per local listener; each accepted connection gets its own
  // thread that performs the HELLO handshake (under a receive timeout, so a
  // silent client cannot pin it) and then becomes the connection's reader,
  // bound to the claimed PartyId.
  auto handle_connection = [this, run_id, n](int fd, PartyId local_to) {
    set_recv_timeout(fd, 5);
    Bytes body;
    std::optional<wire::Frame> frame;
    if (read_frame(fd, body) == ReadFrame::kOk) frame = wire::decode_frame(body);
    // Wire-version mismatch gets its own actionable rejection: decode_frame
    // deliberately parses ANY version's HELLO (docs/DEPLOYMENT.md wire
    // contract) so this layer can tell the operator which side to upgrade
    // instead of silently dropping the peer.
    if (frame && frame->type == wire::FrameType::kHello &&
        frame->hello.version != wire::kVersion) {
      HYDRA_LOG_ERROR(
          "socket_net: peer party %u speaks wire version %u, this build "
          "speaks %u — upgrade the older side (mixed-version runs are not "
          "supported); rejecting connection",
          frame->hello.from, frame->hello.version, wire::kVersion);
      decode_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (!frame || frame->type != wire::FrameType::kHello ||
        frame->hello.run_id != run_id || frame->hello.n != n ||
        frame->hello.from >= n) {
      decode_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;  // never bound: no identity, no frames accepted
    }
    set_recv_timeout(fd, 0);
    health_.accepts.fetch_add(1, std::memory_order_relaxed);
    // The bound HELLO counts as received here; reader_loop counts the rest
    // (keeps frames_sent/frames_received symmetric on a healthy mesh).
    health_.frames_received.fetch_add(1, std::memory_order_relaxed);
    reader_loop(fd, frame->hello.from, local_to);
  };

  std::vector<std::thread> acceptors;
  for (PartyId id = 0; id < n; ++id) {
    if (!is_local(id)) continue;
    acceptors.emplace_back([this, id, &handle_connection] {
      for (;;) {
        const int fd = ::accept(listen_fds_[id], nullptr, nullptr);
        if (stop_.load(std::memory_order_acquire)) {
          if (fd >= 0) ::close(fd);
          return;
        }
        if (fd < 0) {
          if (errno == EINTR) continue;
          return;  // listener shut down
        }
        set_nodelay(fd, config_.uds);
        const std::lock_guard lock(conn_mutex_);
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back(
            [fd, id, &handle_connection] { handle_connection(fd, id); });
      }
    });
  }

  // ------------------------------------------------------------- workers
  // Watchdog state and the worker loop mirror the thread transport
  // (transport/thread_net.cpp) — same progress accounting, same
  // crash-excusal, same timeout_detail format — per the backend-parity
  // contract for PartyProgress/timeout reporting.
  std::vector<std::atomic<bool>> done(n);
  std::vector<std::atomic<std::uint64_t>> handled(n);
  std::vector<std::atomic<Time>> last_progress(n);
  for (std::size_t i = 0; i < n; ++i) {
    done[i].store(false, std::memory_order_relaxed);
    handled[i].store(0, std::memory_order_relaxed);
    last_progress[i].store(0, std::memory_order_relaxed);
  }

  obs::Context* obs_ctx = obs::current_context();
  auto worker = [&, obs_ctx](PartyId id) {
    const obs::ScopedContext obs_scope(obs_ctx);
    HYDRA_PROF_SCOPE("transport.worker");
    SocketEnv env(this, id);
    sim::IParty& party = *parties[id];
    party.start(env);
    if (finished(party, id)) done[id].store(true, std::memory_order_release);

    while (!stop_.load(std::memory_order_acquire)) {
      const Time timer_at = env.next_timer();
      auto item = mailboxes_[id]->pop_due([this] { return now_ticks(); },
                                          [this](Time at) { return tick_deadline(at); },
                                          timer_at);
      if (stop_.load(std::memory_order_acquire)) break;
      bool progressed = false;
      if (item) {
        if (obs::enabled()) {
          net::DeliveryGate::dispatch(now_ticks(), item->from, id, item->msg,
                                      item->cause, [&] {
            party.on_message(env, item->from, item->msg);
          });
        } else {
          party.on_message(env, item->from, item->msg);
        }
        progressed = true;
      }
      const Time now = now_ticks();
      while (auto timer_id = env.pop_due_timer(now)) {
        HYDRA_PROF_SCOPE("transport.timer");
        party.on_timer(env, *timer_id);
        progressed = true;
      }
      if (progressed) {
        handled[id].fetch_add(1, std::memory_order_relaxed);
        last_progress[id].store(now_ticks(), std::memory_order_relaxed);
        if (!done[id].load(std::memory_order_relaxed) && finished(party, id)) {
          done[id].store(true, std::memory_order_release);
        }
      }
      // A finished party keeps relaying (ΠrBC echoes) until shutdown.
    }
  };

  std::vector<std::thread> workers;
  std::vector<std::thread> writers;
  for (PartyId id = 0; id < n; ++id) {
    if (!is_local(id)) continue;
    workers.emplace_back(worker, id);
    writers.emplace_back([this, id] { writer_loop(id); });
  }

  // ------------------------------------------------------------ watchdog
  auto crash_excused = [&](PartyId id) {
    if (injector_ == nullptr) return false;
    for (const auto& c : injector_->plan().crashes) {
      if (c.party == id && now_ticks() >= c.at) return true;
    }
    return false;
  };
  auto satisfied = [&](PartyId id) {
    return done[id].load(std::memory_order_acquire) || crash_excused(id);
  };

  obs::MonitorHost* mon = obs::enabled() ? obs::monitors() : nullptr;

  // Live telemetry: looked up once (context-scoped, obs/stats.hpp), then the
  // sampling thread pulls snapshots from live transport state. The provider
  // captures run()-local watchdog arrays by reference — it is removed below,
  // before any of that state dies.
  obs::StatsPublisher* stats_pub = obs::stats();
  if (stats_pub != nullptr) {
    stats_pub->set_provider([&, n](obs::StatsSnapshot& s) {
      s.messages = pipeline_.messages();
      s.bytes = pipeline_.bytes();
      s.auth_dropped = auth_dropped_.load(std::memory_order_relaxed);
      s.decode_dropped = decode_dropped_.load(std::memory_order_relaxed);
      for (PartyId id = 0; id < n; ++id) {
        if (!is_local(id)) continue;
        s.egress_depth += out_queues_[id]->size();
        s.mailbox_depth += mailboxes_[id]->size();
        obs::StatsSnapshot::Party p;
        p.id = id;
        p.finished = done[id].load(std::memory_order_acquire);
        p.events = handled[id].load(std::memory_order_relaxed);
        p.round = config_.delta > 0
                      ? static_cast<std::uint64_t>(
                            last_progress[id].load(std::memory_order_relaxed) /
                            config_.delta)
                      : 0;
        if (p.finished) ++s.decided;
        s.round = std::max(s.round, p.round);
        s.parties.push_back(p);
      }
    });
  }

  // Multi-process shutdown handshake: announce each local party's finish to
  // every remote party with a FIN frame (written directly, serialized with
  // the writer by the link mutex), and wait for the remotes' FINs before
  // stopping — a crash-windowed remote is excused, it can never FIN.
  std::vector<bool> fin_sent(n, false);
  auto announce_finished = [&] {
    if (all_local) return;
    for (PartyId id = 0; id < n; ++id) {
      if (!is_local(id) || fin_sent[id] || !done[id].load(std::memory_order_acquire)) {
        continue;
      }
      fin_sent[id] = true;
      const Bytes fin = wire::encode_fin(id);
      for (PartyId to = 0; to < n; ++to) {
        if (to == id || is_local(to)) continue;
        const int fd = out_fds_[id * n + to];
        if (fd >= 0) send_frame(fd, *link_mutexes_[id * n + to], fin);
      }
    }
  };

  const auto deadline = Clock::now() + std::chrono::milliseconds(config_.timeout_ms);
  bool timed_out = false;
  bool monitor_aborted = false;
  for (;;) {
    announce_finished();
    std::size_t ok = 0;
    std::size_t expected = 0;
    for (PartyId id = 0; id < n; ++id) {
      ++expected;
      if (is_local(id)) {
        ok += satisfied(id) ? 1 : 0;
      } else {
        ok += (fin_received_[id].load(std::memory_order_acquire) ||
               crash_excused(id))
                  ? 1
                  : 0;
      }
    }
    if (ok == expected) break;
    if (mon != nullptr && mon->abort_requested()) {
      monitor_aborted = true;
      break;
    }
    if (Clock::now() >= deadline) {
      timed_out = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The final heartbeat ("final":1) must sample the provider while the
  // watchdog state it captures is still alive, so the publisher stops HERE;
  // the harness's own stop() at run teardown is then an idempotent no-op.
  if (stats_pub != nullptr) {
    stats_pub->stop();
    stats_pub->set_provider(nullptr);
  }

  // ------------------------------------------------------------ shutdown
  stop_.store(true, std::memory_order_release);
  for (PartyId id = 0; id < n; ++id) {
    if (!is_local(id)) continue;
    mailboxes_[id]->close();
    out_queues_[id]->close();
  }
  // Order matters: silence the listeners and join the acceptors first, so
  // no connection can register after the wake-up sweep below.
  for (const int fd : listen_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : acceptors) t.join();
  {
    const std::lock_guard lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (const int fd : out_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : workers) t.join();
  for (auto& t : writers) t.join();
  for (auto& t : conn_threads_) t.join();
  conn_threads_.clear();
  for (int& fd : conn_fds_) ::close(fd);
  conn_fds_.clear();
  for (int& fd : out_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  for (PartyId id = 0; id < n; ++id) {
    if (listen_fds_[id] < 0) continue;
    ::close(listen_fds_[id]);
    if (config_.uds) ::unlink(endpoints_[id].c_str());
  }
  listen_fds_.clear();
  if (!auto_tmpdir_.empty()) {
    ::rmdir(auto_tmpdir_.c_str());
    auto_tmpdir_.clear();
  }

  // --------------------------------------------------------------- stats
  SocketNetStats stats;
  pipeline_.export_stats(stats);  // after join: relaxed counters are settled
  stats.timed_out = timed_out;
  stats.monitor_aborted = monitor_aborted;
  stats.wall_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - epoch_)
          .count();
  stats.frames_auth_dropped = auth_dropped_.load(std::memory_order_relaxed);
  stats.frames_decode_dropped = decode_dropped_.load(std::memory_order_relaxed);
  stats.health = snapshot_health();
  stats.progress.resize(n);
  for (PartyId id = 0; id < n; ++id) {
    auto& p = stats.progress[id];
    p.finished = is_local(id) ? done[id].load()
                              : fin_received_[id].load(std::memory_order_acquire);
    p.events = handled[id].load();
    p.last_progress = last_progress[id].load();
    p.crash_stopped =
        injector_ != nullptr && injector_->plan().crash_stop_at(id).has_value();
  }
  if (timed_out) {
    // Same who-stalled-and-why format as the thread transport, so timeout
    // triage reads identically across backends; remote parties that never
    // announced FIN get their own phrasing (their host reports the detail).
    std::ostringstream detail;
    const char* sep = "";
    for (PartyId id = 0; id < n; ++id) {
      const auto& p = stats.progress[id];
      if (crash_excused(id)) continue;
      if (is_local(id)) {
        if (p.finished) continue;
        detail << sep << "party " << id << ": unfinished after " << p.events
               << " events, last progress at tick " << p.last_progress;
      } else {
        if (p.finished) continue;
        detail << sep << "party " << id << ": remote, no FIN received";
      }
      sep = "; ";
    }
    stats.timeout_detail = detail.str();
    HYDRA_LOG_ERROR("socket_net: timeout — %s", stats.timeout_detail.c_str());
  }
  return stats;
}

}  // namespace hydra::transport
