// Thread-safe priority mailbox ordered by delivery tick.
//
// Extracted from ThreadNetwork so the wait/wake discipline is testable on
// its own (tests/test_faults.cpp counts wakeups near tick boundaries).
// Time arrives through two caller-supplied functors — `now_ticks()` maps
// the wall clock to virtual ticks and `tick_deadline(at)` maps a tick back
// to a wall-clock deadline — so tests can drive the clock precisely.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/message.hpp"

namespace hydra::transport {

class Mailbox {
 public:
  struct Item {
    Time due;
    std::uint64_t seq;    ///< push-order tie-break (unique per network)
    std::uint64_t cause;  ///< trace send-event id (0 = none); duplicate
                          ///< copies keep the original send's id
    PartyId from;
    sim::Message msg;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void push(Item item) {
    {
      const std::lock_guard lock(mutex_);
      queue_.push(std::move(item));
    }
    cv_.notify_one();
  }

  /// Current depth, for telemetry gauges and high-water marks. Takes the
  /// lock; callers poll it off the hot path (stats heartbeats, post-push
  /// HWM updates), never inside pop_due.
  [[nodiscard]] std::size_t size() {
    const std::lock_guard lock(mutex_);
    return queue_.size();
  }

  void close() {
    {
      const std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until an item is due (relative to `now_ticks()`), the given
  /// wall-clock deadline passes, or the mailbox closes. Returns the due item
  /// if any; nullopt means "closed, or your own deadline passed" — never
  /// "something woke me early".
  template <typename NowFn, typename DeadlineFn>
  std::optional<Item> pop_due(NowFn&& now_ticks, DeadlineFn&& tick_deadline,
                              Time local_deadline) {
    std::unique_lock lock(mutex_);
    while (true) {
      if (closed_) return std::nullopt;
      const Time now = now_ticks();
      if (!queue_.empty() && queue_.top().due <= now) {
        // Move, don't copy: pop() only shuffles the remaining elements, so
        // gutting the payload under the const top() reference is safe.
        Item item = std::move(const_cast<Item&>(queue_.top()));
        queue_.pop();
        return item;
      }
      // Sleep until the earliest of: next queued item, the caller's timer
      // deadline. New pushes wake us early.
      Time wake = local_deadline;
      if (!queue_.empty()) wake = std::min(wake, queue_.top().due);
      if (wake == kTimeInfinity) {
        cv_.wait(lock);
      } else {
        if (cv_.wait_until(lock, tick_deadline(wake)) == std::cv_status::timeout) {
          // Only the caller's own deadline ends the wait. A timeout whose
          // wake target was the queue head must loop instead: the head is
          // either due now (popped at the top of the loop) or the next
          // iteration recomputes the sleep — returning nullopt here sent
          // the caller through a futile timer-drain pass and straight back.
          if (local_deadline != kTimeInfinity && now_ticks() >= local_deadline) {
            return std::nullopt;
          }
        }
      }
    }
  }

  /// Non-blocking companion to pop_due for batch drains: returns the
  /// earliest item already due at `now`, or nullopt without waiting. A
  /// writer blocks once in pop_due, then pulls every already-due sibling
  /// through here so one coalesced flush covers the whole batch.
  [[nodiscard]] std::optional<Item> try_pop_due(Time now) {
    const std::lock_guard lock(mutex_);
    if (closed_ || queue_.empty() || queue_.top().due > now) return std::nullopt;
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    return item;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  bool closed_ = false;
};

}  // namespace hydra::transport
