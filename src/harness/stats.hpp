// Small descriptive-statistics accumulator for seed sweeps.
#pragma once

#include <vector>

namespace hydra::harness {

/// Collects samples and reports mean / min / max / percentiles. Percentile
/// uses the nearest-rank method on the sorted samples.
class Stats {
 public:
  void add(double sample) { samples_.push_back(sample); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

  /// p in [0, 100]; nearest-rank. Asserts on an empty accumulator.
  [[nodiscard]] double percentile(double p) const;

 private:
  std::vector<double> samples_;
};

}  // namespace hydra::harness
