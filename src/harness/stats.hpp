// Small descriptive-statistics accumulator for seed sweeps.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace hydra::harness {

/// Collects samples and reports mean / min / max / percentiles. Percentile
/// uses the nearest-rank method on the sorted samples.
class Stats {
 public:
  /// One-struct view of the accumulator, used by the metrics JSON export.
  /// For an empty accumulator count is 0 and every statistic is NaN.
  struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double stddev = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  void add(double sample) { samples_.push_back(sample); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

  /// p in [0, 100]; nearest-rank. nullopt on an empty accumulator.
  [[nodiscard]] std::optional<double> percentile(double p) const;

  [[nodiscard]] Summary summary() const;

 private:
  std::vector<double> samples_;
};

}  // namespace hydra::harness
