#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hydra::harness {

double Stats::mean() const {
  HYDRA_ASSERT(!samples_.empty());
  double sum = 0.0;
  for (const double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Stats::min() const {
  HYDRA_ASSERT(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  HYDRA_ASSERT(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::stddev() const {
  HYDRA_ASSERT(!samples_.empty());
  const double m = mean();
  double acc = 0.0;
  for (const double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Stats::percentile(double p) const {
  HYDRA_ASSERT(!samples_.empty());
  HYDRA_ASSERT(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace hydra::harness
