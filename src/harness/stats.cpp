#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace hydra::harness {

double Stats::mean() const {
  HYDRA_ASSERT(!samples_.empty());
  double sum = 0.0;
  for (const double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Stats::min() const {
  HYDRA_ASSERT(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  HYDRA_ASSERT(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::stddev() const {
  HYDRA_ASSERT(!samples_.empty());
  const double m = mean();
  double acc = 0.0;
  for (const double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

std::optional<double> Stats::percentile(double p) const {
  if (samples_.empty()) return std::nullopt;
  HYDRA_ASSERT(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

Stats::Summary Stats::summary() const {
  Summary s;
  s.count = samples_.size();
  if (samples_.empty()) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    s.mean = s.min = s.max = s.stddev = s.p50 = s.p95 = s.p99 = nan;
    return s;
  }
  s.mean = mean();
  s.min = min();
  s.max = max();
  s.stddev = stddev();
  s.p50 = *percentile(50);
  s.p95 = *percentile(95);
  s.p99 = *percentile(99);
  return s;
}

}  // namespace hydra::harness
