// Column-aligned plain-text tables for the experiment binaries.
#pragma once

#include <string>
#include <vector>

namespace hydra::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; the cell count must match the header count.
  void row(std::vector<std::string> cells);

  /// Renders with aligned columns, a header underline, and a trailing
  /// newline.
  [[nodiscard]] std::string render() const;

  /// Convenience: renders straight to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly ("%.4g" style) for table cells.
[[nodiscard]] std::string fmt(double value);
[[nodiscard]] std::string fmt(std::uint64_t value);

/// "yes"/"NO" — violations should jump out of a table.
[[nodiscard]] std::string fmt_ok(bool ok);

}  // namespace hydra::harness
