#include "harness/sweep.hpp"

#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "harness/stats.hpp"
#include "obs/json.hpp"

namespace hydra::harness {
namespace {

/// One deque per worker: the owner pops from the front, thieves take from
/// the back (classic work-stealing discipline — owners and thieves contend
/// on opposite ends, and stolen work is the oldest, i.e. the work the owner
/// is furthest from reaching). A plain mutex per deque is plenty here: tasks
/// are whole simulator runs, so queue operations are nowhere near the
/// bottleneck.
class StealQueue {
 public:
  void push(std::size_t index) {
    const std::lock_guard lock(mutex_);
    items_.push_back(index);
  }

  std::optional<std::size_t> pop_front() {
    const std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    const std::size_t index = items_.front();
    items_.pop_front();
    return index;
  }

  std::optional<std::size_t> steal_back() {
    const std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    const std::size_t index = items_.back();
    items_.pop_back();
    return index;
  }

 private:
  std::mutex mutex_;
  std::deque<std::size_t> items_;
};

/// The cell identity: every spec field except seed and the output paths.
std::string cell_key(const RunSpec& spec) {
  std::ostringstream key;
  key << to_string(spec.protocol) << '|' << to_string(spec.network) << '|'
      << to_string(spec.adversary) << '|' << to_string(spec.workload) << '|'
      << spec.params.n << '|' << spec.params.ts << '|' << spec.params.ta << '|'
      << spec.params.dim << '|' << spec.params.eps << '|' << spec.params.delta
      << '|' << spec.corruptions << '|' << spec.workload_scale << '|'
      << spec.faults << '|' << spec.backend << '|' << spec.max_time << '|'
      << spec.us_per_tick << '|' << spec.timeout_ms;
  // Gated like the trace meta and run id: pre-domain-layer keys unchanged.
  if (!spec.domain.empty() && spec.domain != "euclid") key << '|' << spec.domain;
  return key.str();
}

void stats_json(obs::JsonWriter& w, std::string_view name, const Stats& stats) {
  w.key(name);
  w.begin_object();
  w.kv("mean", stats.mean());
  w.kv("min", stats.min());
  w.kv("max", stats.max());
  w.end_object();
}

}  // namespace

std::size_t resolve_jobs(std::size_t jobs) noexcept {
  if (jobs != 0) return jobs;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

std::vector<RunResult> run_sweep(const std::vector<RunSpec>& grid, std::size_t jobs,
                                 const SweepProgressFn& on_done) {
  std::vector<RunResult> results(grid.size());
  if (grid.empty()) return results;

  const std::size_t workers = std::min(resolve_jobs(jobs), grid.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      results[i] = execute(grid[i]);
      if (on_done) on_done(i, results[i]);
    }
    return results;
  }

  // Deal round-robin so neighbouring (similar-cost) cells spread across
  // workers; stealing balances whatever asymmetry remains.
  std::vector<StealQueue> queues(workers);
  for (std::size_t i = 0; i < grid.size(); ++i) queues[i % workers].push(i);

  std::mutex done_mutex;
  auto work = [&](std::size_t worker_id) {
    for (;;) {
      std::optional<std::size_t> index = queues[worker_id].pop_front();
      for (std::size_t k = 1; !index && k < workers; ++k) {
        index = queues[(worker_id + k) % workers].steal_back();
      }
      // All queues drained: since the grid is fully enqueued up front no new
      // work can appear, so one empty scan means this worker is done.
      if (!index) return;
      // Distinct elements of `results`; no lock needed. execute() installs
      // the run's own obs::Context on this thread.
      results[*index] = execute(grid[*index]);
      if (on_done) {
        const std::lock_guard lock(done_mutex);
        on_done(*index, results[*index]);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(work, w);
  for (auto& thread : threads) thread.join();
  return results;
}

std::vector<SweepCell> group_cells(const std::vector<RunSpec>& grid,
                                   const std::vector<RunResult>& results) {
  HYDRA_ASSERT(grid.size() == results.size());
  std::vector<SweepCell> cells;
  std::map<std::string, std::size_t> by_key;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto key = cell_key(grid[i]);
    auto it = by_key.find(key);
    if (it == by_key.end()) {
      it = by_key.emplace(key, cells.size()).first;
      cells.push_back(SweepCell{grid[i], {}, 0, {}});
    }
    auto& cell = cells[it->second];
    cell.indices.push_back(i);
    if (results[i].verdict.d_aa()) {
      cell.passed += 1;
    } else {
      cell.failed_seeds.push_back(grid[i].seed);
    }
  }
  return cells;
}

bool write_sweep_summary_json(const std::string& path,
                              const std::vector<RunSpec>& grid,
                              const std::vector<RunResult>& results,
                              std::size_t jobs) {
  const auto cells = group_cells(grid, results);

  obs::JsonWriter w;
  w.begin_object();
  w.kv("jobs", std::uint64_t{resolve_jobs(jobs)});
  w.kv("runs", std::uint64_t{grid.size()});
  std::size_t passed = 0;
  for (const auto& cell : cells) passed += cell.passed;
  w.kv("passed", std::uint64_t{passed});
  std::uint64_t total_monitor_violations = 0;
  for (const auto& r : results) total_monitor_violations += r.monitor_violations;
  w.kv("monitor_violations", total_monitor_violations);

  w.key("cells");
  w.begin_array();
  for (const auto& cell : cells) {
    const auto& spec = cell.spec;
    w.begin_object();
    w.key("spec");
    w.begin_object();
    w.kv("protocol", to_string(spec.protocol));
    w.kv("network", to_string(spec.network));
    w.kv("adversary", to_string(spec.adversary));
    w.kv("workload", to_string(spec.workload));
    w.kv("workload_scale", spec.workload_scale);
    w.kv("corruptions", std::uint64_t{spec.corruptions});
    w.kv("n", std::uint64_t{spec.params.n});
    w.kv("ts", std::uint64_t{spec.params.ts});
    w.kv("ta", std::uint64_t{spec.params.ta});
    w.kv("dim", std::uint64_t{spec.params.dim});
    w.kv("eps", spec.params.eps);
    w.kv("delta", std::int64_t{spec.params.delta});
    w.kv("faults", spec.faults);
    w.kv("backend", spec.backend);
    if (!spec.domain.empty() && spec.domain != "euclid") {
      w.kv("domain", spec.domain);
    }
    w.end_object();

    Stats rounds;
    Stats messages;
    Stats diameters;
    std::uint64_t fallbacks = 0;
    std::uint64_t hit_limit = 0;
    std::uint64_t monitor_violations = 0;
    std::uint64_t monitor_aborted = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t finished = 0;
    std::uint64_t crash_stopped = 0;
    std::uint64_t progress_events = 0;
    for (const auto index : cell.indices) {
      const auto& r = results[index];
      rounds.add(r.rounds);
      messages.add(static_cast<double>(r.messages));
      diameters.add(r.verdict.output_diameter);
      fallbacks += r.safe_area_fallbacks;
      hit_limit += r.hit_limit ? 1 : 0;
      monitor_violations += r.monitor_violations;
      monitor_aborted += r.monitor_aborted ? 1 : 0;
      timed_out += r.timed_out ? 1 : 0;
      for (const auto& p : r.progress) {
        finished += p.finished ? 1 : 0;
        crash_stopped += p.crash_stopped ? 1 : 0;
        progress_events += p.events;
      }
    }
    w.kv("runs", std::uint64_t{cell.indices.size()});
    w.kv("passed", std::uint64_t{cell.passed});
    w.key("failed_seeds");
    w.begin_array();
    for (const auto seed : cell.failed_seeds) w.value(seed);
    w.end_array();
    stats_json(w, "rounds", rounds);
    stats_json(w, "messages", messages);
    stats_json(w, "output_diameter", diameters);
    w.kv("safe_area_fallbacks", fallbacks);
    w.kv("hit_limit", hit_limit);
    w.kv("monitor_violations", monitor_violations);
    w.kv("monitor_aborted", monitor_aborted);
    // Thread-backend progress aggregates (all zero on the simulator, which
    // reports no watchdog snapshot): party-run totals across the cell's
    // seeds, so a stalled or timed-out backend shows up per cell.
    w.kv("timed_out", timed_out);
    w.kv("parties_finished", finished);
    w.kv("parties_crash_stopped", crash_stopped);
    w.kv("progress_events", progress_events);
    w.end_object();
  }
  w.end_array();

  // Flat failure list so scripts can re-run exactly the failing points.
  w.key("failures");
  w.begin_array();
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (const auto seed : cells[c].failed_seeds) {
      w.begin_object();
      w.kv("cell", std::uint64_t{c});
      w.kv("seed", seed);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    HYDRA_LOG_ERROR("sweep: cannot open %s for writing", path.c_str());
    return false;
  }
  const std::string& doc = w.str();
  // A summary that silently truncates (disk full, quota) is worse than none:
  // downstream tooling would trust a partial cell table. Check every write.
  bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) HYDRA_LOG_ERROR("sweep: short write to %s", path.c_str());
  return ok;
}

}  // namespace hydra::harness
