// Input-vector generators for the experiment grid.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "geometry/vec.hpp"

namespace hydra::harness {

enum class Workload {
  kUniformBall,     ///< uniform in a ball of the given radius
  kSimplexCorners,  ///< party i gets scale * e_(i mod D+1) (Figure 1 geometry)
  kClustered,       ///< two tight clusters at distance `scale`
  kCollinear,       ///< all on one line (degenerate hulls)
  kGaussian,        ///< isotropic normal with sigma = scale
};

[[nodiscard]] std::string to_string(Workload workload);

/// Inverse of to_string; nullopt on unknown names.
[[nodiscard]] std::optional<Workload> parse_workload(std::string_view name);

/// Generates n inputs in R^dim. Deterministic in (workload, n, dim, scale,
/// seed).
[[nodiscard]] std::vector<geo::Vec> make_inputs(Workload workload, std::size_t n,
                                                std::size_t dim, double scale,
                                                std::uint64_t seed);

}  // namespace hydra::harness
