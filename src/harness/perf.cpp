#include "harness/perf.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "geometry/polygon.hpp"
#include "geometry/safe_area.hpp"
#include "geometry/vec.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"
#include "obs/flatjson.hpp"
#include "obs/json.hpp"

// Build provenance for the bench JSON context block; the harness CMakeLists
// injects the real values, and the fallbacks keep out-of-tree builds
// compiling.
#ifndef HYDRA_GIT_DESCRIBE
#define HYDRA_GIT_DESCRIBE "unknown"
#endif
#ifndef HYDRA_BUILD_TYPE
#define HYDRA_BUILD_TYPE "unknown"
#endif

namespace hydra::harness {

namespace {

constexpr std::string_view kBenchSchema = "hydra-bench-v1";
constexpr std::string_view kPerfSchema = "hydra-perf-v1";

}  // namespace

// ---------------------------------------------------------------------------
// hydra-bench-v1 writer

std::string bench_json(std::string_view bench_name,
                       std::span<const BenchMetric> metrics) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", kBenchSchema);
  w.kv("bench", bench_name);
  w.key("context");
  w.begin_object();
  w.kv("git", HYDRA_GIT_DESCRIBE);
  w.kv("build", HYDRA_BUILD_TYPE);
  w.end_object();
  w.key("metrics");
  w.begin_array();
  for (const auto& m : metrics) {
    w.begin_object();
    w.kv("name", m.name);
    w.kv("unit", m.unit);
    w.kv("value", m.value);
    w.kv("repetitions", m.repetitions);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string out = w.take();
  out.push_back('\n');
  return out;
}

bool write_bench_json(const std::string& path, std::string_view bench_name,
                      std::span<const BenchMetric> metrics) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    HYDRA_LOG_ERROR("perf: cannot open %s for writing", path.c_str());
    return false;
  }
  out << bench_json(bench_name, metrics);
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// Parsing helpers. The documents are machine-written (obs::JsonWriter — no
// pretty-printing, keys in known order, names without escapes), so targeted
// extraction is enough: find the container key, brace/bracket-match each
// element, hand flat fragments to obs::flatjson. Anything unexpected yields
// nullopt rather than a partial result.

namespace {

/// Extent of the balanced {...} or [...] starting at `open`, skipping string
/// contents. npos on imbalance.
std::size_t match_bracket(std::string_view doc, std::size_t open) {
  const char oc = doc[open];
  const char cc = oc == '{' ? '}' : ']';
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == oc || (oc == '{' && c == '[')) {
      ++depth;
    } else if (c == cc || (oc == '{' && c == ']')) {
      --depth;
      if (depth == 0 && c == cc) return i;
    }
  }
  return std::string_view::npos;
}

/// Value of a top-level string field ("key":"value"); nullopt if absent.
std::optional<std::string> string_field(std::string_view doc,
                                        std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const auto pos = doc.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto end = doc.find('"', start);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(doc.substr(start, end - start));
}

/// Value of an unsigned integer field ("key":123) inside a flat fragment.
std::optional<std::uint64_t> u64_field(std::string_view body,
                                       std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = body.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const std::string digits(body.substr(pos + needle.size()));
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(digits.c_str(), &end, 10);
  if (end == digits.c_str()) return std::nullopt;
  return v;
}

}  // namespace

std::optional<BenchDoc> parse_bench_json(std::string_view doc) {
  const auto schema = string_field(doc, "schema");
  if (!schema || *schema != kBenchSchema) return std::nullopt;
  BenchDoc out;
  if (const auto bench = string_field(doc, "bench")) out.bench = *bench;

  const auto metrics_key = doc.find("\"metrics\":[");
  if (metrics_key == std::string_view::npos) return std::nullopt;
  const auto array_open = metrics_key + std::string_view("\"metrics\":").size();
  const auto array_close = match_bracket(doc, array_open);
  if (array_close == std::string_view::npos) return std::nullopt;

  std::size_t pos = array_open + 1;
  while (pos < array_close) {
    const auto obj_open = doc.find('{', pos);
    if (obj_open == std::string_view::npos || obj_open >= array_close) break;
    const auto obj_close = match_bracket(doc, obj_open);
    if (obj_close == std::string_view::npos) return std::nullopt;
    const auto fields = obs::flatjson::parse_flat_object(
        doc.substr(obj_open, obj_close - obj_open + 1));
    BenchMetric m;
    m.name = obs::flatjson::str(fields, "name");
    m.unit = obs::flatjson::str(fields, "unit");
    m.value = obs::flatjson::real(fields, "value");
    m.repetitions = obs::flatjson::num(fields, "repetitions");
    if (m.name.empty()) return std::nullopt;
    out.metrics.push_back(std::move(m));
    pos = obj_close + 1;
  }
  return out;
}

std::optional<BenchDoc> load_bench_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    HYDRA_LOG_ERROR("perf: cannot read %s", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_bench_json(buf.str());
}

std::optional<std::vector<PhaseRow>> parse_perf_json(std::string_view doc) {
  const auto schema = string_field(doc, "schema");
  if (!schema || *schema != kPerfSchema) return std::nullopt;
  const auto phases_key = doc.find("\"phases\":{");
  if (phases_key == std::string_view::npos) return std::nullopt;
  const auto obj_open = phases_key + std::string_view("\"phases\":").size();
  const auto obj_close = match_bracket(doc, obj_open);
  if (obj_close == std::string_view::npos) return std::nullopt;

  std::vector<PhaseRow> rows;
  std::size_t pos = obj_open + 1;
  while (pos < obj_close) {
    const auto name_open = doc.find('"', pos);
    if (name_open == std::string_view::npos || name_open >= obj_close) break;
    const auto name_close = doc.find('"', name_open + 1);
    if (name_close == std::string_view::npos) return std::nullopt;
    const auto body_open = doc.find('{', name_close + 1);
    if (body_open == std::string_view::npos) return std::nullopt;
    const auto body_close = match_bracket(doc, body_open);
    if (body_close == std::string_view::npos) return std::nullopt;
    const auto body = doc.substr(body_open, body_close - body_open + 1);

    PhaseRow row;
    row.name = std::string(doc.substr(name_open + 1, name_close - name_open - 1));
    const auto count = u64_field(body, "count");
    const auto total = u64_field(body, "total_ns");
    const auto self = u64_field(body, "self_ns");
    if (!count || !total || !self) return std::nullopt;
    row.count = *count;
    row.total_ns = *total;
    row.self_ns = *self;
    row.min_ns = u64_field(body, "min_ns").value_or(0);
    row.max_ns = u64_field(body, "max_ns").value_or(0);
    const auto buckets_key = body.find("\"buckets\":[");
    if (buckets_key != std::string_view::npos) {
      const auto arr_open = buckets_key + std::string_view("\"buckets\":").size();
      const auto arr_close = match_bracket(body, arr_open);
      if (arr_close == std::string_view::npos) return std::nullopt;
      std::string elems(body.substr(arr_open + 1, arr_close - arr_open - 1));
      const char* p = elems.c_str();
      while (*p != '\0') {
        char* end = nullptr;
        const std::uint64_t v = std::strtoull(p, &end, 10);
        if (end == p) break;
        row.buckets.push_back(v);
        p = end;
        while (*p == ',' || *p == ' ') ++p;
      }
    }
    rows.push_back(std::move(row));
    pos = body_close + 1;
  }
  return rows;
}

std::optional<std::vector<PhaseRow>> load_perf_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    HYDRA_LOG_ERROR("perf: cannot read %s", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_perf_json(buf.str());
}

// ---------------------------------------------------------------------------
// Phase report

namespace {

/// Representative latency of log2 bucket i (covering [2^(i-1), 2^i) ns for
/// i >= 1): the geometric midpoint, the unbiased pick under the bucket's
/// exponential spacing.
double bucket_mid_ns(std::size_t i) {
  if (i == 0) return 0.5;
  return std::ldexp(std::sqrt(2.0), static_cast<int>(i) - 1);
}

/// Nearest-rank percentile over the bucket counts (the same convention
/// harness::Stats::percentile uses on raw samples), resolved to the bucket
/// midpoint. 0 for an empty histogram.
double bucket_percentile(const std::vector<std::uint64_t>& buckets, double p) {
  std::uint64_t total = 0;
  for (const auto b : buckets) total += b;
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(total))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= rank) return bucket_mid_ns(i);
  }
  return bucket_mid_ns(buckets.size() - 1);
}

std::string fmt_us(double ns) { return fmt(ns / 1e3); }
std::string fmt_ms(double ns) { return fmt(ns / 1e6); }

}  // namespace

std::string render_phase_report(std::vector<PhaseRow> rows, std::size_t top_k) {
  std::sort(rows.begin(), rows.end(), [](const PhaseRow& a, const PhaseRow& b) {
    return a.self_ns != b.self_ns ? a.self_ns > b.self_ns : a.name < b.name;
  });
  double self_sum = 0.0;
  for (const auto& r : rows) self_sum += static_cast<double>(r.self_ns);

  Table table({"phase", "count", "total_ms", "self_ms", "self%", "avg_us",
               "~p50_us", "~p95_us", "max_us"});
  std::size_t shown = 0;
  for (const auto& r : rows) {
    if (top_k != 0 && shown == top_k) break;
    ++shown;
    const auto count = static_cast<double>(r.count);
    const auto total = static_cast<double>(r.total_ns);
    const auto self = static_cast<double>(r.self_ns);
    table.row({r.name, fmt(r.count), fmt_ms(total), fmt_ms(self),
               fmt(self_sum > 0.0 ? 100.0 * self / self_sum : 0.0),
               fmt_us(r.count > 0 ? total / count : 0.0),
               fmt_us(bucket_percentile(r.buckets, 50.0)),
               fmt_us(bucket_percentile(r.buckets, 95.0)),
               fmt_us(static_cast<double>(r.max_ns))});
  }
  std::ostringstream out;
  out << table.render();
  if (top_k != 0 && rows.size() > shown) {
    out << "(" << rows.size() - shown << " more phases below the top " << shown
        << "; self% is the share of the summed self time; p50/p95 are "
           "approximate, from log2 buckets)\n";
  } else {
    out << "(self% is the share of the summed self time; p50/p95 are "
           "approximate, from log2 buckets)\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Delta table

std::string render_delta_table(std::span<const BenchMetric> current,
                               std::span<const BenchMetric> baseline,
                               double budget,
                               std::vector<std::string>* regressions) {
  Table table({"metric", "unit", "baseline", "current", "delta", "ok"});
  for (const auto& base : baseline) {
    const auto it = std::find_if(
        current.begin(), current.end(),
        [&](const BenchMetric& m) { return m.name == base.name; });
    if (it == current.end()) {
      // A kernel silently dropped from the bench must not slide past the
      // gate looking like a pass.
      table.row({base.name, base.unit, fmt(base.value), "-", "missing",
                 fmt_ok(false)});
      if (regressions != nullptr) regressions->push_back(base.name + " (missing)");
      continue;
    }
    const double delta =
        base.value > 0.0 ? (it->value - base.value) / base.value : 0.0;
    const bool ok = delta <= budget;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * delta);
    table.row({base.name, base.unit, fmt(base.value), fmt(it->value), buf,
               fmt_ok(ok)});
    if (!ok && regressions != nullptr) regressions->push_back(base.name);
  }
  for (const auto& m : current) {
    const bool known = std::any_of(
        baseline.begin(), baseline.end(),
        [&](const BenchMetric& b) { return b.name == m.name; });
    if (!known) {
      table.row({m.name, m.unit, "-", fmt(m.value), "new", fmt_ok(true)});
    }
  }
  return table.render();
}

// ---------------------------------------------------------------------------
// Kernel measurement

TimedRate time_rate(const std::function<void()>& fn, double min_sample_s,
                    int samples) {
  using Clock = std::chrono::steady_clock;
  const auto elapsed_s = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  // Calibrate: double the inner repetition count until one sample is well
  // past min_sample_s (2x margin: a count that lands exactly on the
  // threshold flips between runs, changing what is measured).
  std::uint64_t reps = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < reps; ++i) fn();
    const double s = elapsed_s(t0, Clock::now());
    if (s >= 2.0 * min_sample_s || reps >= (1ULL << 30)) break;
    reps *= 2;
  }
  Stats per_rep;
  for (int i = 0; i < samples; ++i) {
    const auto t0 = Clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) fn();
    per_rep.add(elapsed_s(t0, Clock::now()) / static_cast<double>(reps));
  }
  // Min, not mean or median: scheduler preemption and frequency dips only
  // ever INFLATE a sample, so the minimum is the most repeatable estimate of
  // the code's cost — what a 10%-budget regression gate needs.
  return TimedRate{.seconds_per_rep = per_rep.summary().min,
                   .repetitions = reps * static_cast<std::uint64_t>(samples)};
}

namespace {

std::vector<geo::Vec> random_points(Rng& rng, std::size_t n, std::size_t dim,
                                    double radius) {
  std::vector<geo::Vec> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    geo::Vec v(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      v[d] = rng.next_double(-radius, radius);
    }
    pts.push_back(std::move(v));
  }
  return pts;
}

BenchMetric per_point_metric(std::string name, const TimedRate& rate,
                             std::size_t points) {
  return BenchMetric{.name = std::move(name),
                     .unit = "ns/point",
                     .value = rate.seconds_per_rep * 1e9 /
                              static_cast<double>(points),
                     .repetitions = rate.repetitions};
}

}  // namespace

std::vector<BenchMetric> measure_geometry_kernels() {
  // One fixed seed: the inputs (not the timings) are identical run to run
  // and across machines, so baseline deltas measure the code, not the data.
  Rng rng(0x9e04'5afe'a4ea'0001ULL);

  struct Kernel {
    const char* name;
    std::size_t points;
    std::function<void()> fn;
  };
  std::vector<Kernel> kernels;

  // 2D convex hull (Andrew's monotone chain) over 64 points.
  const auto hull_pts = random_points(rng, 64, 2, 10.0);
  kernels.push_back({"geo.hull2d", hull_pts.size(), [&hull_pts] {
    const auto hull = geo::ConvexPolygon2D::hull_of(hull_pts);
    if (hull.empty()) std::abort();  // keeps the call observable
  }});

  // Polygon intersection (Sutherland-Hodgman clipping), two 16-gons.
  const auto clip_a = geo::ConvexPolygon2D::hull_of(random_points(rng, 16, 2, 10.0));
  auto shifted = random_points(rng, 16, 2, 10.0);
  for (auto& p : shifted) p[0] += 3.0;
  const auto clip_b = geo::ConvexPolygon2D::hull_of(shifted);
  kernels.push_back({"geo.clip",
                     clip_a.vertices().size() + clip_b.vertices().size(),
                     [&clip_a, &clip_b] {
    const auto isect = clip_a.intersect(clip_b);
    if (isect.vertices().size() > 64) std::abort();
  }});

  // Half-space membership: one polygon, a batch of 64 query points.
  const auto poly = geo::ConvexPolygon2D::hull_of(random_points(rng, 16, 2, 10.0));
  const auto queries = random_points(rng, 64, 2, 12.0);
  kernels.push_back({"geo.halfspace", queries.size(), [&poly, &queries] {
    std::size_t inside = 0;
    for (const auto& q : queries) inside += poly.contains(q) ? 1 : 0;
    if (inside > queries.size()) std::abort();
  }});

  // LP membership (simplex feasibility), dim 4, 12-point hull.
  const auto lp_pts = random_points(rng, 12, 4, 10.0);
  geo::Vec lp_q(4);  // near the centroid: the feasible (slow) LP path
  for (const auto& p : lp_pts) {
    for (std::size_t d = 0; d < 4; ++d) lp_q[d] += p[d] / 12.0;
  }
  kernels.push_back({"geo.lp", lp_pts.size(), [&lp_pts, &lp_q] {
    if (!geo::in_convex_hull(lp_pts, lp_q)) std::abort();
  }});

  // Full 2D safe-area computation (C(8,2) = 28 restriction clips).
  const auto sa2_pts = random_points(rng, 8, 2, 10.0);
  kernels.push_back({"geo.safe_area_2d", sa2_pts.size(), [&sa2_pts] {
    const auto area = geo::SafeArea::compute(sa2_pts, 2);
    if (area.empty()) std::abort();
  }});

  // 3D safe area via the sampled-support kernel (16 directions keeps the
  // calibration loop fast; the ablation bench sweeps direction counts).
  const auto sa3_pts = random_points(rng, 6, 3, 10.0);
  geo::SafeAreaOptions sa3_opts;
  sa3_opts.support_directions = 16;
  kernels.push_back({"geo.safe_area_3d", sa3_pts.size(), [&sa3_pts, &sa3_opts] {
    const auto area = geo::SafeArea::compute(sa3_pts, 1, sa3_opts);
    if (area.empty()) std::abort();
  }});

  // Calibrate each kernel's inner repetition count once, then take the
  // sample rounds ROUND-ROBIN across kernels: CPU-frequency / contention
  // noise arrives in multi-millisecond epochs, so back-to-back samples of
  // one kernel would all land in the same epoch and its minimum would track
  // the epoch, not the code. Interleaving spreads every kernel's samples
  // over the full measurement window.
  using Clock = std::chrono::steady_clock;
  constexpr double kMinSampleS = 0.01;
  constexpr int kRounds = 9;
  std::vector<std::uint64_t> reps(kernels.size(), 1);
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    for (;;) {
      const auto t0 = Clock::now();
      for (std::uint64_t i = 0; i < reps[k]; ++i) kernels[k].fn();
      const double s = std::chrono::duration<double>(Clock::now() - t0).count();
      if (s >= 2.0 * kMinSampleS || reps[k] >= (1ULL << 30)) break;
      reps[k] *= 2;
    }
  }
  std::vector<Stats> per_rep(kernels.size());
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t k = 0; k < kernels.size(); ++k) {
      const auto t0 = Clock::now();
      for (std::uint64_t r = 0; r < reps[k]; ++r) kernels[k].fn();
      per_rep[k].add(std::chrono::duration<double>(Clock::now() - t0).count() /
                     static_cast<double>(reps[k]));
    }
  }

  std::vector<BenchMetric> out;
  out.reserve(kernels.size());
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    // Min, not mean or median: noise only ever inflates a sample (see
    // time_rate).
    const TimedRate rate{.seconds_per_rep = per_rep[k].summary().min,
                         .repetitions = reps[k] * kRounds};
    out.push_back(per_point_metric(kernels[k].name, rate, kernels[k].points));
  }
  return out;
}

}  // namespace hydra::harness
