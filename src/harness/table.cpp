#include "harness/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "common/assert.hpp"

namespace hydra::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::row(std::vector<std::string> cells) {
  HYDRA_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out += "  ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  emit_row(headers_);
  std::string underline;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) underline += "  ";
    underline.append(widths[c], '-');
  }
  out += underline + '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", value);
  return buf;
}

std::string fmt(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  return buf;
}

std::string fmt_ok(bool ok) { return ok ? "yes" : "NO"; }

}  // namespace hydra::harness
