#include "harness/workloads.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hydra::harness {

std::string to_string(Workload workload) {
  switch (workload) {
    case Workload::kUniformBall: return "ball";
    case Workload::kSimplexCorners: return "simplex";
    case Workload::kClustered: return "clustered";
    case Workload::kCollinear: return "collinear";
    case Workload::kGaussian: return "gaussian";
  }
  return "?";
}

std::optional<Workload> parse_workload(std::string_view name) {
  for (const auto workload :
       {Workload::kUniformBall, Workload::kSimplexCorners, Workload::kClustered,
        Workload::kCollinear, Workload::kGaussian}) {
    if (to_string(workload) == name) return workload;
  }
  return std::nullopt;
}

std::vector<geo::Vec> make_inputs(Workload workload, std::size_t n, std::size_t dim,
                                  double scale, std::uint64_t seed) {
  HYDRA_ASSERT(n > 0 && dim > 0);
  Rng rng(seed ^ 0x3c6ef372fe94f82bULL);
  std::vector<geo::Vec> inputs;
  inputs.reserve(n);

  switch (workload) {
    case Workload::kUniformBall: {
      for (std::size_t i = 0; i < n; ++i) {
        // Rejection-sample the unit ball, then scale.
        geo::Vec v(dim, 0.0);
        double len2 = 2.0;
        while (len2 > 1.0) {
          len2 = 0.0;
          for (std::size_t d = 0; d < dim; ++d) {
            v[d] = rng.next_double(-1.0, 1.0);
            len2 += v[d] * v[d];
          }
        }
        v *= scale;
        inputs.push_back(std::move(v));
      }
      break;
    }
    case Workload::kSimplexCorners: {
      // The Theorem 3.1 construction: inputs are scale * e_d for d in
      // {0, .., D}, where e_0 = 0 and e_d is the d-th unit vector.
      for (std::size_t i = 0; i < n; ++i) {
        geo::Vec v(dim, 0.0);
        const std::size_t corner = i % (dim + 1);
        if (corner > 0) v[corner - 1] = scale;
        inputs.push_back(std::move(v));
      }
      break;
    }
    case Workload::kClustered: {
      geo::Vec offset(dim, 0.0);
      offset[0] = scale;
      for (std::size_t i = 0; i < n; ++i) {
        geo::Vec v(dim, 0.0);
        for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_gaussian() * scale * 0.01;
        if (i % 2 == 1) v += offset;
        inputs.push_back(std::move(v));
      }
      break;
    }
    case Workload::kCollinear: {
      geo::Vec direction(dim, 1.0 / std::sqrt(static_cast<double>(dim)));
      for (std::size_t i = 0; i < n; ++i) {
        inputs.push_back(direction * (scale * rng.next_double()));
      }
      break;
    }
    case Workload::kGaussian: {
      for (std::size_t i = 0; i < n; ++i) {
        geo::Vec v(dim, 0.0);
        for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_gaussian() * scale;
        inputs.push_back(std::move(v));
      }
      break;
    }
  }
  return inputs;
}

}  // namespace hydra::harness
