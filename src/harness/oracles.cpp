#include "harness/oracles.hpp"

#include "geometry/convex.hpp"

namespace hydra::harness {

Verdict check_d_aa(std::span<const geo::Vec> outputs, std::size_t expected_outputs,
                   std::span<const geo::Vec> honest_inputs, double eps, double tol,
                   const hydra::domain::ValueDomain* dom) {
  const auto& d = hydra::domain::resolve(dom);
  Verdict v;
  v.live = outputs.size() == expected_outputs && expected_outputs > 0;
  v.valid = true;
  for (const auto& out : outputs) {
    if (!d.in_validity_set(honest_inputs, out, tol)) {
      v.valid = false;
      break;
    }
  }
  v.output_diameter = d.diameter(outputs);
  v.agreed = v.output_diameter <= eps + 1e-9;
  return v;
}

}  // namespace hydra::harness
