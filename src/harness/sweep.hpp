// Parallel experiment engine: executes a grid of RunSpecs on a
// work-stealing thread pool.
//
// Each run executes inside its own isolated obs::Context (installed by
// execute() itself, see runner.cpp), so per-run metrics, traces, and
// fallback counters never interleave and results are byte-identical to
// sequential execution per (spec, seed) — the only nondeterministic fields
// are the wall-clock ones (aa.safe_area_us) that are nondeterministic even
// serially. Every figure/table reproduction is a grid of independent
// simulator runs, which makes this embarrassingly parallel: the engine
// turns minutes-serial sweeps into seconds at hardware concurrency.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hpp"

namespace hydra::harness {

/// Resolves a --jobs value: 0 means one worker per hardware thread (and at
/// least 1 when hardware_concurrency is unknown).
[[nodiscard]] std::size_t resolve_jobs(std::size_t jobs) noexcept;

/// Invoked after each run completes. Calls are serialized under an internal
/// lock (so the callback may touch shared state freely) but arrive in
/// completion order, not input order.
using SweepProgressFn = std::function<void(std::size_t index, const RunResult&)>;

/// Executes every spec in `grid` and returns the results in input order.
/// `jobs` = 1 runs inline on the calling thread; otherwise a work-stealing
/// pool of min(resolve_jobs(jobs), grid.size()) workers executes the grid
/// concurrently. Specs are dealt round-robin into per-worker queues; an
/// idle worker steals from the back of its neighbours' queues, so a few
/// expensive cells (large n, async networks) cannot serialize the sweep.
[[nodiscard]] std::vector<RunResult> run_sweep(const std::vector<RunSpec>& grid,
                                               std::size_t jobs = 0,
                                               const SweepProgressFn& on_done = {});

/// Aggregates over one distinct cell — every spec field except the seed.
/// `indices` point into the grid/results arrays (seed order).
struct SweepCell {
  RunSpec spec;  ///< representative spec (first seed seen)
  std::vector<std::size_t> indices;
  std::size_t passed = 0;
  std::vector<std::uint64_t> failed_seeds;
};

/// Groups (grid, results) into per-cell aggregates, in first-appearance
/// order. Exposed for tests and custom reporters.
[[nodiscard]] std::vector<SweepCell> group_cells(const std::vector<RunSpec>& grid,
                                                 const std::vector<RunResult>& results);

/// Writes the merged sweep summary JSON: per-cell aggregates (pass counts,
/// rounds/messages/output-diameter stats, fallback totals, invariant-monitor
/// violation/abort counts, thread-backend timeout/progress totals) plus a
/// flat failure list of (cell, seed) and a top-level `monitor_violations`
/// total. Logs an error and returns false
/// when the path cannot be opened.
bool write_sweep_summary_json(const std::string& path,
                              const std::vector<RunSpec>& grid,
                              const std::vector<RunResult>& results,
                              std::size_t jobs);

}  // namespace hydra::harness
