// Performance-measurement toolkit shared by the bench binaries, the `hydra
// perf` subcommand, and the CI regression gate (tools/perf_gate):
//
//   * BenchMetric + the unified bench JSON schema ("hydra-bench-v1"): every
//     bench that measures time emits the same shape, so one parser, one
//     delta renderer and one gate cover all of them;
//   * measure_geometry_kernels(): ns/point for each geometry kernel on
//     fixed, seed-deterministic inputs — the workload behind
//     `bench_geometry_kernels --json` and `hydra perf`;
//   * the "hydra-perf-v1" phase-profile parser + report renderer for
//     profiles written by RunSpec::perf_out (obs::Profiler::to_json()).
//
// Schemas (one JSON object per file, written by obs::JsonWriter so doubles
// round-trip byte-exactly):
//
//   hydra-bench-v1   {"schema":"hydra-bench-v1","bench":"<name>",
//                     "context":{"git":"<describe>","build":"<type>"},
//                     "metrics":[{"name":"geo.hull2d","unit":"ns/point",
//                                 "value":12.3,"repetitions":4096},...]}
//
//   hydra-perf-v1    {"schema":"hydra-perf-v1",<spec echo>,
//                     "phases":{"aa.safe_area":{"count":...,"total_ns":...,
//                       "self_ns":...,"min_ns":...,"max_ns":...,
//                       "buckets":[...]},...}}
//
// Determinism: metric VALUES are wall clock and vary run to run — that is
// the point; they live in these side-channel files and are compared against
// checked-in baselines with a relative budget, never byte-compared. Phase
// COUNTS in a perf profile are deterministic per (spec, seed) on the
// simulator backend (tested by test_prof.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hydra::harness {

/// One measured scalar in the unified bench JSON schema.
struct BenchMetric {
  std::string name;             ///< e.g. "geo.hull2d"
  std::string unit;             ///< e.g. "ns/point" — lower is always better
  double value = 0.0;
  std::uint64_t repetitions = 0;  ///< timed repetitions behind `value`
};

/// Serializes the hydra-bench-v1 document. The context block records
/// `git describe` and the build type captured at compile time.
[[nodiscard]] std::string bench_json(std::string_view bench_name,
                                     std::span<const BenchMetric> metrics);

/// bench_json() to a file; false (with a log line) on I/O failure.
bool write_bench_json(const std::string& path, std::string_view bench_name,
                      std::span<const BenchMetric> metrics);

struct BenchDoc {
  std::string bench;
  std::vector<BenchMetric> metrics;
};

/// Parses a hydra-bench-v1 document. nullopt on schema mismatch or malformed
/// input (never throws).
[[nodiscard]] std::optional<BenchDoc> parse_bench_json(std::string_view doc);

/// Reads and parses a bench JSON file. nullopt on I/O or parse failure.
[[nodiscard]] std::optional<BenchDoc> load_bench_json(const std::string& path);

/// Min-of-samples timing loop: calibrates an inner repetition count until
/// one sample comfortably exceeds `min_sample_s`, takes `samples` samples,
/// and reports the MINIMUM (via harness::Stats::summary()) — noise only ever
/// inflates a sample, so the minimum is the repeatable estimate a
/// tight-budget regression gate needs.
struct TimedRate {
  double seconds_per_rep = 0.0;
  std::uint64_t repetitions = 0;  ///< total timed reps across all samples
};
[[nodiscard]] TimedRate time_rate(const std::function<void()>& fn,
                                  double min_sample_s = 0.04, int samples = 9);

/// ns/point for every geometry kernel (hull2d, clip, halfspace batch, LP
/// membership, safe-area 2D/3D) on fixed seed-deterministic inputs. This is
/// the shared workload of `bench_geometry_kernels --json` and `hydra perf`.
[[nodiscard]] std::vector<BenchMetric> measure_geometry_kernels();

/// One phase parsed back from a hydra-perf-v1 profile.
struct PhaseRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::vector<std::uint64_t> buckets;  ///< log2; possibly trailing-trimmed
};

/// Parses the "phases" object of a hydra-perf-v1 document. nullopt on schema
/// mismatch or malformed input.
[[nodiscard]] std::optional<std::vector<PhaseRow>> parse_perf_json(
    std::string_view doc);

/// Reads and parses a perf JSON file. nullopt on I/O or parse failure.
[[nodiscard]] std::optional<std::vector<PhaseRow>> load_perf_json(
    const std::string& path);

/// Phase-attribution table sorted by self time (descending): count, total,
/// self, self-share, mean, approximate p50/p95 (nearest rank over the log2
/// buckets, geometric bucket midpoints) and max. top_k = 0 renders all rows.
[[nodiscard]] std::string render_phase_report(std::vector<PhaseRow> rows,
                                              std::size_t top_k = 0);

/// Per-metric current-vs-baseline table. A metric regresses when
/// current > baseline * (1 + budget); a baseline metric missing from
/// `current` also counts (a silently dropped kernel must not pass the gate).
/// Regressing metric names are appended to `regressions` when non-null.
[[nodiscard]] std::string render_delta_table(
    std::span<const BenchMetric> current, std::span<const BenchMetric> baseline,
    double budget, std::vector<std::string>* regressions = nullptr);

}  // namespace hydra::harness
