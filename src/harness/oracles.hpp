// Correctness oracles for Definition 2.4, independent of the protocol code:
// validity is re-derived from the TRUE honest inputs via the LP point-in-hull
// test, agreement from the raw outputs — no protocol bookkeeping is trusted.
#pragma once

#include <span>

#include "domain/domain.hpp"
#include "geometry/vec.hpp"

namespace hydra::harness {

struct Verdict {
  bool live = false;    ///< every honest party produced an output
  bool valid = false;   ///< t-Validity: outputs inside convex(honest inputs)
  bool agreed = false;  ///< (t, eps)-Agreement: output diameter <= eps
  double output_diameter = 0.0;

  [[nodiscard]] bool d_aa() const noexcept { return live && valid && agreed; }
};

/// Evaluates the three D-AA properties. `outputs` are the honest outputs
/// actually produced (may be fewer than honest parties if liveness failed;
/// pass expected_outputs to detect that). `tol` absorbs floating error in
/// the hull membership test. `dom` selects the value domain's validity set
/// and metric; nullptr means Euclidean (the original LP hull test).
[[nodiscard]] Verdict check_d_aa(std::span<const geo::Vec> outputs,
                                 std::size_t expected_outputs,
                                 std::span<const geo::Vec> honest_inputs, double eps,
                                 double tol = 1e-5,
                                 const hydra::domain::ValueDomain* dom = nullptr);

}  // namespace hydra::harness
