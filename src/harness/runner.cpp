#include "harness/runner.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "adversary/behaviors.hpp"
#include "adversary/schedulers.hpp"
#include "baselines/async_mh.hpp"
#include "baselines/sync_lockstep.hpp"
#include "common/assert.hpp"
#include "protocols/aa.hpp"
#include "protocols/aa_iteration.hpp"
#include "protocols/init.hpp"
#include "sim/delay.hpp"
#include "sim/simulation.hpp"

namespace hydra::harness {
namespace {

using protocols::AaParty;
using protocols::Params;

std::set<PartyId> corrupted_set(std::size_t corruptions) {
  std::set<PartyId> out;
  for (std::size_t i = 0; i < corruptions; ++i) out.insert(static_cast<PartyId>(i));
  return out;
}

std::unique_ptr<sim::DelayModel> make_network(const RunSpec& spec) {
  const Duration delta = spec.params.delta;
  switch (spec.network) {
    case Network::kSyncWorstCase:
      return std::make_unique<sim::FixedDelay>(delta);
    case Network::kSyncJitter:
      return std::make_unique<sim::UniformDelay>(1, delta);
    case Network::kSyncTargeted:
      return std::make_unique<adversary::TargetedScheduler>(
          std::make_unique<sim::UniformDelay>(1, std::max<Duration>(1, delta / 2)),
          std::set<PartyId>{static_cast<PartyId>(spec.params.n - 1)}, delta);
    case Network::kSyncRushing:
      return std::make_unique<adversary::RushingScheduler>(
          corrupted_set(spec.corruptions), 1, delta);
    case Network::kAsyncReorder:
      return std::make_unique<adversary::ReorderScheduler>(delta, 0.3, 12 * delta);
    case Network::kAsyncPartition: {
      std::set<PartyId> group;
      for (PartyId id = 0; id < spec.params.n / 2; ++id) group.insert(id);
      return std::make_unique<adversary::PartitionScheduler>(
          std::make_unique<sim::UniformDelay>(1, delta), std::move(group), 2 * delta,
          50 * delta);
    }
    case Network::kAsyncExponential:
      return std::make_unique<sim::ExponentialDelay>(2.0 * static_cast<double>(delta),
                                                     60 * delta);
  }
  return std::make_unique<sim::FixedDelay>(delta);
}

std::unique_ptr<sim::IParty> make_byzantine(Adversary kind, const RunSpec& spec,
                                            PartyId id, const geo::Vec& input,
                                            std::uint64_t salt) {
  const Params& p = spec.params;
  switch (kind) {
    case Adversary::kNone:
    case Adversary::kSilent:
      return std::make_unique<adversary::SilentParty>();
    case Adversary::kCrash:
      return std::make_unique<adversary::CrashParty>(
          std::make_unique<AaParty>(p, input), (10 + Time(id) * 3) * p.delta);
    case Adversary::kEquivocator: {
      geo::Vec base(p.dim, 0.0);
      base[0] = 3.0 * spec.workload_scale;
      return std::make_unique<adversary::EquivocatorParty>(p, base,
                                                           spec.workload_scale);
    }
    case Adversary::kOutlier: {
      geo::Vec extreme(p.dim, 0.0);
      for (std::size_t d = 0; d < p.dim; ++d) {
        extreme[d] = (d % 2 == 0 ? 1.0 : -1.0) * 1e5 * spec.workload_scale;
      }
      return std::make_unique<AaParty>(p, extreme);
    }
    case Adversary::kHaltRusher:
      return std::make_unique<adversary::HaltRusherParty>(p, geo::Vec(p.dim, 0.0));
    case Adversary::kSpammer:
      return std::make_unique<adversary::SpammerParty>(p, spec.seed ^ salt,
                                                       p.delta / 2, 80 * p.delta);
    case Adversary::kStraggler:
      return std::make_unique<adversary::StragglerEchoParty>(p);
    case Adversary::kTurncoat:
      return std::make_unique<adversary::TurncoatParty>(p, input,
                                                        (9 + Time(id) * 4) * p.delta);
    case Adversary::kMixed: {
      static constexpr Adversary kCycle[] = {
          Adversary::kSilent,     Adversary::kEquivocator, Adversary::kOutlier,
          Adversary::kHaltRusher, Adversary::kSpammer,     Adversary::kCrash,
          Adversary::kTurncoat,
      };
      return make_byzantine(kCycle[id % std::size(kCycle)], spec, id, input, salt);
    }
  }
  return std::make_unique<adversary::SilentParty>();
}

/// Accessors unifying the three protocol party types.
struct HonestView {
  const geo::Vec* input = nullptr;
  bool has_output = false;
  geo::Vec output;
  std::uint64_t estimate = 0;
  std::uint32_t output_iteration = 0;
  const std::vector<geo::Vec>* history = nullptr;
};

}  // namespace

std::string to_string(Network network) {
  switch (network) {
    case Network::kSyncWorstCase: return "sync-worst";
    case Network::kSyncJitter: return "sync-jitter";
    case Network::kSyncTargeted: return "sync-target";
    case Network::kSyncRushing: return "sync-rush";
    case Network::kAsyncReorder: return "async-reorder";
    case Network::kAsyncPartition: return "async-partition";
    case Network::kAsyncExponential: return "async-exp";
  }
  return "?";
}

bool is_synchronous(Network network) {
  switch (network) {
    case Network::kSyncWorstCase:
    case Network::kSyncJitter:
    case Network::kSyncTargeted:
    case Network::kSyncRushing:
      return true;
    default:
      return false;
  }
}

std::string to_string(Adversary adversary) {
  switch (adversary) {
    case Adversary::kNone: return "none";
    case Adversary::kSilent: return "silent";
    case Adversary::kCrash: return "crash";
    case Adversary::kEquivocator: return "equivocate";
    case Adversary::kOutlier: return "outlier";
    case Adversary::kHaltRusher: return "halt-rush";
    case Adversary::kSpammer: return "spam";
    case Adversary::kStraggler: return "straggler";
    case Adversary::kTurncoat: return "turncoat";
    case Adversary::kMixed: return "mixed";
  }
  return "?";
}

std::optional<Network> parse_network(std::string_view name) {
  for (const auto network :
       {Network::kSyncWorstCase, Network::kSyncJitter, Network::kSyncTargeted,
        Network::kSyncRushing, Network::kAsyncReorder, Network::kAsyncPartition,
        Network::kAsyncExponential}) {
    if (to_string(network) == name) return network;
  }
  return std::nullopt;
}

std::optional<Adversary> parse_adversary(std::string_view name) {
  for (const auto adversary :
       {Adversary::kNone, Adversary::kSilent, Adversary::kCrash,
        Adversary::kEquivocator, Adversary::kOutlier, Adversary::kHaltRusher,
        Adversary::kSpammer, Adversary::kStraggler, Adversary::kTurncoat,
        Adversary::kMixed}) {
    if (to_string(adversary) == name) return adversary;
  }
  return std::nullopt;
}

std::optional<Protocol> parse_protocol(std::string_view name) {
  for (const auto protocol :
       {Protocol::kHybrid, Protocol::kSyncLockstep, Protocol::kAsyncMh}) {
    if (to_string(protocol) == name) return protocol;
  }
  return std::nullopt;
}

std::string to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kHybrid: return "hybrid";
    case Protocol::kSyncLockstep: return "sync-lockstep";
    case Protocol::kAsyncMh: return "async-mh";
  }
  return "?";
}

RunResult execute(const RunSpec& spec) {
  const Params& p = spec.params;
  HYDRA_ASSERT(spec.corruptions < p.n);

  const auto inputs =
      make_inputs(spec.workload, p.n, p.dim, spec.workload_scale, spec.seed);

  sim::Simulation sim(
      sim::SimConfig{
          .n = p.n, .delta = p.delta, .seed = spec.seed, .max_time = spec.max_time},
      make_network(spec));

  // For the lock-step baseline, R comes from the true input diameter (the
  // baseline's "known input bounds" assumption).
  baselines::SyncLockstepConfig lockstep{
      .n = p.n,
      .t = p.ts,
      .dim = p.dim,
      .delta = p.delta,
      .rounds = protocols::sufficient_iterations(
          p.eps, std::max(1e-12, geo::diameter(inputs)))};

  std::vector<const AaParty*> hybrid_parties;
  std::vector<const baselines::SyncLockstepParty*> lockstep_parties;
  std::vector<geo::Vec> honest_inputs;

  for (PartyId id = 0; id < p.n; ++id) {
    const bool corrupt = id < spec.corruptions && spec.adversary != Adversary::kNone;
    if (corrupt) {
      sim.add_party(make_byzantine(spec.adversary, spec, id, inputs[id], 0x9e3779b9));
      continue;
    }
    honest_inputs.push_back(inputs[id]);
    switch (spec.protocol) {
      case Protocol::kHybrid: {
        auto party = std::make_unique<AaParty>(p, inputs[id]);
        hybrid_parties.push_back(party.get());
        sim.add_party(std::move(party));
        break;
      }
      case Protocol::kAsyncMh: {
        // ts = ta = t: identical machinery, baseline thresholds.
        Params mh = p;
        mh.ta = mh.ts;
        auto party = std::make_unique<AaParty>(mh, inputs[id]);
        hybrid_parties.push_back(party.get());
        sim.add_party(std::move(party));
        break;
      }
      case Protocol::kSyncLockstep: {
        auto party = std::make_unique<baselines::SyncLockstepParty>(lockstep, inputs[id]);
        lockstep_parties.push_back(party.get());
        sim.add_party(std::move(party));
        break;
      }
    }
  }

  const std::uint64_t fallbacks_before = protocols::safe_area_fallback_count();
  const auto stats = sim.run();

  RunResult result;
  result.safe_area_fallbacks =
      protocols::safe_area_fallback_count() - fallbacks_before;
  for (const auto sent : stats.sent_per_party) {
    result.max_sent_by_party = std::max(result.max_sent_by_party, sent);
  }
  result.input_diameter = geo::diameter(honest_inputs);
  result.messages = stats.messages;
  result.bytes = stats.bytes;
  result.end_time = stats.end_time;
  result.hit_limit = stats.hit_limit;
  result.rounds = static_cast<double>(stats.end_time) / static_cast<double>(p.delta);

  std::vector<geo::Vec> outputs;
  std::size_t expected = 0;
  if (spec.protocol == Protocol::kSyncLockstep) {
    expected = lockstep_parties.size();
    for (const auto* party : lockstep_parties) {
      if (party->has_output()) outputs.push_back(party->output());
    }
  } else {
    expected = hybrid_parties.size();
    result.min_estimate = UINT64_MAX;
    std::size_t min_history = SIZE_MAX;
    for (const auto* party : hybrid_parties) {
      if (party->has_output()) outputs.push_back(party->output());
      result.min_estimate = std::min(result.min_estimate, party->estimate());
      result.max_estimate = std::max(result.max_estimate, party->estimate());
      result.max_output_iteration =
          std::max(result.max_output_iteration, party->output_iteration());
      min_history = std::min(min_history, party->value_history().size());
    }
    if (result.min_estimate == UINT64_MAX) result.min_estimate = 0;
    // Honest value diameter per iteration (v_0, v_1, ...).
    if (min_history != SIZE_MAX) {
      for (std::size_t i = 0; i < min_history; ++i) {
        std::vector<geo::Vec> layer;
        layer.reserve(hybrid_parties.size());
        for (const auto* party : hybrid_parties) {
          layer.push_back(party->value_history()[i]);
        }
        result.iteration_diameters.push_back(geo::diameter(layer));
      }
    }
  }

  result.verdict = check_d_aa(outputs, expected, honest_inputs, p.eps);
  return result;
}

}  // namespace hydra::harness
