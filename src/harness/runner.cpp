#include "harness/runner.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "adversary/behaviors.hpp"
#include "adversary/schedulers.hpp"
#include "baselines/async_mh.hpp"
#include "baselines/sync_lockstep.hpp"
#include "common/assert.hpp"
#include "common/log.hpp"
#include "domain/domain.hpp"
#include "faults/faults.hpp"
#include "harness/stats.hpp"
#include "net/backend.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "protocols/aa.hpp"
#include "protocols/aa_iteration.hpp"
#include "protocols/init.hpp"
#include "sim/delay.hpp"
#include "sim/sim_backend.hpp"
#include "transport/socket_backend.hpp"
#include "transport/thread_backend.hpp"

namespace hydra::harness {
namespace {

using protocols::AaParty;
using protocols::Params;

std::set<PartyId> corrupted_set(std::size_t corruptions) {
  std::set<PartyId> out;
  for (std::size_t i = 0; i < corruptions; ++i) out.insert(static_cast<PartyId>(i));
  return out;
}

std::unique_ptr<sim::IParty> make_byzantine(Adversary kind, const RunSpec& spec,
                                            const Params& p, PartyId id,
                                            const geo::Vec& input,
                                            std::uint64_t salt) {
  switch (kind) {
    case Adversary::kNone:
    case Adversary::kSilent:
      return std::make_unique<adversary::SilentParty>();
    case Adversary::kCrash:
      return std::make_unique<adversary::CrashParty>(
          std::make_unique<AaParty>(p, input), (10 + Time(id) * 3) * p.delta);
    case Adversary::kEquivocator: {
      geo::Vec base(p.dim, 0.0);
      base[0] = 3.0 * spec.workload_scale;
      return std::make_unique<adversary::EquivocatorParty>(p, base,
                                                           spec.workload_scale);
    }
    case Adversary::kOutlier: {
      geo::Vec extreme(p.dim, 0.0);
      for (std::size_t d = 0; d < p.dim; ++d) {
        extreme[d] = (d % 2 == 0 ? 1.0 : -1.0) * 1e5 * spec.workload_scale;
      }
      return std::make_unique<AaParty>(p, extreme);
    }
    case Adversary::kHaltRusher:
      return std::make_unique<adversary::HaltRusherParty>(p, geo::Vec(p.dim, 0.0));
    case Adversary::kSpammer:
      return std::make_unique<adversary::SpammerParty>(p, spec.seed ^ salt,
                                                       p.delta / 2, 80 * p.delta);
    case Adversary::kStraggler:
      return std::make_unique<adversary::StragglerEchoParty>(p);
    case Adversary::kTurncoat:
      return std::make_unique<adversary::TurncoatParty>(p, input,
                                                        (9 + Time(id) * 4) * p.delta);
    case Adversary::kMixed: {
      static constexpr Adversary kCycle[] = {
          Adversary::kSilent,     Adversary::kEquivocator, Adversary::kOutlier,
          Adversary::kHaltRusher, Adversary::kSpammer,     Adversary::kCrash,
          Adversary::kTurncoat,
      };
      return make_byzantine(kCycle[id % std::size(kCycle)], spec, p, id, input, salt);
    }
  }
  return std::make_unique<adversary::SilentParty>();
}

/// Accessors unifying the three protocol party types.
struct HonestView {
  const geo::Vec* input = nullptr;
  bool has_output = false;
  geo::Vec output;
  std::uint64_t estimate = 0;
  std::uint32_t output_iteration = 0;
  const std::vector<geo::Vec>* history = nullptr;
};

void summary_json(obs::JsonWriter& w, std::string_view name,
                  const Stats::Summary& s) {
  w.key(name);
  w.begin_object();
  w.kv("count", std::uint64_t{s.count});
  w.kv("mean", s.mean);
  w.kv("min", s.min);
  w.kv("max", s.max);
  w.kv("stddev", s.stddev);
  w.kv("p50", s.p50);
  w.kv("p95", s.p95);
  w.kv("p99", s.p99);
  w.end_object();
}

/// The MH-style baseline runs the hybrid machinery at ta = ts. For specs
/// where (D+1) ts + ts >= n that combination violates the feasibility
/// condition even though the hybrid protocol itself is fine, and naively
/// forcing ta = ts aborts deep inside AaParty. Use the largest ta the
/// condition admits instead; specs with no feasible ta at all are rejected
/// with an explicit message.
std::size_t async_mh_ta(const Params& p) {
  HYDRA_ASSERT_MSG(p.n > (p.dim + 1) * p.ts && p.n > 3 * p.ts,
                   "async-mh baseline: no feasible ta exists for (n, ts, D); "
                   "requires n > (D+1) ts and n > 3 ts");
  return std::min(p.ts, p.n - (p.dim + 1) * p.ts - 1);
}

/// Run identity for cross-process trace stitching: a hash over exactly the
/// spec fields that every serve/join process of one distributed run shares
/// (backend name included — it is identical across the processes of a run —
/// but NOT socket_local/trace paths, which legitimately differ). The merge
/// tool refuses to stitch traces whose run_ids disagree.
std::uint64_t spec_run_id(const RunSpec& spec) {
  std::string s = to_string(spec.protocol) + '|' + to_string(spec.network) +
                  '|' + to_string(spec.adversary) + '|' +
                  to_string(spec.workload) + '|' +
                  std::to_string(spec.workload_scale) + '|' +
                  std::to_string(spec.corruptions) + '|' +
                  std::to_string(spec.params.n) + '|' +
                  std::to_string(spec.params.ts) + '|' +
                  std::to_string(spec.params.ta) + '|' +
                  std::to_string(spec.params.dim) + '|' +
                  std::to_string(spec.params.eps) + '|' +
                  std::to_string(spec.params.delta) + '|' +
                  std::to_string(spec.seed) + '|' + spec.faults + '|' +
                  spec.backend;
  // Appended only for non-Euclidean domains so every pre-domain-layer run id
  // (and with it the merge tool's cross-version stitching) stays stable.
  if (!spec.domain.empty() && spec.domain != "euclid") s += '|' + spec.domain;
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// The `meta` trace header: everything obs/merge.cpp needs to check that a
/// set of per-process traces belongs to one run and to rebuild the exact
/// MonitorHost configuration for the post-hoc global re-evaluation. Field
/// values mirror make_monitor_config's resolution (ta clamping, contraction
/// gating, budget selection) so the re-run judges with the live monitors'
/// parameters, not the raw spec's.
std::string meta_line(const RunSpec& spec,
                      const std::optional<obs::MonitorHost::Config>& cfg,
                      std::uint32_t proc, const std::vector<bool>& honest) {
  const Params& p = spec.params;
  obs::JsonWriter w;
  w.begin_object();
  w.kv("ev", "meta");
  w.kv("schema", "hydra-trace-v1");
  if (proc != 0) w.kv("proc", std::uint64_t{proc});
  w.kv("run_id", spec_run_id(spec));
  w.kv("seed", spec.seed);
  w.kv("n", std::uint64_t{p.n});
  w.kv("ts", std::uint64_t{p.ts});
  w.kv("ta", std::uint64_t{cfg.has_value() ? cfg->ta : p.ta});
  w.kv("dim", std::uint64_t{p.dim});
  w.kv("eps", p.eps);
  if (!spec.domain.empty() && spec.domain != "euclid") {
    w.kv("domain", spec.domain);
  }
  w.kv("mode", obs::to_string(spec.monitors));
  w.kv("contraction", cfg.has_value() ? cfg->contraction_factor : 0.0);
  w.kv("hull_tol", cfg.has_value() ? cfg->hull_tol : 0.0);
  w.kv("msgs_fixed", cfg.has_value() ? cfg->budget.msgs_fixed : 0);
  w.kv("msgs_per_it", cfg.has_value() ? cfg->budget.msgs_per_iteration : 0);
  w.kv("bytes_fixed", cfg.has_value() ? cfg->budget.bytes_fixed : 0);
  w.kv("bytes_per_it", cfg.has_value() ? cfg->budget.bytes_per_iteration : 0);
  w.key("honest");
  w.begin_array();
  for (const bool h : honest) w.value(std::uint64_t{h ? 1u : 0u});
  w.end_array();
  w.key("local");
  w.begin_array();
  for (const PartyId id : spec.socket_local) w.value(std::uint64_t{id});
  w.end_array();
  w.kv("backend", spec.backend);
  w.end_object();
  return w.take();
}

/// The per-run metrics snapshot: spec echo, verdict, totals, per-party and
/// per-round communication, the diameter-contraction series (the empirical
/// side of the paper's convergence lemmas), round-latency summary, and the
/// run-registry dump.
void write_metrics_json(const RunSpec& spec, const RunResult& result,
                        const Stats& round_latency) {
  obs::JsonWriter w;
  w.begin_object();

  w.key("spec");
  w.begin_object();
  w.kv("protocol", to_string(spec.protocol));
  w.kv("network", to_string(spec.network));
  w.kv("adversary", to_string(spec.adversary));
  w.kv("workload", to_string(spec.workload));
  w.kv("workload_scale", spec.workload_scale);
  w.kv("corruptions", std::uint64_t{spec.corruptions});
  w.kv("n", std::uint64_t{spec.params.n});
  w.kv("ts", std::uint64_t{spec.params.ts});
  w.kv("ta", std::uint64_t{spec.params.ta});
  w.kv("dim", std::uint64_t{spec.params.dim});
  w.kv("eps", spec.params.eps);
  w.kv("delta", std::int64_t{spec.params.delta});
  w.kv("seed", spec.seed);
  w.kv("faults", spec.faults);
  w.kv("backend", spec.backend);
  if (!spec.domain.empty() && spec.domain != "euclid") {
    w.kv("domain", spec.domain);
  }
  w.end_object();

  w.key("verdict");
  w.begin_object();
  w.kv("live", result.verdict.live);
  w.kv("valid", result.verdict.valid);
  w.kv("agreed", result.verdict.agreed);
  w.kv("output_diameter", result.verdict.output_diameter);
  w.end_object();

  w.key("totals");
  w.begin_object();
  w.kv("messages", result.messages);
  w.kv("bytes", result.bytes);
  w.kv("end_time", std::int64_t{result.end_time});
  w.kv("rounds", result.rounds);
  w.kv("hit_limit", result.hit_limit);
  w.kv("input_diameter", result.input_diameter);
  w.kv("min_estimate", result.min_estimate);
  w.kv("max_estimate", result.max_estimate);
  w.kv("max_output_iteration", std::uint64_t{result.max_output_iteration});
  w.kv("safe_area_fallbacks", result.safe_area_fallbacks);
  w.kv("max_sent_by_party", result.max_sent_by_party);
  w.kv("frames_auth_dropped", result.frames_auth_dropped);
  w.kv("frames_decode_dropped", result.frames_decode_dropped);
  w.end_object();

  const auto u64_array = [&w](std::string_view name,
                              const std::vector<std::uint64_t>& xs) {
    w.key(name);
    w.begin_array();
    for (const auto x : xs) w.value(x);
    w.end_array();
  };
  u64_array("sent_per_party", result.sent_per_party);
  w.key("per_round");
  w.begin_object();
  u64_array("messages", result.messages_per_round);
  u64_array("bytes", result.bytes_per_round);
  w.end_object();

  // diameter_per_round[i] = honest value diameter after iteration i; the
  // paper predicts contraction by sqrt(7/8) per iteration (Lemma 5.10).
  w.key("diameter_per_round");
  w.begin_array();
  for (const double d : result.iteration_diameters) w.value(d);
  w.end_array();

  summary_json(w, "round_latency_delta", round_latency.summary());

  w.key("monitor");
  w.begin_object();
  w.kv("mode", obs::to_string(spec.monitors));
  w.kv("violations", result.monitor_violations);
  w.kv("aborted", result.monitor_aborted);
  w.end_object();

  w.key("faults");
  w.begin_object();
  w.kv("spec", spec.faults);
  w.kv("drops", result.fault_drops);
  w.kv("dups", result.fault_dups);
  w.kv("delays", result.fault_delays);
  w.end_object();

  // Per-party progress (thread backend; arrays empty on the simulator).
  // Scalars first, then numeric arrays only — the block stays parseable by
  // obs/report.cpp's flat-object extraction (no nested '}').
  w.key("progress");
  w.begin_object();
  w.kv("backend", spec.backend);
  w.kv("timed_out", result.timed_out);
  w.kv("wall_ms", std::int64_t{result.wall_ms});
  w.kv("timeout_detail", result.timeout_detail);
  const auto progress_array = [&w, &result](std::string_view name,
                                            auto&& field) {
    w.key(name);
    w.begin_array();
    for (const auto& p : result.progress) w.value(std::uint64_t{field(p)});
    w.end_array();
  };
  progress_array("finished",
                 [](const net::PartyProgress& p) -> std::uint64_t { return p.finished ? 1 : 0; });
  progress_array("crash_stopped",
                 [](const net::PartyProgress& p) -> std::uint64_t { return p.crash_stopped ? 1 : 0; });
  progress_array("events",
                 [](const net::PartyProgress& p) -> std::uint64_t { return p.events; });
  progress_array("last_progress",
                 [](const net::PartyProgress& p) -> std::uint64_t {
                   return static_cast<std::uint64_t>(p.last_progress);
                 });
  w.end_object();

  // Socket-transport link health; omitted entirely when all-zero so
  // sim/threads metrics stay byte-identical to previous releases. Contains
  // arrays, so flat-object readers must use the array-aware parser
  // (obs/flatjson.hpp parse_object_arrays).
  const net::TransportHealth& th = result.transport_health;
  if (th.any()) {
    w.key("transport_health");
    w.begin_object();
    w.kv("connect_attempts", th.connect_attempts);
    w.kv("connects", th.connects);
    w.kv("accepts", th.accepts);
    w.kv("frames_sent", th.frames_sent);
    w.kv("flushes", th.flushes);
    w.kv("frames_received", th.frames_received);
    w.kv("egress_hwm", th.egress_hwm);
    w.kv("mailbox_hwm", th.mailbox_hwm);
    const auto bucket_array = [&w](std::string_view name, const auto& buckets) {
      w.key(name);
      w.begin_array();
      for (const auto b : buckets) w.value(std::uint64_t{b});
      w.end_array();
    };
    bucket_array("flush_ns_buckets", th.flush_ns_buckets);
    bucket_array("frame_bytes_buckets", th.frame_bytes_buckets);
    w.end_object();
  }

  // Under an installed per-run context this is the run's own registry.
  w.key("registry");
  w.raw(obs::registry().to_json());

  w.end_object();

  std::FILE* f = std::fopen(spec.metrics_out.c_str(), "wb");
  if (f == nullptr) {
    HYDRA_LOG_ERROR("metrics: cannot open %s for writing", spec.metrics_out.c_str());
    return;
  }
  const std::string& doc = w.str();
  bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) HYDRA_LOG_ERROR("metrics: short write to %s", spec.metrics_out.c_str());
}

/// The hydra-perf-v1 phase-profile export: a short spec echo (enough to know
/// what was profiled) plus the profiler's per-phase aggregates. Written to
/// its own side-channel file because the nanosecond fields are wall clock:
/// the trace and metrics files stay byte-deterministic per (spec, seed),
/// this one does not (its phase COUNTS do — test_prof.cpp).
void write_perf_json(const RunSpec& spec, const obs::Profiler& profiler) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "hydra-perf-v1");
  w.key("spec");
  w.begin_object();
  w.kv("protocol", to_string(spec.protocol));
  w.kv("network", to_string(spec.network));
  w.kv("adversary", to_string(spec.adversary));
  w.kv("corruptions", std::uint64_t{spec.corruptions});
  w.kv("n", std::uint64_t{spec.params.n});
  w.kv("ts", std::uint64_t{spec.params.ts});
  w.kv("ta", std::uint64_t{spec.params.ta});
  w.kv("dim", std::uint64_t{spec.params.dim});
  w.kv("seed", spec.seed);
  w.kv("backend", spec.backend);
  w.end_object();
  // Splice the profiler's {"phases":{...}} document minus its outer braces.
  const std::string phases = profiler.to_json();
  HYDRA_ASSERT(phases.size() >= 2 && phases.front() == '{' && phases.back() == '}');
  w.raw(std::string_view(phases).substr(1, phases.size() - 2));
  w.end_object();

  std::FILE* f = std::fopen(spec.perf_out.c_str(), "wb");
  if (f == nullptr) {
    HYDRA_LOG_ERROR("perf: cannot open %s for writing", spec.perf_out.c_str());
    return;
  }
  const std::string& doc = w.str();
  bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) HYDRA_LOG_ERROR("perf: short write to %s", spec.perf_out.c_str());
}

/// RAII for the per-run observability session. Every run gets its OWN
/// obs::Context — a private registry, the run's trace sink, and an isolated
/// safe-area fallback counter — installed thread-locally for execute()'s
/// duration. Concurrent runs (harness/sweep.hpp) therefore never share
/// mutable observability state, and the process-wide Registry::global() /
/// set_enabled() remain untouched for code outside the harness.
class ObsSession {
 public:
  ObsSession(const RunSpec& spec,
             std::optional<obs::MonitorHost::Config> monitor_config,
             std::uint32_t proc) {
    if (!spec.trace_out.empty()) {
      sink_ = std::make_unique<obs::TraceSink>(spec.trace_out);
      if (!sink_->ok()) sink_.reset();
      if (sink_ != nullptr) sink_->set_proc(proc);
    }
    if (monitor_config.has_value()) {
      monitors_ = std::make_unique<obs::MonitorHost>(std::move(*monitor_config));
    }
    if (!spec.perf_out.empty()) {
      profiler_ = std::make_unique<obs::Profiler>();
    }
    if (!spec.stats_out.empty()) {
      stats_ = std::make_unique<obs::StatsPublisher>(
          spec.stats_out, spec.stats_interval_ms, proc);
      if (!stats_->ok()) stats_.reset();
    }
    ctx_.registry = &registry_;
    ctx_.trace_sink = sink_.get();
    ctx_.monitors = monitors_.get();
    ctx_.profiler = profiler_.get();
    // Live telemetry is a side channel, not trace instrumentation: backends
    // look it up once at run start (obs::stats()), so it neither needs nor
    // sets the per-event enabled flag.
    ctx_.stats = stats_.get();
    // Profiling counts as observability: the full phase tree includes scopes
    // (net.egress, net.deliver) that live on enabled-only paths.
    ctx_.enabled = sink_ != nullptr || !spec.metrics_out.empty() ||
                   monitors_ != nullptr || profiler_ != nullptr;
    // Log lines emitted while this thread's context holds a sink should land
    // in it (the hook resolves per-thread at emit time, so this is safe to
    // install from concurrent sessions).
    if (sink_ != nullptr) obs::install_log_hook();
    scoped_.emplace(&ctx_);
  }

  ~ObsSession() {
    scoped_.reset();  // restore the caller's context before the sink dies
    if (stats_ != nullptr) stats_->stop();  // final heartbeat + flush
    if (sink_ != nullptr) sink_->flush();
  }

  [[nodiscard]] bool active() const noexcept { return ctx_.enabled; }
  [[nodiscard]] obs::MonitorHost* monitors() const noexcept {
    return monitors_.get();
  }
  [[nodiscard]] obs::Profiler* profiler() const noexcept {
    return profiler_.get();
  }
  [[nodiscard]] std::uint64_t safe_area_fallbacks() const noexcept {
    return ctx_.safe_area_fallbacks.load();
  }

 private:
  obs::Registry registry_;
  std::unique_ptr<obs::TraceSink> sink_;
  std::unique_ptr<obs::MonitorHost> monitors_;
  std::unique_ptr<obs::Profiler> profiler_;
  std::unique_ptr<obs::StatsPublisher> stats_;
  obs::Context ctx_;
  std::optional<obs::ScopedContext> scoped_;
};

/// Assembles the MonitorHost configuration for a spec, or nullopt when
/// monitors are off. Which monitors arm depends on the spec:
///  - contraction only for the paper's midpoint rule on the hybrid stack
///    (Lemma 5.10 proves sqrt(7/8) there; the centroid ablation and the
///    lock-step baseline have no proven factor);
///  - the complexity budget only under adversaries that follow the honest
///    message schedule — a spammer or equivocator can open extra protocol
///    instances that honest parties must echo, legitimately inflating
///    honest counts beyond the structural bound.
std::optional<obs::MonitorHost::Config> make_monitor_config(
    const RunSpec& spec, const Params& p, const std::vector<bool>& honest,
    std::vector<geo::Vec> honest_inputs) {
  if (spec.monitors == obs::MonitorMode::kOff) return std::nullopt;
  obs::MonitorHost::Config cfg;
  cfg.mode = spec.monitors;
  cfg.n = p.n;
  cfg.ts = p.ts;
  cfg.ta = spec.protocol == Protocol::kAsyncMh ? async_mh_ta(p) : p.ta;
  cfg.dim = p.dim;
  cfg.eps = p.eps;
  cfg.honest = honest;
  cfg.honest_inputs = std::move(honest_inputs);
  cfg.domain = p.domain;
  if (spec.protocol != Protocol::kSyncLockstep &&
      p.aggregation == protocols::Aggregation::kDiameterMidpoint) {
    // The domain's proven factor for the midpoint rule: sqrt(7/8) Euclidean
    // (Lemma 5.10), 1/2 for tree midpoints.
    cfg.contraction_factor = domain::resolve(p.domain).contraction_factor();
  }
  const bool schedule_bound_adversary =
      spec.adversary == Adversary::kNone || spec.adversary == Adversary::kSilent ||
      spec.adversary == Adversary::kCrash || spec.adversary == Adversary::kOutlier;
  if (schedule_bound_adversary) {
    cfg.budget = spec.protocol == Protocol::kSyncLockstep
                     ? obs::lockstep_complexity_budget(p.n, p.dim)
                     : obs::hybrid_complexity_budget(p.n, p.dim);
  }
  return cfg;
}

}  // namespace

std::unique_ptr<sim::DelayModel> make_network(const RunSpec& spec) {
  const Duration delta = spec.params.delta;
  switch (spec.network) {
    case Network::kSyncWorstCase:
      return std::make_unique<sim::FixedDelay>(delta);
    case Network::kSyncJitter:
      return std::make_unique<sim::UniformDelay>(1, delta);
    case Network::kSyncTargeted:
      return std::make_unique<adversary::TargetedScheduler>(
          std::make_unique<sim::UniformDelay>(1, std::max<Duration>(1, delta / 2)),
          std::set<PartyId>{static_cast<PartyId>(spec.params.n - 1)}, delta);
    case Network::kSyncRushing:
      return std::make_unique<adversary::RushingScheduler>(
          corrupted_set(spec.corruptions), 1, delta);
    case Network::kAsyncReorder:
      return std::make_unique<adversary::ReorderScheduler>(delta, 0.3, 12 * delta);
    case Network::kAsyncPartition: {
      std::set<PartyId> group;
      for (PartyId id = 0; id < spec.params.n / 2; ++id) group.insert(id);
      return std::make_unique<adversary::PartitionScheduler>(
          std::make_unique<sim::UniformDelay>(1, delta), std::move(group), 2 * delta,
          50 * delta);
    }
    case Network::kAsyncExponential:
      return std::make_unique<sim::ExponentialDelay>(2.0 * static_cast<double>(delta),
                                                     60 * delta);
  }
  return std::make_unique<sim::FixedDelay>(delta);
}

void ensure_backends_registered() {
  // std::call_once rather than static-initializer registration: the adapter
  // object files live in static libraries, where an unreferenced
  // self-registering global gets dropped by the linker.
  static std::once_flag once;
  std::call_once(once, [] {
    sim::register_sim_backend();
    transport::register_thread_backend();
    transport::register_socket_backends();
  });
}

std::vector<std::string> backend_names() {
  ensure_backends_registered();
  return net::backend_names();
}

std::string to_string(Network network) {
  switch (network) {
    case Network::kSyncWorstCase: return "sync-worst";
    case Network::kSyncJitter: return "sync-jitter";
    case Network::kSyncTargeted: return "sync-target";
    case Network::kSyncRushing: return "sync-rush";
    case Network::kAsyncReorder: return "async-reorder";
    case Network::kAsyncPartition: return "async-partition";
    case Network::kAsyncExponential: return "async-exp";
  }
  return "?";
}

bool is_synchronous(Network network) {
  switch (network) {
    case Network::kSyncWorstCase:
    case Network::kSyncJitter:
    case Network::kSyncTargeted:
    case Network::kSyncRushing:
      return true;
    default:
      return false;
  }
}

std::string to_string(Adversary adversary) {
  switch (adversary) {
    case Adversary::kNone: return "none";
    case Adversary::kSilent: return "silent";
    case Adversary::kCrash: return "crash";
    case Adversary::kEquivocator: return "equivocate";
    case Adversary::kOutlier: return "outlier";
    case Adversary::kHaltRusher: return "halt-rush";
    case Adversary::kSpammer: return "spam";
    case Adversary::kStraggler: return "straggler";
    case Adversary::kTurncoat: return "turncoat";
    case Adversary::kMixed: return "mixed";
  }
  return "?";
}

std::optional<Network> parse_network(std::string_view name) {
  for (const auto network :
       {Network::kSyncWorstCase, Network::kSyncJitter, Network::kSyncTargeted,
        Network::kSyncRushing, Network::kAsyncReorder, Network::kAsyncPartition,
        Network::kAsyncExponential}) {
    if (to_string(network) == name) return network;
  }
  return std::nullopt;
}

std::optional<Adversary> parse_adversary(std::string_view name) {
  for (const auto adversary :
       {Adversary::kNone, Adversary::kSilent, Adversary::kCrash,
        Adversary::kEquivocator, Adversary::kOutlier, Adversary::kHaltRusher,
        Adversary::kSpammer, Adversary::kStraggler, Adversary::kTurncoat,
        Adversary::kMixed}) {
    if (to_string(adversary) == name) return adversary;
  }
  return std::nullopt;
}

std::optional<Protocol> parse_protocol(std::string_view name) {
  for (const auto protocol :
       {Protocol::kHybrid, Protocol::kSyncLockstep, Protocol::kAsyncMh}) {
    if (to_string(protocol) == name) return protocol;
  }
  return std::nullopt;
}

std::string to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kHybrid: return "hybrid";
    case Protocol::kSyncLockstep: return "sync-lockstep";
    case Protocol::kAsyncMh: return "async-mh";
  }
  return "?";
}

RunResult execute(const RunSpec& spec) {
  // Resolve the value domain up front; the resolved pointer rides in the
  // effective Params every protocol object below receives. nullptr (the
  // Euclidean default) keeps every downstream path byte-identical to the
  // pre-domain-layer harness.
  const hydra::domain::ValueDomain* dom = nullptr;
  if (!spec.domain.empty() && spec.domain != "euclid") {
    dom = hydra::domain::find(spec.domain);
    if (dom == nullptr) {
      const std::string msg = "unknown RunSpec::domain \"" + spec.domain +
                              "\"; registered domains: " +
                              hydra::domain::known_names();
      HYDRA_ASSERT_MSG(dom != nullptr, msg.c_str());
    }
    HYDRA_ASSERT_MSG(spec.protocol == Protocol::kHybrid,
                     "non-Euclidean domains run the hybrid protocol only "
                     "(the baselines' thresholds are Euclidean-specific)");
    if (const auto rd = dom->required_dim()) {
      HYDRA_ASSERT_MSG(spec.params.dim == *rd,
                       "RunSpec::params.dim conflicts with the domain's "
                       "required dimension");
    }
  }
  Params effective = spec.params;
  effective.domain = dom;
  const Params& p = effective;
  HYDRA_ASSERT(spec.corruptions < p.n);

  // The fault plan is part of the spec: a party the plan crashes is a faulty
  // party for every judgement below, exactly like a corrupted slot — except
  // it runs the honest protocol and dies at the network layer.
  faults::FaultPlan fault_plan;
  if (!spec.faults.empty()) {
    std::string error;
    auto parsed = faults::parse_fault_plan(spec.faults, &error);
    HYDRA_ASSERT_MSG(parsed.has_value(), "invalid RunSpec::faults spec");
    fault_plan = std::move(*parsed);
    HYDRA_ASSERT_MSG(fault_plan.empty() ||
                         fault_plan.max_party() < static_cast<PartyId>(p.n),
                     "fault plan names a party >= n");
  }

  // Inputs and the honest mask are pure functions of the spec; computing
  // them before the session starts lets the monitor config see the honest
  // inputs without emitting any observability events.
  auto inputs =
      make_inputs(spec.workload, p.n, p.dim, spec.workload_scale, spec.seed);
  if (dom != nullptr) {
    // Discrete domains generate their own inputs (vertex labels); the
    // Euclidean workload generators keep serving every other run untouched.
    if (auto domain_inputs =
            dom->make_inputs(p.n, p.dim, spec.workload_scale, spec.seed)) {
      inputs = std::move(*domain_inputs);
    }
  }
  std::vector<bool> honest_mask(p.n, true);
  std::vector<geo::Vec> honest_inputs;
  for (PartyId id = 0; id < p.n; ++id) {
    const bool corrupt = id < spec.corruptions && spec.adversary != Adversary::kNone;
    honest_mask[id] = !corrupt && !fault_plan.crashes_party(id);
    if (honest_mask[id]) honest_inputs.push_back(inputs[id]);
  }
  HYDRA_ASSERT_MSG(!honest_inputs.empty(),
                   "corruptions + fault-plan crashes leave no honest party");

  // The process's trace identity: 0 for single-process runs (the proc key is
  // suppressed and the trace keeps its historical shape), 1 + min(local
  // party) for serve/join processes — unique because their party sets are
  // disjoint (obs/merge.hpp).
  const std::uint32_t proc =
      spec.socket_local.empty()
          ? 0u
          : 1u + *std::min_element(spec.socket_local.begin(),
                                   spec.socket_local.end());
  auto monitor_config = make_monitor_config(spec, p, honest_mask, honest_inputs);
  const std::string meta = meta_line(spec, monitor_config, proc, honest_mask);
  const ObsSession obs_session(spec, std::move(monitor_config), proc);

  if (auto* tr = obs::trace()) {
    // The merge substrate header: the meta line first, then the exact input
    // vector of every party this process hosts (%.17g — the merged validity
    // re-check rebuilds the global honest-input hull bit-for-bit).
    tr->raw_line(meta);
    for (PartyId id = 0; id < p.n; ++id) {
      if (!spec.socket_local.empty() &&
          std::find(spec.socket_local.begin(), spec.socket_local.end(), id) ==
              spec.socket_local.end()) {
        continue;
      }
      tr->input(0, id, honest_mask[id], inputs[id].coords());
    }
  }

  // One code path for every backend: build the net::Backend named by the
  // spec ("sim" = deterministic discrete-event simulator, "threads" = real
  // thread-per-party transport), hand it the same DelayModel, parties, and
  // injector, and read back backend-neutral stats.
  ensure_backends_registered();
  auto backend =
      net::make_backend(spec.backend,
                        net::BackendConfig{.n = p.n,
                                           .delta = p.delta,
                                           .seed = spec.seed,
                                           .max_time = spec.max_time,
                                           .us_per_tick = spec.us_per_tick,
                                           .timeout_ms = spec.timeout_ms,
                                           .endpoints = spec.socket_endpoints,
                                           .local_parties = spec.socket_local},
                        make_network(spec));
  if (backend == nullptr) {
    // Actionable, not just fatal: name the backend that failed to resolve
    // AND every name that would have worked.
    std::string known;
    for (const auto& name : net::backend_names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    const std::string msg = "unknown RunSpec::backend \"" + spec.backend +
                            "\"; registered backends: " + known;
    HYDRA_ASSERT_MSG(backend != nullptr, msg.c_str());
  }

  std::optional<faults::FaultInjector> injector;
  if (!fault_plan.empty()) {
    injector.emplace(fault_plan,
                     faults::FaultInjector::Config{
                         .seed = spec.seed,
                         .synchronous = is_synchronous(spec.network),
                         .delta = p.delta});
    backend->set_fault_injector(&*injector);
    // The scheduled crash/partition timeline lands in the trace up front so
    // hydra report can render it alongside the violation timeline.
    if (obs_session.active()) injector->emit_timeline();
  }

  // For the lock-step baseline, R comes from the true input diameter (the
  // baseline's "known input bounds" assumption).
  baselines::SyncLockstepConfig lockstep{
      .n = p.n,
      .t = p.ts,
      .dim = p.dim,
      .delta = p.delta,
      .rounds = protocols::sufficient_iterations(
          p.eps, std::max(1e-12, geo::diameter(inputs))),
      .domain = dom};

  // In multi-process socket mode only the parties hosted here are judged:
  // remote slots never run in this process, so their observers would read
  // never-started party objects and report them unfinished. Validity still
  // judges against every honest INPUT (computed above, a pure function of
  // the spec, identical in each process).
  std::vector<bool> judged_mask(p.n, true);
  if (!spec.socket_local.empty()) {
    judged_mask.assign(p.n, false);
    for (const PartyId id : spec.socket_local) {
      HYDRA_ASSERT_MSG(id < p.n, "RunSpec::socket_local names a party >= n");
      judged_mask[id] = true;
    }
  }

  std::vector<const AaParty*> hybrid_parties;
  std::vector<const baselines::SyncLockstepParty*> lockstep_parties;

  // Observer pointers are captured before run(): the net::Backend ownership
  // contract keeps every party object alive (and unmoved) until the backend
  // is destroyed, even when the backend takes the unique_ptrs.
  std::vector<std::unique_ptr<sim::IParty>> parties;
  parties.reserve(p.n);
  // Per-slot finishing predicate for the thread backend's shutdown decision
  // (the simulator detects quiescence and ignores it). Byzantine slots count
  // as finished from the start — shutdown is driven by the protocol slots.
  enum class Finish : std::uint8_t { kAlways, kAa, kLockstep };
  std::vector<Finish> finish_kind(p.n, Finish::kAlways);

  for (PartyId id = 0; id < p.n; ++id) {
    const bool corrupt = id < spec.corruptions && spec.adversary != Adversary::kNone;
    if (corrupt) {
      parties.push_back(make_byzantine(spec.adversary, spec, p, id, inputs[id], 0x9e3779b9));
      continue;
    }
    // A fault-plan-crashed party runs the honest protocol (the injector
    // silences it at the network layer) but is excluded from the observer
    // lists: its outputs are not judged and its history does not feed the
    // contraction series — it is a faulty party in the paper's sense.
    switch (spec.protocol) {
      case Protocol::kHybrid: {
        auto party = std::make_unique<AaParty>(p, inputs[id]);
        if (honest_mask[id] && judged_mask[id]) hybrid_parties.push_back(party.get());
        finish_kind[id] = Finish::kAa;
        parties.push_back(std::move(party));
        break;
      }
      case Protocol::kAsyncMh: {
        // ts = ta = t: identical machinery, baseline thresholds — clamped to
        // the largest feasible ta when ta = ts would violate
        // (D+1) ts + ta < n (see async_mh_ta above).
        Params mh = p;
        mh.ta = async_mh_ta(p);
        auto party = std::make_unique<AaParty>(mh, inputs[id]);
        if (honest_mask[id] && judged_mask[id]) hybrid_parties.push_back(party.get());
        finish_kind[id] = Finish::kAa;
        parties.push_back(std::move(party));
        break;
      }
      case Protocol::kSyncLockstep: {
        auto party = std::make_unique<baselines::SyncLockstepParty>(lockstep, inputs[id]);
        if (honest_mask[id] && judged_mask[id]) lockstep_parties.push_back(party.get());
        finish_kind[id] = Finish::kLockstep;
        parties.push_back(std::move(party));
        break;
      }
    }
  }

  const auto finished = [&finish_kind](const sim::IParty& party, PartyId id) {
    switch (finish_kind[id]) {
      case Finish::kAa:
        return static_cast<const AaParty&>(party).has_output();
      case Finish::kLockstep:
        return static_cast<const baselines::SyncLockstepParty&>(party).has_output();
      case Finish::kAlways:
        break;
    }
    return true;
  };

  const auto stats = backend->run(parties, finished);

  RunResult result;
  result.monitor_aborted = stats.monitor_aborted;
  if (injector.has_value()) {
    const auto totals = injector->totals();
    result.fault_drops = totals.dropped;
    result.fault_dups = totals.duplicated;
    result.fault_delays = totals.delayed;
  }
  // Totality can only be judged on a quiescent run: the simulator drains
  // its queue unless truncated (limit or strict abort), while the thread
  // backend shuts down the moment every party finished and may legally
  // leave in-flight ΠrBC echoes undelivered. The trace `end` marker carries
  // the same flag so merged-trace re-evaluation makes the same call.
  const bool quiescent = spec.backend == "sim" && !stats.hit_limit &&
                         !stats.monitor_aborted;
  if (auto* mon = obs_session.monitors()) {
    mon->finalize(stats.end_time, quiescent);
    result.violations = mon->violations();
    result.monitor_violations = mon->total_violations();
  }
  // The session's context starts every run at zero, so no before/after
  // bookkeeping (which raced under concurrent runs) is needed.
  result.safe_area_fallbacks = obs_session.safe_area_fallbacks();
  for (const auto sent : stats.wire.sent_per_party) {
    result.max_sent_by_party = std::max(result.max_sent_by_party, sent);
  }
  result.sent_per_party = stats.wire.sent_per_party;
  result.messages_per_round = stats.wire.messages_per_round;
  result.bytes_per_round = stats.wire.bytes_per_round;
  result.input_diameter = hydra::domain::resolve(dom).diameter(honest_inputs);
  result.messages = stats.wire.messages;
  result.bytes = stats.wire.bytes;
  result.end_time = stats.end_time;
  result.hit_limit = stats.hit_limit;
  result.rounds = static_cast<double>(stats.end_time) / static_cast<double>(p.delta);
  result.timed_out = stats.timed_out;
  result.wall_ms = stats.wall_ms;
  result.progress = stats.progress;
  result.timeout_detail = stats.timeout_detail;
  result.frames_auth_dropped = stats.frames_auth_dropped;
  result.frames_decode_dropped = stats.frames_decode_dropped;
  result.transport_health = stats.health;

  std::vector<geo::Vec> outputs;
  std::size_t expected = 0;
  if (spec.protocol == Protocol::kSyncLockstep) {
    expected = lockstep_parties.size();
    for (const auto* party : lockstep_parties) {
      if (party->has_output()) outputs.push_back(party->output());
    }
  } else {
    expected = hybrid_parties.size();
    result.min_estimate = UINT64_MAX;
    std::size_t min_history = SIZE_MAX;
    for (const auto* party : hybrid_parties) {
      if (party->has_output()) outputs.push_back(party->output());
      result.min_estimate = std::min(result.min_estimate, party->estimate());
      result.max_estimate = std::max(result.max_estimate, party->estimate());
      result.max_output_iteration =
          std::max(result.max_output_iteration, party->output_iteration());
      min_history = std::min(min_history, party->value_history().size());
    }
    if (result.min_estimate == UINT64_MAX) result.min_estimate = 0;
    // Honest value diameter per iteration (v_0, v_1, ...).
    if (min_history != SIZE_MAX) {
      for (std::size_t i = 0; i < min_history; ++i) {
        std::vector<geo::Vec> layer;
        layer.reserve(hybrid_parties.size());
        for (const auto* party : hybrid_parties) {
          layer.push_back(party->value_history()[i]);
        }
        result.iteration_diameters.push_back(
            hydra::domain::resolve(dom).diameter(layer));
      }
    }
  }

  result.verdict = check_d_aa(outputs, expected, honest_inputs, p.eps,
                              /*tol=*/1e-5, dom);

  if (obs_session.active()) {
    // Per-iteration latency in units of Delta, across every honest party:
    // value_times()[i] - value_times()[i-1] spans iteration i. Theorems 4.4
    // and 5.19 bound this by c_AA-it = 5 rounds under synchrony.
    Stats round_latency;
    static constexpr std::array<double, 7> kLatencyBounds{1.0, 2.0,  3.0, 5.0,
                                                          8.0, 13.0, 21.0};
    auto& latency_hist = obs::registry().histogram("aa.round_latency_delta",
                                                           kLatencyBounds);
    for (const auto* party : hybrid_parties) {
      const auto& times = party->value_times();
      for (std::size_t i = 1; i < times.size(); ++i) {
        const double in_delta = static_cast<double>(times[i] - times[i - 1]) /
                                static_cast<double>(p.delta);
        round_latency.add(in_delta);
        latency_hist.observe(in_delta);
      }
    }
    if (auto* tr = obs::trace()) {
      // Append the honest-diameter contraction series so the trace renders
      // a per-iteration counter track alongside the event timeline.
      for (std::size_t i = 0; i < result.iteration_diameters.size(); ++i) {
        tr->scalar(static_cast<Time>(i) * p.delta, 0, "honest_diameter",
                   result.iteration_diameters[i]);
      }
    }
    if (!spec.metrics_out.empty()) write_metrics_json(spec, result, round_latency);
    if (const auto* prof = obs_session.profiler()) write_perf_json(spec, *prof);
    HYDRA_LOG_INFO("run seed=%llu verdict=%s messages=%llu rounds=%.2f",
                   static_cast<unsigned long long>(spec.seed),
                   result.verdict.d_aa() ? "ok" : "FAIL",
                   static_cast<unsigned long long>(result.messages), result.rounds);
    if (auto* tr = obs::trace()) {
      // Clean end-of-trace marker, always the sink's last event: a killed
      // serve/join process never reaches this line, which is how the merge
      // tool distinguishes a finished island from a truncated one.
      tr->end(/*complete=*/!stats.timed_out, quiescent);
    }
  }
  return result;
}

}  // namespace hydra::harness
