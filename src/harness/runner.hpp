// Single-run driver: build a simulation from a declarative RunSpec (protocol
// parameters, workload, network condition, adversary), execute it, and
// return oracle verdicts plus metrics. Every experiment binary is a loop
// over RunSpecs.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/oracles.hpp"
#include "harness/workloads.hpp"
#include "net/wire_stats.hpp"
#include "obs/monitor.hpp"
#include "protocols/params.hpp"

namespace hydra::sim {
class DelayModel;
}

namespace hydra::harness {

/// Network condition under which the run executes. "Sync" variants respect
/// the Delta bound; "Async" variants violate it (legal only when judging
/// against the ta threshold).
enum class Network {
  kSyncWorstCase,   ///< every message takes exactly Delta
  kSyncJitter,      ///< uniform in [1, Delta]
  kSyncTargeted,    ///< one victim always at Delta, others jittered
  kSyncRushing,     ///< corrupted senders fast, honest at Delta
  kAsyncReorder,    ///< heavy-tailed reordering beyond Delta
  kAsyncPartition,  ///< a group cut off for a long window
  kAsyncExponential ///< exponential delays with mean ~2 Delta
};

[[nodiscard]] std::string to_string(Network network);
[[nodiscard]] bool is_synchronous(Network network);

/// Inverse of to_string; nullopt on unknown names.
[[nodiscard]] std::optional<Network> parse_network(std::string_view name);

/// Byzantine behaviour assigned to the corrupted slots.
enum class Adversary {
  kNone,
  kSilent,
  kCrash,        ///< honest protocol, dies mid-run
  kEquivocator,
  kOutlier,      ///< honest protocol with an extreme input
  kHaltRusher,
  kSpammer,
  kStraggler,    ///< relays RBC only
  kTurncoat,     ///< honest protocol until mid-run, then equivocation burst
  kMixed,        ///< cycles through the list above per corrupted slot
};

[[nodiscard]] std::string to_string(Adversary adversary);
[[nodiscard]] std::optional<Adversary> parse_adversary(std::string_view name);

/// Which protocol runs in the honest slots.
enum class Protocol {
  kHybrid,        ///< the paper's ΠAA
  kSyncLockstep,  ///< Vaidya-Garg-style baseline (t = ts)
  kAsyncMh,       ///< Mendes-Herlihy-style baseline (t = ts = ta)
};

[[nodiscard]] std::string to_string(Protocol protocol);
[[nodiscard]] std::optional<Protocol> parse_protocol(std::string_view name);

struct RunSpec {
  protocols::Params params;
  Protocol protocol = Protocol::kHybrid;
  Workload workload = Workload::kUniformBall;
  double workload_scale = 10.0;
  Network network = Network::kSyncWorstCase;
  Adversary adversary = Adversary::kNone;
  std::size_t corruptions = 0;  ///< number of corrupted slots (ids 0..c-1)
  std::uint64_t seed = 1;
  Time max_time = 500'000'000;

  /// Execution backend (net/backend.hpp): "sim" — the deterministic
  /// discrete-event simulator (byte-identical traces per (spec, seed)) —
  /// "threads" — one OS thread per party under wall-clock time — or
  /// "tcp"/"uds" — the socket transport, where every non-self message
  /// crosses the OS as a length-prefixed frame. All backends run the
  /// identical protocol objects through the identical net::EgressPipeline /
  /// net::DeliveryGate path; only the scheduler differs.
  std::string backend = "sim";

  /// Value domain (src/domain/; registry-backed like `backend`): "euclid" —
  /// the paper's R^D — or a registered discrete instance ("tree", "path").
  /// Non-Euclidean domains run the hybrid protocol only, force the domain's
  /// required dimension, and dispatch aggregation, validity, and diameter
  /// through the domain's metric. "euclid" keeps every code path and output
  /// byte-identical to the pre-domain-layer harness.
  std::string domain = "euclid";

  /// Wall-clock microseconds per tick (wall-clock backends only).
  double us_per_tick = 5.0;
  /// Wall-clock run cap in milliseconds (wall-clock backends only).
  std::int64_t timeout_ms = 30'000;

  /// Socket backends only. `socket_endpoints` lists one address per party
  /// ("host:port" for tcp, a filesystem path for uds); empty = self-assigned
  /// loopback/tmpdir endpoints (requires all parties local).
  /// `socket_local` names the parties hosted by THIS process (hydra
  /// serve/join); empty = all parties local (single-process `--backend=tcp`).
  /// In multi-process mode only the LOCAL honest parties are judged — remote
  /// parties never run in this process, their hosts judge them — while
  /// validity is still checked against every honest input (inputs are a pure
  /// function of the spec, identical in every process).
  std::vector<std::string> socket_endpoints;
  std::vector<PartyId> socket_local;

  /// Fault-injection spec (src/faults/; grammar in docs/ROBUSTNESS.md), e.g.
  /// "dup(p=0.2);crash(party=0,at=5000)". "" = no faults. Parties the plan
  /// crash-stops still RUN the honest protocol (the crash happens at the
  /// network layer) but count as faulty for the oracle and the monitors.
  std::string faults;

  // Observability (docs/OBSERVABILITY.md). When either path is set, execute()
  // enables observability for the run's duration inside a per-run
  // obs::Context with its own private registry, so each run's snapshot
  // stands alone and concurrent runs (harness/sweep.hpp) never share state.
  std::string trace_out;    ///< JSONL structured trace ("" = no trace)
  std::string metrics_out;  ///< metrics JSON snapshot ("" = no export)
  /// Phase-profile JSON ("hydra-perf-v1"; "" = no profiling). Installs an
  /// obs::Profiler in the run's context; docs/OBSERVABILITY.md. Unlike the
  /// trace and metrics files, the nanosecond fields are wall clock and NOT
  /// deterministic — only the phase counts are, per (spec, seed) on the
  /// simulator backend.
  std::string perf_out;

  /// Live telemetry: append "hydra-stats-v1" JSONL heartbeats (per-party
  /// progress, wire totals, queue depths) every `stats_interval_ms` to
  /// `stats_out` while the run executes, with a guaranteed final snapshot on
  /// shutdown. "" = off. Heartbeats carry wall-clock timestamps and are NOT
  /// deterministic — they are a side channel like perf_out, never part of
  /// the trace/metrics determinism contract. `hydra top` renders the file
  /// live (docs/OBSERVABILITY.md, "Distributed runs").
  std::string stats_out;
  std::int64_t stats_interval_ms = 1000;

  /// Online invariant monitors (obs/monitor.hpp; docs/OBSERVABILITY.md).
  /// kRecord checks the paper's per-round invariants live and records
  /// violations in RunResult; kStrict additionally aborts the run on the
  /// first violation. Any non-kOff mode enables observability for the run.
  obs::MonitorMode monitors = obs::MonitorMode::kOff;
};

struct RunResult {
  Verdict verdict;
  double input_diameter = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  Time end_time = 0;
  bool hit_limit = false;
  /// Virtual duration in units of Delta.
  double rounds = 0.0;
  /// Smallest / largest honest Πinit estimate (hybrid / async-mh only).
  std::uint64_t min_estimate = 0;
  std::uint64_t max_estimate = 0;
  /// Largest honest output iteration it_h.
  std::uint32_t max_output_iteration = 0;
  /// Honest per-iteration value diameters (index i = diameter of {v_i});
  /// truncated at the shortest honest history.
  std::vector<double> iteration_diameters;
  /// Safe-area numerical fallbacks triggered during this run (counted in
  /// the run's isolated obs::Context) — nonzero values flag geometry edge
  /// cases worth investigating.
  std::uint64_t safe_area_fallbacks = 0;
  /// Messages sent by the busiest single party.
  std::uint64_t max_sent_by_party = 0;
  /// Messages sent per party (index = PartyId).
  std::vector<std::uint64_t> sent_per_party;
  /// Per-round (units of Delta) communication; populated only when the run
  /// executed with observability enabled (trace_out/metrics_out set).
  std::vector<std::uint64_t> messages_per_round;
  std::vector<std::uint64_t> bytes_per_round;
  /// Invariant-monitor results (empty/zero/false when RunSpec::monitors was
  /// kOff). `violations` is capped (MonitorHost); `monitor_violations` is
  /// the uncapped total.
  std::vector<obs::Violation> violations;
  std::uint64_t monitor_violations = 0;
  bool monitor_aborted = false;  ///< strict mode stopped the run early
  /// Fault-injection totals (zero when RunSpec::faults is empty).
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_dups = 0;
  std::uint64_t fault_delays = 0;
  /// Wall-clock-backend diagnostics (all defaults on the simulator, which
  /// detects quiescence and can neither stall nor time out).
  bool timed_out = false;
  std::int64_t wall_ms = 0;
  std::vector<net::PartyProgress> progress;  ///< per-party watchdog snapshot
  std::string timeout_detail;                ///< names WHO stalled on timeout
  /// Socket backends only: frames rejected by the per-connection
  /// authenticated-sender check and by the hardened decode path. Zero on
  /// every healthy run (and always zero on sim/threads).
  std::uint64_t frames_auth_dropped = 0;
  std::uint64_t frames_decode_dropped = 0;
  /// Socket backends only: per-process link health — connect/accept
  /// counters, writer flush-latency and frame-size histograms, queue
  /// high-water marks. All-zero (health.any() false) on sim/threads; the
  /// metrics JSON gets a "transport_health" block only when nonzero, so
  /// simulator metrics stay byte-identical.
  net::TransportHealth transport_health;
};

/// Builds the sim::DelayModel implementing `spec.network` (spec.params.delta
/// and spec.corruptions parameterize the adversarial schedulers). Shared by
/// execute() and the multi-instance serving engine (src/serve/), which must
/// model network conditions identically to single runs.
[[nodiscard]] std::unique_ptr<sim::DelayModel> make_network(const RunSpec& spec);

/// Registers the builtin execution backends ("sim", "threads", "tcp",
/// "uds") with the net::Backend registry. Idempotent and thread-safe;
/// execute() calls it on every run, so only code talking to the registry
/// directly needs it.
void ensure_backends_registered();

/// Names of the available execution backends, registering the builtins
/// first (for CLI validation and `hydra list`).
[[nodiscard]] std::vector<std::string> backend_names();

/// Executes one run on the backend named by `spec.backend` ("sim" default).
/// Thread-safe: every call installs an isolated per-run obs::Context, so
/// independent specs may execute concurrently (harness/sweep.hpp) — on the
/// simulator backend with results byte-identical to sequential execution
/// per seed.
[[nodiscard]] RunResult execute(const RunSpec& spec);

}  // namespace hydra::harness
