#include "adversary/schedulers.hpp"

#include <algorithm>

namespace hydra::adversary {

Duration PartitionScheduler::delay(PartyId from, PartyId to, Time now,
                                   const sim::Message& msg, Rng& rng) {
  const Duration base = base_->delay(from, to, now, msg, rng);
  const bool crosses = group_.contains(from) != group_.contains(to);
  if (crosses && now >= from_ && now < until_) {
    return std::max<Duration>(base, until_ - now + base);
  }
  return base;
}

Duration TargetedScheduler::delay(PartyId from, PartyId to, Time now,
                                  const sim::Message& msg, Rng& rng) {
  if (victims_.contains(from) || victims_.contains(to)) return max_delay_;
  return base_->delay(from, to, now, msg, rng);
}

Duration RushingScheduler::delay(PartyId from, PartyId /*to*/, Time /*now*/,
                                 const sim::Message& /*msg*/, Rng& /*rng*/) {
  return corrupted_.contains(from) ? fast_ : slow_;
}

Duration ReorderScheduler::delay(PartyId /*from*/, PartyId /*to*/, Time /*now*/,
                                 const sim::Message& /*msg*/, Rng& rng) {
  if (rng.next_double() < tail_prob_) {
    return rng.next_int(delta_, tail_cap_);
  }
  return rng.next_int(1, delta_);
}

}  // namespace hydra::adversary
