// Network-scheduling adversaries: DelayModel decorators that exercise the
// adversary's control over message delivery.
//
// Under synchrony the adversary may pick any delay in (0, Delta]; under
// asynchrony any finite delay. These schedulers implement the standard
// worst-case strategies:
//   PartitionScheduler   all traffic across a party-set boundary is held for
//                        a window (asynchronous "network in distress");
//   TargetedScheduler    traffic from/to a victim set always takes the
//                        maximum the model allows;
//   RushingScheduler     messages from the corrupted set arrive at minimum
//                        latency while honest traffic takes the maximum —
//                        lets Byzantine values always arrive first;
//   ReorderScheduler     random per-message jitter with a heavy tail,
//                        aggressively reordering (asynchronous only).
#pragma once

#include <memory>
#include <set>

#include "common/types.hpp"
#include "sim/delay.hpp"

namespace hydra::adversary {

/// Messages crossing the boundary of `group` during [from, until) are
/// delayed until at least `until` (plus the base delay); all other traffic
/// uses `base`. Models an eventual-delivery partition, so it is only a
/// legal adversary for asynchronous runs.
class PartitionScheduler final : public sim::DelayModel {
 public:
  PartitionScheduler(std::unique_ptr<sim::DelayModel> base, std::set<PartyId> group,
                     Time from, Time until)
      : base_(std::move(base)), group_(std::move(group)), from_(from), until_(until) {}

  [[nodiscard]] Duration delay(PartyId from, PartyId to, Time now,
                               const sim::Message& msg, Rng& rng) override;

 private:
  std::unique_ptr<sim::DelayModel> base_;
  std::set<PartyId> group_;
  Time from_;
  Time until_;
};

/// Traffic touching any victim always takes exactly `max_delay`; the rest
/// uses `base`. With max_delay <= Delta this is a legal synchronous
/// adversary that keeps chosen parties one step behind everyone else.
class TargetedScheduler final : public sim::DelayModel {
 public:
  TargetedScheduler(std::unique_ptr<sim::DelayModel> base, std::set<PartyId> victims,
                    Duration max_delay)
      : base_(std::move(base)), victims_(std::move(victims)), max_delay_(max_delay) {}

  [[nodiscard]] Duration delay(PartyId from, PartyId to, Time now,
                               const sim::Message& msg, Rng& rng) override;

 private:
  std::unique_ptr<sim::DelayModel> base_;
  std::set<PartyId> victims_;
  Duration max_delay_;
};

/// Corrupted senders' messages arrive after `fast` ticks; honest senders'
/// after `slow` ticks. With slow <= Delta this is a legal synchronous
/// adversary ("rushing": the adversary sees honest traffic before honest
/// parties see each other's).
class RushingScheduler final : public sim::DelayModel {
 public:
  RushingScheduler(std::set<PartyId> corrupted, Duration fast, Duration slow)
      : corrupted_(std::move(corrupted)), fast_(fast), slow_(slow) {}

  [[nodiscard]] Duration delay(PartyId from, PartyId to, Time now,
                               const sim::Message& msg, Rng& rng) override;

 private:
  std::set<PartyId> corrupted_;
  Duration fast_;
  Duration slow_;
};

/// Heavy-tailed random delays: with probability `tail_prob` a message takes
/// a uniformly random delay in [delta, tail_cap]; otherwise in [1, delta].
/// Violates any Delta bound — asynchronous adversary with heavy reordering.
class ReorderScheduler final : public sim::DelayModel {
 public:
  ReorderScheduler(Duration delta, double tail_prob, Duration tail_cap)
      : delta_(delta), tail_prob_(tail_prob), tail_cap_(tail_cap) {}

  [[nodiscard]] Duration delay(PartyId from, PartyId to, Time now,
                               const sim::Message& msg, Rng& rng) override;

 private:
  Duration delta_;
  double tail_prob_;
  Duration tail_cap_;
};

}  // namespace hydra::adversary
