#include "adversary/behaviors.hpp"

#include <utility>

#include "protocols/codec.hpp"
#include "protocols/keys.hpp"

namespace hydra::adversary {

using protocols::encode_party_set;
using protocols::encode_value;
using protocols::kDirect;
using protocols::kInitWitnessSet;
using protocols::kObcReport;
using protocols::kRbcHalt;
using protocols::kRbcInitReport;
using protocols::kRbcInitValue;
using protocols::kRbcObcValue;
using protocols::kRbcSend;

// ----------------------------------------------------------- CrashParty

bool CrashParty::crashed(const sim::Env& env) const noexcept {
  return env.now() >= crash_at_;
}

void CrashParty::start(sim::Env& env) {
  if (!crashed(env)) inner_->start(env);
}

void CrashParty::on_message(sim::Env& env, PartyId from, const sim::Message& msg) {
  if (!crashed(env)) inner_->on_message(env, from, msg);
}

void CrashParty::on_timer(sim::Env& env, std::uint64_t timer_id) {
  if (!crashed(env)) inner_->on_timer(env, timer_id);
}

// ------------------------------------------------------ EquivocatorParty

void EquivocatorParty::equivocate(sim::Env& env, const InstanceKey& key) {
  for (PartyId r = 0; r < env.n(); ++r) {
    geo::Vec v = base_;
    for (std::size_t d = 0; d < v.dim(); ++d) v[d] += spread_ * static_cast<double>(r);
    env.send(r, sim::Message{key, kRbcSend, encode_value(v)});
  }
}

void EquivocatorParty::start(sim::Env& env) {
  equivocate(env, InstanceKey{kRbcInitValue, env.self(), 0});
  for (std::uint32_t it = 1; it <= iterations_; ++it) {
    equivocate(env, InstanceKey{kRbcObcValue, env.self(), it});
  }
}

void EquivocatorParty::on_message(sim::Env& env, PartyId from, const sim::Message& msg) {
  // Honest relay of everyone's broadcasts keeps this attacker inside the
  // quorums, maximizing the chance its split values get delivered somewhere.
  if (msg.kind <= protocols::kRbcReady && msg.key.a != env.self()) {
    mux_.handle(env, from, msg);
  }
}

// ---------------------------------------------------------- SpammerParty

void SpammerParty::spam(sim::Env& env) {
  const auto n32 = static_cast<std::uint32_t>(env.n());
  for (int burst = 0; burst < 4; ++burst) {
    InstanceKey key{static_cast<std::uint32_t>(rng_.next_below(10)),
                    static_cast<std::uint32_t>(rng_.next_below(n32 * 2)),
                    static_cast<std::uint32_t>(rng_.next_below(1u << 22))};
    Bytes junk(rng_.next_below(64), static_cast<std::uint8_t>(rng_.next_u64()));
    const auto kind = static_cast<std::uint8_t>(rng_.next_below(5));
    env.send(static_cast<PartyId>(rng_.next_below(env.n())),
             sim::Message{key, kind, std::move(junk)});
  }
}

void SpammerParty::start(sim::Env& env) {
  spam(env);
  env.set_timer(env.now() + period_, 0);
}

void SpammerParty::on_timer(sim::Env& env, std::uint64_t) {
  if (env.now() >= stop_at_) return;
  spam(env);
  env.set_timer(env.now() + period_, 0);
}

// ------------------------------------------------------- HaltRusherParty

void HaltRusherParty::start(sim::Env& env) {
  // A well-formed initial value keeps the rusher plausible; the forged halt
  // claims agreement was reached after one iteration.
  mux_.broadcast(env, InstanceKey{kRbcInitValue, env.self(), 0}, encode_value(value_));
  mux_.broadcast(env, InstanceKey{kRbcObcValue, env.self(), 1}, encode_value(value_));
  mux_.broadcast(env, InstanceKey{kRbcHalt, env.self(), 1}, Bytes{});
}

void HaltRusherParty::on_message(sim::Env& env, PartyId from, const sim::Message& msg) {
  if (msg.kind <= protocols::kRbcReady) mux_.handle(env, from, msg);
}

// -------------------------------------------------------- TurncoatParty

void TurncoatParty::sabotage(sim::Env& env) {
  sabotaged_ = true;
  // Equivocating SENDs for the next iterations' OBC values and a forged
  // early halt, under our own (authenticated) identity.
  for (std::uint32_t it = 1; it <= 32; ++it) {
    for (PartyId r = 0; r < env.n(); ++r) {
      geo::Vec v(params_.dim, 0.0);
      for (std::size_t d = 0; d < params_.dim; ++d) {
        v[d] = 1e4 * static_cast<double>(r + 1) * (d % 2 == 0 ? 1.0 : -1.0);
      }
      env.send(r, sim::Message{InstanceKey{kRbcObcValue, env.self(), it},
                               protocols::kRbcSend, encode_value(v)});
    }
  }
  mux_.broadcast(env, InstanceKey{kRbcHalt, env.self(), 1}, Bytes{});
}

void TurncoatParty::start(sim::Env& env) {
  honest_->start(env);
  env.set_timer(turn_at_, 0);
}

void TurncoatParty::on_message(sim::Env& env, PartyId from, const sim::Message& msg) {
  if (!turned(env)) {
    honest_->on_message(env, from, msg);
    return;
  }
  if (!sabotaged_) sabotage(env);
  // Keep relaying RBC traffic so the attack stays inside the quorums.
  if (msg.kind <= protocols::kRbcReady) mux_.handle(env, from, msg);
}

void TurncoatParty::on_timer(sim::Env& env, std::uint64_t timer_id) {
  if (!turned(env)) {
    honest_->on_timer(env, timer_id);
    return;
  }
  if (!sabotaged_) sabotage(env);
}

// ---------------------------------------------------- StragglerEchoParty

void StragglerEchoParty::on_message(sim::Env& env, PartyId from,
                                    const sim::Message& msg) {
  if (msg.kind <= protocols::kRbcReady) mux_.handle(env, from, msg);
}

}  // namespace hydra::adversary
