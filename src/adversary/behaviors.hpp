// Byzantine party behaviours.
//
// A Byzantine party is just an IParty with hostile logic: it can send any
// message it likes under its own identity (channels are authenticated, so it
// cannot impersonate others), relay or withhold sub-protocol traffic, and
// coordinate with the delay adversary in adversary/schedulers.hpp.
//
// The library covers the canonical attack surfaces of the paper's model:
//   SilentParty       never sends anything (the Theorem 3.2 construction);
//   CrashParty        honest until a configured time, then dead (adaptive
//                     corruption of an honest party mid-run);
//   EquivocatorParty  sends conflicting initial values to different
//                     receivers in every reliable broadcast it initiates,
//                     while relaying other parties' broadcasts honestly —
//                     the attack ΠrBC's echo quorums must defeat;
//   SpammerParty      floods malformed payloads, exotic instance keys and
//                     oversized reports (exercises defensive decoding);
//   HaltRusherParty   reliably broadcasts (halt, 1) immediately, trying to
//                     trick honest parties into outputting early;
//   StragglerEcho     participates in ΠrBC relaying only — contributes to
//                     quorums but never supplies values, reports or
//                     witness sets (a "lurking" corruption).
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "geometry/vec.hpp"
#include "protocols/aa.hpp"
#include "protocols/params.hpp"
#include "protocols/rbc.hpp"
#include "sim/env.hpp"

namespace hydra::adversary {

class SilentParty final : public sim::IParty {
 public:
  void start(sim::Env&) override {}
  void on_message(sim::Env&, PartyId, const sim::Message&) override {}
  void on_timer(sim::Env&, std::uint64_t) override {}
};

/// Runs `inner` faithfully until local time `crash_at`, then goes dark.
class CrashParty final : public sim::IParty {
 public:
  CrashParty(std::unique_ptr<sim::IParty> inner, Time crash_at)
      : inner_(std::move(inner)), crash_at_(crash_at) {}

  void start(sim::Env& env) override;
  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override;
  void on_timer(sim::Env& env, std::uint64_t timer_id) override;

 private:
  [[nodiscard]] bool crashed(const sim::Env& env) const noexcept;

  std::unique_ptr<sim::IParty> inner_;
  Time crash_at_;
};

/// Equivocates its own broadcasts: receiver r gets `base + r * spread` in
/// every coordinate. Relays everyone else's RBC traffic honestly so it still
/// contributes to echo/ready quorums (the strongest useful variant of this
/// attack — a non-relaying equivocator is strictly weaker than Silent plus
/// this one).
class EquivocatorParty final : public sim::IParty {
 public:
  EquivocatorParty(protocols::Params params, geo::Vec base, double spread,
                   std::uint32_t iterations = 64)
      : params_(params), base_(std::move(base)), spread_(spread),
        iterations_(iterations),
        mux_(params_, [](sim::Env&, const InstanceKey&, const Bytes&) {}) {}

  void start(sim::Env& env) override;
  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override;
  void on_timer(sim::Env&, std::uint64_t) override {}

 private:
  void equivocate(sim::Env& env, const InstanceKey& key);

  protocols::Params params_;
  geo::Vec base_;
  double spread_;
  std::uint32_t iterations_;
  protocols::RbcMux mux_;
};

/// Periodically blasts malformed payloads, bogus instance keys, oversized
/// party sets and truncated vectors at every party.
class SpammerParty final : public sim::IParty {
 public:
  SpammerParty(protocols::Params params, std::uint64_t seed, Duration period,
               Time stop_at)
      : params_(params), rng_(seed), period_(period), stop_at_(stop_at) {}

  void start(sim::Env& env) override;
  void on_message(sim::Env&, PartyId, const sim::Message&) override {}
  void on_timer(sim::Env& env, std::uint64_t timer_id) override;

 private:
  void spam(sim::Env& env);

  protocols::Params params_;
  Rng rng_;
  Duration period_;
  Time stop_at_;
};

/// Immediately reliably broadcasts (halt, 1) and a plausible-looking initial
/// value, then relays RBC traffic honestly. ts copies of this attacker test
/// that the (ts+1)-th-smallest rule resists forged early halts.
class HaltRusherParty final : public sim::IParty {
 public:
  HaltRusherParty(protocols::Params params, geo::Vec value)
      : params_(params), value_(std::move(value)),
        mux_(params_, [](sim::Env&, const InstanceKey&, const Bytes&) {}) {}

  void start(sim::Env& env) override;
  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override;
  void on_timer(sim::Env&, std::uint64_t) override {}

 private:
  protocols::Params params_;
  geo::Vec value_;
  protocols::RbcMux mux_;
};

/// Adaptive corruption: runs the full honest protocol until `turn_at`,
/// then switches to hostile behaviour — spraying conflicting RBC SENDs for
/// plausible instance keys under its own identity while continuing to relay
/// (the worst position for the witness mechanism: its earlier honest
/// traffic is already woven into everyone's state).
class TurncoatParty final : public sim::IParty {
 public:
  TurncoatParty(protocols::Params params, geo::Vec input, Time turn_at)
      : params_(params), turn_at_(turn_at),
        honest_(std::make_unique<protocols::AaParty>(params_, std::move(input))),
        mux_(params_, [](sim::Env&, const InstanceKey&, const Bytes&) {}) {}

  void start(sim::Env& env) override;
  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override;
  void on_timer(sim::Env& env, std::uint64_t timer_id) override;

 private:
  [[nodiscard]] bool turned(const sim::Env& env) const noexcept {
    return env.now() >= turn_at_;
  }
  void sabotage(sim::Env& env);

  protocols::Params params_;
  Time turn_at_;
  std::unique_ptr<sim::IParty> honest_;
  protocols::RbcMux mux_;
  bool sabotaged_ = false;
};

/// Relays ΠrBC echo/ready traffic honestly but never initiates anything.
class StragglerEchoParty final : public sim::IParty {
 public:
  explicit StragglerEchoParty(protocols::Params params)
      : params_(params),
        mux_(params_, [](sim::Env&, const InstanceKey&, const Bytes&) {}) {}

  void start(sim::Env&) override {}
  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override;
  void on_timer(sim::Env&, std::uint64_t) override {}

 private:
  protocols::Params params_;
  protocols::RbcMux mux_;
};

}  // namespace hydra::adversary
