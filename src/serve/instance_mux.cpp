#include "serve/instance_mux.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace hydra::serve {

/// The Env handed to an instance's inner party. Stamps the instance id into
/// outgoing tags, rewrites timer ids, and keeps the per-instance wire
/// accounting (self-deliveries exempt, matching net::EgressPipeline). The
/// outer Env pointer is only valid during a dispatch — the backend owns it.
class InstanceMux::InstanceEnv final : public sim::Env {
 public:
  InstanceEnv(std::uint32_t instance, InstanceRecord* record)
      : instance_(instance), record_(record) {}

  void begin(sim::Env* outer) noexcept { outer_ = outer; }
  void end() noexcept { outer_ = nullptr; }

  void send(PartyId to, sim::Message msg) override {
    stamp(msg);
    if (to != outer_->self()) {
      record_->messages += 1;
      record_->bytes += msg.wire_size();
    }
    outer_->send(to, std::move(msg));
  }

  void broadcast(const sim::Message& msg) override {
    // Unicast loop in party order — the same fan-out order every backend Env
    // uses, so an instance's projected send sequence matches a solo run.
    for (PartyId to = 0; to < outer_->n(); ++to) {
      sim::Message copy = msg;
      send(to, std::move(copy));
    }
  }

  void set_timer(Time at, std::uint64_t timer_id) override {
    HYDRA_ASSERT_MSG(timer_id < (1ull << 32),
                     "instance mux: inner timer id must fit 32 bits");
    outer_->set_timer(at, (std::uint64_t{instance_} << 32) | timer_id);
  }

  [[nodiscard]] Time now() const override { return outer_->now(); }
  [[nodiscard]] PartyId self() const override { return outer_->self(); }
  [[nodiscard]] std::size_t n() const override { return outer_->n(); }

 private:
  void stamp(sim::Message& msg) const {
    HYDRA_ASSERT_MSG(msg.key.tag <= kInstanceTagMask,
                     "instance mux: inner protocol tag collides with the "
                     "instance-id bits");
    msg.key.tag |= instance_ << kInstanceTagShift;
  }

  sim::Env* outer_ = nullptr;
  std::uint32_t instance_;
  InstanceRecord* record_;
};

InstanceMux::InstanceMux(Config config) : config_(std::move(config)) {
  HYDRA_ASSERT(config_.directory != nullptr);
  HYDRA_ASSERT(config_.make_party != nullptr);
  HYDRA_ASSERT(config_.decided != nullptr);
  HYDRA_ASSERT_MSG(config_.instances >= 1 && config_.instances <= kMaxInstances,
                   "instance mux: instance count out of the tag-bit range");
  HYDRA_ASSERT(config_.interarrival >= 0 && config_.linger >= 0);
  if (config_.gc_retry <= 0) config_.gc_retry = 1;
  slot_of_.assign(config_.instances, -1);
  status_.assign(config_.instances, Status::kPending);
  records_.assign(config_.instances, InstanceRecord{});
}

InstanceMux::~InstanceMux() = default;

void InstanceMux::start(sim::Env& env) {
  // Open-loop admission plan: every instance gets its arrival timer up
  // front. The backlog is one queue entry per instance — cheap, and it keeps
  // admission ticks identical across parties and backends.
  for (std::uint32_t k = 0; k < config_.instances; ++k) {
    env.set_timer(Time{k} * config_.interarrival, kAdmitBit | k);
  }
}

void InstanceMux::on_message(sim::Env& env, PartyId from, const sim::Message& msg) {
  const std::uint32_t instance = msg.key.tag >> kInstanceTagShift;
  if (instance >= config_.instances || status_[instance] == Status::kPending) {
    // Not a known live instance: either an id outside this run's range or a
    // message racing ahead of admission. Count, drop, keep serving.
    ++unknown_dropped_;
    return;
  }
  if (status_[instance] == Status::kRetired) {
    ++late_dropped_;
    ++records_[instance].late_dropped;
    return;
  }
  const auto slot_index = static_cast<std::uint32_t>(slot_of_[instance]);
  sim::Message inner = msg;
  inner.key.tag &= kInstanceTagMask;
  dispatch(env, slot_index, [&](Slot& slot) {
    slot.party->on_message(*slot.env, from, inner);
  });
}

void InstanceMux::on_timer(sim::Env& env, std::uint64_t timer_id) {
  if ((timer_id & kAdmitBit) != 0) {
    admit(env, static_cast<std::uint32_t>(timer_id & ~kAdmitBit));
    return;
  }
  if ((timer_id & kGcBit) != 0) {
    gc(env, static_cast<std::uint32_t>(timer_id & ~kGcBit));
    return;
  }
  const auto instance = static_cast<std::uint32_t>(timer_id >> 32);
  const auto inner_id = timer_id & 0xffffffffull;
  HYDRA_ASSERT(instance < config_.instances);
  if (status_[instance] != Status::kLive) {
    // A timer the inner party armed before it was retired: dropped like a
    // late message (pending is impossible — only live instances set timers).
    ++late_dropped_;
    ++records_[instance].late_dropped;
    return;
  }
  const auto slot_index = static_cast<std::uint32_t>(slot_of_[instance]);
  dispatch(env, slot_index,
           [&](Slot& slot) { slot.party->on_timer(*slot.env, inner_id); });
}

void InstanceMux::admit(sim::Env& env, std::uint32_t instance) {
  HYDRA_ASSERT(status_[instance] == Status::kPending);
  std::uint32_t slot_index;
  if (!free_slots_.empty()) {
    slot_index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_index];
  slot.instance = instance;
  slot.in_use = true;
  InstanceRecord& rec = records_[instance];
  rec.admitted = true;
  rec.admitted_at = env.now();
  slot.env = std::make_unique<InstanceEnv>(instance, &rec);
  slot.party = config_.make_party(instance);
  slot_of_[instance] = static_cast<std::int32_t>(slot_index);
  status_[instance] = Status::kLive;
  ++live_count_;
  live_peak_ = std::max(live_peak_, live_count_);
  dispatch(env, slot_index, [&](Slot& s) { s.party->start(*s.env); });
}

void InstanceMux::gc(sim::Env& env, std::uint32_t instance) {
  if (status_[instance] != Status::kLive) return;
  if (config_.directory->all_decided(instance)) {
    retire(instance);
    return;
  }
  // A sibling is still deciding: keep the slot warm and look again later.
  // Every party decides in finite time (that is what the directory counts),
  // so the retry chain terminates and the simulator still drains.
  env.set_timer(env.now() + config_.gc_retry, kGcBit | instance);
}

void InstanceMux::retire(std::uint32_t instance) {
  const auto slot_index = static_cast<std::uint32_t>(slot_of_[instance]);
  Slot& slot = slots_[slot_index];
  slot.party.reset();
  slot.env.reset();
  slot.in_use = false;
  slot_of_[instance] = -1;
  status_[instance] = Status::kRetired;
  free_slots_.push_back(slot_index);
  --live_count_;
}

template <typename Fn>
void InstanceMux::dispatch(sim::Env& env, std::uint32_t slot_index, Fn&& fn) {
  Slot& slot = slots_[slot_index];
  slot.env->begin(&env);
  obs::Context* ctx = config_.instance_context != nullptr
                          ? config_.instance_context(slot.instance)
                          : nullptr;
  if (ctx != nullptr) {
    const obs::ScopedContext scope(ctx);
    fn(slot);
  } else {
    fn(slot);
  }
  slot.env->end();
  after_dispatch(env, slot_index);
}

void InstanceMux::after_dispatch(sim::Env& env, std::uint32_t slot_index) {
  Slot& slot = slots_[slot_index];
  const std::uint32_t instance = slot.instance;
  InstanceRecord& rec = records_[instance];
  if (rec.decided || !config_.decided(*slot.party, instance)) return;
  rec.decided = true;
  rec.decided_at = env.now();
  if (config_.snapshot != nullptr) config_.snapshot(instance, *slot.party, rec);
  ++decided_count_;
  config_.directory->mark_decided(instance);
  env.set_timer(env.now() + config_.linger, kGcBit | instance);
}

}  // namespace hydra::serve
