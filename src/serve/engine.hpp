// Multi-instance serving engine: N independent ΠAA instances multiplexed
// over ONE shared backend (sim / threads / tcp / uds) in a single process.
//
// Each party slot of the backend hosts an InstanceMux; the mux owns the
// per-instance protocol state in a slab keyed by the wire instance id
// (common/types.hpp tag layout). All egress still flows through the shared
// net::EgressPipeline and all ingress through the backend's delivery loop —
// the engine adds routing and lifecycle only, so fault semantics, wire
// accounting, and backend parity are inherited, not re-implemented.
//
// Determinism contract (sim backend, sync-worst network): per-(spec, seed)
// results are byte-deterministic, and every instance's projected event
// sequence equals the solo run of the same instance seed shifted by its
// admission tick — sim::FixedDelay draws no randomness, so instances cannot
// perturb each other (tests/test_serve.cpp asserts outputs, iteration counts
// and wire totals against solo runs).
//
// Monitors: MonitorMode != kOff arms one MonitorHost PER INSTANCE, installed
// via a nested per-instance obs::Context around that instance's dispatches.
// Violations are aggregated per instance; strict mode records (the engine
// does not abort the shared backend mid-run — one bad instance must not tear
// down its siblings' service).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "harness/runner.hpp"
#include "harness/workloads.hpp"
#include "net/wire_stats.hpp"
#include "obs/monitor.hpp"
#include "protocols/params.hpp"

namespace hydra::serve {

struct ServeSpec {
  protocols::Params params;
  harness::Workload workload = harness::Workload::kUniformBall;
  double workload_scale = 10.0;
  harness::Network network = harness::Network::kSyncWorstCase;
  /// Behaviour of the corrupted party slots (ids 0..corruptions-1) inside
  /// the instances listed in corrupt_instances. The engine supports the
  /// schedule-bound kinds: kNone, kSilent, kCrash.
  harness::Adversary adversary = harness::Adversary::kNone;
  std::size_t corruptions = 0;
  std::vector<std::uint32_t> corrupt_instances;

  std::uint32_t instances = 1;
  /// Open-loop admission spacing in ticks (instance k arrives at
  /// k * interarrival; 0 = all at once).
  Time interarrival = 0;
  /// Ticks between global decision and slot retirement; negative = default
  /// (8 * delta — wide enough that echo tails drain into live slots on every
  /// supported network, keeping late-drop counters at zero on clean runs).
  Duration linger = -1;

  std::uint64_t seed = 1;
  std::string backend = "sim";
  Time max_time = 500'000'000;
  double us_per_tick = 5.0;
  std::int64_t timeout_ms = 30'000;
  /// Socket backends: one endpoint per party; empty = self-assigned.
  std::vector<std::string> endpoints;

  obs::MonitorMode monitors = obs::MonitorMode::kOff;
};

/// Per-instance outcome, judged with the same harness::check_d_aa oracle as
/// single runs (validity against the TRUE honest inputs of that instance).
struct InstanceOutcome {
  bool decided = false;  ///< every honest party decided
  bool pass = false;     ///< D-AA verdict over the honest outputs
  Time admitted_at = 0;
  /// Last honest decision minus admission, in ticks.
  Time decision_latency = 0;
  std::uint32_t max_output_iteration = 0;
  double output_diameter = 0.0;
  /// Wire totals for this instance summed over all parties (self exempt).
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t late_dropped = 0;
  std::uint64_t monitor_violations = 0;
};

struct ServeResult {
  std::vector<InstanceOutcome> outcomes;
  std::uint32_t decided = 0;  ///< instances with every honest party decided
  bool all_pass = false;      ///< every instance's D-AA verdict passed
  /// Backend wire totals (every instance, pre-instance-attribution).
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  Time end_time = 0;
  bool hit_limit = false;
  bool timed_out = false;
  std::int64_t wall_ms = 0;  ///< engine-measured wall clock of backend->run()
  std::uint64_t late_dropped = 0;     ///< summed over parties
  std::uint64_t unknown_dropped = 0;  ///< summed over parties
  /// Slab telemetry, max over parties: slots ever allocated (< instances
  /// proves slot reuse) and peak concurrently-live instances.
  std::size_t slots_allocated = 0;
  std::size_t live_peak = 0;
  std::uint64_t monitor_violations = 0;
  std::vector<obs::Violation> violations;  ///< concatenated, host-capped
  /// Socket backends only (zero elsewhere).
  std::uint64_t frames_auth_dropped = 0;
  std::uint64_t frames_decode_dropped = 0;
  net::TransportHealth transport_health;
};

/// Runs the spec's instances to completion on the shared backend.
[[nodiscard]] ServeResult run_serve(const ServeSpec& spec);

/// p-th percentile (0 <= p <= 100) of the decided instances' decision
/// latencies, in ticks; 0 when nothing decided. Deterministic on sim.
[[nodiscard]] Time latency_percentile(const ServeResult& result, double p);

}  // namespace hydra::serve
