// Multi-instance multiplexer: one sim::IParty hosting many concurrent
// protocol instances behind a single party slot of a shared backend.
//
// The serving layer's routing contract mirrors protocols/session.hpp's
// SessionRouter, but with slab-allocated per-instance state and epoch-based
// GC instead of a fixed session table:
//
//   egress   the per-instance Env stamps the serving-instance id into the
//            high bits of InstanceKey::tag (common/types.hpp layout; inner
//            protocol tags stay below 1 << kInstanceTagShift), so instance 0
//            traffic is byte-identical to a single-instance run;
//   ingress  on_message reads the instance id back out of the tag, strips it,
//            and dispatches to the owning slab slot. Messages for a retired
//            instance are counted and dropped (late_dropped) — stragglers'
//            echo tails must never crash the process; messages for an id that
//            was never admitted are counted as unknown_dropped.
//   timers   inner timer ids are rewritten to (instance << 32) | inner_id;
//            admission and GC use reserved high bits, so a late timer for a
//            retired instance is dropped exactly like a late message.
//   GC       an instance's slot is released once EVERY party decided it
//            (InstanceDirectory) and `linger` ticks elapsed; released slots
//            go to a free list and are reused by later admissions, bounding
//            resident state by the number of CONCURRENT instances, not the
//            total served.
//
// Observability: an optional per-instance obs::Context is installed (nested
// ScopedContext) around every dispatch into that instance, so per-instance
// MonitorHosts see exactly their own instance's sends/values/deliveries via
// the shared net::EgressPipeline hooks. Cause attribution inside these
// contexts is 0 (the outer delivery loop owns the DeliveryGate bracket);
// docs/ARCHITECTURE.md documents the seam.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "geometry/vec.hpp"
#include "obs/context.hpp"
#include "sim/env.hpp"
#include "sim/message.hpp"

namespace hydra::serve {

/// Deterministic per-instance seed derivation (splitmix64-style finalizer).
/// A solo harness::RunSpec with seed = instance_seed(base, k) reproduces
/// instance k's inputs exactly — the isolation tests rely on it.
[[nodiscard]] constexpr std::uint64_t instance_seed(std::uint64_t base,
                                                    std::uint32_t instance) noexcept {
  std::uint64_t h = base ^ (0x9e3779b97f4a7c15ULL * (std::uint64_t{instance} + 1));
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// What one party remembers about one instance — survives slot retirement,
/// so verdicts and per-instance accounting are available after GC.
struct InstanceRecord {
  bool admitted = false;
  bool decided = false;
  bool corrupt_slot = false;  ///< this PARTY runs adversary code here
  Time admitted_at = 0;
  Time decided_at = 0;
  std::uint32_t output_iteration = 0;
  bool has_output = false;
  geo::Vec output;
  /// Wire traffic this party emitted for this instance (self exempt, same
  /// convention as net::EgressPipeline).
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Messages/timers that arrived after this party retired the instance.
  std::uint64_t late_dropped = 0;
};

/// Cross-party decision board: an instance's slot may only be retired once
/// every participating party decided it (otherwise a slow sibling would see
/// its peers go dark mid-protocol). Relaxed atomics — the thread and socket
/// backends mark from concurrent worker threads.
class InstanceDirectory {
 public:
  InstanceDirectory(std::uint32_t instances, std::uint32_t deciders)
      : decided_(instances), deciders_(deciders) {
    for (auto& d : decided_) d.store(0, std::memory_order_relaxed);
  }

  void mark_decided(std::uint32_t instance) noexcept {
    decided_[instance].fetch_add(1, std::memory_order_release);
  }

  [[nodiscard]] bool all_decided(std::uint32_t instance) const noexcept {
    return decided_[instance].load(std::memory_order_acquire) >= deciders_;
  }

 private:
  std::vector<std::atomic<std::uint32_t>> decided_;
  std::uint32_t deciders_;
};

class InstanceMux final : public sim::IParty {
 public:
  struct Config {
    PartyId id = 0;
    std::uint32_t instances = 1;
    /// Open-loop admission: instance k starts at local time k * interarrival.
    Time interarrival = 0;
    /// Ticks between the LAST party's decision and slot retirement. Small
    /// values reclaim slots aggressively at the cost of dropping (and
    /// counting) protocol echo tails as late messages.
    Duration linger = 0;
    /// Re-check period while siblings are still deciding (typically Delta).
    Duration gc_retry = 1000;
    InstanceDirectory* directory = nullptr;  ///< required, borrowed
    /// Builds the inner party for one instance (protocol or adversary code).
    std::function<std::unique_ptr<sim::IParty>(std::uint32_t)> make_party;
    /// Local finishing predicate for one instance's inner party.
    std::function<bool(const sim::IParty&, std::uint32_t)> decided;
    /// Snapshot hook, called once when an instance decides locally — copy
    /// outputs out of the inner party BEFORE GC can destroy it. May be null.
    std::function<void(std::uint32_t, const sim::IParty&, InstanceRecord&)> snapshot;
    /// Per-instance observability context to install around dispatches into
    /// that instance (nullptr entries and a null function both mean "none").
    std::function<obs::Context*(std::uint32_t)> instance_context;
  };

  explicit InstanceMux(Config config);
  ~InstanceMux() override;

  void start(sim::Env& env) override;
  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override;
  void on_timer(sim::Env& env, std::uint64_t timer_id) override;

  /// True once every instance was admitted and decided locally. Drives the
  /// wall-clock backends' shutdown via the engine's FinishedFn.
  [[nodiscard]] bool all_done() const noexcept {
    return decided_count_ == config_.instances;
  }

  [[nodiscard]] std::uint32_t decided_count() const noexcept { return decided_count_; }
  [[nodiscard]] const InstanceRecord& record(std::uint32_t instance) const {
    return records_[instance];
  }

  /// Slab telemetry: slots ever allocated (< instances proves reuse) and the
  /// concurrent-liveness high-water mark.
  [[nodiscard]] std::size_t slots_allocated() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t live_peak() const noexcept { return live_peak_; }
  [[nodiscard]] std::uint64_t late_dropped() const noexcept { return late_dropped_; }
  [[nodiscard]] std::uint64_t unknown_dropped() const noexcept {
    return unknown_dropped_;
  }

 private:
  class InstanceEnv;

  enum class Status : std::uint8_t { kPending, kLive, kRetired };

  struct Slot {
    std::unique_ptr<sim::IParty> party;
    std::unique_ptr<InstanceEnv> env;
    std::uint32_t instance = 0;
    bool in_use = false;
  };

  // Timer-id layout (outer ids): bit 63 = admission, bit 62 = GC (low bits
  // carry the instance); otherwise (instance << 32) | inner_id. Instance ids
  // stay below kMaxInstances (2^24), so the reserved bits never collide.
  static constexpr std::uint64_t kAdmitBit = 1ull << 63;
  static constexpr std::uint64_t kGcBit = 1ull << 62;

  void admit(sim::Env& env, std::uint32_t instance);
  void gc(sim::Env& env, std::uint32_t instance);
  void retire(std::uint32_t instance);
  template <typename Fn>
  void dispatch(sim::Env& env, std::uint32_t slot_index, Fn&& fn);
  void after_dispatch(sim::Env& env, std::uint32_t slot_index);

  Config config_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::int32_t> slot_of_;  ///< instance -> slot index (-1 = none)
  std::vector<Status> status_;
  std::vector<InstanceRecord> records_;
  std::uint32_t decided_count_ = 0;
  std::size_t live_count_ = 0;
  std::size_t live_peak_ = 0;
  std::uint64_t late_dropped_ = 0;
  std::uint64_t unknown_dropped_ = 0;
};

}  // namespace hydra::serve
