#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "adversary/behaviors.hpp"
#include "common/assert.hpp"
#include "harness/oracles.hpp"
#include "net/backend.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "protocols/aa.hpp"
#include "serve/instance_mux.hpp"

namespace hydra::serve {
namespace {

using protocols::AaParty;

/// One instance's monitoring kit: a MonitorHost plus the private registry
/// and context that scope its hooks to exactly that instance's dispatches.
struct InstanceObs {
  explicit InstanceObs(obs::MonitorHost::Config config)
      : host(std::move(config)) {
    ctx.registry = &registry;
    ctx.monitors = &host;
    ctx.enabled = true;
  }

  obs::Registry registry;
  obs::MonitorHost host;
  obs::Context ctx;
};

/// Mirror of harness make_monitor_config for the engine's protocol (always
/// the hybrid stack) and its supported schedule-bound adversaries.
obs::MonitorHost::Config make_monitor_config(const ServeSpec& spec,
                                             std::vector<bool> honest,
                                             std::vector<geo::Vec> honest_inputs) {
  const protocols::Params& p = spec.params;
  obs::MonitorHost::Config cfg;
  cfg.mode = spec.monitors;
  cfg.n = p.n;
  cfg.ts = p.ts;
  cfg.ta = p.ta;
  cfg.dim = p.dim;
  cfg.eps = p.eps;
  cfg.honest = std::move(honest);
  cfg.honest_inputs = std::move(honest_inputs);
  cfg.domain = p.domain;
  if (p.aggregation == protocols::Aggregation::kDiameterMidpoint) {
    cfg.contraction_factor = domain::resolve(p.domain).contraction_factor();
  }
  // kNone / kSilent / kCrash all follow the honest message schedule, so the
  // Theorem 5.19 complexity budget applies (as in the single-run harness).
  cfg.budget = obs::hybrid_complexity_budget(p.n, p.dim);
  return cfg;
}

}  // namespace

ServeResult run_serve(const ServeSpec& spec) {
  const protocols::Params& p = spec.params;
  HYDRA_ASSERT_MSG(spec.instances >= 1 && spec.instances <= kMaxInstances,
                   "serve: instance count out of the tag-bit range");
  HYDRA_ASSERT_MSG(spec.corruptions < p.n,
                   "serve: corruptions must leave an honest majority slot");
  HYDRA_ASSERT_MSG(spec.adversary == harness::Adversary::kNone ||
                       spec.adversary == harness::Adversary::kSilent ||
                       spec.adversary == harness::Adversary::kCrash,
                   "serve: only the schedule-bound adversaries (none, silent, "
                   "crash) are supported per instance");
  HYDRA_ASSERT(spec.interarrival >= 0);
  const Duration linger = spec.linger >= 0 ? spec.linger : 8 * p.delta;

  // Which instances run adversary code in the corrupted party slots.
  std::vector<bool> corrupt(spec.instances, false);
  const bool adversarial =
      spec.adversary != harness::Adversary::kNone && spec.corruptions > 0;
  if (adversarial) {
    for (const std::uint32_t k : spec.corrupt_instances) {
      HYDRA_ASSERT_MSG(k < spec.instances,
                       "serve: corrupt_instances names an instance >= instances");
      corrupt[k] = true;
    }
  }

  // Inputs are a pure function of (spec, instance): instance k draws from
  // the solo seed instance_seed(spec.seed, k), so a single-instance
  // harness run with that seed reproduces it exactly (the isolation tests
  // compare against exactly such runs).
  std::vector<std::vector<geo::Vec>> inputs(spec.instances);
  for (std::uint32_t k = 0; k < spec.instances; ++k) {
    inputs[k] = harness::make_inputs(spec.workload, p.n, p.dim,
                                     spec.workload_scale,
                                     instance_seed(spec.seed, k));
    if (p.domain != nullptr) {
      if (auto di = p.domain->make_inputs(p.n, p.dim, spec.workload_scale,
                                          instance_seed(spec.seed, k))) {
        inputs[k] = std::move(*di);
      }
    }
  }
  const auto is_corrupt_slot = [&](std::uint32_t instance, PartyId id) {
    return corrupt[instance] && id < spec.corruptions;
  };

  // Per-instance invariant monitors. One host per instance, shared by all n
  // muxes (its hooks serialize internally); installed around dispatches via
  // the mux's instance_context hook, so each host observes exactly its own
  // instance's sends/values/deliveries.
  std::vector<std::unique_ptr<InstanceObs>> monitors;
  if (spec.monitors != obs::MonitorMode::kOff) {
    monitors.reserve(spec.instances);
    for (std::uint32_t k = 0; k < spec.instances; ++k) {
      std::vector<bool> honest(p.n, true);
      std::vector<geo::Vec> honest_inputs;
      for (PartyId id = 0; id < p.n; ++id) {
        honest[id] = !is_corrupt_slot(k, id);
        if (honest[id]) honest_inputs.push_back(inputs[k][id]);
      }
      monitors.push_back(std::make_unique<InstanceObs>(
          make_monitor_config(spec, std::move(honest), std::move(honest_inputs))));
    }
  }

  // Every party must decide every instance before its slot retires; corrupt
  // slots count as decided from admission (mirroring the single-run
  // harness, where Byzantine slots are finished from the start).
  InstanceDirectory directory(spec.instances, static_cast<std::uint32_t>(p.n));

  std::vector<std::unique_ptr<sim::IParty>> parties;
  std::vector<const InstanceMux*> muxes;
  parties.reserve(p.n);
  muxes.reserve(p.n);
  for (PartyId id = 0; id < p.n; ++id) {
    InstanceMux::Config cfg;
    cfg.id = id;
    cfg.instances = spec.instances;
    cfg.interarrival = spec.interarrival;
    cfg.linger = linger;
    cfg.gc_retry = p.delta;
    cfg.directory = &directory;
    cfg.make_party = [&spec, &inputs, &is_corrupt_slot, &p,
                      id](std::uint32_t instance) -> std::unique_ptr<sim::IParty> {
      if (is_corrupt_slot(instance, id)) {
        if (spec.adversary == harness::Adversary::kCrash) {
          // Same crash schedule as the single-run harness, shifted to the
          // instance's admission tick (solo time 0 = arrival here).
          const Time arrival = Time{instance} * spec.interarrival;
          return std::make_unique<adversary::CrashParty>(
              std::make_unique<AaParty>(p, inputs[instance][id]),
              arrival + (10 + Time(id) * 3) * p.delta);
        }
        return std::make_unique<adversary::SilentParty>();
      }
      return std::make_unique<AaParty>(p, inputs[instance][id]);
    };
    cfg.decided = [&is_corrupt_slot, id](const sim::IParty& party,
                                         std::uint32_t instance) {
      if (is_corrupt_slot(instance, id)) return true;
      return static_cast<const AaParty&>(party).has_output();
    };
    cfg.snapshot = [&is_corrupt_slot, id](std::uint32_t instance,
                                          const sim::IParty& party,
                                          InstanceRecord& rec) {
      if (is_corrupt_slot(instance, id)) {
        rec.corrupt_slot = true;
        return;
      }
      const auto& aa = static_cast<const AaParty&>(party);
      rec.has_output = aa.has_output();
      if (rec.has_output) rec.output = aa.output();
      rec.output_iteration = aa.output_iteration();
    };
    if (!monitors.empty()) {
      cfg.instance_context = [&monitors](std::uint32_t instance) {
        return &monitors[instance]->ctx;
      };
    }
    auto mux = std::make_unique<InstanceMux>(std::move(cfg));
    muxes.push_back(mux.get());
    parties.push_back(std::move(mux));
  }

  // make_network only reads the network kind, delta, and the corruption
  // count, all of which the serve spec shares with a single run.
  harness::ensure_backends_registered();
  harness::RunSpec net_spec;
  net_spec.params = p;
  net_spec.network = spec.network;
  net_spec.corruptions = adversarial ? spec.corruptions : 0;
  auto backend = net::make_backend(
      spec.backend,
      net::BackendConfig{.n = p.n,
                         .delta = p.delta,
                         .seed = spec.seed,
                         .max_time = spec.max_time,
                         .us_per_tick = spec.us_per_tick,
                         .timeout_ms = spec.timeout_ms,
                         .endpoints = spec.endpoints,
                         .instance_tag_limit = spec.instances},
      harness::make_network(net_spec));
  HYDRA_ASSERT_MSG(backend != nullptr, "serve: unknown ServeSpec::backend");

  const auto finished = [](const sim::IParty& party, PartyId) {
    return static_cast<const InstanceMux&>(party).all_done();
  };
  const auto wall_start = std::chrono::steady_clock::now();
  const auto stats = backend->run(parties, finished);
  const auto wall_end = std::chrono::steady_clock::now();

  ServeResult result;
  result.messages = stats.wire.messages;
  result.bytes = stats.wire.bytes;
  result.end_time = stats.end_time;
  result.hit_limit = stats.hit_limit;
  result.timed_out = stats.timed_out;
  result.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       wall_end - wall_start)
                       .count();
  result.frames_auth_dropped = stats.frames_auth_dropped;
  result.frames_decode_dropped = stats.frames_decode_dropped;
  result.transport_health = stats.health;
  for (const InstanceMux* mux : muxes) {
    result.late_dropped += mux->late_dropped();
    result.unknown_dropped += mux->unknown_dropped();
    result.slots_allocated = std::max(result.slots_allocated, mux->slots_allocated());
    result.live_peak = std::max(result.live_peak, mux->live_peak());
  }

  // Every mux hosts the same run projected per party; judge each instance
  // with the same D-AA oracle as single runs.
  const bool quiescent = spec.backend == "sim" && !stats.hit_limit;
  result.outcomes.resize(spec.instances);
  result.all_pass = true;
  for (std::uint32_t k = 0; k < spec.instances; ++k) {
    InstanceOutcome& out = result.outcomes[k];
    std::vector<geo::Vec> outputs;
    std::vector<geo::Vec> honest_inputs;
    std::size_t expected = 0;
    bool all_decided = true;
    std::uint64_t instance_late = 0;
    for (PartyId id = 0; id < p.n; ++id) {
      const InstanceRecord& rec = muxes[id]->record(k);
      out.admitted_at = rec.admitted_at;
      all_decided = all_decided && rec.decided;
      out.messages += rec.messages;
      out.bytes += rec.bytes;
      instance_late += rec.late_dropped;
      if (is_corrupt_slot(k, id)) continue;
      ++expected;
      honest_inputs.push_back(inputs[k][id]);
      if (rec.has_output) outputs.push_back(rec.output);
      if (rec.decided) {
        out.decision_latency =
            std::max(out.decision_latency, rec.decided_at - rec.admitted_at);
      }
      out.max_output_iteration =
          std::max(out.max_output_iteration, rec.output_iteration);
    }
    out.late_dropped = instance_late;
    out.decided = all_decided;
    if (all_decided) ++result.decided;
    const auto verdict =
        harness::check_d_aa(outputs, expected, honest_inputs, p.eps,
                            /*tol=*/1e-5, p.domain);
    out.pass = verdict.d_aa();
    out.output_diameter = verdict.output_diameter;
    result.all_pass = result.all_pass && out.pass;
    if (!monitors.empty()) {
      // Totality needs a drained queue AND an instance whose tail was not
      // cut short by aggressive GC — a nonzero late-drop count means echoes
      // were discarded, which legitimately leaves ΠrBC instances partial.
      monitors[k]->host.finalize(stats.end_time,
                                 quiescent && all_decided && instance_late == 0);
      const std::uint64_t v = monitors[k]->host.total_violations();
      out.monitor_violations = v;
      result.monitor_violations += v;
      for (auto& violation : monitors[k]->host.violations()) {
        result.violations.push_back(std::move(violation));
      }
    }
  }
  return result;
}

Time latency_percentile(const ServeResult& result, double p) {
  std::vector<Time> latencies;
  latencies.reserve(result.outcomes.size());
  for (const InstanceOutcome& out : result.outcomes) {
    if (out.decided) latencies.push_back(out.decision_latency);
  }
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank on the sorted sample, matching harness/stats.hpp.
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(latencies.size())));
  return latencies[rank == 0 ? 0 : rank - 1];
}

}  // namespace hydra::serve
