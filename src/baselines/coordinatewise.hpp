// Coordinate-wise decomposition baseline: run D independent 1-D Approximate
// Agreement instances, one per coordinate, and assemble the output vector.
//
// This is the classical strawman whose failure motivates multidimensional
// AA (Mendes-Herlihy [26], Vaidya-Garg [32]): per-coordinate agreement only
// confines the output to the BOUNDING BOX of the honest inputs, not their
// convex hull. A Byzantine party (or just asynchronous scheduling) can
// steer different coordinates toward different honest parties' values,
// producing an output like (1, 1) from honest inputs (0,0), (1,0), (0,1) —
// inside every coordinate range, far outside the hull.
//
// Implementation: a SessionRouter hosting one 1-D ΠAA session per
// coordinate. Liveness and per-coordinate agreement are inherited; only
// multidimensional VALIDITY is lost — exactly what bench_coordinatewise
// measures.
#pragma once

#include <optional>
#include <string>

#include "common/assert.hpp"
#include "protocols/session.hpp"

namespace hydra::baselines {

class CoordinatewiseParty final : public sim::IParty {
 public:
  /// Why the decomposition cannot run for `params`, or nullopt when it can.
  /// Callers with a user (CLI, benches) surface this BEFORE constructing a
  /// party — the constructor aborts on infeasible parameters, which is the
  /// right contract for protocol code but useless as a user error.
  [[nodiscard]] static std::optional<std::string> feasibility_error(
      const protocols::Params& params) {
    protocols::Params scalar = params;
    scalar.dim = 1;
    if (scalar.feasible()) return std::nullopt;
    return "coordinatewise decomposition runs one 1-D session per "
           "coordinate, which needs n > 2 ts + ta and n > 3 ts; n=" +
           std::to_string(params.n) + " ts=" + std::to_string(params.ts) +
           " ta=" + std::to_string(params.ta) +
           " violates that (raise n or lower ts/ta)";
  }

  /// `params.dim` is the vector dimension D; each coordinate runs a 1-D
  /// session with the same (n, ts, ta, eps, delta). The 1-D sessions need
  /// n > 3 ts and n > 2 ts + ta (the library's D = 1 requirements).
  CoordinatewiseParty(const protocols::Params& params, const geo::Vec& input)
      : dim_(params.dim) {
    HYDRA_ASSERT(input.dim() == dim_);
    protocols::Params scalar = params;
    scalar.dim = 1;
    HYDRA_ASSERT_MSG(!feasibility_error(params).has_value(),
                     "1-D sessions need n > 2 ts + ta and n > 3 ts");
    for (std::uint32_t d = 0; d < dim_; ++d) {
      router_.add_session(d, scalar, geo::Vec{input[d]});
    }
  }

  void start(sim::Env& env) override { router_.start(env); }
  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override {
    router_.on_message(env, from, msg);
  }
  void on_timer(sim::Env& env, std::uint64_t timer_id) override {
    router_.on_timer(env, timer_id);
  }

  [[nodiscard]] bool has_output() const { return router_.all_output(); }

  /// The assembled vector; only meaningful once has_output().
  [[nodiscard]] geo::Vec output() const {
    geo::Vec out(dim_, 0.0);
    for (std::uint32_t d = 0; d < dim_; ++d) {
      out[d] = router_.session(d).output()[0];
    }
    return out;
  }

 private:
  std::size_t dim_;
  protocols::SessionRouter router_;
};

}  // namespace hydra::baselines
