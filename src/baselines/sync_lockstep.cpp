#include "baselines/sync_lockstep.hpp"

#include <utility>

#include "common/assert.hpp"
#include "geometry/safe_area.hpp"
#include "obs/context.hpp"
#include "obs/monitor.hpp"
#include "protocols/keys.hpp"

namespace hydra::baselines {
namespace {

/// Instance-key tag for lock-step round messages; kept out of the hybrid
/// protocol's tag space (protocols/keys.hpp stops at kRbcHalt = 6).
constexpr std::uint32_t kLockstepValue = 16;

}  // namespace

SyncLockstepParty::SyncLockstepParty(SyncLockstepConfig config, geo::Vec input)
    : config_(config), input_(std::move(input)), value_(input_) {
  HYDRA_ASSERT_MSG(config_.feasible(), "(D+1) t < n violated");
  HYDRA_ASSERT(input_.dim() == config_.dim);
  HYDRA_ASSERT(config_.rounds >= 1);
}

void SyncLockstepParty::start(sim::Env& env) {
  history_.push_back(value_);
  if (obs::enabled()) {
    if (auto* mon = obs::monitors()) {
      mon->on_value(env.now(), env.self(), 0, value_);
    }
  }
  send_round(env);
}

void SyncLockstepParty::send_round(sim::Env& env) {
  env.broadcast(sim::Message{
      InstanceKey{kLockstepValue, 0, static_cast<std::uint32_t>(round_)},
      protocols::kDirect, protocols::encode_value(value_)});
  env.set_timer(env.now() + config_.delta, round_);
}

void SyncLockstepParty::on_message(sim::Env& env, PartyId from,
                                   const sim::Message& msg) {
  (void)env;
  if (output_ || msg.key.tag != kLockstepValue || msg.kind != protocols::kDirect) {
    return;
  }
  const std::uint64_t round = msg.key.b;
  // Late (or absurdly early) traffic is dropped — a timeout-based receiver.
  if (round != round_) return;
  auto value = protocols::decode_value(msg.payload, config_.dim, config_.domain);
  if (!value) return;
  received_[round].emplace(from, std::move(*value));
}

void SyncLockstepParty::on_timer(sim::Env& env, std::uint64_t timer_round) {
  if (output_ || timer_round != round_) return;
  close_round(env);
}

void SyncLockstepParty::close_round(sim::Env& env) {
  auto& m = received_[round_];
  if (m.size() >= config_.n - config_.t) {
    // Under synchrony all honest values are in m, so at most k of them are
    // Byzantine: trim exactly k (the ta = 0 instance of the paper's rule).
    const std::size_t k = m.size() - (config_.n - config_.t);
    std::vector<geo::Vec> values;
    values.reserve(m.size());
    for (const auto& [party, value] : m) values.push_back(value);
    if (config_.domain != nullptr) {
      // Domain-dispatched rule (ta = 0, trim exactly k). The domain's own
      // fallback keeps the rule total, so no keep-old-value branch.
      const hydra::domain::AggregateSpec spec{config_.n, config_.t, 0, false, {}};
      value_ = config_.domain->aggregate(spec, values).value;
    } else if (const auto mid = geo::safe_area_midpoint(values, k)) {
      value_ = *mid;
    }
    // An empty safe area cannot happen under true synchrony (Lemma 5.5 with
    // ta = 0); if asynchrony produced one, keep the old value.
  } else {
    // Synchrony violated: not even n - t values arrived. No safe update
    // exists; keep the current value and record the violation.
    starved_ += 1;
  }
  received_.erase(round_);
  history_.push_back(value_);
  if (obs::enabled()) {
    if (auto* mon = obs::monitors()) {
      mon->on_value(env.now(), env.self(), static_cast<std::uint32_t>(round_ + 1),
                    value_);
    }
  }

  round_ += 1;
  if (round_ >= config_.rounds) {
    output_ = value_;
    return;
  }
  send_round(env);
}

}  // namespace hydra::baselines
