// Synchronous lock-step baseline in the style of Vaidya-Garg [32]: D-AA
// with resilience (D + 1) t < n that assumes the network is synchronous and
// the parties' clocks aligned, and has NO guarantees once a message misses
// its round.
//
// Structure (classic iterated safe-area averaging):
//   round r: broadcast the current value tagged with r; at the round
//   boundary (round length Delta — exactly the message-delay bound) collect
//   the values received for r;
//     if |M| >= n - t : trim k = |M| - (n - t) outliers via the safe area
//                       (under synchrony all honest values arrived, so at
//                       most k of M are Byzantine) and move to the midpoint
//                       of its diameter pair;
//     else            : keep the current value (the synchrony assumption is
//                       broken; the protocol silently loses its guarantees —
//                       this is the documented failure mode the hybrid
//                       protocol exists to fix);
//   after R rounds output the current value.
//
// R comes from the caller ("known input bounds" assumption: R >=
// log_sqrt(7/8)(eps / input-diameter)); there is no halting agreement —
// under synchrony everyone reaches round R simultaneously.
//
// Late messages (arriving after their round closed) are DISCARDED, exactly
// like a timeout-based real implementation. Under an asynchronous adversary
// this loses honest values and breaks both agreement and validity, which is
// what bench_baselines measures.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "domain/domain.hpp"
#include "geometry/vec.hpp"
#include "protocols/codec.hpp"
#include "sim/env.hpp"

namespace hydra::baselines {

struct SyncLockstepConfig {
  std::size_t n = 4;
  std::size_t t = 0;       ///< corruption bound; needs (D+1) t < n
  std::size_t dim = 2;
  Duration delta = 1000;   ///< round length == assumed delay bound
  std::uint64_t rounds = 1;  ///< R, from known input bounds

  /// Value domain; nullptr keeps the original Euclidean code path (including
  /// its keep-the-old-value reaction to an empty safe area) byte-identical.
  const hydra::domain::ValueDomain* domain = nullptr;

  [[nodiscard]] bool feasible() const noexcept {
    return domain != nullptr ? domain->feasible(n, t, 0, dim)
                             : n > (dim + 1) * t;
  }
};

class SyncLockstepParty final : public sim::IParty {
 public:
  SyncLockstepParty(SyncLockstepConfig config, geo::Vec input);

  void start(sim::Env& env) override;
  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override;
  void on_timer(sim::Env& env, std::uint64_t timer_id) override;

  [[nodiscard]] bool has_output() const noexcept { return output_.has_value(); }
  [[nodiscard]] const geo::Vec& output() const { return *output_; }
  [[nodiscard]] const geo::Vec& input() const noexcept { return input_; }
  [[nodiscard]] const std::vector<geo::Vec>& value_history() const noexcept {
    return history_;
  }
  /// Rounds in which fewer than n - t values arrived (synchrony violations).
  [[nodiscard]] std::uint64_t starved_rounds() const noexcept { return starved_; }

 private:
  void send_round(sim::Env& env);
  void close_round(sim::Env& env);

  SyncLockstepConfig config_;
  geo::Vec input_;
  geo::Vec value_;

  std::uint64_t round_ = 0;
  std::map<std::uint64_t, std::map<PartyId, geo::Vec>> received_;  // per round
  std::vector<geo::Vec> history_;
  std::optional<geo::Vec> output_;
  std::uint64_t starved_ = 0;
};

}  // namespace hydra::baselines
