// Pure-asynchronous baseline in the style of Mendes-Herlihy [26] /
// Vaidya-Garg [32]: D-AA with a single corruption threshold t, secure iff
// (D + 2) t < n.
//
// As the paper observes (Section 1, "by setting ts = ta we match the
// necessary condition in the asynchronous model"), the hybrid protocol
// degenerates to exactly this algorithm when ts = ta = t: the safe-area
// trim becomes max(k, t) >= t, the witness/double-witness machinery reduces
// to MH's witness technique, and the clock guards are vacuous under
// asynchrony (they only delay actions, never change the decision logic).
// We therefore expose the baseline as a configuration of the same verified
// machinery instead of a divergent re-implementation, keeping the
// experimental comparison apples-to-apples: any measured difference comes
// from the threshold structure, not implementation drift.
#pragma once

#include "protocols/aa.hpp"
#include "protocols/params.hpp"

namespace hydra::baselines {

/// Parameters of the pure-asynchronous protocol.
struct AsyncMhConfig {
  std::size_t n = 4;
  std::size_t t = 0;   ///< single corruption threshold; needs (D+2) t < n
  std::size_t dim = 2;
  double eps = 1e-3;
  Duration delta = 1000;  ///< only used to pace the (vacuous) clock guards
};

/// Derives hybrid-protocol Params with ts = ta = t.
[[nodiscard]] protocols::Params to_hybrid_params(const AsyncMhConfig& config);

/// Whether the baseline's own resilience condition (D + 2) t < n holds
/// (plus the Bracha substrate requirement n > 3t).
[[nodiscard]] bool async_mh_feasible(const AsyncMhConfig& config);

/// The asynchronous-optimal D-AA party: hybrid ΠAA at ts = ta = t.
class AsyncMhParty final : public sim::IParty {
 public:
  AsyncMhParty(const AsyncMhConfig& config, geo::Vec input)
      : inner_(to_hybrid_params(config), std::move(input)) {}

  void start(sim::Env& env) override { inner_.start(env); }
  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override {
    inner_.on_message(env, from, msg);
  }
  void on_timer(sim::Env& env, std::uint64_t timer_id) override {
    inner_.on_timer(env, timer_id);
  }

  [[nodiscard]] bool has_output() const { return inner_.has_output(); }
  [[nodiscard]] const geo::Vec& output() const { return inner_.output(); }
  [[nodiscard]] const protocols::AaParty& party() const { return inner_; }

 private:
  protocols::AaParty inner_;
};

}  // namespace hydra::baselines
