#include "baselines/async_mh.hpp"

namespace hydra::baselines {

protocols::Params to_hybrid_params(const AsyncMhConfig& config) {
  protocols::Params p;
  p.n = config.n;
  p.ts = config.t;
  p.ta = config.t;
  p.dim = config.dim;
  p.eps = config.eps;
  p.delta = config.delta;
  return p;
}

bool async_mh_feasible(const AsyncMhConfig& config) {
  return to_hybrid_params(config).feasible();  // (D+1)t + t < n == (D+2)t < n
}

}  // namespace hydra::baselines
