// Safe area of Definition 5.1:
//
//   safe_t(M) = intersection over M' in restrict_t(M) of convex(M'),
//   restrict_t(M) = { M' subset of M : |M'| = |M| - t },
//
// i.e. the set of points that remain inside the convex hull of the values no
// matter which t of them the adversary contributed.
//
// Kernels (DESIGN.md decision 3):
//   D = 1  exact closed form: [x_(t+1), x_(m-t)] on the sorted values.
//   D = 2  exact polygon clipping over all C(m, t) restrictions.
//   D = 3  exact facet enumeration (quickhull) + half-space vertex
//          enumeration when the configuration permits (full-dimensional
//          hulls, bounded plane count); otherwise the D >= 4 kernel.
//   D >= 4 LP kernel: emptiness and membership are exact (simplex
//          feasibility); the extreme-point sample used for the diameter pair
//          is direction-sampled and therefore approximate (ablated by the
//          bench_geometry_kernels target).
//
// Determinism: given the same value list in the same order, every operation
// is bit-for-bit deterministic. Protocol layers sort values by sender id
// before calling in, so parties holding equal multisets compute identical
// midpoints — the consistency Pi_init relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "geometry/interval.hpp"
#include "geometry/polygon.hpp"
#include "geometry/vec.hpp"

namespace hydra::geo {

struct SafeAreaOptions {
  /// Number of sampled support directions for the D >= 3 kernel (in addition
  /// to the 2D axis directions, which are always included).
  std::size_t support_directions = 64;
  /// LP (simplex) tolerance, used by the D >= 3 kernel and membership tests.
  double tol = 1e-9;
  /// Polygon clipping tolerance (relative to coordinate magnitude), used by
  /// the exact D = 2 kernel.
  double clip_tol = 1e-12;
  /// Seed of the deterministic direction sample (same across all parties).
  std::uint64_t direction_seed = 0x5afea4ea5afea4eaULL;
};

class SafeArea {
 public:
  /// Computes safe_t(values). `values` are the val(M) multiset in a fixed
  /// order (multiplicity preserved; combinations are taken over positions).
  [[nodiscard]] static SafeArea compute(std::span<const Vec> values, std::size_t t,
                                        const SafeAreaOptions& opts = {});

  [[nodiscard]] bool empty() const noexcept { return empty_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Membership test; exact in every dimension (D >= 3 uses one LP per
  /// restriction hull).
  [[nodiscard]] bool contains(const Vec& p, double tol = 1e-7) const;

  /// The deterministic diameter-realizing pair (a, b) from the paper's rule:
  /// lexicographically smallest among maximum-distance extreme-point pairs.
  [[nodiscard]] std::optional<std::pair<Vec, Vec>> diameter_pair() const;

  [[nodiscard]] double diameter() const;

  /// The new-value rule of ΠAA-it: v = (a + b) / 2 for the diameter pair.
  /// nullopt iff the safe area is empty.
  [[nodiscard]] std::optional<Vec> midpoint_rule() const;

  /// Alternative aggregation (ablation; see bench_aggregation_rules): the
  /// arithmetic mean of the extreme points. Always in the safe area by
  /// convexity, and deterministic, but WITHOUT the sqrt(7/8) contraction
  /// guarantee of the diameter midpoint [Függer-Nowak 18].
  [[nodiscard]] std::optional<Vec> centroid_rule() const;

  /// Extreme points: exact vertices for D <= 2, sampled support points for
  /// D >= 3. Empty for the empty region.
  [[nodiscard]] const std::vector<Vec>& extreme_points() const noexcept {
    return extreme_;
  }

  /// Exact kernels, exposed for tests.
  [[nodiscard]] const Interval& interval1d() const noexcept { return interval_; }
  [[nodiscard]] const ConvexPolygon2D& polygon2d() const noexcept { return polygon_; }

  /// True when the extreme points are exact (always for D <= 2; for D = 3
  /// when the facet-enumeration kernel succeeded; never for D >= 4).
  [[nodiscard]] bool exact() const noexcept { return dim_ <= 2 || exact_; }

 private:
  std::size_t dim_ = 0;
  bool empty_ = true;
  Interval interval_;                     // D == 1
  ConvexPolygon2D polygon_;               // D == 2
  std::vector<Vec> extreme_;              // all D
  std::vector<std::vector<Vec>> hulls_;   // D >= 3: restriction point sets
  bool exact_ = false;                    // D = 3 facet kernel succeeded
  double lp_tol_ = 1e-9;
};

/// One-shot helper implementing the full ΠAA-it step 4-6 computation:
/// the midpoint of the diameter pair of safe_t(values), or nullopt when the
/// safe area is empty.
[[nodiscard]] std::optional<Vec> safe_area_midpoint(std::span<const Vec> values,
                                                    std::size_t t,
                                                    const SafeAreaOptions& opts = {});

/// Deterministic best pair helper shared by the kernels: among all pairs of
/// `points` at maximum distance, the lexicographically smallest (a, b) with
/// a <= b. nullopt for an empty span.
[[nodiscard]] std::optional<std::pair<Vec, Vec>> max_distance_pair(
    std::span<const Vec> points);

}  // namespace hydra::geo
