#include "geometry/polygon.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "obs/prof.hpp"

namespace hydra::geo {
namespace {

double cross(const Vec& o, const Vec& a, const Vec& b) noexcept {
  return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]);
}

/// True when the turn o->a->b is clockwise or collinear, with a tolerance
/// scaled to the local operand magnitudes (the rounding error of the cross
/// product is a few ulps of |a-o|*|b-o|). A global scale would be wrong in
/// both directions: one far-away outlier (coordinates ~1e6) must not blur
/// orientation among points of size ~1, and a sliver triangle with two huge
/// vertices must not lose its third, genuinely non-collinear, small vertex
/// (Hausdorff error of dropping it can dwarf any intersection tolerance).
bool turns_right_or_collinear(const Vec& o, const Vec& a, const Vec& b,
                              double tol) noexcept {
  const double la = std::max(std::abs(a[0] - o[0]), std::abs(a[1] - o[1]));
  const double lb = std::max(std::abs(b[0] - o[0]), std::abs(b[1] - o[1]));
  const double eps = tol * std::max(la * lb, 1e-300);
  return cross(o, a, b) <= eps;
}

double max_abs_coord(std::span<const Vec> points) noexcept {
  double s = 1.0;
  for (const auto& p : points) {
    s = std::max({s, std::abs(p[0]), std::abs(p[1])});
  }
  return s;
}

HalfPlane normalized(double nx, double ny, double c) {
  const double len = std::hypot(nx, ny);
  HYDRA_ASSERT(len > 0.0);
  return {nx / len, ny / len, c / len};
}

double point_segment_distance(const Vec& p, const Vec& a, const Vec& b) {
  const double ex = b[0] - a[0];
  const double ey = b[1] - a[1];
  const double len2 = ex * ex + ey * ey;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((p[0] - a[0]) * ex + (p[1] - a[1]) * ey) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double qx = a[0] + t * ex;
  const double qy = a[1] + t * ey;
  return std::hypot(p[0] - qx, p[1] - qy);
}

/// Removes consecutive (cyclically) near-coincident vertices.
std::vector<Vec> dedupe_ring(std::vector<Vec> ring, double pos_tol) {
  std::vector<Vec> out;
  for (auto& v : ring) {
    if (out.empty() || !approx_equal(out.back(), v, pos_tol)) {
      out.push_back(std::move(v));
    }
  }
  while (out.size() > 1 && approx_equal(out.front(), out.back(), pos_tol)) {
    out.pop_back();
  }
  return out;
}

}  // namespace

ConvexPolygon2D ConvexPolygon2D::hull_of(std::span<const Vec> points, double tol) {
  HYDRA_PROF_SCOPE("geo.hull2d");
  std::vector<Vec> pts(points.begin(), points.end());
  for ([[maybe_unused]] const auto& p : pts) HYDRA_ASSERT(p.dim() == 2);
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  if (pts.empty()) return ConvexPolygon2D{};
  if (pts.size() == 1) return ConvexPolygon2D{std::move(pts)};

  // Andrew's monotone chain; collinear interior points are dropped.
  std::vector<Vec> hull(2 * pts.size());
  std::size_t k = 0;
  for (const auto& p : pts) {  // lower chain
    while (k >= 2 && turns_right_or_collinear(hull[k - 2], hull[k - 1], p, tol)) --k;
    hull[k++] = p;
  }
  const std::size_t lower_size = k + 1;
  for (auto it = pts.rbegin() + 1; it != pts.rend(); ++it) {  // upper chain
    while (k >= lower_size &&
           turns_right_or_collinear(hull[k - 2], hull[k - 1], *it, tol)) {
      --k;
    }
    hull[k++] = *it;
  }
  hull.resize(k - 1);  // last point equals the first
  return ConvexPolygon2D{std::move(hull)};
}

std::vector<HalfPlane> ConvexPolygon2D::halfplanes() const {
  HYDRA_ASSERT_MSG(!empty(), "half-plane representation of the empty set");
  std::vector<HalfPlane> out;
  if (vertices_.size() == 1) {
    const Vec& p = vertices_[0];
    out.push_back({1.0, 0.0, p[0]});
    out.push_back({-1.0, 0.0, -p[0]});
    out.push_back({0.0, 1.0, p[1]});
    out.push_back({0.0, -1.0, -p[1]});
    return out;
  }
  if (vertices_.size() == 2) {
    const Vec& a = vertices_[0];
    const Vec& b = vertices_[1];
    const double ex = b[0] - a[0];
    const double ey = b[1] - a[1];
    // Two opposite half-planes through the segment's line ...
    out.push_back(normalized(ey, -ex, ey * a[0] - ex * a[1]));
    out.push_back(normalized(-ey, ex, -(ey * a[0] - ex * a[1])));
    // ... plus end caps along the segment direction.
    out.push_back(normalized(ex, ey, ex * b[0] + ey * b[1]));
    out.push_back(normalized(-ex, -ey, -(ex * a[0] + ey * a[1])));
    return out;
  }
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec& v = vertices_[i];
    const Vec& w = vertices_[(i + 1) % vertices_.size()];
    const double ex = w[0] - v[0];
    const double ey = w[1] - v[1];
    // CCW ring: the interior lies to the left of each directed edge, i.e.
    // (ey, -ex) . x <= (ey, -ex) . v.
    out.push_back(normalized(ey, -ex, ey * v[0] - ex * v[1]));
  }
  return out;
}

ConvexPolygon2D ConvexPolygon2D::clip(const HalfPlane& hp, double tol) const {
  if (empty()) return {};
  const double scale = max_abs_coord(vertices_);
  const double eps = tol * scale;
  const auto inside = [&](const Vec& v) {
    return hp.nx * v[0] + hp.ny * v[1] <= hp.c + eps;
  };

  if (vertices_.size() == 1) {
    return inside(vertices_[0]) ? *this : ConvexPolygon2D{};
  }

  std::vector<Vec> out;
  out.reserve(vertices_.size() + 2);
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Vec& s = vertices_[i];
    const Vec& e = vertices_[(i + 1) % vertices_.size()];
    const double fs = hp.nx * s[0] + hp.ny * s[1] - hp.c;
    const double fe = hp.nx * e[0] + hp.ny * e[1] - hp.c;
    const bool s_in = fs <= eps;
    const bool e_in = fe <= eps;
    if (s_in) out.push_back(s);
    // Edge crosses the boundary strictly: emit the crossing point.
    if (s_in != e_in) {
      const double denom = fs - fe;
      if (std::abs(denom) > 0.0) {
        const double t = fs / denom;
        out.push_back(Vec{s[0] + t * (e[0] - s[0]), s[1] + t * (e[1] - s[1])});
      }
    }
  }
  out = dedupe_ring(std::move(out), eps);
  return ConvexPolygon2D{std::move(out)};
}

ConvexPolygon2D ConvexPolygon2D::intersect(const ConvexPolygon2D& other,
                                           double tol) const {
  HYDRA_PROF_SCOPE("geo.clip");
  if (empty() || other.empty()) return {};
  ConvexPolygon2D result = *this;
  for (const auto& hp : other.halfplanes()) {
    result = result.clip(hp, tol);
    if (result.empty()) return {};
  }
  // Canonicalize: clipping noise can leave near-collinear vertices.
  return hull_of(result.vertices_);
}

bool ConvexPolygon2D::contains(const Vec& p, double tol) const {
  HYDRA_PROF_SCOPE("geo.halfspace");
  HYDRA_ASSERT(p.dim() == 2);
  if (empty()) return false;
  if (vertices_.size() == 1) return distance(p, vertices_[0]) <= tol;
  if (vertices_.size() == 2) {
    return point_segment_distance(p, vertices_[0], vertices_[1]) <= tol;
  }
  for (const auto& hp : halfplanes()) {
    if (hp.nx * p[0] + hp.ny * p[1] > hp.c + tol) return false;
  }
  return true;
}

std::optional<std::pair<Vec, Vec>> ConvexPolygon2D::diameter_pair() const {
  if (empty()) return std::nullopt;
  // The diameter of a convex polygon is attained at a vertex pair; with at
  // most a few dozen vertices the all-pairs scan is exact and branch-simple.
  // Ties break to the lexicographically smallest ordered pair, which is the
  // paper's deterministic selection rule.
  std::pair<Vec, Vec> best{vertices_[0], vertices_[0]};
  double best_d = -1.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    for (std::size_t j = i; j < vertices_.size(); ++j) {
      const Vec& u = std::min(vertices_[i], vertices_[j]);
      const Vec& v = std::max(vertices_[i], vertices_[j]);
      const double d = distance(u, v);
      if (d > best_d ||
          (d == best_d && (u < best.first || (u == best.first && v < best.second)))) {
        best_d = d;
        best = {u, v};
      }
    }
  }
  return best;
}

double ConvexPolygon2D::diameter() const {
  const auto pair = diameter_pair();
  return pair ? distance(pair->first, pair->second) : 0.0;
}

}  // namespace hydra::geo
