#include "geometry/lp.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "common/assert.hpp"
#include "obs/prof.hpp"

namespace hydra::geo {
namespace {

// Full tableau simplex. Layout: rows 0..m-1 are constraints, columns
// 0..total-1 are variables (structural then artificial), column `total` is
// the RHS. The objective is kept as a separate row of reduced costs plus a
// scalar. Bland's rule (smallest eligible index enters; smallest basic index
// leaves among min-ratio ties) guarantees termination despite degeneracy.
// The tableau runs in long double (80-bit extended on x86-64): the coupled
// convex-hull systems this solver exists for are ill-conditioned by design
// (Byzantine outliers), and the extra mantissa bits push pivot drift below
// every tolerance in play.
class Tableau {
 public:
  using Scalar = long double;

  Tableau(const Matrix& a, const std::vector<double>& b, double tol)
      : m_(a.rows()), n_(a.cols()), total_(n_ + m_), tol_(tol),
        t_((m_ + 1) * (total_ + 1), 0.0L), basis_(m_), banned_(total_, false) {
    for (std::size_t i = 0; i < m_; ++i) {
      const double sign = b[i] < 0.0 ? -1.0 : 1.0;
      for (std::size_t j = 0; j < n_; ++j) at(i, j) = sign * a.at(i, j);
      at(i, n_ + i) = 1.0;  // artificial
      rhs(i) = sign * b[i];
      basis_[i] = n_ + i;
    }
  }

  [[nodiscard]] Scalar& at(std::size_t r, std::size_t c) noexcept {
    return t_[r * (total_ + 1) + c];
  }
  [[nodiscard]] Scalar at(std::size_t r, std::size_t c) const noexcept {
    return t_[r * (total_ + 1) + c];
  }
  [[nodiscard]] Scalar& rhs(std::size_t r) noexcept { return at(r, total_); }
  [[nodiscard]] Scalar rhs(std::size_t r) const noexcept { return at(r, total_); }
  // Row m_ holds the objective (reduced costs; rhs(m_) = -objective value).
  [[nodiscard]] Scalar& obj(std::size_t c) noexcept { return at(m_, c); }

  /// Installs "minimize sum of artificials" as the objective row.
  void load_phase1_objective() {
    for (std::size_t j = 0; j <= total_; ++j) at(m_, j) = 0.0;
    for (std::size_t j = n_; j < total_; ++j) obj(j) = 1.0;
    // Price out the basic artificial variables.
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j <= total_; ++j) at(m_, j) -= at(i, j);
    }
  }

  /// Installs the structural objective `c` (minimization), pricing out the
  /// current basis; artificial columns become banned from entering.
  void load_phase2_objective(const std::vector<double>& c) {
    for (std::size_t j = 0; j <= total_; ++j) at(m_, j) = 0.0L;
    for (std::size_t j = 0; j < n_; ++j) obj(j) = c[j];
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t bj = basis_[i];
      const Scalar cb = bj < n_ ? Scalar(c[bj]) : 0.0L;
      if (cb == 0.0L) continue;
      for (std::size_t j = 0; j <= total_; ++j) at(m_, j) -= cb * at(i, j);
    }
    for (std::size_t j = n_; j < total_; ++j) banned_[j] = true;
  }

  enum class Step { kOptimal, kUnbounded, kPivoted };

  Step step() {
    // Bland entering rule: smallest-index column with negative reduced cost.
    std::size_t enter = total_;
    for (std::size_t j = 0; j < total_; ++j) {
      if (!banned_[j] && obj(j) < -tol_) {
        enter = j;
        break;
      }
    }
    if (enter == total_) return Step::kOptimal;

    // Ratio test; Bland leaving rule: among EXACT min-ratio rows, smallest
    // basic variable index. The comparison must be exact — a tolerance
    // window here can select a non-minimal ratio and drive basic variables
    // negative, which compounds into infeasible "optima" on badly scaled
    // inputs. Exact ties are what Bland's rule is for.
    std::size_t leave = m_;
    Scalar best_ratio = std::numeric_limits<Scalar>::infinity();
    for (std::size_t i = 0; i < m_; ++i) {
      const Scalar a = at(i, enter);
      if (a > tol_) {
        const Scalar ratio = rhs(i) / a;
        if (ratio < best_ratio ||
            (ratio == best_ratio && (leave == m_ || basis_[i] < basis_[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == m_) return Step::kUnbounded;

    pivot(leave, enter);
    return Step::kPivoted;
  }

  void pivot(std::size_t row, std::size_t col) {
    const Scalar p = at(row, col);
    HYDRA_ASSERT(std::abs(static_cast<double>(p)) > tol_);
    const Scalar inv = 1.0L / p;
    for (std::size_t j = 0; j <= total_; ++j) at(row, j) *= inv;
    at(row, col) = 1.0L;
    for (std::size_t i = 0; i <= m_; ++i) {
      if (i == row) continue;
      const Scalar f = at(i, col);
      if (f == 0.0L) continue;
      for (std::size_t j = 0; j <= total_; ++j) at(i, j) -= f * at(row, j);
      at(i, col) = 0.0L;
    }
    basis_[row] = col;
  }

  /// Drives artificial variables out of the basis after phase 1. A row whose
  /// artificial cannot be replaced on any structural column is linearly
  /// dependent: it is ZEROED OUT, because leaving it live would let phase-2
  /// pivots push the (supposedly zero) artificial positive and silently
  /// violate the original constraint.
  void expel_artificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) continue;
      std::size_t col = total_;
      Scalar best = 0.0L;
      for (std::size_t j = 0; j < n_; ++j) {
        const Scalar mag = std::abs(at(i, j));
        if (mag > tol_ && mag > best) {
          best = mag;
          col = j;
        }
      }
      if (col != total_) {
        pivot(i, col);
      } else {
        for (std::size_t j = 0; j <= total_; ++j) at(i, j) = 0.0L;
        at(i, basis_[i]) = 1.0L;  // keep the artificial basic, pinned at 0
      }
    }
  }

  [[nodiscard]] double objective_value() const noexcept {
    return -static_cast<double>(rhs(m_));
  }

  [[nodiscard]] std::vector<double> extract_solution() const {
    std::vector<double> x(n_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) x[basis_[i]] = static_cast<double>(rhs(i));
    }
    return x;
  }

  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] std::size_t n() const noexcept { return n_; }

 private:
  std::size_t m_;
  std::size_t n_;
  std::size_t total_;
  double tol_;
  std::vector<Scalar> t_;
  std::vector<std::size_t> basis_;
  std::vector<bool> banned_;
};

}  // namespace

LpResult solve_lp(const Matrix& a, const std::vector<double>& b,
                  const std::vector<double>& c, const LpOptions& opts) {
  HYDRA_PROF_SCOPE("geo.lp.simplex");
  HYDRA_ASSERT(a.rows() == b.size());
  HYDRA_ASSERT(a.cols() == c.size());

  // Equilibrate: scale rows then columns to unit max-norm. Convex-hull
  // systems mix coefficient magnitudes freely (a Byzantine outlier at 1e5
  // next to an honest cluster of spread 1e-4), and an unequilibrated dense
  // tableau loses the small geometry entirely — pivots on the huge columns
  // swamp the rounding budget of the tiny rows. Row scaling rescales each
  // equality (sound for = constraints); positive column scaling substitutes
  // x_j = col_scale_j * y_j, preserving y >= 0, and is undone on extraction.
  Matrix as = a;
  std::vector<double> bs = b;
  std::vector<double> row_scale(a.rows(), 1.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double mx = std::abs(bs[i]);
    for (std::size_t j = 0; j < a.cols(); ++j) mx = std::max(mx, std::abs(as.at(i, j)));
    if (mx > 0.0) {
      row_scale[i] = 1.0 / mx;
      for (std::size_t j = 0; j < a.cols(); ++j) as.at(i, j) *= row_scale[i];
      bs[i] *= row_scale[i];
    }
  }
  std::vector<double> col_scale(a.cols(), 1.0);
  std::vector<double> cs = c;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double mx = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) mx = std::max(mx, std::abs(as.at(i, j)));
    if (mx > 0.0) {
      col_scale[j] = 1.0 / mx;
      for (std::size_t i = 0; i < a.rows(); ++i) as.at(i, j) *= col_scale[j];
      cs[j] *= col_scale[j];
    }
  }

  Tableau t(as, bs, opts.tol);
  const std::size_t max_pivots =
      opts.max_pivots != 0 ? opts.max_pivots : 200 * (a.rows() + a.cols()) + 2000;

  // Phase 1: reach a feasible basis.
  t.load_phase1_objective();
  std::size_t pivots = 0;
  while (true) {
    const auto s = t.step();
    if (s == Tableau::Step::kOptimal) break;
    HYDRA_ASSERT_MSG(s != Tableau::Step::kUnbounded,
                     "phase-1 objective is bounded below by construction");
    HYDRA_ASSERT_MSG(++pivots <= max_pivots, "simplex pivot budget exceeded (phase 1)");
  }
  // After equilibration the system is O(1)-scaled, so a fixed threshold on
  // the phase-1 optimum is meaningful.
  if (t.objective_value() > opts.tol * 1e3) {
    return {.status = LpStatus::kInfeasible, .objective = 0.0, .x = {}};
  }
  t.expel_artificials();

  // Phase 2: optimize the real objective (in scaled variables).
  t.load_phase2_objective(cs);
  pivots = 0;
  while (true) {
    const auto s = t.step();
    if (s == Tableau::Step::kOptimal) break;
    if (s == Tableau::Step::kUnbounded) {
      return {.status = LpStatus::kUnbounded, .objective = 0.0, .x = {}};
    }
    HYDRA_ASSERT_MSG(++pivots <= max_pivots, "simplex pivot budget exceeded (phase 2)");
  }

  LpResult result;
  result.status = LpStatus::kOptimal;
  result.x = t.extract_solution();
  // Undo the column substitution x_j = col_scale_j * y_j.
  for (std::size_t j = 0; j < result.x.size(); ++j) result.x[j] *= col_scale[j];
  result.objective = 0.0;
  for (std::size_t j = 0; j < c.size(); ++j) result.objective += c[j] * result.x[j];
  return result;
}

}  // namespace hydra::geo
