#include "geometry/safe_area.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "obs/prof.hpp"
#include "common/combinatorics.hpp"
#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "geometry/hull3d.hpp"

namespace hydra::geo {
namespace {

// Enumerating C(m, t) restrictions is exponential in t; the protocol only
// ever needs t <= ts < m <= n, and experiments keep n modest, but we fail
// loudly rather than hang if a caller goes overboard.
constexpr std::uint64_t kMaxRestrictions = 2'000'000;

std::vector<Vec> subset_values(std::span<const Vec> values,
                               const std::vector<std::size_t>& kept) {
  std::vector<Vec> out;
  out.reserve(kept.size());
  for (std::size_t i : kept) out.push_back(values[i]);
  return out;
}

/// Deterministic direction set: the 2*D axis directions plus `extra` unit
/// vectors drawn from a fixed-seed Gaussian (identical on every party).
std::vector<Vec> make_directions(std::size_t dim, std::size_t extra,
                                 std::uint64_t seed) {
  std::vector<Vec> dirs;
  dirs.reserve(2 * dim + extra);
  for (std::size_t d = 0; d < dim; ++d) {
    Vec plus(dim, 0.0);
    plus[d] = 1.0;
    Vec minus(dim, 0.0);
    minus[d] = -1.0;
    dirs.push_back(std::move(plus));
    dirs.push_back(std::move(minus));
  }
  Rng rng(seed);
  for (std::size_t k = 0; k < extra; ++k) {
    Vec v(dim, 0.0);
    double len = 0.0;
    while (len < 1e-12) {
      for (std::size_t d = 0; d < dim; ++d) v[d] = rng.next_gaussian();
      len = norm(v);
    }
    v *= 1.0 / len;
    dirs.push_back(std::move(v));
  }
  return dirs;
}

std::vector<Vec> dedupe_points(std::vector<Vec> points, double tol) {
  std::sort(points.begin(), points.end());
  std::vector<Vec> out;
  for (auto& p : points) {
    const bool dup = std::any_of(out.begin(), out.end(), [&](const Vec& q) {
      return approx_equal(p, q, tol);
    });
    if (!dup) out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

std::optional<std::pair<Vec, Vec>> max_distance_pair(std::span<const Vec> points) {
  HYDRA_PROF_SCOPE("geo.diameter");
  if (points.empty()) return std::nullopt;
  std::pair<Vec, Vec> best{points[0], points[0]};
  double best_d = -1.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i; j < points.size(); ++j) {
      const Vec& u = std::min(points[i], points[j]);
      const Vec& v = std::max(points[i], points[j]);
      const double d = distance(u, v);
      if (d > best_d ||
          (d == best_d && (u < best.first || (u == best.first && v < best.second)))) {
        best_d = d;
        best = {u, v};
      }
    }
  }
  return best;
}

SafeArea SafeArea::compute(std::span<const Vec> values, std::size_t t,
                           const SafeAreaOptions& opts) {
  HYDRA_PROF_SCOPE("geo.safe_area");
  SafeArea sa;
  sa.lp_tol_ = opts.tol;
  if (values.empty() || t >= values.size()) {
    // restrict_t(M) would contain only sub-multisets of non-positive size:
    // the intersection over an empty family of hulls of nothing is empty.
    return sa;
  }
  const std::size_t m = values.size();
  const std::size_t dim = values[0].dim();
  for ([[maybe_unused]] const auto& v : values) HYDRA_ASSERT(v.dim() == dim);
  sa.dim_ = dim;

  if (dim == 1) {
    // Closed form: removing the t smallest values maximizes the kept
    // minimum, removing the t largest minimizes the kept maximum, so
    // safe_t(M) = [x_(t+1), x_(m-t)] on the sorted values — the classic
    // trimmed interval of unidimensional AA [Dolev et al. 86].
    std::vector<double> xs;
    xs.reserve(m);
    for (const auto& v : values) xs.push_back(v[0]);
    std::sort(xs.begin(), xs.end());
    sa.interval_ = Interval{xs[t], xs[m - 1 - t]};
    sa.empty_ = sa.interval_.empty();
    if (!sa.empty_) {
      sa.extreme_.push_back(Vec{sa.interval_.lo});
      if (sa.interval_.hi != sa.interval_.lo) sa.extreme_.push_back(Vec{sa.interval_.hi});
    }
    return sa;
  }

  // The D >= 2 kernels enumerate C(m, t) restrictions; the D = 1 closed form
  // above does not, so the guard only applies here.
  HYDRA_ASSERT_MSG(binomial(m, t) <= kMaxRestrictions,
                   "safe-area restriction count too large to enumerate");

  if (dim == 2) {
    ConvexPolygon2D region;
    bool first = true;
    bool is_empty = false;
    for_each_combination(m, t, [&](const std::vector<std::size_t>& removed) {
      if (is_empty) return;
      const auto kept = complement_indices(m, removed);
      const auto pts = subset_values(values, kept);
      const auto hull = ConvexPolygon2D::hull_of(pts);
      if (first) {
        region = hull;
        first = false;
      } else {
        region = region.intersect(hull, opts.clip_tol);
      }
      if (region.empty()) is_empty = true;
    });
    sa.polygon_ = std::move(region);
    sa.empty_ = sa.polygon_.empty();
    sa.extreme_ = sa.polygon_.vertices();
    return sa;
  }

  // D >= 3: retain the restriction point sets (membership tests run one LP
  // per hull against them in any case).
  for_each_combination(m, t, [&](const std::vector<std::size_t>& removed) {
    const auto kept = complement_indices(m, removed);
    sa.hulls_.push_back(subset_values(values, kept));
  });

  if (dim == 3) {
    // Exact D = 3 kernel: the safe area is the intersection of all the
    // restriction hulls' facet half-spaces, and its diameter pair is
    // attained at the enumerated vertices. Falls back to the LP kernel when
    // a hull is degenerate (rank < 3), the plane budget is exceeded, or the
    // enumeration finds no vertex while the LP says the intersection is
    // non-empty (tangent lower-dimensional intersections).
    double scale = 1.0;
    for (const auto& v : values) {
      for (std::size_t d = 0; d < dim; ++d) scale = std::max(scale, std::abs(v[d]));
    }
    std::vector<Plane3> planes;
    bool facets_ok = true;
    for (const auto& hull : sa.hulls_) {
      const auto f = hull3d_facets(hull);
      if (!f) {
        facets_ok = false;
        break;
      }
      planes.insert(planes.end(), f->begin(), f->end());
    }
    if (facets_ok) {
      if (auto vertices = halfspace_intersection_vertices(planes, scale)) {
        if (!vertices->empty()) {
          std::sort(vertices->begin(), vertices->end());
          sa.empty_ = false;
          sa.extreme_ = std::move(*vertices);
          sa.exact_ = true;
          return sa;
        }
        // No vertex found: genuinely empty unless the LP disagrees.
        if (!intersection_point(sa.hulls_, opts.tol)) {
          sa.empty_ = true;
          return sa;
        }
      }
    }
  }

  const auto witness = intersection_point(sa.hulls_, opts.tol);
  sa.empty_ = !witness.has_value();
  if (sa.empty_) return sa;

  const auto dirs = make_directions(dim, opts.support_directions, opts.direction_seed);
  std::vector<Vec> extremes;
  extremes.reserve(dirs.size() + 1);
  extremes.push_back(*witness);
  for (const auto& dir : dirs) {
    if (auto p = support_point(sa.hulls_, dir, opts.tol)) {
      extremes.push_back(std::move(*p));
    }
  }
  // Scale-aware dedupe keeps the extreme list small without merging
  // genuinely distinct vertices.
  double scale = 1.0;
  for (const auto& p : extremes) {
    for (std::size_t d = 0; d < dim; ++d) scale = std::max(scale, std::abs(p[d]));
  }
  sa.extreme_ = dedupe_points(std::move(extremes), 1e-9 * scale);
  return sa;
}

bool SafeArea::contains(const Vec& p, double tol) const {
  if (empty_) return false;
  HYDRA_ASSERT(p.dim() == dim_);
  if (dim_ == 1) return interval_.contains(p[0], tol);
  if (dim_ == 2) return polygon_.contains(p, tol);
  return std::all_of(hulls_.begin(), hulls_.end(), [&](const std::vector<Vec>& hull) {
    return in_convex_hull(hull, p, tol);
  });
}

std::optional<std::pair<Vec, Vec>> SafeArea::diameter_pair() const {
  if (empty_) return std::nullopt;
  if (dim_ == 2) return polygon_.diameter_pair();
  return max_distance_pair(extreme_);
}

double SafeArea::diameter() const {
  const auto pair = diameter_pair();
  return pair ? distance(pair->first, pair->second) : 0.0;
}

std::optional<Vec> SafeArea::midpoint_rule() const {
  const auto pair = diameter_pair();
  if (!pair) return std::nullopt;
  return midpoint(pair->first, pair->second);
}

std::optional<Vec> SafeArea::centroid_rule() const {
  if (empty_ || extreme_.empty()) return std::nullopt;
  Vec sum(dim_, 0.0);
  for (const auto& p : extreme_) sum += p;
  sum *= 1.0 / static_cast<double>(extreme_.size());
  return sum;
}

std::optional<Vec> safe_area_midpoint(std::span<const Vec> values, std::size_t t,
                                      const SafeAreaOptions& opts) {
  return SafeArea::compute(values, t, opts).midpoint_rule();
}

}  // namespace hydra::geo
