// Exact convex kernel for D = 3.
//
// Two primitives:
//  * hull3d_facets  — the half-space (H-) representation of the convex hull
//    of a full-dimensional 3-D point set, via quickhull. Degenerate inputs
//    (rank < 3) return nullopt, and the caller falls back to the LP kernel;
//    measure-zero configurations are exactly where an exact facet kernel
//    stops paying for its complexity.
//  * halfspace_intersection_vertices — the vertex (V-) representation of an
//    intersection of half-spaces, by enumerating plane triples. O(P^3) in
//    the deduplicated plane count P, which is why SafeArea only routes
//    through here when P stays small (the protocol's n <= ~10 regime).
//
// Together they make the D = 3 safe area exact: the intersection of the
// restriction hulls is the intersection of all their facet half-spaces, and
// its diameter pair is attained at the enumerated vertices.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geometry/vec.hpp"

namespace hydra::geo {

/// The half-space { x : dot(n, x) <= c } with |n| = 1.
struct Plane3 {
  Vec n;
  double c = 0.0;
};

/// H-representation of conv(points) for full-dimensional 3-D input;
/// nullopt when the points are (numerically) coplanar/collinear/coincident.
/// `tol` is relative to the point-cloud extent.
[[nodiscard]] std::optional<std::vector<Plane3>> hull3d_facets(
    std::span<const Vec> points, double tol = 1e-10);

/// All vertices of the polytope { x : dot(p.n, x) <= p.c for all p }.
/// Near-duplicate planes are merged first; if more than `max_planes` remain
/// the O(P^3) enumeration is refused (nullopt). An EMPTY result means the
/// intersection is empty or has no vertex (an unbounded or tangent
/// lower-dimensional case) — callers cross-check with the LP kernel.
/// `scale` is the coordinate magnitude the tolerances are relative to.
[[nodiscard]] std::optional<std::vector<Vec>> halfspace_intersection_vertices(
    std::span<const Plane3> planes, double scale, std::size_t max_planes = 240,
    double tol = 1e-9);

}  // namespace hydra::geo
