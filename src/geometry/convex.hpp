// LP-backed convex operations valid in any dimension:
//   * membership of a point in the convex hull of a finite point set,
//   * a witness point in the intersection of several hulls,
//   * support points (extreme in a given direction) of such intersections.
//
// These three primitives are exactly what the protocol and its correctness
// oracles need from general-D geometry; everything else (the exact D<=2
// kernels) lives in interval.hpp / polygon.hpp.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geometry/vec.hpp"

namespace hydra::geo {

/// True iff `q` lies in convex(points), within tolerance `tol` (absolute, in
/// coordinate units). Implements the feasibility LP
///   exists lambda >= 0 : sum lambda = 1, sum lambda_i p_i = q.
[[nodiscard]] bool in_convex_hull(std::span<const Vec> points, const Vec& q,
                                  double tol = 1e-7);

/// A point in the intersection of the convex hulls of the given point sets,
/// or nullopt if the intersection is empty. All sets must be non-empty and of
/// equal dimension.
[[nodiscard]] std::optional<Vec> intersection_point(
    std::span<const std::vector<Vec>> hulls, double tol = 1e-9);

/// The point of the hull intersection extreme in `direction` (maximizes
/// direction . x), or nullopt if the intersection is empty.
[[nodiscard]] std::optional<Vec> support_point(std::span<const std::vector<Vec>> hulls,
                                               const Vec& direction, double tol = 1e-9);

}  // namespace hydra::geo
