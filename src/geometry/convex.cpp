#include "geometry/convex.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/assert.hpp"
#include "obs/prof.hpp"
#include "geometry/lp.hpp"

namespace hydra::geo {
namespace {

/// Uniform affine normalization (translate to centroid, scale into the unit
/// box). Convex-hull membership and intersection are affine-invariant, and a
/// POSITIVE UNIFORM scale preserves support directions, so solving the
/// normalized system is exact — while conditioning the simplex tableau to
/// O(1) entries even when inputs mix coordinates of size 1 and 1e6
/// (Byzantine outliers routinely do).
struct Normalization {
  Vec center;
  double scale = 1.0;

  [[nodiscard]] Vec forward(const Vec& p) const {
    Vec out = p;
    out -= center;
    out *= 1.0 / scale;
    return out;
  }

  [[nodiscard]] Vec backward(const Vec& p) const {
    Vec out = p;
    out *= scale;
    out += center;
    return out;
  }
};

Normalization normalize_of(std::span<const std::vector<Vec>> hulls) {
  const std::size_t dim = hulls[0][0].dim();
  Normalization norm;
  norm.center = Vec(dim, 0.0);
  std::size_t count = 0;
  for (const auto& h : hulls) {
    for (const auto& p : h) {
      norm.center += p;
      ++count;
    }
  }
  norm.center *= 1.0 / static_cast<double>(count);
  double extent = 0.0;
  for (const auto& h : hulls) {
    for (const auto& p : h) {
      for (std::size_t d = 0; d < dim; ++d) {
        extent = std::max(extent, std::abs(p[d] - norm.center[d]));
      }
    }
  }
  norm.scale = extent > 0.0 ? extent : 1.0;
  return norm;
}

std::vector<std::vector<Vec>> apply_normalization(
    std::span<const std::vector<Vec>> hulls, const Normalization& norm) {
  std::vector<std::vector<Vec>> out;
  out.reserve(hulls.size());
  for (const auto& h : hulls) {
    std::vector<Vec> nh;
    nh.reserve(h.size());
    for (const auto& p : h) nh.push_back(norm.forward(p));
    out.push_back(std::move(nh));
  }
  return out;
}

/// Builds the constraint system for "x lies in every hull simultaneously":
/// one convex-combination weight block per hull, coupled coordinate-wise to
/// the first block. Returns the column offset of each block.
struct HullSystem {
  Matrix a;
  std::vector<double> b;
  std::vector<std::size_t> block_offset;
  std::size_t num_vars = 0;
  std::size_t dim = 0;
};

HullSystem build_system(std::span<const std::vector<Vec>> hulls) {
  HYDRA_ASSERT(!hulls.empty());
  const std::size_t dim = hulls[0][0].dim();
  std::size_t num_vars = 0;
  std::vector<std::size_t> offset;
  offset.reserve(hulls.size());
  for (const auto& h : hulls) {
    HYDRA_ASSERT(!h.empty());
    offset.push_back(num_vars);
    num_vars += h.size();
  }

  // Rows: one normalization row per hull, plus D coupling rows per hull
  // beyond the first.
  const std::size_t rows = hulls.size() + dim * (hulls.size() - 1);
  Matrix a(rows, num_vars);
  std::vector<double> b(rows, 0.0);

  for (std::size_t j = 0; j < hulls.size(); ++j) {
    for (std::size_t i = 0; i < hulls[j].size(); ++i) a.at(j, offset[j] + i) = 1.0;
    b[j] = 1.0;
  }
  std::size_t row = hulls.size();
  for (std::size_t j = 1; j < hulls.size(); ++j) {
    for (std::size_t d = 0; d < dim; ++d, ++row) {
      for (std::size_t i = 0; i < hulls[j].size(); ++i) {
        a.at(row, offset[j] + i) = hulls[j][i][d];
      }
      for (std::size_t i = 0; i < hulls[0].size(); ++i) {
        a.at(row, offset[0] + i) = -hulls[0][i][d];
      }
      b[row] = 0.0;
    }
  }

  return {.a = std::move(a),
          .b = std::move(b),
          .block_offset = std::move(offset),
          .num_vars = num_vars,
          .dim = dim};
}

Vec recover_point(const HullSystem& sys, std::span<const std::vector<Vec>> hulls,
                  const std::vector<double>& x) {
  Vec p(sys.dim, 0.0);
  for (std::size_t i = 0; i < hulls[0].size(); ++i) {
    const double w = x[sys.block_offset[0] + i];
    if (w == 0.0) continue;
    for (std::size_t d = 0; d < sys.dim; ++d) p[d] += w * hulls[0][i][d];
  }
  return p;
}

}  // namespace

bool in_convex_hull(std::span<const Vec> points, const Vec& q, double tol) {
  HYDRA_PROF_SCOPE("geo.lp.membership");
  HYDRA_ASSERT(!points.empty());
  const std::size_t dim = q.dim();
  const std::size_t m = points.size();

  // Normalize including q so the tableau entries are O(1); tolerance `tol`
  // is interpreted in original coordinate units, hence divided by the scale.
  std::vector<std::vector<Vec>> as_hull{{points.begin(), points.end()}};
  as_hull[0].push_back(q);
  const auto norm = normalize_of(as_hull);
  const Vec nq = norm.forward(q);

  Matrix a(dim + 1, m);
  std::vector<double> b(dim + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    HYDRA_ASSERT(points[i].dim() == dim);
    const Vec np = norm.forward(points[i]);
    a.at(0, i) = 1.0;
    for (std::size_t d = 0; d < dim; ++d) a.at(d + 1, i) = np[d];
  }
  b[0] = 1.0;
  for (std::size_t d = 0; d < dim; ++d) b[d + 1] = nq[d];

  const double scaled_tol = std::max(1e-12, tol / norm.scale);
  const std::vector<double> zero_cost(m, 0.0);
  const auto result =
      solve_lp(a, b, zero_cost, {.tol = scaled_tol * 1e-2, .max_pivots = 0});
  return result.status == LpStatus::kOptimal;
}

std::optional<Vec> intersection_point(std::span<const std::vector<Vec>> hulls,
                                      double tol) {
  HYDRA_PROF_SCOPE("geo.lp.witness");
  const auto norm = normalize_of(hulls);
  const auto nhulls = apply_normalization(hulls, norm);
  const auto sys = build_system(nhulls);
  const std::vector<double> zero_cost(sys.num_vars, 0.0);
  const auto result = solve_lp(sys.a, sys.b, zero_cost, {.tol = tol, .max_pivots = 0});
  if (result.status != LpStatus::kOptimal) return std::nullopt;
  return norm.backward(recover_point(sys, nhulls, result.x));
}

std::optional<Vec> support_point(std::span<const std::vector<Vec>> hulls,
                                 const Vec& direction, double tol) {
  HYDRA_PROF_SCOPE("geo.lp.support");
  // A positive uniform scale + translation preserves which point is extreme
  // in `direction`, so the normalized argmax maps back exactly.
  const auto norm = normalize_of(hulls);
  const auto nhulls = apply_normalization(hulls, norm);
  const auto sys = build_system(nhulls);
  HYDRA_ASSERT(direction.dim() == sys.dim);

  // maximize direction . x  ==  minimize  -(direction . sum lambda^0 p^0).
  std::vector<double> cost(sys.num_vars, 0.0);
  for (std::size_t i = 0; i < nhulls[0].size(); ++i) {
    cost[sys.block_offset[0] + i] = -dot(direction, nhulls[0][i]);
  }
  const auto result = solve_lp(sys.a, sys.b, cost, {.tol = tol, .max_pivots = 0});
  if (result.status != LpStatus::kOptimal) return std::nullopt;
  return norm.backward(recover_point(sys, nhulls, result.x));
}

}  // namespace hydra::geo
