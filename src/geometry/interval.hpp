// Exact convex kernel for D = 1: a convex subset of R is a closed interval.
#pragma once

#include <algorithm>
#include <limits>
#include <span>

namespace hydra::geo {

/// Closed interval [lo, hi]; empty when lo > hi.
struct Interval {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  [[nodiscard]] static Interval hull_of(std::span<const double> xs) noexcept {
    Interval r;
    for (double x : xs) {
      r.lo = std::min(r.lo, x);
      r.hi = std::max(r.hi, x);
    }
    return r;
  }

  [[nodiscard]] bool empty() const noexcept { return lo > hi; }

  [[nodiscard]] Interval intersect(const Interval& o) const noexcept {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }

  [[nodiscard]] bool contains(double x, double tol = 0.0) const noexcept {
    return !empty() && x >= lo - tol && x <= hi + tol;
  }

  [[nodiscard]] double diameter() const noexcept { return empty() ? 0.0 : hi - lo; }

  [[nodiscard]] double midpoint() const noexcept { return (lo + hi) / 2.0; }
};

}  // namespace hydra::geo
