// Dense two-phase simplex solver for linear programs in standard form:
//
//     minimize    c^T x
//     subject to  A x = b,  x >= 0.
//
// This is the general-dimension workhorse behind convex-hull membership
// tests, safe-area feasibility (Lemma 5.5), and support-point computation
// for D >= 3 (DESIGN.md section 5.3). Bland's anti-cycling rule keeps the
// solver terminating on the degenerate geometry that approximate-agreement
// instances routinely produce (many coincident points).
#pragma once

#include <cstddef>
#include <vector>

namespace hydra::geo {

/// Row-major dense matrix, sized once at construction.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;       ///< c^T x at the optimum (valid when kOptimal)
  std::vector<double> x;        ///< primal solution (valid when kOptimal)
};

struct LpOptions {
  double tol = 1e-9;            ///< pivot / feasibility tolerance
  std::size_t max_pivots = 0;   ///< 0 = automatic (scales with problem size)
};

/// Solves min c^T x s.t. Ax = b, x >= 0.
///
/// Rows with negative b are sign-flipped internally; callers need not
/// normalize. Infeasibility is reported when the phase-1 optimum exceeds the
/// tolerance.
[[nodiscard]] LpResult solve_lp(const Matrix& a, const std::vector<double>& b,
                                const std::vector<double>& c, const LpOptions& opts = {});

}  // namespace hydra::geo
