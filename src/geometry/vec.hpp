// Points/vectors in R^D with value semantics.
//
// Dimension is a runtime property (the protocol is parameterized by D), so a
// Vec owns a small heap vector of coordinates. All pairwise operations assert
// matching dimensions.
#pragma once

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace hydra::geo {

class Vec {
 public:
  Vec() = default;

  explicit Vec(std::size_t dim, double fill = 0.0) : coords_(dim, fill) {}

  Vec(std::initializer_list<double> values) : coords_(values) {}

  explicit Vec(std::vector<double> values) : coords_(std::move(values)) {}

  [[nodiscard]] std::size_t dim() const noexcept { return coords_.size(); }

  [[nodiscard]] double operator[](std::size_t i) const noexcept { return coords_[i]; }
  [[nodiscard]] double& operator[](std::size_t i) noexcept { return coords_[i]; }

  [[nodiscard]] std::span<const double> coords() const noexcept { return coords_; }
  [[nodiscard]] const std::vector<double>& data() const noexcept { return coords_; }

  Vec& operator+=(const Vec& rhs) {
    HYDRA_ASSERT(dim() == rhs.dim());
    for (std::size_t i = 0; i < coords_.size(); ++i) coords_[i] += rhs.coords_[i];
    return *this;
  }

  Vec& operator-=(const Vec& rhs) {
    HYDRA_ASSERT(dim() == rhs.dim());
    for (std::size_t i = 0; i < coords_.size(); ++i) coords_[i] -= rhs.coords_[i];
    return *this;
  }

  Vec& operator*=(double s) noexcept {
    for (double& c : coords_) c *= s;
    return *this;
  }

  [[nodiscard]] friend Vec operator+(Vec lhs, const Vec& rhs) { return lhs += rhs; }
  [[nodiscard]] friend Vec operator-(Vec lhs, const Vec& rhs) { return lhs -= rhs; }
  [[nodiscard]] friend Vec operator*(Vec lhs, double s) noexcept { return lhs *= s; }
  [[nodiscard]] friend Vec operator*(double s, Vec rhs) noexcept { return rhs *= s; }

  [[nodiscard]] friend bool operator==(const Vec& a, const Vec& b) noexcept {
    return a.coords_ == b.coords_;
  }

  /// Lexicographic order; the paper uses "R^D is totally ordered" to pick the
  /// diameter pair deterministically.
  [[nodiscard]] friend std::strong_ordering operator<=>(const Vec& a, const Vec& b) noexcept {
    const std::size_t n = std::min(a.dim(), b.dim());
    for (std::size_t i = 0; i < n; ++i) {
      if (a[i] < b[i]) return std::strong_ordering::less;
      if (a[i] > b[i]) return std::strong_ordering::greater;
    }
    if (a.dim() < b.dim()) return std::strong_ordering::less;
    if (a.dim() > b.dim()) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

 private:
  std::vector<double> coords_;
};

/// Dot product.
[[nodiscard]] inline double dot(const Vec& a, const Vec& b) {
  HYDRA_ASSERT(a.dim() == b.dim());
  double s = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) s += a[i] * b[i];
  return s;
}

/// Euclidean distance delta(v, v') of Definition 2.1.
[[nodiscard]] inline double distance(const Vec& a, const Vec& b) {
  HYDRA_ASSERT(a.dim() == b.dim());
  double s = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

[[nodiscard]] inline double norm(const Vec& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) s += a[i] * a[i];
  return std::sqrt(s);
}

/// Midpoint (a+b)/2 — the update rule of [Függer-Nowak 2018] used by ΠAA-it.
[[nodiscard]] inline Vec midpoint(const Vec& a, const Vec& b) {
  Vec m = a;
  m += b;
  m *= 0.5;
  return m;
}

/// Diameter delta_max(V): maximum pairwise distance. Empty or singleton sets
/// have diameter 0.
[[nodiscard]] inline double diameter(std::span<const Vec> points) {
  double best = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      best = std::max(best, distance(points[i], points[j]));
    }
  }
  return best;
}

/// Approximate equality within an absolute tolerance in every coordinate.
[[nodiscard]] inline bool approx_equal(const Vec& a, const Vec& b, double tol) {
  if (a.dim() != b.dim()) return false;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

[[nodiscard]] std::string to_string(const Vec& v);

}  // namespace hydra::geo
