#include "geometry/hull3d.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

#include "common/assert.hpp"
#include "obs/prof.hpp"

namespace hydra::geo {
namespace {

struct V3 {
  double x = 0.0, y = 0.0, z = 0.0;

  V3() = default;
  V3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}
  explicit V3(const Vec& v) : x(v[0]), y(v[1]), z(v[2]) {}

  V3 operator-(const V3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  V3 operator+(const V3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  V3 operator*(double s) const { return {x * s, y * s, z * s}; }
};

double dot3(const V3& a, const V3& b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
V3 cross3(const V3& a, const V3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
double norm3(const V3& a) { return std::sqrt(dot3(a, a)); }

struct Face {
  std::array<std::size_t, 3> v{};  // vertex indices, CCW seen from outside
  V3 n;                            // unit outward normal
  double c = 0.0;                  // dot(n, x) <= c inside
  bool alive = true;
  std::vector<std::size_t> outside;  // conflict list
};

/// Signed distance of point i above face f.
double height(const Face& f, const V3& p) { return dot3(f.n, p) - f.c; }

Face make_face(std::size_t a, std::size_t b, std::size_t c,
               const std::vector<V3>& pts, const V3& interior) {
  Face f;
  f.v = {a, b, c};
  V3 n = cross3(pts[b] - pts[a], pts[c] - pts[a]);
  const double len = norm3(n);
  HYDRA_ASSERT(len > 0.0);
  n = n * (1.0 / len);
  double off = dot3(n, pts[a]);
  if (dot3(n, interior) > off) {  // flip outward
    n = n * -1.0;
    off = -off;
    std::swap(f.v[1], f.v[2]);
  }
  f.n = n;
  f.c = off;
  return f;
}

}  // namespace

std::optional<std::vector<Plane3>> hull3d_facets(std::span<const Vec> points,
                                                 double tol) {
  HYDRA_PROF_SCOPE("geo.hull3d.facets");
  if (points.size() < 4) return std::nullopt;
  for ([[maybe_unused]] const auto& p : points) HYDRA_ASSERT(p.dim() == 3);

  // Normalize (translate to centroid, scale to unit box) so every epsilon
  // below is relative.
  Vec center(3, 0.0);
  for (const auto& p : points) center += p;
  center *= 1.0 / static_cast<double>(points.size());
  double extent = 0.0;
  for (const auto& p : points) {
    for (int d = 0; d < 3; ++d) extent = std::max(extent, std::abs(p[d] - center[d]));
  }
  if (extent <= 0.0) return std::nullopt;  // all points coincide

  std::vector<V3> pts;
  pts.reserve(points.size());
  for (const auto& p : points) {
    pts.emplace_back((p[0] - center[0]) / extent, (p[1] - center[1]) / extent,
                     (p[2] - center[2]) / extent);
  }
  const double eps = std::max(tol, 1e-12);

  // Initial simplex: farthest pair among axis extremes, then farthest from
  // the line, then farthest from the plane.
  std::size_t i0 = 0;
  std::size_t i1 = 0;
  double best = -1.0;
  for (int axis = 0; axis < 3; ++axis) {
    std::size_t lo = 0;
    std::size_t hi = 0;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const double v = axis == 0 ? pts[i].x : axis == 1 ? pts[i].y : pts[i].z;
      const double vlo = axis == 0 ? pts[lo].x : axis == 1 ? pts[lo].y : pts[lo].z;
      const double vhi = axis == 0 ? pts[hi].x : axis == 1 ? pts[hi].y : pts[hi].z;
      if (v < vlo) lo = i;
      if (v > vhi) hi = i;
    }
    const double d = norm3(pts[hi] - pts[lo]);
    if (d > best) {
      best = d;
      i0 = lo;
      i1 = hi;
    }
  }
  if (best < eps) return std::nullopt;

  const V3 dir = (pts[i1] - pts[i0]) * (1.0 / best);
  std::size_t i2 = i0;
  best = -1.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const V3 w = pts[i] - pts[i0];
    const V3 perp = w - dir * dot3(w, dir);
    const double d = norm3(perp);
    if (d > best) {
      best = d;
      i2 = i;
    }
  }
  if (best < eps) return std::nullopt;  // collinear

  V3 plane_n = cross3(pts[i1] - pts[i0], pts[i2] - pts[i0]);
  plane_n = plane_n * (1.0 / norm3(plane_n));
  std::size_t i3 = i0;
  best = -1.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double d = std::abs(dot3(plane_n, pts[i] - pts[i0]));
    if (d > best) {
      best = d;
      i3 = i;
    }
  }
  if (best < eps) return std::nullopt;  // coplanar

  const V3 interior =
      (pts[i0] + pts[i1] + pts[i2] + pts[i3]) * 0.25;

  std::vector<Face> faces;
  faces.push_back(make_face(i0, i1, i2, pts, interior));
  faces.push_back(make_face(i0, i1, i3, pts, interior));
  faces.push_back(make_face(i0, i2, i3, pts, interior));
  faces.push_back(make_face(i1, i2, i3, pts, interior));

  // Conflict lists.
  const double lift = 4.0 * eps;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (auto& f : faces) {
      if (height(f, pts[i]) > lift) {
        f.outside.push_back(i);
        break;
      }
    }
  }

  // Quickhull main loop. Faces are scanned linearly for visibility — fine
  // at protocol scales (tens of points).
  const std::size_t max_rounds = 4 * pts.size() + 64;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    // Find a face with a non-empty conflict list.
    std::size_t fi = faces.size();
    for (std::size_t i = 0; i < faces.size(); ++i) {
      if (faces[i].alive && !faces[i].outside.empty()) {
        fi = i;
        break;
      }
    }
    if (fi == faces.size()) break;  // done

    // Farthest conflict point of that face.
    const auto& conflict = faces[fi].outside;
    std::size_t apex = conflict[0];
    double h_best = -1.0;
    for (const auto i : conflict) {
      const double h = height(faces[fi], pts[i]);
      if (h > h_best) {
        h_best = h;
        apex = i;
      }
    }
    const V3 p = pts[apex];

    // Visible faces and their orphaned conflict points.
    std::vector<std::size_t> visible;
    std::vector<std::size_t> orphans;
    for (std::size_t i = 0; i < faces.size(); ++i) {
      if (faces[i].alive && height(faces[i], p) > lift) {
        visible.push_back(i);
        orphans.insert(orphans.end(), faces[i].outside.begin(),
                       faces[i].outside.end());
        faces[i].outside.clear();
      }
    }
    HYDRA_ASSERT(!visible.empty());

    // Horizon: directed edges of visible faces whose reverse edge is not in
    // a visible face.
    std::map<std::pair<std::size_t, std::size_t>, int> edge_count;
    for (const auto i : visible) {
      const auto& v = faces[i].v;
      for (int e = 0; e < 3; ++e) {
        edge_count[{v[e], v[(e + 1) % 3]}] += 1;
      }
    }
    std::vector<std::pair<std::size_t, std::size_t>> horizon;
    for (const auto& [edge, count] : edge_count) {
      if (edge_count.find({edge.second, edge.first}) == edge_count.end()) {
        horizon.push_back(edge);
      }
    }
    for (const auto i : visible) faces[i].alive = false;

    // New cone of faces from the apex over the horizon.
    std::vector<std::size_t> fresh;
    for (const auto& [a, b] : horizon) {
      // Skip degenerate slivers (apex collinear with the edge).
      const V3 cr = cross3(pts[b] - pts[a], p - pts[a]);
      if (norm3(cr) < eps * eps) continue;
      faces.push_back(make_face(a, b, apex, pts, interior));
      fresh.push_back(faces.size() - 1);
    }

    // Reassign orphans.
    for (const auto i : orphans) {
      if (i == apex) continue;
      for (const auto f : fresh) {
        if (height(faces[f], pts[i]) > lift) {
          faces[f].outside.push_back(i);
          break;
        }
      }
    }
  }

  // Any leftover conflict points mean the round budget was hit: bail to the
  // LP kernel rather than return a wrong hull.
  for (const auto& f : faces) {
    if (f.alive && !f.outside.empty()) return std::nullopt;
  }

  // Map planes back to original coordinates:
  // dot(n, (x - center)/extent) <= c  ==>  dot(n, x) <= c*extent + dot(n, center).
  std::vector<Plane3> planes;
  for (const auto& f : faces) {
    if (!f.alive) continue;
    Vec n{f.n.x, f.n.y, f.n.z};
    const double c = f.c * extent + f.n.x * center[0] + f.n.y * center[1] +
                     f.n.z * center[2];
    planes.push_back(Plane3{std::move(n), c});
  }
  return planes;
}

std::optional<std::vector<Vec>> halfspace_intersection_vertices(
    std::span<const Plane3> planes, double scale, std::size_t max_planes,
    double tol) {
  HYDRA_PROF_SCOPE("geo.hull3d.vertices");
  // Deduplicate near-identical planes (restriction hulls share most facets).
  std::vector<Plane3> unique;
  for (const auto& p : planes) {
    const bool dup = std::any_of(unique.begin(), unique.end(), [&](const Plane3& q) {
      return std::abs(p.n[0] - q.n[0]) < 1e-9 && std::abs(p.n[1] - q.n[1]) < 1e-9 &&
             std::abs(p.n[2] - q.n[2]) < 1e-9 && std::abs(p.c - q.c) < 1e-9 * scale;
    });
    if (!dup) unique.push_back(p);
  }
  if (unique.size() > max_planes) return std::nullopt;

  std::vector<Vec> vertices;
  const std::size_t m = unique.size();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      for (std::size_t k = j + 1; k < m; ++k) {
        const auto& a = unique[i].n;
        const auto& b = unique[j].n;
        const auto& c = unique[k].n;
        // Cramer's rule on the 3x3 system n_i . x = c_i.
        const double det = a[0] * (b[1] * c[2] - b[2] * c[1]) -
                           a[1] * (b[0] * c[2] - b[2] * c[0]) +
                           a[2] * (b[0] * c[1] - b[1] * c[0]);
        // Unit normals make det scale-free; near-degenerate triples produce
        // ill-conditioned vertices (error ~ eps_machine * scale / det), so
        // they are skipped — a true vertex they would have defined is also
        // defined by some better-conditioned triple or deduped away.
        if (std::abs(det) < 1e-6) continue;
        const double d0 = unique[i].c;
        const double d1 = unique[j].c;
        const double d2 = unique[k].c;
        const double x = (d0 * (b[1] * c[2] - b[2] * c[1]) -
                          a[1] * (d1 * c[2] - b[2] * d2) +
                          a[2] * (d1 * c[1] - b[1] * d2)) /
                         det;
        const double y = (a[0] * (d1 * c[2] - b[2] * d2) -
                          d0 * (b[0] * c[2] - b[2] * c[0]) +
                          a[2] * (b[0] * d2 - d1 * c[0])) /
                         det;
        const double z = (a[0] * (b[1] * d2 - d1 * c[1]) -
                          a[1] * (b[0] * d2 - d1 * c[0]) +
                          d0 * (b[0] * c[1] - b[1] * c[0])) /
                         det;
        const Vec v{x, y, z};
        // Feasibility tolerance relative to THIS vertex's magnitude: a
        // global scale (dominated by a distant Byzantine outlier) would
        // admit spurious vertices far outside the small honest geometry.
        const double local =
            std::max({1.0, std::abs(x), std::abs(y), std::abs(z)});
        const double feas_eps = tol * 1e2 * local;
        bool inside = true;
        for (const auto& p : unique) {
          if (dot(p.n, v) > p.c + feas_eps) {
            inside = false;
            break;
          }
        }
        if (!inside) continue;
        const bool dup = std::any_of(vertices.begin(), vertices.end(),
                                     [&](const Vec& w) {
                                       return approx_equal(v, w, 1e-7 * scale);
                                     });
        if (!dup) vertices.push_back(v);
      }
    }
  }
  return vertices;
}

}  // namespace hydra::geo
