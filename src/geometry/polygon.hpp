// Exact convex kernel for D = 2.
//
// A ConvexPolygon2D is a (possibly degenerate) convex region given by its
// vertex list in counter-clockwise order:
//   0 vertices -> empty set, 1 -> a point, 2 -> a segment, >=3 -> a polygon.
// Degenerate regions matter: the paper's Figure 2 safe area is a single
// point, and safe areas of collinear honest values are segments.
//
// Intersection is computed by clipping against the half-plane representation
// of the other region (Sutherland-Hodgman restricted to convex subjects).
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "geometry/vec.hpp"

namespace hydra::geo {

/// The half-plane { x : nx*x + ny*y <= c }.
struct HalfPlane {
  double nx = 0.0;
  double ny = 0.0;
  double c = 0.0;
};

class ConvexPolygon2D {
 public:
  /// Empty region.
  ConvexPolygon2D() = default;

  /// Convex hull of arbitrary 2-D points (Andrew's monotone chain).
  /// Collinear interior points are dropped; coincident points collapse.
  /// `tol` is relative to the local operand magnitudes of each orientation
  /// test; the default is ~100 ulps above the cross-product rounding error.
  [[nodiscard]] static ConvexPolygon2D hull_of(std::span<const Vec> points,
                                               double tol = 1e-13);

  [[nodiscard]] bool empty() const noexcept { return vertices_.empty(); }
  [[nodiscard]] const std::vector<Vec>& vertices() const noexcept { return vertices_; }

  /// Half-plane representation whose intersection equals this region
  /// (degenerate regions produce cap half-planes). Empty regions assert.
  [[nodiscard]] std::vector<HalfPlane> halfplanes() const;

  /// Clips this region by a half-plane. `tol` is relative to the region's
  /// coordinate magnitude.
  [[nodiscard]] ConvexPolygon2D clip(const HalfPlane& hp, double tol = 1e-12) const;

  /// Intersection of two convex regions (exact up to tolerance).
  [[nodiscard]] ConvexPolygon2D intersect(const ConvexPolygon2D& other,
                                          double tol = 1e-12) const;

  [[nodiscard]] bool contains(const Vec& p, double tol = 1e-7) const;

  /// The deterministic diameter-realizing pair: among all vertex pairs at
  /// maximum distance, the lexicographically smallest (a, b) with a <= b.
  /// nullopt for the empty region.
  [[nodiscard]] std::optional<std::pair<Vec, Vec>> diameter_pair() const;

  [[nodiscard]] double diameter() const;

 private:
  explicit ConvexPolygon2D(std::vector<Vec> vertices) : vertices_(std::move(vertices)) {}

  std::vector<Vec> vertices_;  // CCW; deduped; degenerate sizes allowed
};

}  // namespace hydra::geo
