#include "geometry/vec.hpp"

#include <cstdio>

namespace hydra::geo {

std::string to_string(const Vec& v) {
  std::string out = "(";
  char buf[64];
  for (std::size_t i = 0; i < v.dim(); ++i) {
    std::snprintf(buf, sizeof buf, "%.6g", v[i]);
    if (i != 0) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace hydra::geo
