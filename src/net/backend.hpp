// Pluggable execution backends.
//
// A Backend runs a set of sim::IParty protocol objects under one network
// model and returns backend-neutral statistics. The builtins registered
// here: "sim" (sim::SimBackend, the deterministic discrete-event simulator),
// "threads" (transport::ThreadBackend, one OS thread per party under
// wall-clock time), and "tcp"/"uds" (transport::SocketBackend, parties
// exchanging length-prefixed frames over real sockets, in-process or across
// process boundaries). harness::execute() selects one by name through a
// single code path, so further backends are an additive change: implement
// Backend, call register_backend() at startup.
//
// Ownership contract: run() receives the parties by reference and MAY move
// them into backend-internal storage (the simulator does; the thread
// transport borrows them in place). Either way the party objects themselves
// never move and stay alive until the Backend is destroyed, so callers can
// capture raw observer pointers before run() and inspect protocol state
// afterwards.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "net/wire_stats.hpp"
#include "sim/delay.hpp"
#include "sim/env.hpp"

namespace hydra::faults {
class FaultInjector;
}

namespace hydra::net {

struct BackendConfig {
  std::size_t n = 4;
  Duration delta = 1000;  ///< the public bound Delta, in ticks
  std::uint64_t seed = 1;
  // Deterministic-simulator limits (ignored by wall-clock backends).
  Time max_time = 500'000'000;
  std::uint64_t max_events = 50'000'000;
  // Wall-clock pacing (ignored by the simulator).
  double us_per_tick = 1.0;
  std::int64_t timeout_ms = 30'000;
  // Socket backends ("tcp"/"uds") only. `endpoints` lists one address per
  // party ("host:port" for tcp, a filesystem path for uds); empty means the
  // backend self-assigns loopback/tmpdir endpoints, which requires every
  // party to be local. `local_parties` names the parties hosted by THIS
  // process (empty = all of them — the single-process `--backend=tcp` mode);
  // remote parties are reached through their endpoints (hydra serve/join).
  std::vector<std::string> endpoints;
  std::vector<PartyId> local_parties;
  /// Multi-instance serving (src/serve/): sockets reject inbound frames
  /// whose tag carries an instance id >= this bound (common/types.hpp tag
  /// layout) on the hardened decode path. 0 = single-instance mode, no
  /// instance validation. Ignored by sim/threads, which never deserialize.
  std::uint32_t instance_tag_limit = 0;
};

/// Backend-neutral run result: shared wire accounting plus the union of the
/// per-backend diagnostics (each backend fills what it can measure).
struct BackendStats {
  WireStats wire;
  Time end_time = 0;         ///< virtual end time in ticks
  std::uint64_t events = 0;  ///< simulator event count (0 on threads)
  bool hit_limit = false;    ///< stopped by max_time/max_events (sim only)
  /// Stopped early because a strict-mode invariant monitor requested it.
  bool monitor_aborted = false;
  bool timed_out = false;     ///< wall-clock timeout elapsed (threads only)
  std::int64_t wall_ms = 0;   ///< wall-clock duration (threads only)
  /// Per-party watchdog snapshot (wall-clock backends; empty on sim).
  std::vector<PartyProgress> progress;
  /// Names WHO stalled when timed_out (wall-clock backends).
  std::string timeout_detail;
  /// Socket backends only: received frames rejected by the per-connection
  /// authenticated-sender check (header `from` != the id bound at handshake)
  /// and frames dropped by the hardened decode path (framing/parse errors).
  std::uint64_t frames_auth_dropped = 0;
  std::uint64_t frames_decode_dropped = 0;
  /// Socket backends only: connection/link health counters and latency/size
  /// histograms (all-zero — health.any() false — on sim/threads).
  TransportHealth health;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// True for every party that reached its protocol's finishing condition.
  /// Wall-clock backends need this to decide shutdown (they cannot detect
  /// quiescence); the simulator ignores it and runs to queue drain.
  using FinishedFn = std::function<bool(const sim::IParty&, PartyId)>;

  /// Runs the parties to completion (see the ownership contract above).
  /// `finished` is evaluated on the party's own execution context after
  /// every handled event, so it may touch party state safely.
  virtual BackendStats run(std::vector<std::unique_ptr<sim::IParty>>& parties,
                           const FinishedFn& finished) = 0;

  /// Installs a fault injector (src/faults/) consulted on every message.
  /// Borrowed: must outlive run(). nullptr keeps the fault-free fast path.
  virtual void set_fault_injector(faults::FaultInjector* injector) = 0;
};

using BackendFactory = std::function<std::unique_ptr<Backend>(
    const BackendConfig&, std::unique_ptr<sim::DelayModel>)>;

/// Registers (or replaces) a backend under `name`. Thread-safe. Builtin
/// backends register via harness::ensure_backends_registered() — explicit
/// registration, because static-initializer tricks get dropped by the linker
/// when the adapter object files live in static libraries.
void register_backend(std::string name, BackendFactory factory);

/// Builds a registered backend; nullptr for unknown names. Thread-safe.
[[nodiscard]] std::unique_ptr<Backend> make_backend(
    std::string_view name, const BackendConfig& config,
    std::unique_ptr<sim::DelayModel> delay_model);

/// Registered backend names, in registration order. Thread-safe.
[[nodiscard]] std::vector<std::string> backend_names();

}  // namespace hydra::net
