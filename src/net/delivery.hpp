// Receive-side counterpart of net::EgressPipeline.
//
// DeliveryGate owns what happens when a queued message reaches its party:
// the `deliver` trace event (carrying the originating send id as its causal
// `cause`) and the monitor dispatch bracket, so invariant violations raised
// inside the handler are attributed to the message that triggered them.
// Both backends dispatch through here — the simulator from its traced
// closure, the thread transport from each party's worker loop (MonitorHost
// keeps the in-dispatch cause per-thread, so concurrent workers attribute
// independently).
#pragma once

#include <cstdint>
#include <utility>

#include "common/types.hpp"
#include "obs/monitor.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "sim/message.hpp"

namespace hydra::net {

struct DeliveryGate {
  /// Emits the deliver trace event, then runs `handler` inside a
  /// begin_dispatch/end_dispatch bracket when monitors are active. Callers
  /// on the hot path should guard the call with obs::enabled() themselves
  /// when they have cheaper disabled-path dispatch available.
  template <typename Handler>
  static void dispatch(Time now, PartyId from, PartyId to,
                       const sim::Message& msg, std::uint64_t cause,
                       Handler&& handler) {
    // Callers reach dispatch only on enabled paths, so the scope never
    // burdens the lean branches the overhead bench gates. Handler phases
    // (aa.*) nest under it.
    HYDRA_PROF_SCOPE("net.deliver");
    if (auto* tr = obs::trace()) {
      tr->message_deliver(now, from, to, msg.key.tag, msg.key.a, msg.key.b,
                          msg.kind, msg.wire_size(), cause);
    }
    if (auto* mon = obs::monitors()) {
      // Bracket the handler so monitor checks fired inside it can name this
      // message as their cause.
      mon->begin_dispatch(cause);
      std::forward<Handler>(handler)();
      mon->end_dispatch();
      return;
    }
    std::forward<Handler>(handler)();
  }
};

}  // namespace hydra::net
