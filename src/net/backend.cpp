#include "net/backend.hpp"

#include <mutex>
#include <utility>

namespace hydra::net {
namespace {

struct RegistryState {
  std::mutex mutex;
  // Registration-order vector (not a map): `hydra list` shows backends in
  // the order they registered, builtin first.
  std::vector<std::pair<std::string, BackendFactory>> entries;
};

RegistryState& state() {
  static RegistryState s;
  return s;
}

}  // namespace

void register_backend(std::string name, BackendFactory factory) {
  auto& s = state();
  const std::lock_guard lock(s.mutex);
  for (auto& [existing, slot] : s.entries) {
    if (existing == name) {
      slot = std::move(factory);
      return;
    }
  }
  s.entries.emplace_back(std::move(name), std::move(factory));
}

std::unique_ptr<Backend> make_backend(std::string_view name,
                                      const BackendConfig& config,
                                      std::unique_ptr<sim::DelayModel> delay_model) {
  BackendFactory factory;
  {
    auto& s = state();
    const std::lock_guard lock(s.mutex);
    for (const auto& [existing, slot] : s.entries) {
      if (existing == name) {
        factory = slot;
        break;
      }
    }
  }
  if (!factory) return nullptr;
  return factory(config, std::move(delay_model));
}

std::vector<std::string> backend_names() {
  auto& s = state();
  const std::lock_guard lock(s.mutex);
  std::vector<std::string> names;
  names.reserve(s.entries.size());
  for (const auto& [name, factory] : s.entries) names.push_back(name);
  return names;
}

}  // namespace hydra::net
