// Backend-neutral egress pipeline: the single send-side code path shared by
// the discrete-event simulator and the real-thread transport.
//
// One message posted by a party flows through exactly one sequence of
// decisions regardless of backend:
//
//   1. wire accounting     self-deliveries are local computation — exempt
//                          from every message/byte count (Thm 5.19 bounds
//                          wire traffic, and the accounting is pre-injector
//                          by contract: duplicates and drops are network
//                          behaviour, not party sends);
//   2. fault injection     FaultInjector outcome -> drop / duplicate / delay;
//   3. id allocation       trace send-event ids, plus queue tie-break
//                          sequence numbers for deadline-ordered mailboxes;
//   4. observability       metric counters, per-round accounting and the
//                          delay/Delta histogram under deterministic virtual
//                          time, the monitor on_send hook, and the trace
//                          `send` event followed by fault drop/dup events.
//
// The backend supplies scheduling only: it enqueues the returned copies at
// now + delay using its own queue discipline. Keeping both transports on
// this one path is what keeps their accounting, fault handling, and trace
// semantics from drifting (PR 4 had to patch self-delivery accounting in two
// hand-rolled loops; this layer makes that class of drift structurally
// impossible).
//
// The pipeline is a template over its counter representation so each backend
// pays only for the concurrency it needs: the single-threaded simulator
// instantiates plain uint64 counters (EgressPipeline — the disabled path is
// one obs::enabled() load plus plain arithmetic, held to < 2% overhead by
// bench_obs_overhead), while the thread transport instantiates relaxed
// atomics (ConcurrentEgressPipeline — post() runs concurrently on every
// sender thread).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "faults/faults.hpp"
#include "net/wire_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "sim/message.hpp"

namespace hydra::net {

struct EgressConfig {
  std::size_t n = 0;
  Duration delta = 1000;  ///< the public bound Delta, in ticks
  /// Deterministic virtual-time backends keep per-round message/byte vectors
  /// and the delay/Delta histogram; wall-clock backends leave this off (their
  /// round boundaries are not comparable across nondeterministic schedules).
  bool per_round = false;
  /// Allocate a sequence number for EVERY send, observability on or off:
  /// deadline-ordered mailboxes need the tie-break, and the trace send id is
  /// then seq + 1 so 0 keeps meaning "no cause". When false, ids are
  /// allocated lazily — only while observability is enabled — so the
  /// disabled path stays untouched and same-seed traces stay identical.
  bool eager_ids = false;
  /// Registry metric names (the simulator historically exports sim.*, the
  /// thread transport net.*).
  const char* messages_counter = "net.messages";
  const char* bytes_counter = "net.bytes";
  const char* delay_histogram = "net.delay_delta";
};

/// What the backend must schedule for one posted message.
struct Egress {
  std::uint32_t copies = 0;  ///< 0 = dropped (crashed endpoint); 1; 2 = dup
  std::array<Duration, 2> delay{};     ///< [0] primary, [1] duplicate copy
  std::array<std::uint64_t, 2> seq{};  ///< queue tie-breaks (eager_ids mode)
  /// Trace send-event id: compose_send_id(from, counter) — globally unique
  /// across PROCESSES, not just within a run, because the high bits carry
  /// the origin party and serve/join processes host disjoint party sets.
  /// That is what lets a remote deliver's `cause` (shipped in the MSG frame)
  /// resolve against the origin's trace with no id translation when
  /// per-process traces are stitched (obs/merge.hpp). A duplicate shares the
  /// original's id: one `send` event, two `deliver`s with the same cause.
  /// 0 = none allocated (lazy mode with observability off).
  std::uint64_t send_id = 0;
};

/// Send-id layout: (from + 1) in the high 32 bits, a 1-based per-pipeline
/// counter in the low 32. The +1 keeps the high word nonzero, so 0 can stay
/// the "no id" sentinel everywhere. The low word wrapping would need 2^32
/// sends from one pipeline — beyond any supported run length.
[[nodiscard]] constexpr std::uint64_t compose_send_id(
    PartyId from, std::uint64_t counter) noexcept {
  return ((std::uint64_t{from} + 1) << 32) | (counter & 0xffffffffull);
}

/// The origin party encoded in a send id (send ids are never 0).
[[nodiscard]] constexpr PartyId send_id_party(std::uint64_t id) noexcept {
  return static_cast<PartyId>((id >> 32) - 1);
}

namespace detail {

/// Single-threaded counter: plain arithmetic, zero synchronization cost.
struct PlainCounter {
  std::uint64_t value = 0;
  void add(std::uint64_t x) noexcept { value += x; }
  std::uint64_t fetch_add_one() noexcept { return value++; }
  [[nodiscard]] std::uint64_t load() const noexcept { return value; }
};

/// Multi-threaded counter: relaxed atomics — totals need no ordering, only
/// eventual consistency at the post-join read.
struct RelaxedCounter {
  std::atomic<std::uint64_t> value{0};
  void add(std::uint64_t x) noexcept {
    value.fetch_add(x, std::memory_order_relaxed);
  }
  std::uint64_t fetch_add_one() noexcept {
    return value.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t load() const noexcept {
    return value.load(std::memory_order_relaxed);
  }
};

}  // namespace detail

template <typename Counter>
class BasicEgressPipeline {
 public:
  explicit BasicEgressPipeline(const EgressConfig& config)
      : config_(config), sent_per_party_(config.n) {
    HYDRA_ASSERT(config_.n >= 1);
  }

  BasicEgressPipeline(const BasicEgressPipeline&) = delete;
  BasicEgressPipeline& operator=(const BasicEgressPipeline&) = delete;

  /// The single send-side code path. `base` is the backend's DelayModel draw
  /// (0 for self-delivery, >= 1 otherwise); `injector` may be null (the
  /// fault-free fast path is a single branch). Returns what to enqueue.
  Egress on_send(PartyId from, PartyId to, const sim::Message& msg, Time now,
                 Duration base, faults::FaultInjector* injector) {
    const bool self = from == to;
    HYDRA_ASSERT(self || base >= 1);
    if (!self) {
      messages_.add(1);
      bytes_.add(msg.wire_size());
      sent_per_party_[from].add(1);
    }
    Egress out;
    out.copies = 1;
    out.delay[0] = base;
    const char* drop_reason = nullptr;
    if (injector != nullptr) {
      const auto outcome = injector->on_message(from, to, now, base);
      out.delay[0] = outcome.delays[0];
      if (outcome.dropped) {
        out.copies = 0;
        drop_reason = outcome.reason;
      } else if (outcome.duplicated) {
        out.copies = 2;
        out.delay[1] = outcome.delays[1];
      }
    }
    if (config_.eager_ids) {
      // A dropped message still consumes a sequence number, keeping the id
      // stream a pure function of the post order under any fault plan.
      out.seq[0] = ids_.fetch_add_one();
      out.send_id = compose_send_id(from, out.seq[0] + 1);
      if (out.copies == 2) out.seq[1] = ids_.fetch_add_one();
    }
    // Disabled hot path ends here: one obs::enabled() load and nothing else.
    // The whole enabled branch lives in a noinline helper so its body (the
    // profiler scope in particular) never inflates on_send past the inliner
    // threshold at call sites — bench_obs_overhead gates this path.
    if (obs::enabled()) {
      observe(from, to, msg, now, out, injector != nullptr, drop_reason);
    }
    return out;
  }

  /// Folds the wire totals into `out`. Call after the run: on the thread
  /// backend this must happen once senders are joined (relaxed counters).
  void export_stats(WireStats& out) const {
    out.messages = messages_.load();
    out.bytes = bytes_.load();
    out.sent_per_party.assign(sent_per_party_.size(), 0);
    for (std::size_t i = 0; i < sent_per_party_.size(); ++i) {
      out.sent_per_party[i] = sent_per_party_[i].load();
    }
    out.messages_per_round = messages_per_round_;
    out.bytes_per_round = bytes_per_round_;
  }

  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_.load(); }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_.load(); }

 private:
  /// Enabled-path tail of on_send: lazy send-id allocation plus record(),
  /// bracketed by the net.egress profiler phase. noinline keeps on_send
  /// small enough to inline at every call site whatever this body grows to;
  /// cold moves the body out of the hot sections entirely.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline, cold))
#endif
  void observe(PartyId from, PartyId to, const sim::Message& msg, Time now,
               Egress& out, bool injected, const char* drop_reason) {
    HYDRA_PROF_SCOPE("net.egress");
    if (!config_.eager_ids) {
      out.send_id = compose_send_id(from, ids_.fetch_add_one() + 1);
    }
    record(from, to, msg, now, out, injected, drop_reason);
  }

  /// Observability slow path. Event order is part of the trace contract:
  /// counters and per-round accounting, the monitor hook, then the `send`
  /// trace event (self-deliveries stay visible in the trace — they carry
  /// causality — but never touch a counter), then any fault drop/dup event.
  void record(PartyId from, PartyId to, const sim::Message& msg, Time now,
              const Egress& out, bool injected, const char* drop_reason) {
    if (from != to) {
      auto& registry = obs::registry();
      registry.counter(config_.messages_counter).inc();
      registry.counter(config_.bytes_counter).inc(msg.wire_size());
      if (config_.per_round && config_.delta > 0) {
        // Per-round accounting: the paper's round structure is in units of
        // Delta.
        const auto round = static_cast<std::size_t>(now / config_.delta);
        if (messages_per_round_.size() <= round) {
          messages_per_round_.resize(round + 1, 0);
          bytes_per_round_.resize(round + 1, 0);
        }
        messages_per_round_[round] += 1;
        bytes_per_round_[round] += msg.wire_size();
        // Delay in units of Delta: >1 means the synchrony bound was violated.
        // The FINAL post-injector delay is observed, dropped or not.
        static constexpr std::array<double, 7> kBounds{0.25, 0.5, 1.0, 2.0,
                                                       4.0,  8.0, 16.0};
        registry.histogram(config_.delay_histogram, kBounds)
            .observe(static_cast<double>(out.delay[0]) /
                     static_cast<double>(config_.delta));
      }
      if (auto* mon = obs::monitors()) {
        mon->on_send(now, from, msg.wire_size());
      }
    }
    if (auto* tr = obs::trace()) {
      tr->message_send(now, from, to, msg.key.tag, msg.key.a, msg.key.b,
                       msg.kind, msg.wire_size(), out.send_id);
      if (injected) {
        if (drop_reason != nullptr) {
          tr->fault(now, "drop", from, to, out.send_id, drop_reason);
        } else if (out.copies == 2) {
          tr->fault(now, "dup", from, to, out.send_id, "");
        }
      }
    }
  }

  EgressConfig config_;
  Counter messages_;
  Counter bytes_;
  Counter ids_;
  std::vector<Counter> sent_per_party_;
  // Mutated only under obs::enabled() && per_round, i.e. only by the
  // single-threaded simulator; the thread backend never touches them.
  std::vector<std::uint64_t> messages_per_round_;
  std::vector<std::uint64_t> bytes_per_round_;
};

using EgressPipeline = BasicEgressPipeline<detail::PlainCounter>;
using ConcurrentEgressPipeline = BasicEgressPipeline<detail::RelaxedCounter>;

}  // namespace hydra::net
