// Backend-neutral wire statistics.
//
// Both transports (sim::Simulation, transport::ThreadNetwork) account for
// network traffic through the shared net::EgressPipeline, and both publish
// the result in this common shape: SimStats and ThreadNetStats each derive
// from WireStats, so harness code can read message/byte totals without
// knowing which backend produced them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hydra::net {

struct WireStats {
  /// Wire traffic only: self-deliveries are local computation and are
  /// excluded from every message/byte count below.
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Messages sent per party (index = PartyId): per-party bandwidth lens,
  /// e.g. to spot a spamming Byzantine slot or asymmetric load.
  std::vector<std::uint64_t> sent_per_party;
  /// Per-round communication accounting, index = floor(send time / delta).
  /// Collected only while observability is enabled (obs::enabled()) and only
  /// by backends with deterministic virtual time (EgressConfig::per_round);
  /// empty otherwise so the disabled hot path stays a single branch.
  std::vector<std::uint64_t> messages_per_round;
  std::vector<std::uint64_t> bytes_per_round;
};

/// Per-party progress snapshot, filled in by the thread backend's watchdog
/// after the run (empty on the simulator, whose quiescence detection makes a
/// stall impossible to confuse with completion).
struct PartyProgress {
  bool finished = false;       ///< `finished` predicate held at shutdown
  bool crash_stopped = false;  ///< a fault-plan crash-stop silenced the party
  std::uint64_t events = 0;    ///< messages + timers the party handled
  Time last_progress = 0;      ///< tick of the party's last handled event
};

}  // namespace hydra::net
