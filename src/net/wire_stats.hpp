// Backend-neutral wire statistics.
//
// Both transports (sim::Simulation, transport::ThreadNetwork) account for
// network traffic through the shared net::EgressPipeline, and both publish
// the result in this common shape: SimStats and ThreadNetStats each derive
// from WireStats, so harness code can read message/byte totals without
// knowing which backend produced them.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace hydra::net {

struct WireStats {
  /// Wire traffic only: self-deliveries are local computation and are
  /// excluded from every message/byte count below.
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Messages sent per party (index = PartyId): per-party bandwidth lens,
  /// e.g. to spot a spamming Byzantine slot or asymmetric load.
  std::vector<std::uint64_t> sent_per_party;
  /// Per-round communication accounting, index = floor(send time / delta).
  /// Collected only while observability is enabled (obs::enabled()) and only
  /// by backends with deterministic virtual time (EgressConfig::per_round);
  /// empty otherwise so the disabled hot path stays a single branch.
  std::vector<std::uint64_t> messages_per_round;
  std::vector<std::uint64_t> bytes_per_round;
};

/// Socket-transport health accounting (backends "tcp"/"uds"; all-zero on
/// the in-process transports). Counters plus two log2 histograms, exported
/// through SocketNetStats → BackendStats → RunResult into the metrics JSON
/// "transport_health" block and the rendered report.
struct TransportHealth {
  /// Bucket count shared by both histograms; bucket k covers values in
  /// [2^k, 2^(k+1)) (bucket 0 also takes 0). Matches the profiler's log2
  /// shape so report tooling can reuse its percentile math.
  static constexpr std::size_t kBuckets = 40;

  static constexpr std::size_t bucket_of(std::uint64_t v) {
    const auto w = static_cast<std::size_t>(std::bit_width(v));
    return w == 0 ? 0 : (w - 1 < kBuckets ? w - 1 : kBuckets - 1);
  }

  std::uint64_t connect_attempts = 0;  ///< dial attempts incl. retries
  std::uint64_t connects = 0;          ///< dials that completed
  std::uint64_t accepts = 0;           ///< inbound connections bound at HELLO
  std::uint64_t frames_sent = 0;       ///< frames written (HELLO/MSG/FIN)
  /// Coalesced writer flushes: each is ONE kernel send covering every frame
  /// that was due in the flush window, so frames_sent / flushes is the
  /// batching factor the multi-instance serving load achieves.
  std::uint64_t flushes = 0;
  std::uint64_t frames_received = 0;   ///< frames read and decoded
  /// High-water marks across all queues of the kind.
  std::uint64_t egress_hwm = 0;   ///< deepest outbound (writer) queue seen
  std::uint64_t mailbox_hwm = 0;  ///< deepest inbound (delivery) queue seen
  /// log2 histogram of write_frame wall latency, in nanoseconds.
  std::array<std::uint64_t, kBuckets> flush_ns_buckets{};
  /// log2 histogram of sent frame body sizes, in bytes.
  std::array<std::uint64_t, kBuckets> frame_bytes_buckets{};

  [[nodiscard]] bool any() const {
    if (connect_attempts || connects || accepts || frames_sent || flushes ||
        frames_received || egress_hwm || mailbox_hwm) {
      return true;
    }
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (flush_ns_buckets[i] || frame_bytes_buckets[i]) return true;
    }
    return false;
  }
};

/// Per-party progress snapshot, filled in by the thread backend's watchdog
/// after the run (empty on the simulator, whose quiescence detection makes a
/// stall impossible to confuse with completion).
struct PartyProgress {
  bool finished = false;       ///< `finished` predicate held at shutdown
  bool crash_stopped = false;  ///< a fault-plan crash-stop silenced the party
  std::uint64_t events = 0;    ///< messages + timers the party handled
  Time last_progress = 0;      ///< tick of the party's last handled event
};

}  // namespace hydra::net
