// Subset enumeration used by the safe-area computation (Definition 5.1):
// restrict_t(M) ranges over all subsets of M of size |M| - t, i.e. over all
// ways of *removing* t elements. We enumerate the removed index sets in
// lexicographic order so results are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/assert.hpp"

namespace hydra {

/// Number of k-element subsets of an n-element set, saturating at
/// uint64 max (callers treat huge counts as "too many to enumerate").
[[nodiscard]] inline std::uint64_t binomial(std::uint64_t n, std::uint64_t k) noexcept {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t q = result / i;
    const std::uint64_t r = result % i;
    const std::uint64_t term = n - k + i;
    // result = result * term / i, computed without overflow when possible.
    if (q > UINT64_MAX / term) return UINT64_MAX;
    result = q * term + r * term / i;
  }
  return result;
}

/// Invokes `fn` with each k-element index subset of {0, .., n-1}, in
/// lexicographic order. `fn` receives the subset as a const reference that is
/// only valid during the call.
inline void for_each_combination(std::size_t n, std::size_t k,
                                 const std::function<void(const std::vector<std::size_t>&)>& fn) {
  HYDRA_ASSERT(k <= n);
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  if (k == 0) {
    fn(idx);
    return;
  }
  while (true) {
    fn(idx);
    // Advance to next combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        i = k + 1;  // flag: advanced
        break;
      }
    }
    if (i != k + 1) break;  // no position could advance: done
  }
}

/// Complement of `removed` within {0,..,n-1}; both sorted ascending.
[[nodiscard]] inline std::vector<std::size_t> complement_indices(
    std::size_t n, const std::vector<std::size_t>& removed) {
  std::vector<std::size_t> kept;
  kept.reserve(n - removed.size());
  std::size_t r = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (r < removed.size() && removed[r] == i) {
      ++r;
    } else {
      kept.push_back(i);
    }
  }
  return kept;
}

}  // namespace hydra
