// Tiny leveled logger. Off by default so large experiment sweeps stay quiet;
// tests and debugging sessions can raise the level per-run.
#pragma once

#include <cstdio>
#include <string>

namespace hydra {

enum class LogLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

namespace detail {
inline LogLevel& log_level_ref() noexcept {
  static LogLevel level = LogLevel::kOff;
  return level;
}
}  // namespace detail

inline void set_log_level(LogLevel level) noexcept { detail::log_level_ref() = level; }
[[nodiscard]] inline LogLevel log_level() noexcept { return detail::log_level_ref(); }

[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(detail::log_level_ref());
}

}  // namespace hydra

// printf-style logging; evaluates arguments only when the level is active.
#define HYDRA_LOG(level, ...)                                      \
  do {                                                             \
    if (::hydra::log_enabled(level)) {                             \
      std::fprintf(stderr, __VA_ARGS__);                           \
      std::fputc('\n', stderr);                                    \
    }                                                              \
  } while (false)

#define HYDRA_LOG_DEBUG(...) HYDRA_LOG(::hydra::LogLevel::kDebug, __VA_ARGS__)
#define HYDRA_LOG_TRACE(...) HYDRA_LOG(::hydra::LogLevel::kTrace, __VA_ARGS__)
#define HYDRA_LOG_INFO(...) HYDRA_LOG(::hydra::LogLevel::kInfo, __VA_ARGS__)
