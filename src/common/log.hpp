// Tiny leveled logger. Off by default so large experiment sweeps stay quiet;
// tests and debugging sessions can raise the level per-run.
//
// When a structured trace sink is active (obs/trace.hpp installs itself via
// set_log_sink), every emitted line is additionally forwarded to it, so log
// output lands inside the trace timeline instead of disappearing on stderr.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>

namespace hydra {

enum class LogLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Hook receiving every formatted log line (installed by the trace sink).
using LogSinkFn = void (*)(LogLevel, const char*);

namespace detail {
inline LogLevel& log_level_ref() noexcept {
  static LogLevel level = LogLevel::kOff;
  return level;
}

inline std::atomic<LogSinkFn>& log_sink_ref() noexcept {
  static std::atomic<LogSinkFn> sink{nullptr};
  return sink;
}

__attribute__((format(printf, 2, 3))) inline void log_line(LogLevel level,
                                                           const char* fmt, ...) {
  char buf[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  std::fprintf(stderr, "%s\n", buf);
  if (const LogSinkFn sink = log_sink_ref().load(std::memory_order_acquire)) {
    sink(level, buf);
  }
}
}  // namespace detail

inline void set_log_level(LogLevel level) noexcept { detail::log_level_ref() = level; }
[[nodiscard]] inline LogLevel log_level() noexcept { return detail::log_level_ref(); }

[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(detail::log_level_ref());
}

/// Routes formatted log lines to `sink` in addition to stderr; nullptr
/// uninstalls. The sink must be callable from any thread.
inline void set_log_sink(LogSinkFn sink) noexcept {
  detail::log_sink_ref().store(sink, std::memory_order_release);
}

[[nodiscard]] inline const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kOff: return "off";
    case LogLevel::kError: return "error";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "?";
}

/// Inverse of to_string (accepts "off", "error", "info", "debug", "trace");
/// nullopt on unknown names. Used by the --log-level CLI flag.
[[nodiscard]] inline std::optional<LogLevel> parse_log_level(std::string_view name) {
  for (const auto level : {LogLevel::kOff, LogLevel::kError, LogLevel::kInfo,
                           LogLevel::kDebug, LogLevel::kTrace}) {
    if (name == to_string(level)) return level;
  }
  return std::nullopt;
}

}  // namespace hydra

// printf-style logging; evaluates arguments only when the level is active.
#define HYDRA_LOG(level, ...)                                      \
  do {                                                             \
    if (::hydra::log_enabled(level)) {                             \
      ::hydra::detail::log_line(level, __VA_ARGS__);               \
    }                                                              \
  } while (false)

#define HYDRA_LOG_ERROR(...) HYDRA_LOG(::hydra::LogLevel::kError, __VA_ARGS__)
#define HYDRA_LOG_INFO(...) HYDRA_LOG(::hydra::LogLevel::kInfo, __VA_ARGS__)
#define HYDRA_LOG_DEBUG(...) HYDRA_LOG(::hydra::LogLevel::kDebug, __VA_ARGS__)
#define HYDRA_LOG_TRACE(...) HYDRA_LOG(::hydra::LogLevel::kTrace, __VA_ARGS__)
