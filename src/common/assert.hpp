// Always-on assertion macro. Protocol invariants are cheap relative to the
// geometry kernels, so they stay enabled in release builds; a violated
// invariant in a distributed protocol is exactly the bug class we must not
// silently ignore.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hydra::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "hydra assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}
}  // namespace hydra::detail

#define HYDRA_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::hydra::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                   \
  } while (false)

#define HYDRA_ASSERT_MSG(expr, msg)                                  \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::hydra::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                                \
  } while (false)
