// Core identifier and time types shared by every hydra-aa module.
//
// Time is virtual and integral: the discrete-event simulator advances an
// int64 tick counter, and the thread transport maps ticks onto wall-clock
// microseconds. Integral time keeps runs bit-for-bit reproducible.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace hydra {

/// Index of a party in [0, n). Party `i` in code corresponds to the paper's
/// P_{i+1}. The identity carried on a channel is unforgeable (authenticated
/// channels, Section 2 of the paper).
using PartyId = std::uint32_t;

inline constexpr PartyId kInvalidParty = std::numeric_limits<PartyId>::max();

/// Virtual time in ticks. Tick 0 is protocol start.
using Time = std::int64_t;

/// A span of virtual time in ticks.
using Duration = std::int64_t;

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

/// Identifies a sub-protocol instance, playing the role of the
/// "identification numbers" the paper attaches to messages (Section 2).
///
/// `tag` names the protocol layer (see protocols/keys.hpp); `a` and `b` are
/// layer-specific coordinates, e.g. (sender, iteration) for a reliable
/// broadcast instance inside iteration `b` of Pi_AA.
struct InstanceKey {
  std::uint32_t tag = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  friend auto operator<=>(const InstanceKey&, const InstanceKey&) = default;
};

/// Multi-instance tag layout (src/serve/ and the socket wire validation):
/// the low kInstanceTagShift bits of InstanceKey::tag name the protocol
/// layer (protocols/keys.hpp, all < 256), the high bits carry the serving
/// instance id. Instance 0 therefore leaves every tag byte-identical to a
/// single-instance run.
inline constexpr std::uint32_t kInstanceTagShift = 8;
inline constexpr std::uint32_t kInstanceTagMask = (1u << kInstanceTagShift) - 1;
/// Largest representable serving-instance id + 1 (2^24).
inline constexpr std::uint32_t kMaxInstances = 1u << (32 - kInstanceTagShift);

struct InstanceKeyHash {
  [[nodiscard]] std::size_t operator()(const InstanceKey& k) const noexcept {
    std::uint64_t h = (std::uint64_t{k.tag} << 40) ^ (std::uint64_t{k.a} << 20) ^
                      std::uint64_t{k.b};
    // splitmix64 finalizer
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

}  // namespace hydra
