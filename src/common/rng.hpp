// Deterministic pseudo-random generator (xoshiro256**) used everywhere a
// random draw is needed: delay models, adversary choices, workload
// generation. One master seed fully determines a run.
//
// We deliberately avoid std::mt19937 + std::uniform_*_distribution because
// their outputs are not specified bit-for-bit across standard library
// implementations; experiments must reproduce exactly from (config, seed).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>

#include "common/assert.hpp"

namespace hydra {

class Rng {
 public:
  Rng() : Rng(0xda3e39cb94b95bdbULL) {}

  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // Expand the seed with splitmix64 so near-identical seeds give
    // uncorrelated streams.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept {
    HYDRA_ASSERT(bound > 0);
    // Lemire's multiply-shift rejection method: unbiased.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    HYDRA_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Marsaglia polar method (deterministic given state).
  [[nodiscard]] double next_gaussian() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = next_double(-1.0, 1.0);
      v = next_double(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double next_exponential(double mean) noexcept {
    HYDRA_ASSERT(mean > 0.0);
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derive an independent child stream (e.g. one per party).
  [[nodiscard]] Rng fork() noexcept { return Rng(next_u64() ^ 0xa0761d6478bd642fULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace hydra
