// Minimal binary serialization for protocol payloads.
//
// Reliable broadcast (protocols/rbc.hpp) transports opaque byte vectors;
// every layer above it encodes its own messages with Writer/Reader. The
// format is little-endian, length-prefixed, with no alignment padding —
// enough to make message sizes realistic and byte accounting meaningful.
//
// Readers are written defensively: a Byzantine party controls payload bytes
// — and on the socket backends (transport/socket_net.hpp) the bytes arrive
// straight from the OS — so every decode reports failure via ok() instead of
// invoking UB, and all length-prefix arithmetic is overflow-safe.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hydra {

using Bytes = std::vector<std::uint8_t>;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  /// Vector of doubles (e.g. a point in R^D).
  void f64_vec(std::span<const double> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (double x : v) f64(x);
  }

  [[nodiscard]] const Bytes& data() const noexcept { return out_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(out_); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }

  std::uint32_t u32() {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_++]} << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_++]} << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  Bytes bytes() {
    const auto span = take_prefixed();
    return Bytes(span.begin(), span.end());
  }

  std::string str() {
    const auto span = take_prefixed();
    return std::string(reinterpret_cast<const char*>(span.data()), span.size());
  }

  std::vector<double> f64_vec(std::uint32_t max_len = 1u << 20) {
    const std::uint32_t len = u32();
    // Element-count cap first: a 32-bit length can demand up to 32 GiB of
    // doubles, and `len * 8` must never be formed before the cap check on
    // platforms where size_t is 32 bits wide.
    if (len > max_len || !ensure(std::size_t{len} * 8)) {
      ok_ = false;
      return {};
    }
    std::vector<double> out;
    out.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) out.push_back(f64());
    return out;
  }

 private:
  /// Reads a u32 length prefix and consumes that many bytes, returning them
  /// as a span ({} with ok_=false on truncated input). All length-prefix
  /// arithmetic is centralized here and phrased as `remaining < len` so no
  /// `pos_ + len` sum — which wraps for len near UINT32_MAX on 32-bit
  /// size_t — is ever formed against attacker-controlled lengths.
  [[nodiscard]] std::span<const std::uint8_t> take_prefixed() {
    const std::uint32_t len = u32();
    if (!ensure(len)) return {};
    const auto out = data_.subspan(pos_, len);
    pos_ += len;
    return out;
  }

  /// Overflow-safe bounds check: pos_ <= data_.size() is a class invariant
  /// (positions only advance after a successful ensure), so the subtraction
  /// cannot underflow, and `need` is never added to pos_ before the check.
  [[nodiscard]] bool ensure(std::size_t need) noexcept {
    if (!ok_ || data_.size() - pos_ < need) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace hydra
