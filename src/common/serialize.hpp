// Minimal binary serialization for protocol payloads.
//
// Reliable broadcast (protocols/rbc.hpp) transports opaque byte vectors;
// every layer above it encodes its own messages with Writer/Reader. The
// format is little-endian, length-prefixed, with no alignment padding —
// enough to make message sizes realistic and byte accounting meaningful.
//
// Readers are written defensively: a Byzantine party controls payload bytes,
// so every decode reports failure via ok() instead of invoking UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hydra {

using Bytes = std::vector<std::uint8_t>;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  /// Vector of doubles (e.g. a point in R^D).
  void f64_vec(std::span<const double> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (double x : v) f64(x);
  }

  [[nodiscard]] const Bytes& data() const noexcept { return out_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(out_); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }

  std::uint32_t u32() {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_++]} << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_++]} << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  Bytes bytes() {
    const std::uint32_t len = u32();
    if (!ensure(len)) return {};
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  std::string str() {
    const std::uint32_t len = u32();
    if (!ensure(len)) return {};
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return out;
  }

  std::vector<double> f64_vec(std::uint32_t max_len = 1u << 20) {
    const std::uint32_t len = u32();
    if (len > max_len || !ensure(std::size_t{len} * 8)) {
      ok_ = false;
      return {};
    }
    std::vector<double> out;
    out.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) out.push_back(f64());
    return out;
  }

 private:
  [[nodiscard]] bool ensure(std::size_t need) noexcept {
    if (!ok_ || data_.size() - pos_ < need) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace hydra
