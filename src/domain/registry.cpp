// The process-wide domain registry. Mirrors the net::Backend registry's
// contract: lookup by name, enumerable for `hydra list`, and a ", "-joined
// name list for actionable unknown-domain errors. Registration order is the
// display order; "euclid" is always first.

#include <array>
#include <string>
#include <vector>

#include "domain/domain.hpp"
#include "domain/tree.hpp"

namespace hydra::domain {
namespace {

struct Registry {
  // "tree" is a 63-vertex complete binary tree (depth 5, diameter 10);
  // "path" is a 64-vertex line, where tree AA degenerates to integer
  // 1-D AA — the bridge case against the Euclidean dim=1 runs.
  TreeDomain tree{"tree", binary_tree_parents(63)};
  TreeDomain path{"path", path_parents(64)};
  std::array<const ValueDomain*, 3> entries{&euclid(), &tree, &path};
};

const Registry& registry() {
  static const Registry instance;
  return instance;
}

}  // namespace

const ValueDomain* find(std::string_view name) {
  for (const auto* d : registry().entries) {
    if (d->name() == name) return d;
  }
  return nullptr;
}

std::vector<std::string> names() {
  std::vector<std::string> out;
  for (const auto* d : registry().entries) out.emplace_back(d->name());
  return out;
}

std::string known_names() {
  std::string out;
  for (const auto* d : registry().entries) {
    if (!out.empty()) out += ", ";
    out += d->name();
  }
  return out;
}

}  // namespace hydra::domain
