// TreeDomain: ValueDomain over the vertices of a fixed rooted tree given as
// a parent array (parent[0] == 0 is the root; parents precede children).
// Exposed as a class — unlike the Euclidean singleton — so tests and the
// registry can instantiate arbitrary shapes.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "domain/domain.hpp"

namespace hydra::domain {

class TreeDomain : public ValueDomain {
 public:
  TreeDomain(std::string name, std::vector<std::uint32_t> parent);

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] bool validate(const geo::Vec& v) const override;
  [[nodiscard]] double distance(const geo::Vec& a,
                                const geo::Vec& b) const override;
  [[nodiscard]] AggregateResult aggregate(
      const AggregateSpec& spec, std::span<const geo::Vec> values) const override;
  [[nodiscard]] bool in_validity_set(std::span<const geo::Vec> basis,
                                     const geo::Vec& candidate,
                                     double tol) const override;
  [[nodiscard]] double contraction_factor() const noexcept override {
    return 0.5;
  }
  [[nodiscard]] double contraction_bound(double factor,
                                         double prev_diameter) const override;
  [[nodiscard]] std::uint64_t sufficient_iterations(double eps,
                                                    double diam) const override;
  [[nodiscard]] bool feasible(std::size_t n, std::size_t ts, std::size_t ta,
                              std::size_t dim) const noexcept override;
  [[nodiscard]] std::optional<std::size_t> required_dim() const noexcept override;
  [[nodiscard]] double min_eps() const noexcept override;
  [[nodiscard]] std::optional<std::vector<geo::Vec>> make_inputs(
      std::size_t n, std::size_t dim, double scale,
      std::uint64_t seed) const override;
  [[nodiscard]] std::string format_value(const geo::Vec& v) const override;

  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return parent_.size();
  }

 private:
  struct Label {
    std::uint32_t vertex = 0;
    double residual = 0.0;  ///< |raw - vertex|: 0 exactly on a valid label
  };

  [[nodiscard]] Label label_of(const geo::Vec& v) const;
  [[nodiscard]] std::uint32_t lca(std::uint32_t a, std::uint32_t b) const;
  [[nodiscard]] std::uint32_t vertex_distance(std::uint32_t a,
                                              std::uint32_t b) const;
  [[nodiscard]] std::uint32_t vertex_at(std::uint32_t a, std::uint32_t b,
                                        std::uint32_t steps) const;
  void add_path(std::uint32_t a, std::uint32_t b,
                std::set<std::uint32_t>& out) const;
  [[nodiscard]] std::set<std::uint32_t> hull(
      const std::vector<std::uint32_t>& labels) const;

  std::string name_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> depth_;
};

/// Complete binary tree in heap layout: parent[v] = (v - 1) / 2.
[[nodiscard]] std::vector<std::uint32_t> binary_tree_parents(
    std::size_t vertices);

/// Path graph (a line): parent[v] = v - 1.
[[nodiscard]] std::vector<std::uint32_t> path_parents(std::size_t vertices);

}  // namespace hydra::domain
