// The value-domain abstraction: everything the ΠAA stack needs to know
// about the space values live in, bundled behind one interface so the
// protocol, the monitors, the oracles, and the harness are generic over it.
//
// The paper's protocol shape — exchange values, intersect hulls over
// |M| - t subsets, adopt a midpoint of the result — is not specific to
// Euclidean R^D. Approximate agreement on trees and block graphs
// (Fuchs-Ghinea-Parsaeian-Rybicki, arXiv:2502.05591) and Byzantine AA on
// graphs (Nowak-Rybicki, arXiv:1908.02743) instantiate the same shape over
// a discrete metric space: geodesic (path) convexity replaces linear
// convexity, the midpoint of the diameter pair becomes a vertex at
// floor(d/2) along the unique tree path, and the per-iteration contraction
// factor becomes 1/2 instead of sqrt(7/8).
//
// A ValueDomain bundles:
//   - the value representation contract over geo::Vec (wire codec content
//     validation beyond structural decode),
//   - the metric (distance/diameter),
//   - the ΠAA-it aggregation rule (safe-area midpoint),
//   - the validity predicate (convex-hull membership for Euclid, geodesic
//     convex-hull membership for trees),
//   - the expected per-iteration contraction bound,
//   - Πinit's sufficient-iteration estimate,
//   - the feasibility condition on (n, ts, ta, D),
//   - input generation and report formatting hooks.
//
// Layering: hydra_domain sits between geometry and obs — it may use
// common + geometry only, never obs or protocols. Aggregation returns its
// numerical-fallback count in AggregateResult; the protocols layer notes
// it into the run's observability context.
//
// Instances register in a process-wide registry (mirroring net::Backend's)
// keyed by name; "euclid" is always present and is the protocol's default
// (a null ValueDomain pointer everywhere means Euclidean, byte-identical
// to the pre-domain-layer code paths).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/safe_area.hpp"
#include "geometry/vec.hpp"

namespace hydra::domain {

/// Aggregation parameters threaded down from protocols::Params (the domain
/// layer sits below protocols and cannot see Params itself).
struct AggregateSpec {
  std::size_t n = 0;
  std::size_t ts = 0;
  std::size_t ta = 0;
  bool centroid = false;  ///< protocols::Aggregation::kCentroid ablation
  geo::SafeAreaOptions safe_opts{};
};

/// Aggregation result: the adopted value plus how many numerical fallbacks
/// the computation needed (the caller notes them into obs — this layer
/// never touches observability).
struct AggregateResult {
  geo::Vec value;
  std::uint32_t fallbacks = 0;
};

class ValueDomain {
 public:
  virtual ~ValueDomain() = default;

  ValueDomain() = default;
  ValueDomain(const ValueDomain&) = delete;
  ValueDomain& operator=(const ValueDomain&) = delete;

  /// Registry key and CLI surface ("euclid", "tree", "path").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  // -- wire codec -----------------------------------------------------------

  /// Content validation applied after the structural decode (dimension and
  /// finiteness are already enforced by protocols::decode_value). A payload
  /// failing this is treated exactly like a message the Byzantine sender
  /// never sent. Euclid accepts every finite vector; discrete domains
  /// reject non-integral or out-of-range labels.
  [[nodiscard]] virtual bool validate(const geo::Vec& v) const = 0;

  // -- metric ---------------------------------------------------------------

  [[nodiscard]] virtual double distance(const geo::Vec& a,
                                        const geo::Vec& b) const = 0;

  /// Max pairwise distance; 0 for fewer than two points. Euclid overrides
  /// with geo::diameter so the refactor stays bit-identical.
  [[nodiscard]] virtual double diameter(std::span<const geo::Vec> points) const;

  // -- aggregation (the ΠAA-it safe-area rule) ------------------------------

  /// The new-value rule over the val(M) multiset (sorted by party id, so
  /// parties holding equal multisets compute identical results). `values`
  /// has between n - ts and n entries; t = max(|M| - (n - ts), ta) values
  /// are adversarially suspect (Definition 5.1).
  [[nodiscard]] virtual AggregateResult aggregate(
      const AggregateSpec& spec, std::span<const geo::Vec> values) const = 0;

  // -- validity / contraction (monitors + oracles) --------------------------

  /// Membership of `candidate` in the domain's convex closure of `basis`
  /// (linear hull for Euclid, geodesic hull for trees). `tol` absorbs
  /// floating error; discrete domains use it only to accept exactly-
  /// representable labels.
  [[nodiscard]] virtual bool in_validity_set(std::span<const geo::Vec> basis,
                                             const geo::Vec& candidate,
                                             double tol) const = 0;

  /// Expected per-iteration contraction factor of the midpoint rule:
  /// sqrt(7/8) for Euclid (Lemma 5.10), 1/2 for tree midpoints.
  [[nodiscard]] virtual double contraction_factor() const noexcept = 0;

  /// Upper bound on the next complete layer's honest diameter given the
  /// previous one. The default reproduces the Euclidean monitor's formula
  /// (factor * prev plus a relative epsilon); integer-metric domains
  /// override with an exact ceil.
  [[nodiscard]] virtual double contraction_bound(double factor,
                                                 double prev_diameter) const;

  /// Πinit's iteration estimate: smallest T with diam contracted below eps.
  [[nodiscard]] virtual std::uint64_t sufficient_iterations(double eps,
                                                            double diam) const = 0;

  // -- parameters / harness hooks -------------------------------------------

  /// The domain's feasibility condition on the resilience parameters
  /// (Theorem 5.19's (D+1) ts + ta < n for Euclid).
  [[nodiscard]] virtual bool feasible(std::size_t n, std::size_t ts,
                                      std::size_t ta,
                                      std::size_t dim) const noexcept = 0;

  /// The dimension the domain requires, if fixed (trees encode a vertex
  /// label in a 1-D vector); nullopt = any D the feasibility admits.
  [[nodiscard]] virtual std::optional<std::size_t> required_dim() const noexcept;

  /// Smallest meaningful agreement distance: 0 for continuous domains, 1
  /// for integer metrics (1-agreement — adjacent vertices — is the
  /// strongest guarantee a discrete midpoint rule can converge to).
  [[nodiscard]] virtual double min_eps() const noexcept;

  /// Domain-specific input generation; nullopt = the harness's Euclidean
  /// workload generators apply. Deterministic in (n, scale, seed).
  [[nodiscard]] virtual std::optional<std::vector<geo::Vec>> make_inputs(
      std::size_t n, std::size_t dim, double scale, std::uint64_t seed) const;

  /// Report rendering: "(0.25, 1)" coordinate tuple for Euclid, a bare
  /// vertex label like "12" for graph domains.
  [[nodiscard]] virtual std::string format_value(const geo::Vec& v) const;
};

/// The Euclidean R^D instance (always registered, the protocol's default).
[[nodiscard]] const ValueDomain& euclid();

/// Null-tolerant resolution: a null domain pointer means Euclidean.
[[nodiscard]] inline const ValueDomain& resolve(const ValueDomain* ptr) {
  return ptr != nullptr ? *ptr : euclid();
}

// -- registry (mirrors the net::Backend registry's shape) -------------------

/// Looks up a registered domain by name; nullptr when unknown.
[[nodiscard]] const ValueDomain* find(std::string_view name);

/// Names of every registered domain, in registration order (for CLI
/// validation, `hydra list`, and actionable unknown-domain errors).
[[nodiscard]] std::vector<std::string> names();

/// ", "-joined registry names, for error messages naming every accepted
/// value (the unknown-backend error's shape).
[[nodiscard]] std::string known_names();

}  // namespace hydra::domain
