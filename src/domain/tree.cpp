// Tree value domains: approximate agreement over the vertices of a fixed
// tree, the first non-Euclidean ValueDomain instance.
//
// Values are integer vertex labels carried in a 1-D geo::Vec (exactly
// representable in a double far beyond any practical vertex count), so the
// wire codec is unchanged — domain validation rejects non-integral or
// out-of-range labels the way the Euclidean decoder rejects non-finite
// coordinates.
//
// The protocol shape is the paper's, with geodesic convexity substituted
// for linear convexity (Fuchs-Ghinea-Parsaeian-Rybicki, arXiv:2502.05591;
// Nowak-Rybicki, arXiv:1908.02743):
//
//   hull(S)      the geodesic convex hull: every vertex on a path between
//                two members of S. In a tree this is the Steiner subtree of
//                S and is convex (trees have unique paths).
//   safe_t(M)    the intersection of hull(M') over all |M| - t subsets M' —
//                Definition 5.1 verbatim. Subtrees have the Helly property
//                (pairwise-intersecting subtrees share a vertex), so the
//                same feasibility shape keeps it non-empty.
//   new value    the vertex at floor(d/2) along the unique path between the
//                lexicographically-smallest maximum-distance pair of the
//                safe area — the discrete diameter-pair midpoint. Each
//                iteration halves the honest diameter (ceil(d/2)), so
//                convergence stops at 1-agreement: adjacent vertices, the
//                discrete analog of eps-agreement, reached in ceil(log2 d)
//                iterations.
//
// Determinism: vertex sets are iterated in ascending label order and ties
// break lexicographically, so parties holding equal multisets adopt the
// identical vertex — the consistency Πinit relies on.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/combinatorics.hpp"
#include "common/rng.hpp"
#include "domain/tree.hpp"

namespace hydra::domain {

TreeDomain::TreeDomain(std::string name, std::vector<std::uint32_t> parent)
    : name_(std::move(name)), parent_(std::move(parent)) {
  HYDRA_ASSERT_MSG(!parent_.empty() && parent_[0] == 0,
                   "TreeDomain: parent[0] must be the root (self-parented)");
  depth_.assign(parent_.size(), 0);
  for (std::uint32_t v = 1; v < parent_.size(); ++v) {
    HYDRA_ASSERT_MSG(parent_[v] < v,
                     "TreeDomain: parents must precede children (parent[v] < v)");
    depth_[v] = depth_[parent_[v]] + 1;
  }
}

TreeDomain::Label TreeDomain::label_of(const geo::Vec& v) const {
  const double x = v.dim() >= 1 ? v[0] : 0.0;
  const double rounded = std::rint(x);
  const double max_label = static_cast<double>(parent_.size() - 1);
  const double clamped = std::min(std::max(rounded, 0.0), max_label);
  return Label{static_cast<std::uint32_t>(clamped), std::abs(x - clamped)};
}

std::uint32_t TreeDomain::lca(std::uint32_t a, std::uint32_t b) const {
  while (depth_[a] > depth_[b]) a = parent_[a];
  while (depth_[b] > depth_[a]) b = parent_[b];
  while (a != b) {
    a = parent_[a];
    b = parent_[b];
  }
  return a;
}

std::uint32_t TreeDomain::vertex_distance(std::uint32_t a, std::uint32_t b) const {
  const std::uint32_t anc = lca(a, b);
  return (depth_[a] - depth_[anc]) + (depth_[b] - depth_[anc]);
}

std::uint32_t TreeDomain::vertex_at(std::uint32_t a, std::uint32_t b,
                                    std::uint32_t steps) const {
  const std::uint32_t anc = lca(a, b);
  const std::uint32_t up = depth_[a] - depth_[anc];
  if (steps <= up) {
    for (std::uint32_t i = 0; i < steps; ++i) a = parent_[a];
    return a;
  }
  // Descend toward b: equivalently, climb from b by the remaining distance.
  const std::uint32_t total = up + (depth_[b] - depth_[anc]);
  HYDRA_ASSERT(steps <= total);
  std::uint32_t from_b = total - steps;
  while (from_b > 0) {
    b = parent_[b];
    --from_b;
  }
  return b;
}

void TreeDomain::add_path(std::uint32_t a, std::uint32_t b,
                          std::set<std::uint32_t>& out) const {
  const std::uint32_t anc = lca(a, b);
  for (std::uint32_t v = a;; v = parent_[v]) {
    out.insert(v);
    if (v == anc) break;
  }
  for (std::uint32_t v = b;; v = parent_[v]) {
    out.insert(v);
    if (v == anc) break;
  }
}

std::set<std::uint32_t> TreeDomain::hull(
    const std::vector<std::uint32_t>& labels) const {
  std::set<std::uint32_t> out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (std::size_t j = i; j < labels.size(); ++j) {
      add_path(labels[i], labels[j], out);
    }
  }
  return out;
}

bool TreeDomain::validate(const geo::Vec& v) const {
  if (v.dim() != 1) return false;
  const double x = v[0];
  return x == std::rint(x) && x >= 0.0 &&
         x <= static_cast<double>(parent_.size() - 1);
}

double TreeDomain::distance(const geo::Vec& a, const geo::Vec& b) const {
  // Defined for every finite 1-D vector (monitors see test-injected escaped
  // values): the tree metric on the clamped rounded labels plus the L1
  // rounding residuals — still a metric, and exact on valid labels.
  const Label la = label_of(a);
  const Label lb = label_of(b);
  return static_cast<double>(vertex_distance(la.vertex, lb.vertex)) +
         la.residual + lb.residual;
}

AggregateResult TreeDomain::aggregate(const AggregateSpec& spec,
                                      std::span<const geo::Vec> values) const {
  const std::size_t k = values.size() - (spec.n - spec.ts);
  const std::size_t t = std::max(k, spec.ta);

  std::vector<std::uint32_t> labels;
  labels.reserve(values.size());
  for (const auto& v : values) labels.push_back(label_of(v).vertex);

  // safe_t(M): intersect the geodesic hulls of every |M| - t subset
  // (combinations over positions, multiplicity preserved — Definition 5.1).
  std::optional<std::set<std::uint32_t>> safe;
  for_each_combination(labels.size(), t,
                       [&](const std::vector<std::size_t>& removed) {
                         const auto kept =
                             complement_indices(labels.size(), removed);
                         std::vector<std::uint32_t> subset;
                         subset.reserve(kept.size());
                         for (auto i : kept) subset.push_back(labels[i]);
                         auto h = hull(subset);
                         if (!safe) {
                           safe = std::move(h);
                           return;
                         }
                         std::set<std::uint32_t> both;
                         std::set_intersection(
                             safe->begin(), safe->end(), h.begin(), h.end(),
                             std::inserter(both, both.begin()));
                         *safe = std::move(both);
                       });

  std::uint32_t fallbacks = 0;
  if (!safe.has_value() || safe->empty()) {
    // The Helly property makes this unreachable under the feasibility
    // condition; fall back to the full hull so the rule stays total.
    safe = hull(labels);
    fallbacks = 1;
    HYDRA_ASSERT_MSG(!safe->empty(), "tree safe area empty on empty M");
  }

  // Discrete midpoint rule: the vertex at floor(d/2) along the unique path
  // between the lexicographically-smallest maximum-distance pair.
  const std::vector<std::uint32_t> area(safe->begin(), safe->end());
  std::uint32_t best_u = area[0];
  std::uint32_t best_v = area[0];
  std::uint32_t best_d = 0;
  for (std::size_t i = 0; i < area.size(); ++i) {
    for (std::size_t j = i; j < area.size(); ++j) {
      const std::uint32_t d = vertex_distance(area[i], area[j]);
      if (d > best_d) {
        best_d = d;
        best_u = area[i];
        best_v = area[j];
      }
    }
  }
  const std::uint32_t mid = vertex_at(best_u, best_v, best_d / 2);
  return {geo::Vec{static_cast<double>(mid)}, fallbacks};
}

bool TreeDomain::in_validity_set(std::span<const geo::Vec> basis,
                                 const geo::Vec& candidate, double tol) const {
  if (candidate.dim() != 1) return false;
  // A candidate must BE a vertex (tol only absorbs representation noise,
  // capped below one half so distinct labels never alias) ...
  const Label c = label_of(candidate);
  if (c.residual > std::min(tol, 0.499)) return false;
  // ... on some path between two basis members (geodesic hull membership).
  std::vector<std::uint32_t> labels;
  labels.reserve(basis.size());
  for (const auto& b : basis) labels.push_back(label_of(b).vertex);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (std::size_t j = i; j < labels.size(); ++j) {
      const std::uint32_t d = vertex_distance(labels[i], labels[j]);
      if (vertex_distance(labels[i], c.vertex) +
              vertex_distance(c.vertex, labels[j]) ==
          d) {
        return true;
      }
    }
  }
  return false;
}

double TreeDomain::contraction_bound(double factor, double prev_diameter) const {
  // Integer metric: the midpoint rule contracts d to at most ceil(d/2)
  // per iteration (factor 1/2); exact, no floating epsilon needed.
  return std::ceil(factor * prev_diameter);
}

std::uint64_t TreeDomain::sufficient_iterations(double eps, double diam) const {
  const double target = std::max(min_eps(), eps);
  std::uint64_t t = 0;
  double d = diam;
  while (d > target && t < 64) {
    d = std::ceil(d / 2.0);
    ++t;
  }
  return std::max<std::uint64_t>(1, t);
}

bool TreeDomain::feasible(std::size_t n, std::size_t ts, std::size_t ta,
                          std::size_t dim) const noexcept {
  // A vertex label is 1-D on the wire; resilience needs the library's D = 1
  // requirements (n > 3 ts for Bracha ΠrBC, n > 2 ts + ta for the 1-D-like
  // safe-area rule).
  return dim == 1 && ta <= ts && n > 3 * ts && n > 2 * ts + ta;
}

std::optional<std::size_t> TreeDomain::required_dim() const noexcept { return 1; }

double TreeDomain::min_eps() const noexcept { return 1.0; }

std::optional<std::vector<geo::Vec>> TreeDomain::make_inputs(
    std::size_t n, std::size_t /*dim*/, double scale, std::uint64_t seed) const {
  // Labels uniform over [0, min(scale, V-1)]: `--scale` bounds the input
  // spread exactly like the Euclidean ball radius does.
  Rng rng(seed ^ 0x7ee5a1b3c0ffee00ULL);
  const auto max_label = static_cast<std::uint64_t>(parent_.size() - 1);
  const std::uint64_t span =
      std::min(max_label,
               static_cast<std::uint64_t>(std::max(1.0, std::floor(scale))));
  std::vector<geo::Vec> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    inputs.emplace_back(
        geo::Vec{static_cast<double>(rng.next_u64() % (span + 1))});
  }
  return inputs;
}

std::string TreeDomain::format_value(const geo::Vec& v) const {
  if (!validate(v)) return ValueDomain::format_value(v);  // escaped value
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u", label_of(v).vertex);
  return buf;
}

std::vector<std::uint32_t> binary_tree_parents(std::size_t vertices) {
  std::vector<std::uint32_t> parent(vertices, 0);
  for (std::uint32_t v = 1; v < vertices; ++v) parent[v] = (v - 1) / 2;
  return parent;
}

std::vector<std::uint32_t> path_parents(std::size_t vertices) {
  std::vector<std::uint32_t> parent(vertices, 0);
  for (std::uint32_t v = 1; v < vertices; ++v) parent[v] = v - 1;
  return parent;
}

}  // namespace hydra::domain
