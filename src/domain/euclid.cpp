// The Euclidean R^D value domain: the paper's original setting. Every
// method body here is a verbatim move of the pre-domain-layer code (ΠAA-it's
// compute_new_value_impl, Πinit's sufficient_iterations, the oracle's hull
// membership) — the refactor's byte-identity contract depends on it.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/assert.hpp"
#include "common/combinatorics.hpp"
#include "domain/domain.hpp"
#include "geometry/convex.hpp"

namespace hydra::domain {
namespace {

class EuclidDomain final : public ValueDomain {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "euclid";
  }

  [[nodiscard]] bool validate(const geo::Vec& /*v*/) const override {
    // Structural decode already enforces dimension and finiteness; every
    // finite vector is a value.
    return true;
  }

  [[nodiscard]] double distance(const geo::Vec& a,
                                const geo::Vec& b) const override {
    return geo::distance(a, b);
  }

  [[nodiscard]] double diameter(std::span<const geo::Vec> points) const override {
    return geo::diameter(points);
  }

  // The ΠAA-it rule (Section 5): midpoint of the safe area's deterministic
  // diameter pair, with the numerical fallback ladder.
  [[nodiscard]] AggregateResult aggregate(
      const AggregateSpec& spec, std::span<const geo::Vec> values) const override {
    const std::size_t k = values.size() - (spec.n - spec.ts);
    const std::size_t t = std::max(k, spec.ta);

    const auto pick = [&spec](const geo::SafeArea& sa) {
      return spec.centroid ? sa.centroid_rule() : sa.midpoint_rule();
    };

    auto opts = spec.safe_opts;
    const auto sa = geo::SafeArea::compute(values, t, opts);
    if (auto v = pick(sa)) return {*v, 0};

    // Lemma 5.5 says this is unreachable mathematically; numerically the
    // exact kernel can lose a measure-zero intersection. Retry looser, then
    // take an LP witness.
    for (const double tol : {1e-10, 1e-8}) {
      opts.clip_tol = tol;
      const auto relaxed = geo::SafeArea::compute(values, t, opts);
      if (auto v = pick(relaxed)) return {*v, 1};
    }

    std::vector<std::vector<geo::Vec>> hulls;
    for_each_combination(values.size(), t,
                         [&](const std::vector<std::size_t>& removed) {
                           const auto kept =
                               complement_indices(values.size(), removed);
                           std::vector<geo::Vec> h;
                           h.reserve(kept.size());
                           for (auto i : kept) h.push_back(values[i]);
                           hulls.push_back(std::move(h));
                         });
    const auto witness = geo::intersection_point(hulls, 1e-9);
    HYDRA_ASSERT_MSG(witness.has_value(),
                     "safe area empty despite Lemma 5.5 preconditions");
    return {*witness, 1};
  }

  [[nodiscard]] bool in_validity_set(std::span<const geo::Vec> basis,
                                     const geo::Vec& candidate,
                                     double tol) const override {
    return geo::in_convex_hull(basis, candidate, tol);
  }

  [[nodiscard]] double contraction_factor() const noexcept override {
    return std::sqrt(7.0 / 8.0);
  }

  [[nodiscard]] std::uint64_t sufficient_iterations(double eps,
                                                    double diam) const override {
    HYDRA_ASSERT(eps > 0.0);
    if (diam <= eps) return 1;
    // log base sqrt(7/8) of (eps / diam); the base is < 1 and the argument
    // is < 1, so the quotient of logs is positive.
    const double t =
        std::ceil(std::log(eps / diam) / std::log(std::sqrt(7.0 / 8.0)));
    HYDRA_ASSERT(t >= 0.0);
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(t));
  }

  [[nodiscard]] bool feasible(std::size_t n, std::size_t ts, std::size_t ta,
                              std::size_t dim) const noexcept override {
    return ta <= ts && n > (dim + 1) * ts + ta && n > 3 * ts;
  }
};

}  // namespace

const ValueDomain& euclid() {
  static const EuclidDomain instance;
  return instance;
}

// -- base-class defaults ----------------------------------------------------

double ValueDomain::diameter(std::span<const geo::Vec> points) const {
  double best = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      best = std::max(best, distance(points[i], points[j]));
    }
  }
  return best;
}

double ValueDomain::contraction_bound(double factor, double prev_diameter) const {
  // The Euclidean monitor's exact formula: a relative epsilon absorbs the
  // floating error of near-converged layers.
  return factor * prev_diameter + 1e-9 * (1.0 + prev_diameter);
}

std::optional<std::size_t> ValueDomain::required_dim() const noexcept {
  return std::nullopt;
}

double ValueDomain::min_eps() const noexcept { return 0.0; }

std::optional<std::vector<geo::Vec>> ValueDomain::make_inputs(
    std::size_t /*n*/, std::size_t /*dim*/, double /*scale*/,
    std::uint64_t /*seed*/) const {
  return std::nullopt;
}

std::string ValueDomain::format_value(const geo::Vec& v) const {
  std::string out = "(";
  char buf[32];
  for (std::size_t d = 0; d < v.dim(); ++d) {
    std::snprintf(buf, sizeof(buf), "%.6g", v[d]);
    if (d > 0) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace hydra::domain
