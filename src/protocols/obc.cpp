#include "protocols/obc.hpp"

#include <utility>

#include "common/assert.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "protocols/keys.hpp"

namespace hydra::protocols {
namespace {

void note_transition(const Env& env, std::uint32_t iteration, const char* what) {
  if (!obs::enabled()) return;
  obs::registry().counter(std::string("obc.") + what).inc();
  if (auto* tr = obs::trace()) {
    tr->state(env.now(), env.self(), "obc", what, 0, iteration);
  }
}

}  // namespace

void ObcInstance::start(Env& env, const geo::Vec& input) {
  HYDRA_ASSERT_MSG(!started_, "ObcInstance started twice");
  HYDRA_ASSERT(input.dim() == params_.dim);
  started_ = true;
  tau_start_ = env.now();
  note_transition(env, iteration_, "start");

  mux_->broadcast(env, InstanceKey{kRbcObcValue, env.self(), iteration_},
                  encode_value(input));

  // Wake-ups at the two "When tau_now >= ..." thresholds; guards are
  // re-evaluated then (and on every message event).
  env.set_timer(tau_start_ + Params::kCRbc * params_.delta, 0);
  env.set_timer(tau_start_ + Params::kCObc * params_.delta, 0);
  step(env);
}

void ObcInstance::on_rbc_value(Env& env, PartyId sender, const Bytes& payload) {
  const auto value = decode_value(payload, params_.dim, params_.domain);
  if (!value) return;  // malformed Byzantine value == never sent
  m_.emplace(sender, std::move(*value));
  step(env);
}

void ObcInstance::on_report(Env& env, PartyId from, const Bytes& payload) {
  if (witnesses_.contains(from) || pending_reports_.contains(from)) return;
  auto report = decode_pairs(payload, params_.dim, params_.n, params_.domain);
  if (!report) return;
  // "such that |M_P'| >= n - ts": undersized reports never qualify.
  if (report->size() < params_.quorum()) return;
  pending_reports_.emplace(from, std::move(*report));
  step(env);
}

PairList ObcInstance::snapshot() const {
  PairList list;
  list.reserve(m_.size());
  for (const auto& [party, value] : m_) list.emplace_back(party, value);
  return list;
}

void ObcInstance::step(Env& env, bool at_timer) {
  // Witness rule: P' becomes a witness once every pair it reported has also
  // been delivered to us (M_P' subset of M). M only grows, so pending
  // reports are re-checked on every step.
  for (auto it = pending_reports_.begin(); it != pending_reports_.end();) {
    const auto& [reporter, report] = *it;
    bool subset = true;
    for (const auto& [party, value] : report) {
      const auto found = m_.find(party);
      if (found == m_.end() || !(found->second == value)) {
        subset = false;
        break;
      }
    }
    if (subset) {
      witnesses_.insert(reporter);
      it = pending_reports_.erase(it);
    } else {
      ++it;
    }
  }

  if (!started_) return;
  const Time now = env.now();
  const auto reached = [&](Time threshold) {
    return at_timer ? now >= threshold : now > threshold;
  };

  // Line 5-6: report own collected set.
  if (!sent_report_ && reached(tau_start_ + Params::kCRbc * params_.delta) &&
      m_.size() >= params_.quorum()) {
    sent_report_ = true;
    note_transition(env, iteration_, "report");
    env.broadcast(sim::Message{InstanceKey{kObcReport, 0, iteration_}, kDirect,
                               encode_pairs(snapshot())});
  }

  // Line 9-10: output once enough witnesses accumulated.
  if (!output_ && reached(tau_start_ + Params::kCObc * params_.delta) &&
      witnesses_.size() >= params_.quorum()) {
    output_ = snapshot();
    note_transition(env, iteration_, "output");
    if (obs::enabled()) {
      if (auto* mon = obs::monitors()) {
        mon->on_obc_output(env.now(), env.self(), iteration_, *output_);
      }
    }
    if (on_output) on_output(env, *output_);
  }
}

}  // namespace hydra::protocols
