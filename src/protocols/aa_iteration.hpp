// The ΠAA-it value computation (Section 5, lines 3-6):
//
//   k := |M| - (n - ts)
//   S := safe_max(k, ta)(M)
//   a, b := the deterministic diameter pair of S
//   v := (a + b) / 2
//
// Lemma 5.5 guarantees S is non-empty for n - ts <= |M| <= n, so the result
// is total. The same computation produces the witness estimations inside
// Πinit (its lines 7-10 and 17-20 are verbatim copies), so it lives in one
// place.
#pragma once

#include "geometry/vec.hpp"
#include "protocols/codec.hpp"
#include "protocols/params.hpp"

namespace hydra::protocols {

/// Computes the new value for a received set M of value-party pairs (sorted
/// by party id; |M| must be in [n - ts, n]).
///
/// Robustness: if the exact D <= 2 kernel returns empty where Lemma 5.5
/// guarantees non-emptiness (a floating-point boundary case on adversarially
/// degenerate inputs), we retry with relaxed tolerances and finally fall
/// back to an LP feasibility witness, which is a valid (if not
/// diameter-midpoint) safe-area point. The fallback path preserves Validity
/// (Lemma 5.7) and is counted so experiments can report it.
[[nodiscard]] geo::Vec compute_new_value(const Params& params, const PairList& m);

/// Number of times the relaxed-tolerance / LP fallback fired (diagnostics).
/// Scoped to the calling thread's obs::Context when one is installed (the
/// harness gives every run its own), process-wide otherwise.
[[nodiscard]] std::uint64_t safe_area_fallback_count() noexcept;

}  // namespace hydra::protocols
