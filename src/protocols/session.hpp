// Session multiplexing: run several independent ΠAA instances concurrently
// over one network.
//
// The paper's "identification numbers" (Section 2) extend naturally to
// parallel protocol sessions: a session id is packed into the high bits of
// the InstanceKey tag, so every sub-protocol instance of session s is
// disjoint from every instance of session s'. SessionRouter rewrites keys
// on the way in/out and hosts one inner party per session — e.g. a
// federated-learning node agreeing on several model shards at once, or a
// robot swarm negotiating rendezvous and formation parameters in parallel.
//
// Sessions are numbered 0 .. kMaxSessions-1; all parties must create their
// sessions with the same ids (as with every other protocol parameter).
#pragma once

#include <map>
#include <memory>

#include "common/assert.hpp"
#include "protocols/aa.hpp"
#include "protocols/params.hpp"
#include "sim/env.hpp"

namespace hydra::protocols {

class SessionRouter final : public sim::IParty {
 public:
  /// Tags occupy the low bits; sessions the bits above kSessionShift.
  static constexpr std::uint32_t kSessionShift = 8;
  static constexpr std::uint32_t kMaxSessions = 1u << 12;

  /// Adds a session hosting ΠAA with the given parameters and input.
  /// Must be called before the network starts; ids must be dense across
  /// parties only in the sense that all parties use the same set.
  void add_session(std::uint32_t session, const Params& params, geo::Vec input) {
    HYDRA_ASSERT(session < kMaxSessions);
    const bool inserted =
        sessions_.emplace(session, std::make_unique<AaParty>(params, std::move(input)))
            .second;
    HYDRA_ASSERT_MSG(inserted, "duplicate session id");
  }

  [[nodiscard]] const AaParty& session(std::uint32_t id) const {
    const auto it = sessions_.find(id);
    HYDRA_ASSERT_MSG(it != sessions_.end(), "unknown session id");
    return *it->second;
  }

  [[nodiscard]] std::size_t session_count() const noexcept { return sessions_.size(); }

  [[nodiscard]] bool all_output() const {
    for (const auto& [id, party] : sessions_) {
      if (!party->has_output()) return false;
    }
    return !sessions_.empty();
  }

  // IParty ----------------------------------------------------------------

  void start(sim::Env& env) override {
    for (auto& [id, party] : sessions_) {
      SessionEnv senv(this, &env, id);
      party->start(senv);
    }
  }

  void on_message(sim::Env& env, PartyId from, const sim::Message& msg) override {
    const std::uint32_t session = msg.key.tag >> kSessionShift;
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return;  // unknown session: drop
    sim::Message inner = msg;
    inner.key.tag &= (1u << kSessionShift) - 1;
    SessionEnv senv(this, &env, session);
    it->second->on_message(senv, from, inner);
  }

  void on_timer(sim::Env& env, std::uint64_t timer_id) override {
    // Timer ids carry the session in their high bits (set by SessionEnv).
    const auto session = static_cast<std::uint32_t>(timer_id >> 32);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) return;
    SessionEnv senv(this, &env, session);
    it->second->on_timer(senv, timer_id & 0xFFFFFFFFull);
  }

 private:
  /// Env wrapper that stamps the session into outgoing keys and timer ids.
  class SessionEnv final : public sim::Env {
   public:
    SessionEnv(SessionRouter* router, sim::Env* inner, std::uint32_t session)
        : router_(router), inner_(inner), session_(session) {}

    void send(PartyId to, sim::Message msg) override {
      stamp(msg);
      inner_->send(to, std::move(msg));
    }

    void broadcast(const sim::Message& msg) override {
      sim::Message stamped = msg;
      stamp(stamped);
      inner_->broadcast(stamped);
    }

    void set_timer(Time at, std::uint64_t timer_id) override {
      HYDRA_ASSERT(timer_id < (1ull << 32));
      inner_->set_timer(at, (static_cast<std::uint64_t>(session_) << 32) | timer_id);
    }

    [[nodiscard]] Time now() const override { return inner_->now(); }
    [[nodiscard]] PartyId self() const override { return inner_->self(); }
    [[nodiscard]] std::size_t n() const override { return inner_->n(); }

   private:
    void stamp(sim::Message& msg) const {
      HYDRA_ASSERT_MSG(msg.key.tag < (1u << kSessionShift),
                       "inner protocol tag exceeds the session shift");
      msg.key.tag |= session_ << kSessionShift;
    }

    [[maybe_unused]] SessionRouter* router_;
    sim::Env* inner_;
    std::uint32_t session_;
  };

  std::map<std::uint32_t, std::unique_ptr<AaParty>> sessions_;
};

}  // namespace hydra::protocols
