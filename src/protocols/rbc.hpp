// Bracha's Reliable Broadcast (ΠrBC, Theorem 4.2 / Appendix 6.1).
//
// Guarantees with n > 3t:
//   t-Validity      honest output equals an honest sender's input;
//   t-Consistency   no two honest parties output different values;
//   Honest Liveness sender honest => everyone outputs within c_rBC = 3 rounds
//                   under synchrony;
//   Conditional Liveness  one honest output => all honest outputs within
//                   c'_rBC = 2 further rounds under synchrony.
//
// The payload is an opaque byte vector; upper layers serialize their own
// content. One RbcInstance is the per-party state machine of a single
// broadcast (identified by an InstanceKey whose `a` coordinate names the
// designated sender); RbcMux owns all instances of a party and routes wire
// messages to them, creating instances on demand so parties implicitly join
// broadcasts they first hear about from others.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "protocols/keys.hpp"
#include "protocols/params.hpp"
#include "sim/env.hpp"

namespace hydra::protocols {

// Protocol code uses the sim abstractions directly; these aliases keep
// signatures short and make the dependency explicit.
using sim::Env;
using sim::Message;

class RbcInstance {
 public:
  RbcInstance(const Params& params, InstanceKey key)
      : params_(params), key_(key) {}

  /// Sender-side entry point: disseminates `payload` (Bracha's initial send).
  void broadcast(Env& env, Bytes payload);

  /// Feeds a wire message (kinds kRbcSend/kRbcEcho/kRbcReady) belonging to
  /// this instance. Returns true if this event made the instance deliver.
  bool on_message(Env& env, PartyId from, const Message& msg);

  [[nodiscard]] bool delivered() const noexcept { return delivered_; }
  [[nodiscard]] const Bytes& output() const noexcept { return output_; }
  [[nodiscard]] const InstanceKey& key() const noexcept { return key_; }

 private:
  void send_echo(Env& env, const Bytes& payload);
  void send_ready(Env& env, const Bytes& payload);

  Params params_;
  InstanceKey key_;

  bool sent_echo_ = false;
  bool sent_ready_ = false;
  bool delivered_ = false;
  Bytes output_;

  // One vote per sender: the first echo/ready a party sends is the one that
  // counts; later equivocations are ignored.
  std::set<PartyId> echo_voters_;
  std::set<PartyId> ready_voters_;
  std::map<Bytes, std::set<PartyId>> echoes_;
  std::map<Bytes, std::set<PartyId>> readies_;
};

/// Routes every RBC wire message of one party to the right instance.
class RbcMux {
 public:
  using DeliverFn = std::function<void(sim::Env&, const InstanceKey&, const Bytes&)>;

  RbcMux(const Params& params, DeliverFn on_deliver)
      : params_(params), on_deliver_(std::move(on_deliver)) {}

  /// Starts a broadcast with this party as designated sender; asserts that
  /// key.a names this party.
  void broadcast(sim::Env& env, InstanceKey key, Bytes payload);

  /// Consumes a message if it belongs to the RBC layer (kind <= kRbcReady).
  /// Returns true when consumed.
  bool handle(sim::Env& env, PartyId from, const sim::Message& msg);

  /// Instance lookup for tests; nullptr when the instance does not exist.
  [[nodiscard]] const RbcInstance* find(const InstanceKey& key) const;

 private:
  RbcInstance& instance(const InstanceKey& key);

  Params params_;
  DeliverFn on_deliver_;
  std::unordered_map<InstanceKey, RbcInstance, InstanceKeyHash> instances_;
};

}  // namespace hydra::protocols
