// Serialization of protocol payloads, with defensive decoding.
//
// Every decoder validates structure AND content: dimension mismatches,
// non-finite coordinates, out-of-range party ids and duplicate entries are
// rejected (returning nullopt), because payload bytes may come from
// Byzantine parties. A rejected payload is treated exactly like a message
// the Byzantine party never sent.
#pragma once

#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "domain/domain.hpp"
#include "geometry/vec.hpp"

namespace hydra::protocols {

/// A set of value-party pairs M (Section 2.1), kept sorted by party id so
/// identical sets serialize identically and geometric computations on them
/// are bit-for-bit deterministic across parties.
using PairList = std::vector<std::pair<PartyId, geo::Vec>>;

[[nodiscard]] Bytes encode_value(const geo::Vec& v);

/// Rejects wrong dimension and non-finite coordinates; a non-null `dom`
/// additionally rejects vectors outside the domain's value set (e.g.
/// non-integral or out-of-range tree labels).
[[nodiscard]] std::optional<geo::Vec> decode_value(
    const Bytes& data, std::size_t dim,
    const hydra::domain::ValueDomain* dom = nullptr);

[[nodiscard]] Bytes encode_pairs(const PairList& pairs);

/// Rejects malformed bytes, party ids >= n, duplicate parties, and invalid
/// values (domain content validation as in decode_value). Output is sorted
/// by party id.
[[nodiscard]] std::optional<PairList> decode_pairs(
    const Bytes& data, std::size_t dim, std::size_t n,
    const hydra::domain::ValueDomain* dom = nullptr);

[[nodiscard]] Bytes encode_party_set(const std::set<PartyId>& parties);

/// Rejects malformed bytes and party ids >= n.
[[nodiscard]] std::optional<std::set<PartyId>> decode_party_set(const Bytes& data,
                                                                std::size_t n);

/// val(M) in party-id order.
[[nodiscard]] std::vector<geo::Vec> values_of(const PairList& pairs);

}  // namespace hydra::protocols
