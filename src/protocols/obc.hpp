// Overlap All-to-All Broadcast (ΠoBC, Section 4.2).
//
// Every party distributes its value via ΠrBC, reports the set of
// value-party pairs it collected once |M| >= n - ts and c_rBC * Delta local
// time has passed, marks reporters whose reported values it has itself
// received as witnesses, and outputs its set M once it has n - ts witnesses
// and (c_rBC + c'_rBC) * Delta local time has passed.
//
// Guarantees (Theorem 4.4): Validity, Consistency, (ts, ta)-Overlap
// (any two honest outputs share >= n - ts pairs), Synchronized Overlap and
// c_oBC = 5 round liveness under synchrony, eventual liveness under
// asynchrony.
//
// The instance is event-driven and guard-based: handlers update state and
// then step() re-evaluates the protocol's "When ..." conditions. An
// instance can be constructed passively (messages of parties that are
// already in this iteration arrive before we join) and is activated by
// start().
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "geometry/vec.hpp"
#include "protocols/codec.hpp"
#include "protocols/params.hpp"
#include "protocols/rbc.hpp"

namespace hydra::protocols {

class ObcInstance {
 public:
  using OutputFn = std::function<void(Env&, const PairList&)>;

  /// `iteration` is the key coordinate b used by this instance's messages;
  /// `mux` must outlive the instance.
  ObcInstance(const Params& params, std::uint32_t iteration, RbcMux* mux)
      : params_(params), iteration_(iteration), mux_(mux) {}

  /// Joins the protocol with input `v`: reliably broadcasts it and arms the
  /// two timing guards. Idempotent (second call asserts).
  void start(Env& env, const geo::Vec& input);

  /// A value reliably delivered from `sender` (tag kRbcObcValue, b matching).
  void on_rbc_value(Env& env, PartyId sender, const Bytes& payload);

  /// A direct report message (tag kObcReport, b matching).
  void on_report(Env& env, PartyId from, const Bytes& payload);

  /// Re-evaluates all guards; call after any event or timer that may have
  /// unblocked one. `at_timer` selects the boundary semantics of the time
  /// guards: a guard "when tau_now >= tau_start + c * Delta" is inclusive
  /// when evaluated from a timer (all messages of that tick have been
  /// processed — the simulator orders messages before timers) and strict
  /// when evaluated from a message handler (same-tick messages may still be
  /// in flight). This realizes the paper's synchronous semantics, where a
  /// guard at time tau observes every message delivered "within" tau.
  void step(Env& env, bool at_timer = false);

  [[nodiscard]] bool started() const noexcept { return started_; }
  [[nodiscard]] bool has_output() const noexcept { return output_.has_value(); }
  [[nodiscard]] const PairList& output() const { return *output_; }

  /// Observers for tests.
  [[nodiscard]] std::size_t collected() const noexcept { return m_.size(); }
  [[nodiscard]] std::size_t witnesses() const noexcept { return witnesses_.size(); }

  /// Invoked exactly once, when the output guard first passes.
  OutputFn on_output;

 private:
  [[nodiscard]] PairList snapshot() const;

  Params params_;
  std::uint32_t iteration_;
  RbcMux* mux_;

  bool started_ = false;
  Time tau_start_ = 0;
  bool sent_report_ = false;

  std::map<PartyId, geo::Vec> m_;                 // M: collected value-party pairs
  std::map<PartyId, PairList> pending_reports_;   // first report per sender
  std::set<PartyId> witnesses_;                   // W
  std::optional<PairList> output_;
};

}  // namespace hydra::protocols
