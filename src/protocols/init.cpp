#include "protocols/init.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "domain/domain.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocols/aa_iteration.hpp"
#include "protocols/keys.hpp"

namespace hydra::protocols {
namespace {

void note_transition(const Env& env, const char* what) {
  if (!obs::enabled()) return;
  obs::registry().counter(std::string("init.") + what).inc();
  if (auto* tr = obs::trace()) {
    tr->state(env.now(), env.self(), "init", what, 0, 0);
  }
}

}  // namespace

std::uint64_t sufficient_iterations(double eps, double diam) {
  // The Euclidean closed form (kept as the free function for existing call
  // sites); domain-aware callers go through ValueDomain::sufficient_iterations.
  return domain::euclid().sufficient_iterations(eps, diam);
}

void InitInstance::start(Env& env, const geo::Vec& input) {
  HYDRA_ASSERT_MSG(!started_, "InitInstance started twice");
  HYDRA_ASSERT(input.dim() == params_.dim);
  started_ = true;
  tau_start_ = env.now();
  note_transition(env, "start");

  mux_->broadcast(env, InstanceKey{kRbcInitValue, env.self(), 0}, encode_value(input));

  env.set_timer(tau_start_ + Params::kCRbc * params_.delta, 0);
  env.set_timer(tau_start_ + 2 * Params::kCRbc * params_.delta, 0);
  env.set_timer(tau_start_ + Params::kCInit * params_.delta, 0);
  step(env);
}

void InitInstance::on_rbc_value(Env& env, PartyId sender, const Bytes& payload) {
  const auto value = decode_value(payload, params_.dim, params_.domain);
  if (!value) return;
  m_.emplace(sender, std::move(*value));
  step(env);
}

void InitInstance::on_rbc_report(Env& env, PartyId sender, const Bytes& payload) {
  if (w_.contains(sender) || pending_reports_.contains(sender)) return;
  auto report = decode_pairs(payload, params_.dim, params_.n, params_.domain);
  if (!report || report->size() < params_.quorum()) return;
  pending_reports_.emplace(sender, std::move(*report));
  step(env);
}

void InitInstance::on_witness_set(Env& env, PartyId from, const Bytes& payload) {
  if (w2_.contains(from) || pending_witness_sets_.contains(from)) return;
  auto set = decode_party_set(payload, params_.n);
  if (!set || set->size() < params_.quorum()) return;
  pending_witness_sets_.emplace(from, std::move(*set));
  step(env);
}

void InitInstance::step(Env& env, bool at_timer) {
  // Witness rule (lines 6-11): a reliably-delivered report contained in our
  // M turns its sender into a witness and yields its estimation, computed
  // with the ΠAA-it rule on the report — deterministic, so every honest
  // party that marks P' derives the identical v_P' (the consistency Πinit
  // needs).
  for (auto it = pending_reports_.begin(); it != pending_reports_.end();) {
    const auto& [reporter, report] = *it;
    bool subset = true;
    for (const auto& [party, value] : report) {
      const auto found = m_.find(party);
      if (found == m_.end() || !(found->second == value)) {
        subset = false;
        break;
      }
    }
    if (subset) {
      geo::Vec estimate = compute_new_value(params_, report);
      ie_.emplace_back(reporter, std::move(estimate));
      w_.insert(reporter);
      it = pending_reports_.erase(it);
    } else {
      ++it;
    }
  }

  // Double-witness rule (lines 14-15): re-checked as W grows.
  for (auto it = pending_witness_sets_.begin(); it != pending_witness_sets_.end();) {
    const auto& [sender, set] = *it;
    const bool subset =
        std::includes(w_.begin(), w_.end(), set.begin(), set.end());
    if (subset) {
      w2_.insert(sender);
      it = pending_witness_sets_.erase(it);
    } else {
      ++it;
    }
  }

  if (!started_ || output_) return;
  const Time now = env.now();
  const auto reached = [&](Time threshold) {
    return at_timer ? now >= threshold : now > threshold;
  };

  // Lines 4-5: reliably broadcast the report.
  if (!sent_report_ && reached(tau_start_ + Params::kCRbc * params_.delta) &&
      m_.size() >= params_.quorum()) {
    sent_report_ = true;
    note_transition(env, "report");
    PairList snapshot;
    snapshot.reserve(m_.size());
    for (const auto& [party, value] : m_) snapshot.emplace_back(party, value);
    mux_->broadcast(env, InstanceKey{kRbcInitReport, env.self(), 0},
                    encode_pairs(snapshot));
  }

  // Lines 12-13: send the witness set.
  if (!sent_witness_set_ && reached(tau_start_ + 2 * Params::kCRbc * params_.delta) &&
      w_.size() >= params_.quorum()) {
    sent_witness_set_ = true;
    note_transition(env, "witness_set");
    env.broadcast(sim::Message{InstanceKey{kInitWitnessSet, 0, 0}, kDirect,
                               encode_party_set(w_)});
  }

  // Lines 16-22: output (T, v0).
  if (reached(tau_start_ + Params::kCInit * params_.delta) &&
      w2_.size() >= params_.quorum()) {
    PairList ie_sorted = ie_;
    std::sort(ie_sorted.begin(), ie_sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    Output out;
    out.v0 = compute_new_value(params_, ie_sorted);
    const auto& dom = domain::resolve(params_.domain);
    const auto estimates = values_of(ie_sorted);
    out.iterations =
        dom.sufficient_iterations(params_.eps, dom.diameter(estimates));
    output_ = std::move(out);
    note_transition(env, "output");
    if (obs::enabled()) {
      if (auto* tr = obs::trace()) {
        tr->scalar(env.now(), env.self(), "init.T",
                   static_cast<double>(output_->iterations));
      }
    }
    if (on_output) on_output(env, *output_);
  }
}

}  // namespace hydra::protocols
